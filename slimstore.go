// Package slimstore is a cloud-based deduplication system for
// multi-version backups, reproducing Zhang et al., "SLIMSTORE: A
// Cloud-based Deduplication System for Multi-version Backups" (ICDE 2021).
//
// The system separates storage from computation: all durable state —
// chunk containers, file recipes, the similar-file index, and the global
// fingerprint index — lives on an object store (OSS), while stateless
// L-nodes serve fast online deduplication and restore, and a G-node
// performs offline space optimisation (exact reverse deduplication,
// sparse-container compaction, and version collection).
//
// Quick start:
//
//	sys, _ := slimstore.OpenMemory(slimstore.DefaultConfig())
//	stats, _ := sys.Backup("db/users.tbl", data)
//	sys.Optimize(stats)                    // offline G-node pass
//	var buf bytes.Buffer
//	sys.Restore("db/users.tbl", stats.Version, &buf)
package slimstore

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"slimstore/internal/core"
	"slimstore/internal/globalindex"
	"slimstore/internal/gnode"
	"slimstore/internal/jobs"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
	"slimstore/internal/recipe"
)

// Re-exported configuration and result types. These aliases are the
// public names of the engine's types; external importers use them without
// touching internal packages.
type (
	// Config holds every tunable of the system; see DefaultConfig.
	Config = core.Config
	// BackupStats reports one backup job.
	BackupStats = lnode.BackupStats
	// RestoreStats reports one restore job.
	RestoreStats = lnode.RestoreStats
	// ReverseDedupStats reports an offline exact-deduplication pass.
	ReverseDedupStats = gnode.ReverseDedupStats
	// SCCStats reports a sparse-container compaction pass.
	SCCStats = gnode.SCCStats
	// GCStats reports a version deletion.
	GCStats = gnode.GCStats
	// AuditStats reports a full mark-and-sweep audit.
	AuditStats = gnode.AuditStats
	// ScrubStats reports an integrity scrub/repair pass.
	ScrubStats = gnode.ScrubStats
	// ObjectStore is the storage-layer abstraction (see OpenStore).
	ObjectStore = oss.Store
	// Engine is the concurrent multi-job scheduler (see System.NewEngine).
	Engine = jobs.Engine
	// EngineOptions tune an Engine (L-node count, queue depth).
	EngineOptions = jobs.Options
	// Job is one unit of engine work.
	Job = jobs.Job
	// JobResult is one completed engine job.
	JobResult = jobs.Result
	// JobKind selects what a Job does.
	JobKind = jobs.Kind
)

// Engine job kinds.
const (
	JobBackup   = jobs.Backup
	JobRestore  = jobs.Restore
	JobVerify   = jobs.Verify
	JobDelete   = jobs.Delete
	JobOptimize = jobs.Optimize
	JobScrub    = jobs.Scrub
	JobSweep    = jobs.Sweep
)

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// System is an opened SLIMSTORE deployment: a storage layer plus a pool
// of L-nodes and one G-node. All methods are safe for concurrent use;
// concurrent Backup/Restore calls are distributed over the L-node pool.
type System struct {
	repo  *core.Repo
	g     *gnode.GNode
	maint *gnode.Maintainer
	mu    sync.Mutex
	ls    []*lnode.LNode
	next  atomic.Uint64
}

// Open assembles a System over any ObjectStore.
func Open(store ObjectStore, cfg Config) (*System, error) {
	repo, err := core.OpenRepo(store, cfg)
	if err != nil {
		return nil, err
	}
	s := &System{repo: repo, g: gnode.New(repo)}
	s.maint = gnode.NewMaintainer(s.g)
	s.ls = []*lnode.LNode{lnode.New(repo, "L0")}
	return s, nil
}

// OpenMemory opens a System over an in-memory object store (tests,
// experiments).
func OpenMemory(cfg Config) (*System, error) {
	return Open(oss.NewMem(), cfg)
}

// OpenDirectory opens a System persisting to a local directory.
func OpenDirectory(dir string, cfg Config) (*System, error) {
	st, err := oss.NewDisk(dir)
	if err != nil {
		return nil, err
	}
	return Open(st, cfg)
}

// OpenHTTP opens a System backed by a remote object-store server (see
// cmd/ossserver). hc may be nil for http.DefaultClient.
func OpenHTTP(baseURL string, hc *http.Client, cfg Config) (*System, error) {
	return Open(oss.NewClient(baseURL, hc), cfg)
}

// NewMemoryStore returns a fresh in-memory ObjectStore, for callers that
// want to share one store across Systems.
func NewMemoryStore() ObjectStore { return oss.NewMem() }

// NamespacedStore returns a view of store isolated under prefix — one
// tenant per namespace on a shared physical store (the paper's per-user
// global index deployed as per-user buckets).
func NamespacedStore(store ObjectStore, prefix string) ObjectStore {
	return oss.NewPrefixed(store, prefix)
}

// NewEngine starts a concurrent job engine over this deployment: a pool
// of goroutine-hosted L-nodes pulling from a bounded queue, sharing the
// repository (and its lock protocol) with the System's own L-nodes and
// G-node. Close the engine when done; the System remains usable.
func (s *System) NewEngine(opts EngineOptions) *Engine {
	return jobs.New(s.repo, s.g, opts)
}

// RestoreRange streams bytes [off, off+length) of a stored version to w
// (length < 0 means to the end) — partial recovery without a full restore.
func (s *System) RestoreRange(fileID string, version int, off, length int64, w io.Writer) (*RestoreStats, error) {
	return s.pick().RestoreRange(fileID, version, off, length, w)
}

// ScaleLNodes sets the L-node pool size (elastic computing layer). Jobs
// already running are unaffected.
func (s *System) ScaleLNodes(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.ls) < n {
		s.ls = append(s.ls, lnode.New(s.repo, fmt.Sprintf("L%d", len(s.ls))))
	}
	if len(s.ls) > n {
		s.ls = s.ls[:n]
	}
}

// LNodes returns the current pool size.
func (s *System) LNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ls)
}

func (s *System) pick() *lnode.LNode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ls[int(s.next.Add(1))%len(s.ls)]
}

// Backup deduplicates and stores one version of a file, assigning the job
// to an L-node round-robin. The returned stats carry the new version
// number and the inputs for Optimize.
func (s *System) Backup(fileID string, data []byte) (*BackupStats, error) {
	return s.pick().Backup(fileID, data)
}

// BackupStream deduplicates and stores one version of a file read from
// rd, holding O(window) memory instead of the whole file (DESIGN §13).
// Configurations the streaming cutter cannot serve (skip chunking,
// chunk merging, inline hashing) buffer the reader and fall back to
// Backup.
func (s *System) BackupStream(fileID string, rd io.Reader) (*BackupStats, error) {
	return s.pick().BackupStream(fileID, rd)
}

// Restore streams a stored version to w.
func (s *System) Restore(fileID string, version int, w io.Writer) (*RestoreStats, error) {
	return s.pick().Restore(fileID, version, w)
}

// Verify reads a stored version end to end, re-fingerprinting every chunk,
// without materialising the data. It returns an error on any corruption.
func (s *System) Verify(fileID string, version int) (*RestoreStats, error) {
	return s.pick().Verify(fileID, version)
}

// BackupAll runs one backup job per entry concurrently across the L-node
// pool, up to `workers` at a time (workers <= 0 uses the pool size). It
// returns per-file stats; on failures it completes the remaining jobs and
// returns the first error.
func (s *System) BackupAll(files map[string][]byte, workers int) (map[string]*BackupStats, error) {
	if workers <= 0 {
		workers = s.LNodes()
	}
	type job struct {
		id   string
		data []byte
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	out := make(map[string]*BackupStats, len(files))
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				st, err := s.Backup(j.id, j.data)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("backup %s: %w", j.id, err)
					}
				} else {
					out[j.id] = st
				}
				mu.Unlock()
			}
		}()
	}
	for id, data := range files {
		jobs <- job{id: id, data: data}
	}
	close(jobs)
	wg.Wait()
	return out, firstErr
}

// OptimizeAll runs the G-node pass for every result of a BackupAll.
// G-node work is serialised (it is one offline node in the paper).
func (s *System) OptimizeAll(stats map[string]*BackupStats) error {
	// Deterministic order for reproducible container layouts.
	ids := make([]string, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, _, err := s.Optimize(stats[id]); err != nil {
			return fmt.Errorf("optimize %s: %w", id, err)
		}
	}
	return nil
}

// Optimize runs the G-node's offline pass for a finished backup: global
// reverse deduplication over the backup's new containers, then sparse
// container compaction for the containers the backup flagged.
func (s *System) Optimize(st *BackupStats) (*ReverseDedupStats, *SCCStats, error) {
	rd, err := s.g.ReverseDedup(st.NewContainers)
	if err != nil {
		return nil, nil, err
	}
	scc, err := s.g.CompactSparse(st.FileID, st.Version, st.SparseContainers)
	if err != nil {
		return rd, nil, err
	}
	return rd, scc, nil
}

// QueueOptimize hands a finished backup to the background G-node worker
// and returns immediately — the paper's offline deployment. Call
// DrainOptimize to wait for the queue, or Optimize for the synchronous
// path. The worker starts on first use.
func (s *System) QueueOptimize(st *BackupStats) error {
	s.maint.Start()
	return s.maint.Enqueue(st.FileID, st.Version, st.NewContainers, st.SparseContainers)
}

// DrainOptimize blocks until every queued optimisation completed.
func (s *System) DrainOptimize() { s.maint.Drain() }

// MaintenanceStats reports the background G-node's accumulated work.
func (s *System) MaintenanceStats() gnode.MaintStats { return s.maint.Stats() }

// Close drains and stops the background G-node worker. The System remains
// usable for synchronous operations afterwards.
func (s *System) Close() { s.maint.Stop() }

// DeleteVersion removes a version and sweeps its garbage containers
// (version collection). Delete oldest versions first for maximal
// reclamation.
func (s *System) DeleteVersion(fileID string, version int) (*GCStats, error) {
	return s.g.DeleteVersion(fileID, version)
}

// Audit runs a full mark-and-sweep pass, reclaiming any container not
// reachable from a live recipe.
func (s *System) Audit() (*AuditStats, error) { return s.g.FullSweep() }

// Scrub verifies every container against its checksums, repairs corrupt
// chunks that have an intact copy elsewhere, salvages what it can from
// damaged containers, and quarantines the rest. See gnode.ScrubStats for
// what it reports.
func (s *System) Scrub() (*ScrubStats, error) { return s.g.Scrub() }

// QueueScrub hands a scrub to the background G-node worker, behind any
// pending optimisation jobs. DrainOptimize waits for it.
func (s *System) QueueScrub() error {
	s.maint.Start()
	return s.maint.EnqueueScrub()
}

// Snapshot groups the file versions captured by one backup session.
type Snapshot = recipe.Snapshot

// SnapshotMember is one file version inside a snapshot.
type SnapshotMember = recipe.SnapshotMember

// BackupSnapshot backs up a set of files concurrently (see BackupAll) and
// records them as one named snapshot — the paper's periodic full-volume
// backup session. The G-node pass runs synchronously before the manifest
// is written.
func (s *System) BackupSnapshot(id string, files map[string][]byte, workers int) (*Snapshot, error) {
	stats, err := s.BackupAll(files, workers)
	if err != nil {
		return nil, err
	}
	if err := s.OptimizeAll(stats); err != nil {
		return nil, err
	}
	snap := &Snapshot{ID: id}
	for fid, st := range stats {
		snap.Members = append(snap.Members, SnapshotMember{
			FileID: fid, Version: st.Version, Bytes: st.LogicalBytes,
		})
	}
	if err := s.repo.Recipes.PutSnapshot(snap); err != nil {
		return nil, err
	}
	return s.repo.Recipes.GetSnapshot(id)
}

// RestoreSnapshot restores every member of a snapshot, obtaining each
// file's writer from open (which may create files, buffers, …).
func (s *System) RestoreSnapshot(id string, open func(fileID string) (io.Writer, error)) error {
	snap, err := s.repo.Recipes.GetSnapshot(id)
	if err != nil {
		return err
	}
	for _, m := range snap.Members {
		w, err := open(m.FileID)
		if err != nil {
			return fmt.Errorf("restore snapshot %s: open %s: %w", id, m.FileID, err)
		}
		if _, err := s.Restore(m.FileID, m.Version, w); err != nil {
			return fmt.Errorf("restore snapshot %s: %s v%d: %w", id, m.FileID, m.Version, err)
		}
	}
	return nil
}

// DeleteSnapshot deletes a snapshot's manifest and its member versions
// (version collection sweeps their garbage containers).
func (s *System) DeleteSnapshot(id string) error {
	snap, err := s.repo.Recipes.GetSnapshot(id)
	if err != nil {
		return err
	}
	for _, m := range snap.Members {
		if _, err := s.DeleteVersion(m.FileID, m.Version); err != nil {
			return fmt.Errorf("delete snapshot %s: %s v%d: %w", id, m.FileID, m.Version, err)
		}
	}
	return s.repo.Recipes.DeleteSnapshot(id)
}

// Snapshots lists stored snapshot IDs.
func (s *System) Snapshots() ([]string, error) { return s.repo.Recipes.Snapshots() }

// SnapshotInfo loads one snapshot's manifest.
func (s *System) SnapshotInfo(id string) (*Snapshot, error) {
	return s.repo.Recipes.GetSnapshot(id)
}

// Files lists every backed-up file.
func (s *System) Files() ([]string, error) { return s.repo.Recipes.Files() }

// Versions lists a file's stored versions in ascending order.
func (s *System) Versions(fileID string) ([]int, error) {
	return s.repo.Recipes.Versions(fileID)
}

// SpaceUsage summarises the storage layer.
type SpaceUsage struct {
	ContainerBytes int64 // chunk payloads + container metadata
	RecipeBytes    int64 // recipes, recipe indexes, catalog
	IndexBytes     int64 // similar-file index + global index (Rocks-OSS)
	TotalBytes     int64
}

// SpaceUsage measures occupied space by OSS namespace (Fig 9 / Fig 10c).
func (s *System) SpaceUsage() (SpaceUsage, error) {
	var u SpaceUsage
	sum := func(prefix string) (int64, error) {
		keys, err := s.repo.Base.List(prefix)
		if err != nil {
			return 0, err
		}
		var t int64
		for _, k := range keys {
			n, err := s.repo.Base.Head(k)
			if err != nil {
				return 0, err
			}
			t += n
		}
		return t, nil
	}
	var err error
	if u.ContainerBytes, err = sum("containers/"); err != nil {
		return u, err
	}
	var rb, cb int64
	if rb, err = sum("recipes/"); err != nil {
		return u, err
	}
	if cb, err = sum("catalog/"); err != nil {
		return u, err
	}
	u.RecipeBytes = rb + cb
	var si, gi int64
	if si, err = sum("simindex/"); err != nil {
		return u, err
	}
	if gi, err = sum("gidx/"); err != nil {
		return u, err
	}
	u.IndexBytes = si + gi
	u.TotalBytes = u.ContainerBytes + u.RecipeBytes + u.IndexBytes
	return u, nil
}

// Config returns the system's effective configuration.
func (s *System) Config() Config { return s.repo.Config }

// Metrics is an aggregate operational snapshot of the deployment.
type Metrics struct {
	LNodes      int
	Files       int
	Versions    int
	Containers  int
	Snapshots   int
	GlobalIndex globalindex.Stats
	Maintenance gnode.MaintStats
	Space       SpaceUsage
}

// Metrics gathers an operational snapshot (files, versions, containers,
// index and maintenance counters, space by namespace).
func (s *System) Metrics() (Metrics, error) {
	var m Metrics
	m.LNodes = s.LNodes()
	files, err := s.Files()
	if err != nil {
		return m, err
	}
	m.Files = len(files)
	for _, f := range files {
		vs, err := s.Versions(f)
		if err != nil {
			return m, err
		}
		m.Versions += len(vs)
	}
	ids, err := s.repo.Containers.List()
	if err != nil {
		return m, err
	}
	m.Containers = len(ids)
	snaps, err := s.Snapshots()
	if err != nil {
		return m, err
	}
	m.Snapshots = len(snaps)
	m.GlobalIndex = s.repo.Global.Stats()
	m.Maintenance = s.maint.Stats()
	m.Space, err = s.SpaceUsage()
	return m, err
}
