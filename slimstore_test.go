package slimstore

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"slimstore/internal/chunker"
	"slimstore/internal/oss"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.ChunkParams = chunker.ParamsForAvg(4 << 10)
	cfg.ContainerCapacity = 256 << 10
	cfg.SegmentChunks = 64
	cfg.CacheMemBytes = 16 << 20
	cfg.CacheDiskBytes = 64 << 20
	cfg.LAWChunks = 256
	cfg.PrefetchThreads = 2
	return cfg
}

func genData(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestSystemEndToEnd(t *testing.T) {
	sys, err := OpenMemory(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := genData(1, 2<<20)
	st, err := sys.Backup("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Optimize(st); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sys.Restore("f", st.Version, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("round trip corrupt")
	}
	files, err := sys.Files()
	if err != nil || len(files) != 1 || files[0] != "f" {
		t.Fatalf("Files = %v, %v", files, err)
	}
	vs, err := sys.Versions("f")
	if err != nil || len(vs) != 1 {
		t.Fatalf("Versions = %v, %v", vs, err)
	}
	u, err := sys.SpaceUsage()
	if err != nil {
		t.Fatal(err)
	}
	if u.ContainerBytes == 0 || u.RecipeBytes == 0 || u.TotalBytes < u.ContainerBytes {
		t.Fatalf("space usage: %+v", u)
	}
}

func TestConcurrentJobsAcrossLNodes(t *testing.T) {
	sys, err := OpenMemory(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.ScaleLNodes(4)
	if sys.LNodes() != 4 {
		t.Fatalf("LNodes = %d", sys.LNodes())
	}

	const jobs = 8
	datas := make([][]byte, jobs)
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		datas[i] = genData(int64(10+i), 1<<20)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = sys.Backup(fmt.Sprintf("file%d", i), datas[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	// Concurrent restores.
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			if _, err := sys.Restore(fmt.Sprintf("file%d", i), 0, &buf); err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(buf.Bytes(), datas[i]) {
				errs[i] = fmt.Errorf("file%d corrupt", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("restore %d: %v", i, err)
		}
	}
}

func TestDeleteVersionThroughFacade(t *testing.T) {
	sys, err := OpenMemory(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	d0 := genData(20, 1<<20)
	d1 := append(append([]byte{}, genData(21, 512<<10)...), d0[512<<10:]...)
	if _, err := sys.Backup("f", d0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Backup("f", d1); err != nil {
		t.Fatal(err)
	}
	before, _ := sys.SpaceUsage()
	if _, err := sys.DeleteVersion("f", 0); err != nil {
		t.Fatal(err)
	}
	after, _ := sys.SpaceUsage()
	if after.TotalBytes > before.TotalBytes {
		t.Fatalf("space grew after delete: %d -> %d", before.TotalBytes, after.TotalBytes)
	}
	var buf bytes.Buffer
	if _, err := sys.Restore("f", 1, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), d1) {
		t.Fatal("surviving version corrupt")
	}
	if _, err := sys.Restore("f", 0, &bytes.Buffer{}); err == nil {
		t.Fatal("deleted version restorable")
	}
}

func TestAuditOnHealthySystem(t *testing.T) {
	sys, err := OpenMemory(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Backup("f", genData(30, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Optimize(st); err != nil {
		t.Fatal(err)
	}
	audit, err := sys.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if audit.ContainersSwept != 0 {
		t.Fatalf("audit swept %d containers on a healthy system", audit.ContainersSwept)
	}
}

func TestOpenDirectory(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenDirectory(dir, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := genData(40, 512<<10)
	if _, err := sys.Backup("f", data); err != nil {
		t.Fatal(err)
	}
	// Reopen: state persisted on disk.
	sys2, err := OpenDirectory(dir, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sys2.Restore("f", 0, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("disk-backed round trip corrupt")
	}
}

func TestBackupAllAndVerify(t *testing.T) {
	sys, err := OpenMemory(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.ScaleLNodes(3)
	files := map[string][]byte{}
	for i := 0; i < 6; i++ {
		files[fmt.Sprintf("batch/file%d", i)] = genData(int64(60+i), 512<<10)
	}
	stats, err := sys.BackupAll(files, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(files) {
		t.Fatalf("got %d stats, want %d", len(stats), len(files))
	}
	if err := sys.OptimizeAll(stats); err != nil {
		t.Fatal(err)
	}
	for id, data := range files {
		st, err := sys.Verify(id, 0)
		if err != nil {
			t.Fatalf("verify %s: %v", id, err)
		}
		if st.Bytes != int64(len(data)) {
			t.Fatalf("verify %s: %d bytes, want %d", id, st.Bytes, len(data))
		}
		var buf bytes.Buffer
		if _, err := sys.Restore(id, 0, &buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("%s corrupt after batch backup", id)
		}
	}
}

func TestSystemOverHTTP(t *testing.T) {
	// A full deployment against the HTTP object-store server: the
	// multi-process topology of cmd/ossserver, in-process.
	backend := NewMemoryStore()
	srv := httptest.NewServer(oss.NewServer(backend))
	defer srv.Close()

	sys, err := OpenHTTP(srv.URL, srv.Client(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := genData(70, 1<<20)
	st, err := sys.Backup("remote/file", data)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Optimize(st); err != nil {
		t.Fatal(err)
	}

	// A second System (another process in the paper's deployment) sees
	// the same repository through the same server.
	sys2, err := OpenHTTP(srv.URL, srv.Client(), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sys2.Restore("remote/file", 0, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("cross-process HTTP round trip corrupt")
	}
	if _, err := sys2.Verify("remote/file", 0); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	sys, err := OpenMemory(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	mkFiles := func(seed int64) map[string][]byte {
		out := map[string][]byte{}
		for i := 0; i < 3; i++ {
			out[fmt.Sprintf("vol/file%d", i)] = genData(seed+int64(i), 512<<10)
		}
		return out
	}

	day1 := mkFiles(100)
	snap1, err := sys.BackupSnapshot("day1", day1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap1.Members) != 3 || snap1.TotalBytes != 3*512<<10 {
		t.Fatalf("snapshot = %+v", snap1)
	}

	// Day 2: light mutations of the same files.
	day2 := map[string][]byte{}
	for id, data := range day1 {
		d := append([]byte{}, data...)
		copy(d[:128], genData(777, 128))
		day2[id] = d
	}
	if _, err := sys.BackupSnapshot("day2", day2, 2); err != nil {
		t.Fatal(err)
	}

	ids, err := sys.Snapshots()
	if err != nil || len(ids) != 2 || ids[0] != "day1" || ids[1] != "day2" {
		t.Fatalf("Snapshots = %v, %v", ids, err)
	}

	// Restore day1 as a unit and compare every member.
	restored := map[string]*bytes.Buffer{}
	err = sys.RestoreSnapshot("day1", func(fileID string) (io.Writer, error) {
		b := &bytes.Buffer{}
		restored[fileID] = b
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range day1 {
		if !bytes.Equal(restored[id].Bytes(), want) {
			t.Fatalf("snapshot member %s corrupt", id)
		}
	}

	// Expire day1; day2 must survive intact.
	if err := sys.DeleteSnapshot("day1"); err != nil {
		t.Fatal(err)
	}
	if ids, _ := sys.Snapshots(); len(ids) != 1 || ids[0] != "day2" {
		t.Fatalf("Snapshots after delete = %v", ids)
	}
	if _, err := sys.SnapshotInfo("day1"); err == nil {
		t.Fatal("deleted snapshot still loads")
	}
	restored = map[string]*bytes.Buffer{}
	err = sys.RestoreSnapshot("day2", func(fileID string) (io.Writer, error) {
		b := &bytes.Buffer{}
		restored[fileID] = b
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range day2 {
		if !bytes.Equal(restored[id].Bytes(), want) {
			t.Fatalf("surviving snapshot member %s corrupt", id)
		}
	}
}

func TestQueueOptimizeBackground(t *testing.T) {
	sys, err := OpenMemory(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	data := genData(200, 1<<20)
	st, err := sys.Backup("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.QueueOptimize(st); err != nil {
		t.Fatal(err)
	}
	sys.DrainOptimize()
	ms := sys.MaintenanceStats()
	if ms.Processed != 1 || ms.Errors != 0 {
		t.Fatalf("maintenance stats = %+v", ms)
	}
	var buf bytes.Buffer
	if _, err := sys.Restore("f", 0, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("restore corrupt after background optimize")
	}
}

func TestMetricsAndNamespaces(t *testing.T) {
	base := NewMemoryStore()
	// Two tenants share one physical store but see isolated systems.
	sysA, err := Open(NamespacedStore(base, "tenantA"), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	sysB, err := Open(NamespacedStore(base, "tenantB"), smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	dataA := genData(300, 512<<10)
	if _, err := sysA.Backup("shared-name", dataA); err != nil {
		t.Fatal(err)
	}
	dataB := genData(301, 512<<10)
	if _, err := sysB.Backup("shared-name", dataB); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sysA.Restore("shared-name", 0, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), dataA) {
		t.Fatal("tenant A sees tenant B's data")
	}
	filesB, _ := sysB.Files()
	if len(filesB) != 1 {
		t.Fatalf("tenant B files = %v", filesB)
	}

	m, err := sysA.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Files != 1 || m.Versions != 1 || m.Containers == 0 || m.LNodes != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Space.TotalBytes == 0 {
		t.Fatal("metrics space empty")
	}
}

func TestRestoreRangeFacade(t *testing.T) {
	sys, err := OpenMemory(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := genData(310, 1<<20)
	if _, err := sys.Backup("f", data); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st, err := sys.RestoreRange("f", 0, 100<<10, 64<<10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data[100<<10:164<<10]) {
		t.Fatal("facade range restore corrupt")
	}
	if st.Bytes != 64<<10 {
		t.Fatalf("range bytes = %d", st.Bytes)
	}
}
