package cbf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"slimstore/internal/fingerprint"
)

func fpOf(seed int64) fingerprint.FP {
	var b [16]byte
	r := rand.New(rand.NewSource(seed))
	r.Read(b[:])
	return fingerprint.OfBytes(b[:])
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1000, 0.01)
	var fps []fingerprint.FP
	for i := 0; i < 1000; i++ {
		fp := fpOf(int64(i))
		fps = append(fps, fp)
		b.Add(fp)
	}
	for i, fp := range fps {
		if !b.MayContain(fp) {
			t.Fatalf("false negative for item %d", i)
		}
	}
	if b.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", b.Len())
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(10000, 0.01)
	for i := 0; i < 10000; i++ {
		b.Add(fpOf(int64(i)))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.MayContain(fpOf(int64(100000 + i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want <= 0.03", rate)
	}
}

func TestBloomReset(t *testing.T) {
	b := NewBloom(100, 0.01)
	fp := fpOf(1)
	b.Add(fp)
	b.Reset()
	if b.MayContain(fp) || b.Len() != 0 {
		t.Fatal("Reset did not clear the filter")
	}
}

func TestCountingAddRemove(t *testing.T) {
	c := NewCounting(1000, 0.001)
	fp := fpOf(42)
	for i := 0; i < 5; i++ {
		c.Add(fp)
	}
	if got := c.Count(fp); got < 5 {
		t.Fatalf("Count = %d, want >= 5", got)
	}
	for i := 0; i < 5; i++ {
		c.Remove(fp)
	}
	if c.MayContain(fp) {
		// Possible only through collision with another entry; with an empty
		// filter it must be exact.
		t.Fatal("fingerprint still present after matched removes in empty filter")
	}
}

func TestCountingReferenceTracking(t *testing.T) {
	// The FV-cache usage pattern: add each chunk once per future reference,
	// decrement as chunks are restored, evict when the count hits zero.
	c := NewCounting(5000, 0.001)
	refs := make(map[fingerprint.FP]int)
	r := rand.New(rand.NewSource(7))
	var fps []fingerprint.FP
	for i := 0; i < 500; i++ {
		fp := fpOf(int64(i))
		n := 1 + r.Intn(4)
		refs[fp] = n
		fps = append(fps, fp)
		for j := 0; j < n; j++ {
			c.Add(fp)
		}
	}
	for _, fp := range fps {
		for refs[fp] > 0 {
			if !c.MayContain(fp) {
				t.Fatalf("chunk with %d remaining refs reported absent", refs[fp])
			}
			c.Remove(fp)
			refs[fp]--
		}
	}
	for _, fp := range fps {
		if c.Count(fp) > 0 {
			// Tolerate collisions at a low rate.
			t.Logf("residual count for %s (collision)", fp.Short())
		}
	}
	if c.Len() != 0 {
		t.Fatalf("net length %d, want 0", c.Len())
	}
}

func TestQuickBloomMembership(t *testing.T) {
	f := func(items [][]byte) bool {
		b := NewBloom(len(items)+1, 0.01)
		for _, it := range items {
			b.Add(fingerprint.OfBytes(it))
		}
		for _, it := range items {
			if !b.MayContain(fingerprint.OfBytes(it)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParamsClamp(t *testing.T) {
	b := NewBloom(0, 2.0) // degenerate inputs clamp to sane defaults
	b.Add(fpOf(1))
	if !b.MayContain(fpOf(1)) {
		t.Fatal("degenerate-params filter dropped an item")
	}
	if b.Bits() < 64 {
		t.Fatalf("Bits = %d, want >= 64", b.Bits())
	}
}

func BenchmarkBloomAdd(b *testing.B) {
	bl := NewBloom(1<<20, 0.01)
	fp := fpOf(1)
	for i := 0; i < b.N; i++ {
		bl.Add(fp)
	}
}

func BenchmarkCountingCount(b *testing.B) {
	c := NewCounting(1<<20, 0.01)
	fp := fpOf(1)
	c.Add(fp)
	for i := 0; i < b.N; i++ {
		c.Count(fp)
	}
}
