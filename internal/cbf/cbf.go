// Package cbf provides a standard Bloom filter and a counting Bloom filter.
//
// SLIMSTORE uses a counting Bloom filter per restoring file to track how
// many times each chunk will still be referenced (the full-vision restore
// cache, paper §V-A), and a plain Bloom filter in front of the global index
// to filter out unique chunks cheaply during reverse deduplication (§VI-A).
package cbf

import (
	"math"

	"slimstore/internal/fingerprint"
)

// hashPair derives the two base hashes of the Kirsch-Mitzenmacher
// double-hashing construction; slot i is (h1 + i*h2) mod m. Callers
// compute slots inline rather than through a scratch slice so that the
// read-only probes (MayContain, Count) stay safe under a shared RLock.
func hashPair(fp fingerprint.FP) (h1, h2 uint64) {
	h1 = fp.Uint64()
	// Second independent hash from the trailing bytes.
	for i := 8; i < fingerprint.Size; i++ {
		h2 = h2*131 + uint64(fp[i])
	}
	h2 |= 1 // must be odd so all slots are reachable
	return h1, h2
}

// params picks the optimal bit count and hash count for n items at the
// given false-positive rate.
func params(n int, fpRate float64) (m, k int) {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	mm := -float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)
	kk := mm / float64(n) * math.Ln2
	m = int(math.Ceil(mm))
	if m < 64 {
		m = 64
	}
	k = int(math.Round(kk))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return m, k
}

// Bloom is a fixed-size Bloom filter over chunk fingerprints. Add
// mutates; MayContain is read-only, so any number of concurrent
// MayContain calls may share the filter with each other (writers still
// need external exclusion).
type Bloom struct {
	bits []uint64
	m, k int
	n    int
}

// NewBloom sizes a filter for n expected items at the given false-positive
// rate (0 < fpRate < 1).
func NewBloom(n int, fpRate float64) *Bloom {
	m, k := params(n, fpRate)
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// Add inserts fp.
func (b *Bloom) Add(fp fingerprint.FP) {
	h1, h2 := hashPair(fp)
	for i := 0; i < b.k; i++ {
		s := int((h1 + uint64(i)*h2) % uint64(b.m))
		b.bits[s/64] |= 1 << uint(s%64)
	}
	b.n++
}

// MayContain reports whether fp may have been added (false positives
// possible, false negatives impossible).
func (b *Bloom) MayContain(fp fingerprint.FP) bool {
	h1, h2 := hashPair(fp)
	for i := 0; i < b.k; i++ {
		s := int((h1 + uint64(i)*h2) % uint64(b.m))
		if b.bits[s/64]&(1<<uint(s%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of Add calls.
func (b *Bloom) Len() int { return b.n }

// Bits returns the filter size in bits.
func (b *Bloom) Bits() int { return b.m }

// Reset clears the filter.
func (b *Bloom) Reset() {
	for i := range b.bits {
		b.bits[i] = 0
	}
	b.n = 0
}

// Counting is a counting Bloom filter: Add increments k counters, Remove
// decrements them, and Count lower-bounds by the minimum counter. Counters
// are 16-bit and saturate rather than overflow. Count/MayContain are
// read-only and safe to share between concurrent readers.
type Counting struct {
	counters []uint16
	m, k     int
	n        int
}

// NewCounting sizes a counting filter for n expected items at the given
// false-positive rate.
func NewCounting(n int, fpRate float64) *Counting {
	m, k := params(n, fpRate)
	return &Counting{counters: make([]uint16, m), m: m, k: k}
}

// Add increments the counters for fp. Multiple Adds of the same fingerprint
// accumulate, recording reference counts.
func (c *Counting) Add(fp fingerprint.FP) {
	h1, h2 := hashPair(fp)
	for i := 0; i < c.k; i++ {
		s := (h1 + uint64(i)*h2) % uint64(c.m)
		if c.counters[s] != math.MaxUint16 {
			c.counters[s]++
		}
	}
	c.n++
}

// Remove decrements the counters for fp. Removing a fingerprint that was
// never added can corrupt other entries, as with any counting Bloom filter;
// callers must pair Add/Remove.
func (c *Counting) Remove(fp fingerprint.FP) {
	h1, h2 := hashPair(fp)
	for i := 0; i < c.k; i++ {
		s := (h1 + uint64(i)*h2) % uint64(c.m)
		if c.counters[s] > 0 && c.counters[s] != math.MaxUint16 {
			c.counters[s]--
		}
	}
	if c.n > 0 {
		c.n--
	}
}

// Count returns an upper bound on how many times fp is currently present
// (the minimum of its counters). Zero means definitely absent.
func (c *Counting) Count(fp fingerprint.FP) int {
	min := math.MaxUint16 + 1
	h1, h2 := hashPair(fp)
	for i := 0; i < c.k; i++ {
		s := (h1 + uint64(i)*h2) % uint64(c.m)
		if int(c.counters[s]) < min {
			min = int(c.counters[s])
		}
	}
	return min
}

// MayContain reports whether fp may be present.
func (c *Counting) MayContain(fp fingerprint.FP) bool { return c.Count(fp) > 0 }

// Len returns the net number of items (Adds minus Removes).
func (c *Counting) Len() int { return c.n }

// Reset clears the filter.
func (c *Counting) Reset() {
	for i := range c.counters {
		c.counters[i] = 0
	}
	c.n = 0
}
