// Package chaos is a seeded fault-injection harness for the whole system.
// It drives randomized backup / restore / compact / delete / scrub cycles
// against an in-memory OSS while injecting crashes (put budgets that run
// out mid-operation, followed by a reboot that replays the intent journal)
// and silent at-rest corruption (byte flips in stored container payloads).
//
// Everything is driven by one seeded RNG, so a failing run is replayable
// by seed. The harness checks two invariants throughout:
//
//  1. No silent corruption: a restore either returns byte-identical data
//     or fails with an error. Wrong bytes are an immediate harness failure.
//  2. Loud failures need a cause: an operation may only fail while faults
//     are armed or injected corruption is outstanding. Unexplained errors
//     fail the run.
//
// After the op mix, a heal phase clears faults, reboots, scrubs and
// sweeps; every version that survived (scrub reports unrecoverable loss
// explicitly) must then restore byte-identical, and a second scrub must
// find nothing left to do.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
)

// Options configures a chaos run. The zero value of every field selects a
// sensible default; Seed 0 is a valid (and deterministic) seed.
type Options struct {
	Seed  int64
	Ops   int                              // mixed operations to run (default 200)
	Files int                              // distinct backup streams (default 3)
	Log   func(format string, args ...any) // optional progress logger
}

// Result counts what a run did and what the invariants caught.
type Result struct {
	Ops            int
	Backups        int
	BackupFailures int
	Restores       int
	RangeRestores  int
	Optimizes      int
	Deletes        int
	Scrubs         int
	Sweeps         int

	Crashes             int // operations killed by an exhausted put budget
	Reboots             int // repo reopens (journal replay runs each time)
	FaultedReads        int // restore attempts under a transient read-fault rate
	CorruptionsInjected int // at-rest byte flips

	LoudFailures      int // operations that failed with faults armed or rot outstanding
	RepairedChunks    int
	Quarantined       int
	DataLossDetected  int // versions scrub declared unrecoverable (loudly)
	SilentCorruptions int // restores returning wrong bytes — must stay 0

	LiveVersions int // versions alive and verified byte-identical after heal
}

type version struct {
	ver  int
	data []byte
}

type file struct {
	id       string
	versions []version
	pending  *lnode.BackupStats // last backup's stats, consumed by optimize
}

type harness struct {
	opts   Options
	rng    *rand.Rand
	cfg    core.Config
	mem    *oss.Mem
	faulty *oss.Faulty
	repo   *core.Repo
	ln     *lnode.LNode
	gn     *gnode.GNode
	files  []*file
	dirty  bool // at-rest corruption injected since the last scrub
	res    *Result
}

// Run executes a seeded chaos schedule and returns its counters. A
// non-nil error means an invariant was violated (the Result is still
// returned for diagnosis); fault-induced loud failures are not errors.
func Run(opts Options) (*Result, error) {
	if opts.Ops <= 0 {
		opts.Ops = 200
	}
	if opts.Files <= 0 {
		opts.Files = 3
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}

	cfg := core.DefaultConfig()
	cfg.ChunkParams = chunker.ParamsForAvg(4 << 10)
	cfg.ContainerCapacity = 128 << 10
	cfg.SegmentChunks = 64
	cfg.SampleRatio = 8
	cfg.ChunkMerging = false
	cfg.CacheMemBytes = 16 << 20
	cfg.CacheDiskBytes = 64 << 20
	cfg.LAWChunks = 256
	cfg.PrefetchThreads = 0 // keep the schedule fully deterministic
	cfg.SparseUtilization = 0.9

	mem := oss.NewMem()
	h := &harness{
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		cfg:    cfg,
		mem:    mem,
		faulty: oss.NewFaulty(mem),
		res:    &Result{},
	}
	repo, err := core.OpenRepo(h.faulty, h.cfg)
	if err != nil {
		return h.res, err
	}
	h.attach(repo)
	for i := 0; i < opts.Files; i++ {
		h.files = append(h.files, &file{id: fmt.Sprintf("file-%d", i)})
	}

	for i := 0; i < opts.Ops; i++ {
		h.res.Ops++
		if err := h.step(); err != nil {
			return h.res, fmt.Errorf("chaos: seed %d op %d: %w", opts.Seed, i, err)
		}
	}
	if err := h.heal(); err != nil {
		return h.res, fmt.Errorf("chaos: seed %d heal: %w", opts.Seed, err)
	}
	return h.res, nil
}

func (h *harness) attach(repo *core.Repo) {
	h.repo = repo
	h.ln = lnode.New(repo, "chaos-l0")
	h.gn = gnode.New(repo)
}

// reboot simulates a process crash: the in-memory repo state (buffered
// index writes, caches) is discarded and the store reopened, which replays
// the intent journal and the kvstore WAL.
func (h *harness) reboot() error {
	h.faulty.Clear()
	repo, err := core.OpenRepo(h.faulty, h.cfg)
	if err != nil {
		return fmt.Errorf("reboot: %w", err)
	}
	h.attach(repo)
	h.res.Reboots++
	return nil
}

func (h *harness) step() error {
	switch p := h.rng.Intn(100); {
	case p < 30:
		return h.opBackup()
	case p < 52:
		return h.opRestore(false)
	case p < 62:
		return h.opRestore(true)
	case p < 74:
		return h.opOptimize()
	case p < 82:
		return h.opDelete()
	case p < 89:
		return h.opCorrupt()
	case p < 94:
		return h.opScrub()
	default:
		return h.opSweep()
	}
}

// gen produces deterministic pseudo-random content from the harness RNG.
func (h *harness) gen(n int) []byte {
	b := make([]byte, n)
	h.rng.Read(b)
	return b
}

// nextData evolves a file's content: mostly point mutations of the latest
// version (exercising dedup and sparse containers), sometimes fresh data.
func (h *harness) nextData(f *file) []byte {
	if len(f.versions) == 0 || h.rng.Intn(4) == 0 {
		return h.gen(256<<10 + h.rng.Intn(512<<10))
	}
	prev := f.versions[len(f.versions)-1].data
	data := append([]byte{}, prev...)
	for i := 0; i < 4+h.rng.Intn(12); i++ {
		data[h.rng.Intn(len(data))] ^= byte(1 + h.rng.Intn(255))
	}
	if h.rng.Intn(3) == 0 { // grow the tail
		data = append(data, h.gen(16<<10+h.rng.Intn(64<<10))...)
	}
	return data
}

// allowedFailure reports whether an operation failing with err is
// explainable, and records it; unexplainable errors are returned.
func (h *harness) allowedFailure(op string, err error, crashed bool) error {
	if crashed && errors.Is(err, oss.ErrInjected) {
		h.res.Crashes++
		return nil
	}
	if h.dirty || crashed {
		h.res.LoudFailures++
		return nil
	}
	return fmt.Errorf("%s failed with no faults armed: %w", op, err)
}

// syncFile reconciles the model with the store after a crashed mutation:
// every model version still present must be byte-identical; the version
// named may have committed (kept if it restores) or not (dropped).
func (h *harness) syncFile(f *file) error {
	vs, err := h.repo.Recipes.Versions(f.id)
	if err != nil {
		return err
	}
	present := make(map[int]bool, len(vs))
	for _, v := range vs {
		present[v] = true
	}
	kept := f.versions[:0]
	for _, ver := range f.versions {
		if present[ver.ver] {
			kept = append(kept, ver)
			delete(present, ver.ver)
		}
	}
	f.versions = kept
	if len(present) != 0 {
		return fmt.Errorf("file %s has unknown versions %v after crash", f.id, vs)
	}
	return nil
}

func (h *harness) opBackup() error {
	f := h.files[h.rng.Intn(len(h.files))]
	data := h.nextData(f)
	next := 0
	if n := len(f.versions); n > 0 {
		next = f.versions[n-1].ver + 1
	}

	crashed := h.rng.Intn(4) == 0
	if crashed {
		h.faulty.FailPutsAfter(5 + h.rng.Intn(80))
	}
	st, err := h.ln.Backup(f.id, data)
	h.faulty.Clear()
	if err == nil {
		f.versions = append(f.versions, version{st.Version, data})
		f.pending = st
		h.res.Backups++
		h.opts.Log("backup %s v%d (crash=%v) new=%v sparse=%v", f.id, st.Version, crashed, st.NewContainers, st.SparseContainers)
		return nil
	}
	h.opts.Log("backup %s v%d FAILED (crash=%v): %v", f.id, next, crashed, err)

	h.res.BackupFailures++
	if aerr := h.allowedFailure("backup", err, crashed); aerr != nil {
		return aerr
	}
	if err := h.reboot(); err != nil {
		return err
	}
	// The interrupted version either committed whole or not at all.
	vs, err := h.repo.Recipes.Versions(f.id)
	if err != nil {
		return err
	}
	for _, v := range vs {
		if v == next {
			if !h.restoreMatches(f.id, next, data) {
				return fmt.Errorf("half-committed backup: %s v%d is registered but does not restore", f.id, next)
			}
			f.versions = append(f.versions, version{next, data})
			return nil
		}
	}
	return h.syncFile(f)
}

// pickVersion selects a random live version, or nil.
func (h *harness) pickVersion() (*file, *version) {
	var candidates []*file
	for _, f := range h.files {
		if len(f.versions) > 0 {
			candidates = append(candidates, f)
		}
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	f := candidates[h.rng.Intn(len(candidates))]
	return f, &f.versions[h.rng.Intn(len(f.versions))]
}

// restoreMatches restores without fault arming and compares bytes.
func (h *harness) restoreMatches(fileID string, ver int, want []byte) bool {
	var buf bytes.Buffer
	if _, err := h.ln.Restore(fileID, ver, &buf); err != nil {
		return false
	}
	return bytes.Equal(buf.Bytes(), want)
}

func (h *harness) opRestore(ranged bool) error {
	f, v := h.pickVersion()
	if v == nil {
		return h.opBackup()
	}

	// Occasionally run the restore under a transient read-fault rate; it
	// may then fail loudly, but a success still has to be exact.
	faulted := h.rng.Intn(5) == 0
	if faulted {
		h.faulty.SetRand(rand.New(rand.NewSource(h.rng.Int63())))
		h.faulty.FailRate(0.05)
		h.res.FaultedReads++
	}
	defer h.faulty.Clear()

	var want []byte
	var buf bytes.Buffer
	var err error
	if ranged {
		off := int64(h.rng.Intn(len(v.data)))
		length := int64(1 + h.rng.Intn(len(v.data)))
		end := off + length
		if end > int64(len(v.data)) {
			end = int64(len(v.data))
		}
		want = v.data[off:end]
		_, err = h.ln.RestoreRange(f.id, v.ver, off, length, &buf)
		h.res.RangeRestores++
	} else {
		want = v.data
		_, err = h.ln.Restore(f.id, v.ver, &buf)
		h.res.Restores++
	}
	if err != nil {
		return h.allowedFailure("restore", err, faulted)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		h.res.SilentCorruptions++
		return fmt.Errorf("SILENT CORRUPTION: restore %s v%d returned wrong bytes", f.id, v.ver)
	}
	return nil
}

func (h *harness) opOptimize() error {
	var f *file
	for _, c := range h.files {
		if c.pending != nil {
			f = c
			break
		}
	}
	if f == nil {
		return h.opBackup()
	}
	st := f.pending
	f.pending = nil // consumed either way; stats go stale after reorganisation

	crashed := h.rng.Intn(3) == 0
	if crashed {
		h.faulty.FailPutsAfter(h.rng.Intn(40))
	}
	_, err := h.gn.ReverseDedup(st.NewContainers)
	if err == nil {
		_, err = h.gn.CompactSparse(st.FileID, st.Version, st.SparseContainers)
	}
	h.faulty.Clear()
	if err == nil {
		h.res.Optimizes++
		h.opts.Log("optimize %s v%d (crash=%v) new=%v sparse=%v", st.FileID, st.Version, crashed, st.NewContainers, st.SparseContainers)
		return nil
	}
	h.opts.Log("optimize %s v%d FAILED (crash=%v): %v", st.FileID, st.Version, crashed, err)
	if aerr := h.allowedFailure("optimize", err, crashed); aerr != nil {
		return aerr
	}
	// Reorganisation never loses versions: reboot replays the journal and
	// all model state must survive intact (verified by later restores).
	return h.reboot()
}

func (h *harness) opDelete() error {
	var candidates []*file
	for _, f := range h.files {
		if len(f.versions) >= 2 {
			candidates = append(candidates, f)
		}
	}
	if len(candidates) == 0 {
		return h.opBackup()
	}
	f := candidates[h.rng.Intn(len(candidates))]
	i := h.rng.Intn(len(f.versions) - 1) // keep the newest version
	target := f.versions[i].ver

	crashed := h.rng.Intn(3) == 0
	if crashed {
		h.faulty.FailPutsAfter(h.rng.Intn(30))
	}
	_, err := h.gn.DeleteVersion(f.id, target)
	h.faulty.Clear()
	h.opts.Log("delete %s v%d (crash=%v) err=%v", f.id, target, crashed, err)
	if err == nil {
		f.versions = append(f.versions[:i], f.versions[i+1:]...)
		h.res.Deletes++
		return nil
	}
	if aerr := h.allowedFailure("delete", err, crashed); aerr != nil {
		return aerr
	}
	if err := h.reboot(); err != nil {
		return err
	}
	// Replay settles the deletion one way or the other.
	return h.syncFile(f)
}

// opCorrupt flips one byte of a stored container payload — silent rot the
// read path must catch and scrub must heal or quarantine.
func (h *harness) opCorrupt() error {
	keys, err := h.mem.List(container.Prefix)
	if err != nil {
		return err
	}
	var data []string
	for _, k := range keys {
		if strings.HasSuffix(k, ".data") {
			data = append(data, k)
		}
	}
	if len(data) == 0 {
		return h.opBackup()
	}
	key := data[h.rng.Intn(len(data))]
	raw, err := h.mem.Get(key)
	if err != nil {
		return err
	}
	raw[h.rng.Intn(len(raw))] ^= byte(1 + h.rng.Intn(255))
	if err := h.mem.Put(key, raw); err != nil {
		return err
	}
	h.dirty = true
	h.res.CorruptionsInjected++
	h.opts.Log("corrupted %s", key)
	return nil
}

func (h *harness) opScrub() error {
	sc, err := h.gn.Scrub()
	if err != nil {
		return fmt.Errorf("scrub: %w", err)
	}
	h.res.Scrubs++
	h.res.RepairedChunks += sc.RepairedChunks
	h.res.Quarantined += len(sc.Quarantined)
	h.opts.Log("scrub: %+v", sc)
	h.dirty = false // every outstanding flip is now repaired or quarantined
	if len(sc.Lost) == 0 && len(sc.Quarantined) == 0 {
		return nil
	}
	return h.dropLostVersions()
}

// dropLostVersions re-checks every model version after a scrub reported
// damage: versions restore byte-identical (kept) or fail loudly (counted
// as detected data loss and dropped). Wrong bytes remain fatal.
func (h *harness) dropLostVersions() error {
	for _, f := range h.files {
		kept := f.versions[:0]
		for _, v := range f.versions {
			var buf bytes.Buffer
			_, err := h.ln.Restore(f.id, v.ver, &buf)
			switch {
			case err != nil:
				h.opts.Log("data loss: %s v%d: %v", f.id, v.ver, err)
				h.res.DataLossDetected++
				// Retire the unrecoverable version from the store too, as an
				// operator would after a scrub report. Leaving it registered
				// would desynchronise version numbering: the model forgets
				// v, but the store would keep assigning numbers above it.
				if _, derr := h.gn.DeleteVersion(f.id, v.ver); derr != nil {
					return fmt.Errorf("retiring lost version %s v%d: %w", f.id, v.ver, derr)
				}
			case !bytes.Equal(buf.Bytes(), v.data):
				h.res.SilentCorruptions++
				return fmt.Errorf("SILENT CORRUPTION: post-scrub restore %s v%d returned wrong bytes", f.id, v.ver)
			default:
				kept = append(kept, v)
			}
		}
		f.versions = kept
	}
	return nil
}

func (h *harness) opSweep() error {
	as, err := h.gn.FullSweep()
	if err != nil {
		return h.allowedFailure("sweep", err, false)
	}
	h.opts.Log("sweep: %+v", as)
	h.res.Sweeps++
	return nil
}

// heal ends the run: clear faults, reboot, scrub, sweep — then every
// surviving version must restore byte-identical and a second scrub must
// find a fully healthy repo.
func (h *harness) heal() error {
	if err := h.reboot(); err != nil {
		return err
	}
	sc, err := h.gn.Scrub()
	if err != nil {
		return fmt.Errorf("heal scrub: %w", err)
	}
	h.res.Scrubs++
	h.res.RepairedChunks += sc.RepairedChunks
	h.res.Quarantined += len(sc.Quarantined)
	h.dirty = false
	if err := h.dropLostVersions(); err != nil {
		return err
	}
	if _, err := h.gn.FullSweep(); err != nil {
		return fmt.Errorf("heal sweep: %w", err)
	}
	for _, f := range h.files {
		for _, v := range f.versions {
			var buf bytes.Buffer
			if _, err := h.ln.Restore(f.id, v.ver, &buf); err != nil {
				return fmt.Errorf("healed restore %s v%d failed: %w", f.id, v.ver, err)
			}
			if !bytes.Equal(buf.Bytes(), v.data) {
				h.res.SilentCorruptions++
				return fmt.Errorf("SILENT CORRUPTION: healed restore %s v%d returned wrong bytes", f.id, v.ver)
			}
			if _, err := h.ln.RestoreRange(f.id, v.ver, int64(len(v.data)/3), int64(len(v.data)/3), io.Discard); err != nil {
				return fmt.Errorf("healed range restore %s v%d failed: %w", f.id, v.ver, err)
			}
			h.res.LiveVersions++
		}
	}
	sc2, err := h.gn.Scrub()
	if err != nil {
		return fmt.Errorf("post-heal scrub: %w", err)
	}
	h.res.Scrubs++
	if !sc2.Clean() || sc2.CorruptChunks != 0 || sc2.FooterRepairs != 0 || sc2.RebuiltContainers != 0 {
		return fmt.Errorf("repo not healthy after heal: %+v", sc2)
	}
	return nil
}
