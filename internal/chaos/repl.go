package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"time"

	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/gnode"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
	"slimstore/internal/repl"
)

// ReplOptions configures a replication chaos run: a fault repo whose
// G-shard replica groups get their leaders killed mid-sweep, compared
// against a fault-free twin with the identical layout and workload.
type ReplOptions struct {
	Seed     int64
	Shards   int // G-shards (default 4)
	Replicas int // kvstores per shard group (default 3)
	Log      func(format string, args ...any)
}

// ReplResult counts what the replication schedule did and observed.
type ReplResult struct {
	LeaderKills     int           // leaders crashed mid-sweep (one per shard group)
	Failovers       int64         // elections the groups ran to route around them
	NodeFailures    int64         // replica crashes the groups detected
	Restarts        int           // replicas rebooted and caught up from the log
	NoQuorumErrors  int           // loud ErrNoQuorum failures (expected, then recovered)
	DowntimeVirtual time.Duration // virtual failover cost charged to the sim clock
	SweepOps        int64         // index operations the twin's sweep issued
	LiveVersions    int           // versions verified byte-identical at the end
}

// replConfig is the shared layout of both repos in a replication run.
func replConfig(shards, replicas int) core.Config {
	cfg := core.DefaultConfig()
	cfg.ChunkParams = chunker.ParamsForAvg(4 << 10)
	cfg.ContainerCapacity = 128 << 10
	cfg.SegmentChunks = 64
	cfg.SampleRatio = 8
	cfg.ChunkMerging = false
	cfg.CacheMemBytes = 16 << 20
	cfg.CacheDiskBytes = 64 << 20
	cfg.LAWChunks = 256
	cfg.PrefetchThreads = 0
	cfg.SimilarityMinScore = 1.1 // force missed cross-file dups: real sweep work
	cfg.MaintWorkers = 4
	cfg.GlobalShards = shards
	cfg.GlobalReplicas = replicas
	return cfg
}

// replRepo is one side of the twin pair.
type replRepo struct {
	mem  *oss.Mem
	repo *core.Repo
	ln   *lnode.LNode
	gn   *gnode.GNode
	new  []container.ID
	live []fileVersion // versions that must survive the whole schedule
}

type fileVersion struct {
	name string
	ver  int
}

func openReplRepo(cfg core.Config) (*replRepo, error) {
	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, cfg)
	if err != nil {
		return nil, err
	}
	return &replRepo{mem: mem, repo: repo, ln: lnode.New(repo, "repl-l0"), gn: gnode.New(repo)}, nil
}

// seedWorkload drives byte-identical backups into a repo. Every file
// shares a common block (the L-node is configured to miss these
// cross-file duplicates, giving reverse dedup real repoints) and file
// "del" gets a second version so deleting v0 leaves the sweep real
// reclamation. Many files means many recipes — the sweep's mark phase
// probes the index once per recipe, giving the kill schedule a wide op
// span to land in.
func (r *replRepo) seedWorkload(files []seedFile) error {
	for _, f := range files {
		st, err := r.ln.Backup(f.name, f.data)
		if err != nil {
			return fmt.Errorf("backup %s: %w", f.name, err)
		}
		r.new = append(r.new, st.NewContainers...)
		if f.live {
			r.live = append(r.live, fileVersion{f.name, st.Version})
		}
	}
	return nil
}

type seedFile struct {
	name string
	data []byte
	live bool // must survive the schedule (not deleted)
}

// seedFiles builds the deterministic backup set both twins receive.
func seedFiles(seed int64) []seedFile {
	shared := genSeeded(seed+1, 384<<10)
	var files []seedFile
	for i := 0; i < 8; i++ {
		unique := genSeeded(seed+10+int64(i), 128<<10+int(seed%7)<<10)
		data := append(append([]byte(nil), shared...), unique...)
		files = append(files, seedFile{name: fmt.Sprintf("f%d", i), data: data, live: true})
	}
	// Two versions of "del": v0 is deleted before the sweep.
	files = append(files,
		seedFile{name: "del", data: genSeeded(seed+2, 256<<10), live: false},
		seedFile{name: "del", data: append(append([]byte(nil), shared[:128<<10]...), genSeeded(seed+3, 128<<10)...), live: true},
	)
	return files
}

// indexSnapshot dumps the global index in fingerprint order.
func (r *replRepo) indexSnapshot() (map[fingerprint.FP]container.ID, error) {
	m := map[fingerprint.FP]container.ID{}
	err := r.repo.Global.Scan(func(fp fingerprint.FP, id container.ID) bool {
		m[fp] = id
		return true
	})
	return m, err
}

// metaSnapshot serialises every container's metadata in ID order.
func (r *replRepo) metaSnapshot() (string, error) {
	ids, err := r.repo.Containers.List()
	if err != nil {
		return "", err
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var buf bytes.Buffer
	for _, id := range ids {
		m, err := r.repo.Containers.ReadMeta(id)
		if err != nil {
			return "", fmt.Errorf("meta %s: %w", id, err)
		}
		fmt.Fprintf(&buf, "%s size=%d\n", id, m.DataSize)
		for i := range m.Chunks {
			cm := &m.Chunks[i]
			fmt.Fprintf(&buf, "  %s off=%d size=%d deleted=%v\n", cm.FP.Short(), cm.Offset, cm.Size, cm.Deleted)
		}
	}
	return buf.String(), nil
}

func (r *replRepo) restore(name string, ver int) ([]byte, error) {
	var buf bytes.Buffer
	if _, err := r.ln.Restore(name, ver, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// assertTwinEqual demands the fault repo converged to exactly the
// fault-free twin's state: index dump, container metadata, and restored
// bytes of every surviving version.
func assertTwinEqual(fault, twin *replRepo, res *ReplResult) error {
	fi, err := fault.indexSnapshot()
	if err != nil {
		return fmt.Errorf("fault index: %w", err)
	}
	ti, err := twin.indexSnapshot()
	if err != nil {
		return fmt.Errorf("twin index: %w", err)
	}
	if !reflect.DeepEqual(fi, ti) {
		return fmt.Errorf("index diverges: fault %d entries, twin %d", len(fi), len(ti))
	}
	fm, err := fault.metaSnapshot()
	if err != nil {
		return err
	}
	tm, err := twin.metaSnapshot()
	if err != nil {
		return err
	}
	if fm != tm {
		return fmt.Errorf("container metadata diverges:\n--- fault ---\n%s--- twin ---\n%s", fm, tm)
	}
	for _, v := range twin.live {
		fb, err := fault.restore(v.name, v.ver)
		if err != nil {
			return fmt.Errorf("fault restore %s v%d: %w", v.name, v.ver, err)
		}
		tb, err := twin.restore(v.name, v.ver)
		if err != nil {
			return fmt.Errorf("twin restore %s v%d: %w", v.name, v.ver, err)
		}
		if !bytes.Equal(fb, tb) {
			return fmt.Errorf("restore %s v%d diverges between fault repo and twin", v.name, v.ver)
		}
		res.LiveVersions++
	}
	return nil
}

// restartAll reboots every dead replica of every shard group.
func restartAll(repo *core.Repo, res *ReplResult) error {
	for k, g := range repo.ReplGroups {
		st := g.ReplStats()
		for id := 0; id < st.Replicas; id++ {
			if err := g.Restart(id); err != nil {
				return fmt.Errorf("restart shard %d replica %d: %w", k, id, err)
			}
		}
	}
	res.Restarts++
	return nil
}

// RunRepl executes the replication chaos schedule: identical workloads on
// a fault repo and a fault-free twin, then a FullSweep on the fault repo
// during which the leader of EVERY shard group is crashed at a
// deterministic index-operation threshold. The groups must fail over
// transparently and the sweep must converge to the twin's exact state.
// A second scenario kills a whole quorum of one shard, demands a loud
// ErrNoQuorum failure, restarts the replicas, and re-runs the sweep to
// the same converged state — maintenance is idempotent across failover.
func RunRepl(opts ReplOptions) (*ReplResult, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 3
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	res := &ReplResult{}
	cfg := replConfig(opts.Shards, opts.Replicas)

	twin, err := openReplRepo(cfg)
	if err != nil {
		return res, fmt.Errorf("chaos repl: open twin: %w", err)
	}
	fault, err := openReplRepo(cfg)
	if err != nil {
		return res, fmt.Errorf("chaos repl: open fault repo: %w", err)
	}
	if len(fault.repo.ReplGroups) != opts.Shards {
		return res, fmt.Errorf("chaos repl: %d replica groups, want %d", len(fault.repo.ReplGroups), opts.Shards)
	}

	// Identical content on both sides, derived from the seed.
	files := seedFiles(opts.Seed)
	for _, r := range []*replRepo{twin, fault} {
		if err := r.seedWorkload(files); err != nil {
			return res, fmt.Errorf("chaos repl: seed: %w", err)
		}
		if _, err := r.gn.ReverseDedup(r.new); err != nil {
			return res, fmt.Errorf("chaos repl: reverse dedup: %w", err)
		}
		if _, err := r.gn.DeleteVersion("del", 0); err != nil {
			return res, fmt.Errorf("chaos repl: delete: %w", err)
		}
	}

	// Fault-free sweep on the twin, measuring the index-operation span of
	// a sweep so the kill thresholds land strictly inside the fault
	// repo's identical sweep.
	before := twin.repo.Global.Ops()
	twinSweep, err := twin.gn.FullSweep()
	if err != nil {
		return res, fmt.Errorf("chaos repl: twin sweep: %w", err)
	}
	res.SweepOps = twin.repo.Global.Ops() - before
	if res.SweepOps < 2*int64(opts.Shards) {
		return res, fmt.Errorf("chaos repl: sweep issued only %d index ops — too few to place %d distinct kills", res.SweepOps, opts.Shards)
	}
	if twinSweep.ContainersSwept == 0 {
		return res, fmt.Errorf("chaos repl: degenerate schedule, twin sweep reclaimed nothing: %+v", twinSweep)
	}

	// Scenario 1: kill the leader of every shard group mid-sweep, spread
	// across the sweep's op span. Quorum survives each kill, so the sweep
	// must complete and converge.
	base := fault.repo.Global.Ops()
	thresholds := make(map[int64]int, opts.Shards)
	for k := 0; k < opts.Shards; k++ {
		thresholds[base+1+res.SweepOps*int64(k)/int64(opts.Shards)] = k
	}
	var mu sync.Mutex
	fault.repo.Global.OnOp(func(n int64) {
		mu.Lock()
		k, ok := thresholds[n]
		if ok {
			delete(thresholds, n)
		}
		mu.Unlock()
		if !ok {
			return
		}
		id := fault.repo.ReplGroups[k].KillLeader()
		mu.Lock()
		res.LeaderKills++
		mu.Unlock()
		opts.Log("op %d: killed shard %d leader (replica %d)", n, k, id)
	})
	faultSweep, err := fault.gn.FullSweep()
	fault.repo.Global.OnOp(nil)
	if err != nil {
		return res, fmt.Errorf("chaos repl: sweep under leader kills: %w", err)
	}
	if res.LeaderKills != opts.Shards {
		return res, fmt.Errorf("chaos repl: only %d of %d leader kills fired", res.LeaderKills, opts.Shards)
	}
	if !reflect.DeepEqual(faultSweep, twinSweep) {
		return res, fmt.Errorf("chaos repl: sweep stats diverge:\nfault: %+v\ntwin:  %+v", faultSweep, twinSweep)
	}
	if err := restartAll(fault.repo, res); err != nil {
		return res, fmt.Errorf("chaos repl: %w", err)
	}
	if err := assertTwinEqual(fault, twin, res); err != nil {
		return res, fmt.Errorf("chaos repl: after leader kills: %w", err)
	}

	// Scenario 2: crash a whole quorum of shard 0 on the first index op
	// of the next sweep. The sweep must fail LOUDLY with ErrNoQuorum —
	// never silently skip the dead shard — and after restarting the
	// replicas, re-running the sweep is idempotent.
	res.LiveVersions = 0 // recounted by the final assert
	killAt := fault.repo.Global.Ops() + 1
	var killOnce sync.Once
	fault.repo.Global.OnOp(func(n int64) {
		if n < killAt {
			return
		}
		killOnce.Do(func() {
			g := fault.repo.ReplGroups[0]
			st := g.ReplStats()
			for i := 0; i < st.Quorum; i++ {
				g.Kill(i)
			}
			opts.Log("op %d: killed a full quorum (%d replicas) of shard 0", n, st.Quorum)
		})
	})
	_, err = fault.gn.FullSweep()
	fault.repo.Global.OnOp(nil)
	if err == nil {
		return res, fmt.Errorf("chaos repl: sweep succeeded with a dead quorum — must fail loudly")
	}
	if !errors.Is(err, repl.ErrNoQuorum) {
		return res, fmt.Errorf("chaos repl: dead-quorum sweep failed with the wrong error: %w", err)
	}
	res.NoQuorumErrors++
	opts.Log("dead-quorum sweep failed loudly: %v", err)
	if err := restartAll(fault.repo, res); err != nil {
		return res, fmt.Errorf("chaos repl: %w", err)
	}
	if _, err := fault.gn.FullSweep(); err != nil {
		return res, fmt.Errorf("chaos repl: re-sweep after quorum restart: %w", err)
	}
	if _, err := twin.gn.FullSweep(); err != nil {
		return res, fmt.Errorf("chaos repl: twin re-sweep: %w", err)
	}
	if err := assertTwinEqual(fault, twin, res); err != nil {
		return res, fmt.Errorf("chaos repl: after quorum recovery: %w", err)
	}

	// Roll up the groups' own counters before the process reboot below
	// replaces them with fresh (zeroed) groups.
	for _, g := range fault.repo.ReplGroups {
		st := g.ReplStats()
		res.Failovers += st.Failovers
		res.NodeFailures += st.NodeFailures
	}
	if fault.repo.ReplDowntime != nil {
		res.DowntimeVirtual = fault.repo.ReplDowntime.CPUPhase(repl.PhaseFailover)
	}

	// Scenario 3: full-process reboot of the fault repo. core.OpenRepo
	// must recover every shard group from its shared log and serve the
	// same bytes.
	reopened, err := core.OpenRepo(fault.mem, cfg)
	if err != nil {
		return res, fmt.Errorf("chaos repl: reopen: %w", err)
	}
	fault.repo = reopened
	fault.ln = lnode.New(reopened, "repl-l0")
	fault.gn = gnode.New(reopened)
	res.LiveVersions = 0
	if err := assertTwinEqual(fault, twin, res); err != nil {
		return res, fmt.Errorf("chaos repl: after process reboot: %w", err)
	}
	return res, nil
}

// genSeeded produces deterministic content from its own seed, independent
// of harness state (both twins must see identical bytes).
func genSeeded(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}
