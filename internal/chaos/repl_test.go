package chaos

import (
	"reflect"
	"testing"
)

// TestReplLeaderKillsMidSweep is the acceptance gate for the replicated
// index: killing the leader of every shard group once mid-FullSweep must
// still converge to byte-identical restores and DeepEqual index/metadata
// dumps versus a fault-free twin, and a dead quorum must fail loudly and
// recover idempotently.
func TestReplLeaderKillsMidSweep(t *testing.T) {
	res, err := RunRepl(ReplOptions{Seed: 1, Log: t.Logf})
	if err != nil {
		t.Fatalf("invariant violated: %v\nresult: %+v", err, res)
	}
	t.Logf("repl chaos result: %+v", res)

	if res.LeaderKills != 4 {
		t.Errorf("leader kills = %d, want one per shard group (4)", res.LeaderKills)
	}
	if res.Failovers < int64(res.LeaderKills) {
		t.Errorf("failovers = %d, want at least one per kill (%d)", res.Failovers, res.LeaderKills)
	}
	if res.NoQuorumErrors != 1 {
		t.Errorf("no-quorum errors = %d, want exactly 1", res.NoQuorumErrors)
	}
	if res.DowntimeVirtual <= 0 {
		t.Errorf("no virtual downtime charged for %d failovers", res.Failovers)
	}
	if res.LiveVersions == 0 {
		t.Errorf("nothing survived to verify: %+v", res)
	}
}

// TestReplSameSeedSameResult: the replication schedule is as replayable
// as the main chaos schedule.
func TestReplSameSeedSameResult(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate run is slow")
	}
	a, errA := RunRepl(ReplOptions{Seed: 9, Shards: 2, Replicas: 3})
	b, errB := RunRepl(ReplOptions{Seed: 9, Shards: 2, Replicas: 3})
	if errA != nil || errB != nil {
		t.Fatalf("runs failed: %v / %v\n%+v\n%+v", errA, errB, a, b)
	}
	// Kill points land wherever the concurrent sweep's op counter crosses
	// the thresholds, so election counts can differ between runs; the
	// state invariants (checked inside RunRepl) and the schedule shape
	// must not.
	a.Failovers, b.Failovers = 0, 0
	a.NodeFailures, b.NodeFailures = 0, 0
	a.DowntimeVirtual, b.DowntimeVirtual = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n a = %+v\n b = %+v", a, b)
	}
}
