package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
)

// ECOptions configures an erasure-coding chaos run: an EC-tier repo whose
// backends suffer whole-domain outages and shard bit-rot while restores
// and scrubs run concurrently, compared against a fault-free twin with
// the identical workload.
type ECOptions struct {
	Seed     int64
	Rounds   int // damage/heal rounds (default 4)
	K, M     int // stripe geometry (default 2+2)
	Restores int // concurrent restores per round (default 6)
	Log      func(format string, args ...any)
}

// ECResult counts what the EC schedule did and observed.
type ECResult struct {
	Rounds          int
	Backups         int
	Restores        int // concurrent restores, all verified byte-identical
	Outages         int // whole-backend blackouts injected
	ShardsRotted    int // shard objects bit-flipped at rest
	DegradedStripes int // stripes scrub found below full redundancy
	RepairedShards  int // shards scrub reconstructed and rewrote
	RepairFailures  int // repair attempts against a still-dark backend
	Reboots         int // fault-repo process restarts (journal replay)
	DegradedReads   int64
	LiveVersions    int // versions verified identical on both repos at the end
}

// ecChaosConfig is the shared layout of both repos in an EC run.
func ecChaosConfig(k, m int) core.Config {
	cfg := core.DefaultConfig()
	cfg.ChunkParams = chunker.ParamsForAvg(4 << 10)
	cfg.ContainerCapacity = 128 << 10
	cfg.SegmentChunks = 64
	cfg.SampleRatio = 8
	cfg.ChunkMerging = false
	cfg.CacheMemBytes = 16 << 20
	cfg.CacheDiskBytes = 64 << 20
	cfg.LAWChunks = 256
	cfg.PrefetchThreads = 0
	cfg.ECDataShards = k
	cfg.ECParityShards = m
	return cfg
}

// ecRepo is one side of the EC twin pair.
type ecRepo struct {
	mem  *oss.Mem
	repo *core.Repo
	ln   *lnode.LNode
	gn   *gnode.GNode
}

func openECRepo(cfg core.Config) (*ecRepo, error) {
	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, cfg)
	if err != nil {
		return nil, err
	}
	return &ecRepo{mem: mem, repo: repo, ln: lnode.New(repo, "ec-l0"), gn: gnode.New(repo)}, nil
}

func (r *ecRepo) reboot(cfg core.Config) error {
	repo, err := core.OpenRepo(r.mem, cfg)
	if err != nil {
		return err
	}
	r.repo, r.ln, r.gn = repo, lnode.New(repo, "ec-l0"), gnode.New(repo)
	return nil
}

// shardDump snapshots the physical redundancy tier: every shard object on
// every backend, byte-exact.
func (r *ecRepo) shardDump() (map[string]string, error) {
	keys, err := r.mem.List("ec/")
	if err != nil {
		return nil, err
	}
	dump := make(map[string]string, len(keys))
	for _, k := range keys {
		b, err := r.mem.Get(k)
		if err != nil {
			return nil, err
		}
		dump[k] = string(b)
	}
	return dump, nil
}

// RunEC executes a seeded erasure-coding chaos schedule. Each round
// backs identical data into a fault repo and a fault-free twin, blacks
// out or bit-rots up to M of the fault repo's K+M backends, then runs
// concurrent restores under fire while a scrub repairs through the
// damage. After the heal every stripe must be back at full K+M
// redundancy, and at the end the fault repo's physical shard state must
// be byte-for-byte DeepEqual to the twin that never saw a fault.
func RunEC(opts ECOptions) (*ECResult, error) {
	if opts.Rounds <= 0 {
		opts.Rounds = 4
	}
	if opts.K <= 0 {
		opts.K = 2
	}
	if opts.M <= 0 {
		opts.M = 2
	}
	if opts.Restores <= 0 {
		opts.Restores = 6
	}
	if opts.Log == nil {
		opts.Log = func(string, ...any) {}
	}
	res := &ECResult{}
	cfg := ecChaosConfig(opts.K, opts.M)
	rng := rand.New(rand.NewSource(opts.Seed))

	twin, err := openECRepo(cfg)
	if err != nil {
		return res, fmt.Errorf("chaos ec: open twin: %w", err)
	}
	fault, err := openECRepo(cfg)
	if err != nil {
		return res, fmt.Errorf("chaos ec: open fault repo: %w", err)
	}

	type ver struct {
		v    int
		data []byte
	}
	model := map[string][]ver{}
	fileIDs := []string{"f0", "f1", "f2"}

	backup := func(fid string, data []byte) error {
		stT, err := twin.ln.Backup(fid, data)
		if err != nil {
			return fmt.Errorf("twin backup %s: %w", fid, err)
		}
		stF, err := fault.ln.Backup(fid, data)
		if err != nil {
			return fmt.Errorf("fault backup %s: %w", fid, err)
		}
		if stT.Version != stF.Version {
			return fmt.Errorf("version skew on %s: twin v%d, fault v%d", fid, stT.Version, stF.Version)
		}
		model[fid] = append(model[fid], ver{stT.Version, data})
		res.Backups++
		return nil
	}

	for round := 0; round < opts.Rounds; round++ {
		res.Rounds++
		// 1. Identical fresh-or-mutated backups land on both repos while
		// every backend is healthy (the container data-then-meta protocol
		// already owns partial-write crash safety; this schedule stresses
		// the redundancy tier).
		for i := 0; i < 1+rng.Intn(2); i++ {
			fid := fileIDs[rng.Intn(len(fileIDs))]
			var data []byte
			if vs := model[fid]; len(vs) > 0 && rng.Intn(2) == 0 {
				data = append([]byte(nil), vs[len(vs)-1].data...)
				for j := 0; j < 4+rng.Intn(12); j++ {
					data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
				}
			} else {
				data = make([]byte, 192<<10+rng.Intn(256<<10))
				rng.Read(data)
			}
			if err := backup(fid, data); err != nil {
				return res, fmt.Errorf("chaos ec: seed %d round %d: %w", opts.Seed, round, err)
			}
		}

		// 2. Damage at most M fault domains: each chosen backend either
		// goes completely dark or gets a handful of shard objects
		// bit-flipped at rest. Never more than M, so every stripe keeps at
		// least K healthy shards and restores must keep succeeding.
		backends := fault.repo.EC.Backends()
		nDamage := 1 + rng.Intn(opts.M)
		damaged := rng.Perm(len(backends))[:nDamage]
		var dark []int
		for _, bi := range damaged {
			if rng.Intn(2) == 0 {
				backends[bi].Faulty.SetOutage(true)
				dark = append(dark, bi)
				res.Outages++
				opts.Log("round %d: backend %d dark", round, bi)
				continue
			}
			keys, err := fault.mem.List(oss.BackendPrefix(bi) + container.Prefix)
			if err != nil {
				return res, err
			}
			var shardKeys []string
			for _, k := range keys {
				if strings.HasSuffix(k, ".data") || strings.HasSuffix(k, ".meta") {
					shardKeys = append(shardKeys, k)
				}
			}
			for j := 0; j < 1+rng.Intn(3) && len(shardKeys) > 0; j++ {
				key := shardKeys[rng.Intn(len(shardKeys))]
				raw, err := fault.mem.Get(key)
				if err != nil {
					return res, err
				}
				raw[rng.Intn(len(raw))] ^= byte(1 + rng.Intn(255))
				if err := fault.mem.Put(key, raw); err != nil {
					return res, err
				}
				res.ShardsRotted++
				opts.Log("round %d: rotted %s", round, key)
			}
		}

		// 3. Concurrent restores under fire while a scrub repairs through
		// the damage. The restore schedule is drawn before any goroutine
		// starts, keeping the RNG stream deterministic.
		type target struct {
			fid  string
			v    int
			want []byte
		}
		var targets []target
		for i := 0; i < opts.Restores; i++ {
			fid := fileIDs[rng.Intn(len(fileIDs))]
			vs := model[fid]
			if len(vs) == 0 {
				continue
			}
			pick := vs[rng.Intn(len(vs))]
			targets = append(targets, target{fid, pick.v, pick.data})
		}
		errs := make(chan error, len(targets)+1)
		var wg sync.WaitGroup
		for _, tg := range targets {
			wg.Add(1)
			go func(tg target) {
				defer wg.Done()
				var buf bytes.Buffer
				if _, err := fault.ln.Restore(tg.fid, tg.v, &buf); err != nil {
					errs <- fmt.Errorf("restore %s v%d under %d damaged domains: %w", tg.fid, tg.v, nDamage, err)
					return
				}
				if !bytes.Equal(buf.Bytes(), tg.want) {
					errs <- fmt.Errorf("SILENT CORRUPTION: restore %s v%d under damage returned wrong bytes", tg.fid, tg.v)
				}
			}(tg)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc, err := fault.gn.Scrub()
			if err != nil {
				errs <- fmt.Errorf("scrub under fire: %w", err)
				return
			}
			res.DegradedStripes += sc.ECDegradedStripes
			res.RepairedShards += sc.ECRepairedShards
			res.RepairFailures += sc.ECRepairFailures
			if sc.ECUnrecoverable != 0 {
				errs <- fmt.Errorf("scrub declared %d stripes unrecoverable with only %d ≤ M domains damaged", sc.ECUnrecoverable, nDamage)
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			return res, fmt.Errorf("chaos ec: seed %d round %d: %w", opts.Seed, round, err)
		}
		res.Restores += len(targets)

		// 4. Heal: lift the outages and scrub again — every stripe must
		// come back to full K+M redundancy, loudly counted.
		for _, bi := range dark {
			backends[bi].Faulty.SetOutage(false)
		}
		sc, err := fault.gn.Scrub()
		if err != nil {
			return res, fmt.Errorf("chaos ec: seed %d round %d heal scrub: %w", opts.Seed, round, err)
		}
		res.DegradedStripes += sc.ECDegradedStripes
		res.RepairedShards += sc.ECRepairedShards
		if sc.ECRepairFailures != 0 || sc.ECUnrecoverable != 0 {
			return res, fmt.Errorf("chaos ec: seed %d round %d: heal scrub left damage: %+v", opts.Seed, round, sc)
		}

		// 5. Sometimes reboot the fault repo: journal replay plus fresh
		// (fault-free) backend wrappers, as after a real process crash.
		if rng.Intn(2) == 0 {
			// Tier stats die with the process; bank them first.
			res.DegradedReads += fault.repo.EC.Stats().DegradedReads
			if err := fault.reboot(cfg); err != nil {
				return res, fmt.Errorf("chaos ec: reboot: %w", err)
			}
			res.Reboots++
		}
	}

	res.DegradedReads += fault.repo.EC.Stats().DegradedReads

	// Final: a fault-free verification scrub on both repos must find full
	// redundancy everywhere, every version must restore byte-identical on
	// both sides, and the physical shard state of the fault repo must be
	// indistinguishable from the twin that never saw a fault.
	for name, r := range map[string]*ecRepo{"twin": twin, "fault": fault} {
		sc, err := r.gn.Scrub()
		if err != nil {
			return res, fmt.Errorf("chaos ec: final %s scrub: %w", name, err)
		}
		if sc.ECDegradedStripes != 0 || sc.ECRepairedShards != 0 || sc.ECUnrecoverable != 0 || !sc.Clean() {
			return res, fmt.Errorf("chaos ec: final %s scrub not clean: %+v", name, sc)
		}
	}
	for fid, vs := range model {
		for _, v := range vs {
			var fb, tb bytes.Buffer
			if _, err := fault.ln.Restore(fid, v.v, &fb); err != nil {
				return res, fmt.Errorf("chaos ec: healed restore %s v%d: %w", fid, v.v, err)
			}
			if _, err := twin.ln.Restore(fid, v.v, &tb); err != nil {
				return res, fmt.Errorf("chaos ec: twin restore %s v%d: %w", fid, v.v, err)
			}
			if !bytes.Equal(fb.Bytes(), v.data) || !bytes.Equal(tb.Bytes(), v.data) {
				return res, fmt.Errorf("SILENT CORRUPTION: %s v%d diverges after heal", fid, v.v)
			}
			res.LiveVersions++
		}
	}
	fd, err := fault.shardDump()
	if err != nil {
		return res, err
	}
	td, err := twin.shardDump()
	if err != nil {
		return res, err
	}
	if len(fd) != len(td) {
		return res, fmt.Errorf("chaos ec: shard keyspaces diverge: fault %d objects, twin %d", len(fd), len(td))
	}
	for k, tv := range td {
		fv, ok := fd[k]
		if !ok {
			return res, fmt.Errorf("chaos ec: fault repo is missing shard %s", k)
		}
		if fv != tv {
			return res, fmt.Errorf("chaos ec: repaired shard %s differs from the fault-free twin's", k)
		}
	}
	return res, nil
}
