package chaos

import (
	"reflect"
	"testing"
)

// TestECOutageAndRotUnderConcurrentScrub is the acceptance gate for the
// redundancy tier: with up to M of K+M backends dark or bit-rotting
// while restores and a scrub run concurrently, every restore must stay
// byte-identical, every stripe must return to full K+M redundancy after
// the heal, and the fault repo's physical shard state must end
// DeepEqual to a fault-free twin's.
func TestECOutageAndRotUnderConcurrentScrub(t *testing.T) {
	res, err := RunEC(ECOptions{Seed: 5, Log: t.Logf})
	if err != nil {
		t.Fatalf("invariant violated: %v\nresult: %+v", err, res)
	}
	t.Logf("ec chaos result: %+v", res)

	if res.Outages == 0 || res.ShardsRotted == 0 {
		t.Errorf("schedule injected no outages (%d) or rot (%d) — degenerate run", res.Outages, res.ShardsRotted)
	}
	if res.DegradedStripes == 0 || res.RepairedShards == 0 {
		t.Errorf("scrub repaired nothing: %+v", res)
	}
	if res.DegradedReads == 0 {
		t.Errorf("no restore ever took the reconstruction path: %+v", res)
	}
	if res.Restores == 0 || res.LiveVersions == 0 {
		t.Errorf("nothing restored or survived to verify: %+v", res)
	}
}

// TestECSameSeedSameSchedule: the damage schedule is replayable by seed.
// Counters fed by concurrent timing (repair failures racing the scrub,
// degraded-read totals) are masked; the injected schedule and the final
// converged state must not vary.
func TestECSameSeedSameSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate run is slow")
	}
	a, errA := RunEC(ECOptions{Seed: 11, Rounds: 2})
	b, errB := RunEC(ECOptions{Seed: 11, Rounds: 2})
	if errA != nil || errB != nil {
		t.Fatalf("runs failed: %v / %v\n%+v\n%+v", errA, errB, a, b)
	}
	a.RepairFailures, b.RepairFailures = 0, 0
	a.RepairedShards, b.RepairedShards = 0, 0
	a.DegradedStripes, b.DegradedStripes = 0, 0
	a.DegradedReads, b.DegradedReads = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n a = %+v\n b = %+v", a, b)
	}
}
