package chaos

import (
	"reflect"
	"testing"
)

// TestSeededRun is the acceptance gate for the integrity work: 200+ mixed
// operations under crash and corruption injection, zero silent
// corruptions, and a repo that heals to a fully restorable state.
func TestSeededRun(t *testing.T) {
	res, err := Run(Options{Seed: 1, Ops: 220, Log: t.Logf})
	if err != nil {
		t.Fatalf("invariant violated: %v\nresult: %+v", err, res)
	}
	if res.SilentCorruptions != 0 {
		t.Fatalf("silent corruptions: %+v", res)
	}
	t.Logf("chaos result: %+v", res)

	// The schedule must actually exercise the machinery it claims to.
	if res.Backups == 0 || res.Restores == 0 || res.RangeRestores == 0 ||
		res.Optimizes == 0 || res.Deletes == 0 || res.Scrubs == 0 || res.Sweeps == 0 {
		t.Fatalf("schedule left an operation type untouched: %+v", res)
	}
	if res.CorruptionsInjected == 0 || res.Crashes == 0 {
		t.Fatalf("no faults were injected — the run proved nothing: %+v", res)
	}
	if res.LiveVersions == 0 {
		t.Fatalf("nothing survived to verify after heal: %+v", res)
	}
}

// TestSameSeedSameSchedule: a seed fully determines the run, so failures
// are replayable.
func TestSameSeedSameSchedule(t *testing.T) {
	a, errA := Run(Options{Seed: 7, Ops: 120})
	b, errB := Run(Options{Seed: 7, Ops: 120})
	if errA != nil || errB != nil {
		t.Fatalf("runs failed: %v / %v\n%+v\n%+v", errA, errB, a, b)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n a = %+v\n b = %+v", a, b)
	}
}

// TestSeedSweep runs several short schedules: different seeds explore
// different interleavings of crash points and rot.
func TestSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	for seed := int64(2); seed < 8; seed++ {
		res, err := Run(Options{Seed: seed, Ops: 80})
		if err != nil {
			t.Fatalf("seed %d: %v\nresult: %+v", seed, err, res)
		}
		if res.SilentCorruptions != 0 {
			t.Fatalf("seed %d: silent corruptions: %+v", seed, res)
		}
	}
}
