package recipe

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Snapshot groups the file versions captured by one backup session (the
// paper's "full-volume backup uploaded at intervals"): restoring or
// expiring a point in time means acting on the snapshot's members as a
// unit instead of tracking per-file version numbers by hand.
type Snapshot struct {
	ID      string           `json:"id"`
	Members []SnapshotMember `json:"members"`
	// TotalBytes is the logical size of the snapshot (sum of members).
	TotalBytes int64 `json:"total_bytes"`
}

// SnapshotMember is one file version inside a snapshot.
type SnapshotMember struct {
	FileID  string `json:"file_id"`
	Version int    `json:"version"`
	Bytes   int64  `json:"bytes"`
}

const snapshotPrefix = "snapshots/"

func snapshotKey(id string) string {
	return snapshotPrefix + hex.EncodeToString([]byte(id))
}

// PutSnapshot persists a snapshot manifest. Members are stored sorted for
// deterministic round trips.
func (s *Store) PutSnapshot(snap *Snapshot) error {
	if snap.ID == "" {
		return fmt.Errorf("recipe: snapshot needs an ID")
	}
	cp := *snap
	cp.Members = append([]SnapshotMember(nil), snap.Members...)
	sort.Slice(cp.Members, func(i, j int) bool { return cp.Members[i].FileID < cp.Members[j].FileID })
	cp.TotalBytes = 0
	for _, m := range cp.Members {
		cp.TotalBytes += m.Bytes
	}
	b, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("recipe: encode snapshot %s: %w", snap.ID, err)
	}
	if err := s.oss.Put(snapshotKey(snap.ID), b); err != nil {
		return fmt.Errorf("recipe: put snapshot %s: %w", snap.ID, err)
	}
	return nil
}

// GetSnapshot loads a snapshot manifest.
func (s *Store) GetSnapshot(id string) (*Snapshot, error) {
	b, err := s.oss.Get(snapshotKey(id))
	if err != nil {
		return nil, fmt.Errorf("recipe: get snapshot %s: %w", id, err)
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return nil, fmt.Errorf("recipe: decode snapshot %s: %w", id, err)
	}
	return &snap, nil
}

// DeleteSnapshot removes a manifest (not its member versions; version
// collection handles those).
func (s *Store) DeleteSnapshot(id string) error {
	return s.oss.Delete(snapshotKey(id))
}

// Snapshots lists snapshot IDs in lexicographic order.
func (s *Store) Snapshots() ([]string, error) {
	keys, err := s.oss.List(snapshotPrefix)
	if err != nil {
		return nil, fmt.Errorf("recipe: list snapshots: %w", err)
	}
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		raw, err := hex.DecodeString(strings.TrimPrefix(k, snapshotPrefix))
		if err != nil {
			continue
		}
		out = append(out, string(raw))
	}
	sort.Strings(out)
	return out, nil
}
