package recipe

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

func fpN(n int) fingerprint.FP {
	return fingerprint.OfBytes([]byte(fmt.Sprintf("chunk-%d", n)))
}

func sampleRecipe(fileID string, version, segs, perSeg int) *Recipe {
	r := &Recipe{FileID: fileID, Version: version}
	n := 0
	for s := 0; s < segs; s++ {
		var seg Segment
		for i := 0; i < perSeg; i++ {
			rec := ChunkRecord{
				FP:             fpN(n),
				Container:      container.ID(n/4 + 1),
				Size:           uint32(4096 + n),
				DuplicateTimes: uint32(n % 7),
			}
			if n%5 == 0 {
				rec.Super = true
				rec.FirstChunk = fpN(n * 1000)
			}
			seg.Records = append(seg.Records, rec)
			n++
		}
		r.Segments = append(r.Segments, seg)
	}
	return r
}

func TestRecipeRoundTrip(t *testing.T) {
	r := sampleRecipe("db/users.tbl", 3, 4, 17)
	got, err := Decode(Encode(r))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatal("recipe round trip mismatch")
	}
	if got.NumChunks() != 4*17 {
		t.Fatalf("NumChunks = %d", got.NumChunks())
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	seg := &sampleRecipe("f", 0, 1, 9).Segments[0]
	got, err := DecodeSegment(EncodeSegment(seg))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seg) {
		t.Fatal("segment round trip mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1}); err == nil {
		t.Fatal("short recipe accepted")
	}
	b := Encode(sampleRecipe("f", 0, 2, 3))
	b[0] ^= 0xFF
	if _, err := Decode(b); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeSegment([]byte{9, 0, 0, 0, 1}); err == nil {
		t.Fatal("truncated segment accepted")
	}
	if _, err := DecodeIndex([]byte{1, 2}); err == nil {
		t.Fatal("short index accepted")
	}
}

func TestIterEarlyStop(t *testing.T) {
	r := sampleRecipe("f", 0, 3, 5)
	count := 0
	r.Iter(func(seg, idx int, rec *ChunkRecord) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("Iter visited %d records, want 7", count)
	}
}

func TestBuildIndex(t *testing.T) {
	r := sampleRecipe("f", 2, 5, 32)
	idx := BuildIndex(r, fingerprint.NewSampler(4))
	// Every segment's first fingerprint must be present.
	for s := range r.Segments {
		first := r.Segments[s].Records[0].FP
		if seg, ok := idx.Samples[first]; !ok {
			t.Fatalf("segment %d head fingerprint missing from index", s)
		} else if seg > int32(s) {
			t.Fatalf("head fingerprint of segment %d maps to later segment %d", s, seg)
		}
	}
	// Index entries point at a segment actually containing the sample,
	// either as a record fingerprint or as a superchunk's FirstChunk.
	for fp, s := range idx.Samples {
		found := false
		for i := range r.Segments[s].Records {
			rec := &r.Segments[s].Records[i]
			if rec.FP == fp || (rec.Super && rec.FirstChunk == fp) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("index entry %s → segment %d does not contain the fingerprint", fp.Short(), s)
		}
	}
	// Superchunk FirstChunk handles must always be indexed.
	r.Iter(func(s, _ int, rec *ChunkRecord) bool {
		if rec.Super {
			if _, ok := idx.Samples[rec.FirstChunk]; !ok {
				t.Fatalf("superchunk FirstChunk %s not indexed", rec.FirstChunk.Short())
			}
		}
		return true
	})
	// Round trip.
	got, err := DecodeIndex(EncodeIndex(idx))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, idx) {
		t.Fatal("index round trip mismatch")
	}
}

func TestStoreRecipeAndSegments(t *testing.T) {
	mem := oss.NewMem()
	s := NewStore(mem)
	r := sampleRecipe("path/to/backup.db", 3, 6, 21)
	if _, err := s.PutRecipe(r); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRecipe(r.FileID, r.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatal("stored recipe mismatch")
	}

	// Per-segment ranged fetches.
	sr, err := s.OpenSegments(r.FileID, r.Version)
	if err != nil {
		t.Fatal(err)
	}
	if sr.NumSegments() != 6 {
		t.Fatalf("NumSegments = %d", sr.NumSegments())
	}
	for i := 0; i < 6; i++ {
		seg, err := sr.Fetch(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seg, &r.Segments[i]) {
			t.Fatalf("segment %d mismatch", i)
		}
	}
	if _, err := sr.Fetch(6); err == nil {
		t.Fatal("out-of-range segment accepted")
	}

	// Missing recipe.
	if _, err := s.GetRecipe("nope", 0); err == nil {
		t.Fatal("missing recipe did not error")
	}

	// Index round trip through the store.
	idx := BuildIndex(r, fingerprint.NewSampler(8))
	if err := s.PutIndex(idx); err != nil {
		t.Fatal(err)
	}
	gi, err := s.GetIndex(r.FileID, r.Version)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gi, idx) {
		t.Fatal("stored index mismatch")
	}

	// Delete removes both.
	if err := s.DeleteRecipe(r.FileID, r.Version); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetRecipe(r.FileID, r.Version); err == nil {
		t.Fatal("recipe survived delete")
	}
	if _, err := s.GetIndex(r.FileID, r.Version); err == nil {
		t.Fatal("index survived delete")
	}
}

func TestCatalog(t *testing.T) {
	mem := oss.NewMem()
	s := NewStore(mem)

	if _, ok, err := s.LatestVersion("f1"); err != nil || ok {
		t.Fatalf("LatestVersion on empty = %v, %v", ok, err)
	}

	for v := 0; v < 4; v++ {
		info := &VersionInfo{
			FileID: "f1", Version: v,
			LogicalSize: int64(1000 * (v + 1)), StoredSize: int64(100 * (v + 1)),
			NumChunks:  10 * (v + 1),
			Containers: []container.ID{container.ID(v + 1), container.ID(v + 2)},
			Garbage:    []container.ID{container.ID(100 + v)},
		}
		if err := s.PutInfo(info); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutInfo(&VersionInfo{FileID: "dir/f2", Version: 0}); err != nil {
		t.Fatal(err)
	}

	vs, err := s.Versions("f1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vs, []int{0, 1, 2, 3}) {
		t.Fatalf("Versions = %v", vs)
	}
	latest, ok, err := s.LatestVersion("f1")
	if err != nil || !ok || latest != 3 {
		t.Fatalf("LatestVersion = %d, %v, %v", latest, ok, err)
	}

	info, err := s.GetInfo("f1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.LogicalSize != 3000 || len(info.Containers) != 2 || len(info.Garbage) != 1 {
		t.Fatalf("GetInfo = %+v", info)
	}

	files, err := s.Files()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(files, []string{"dir/f2", "f1"}) {
		t.Fatalf("Files = %v", files)
	}

	if err := s.DeleteInfo("f1", 0); err != nil {
		t.Fatal(err)
	}
	vs, _ = s.Versions("f1")
	if !reflect.DeepEqual(vs, []int{1, 2, 3}) {
		t.Fatalf("Versions after delete = %v", vs)
	}
}

func TestInfoRoundTrip(t *testing.T) {
	v := &VersionInfo{
		FileID: "weird/name with spaces", Version: 42,
		LogicalSize: 1 << 40, StoredSize: 123456789, NumChunks: 99,
		Containers: []container.ID{5, 9, 11},
		Garbage:    []container.ID{},
	}
	got, err := DecodeInfo(EncodeInfo(v))
	if err != nil {
		t.Fatal(err)
	}
	if got.FileID != v.FileID || got.Version != v.Version ||
		got.LogicalSize != v.LogicalSize || got.StoredSize != v.StoredSize ||
		got.NumChunks != v.NumChunks || !reflect.DeepEqual(got.Containers, v.Containers) ||
		len(got.Garbage) != 0 {
		t.Fatalf("info round trip mismatch: %+v", got)
	}
	if _, err := DecodeInfo([]byte{1, 2}); err == nil {
		t.Fatal("short info accepted")
	}
}

// Property: recipes with random shapes survive encode/decode.
func TestQuickRecipeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(segSizes []uint8, super []bool) bool {
		rec := &Recipe{FileID: "q", Version: 1}
		n := 0
		for _, sz := range segSizes {
			var seg Segment
			for i := 0; i < int(sz)%20; i++ {
				cr := ChunkRecord{
					FP:             fpN(r.Int()),
					Container:      container.ID(r.Uint64()),
					Size:           r.Uint32(),
					DuplicateTimes: r.Uint32(),
				}
				if n < len(super) && super[n] {
					cr.Super = true
					cr.FirstChunk = fpN(r.Int())
				}
				n++
				seg.Records = append(seg.Records, cr)
			}
			rec.Segments = append(rec.Segments, seg)
		}
		got, err := Decode(Encode(rec))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotStore(t *testing.T) {
	s := NewStore(oss.NewMem())
	snap := &Snapshot{
		ID: "2026-07-06T00:00",
		Members: []SnapshotMember{
			{FileID: "b", Version: 2, Bytes: 10},
			{FileID: "a", Version: 1, Bytes: 5},
		},
	}
	if err := s.PutSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetSnapshot(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Members come back sorted, total computed.
	if len(got.Members) != 2 || got.Members[0].FileID != "a" || got.TotalBytes != 15 {
		t.Fatalf("snapshot round trip = %+v", got)
	}
	if err := s.PutSnapshot(&Snapshot{ID: "another"}); err != nil {
		t.Fatal(err)
	}
	ids, err := s.Snapshots()
	if err != nil || len(ids) != 2 || ids[0] != "2026-07-06T00:00" {
		t.Fatalf("Snapshots = %v, %v", ids, err)
	}
	if err := s.DeleteSnapshot(snap.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetSnapshot(snap.ID); err == nil {
		t.Fatal("deleted snapshot loads")
	}
	if err := s.PutSnapshot(&Snapshot{}); err == nil {
		t.Fatal("snapshot without ID accepted")
	}
}
