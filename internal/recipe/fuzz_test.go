package recipe

import (
	"math/rand"
	"testing"

	"slimstore/internal/container"
)

// randRecipe builds a structurally valid recipe from a seed, exercising
// every record shape (plain, duplicate-counted, superchunk) and segment
// layout the encoder supports.
func randRecipe(seed int64, segments, records int) *Recipe {
	rng := rand.New(rand.NewSource(seed))
	segments = segments%8 + 1
	records = records%64 + 1
	r := &Recipe{FileID: "fuzz/file", Version: int(uint64(seed) % 1000)}
	for s := 0; s < segments; s++ {
		var seg Segment
		for i := 0; i < records; i++ {
			var rec ChunkRecord
			rng.Read(rec.FP[:])
			rec.Container = container.ID(rng.Int63())
			rec.Size = uint32(rng.Intn(1 << 20))
			rec.DuplicateTimes = uint32(rng.Intn(1 << 16))
			if rng.Intn(4) == 0 {
				rec.Super = true
				rng.Read(rec.FirstChunk[:])
			}
			seg.Records = append(seg.Records, rec)
		}
		r.Segments = append(r.Segments, seg)
	}
	return r
}

func recipesEqual(t *testing.T, a, b *Recipe) {
	t.Helper()
	if a.FileID != b.FileID || a.Version != b.Version {
		t.Fatalf("identity mismatch: %s v%d vs %s v%d", a.FileID, a.Version, b.FileID, b.Version)
	}
	if len(a.Segments) != len(b.Segments) {
		t.Fatalf("segment count %d vs %d", len(a.Segments), len(b.Segments))
	}
	for s := range a.Segments {
		ra, rb := a.Segments[s].Records, b.Segments[s].Records
		if len(ra) != len(rb) {
			t.Fatalf("segment %d: record count %d vs %d", s, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("segment %d record %d differs:\n  %+v\n  %+v", s, i, ra[i], rb[i])
			}
		}
	}
}

// FuzzRecipeRoundTrip checks Encode→Decode is the identity for
// structurally valid recipes of every shape.
func FuzzRecipeRoundTrip(f *testing.F) {
	f.Add(int64(1), 1, 1)
	f.Add(int64(42), 3, 17)
	f.Add(int64(-7), 7, 63)
	f.Fuzz(func(t *testing.T, seed int64, segments, records int) {
		r := randRecipe(seed, segments, records)
		dec, err := Decode(Encode(r))
		if err != nil {
			t.Fatalf("decode of valid encoding: %v", err)
		}
		recipesEqual(t, r, dec)

		// Segment-level round trip must agree with the full-recipe path.
		for s := range r.Segments {
			seg, err := DecodeSegment(EncodeSegment(&r.Segments[s]))
			if err != nil {
				t.Fatalf("segment %d: decode of valid encoding: %v", s, err)
			}
			if len(seg.Records) != len(r.Segments[s].Records) {
				t.Fatalf("segment %d: record count %d vs %d", s, len(seg.Records), len(r.Segments[s].Records))
			}
			for i := range seg.Records {
				if seg.Records[i] != r.Segments[s].Records[i] {
					t.Fatalf("segment %d record %d differs after round trip", s, i)
				}
			}
		}
	})
}

// FuzzRecipeDecode throws arbitrary bytes at the decoders: they must never
// panic, and anything they accept must re-encode to something they accept
// again with identical content (decode is a retraction of encode).
func FuzzRecipeDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(randRecipe(3, 2, 5)))
	f.Add(EncodeSegment(&randRecipe(4, 1, 9).Segments[0]))
	f.Fuzz(func(t *testing.T, b []byte) {
		if r, err := Decode(b); err == nil {
			again, err := Decode(Encode(r))
			if err != nil {
				t.Fatalf("re-decode of accepted recipe: %v", err)
			}
			recipesEqual(t, r, again)
		}
		if seg, err := DecodeSegment(b); err == nil {
			again, err := DecodeSegment(EncodeSegment(seg))
			if err != nil {
				t.Fatalf("re-decode of accepted segment: %v", err)
			}
			if len(again.Records) != len(seg.Records) {
				t.Fatalf("segment record count changed: %d vs %d", len(again.Records), len(seg.Records))
			}
			for i := range seg.Records {
				if seg.Records[i] != again.Records[i] {
					t.Fatalf("segment record %d changed across round trip", i)
				}
			}
		}
	})
}
