package recipe

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"slimstore/internal/container"
	"slimstore/internal/oss"
)

// OSS key namespaces.
const (
	recipePrefix  = "recipes/"
	catalogPrefix = "catalog/"
)

func fileKey(fileID string) string { return hex.EncodeToString([]byte(fileID)) }

func recipeKey(fileID string, version int) string {
	return fmt.Sprintf("%s%s/%08d.recipe", recipePrefix, fileKey(fileID), version)
}
func indexKey(fileID string, version int) string {
	return fmt.Sprintf("%s%s/%08d.index", recipePrefix, fileKey(fileID), version)
}
func infoKey(fileID string, version int) string {
	return fmt.Sprintf("%s%s/%08d.info", catalogPrefix, fileKey(fileID), version)
}

// Store persists recipes, recipe indexes and the version catalog on OSS.
type Store struct {
	oss oss.Store
}

// NewStore opens a recipe store over an OSS store.
func NewStore(s oss.Store) *Store { return &Store{oss: s} }

// PutRecipe persists a full recipe and returns the serialized size.
func (s *Store) PutRecipe(r *Recipe) (int, error) {
	b := Encode(r)
	if err := s.oss.Put(recipeKey(r.FileID, r.Version), b); err != nil {
		return 0, fmt.Errorf("recipe: put %s v%d: %w", r.FileID, r.Version, err)
	}
	return len(b), nil
}

// GetRecipe fetches a full recipe.
func (s *Store) GetRecipe(fileID string, version int) (*Recipe, error) {
	b, err := s.oss.Get(recipeKey(fileID, version))
	if err != nil {
		return nil, fmt.Errorf("recipe: get %s v%d: %w", fileID, version, err)
	}
	r, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("recipe: get %s v%d: %w", fileID, version, err)
	}
	return r, nil
}

// DeleteRecipe removes a recipe and its index.
func (s *Store) DeleteRecipe(fileID string, version int) error {
	if err := s.oss.Delete(recipeKey(fileID, version)); err != nil {
		return err
	}
	return s.oss.Delete(indexKey(fileID, version))
}

// SegmentReader fetches individual segment recipes of one file version
// with ranged reads, without downloading the whole recipe — the lightweight
// prefetch L-node performs per matched sample (paper §IV-A STEP 2).
type SegmentReader struct {
	store *Store
	key   string
	dir   *directory
}

// OpenSegments reads only the recipe directory (header) of a version.
func (s *Store) OpenSegments(fileID string, version int) (*SegmentReader, error) {
	key := recipeKey(fileID, version)
	// The directory is at the head of the object. Fetch a generous fixed
	// prefix first; fall back to the exact size if the header is larger.
	const headGuess = 64 << 10
	b, err := s.oss.GetRange(key, 0, headGuess)
	if err != nil {
		return nil, fmt.Errorf("recipe: open segments %s v%d: %w", fileID, version, err)
	}
	d, err := decodeDirectory(b)
	if err != nil {
		// Retry with the full object (tiny recipes or huge directories).
		b, err2 := s.oss.Get(key)
		if err2 != nil {
			return nil, fmt.Errorf("recipe: open segments %s v%d: %w", fileID, version, err2)
		}
		d, err = decodeDirectory(b)
		if err != nil {
			return nil, fmt.Errorf("recipe: open segments %s v%d: %w", fileID, version, err)
		}
	}
	return &SegmentReader{store: s, key: key, dir: d}, nil
}

// NumSegments returns how many segments the recipe has.
func (r *SegmentReader) NumSegments() int { return len(r.dir.segments) }

// Fetch retrieves one segment recipe by number.
func (r *SegmentReader) Fetch(seg int) (*Segment, error) {
	if seg < 0 || seg >= len(r.dir.segments) {
		return nil, fmt.Errorf("recipe: segment %d out of range [0,%d)", seg, len(r.dir.segments))
	}
	s := r.dir.segments[seg]
	b, err := r.store.oss.GetRange(r.key, int64(s.off), int64(s.n))
	if err != nil {
		return nil, fmt.Errorf("recipe: fetch segment %d: %w", seg, err)
	}
	return DecodeSegment(b)
}

// PutIndex persists a recipe index.
func (s *Store) PutIndex(idx *Index) error {
	if err := s.oss.Put(indexKey(idx.FileID, idx.Version), EncodeIndex(idx)); err != nil {
		return fmt.Errorf("recipe: put index %s v%d: %w", idx.FileID, idx.Version, err)
	}
	return nil
}

// GetIndex fetches a recipe index.
func (s *Store) GetIndex(fileID string, version int) (*Index, error) {
	b, err := s.oss.Get(indexKey(fileID, version))
	if err != nil {
		return nil, fmt.Errorf("recipe: get index %s v%d: %w", fileID, version, err)
	}
	idx, err := DecodeIndex(b)
	if err != nil {
		return nil, fmt.Errorf("recipe: get index %s v%d: %w", fileID, version, err)
	}
	return idx, nil
}

// ---------------------------------------------------------------------------
// Version catalog.

// VersionInfo is the catalog entry for one backup version of one file.
type VersionInfo struct {
	FileID      string
	Version     int
	LogicalSize int64 // restored size
	StoredSize  int64 // bytes newly written to containers by this version
	NumChunks   int
	// Containers referenced by this version, ascending.
	Containers []container.ID
	// Garbage containers associated with this version during backup
	// (paper §VI-B): containers referenced by the previous version but not
	// by this one, plus sparse containers emptied by compaction. They are
	// swept when this version is deleted.
	Garbage []container.ID
}

// EncodeInfo serialises a VersionInfo.
func EncodeInfo(v *VersionInfo) []byte {
	buf := make([]byte, 0, 64+len(v.FileID)+8*(len(v.Containers)+len(v.Garbage)))
	var tmp [8]byte
	put32 := func(x uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], x)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(x uint64) {
		binary.LittleEndian.PutUint64(tmp[:], x)
		buf = append(buf, tmp[:]...)
	}
	put32(uint32(len(v.FileID)))
	buf = append(buf, v.FileID...)
	put32(uint32(v.Version))
	put64(uint64(v.LogicalSize))
	put64(uint64(v.StoredSize))
	put32(uint32(v.NumChunks))
	put32(uint32(len(v.Containers)))
	for _, id := range v.Containers {
		put64(uint64(id))
	}
	put32(uint32(len(v.Garbage)))
	for _, id := range v.Garbage {
		put64(uint64(id))
	}
	return buf
}

// DecodeInfo parses a VersionInfo.
func DecodeInfo(b []byte) (*VersionInfo, error) {
	p := 0
	need := func(n int) error {
		if len(b)-p < n {
			return fmt.Errorf("recipe: truncated version info")
		}
		return nil
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nameLen := int(binary.LittleEndian.Uint32(b[p:]))
	p += 4
	if err := need(nameLen + 28); err != nil {
		return nil, err
	}
	v := &VersionInfo{FileID: string(b[p : p+nameLen])}
	p += nameLen
	v.Version = int(binary.LittleEndian.Uint32(b[p:]))
	v.LogicalSize = int64(binary.LittleEndian.Uint64(b[p+4:]))
	v.StoredSize = int64(binary.LittleEndian.Uint64(b[p+12:]))
	v.NumChunks = int(binary.LittleEndian.Uint32(b[p+20:]))
	nc := int(binary.LittleEndian.Uint32(b[p+24:]))
	p += 28
	if err := need(nc*8 + 4); err != nil {
		return nil, err
	}
	v.Containers = make([]container.ID, nc)
	for i := 0; i < nc; i++ {
		v.Containers[i] = container.ID(binary.LittleEndian.Uint64(b[p:]))
		p += 8
	}
	ng := int(binary.LittleEndian.Uint32(b[p:]))
	p += 4
	if err := need(ng * 8); err != nil {
		return nil, err
	}
	v.Garbage = make([]container.ID, ng)
	for i := 0; i < ng; i++ {
		v.Garbage[i] = container.ID(binary.LittleEndian.Uint64(b[p:]))
		p += 8
	}
	return v, nil
}

// PutInfo persists a catalog entry.
func (s *Store) PutInfo(v *VersionInfo) error {
	if err := s.oss.Put(infoKey(v.FileID, v.Version), EncodeInfo(v)); err != nil {
		return fmt.Errorf("recipe: put info %s v%d: %w", v.FileID, v.Version, err)
	}
	return nil
}

// GetInfo fetches a catalog entry.
func (s *Store) GetInfo(fileID string, version int) (*VersionInfo, error) {
	b, err := s.oss.Get(infoKey(fileID, version))
	if err != nil {
		return nil, fmt.Errorf("recipe: get info %s v%d: %w", fileID, version, err)
	}
	return DecodeInfo(b)
}

// DeleteInfo removes a catalog entry.
func (s *Store) DeleteInfo(fileID string, version int) error {
	return s.oss.Delete(infoKey(fileID, version))
}

// Versions lists the versions of a file in ascending order.
func (s *Store) Versions(fileID string) ([]int, error) {
	keys, err := s.oss.List(catalogPrefix + fileKey(fileID) + "/")
	if err != nil {
		return nil, fmt.Errorf("recipe: versions of %s: %w", fileID, err)
	}
	var out []int
	for _, k := range keys {
		base := k[strings.LastIndexByte(k, '/')+1:]
		base = strings.TrimSuffix(base, ".info")
		v, err := strconv.Atoi(base)
		if err == nil {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// LatestVersion returns the newest version of fileID, or -1, false when the
// file has never been backed up.
func (s *Store) LatestVersion(fileID string) (int, bool, error) {
	vs, err := s.Versions(fileID)
	if err != nil {
		return -1, false, err
	}
	if len(vs) == 0 {
		return -1, false, nil
	}
	return vs[len(vs)-1], true, nil
}

// Files lists every file ID present in the catalog.
func (s *Store) Files() ([]string, error) {
	keys, err := s.oss.List(catalogPrefix)
	if err != nil {
		return nil, fmt.Errorf("recipe: list files: %w", err)
	}
	seen := make(map[string]struct{})
	var out []string
	for _, k := range keys {
		rest := strings.TrimPrefix(k, catalogPrefix)
		i := strings.IndexByte(rest, '/')
		if i < 0 {
			continue
		}
		enc := rest[:i]
		if _, dup := seen[enc]; dup {
			continue
		}
		seen[enc] = struct{}{}
		raw, err := hex.DecodeString(enc)
		if err != nil {
			continue
		}
		out = append(out, string(raw))
	}
	sort.Strings(out)
	return out, nil
}
