// Package recipe implements the recipe store (paper §III-B): per-version
// file recipes describing the logical sequence of chunks, segment recipes
// grouping consecutive chunk records, and the recipe index mapping sampled
// fingerprints to their segment — the structure L-node uses to exploit
// logical locality during online deduplication (§IV-A).
//
// A chunk record is the quadruple ⟨fp, containerID, size, duplicateTimes⟩.
// duplicateTimes counts how many historical versions confirmed the chunk as
// a duplicate; history-aware chunk merging (§IV-C) merges runs of records
// whose count crosses a threshold into superchunks, which carry an extra
// firstChunk fingerprint used to probe for the superchunk cheaply.
package recipe

import (
	"encoding/binary"
	"fmt"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
)

// ChunkRecord is one entry in a recipe.
type ChunkRecord struct {
	FP             fingerprint.FP
	Container      container.ID
	Size           uint32
	DuplicateTimes uint32
	// Super marks a superchunk record; FirstChunk is then the fingerprint
	// of the first CDC chunk the superchunk begins with (Algorithm 1).
	Super      bool
	FirstChunk fingerprint.FP
}

// Segment is a group of consecutive chunk records (a segment recipe).
type Segment struct {
	Records []ChunkRecord
}

// Bytes returns the logical size of the segment's chunks.
func (s *Segment) Bytes() int64 {
	var n int64
	for i := range s.Records {
		n += int64(s.Records[i].Size)
	}
	return n
}

// Recipe is the full chunk sequence of one backup file version.
type Recipe struct {
	FileID   string
	Version  int
	Segments []Segment
}

// NumChunks counts chunk records across segments.
func (r *Recipe) NumChunks() int {
	n := 0
	for i := range r.Segments {
		n += len(r.Segments[i].Records)
	}
	return n
}

// LogicalBytes is the restored size of the file.
func (r *Recipe) LogicalBytes() int64 {
	var n int64
	for i := range r.Segments {
		n += r.Segments[i].Bytes()
	}
	return n
}

// Iter calls fn for every chunk record in logical order, stopping early if
// fn returns false.
func (r *Recipe) Iter(fn func(seg, idx int, rec *ChunkRecord) bool) {
	for s := range r.Segments {
		for i := range r.Segments[s].Records {
			if !fn(s, i, &r.Segments[s].Records[i]) {
				return
			}
		}
	}
}

// Index maps sampled (representative) fingerprints of a recipe to the
// segment that contains them, so a similar segment can be located with one
// in-memory lookup and fetched with one ranged OSS read.
type Index struct {
	FileID  string
	Version int
	// Samples maps a representative fingerprint to the segment number of
	// its first occurrence.
	Samples map[fingerprint.FP]int32
}

// BuildIndex samples a recipe with the given sampler. The first fingerprint
// of every segment is always included so every segment remains reachable
// even if random sampling misses it. Superchunk records additionally index
// their FirstChunk fingerprint: the next version's CDC stream produces the
// constituent fingerprints, not the merged one, so the first chunk is the
// only handle that can locate a superchunk-bearing segment (§IV-C).
func BuildIndex(r *Recipe, sampler fingerprint.Sampler) *Index {
	idx := &Index{FileID: r.FileID, Version: r.Version, Samples: make(map[fingerprint.FP]int32)}
	add := func(fp fingerprint.FP, s int) {
		if _, ok := idx.Samples[fp]; !ok {
			idx.Samples[fp] = int32(s)
		}
	}
	for s := range r.Segments {
		recs := r.Segments[s].Records
		for i := range recs {
			fp := recs[i].FP
			if i == 0 || sampler.Sample(fp) {
				add(fp, s)
			}
			if recs[i].Super {
				add(recs[i].FirstChunk, s)
			}
		}
	}
	return idx
}

// ---------------------------------------------------------------------------
// Serialization.
//
// Recipe wire layout (little endian):
//
//	magic u32 | version u32 | fileID len u32 | fileID | fileVersion u32 |
//	segCount u32 | segment directory: (offset u64, length u64)*segCount |
//	segment payloads...
//
// The directory lets a reader fetch a single segment with one ranged read;
// offsets are relative to the start of the object.

const recipeMagic = uint32(0x534C4D52) // "SLMR"
const indexMagic = uint32(0x534C4D49)  // "SLMI"
const wireVersion = 1

const recFixedWire = fingerprint.Size + 8 + 4 + 4 + 1

func appendRecord(buf []byte, rec *ChunkRecord) []byte {
	var tmp [recFixedWire]byte
	copy(tmp[:fingerprint.Size], rec.FP[:])
	binary.LittleEndian.PutUint64(tmp[fingerprint.Size:], uint64(rec.Container))
	binary.LittleEndian.PutUint32(tmp[fingerprint.Size+8:], rec.Size)
	binary.LittleEndian.PutUint32(tmp[fingerprint.Size+12:], rec.DuplicateTimes)
	if rec.Super {
		tmp[fingerprint.Size+16] = 1
	}
	buf = append(buf, tmp[:]...)
	if rec.Super {
		buf = append(buf, rec.FirstChunk[:]...)
	}
	return buf
}

func decodeRecord(b []byte) (ChunkRecord, int, error) {
	if len(b) < recFixedWire {
		return ChunkRecord{}, 0, fmt.Errorf("recipe: truncated chunk record")
	}
	var rec ChunkRecord
	copy(rec.FP[:], b[:fingerprint.Size])
	rec.Container = container.ID(binary.LittleEndian.Uint64(b[fingerprint.Size:]))
	rec.Size = binary.LittleEndian.Uint32(b[fingerprint.Size+8:])
	rec.DuplicateTimes = binary.LittleEndian.Uint32(b[fingerprint.Size+12:])
	n := recFixedWire
	if b[fingerprint.Size+16] == 1 {
		rec.Super = true
		if len(b) < n+fingerprint.Size {
			return ChunkRecord{}, 0, fmt.Errorf("recipe: truncated superchunk record")
		}
		copy(rec.FirstChunk[:], b[n:n+fingerprint.Size])
		n += fingerprint.Size
	}
	return rec, n, nil
}

// EncodeSegment serialises one segment recipe.
func EncodeSegment(s *Segment) []byte {
	buf := make([]byte, 4, 4+len(s.Records)*recFixedWire)
	binary.LittleEndian.PutUint32(buf, uint32(len(s.Records)))
	for i := range s.Records {
		buf = appendRecord(buf, &s.Records[i])
	}
	return buf
}

// DecodeSegment parses one segment recipe.
func DecodeSegment(b []byte) (*Segment, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("recipe: segment too short")
	}
	n := int(binary.LittleEndian.Uint32(b))
	// Every record occupies at least recFixedWire bytes; reject impossible
	// counts before allocating (a hostile header can claim 4G records).
	if n > (len(b)-4)/recFixedWire {
		return nil, fmt.Errorf("recipe: segment claims %d records in %d bytes", n, len(b))
	}
	seg := &Segment{}
	if n > 0 {
		seg.Records = make([]ChunkRecord, 0, n)
	}
	off := 4
	for i := 0; i < n; i++ {
		rec, sz, err := decodeRecord(b[off:])
		if err != nil {
			return nil, fmt.Errorf("recipe: segment record %d: %w", i, err)
		}
		seg.Records = append(seg.Records, rec)
		off += sz
	}
	if off != len(b) {
		return nil, fmt.Errorf("recipe: %d trailing bytes after segment", len(b)-off)
	}
	return seg, nil
}

// Encode serialises a full recipe with its segment directory.
func Encode(r *Recipe) []byte {
	segs := make([][]byte, len(r.Segments))
	for i := range r.Segments {
		segs[i] = EncodeSegment(&r.Segments[i])
	}
	head := 4 + 4 + 4 + len(r.FileID) + 4 + 4 + 16*len(segs)
	buf := make([]byte, 0, head)
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	put32(recipeMagic)
	put32(wireVersion)
	put32(uint32(len(r.FileID)))
	buf = append(buf, r.FileID...)
	put32(uint32(r.Version))
	put32(uint32(len(segs)))
	off := uint64(len(buf) + 16*len(segs))
	var u64 [8]byte
	for _, s := range segs {
		binary.LittleEndian.PutUint64(u64[:], off)
		buf = append(buf, u64[:]...)
		binary.LittleEndian.PutUint64(u64[:], uint64(len(s)))
		buf = append(buf, u64[:]...)
		off += uint64(len(s))
	}
	for _, s := range segs {
		buf = append(buf, s...)
	}
	return buf
}

// directory describes where each segment lives inside a recipe object.
type directory struct {
	fileID   string
	version  int
	segments []struct{ off, n uint64 }
}

func decodeDirectory(b []byte) (*directory, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("recipe: object too short")
	}
	if binary.LittleEndian.Uint32(b) != recipeMagic {
		return nil, fmt.Errorf("recipe: bad magic")
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != wireVersion {
		return nil, fmt.Errorf("recipe: unsupported wire version %d", v)
	}
	nameLen := int(binary.LittleEndian.Uint32(b[8:]))
	if len(b) < 12+nameLen+8 {
		return nil, fmt.Errorf("recipe: truncated header")
	}
	d := &directory{fileID: string(b[12 : 12+nameLen])}
	p := 12 + nameLen
	d.version = int(binary.LittleEndian.Uint32(b[p:]))
	nSegs := int(binary.LittleEndian.Uint32(b[p+4:]))
	p += 8
	if len(b) < p+16*nSegs {
		return nil, fmt.Errorf("recipe: truncated directory")
	}
	d.segments = make([]struct{ off, n uint64 }, nSegs)
	for i := 0; i < nSegs; i++ {
		d.segments[i].off = binary.LittleEndian.Uint64(b[p:])
		d.segments[i].n = binary.LittleEndian.Uint64(b[p+8:])
		p += 16
	}
	return d, nil
}

// Decode parses a full recipe object.
func Decode(b []byte) (*Recipe, error) {
	d, err := decodeDirectory(b)
	if err != nil {
		return nil, err
	}
	r := &Recipe{FileID: d.fileID, Version: d.version}
	if len(d.segments) > 0 {
		r.Segments = make([]Segment, 0, len(d.segments))
	}
	for i, s := range d.segments {
		// Checked without s.off+s.n, which can wrap on hostile directories.
		if s.off > uint64(len(b)) || s.n > uint64(len(b))-s.off {
			return nil, fmt.Errorf("recipe: segment %d out of range", i)
		}
		seg, err := DecodeSegment(b[s.off : s.off+s.n])
		if err != nil {
			return nil, err
		}
		r.Segments = append(r.Segments, *seg)
	}
	return r, nil
}

// EncodeIndex serialises a recipe index.
func EncodeIndex(idx *Index) []byte {
	buf := make([]byte, 0, 16+len(idx.FileID)+len(idx.Samples)*(fingerprint.Size+4))
	var u32 [4]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	put32(indexMagic)
	put32(uint32(len(idx.FileID)))
	buf = append(buf, idx.FileID...)
	put32(uint32(idx.Version))
	put32(uint32(len(idx.Samples)))
	for fp, seg := range idx.Samples {
		buf = append(buf, fp[:]...)
		put32(uint32(seg))
	}
	return buf
}

// DecodeIndex parses a recipe index.
func DecodeIndex(b []byte) (*Index, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("recipe: index too short")
	}
	if binary.LittleEndian.Uint32(b) != indexMagic {
		return nil, fmt.Errorf("recipe: bad index magic")
	}
	nameLen := int(binary.LittleEndian.Uint32(b[4:]))
	if len(b) < 8+nameLen+8 {
		return nil, fmt.Errorf("recipe: truncated index header")
	}
	idx := &Index{FileID: string(b[8 : 8+nameLen])}
	p := 8 + nameLen
	idx.Version = int(binary.LittleEndian.Uint32(b[p:]))
	n := int(binary.LittleEndian.Uint32(b[p+4:]))
	p += 8
	if len(b) != p+n*(fingerprint.Size+4) {
		return nil, fmt.Errorf("recipe: index size mismatch")
	}
	idx.Samples = make(map[fingerprint.FP]int32, n)
	for i := 0; i < n; i++ {
		var fp fingerprint.FP
		copy(fp[:], b[p:])
		idx.Samples[fp] = int32(binary.LittleEndian.Uint32(b[p+fingerprint.Size:]))
		p += fingerprint.Size + 4
	}
	return idx, nil
}
