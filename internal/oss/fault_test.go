package oss

import (
	"errors"
	"fmt"
	"testing"
)

// corruptSchedule runs a fixed operation sequence against a freshly
// seeded Faulty and records, per Get, whether the corruption stream
// fired. The other knobs (failRate, targeted maps, put budget) are
// configured by the caller before the run.
func corruptSchedule(t *testing.T, seed int64, arm func(*Faulty)) []bool {
	t.Helper()
	mem := NewMem()
	f := NewFaulty(mem)
	f.Seed(seed)
	f.CorruptRate(0.5)
	arm(f)
	want := []byte("0123456789abcdef")
	for i := 0; i < 4; i++ {
		// Writes go to the inner store directly so failRate/put-budget
		// settings cannot change which objects exist.
		if err := mem.Put(fmt.Sprintf("k%d", i), want); err != nil {
			t.Fatal(err)
		}
	}
	var fired []bool
	for i := 0; i < 64; i++ {
		b, err := f.Get(fmt.Sprintf("k%d", i%4))
		if err != nil {
			// A fail-mode injection still consumed exactly one draw from
			// each armed stream; the corruption decision for this slot is
			// unobservable, so replay it from the schedule invariant: mark
			// it false and let the cross-run comparison skip it.
			fired = append(fired, false)
			continue
		}
		fired = append(fired, b[len(b)/2] != want[len(want)/2])
	}
	return fired
}

// TestFaultStreamsIndependent is the regression test for the seeded
// fault composition fix: the corruption schedule drawn from one seed
// must be identical whether or not the fail mode, targeted maps, or put
// budget are armed alongside it.
func TestFaultStreamsIndependent(t *testing.T) {
	const seed = 99
	base := corruptSchedule(t, seed, func(f *Faulty) {})
	variants := map[string]func(*Faulty){
		"failRate":  func(f *Faulty) { f.FailRate(0.3) },
		"targeted":  func(f *Faulty) { f.FailGet("k1"); f.FailPut("k2"); f.CorruptReads("k3") },
		"putBudget": func(f *Faulty) { f.FailPutsAfter(2) },
	}
	for name, arm := range variants {
		got := corruptSchedule(t, seed, arm)
		if len(got) != len(base) {
			t.Fatalf("%s: schedule length %d, want %d", name, len(got), len(base))
		}
		for i := range base {
			// Slots whose observation the variant perturbs by design are
			// excluded: targeted CorruptReads/FailGet pin k1/k3 outcomes,
			// and a fail-mode injection masks that slot's corrupt
			// observation as false (never as a spurious true).
			if name == "targeted" && i%4 != 0 && i%4 != 2 {
				continue
			}
			if name == "failRate" {
				if got[i] && !base[i] {
					t.Fatalf("%s: corruption fired at op %d only with the extra mode armed", name, i)
				}
				continue
			}
			if got[i] != base[i] {
				t.Fatalf("%s: corruption schedule diverged at op %d (base=%v got=%v)", name, i, base[i], got[i])
			}
		}
	}
}

// TestFaultSeedDeterminism pins that one seed reproduces the exact same
// injected-failure sequence across runs.
func TestFaultSeedDeterminism(t *testing.T) {
	run := func() []bool {
		f := NewFaulty(NewMem())
		f.Seed(7)
		f.FailRate(0.4)
		var fails []bool
		for i := 0; i < 100; i++ {
			err := f.Put("k", []byte("x"))
			fails = append(fails, err != nil)
			if err != nil && !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: unexpected error class %v", i, err)
			}
		}
		return fails
	}
	a, b := run(), run()
	var n int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded failure sequence diverged at op %d", i)
		}
		if a[i] {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("failRate 0.4 produced %d/%d failures — stream not live", n, len(a))
	}
}

// TestFaultOutage pins the whole-backend outage mode: every operation
// class fails with ErrInjected while down, and the store heals cleanly
// when the outage lifts.
func TestFaultOutage(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem)
	if err := f.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	f.SetOutage(true)
	if !f.Outage() {
		t.Fatal("Outage() false after SetOutage(true)")
	}
	if err := f.Put("b", []byte("2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put during outage: %v", err)
	}
	if _, err := f.Get("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Get during outage: %v", err)
	}
	if _, err := f.GetRange("a", 0, 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("GetRange during outage: %v", err)
	}
	if _, err := f.Head("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Head during outage: %v", err)
	}
	if err := f.Delete("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Delete during outage: %v", err)
	}
	if _, err := f.List(""); !errors.Is(err, ErrInjected) {
		t.Fatalf("List during outage: %v", err)
	}
	f.SetOutage(false)
	if b, err := f.Get("a"); err != nil || string(b) != "1" {
		t.Fatalf("Get after heal: %q, %v", b, err)
	}
	// Clear() also lifts an outage.
	f.SetOutage(true)
	f.Clear()
	if f.Outage() {
		t.Fatal("Clear() left the outage armed")
	}
}
