package oss

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// StatusError is an HTTP response the client treats as an error. Retry's
// default classifier consults the code: 4xx (except 429) is permanent,
// 5xx transient.
type StatusError struct {
	Op   string
	Key  string
	Code int
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("oss: %s %s: status %d %s", e.Op, e.Key, e.Code, http.StatusText(e.Code))
}

// Server exposes a Store over an S3-like HTTP dialect:
//
//	PUT    /o/<key>            store object body
//	GET    /o/<key>            fetch object (honours Range: bytes=a-b)
//	HEAD   /o/<key>            size via Content-Length
//	DELETE /o/<key>            delete object
//	GET    /list?prefix=<p>    newline-separated keys
//
// It is the substrate for multi-process deployments and for the ossserver
// binary; in-process experiments use Mem directly.
type Server struct {
	store    Store
	mux      *http.ServeMux
	maxBytes int64
}

// DefaultMaxObjectBytes bounds PUT bodies. Containers are a few MiB;
// 256 MiB leaves headroom for recipe and index objects while keeping a
// misbehaving client from exhausting server memory.
const DefaultMaxObjectBytes = 256 << 20

// NewServer wraps store in an HTTP handler.
func NewServer(store Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux(), maxBytes: DefaultMaxObjectBytes}
	s.mux.HandleFunc("/o/", s.handleObject)
	s.mux.HandleFunc("/list", s.handleList)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// SetMaxObjectBytes overrides the PUT body limit (n <= 0 keeps the
// default).
func (s *Server) SetMaxObjectBytes(n int64) {
	if n > 0 {
		s.maxBytes = n
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	key, err := url.PathUnescape(strings.TrimPrefix(r.URL.Path, "/o/"))
	if err != nil || key == "" {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		if r.ContentLength > s.maxBytes {
			http.Error(w, fmt.Sprintf("object exceeds %d byte limit", s.maxBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBytes))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				http.Error(w, fmt.Sprintf("object exceeds %d byte limit", s.maxBytes),
					http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.store.Put(key, body); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		if rng := r.Header.Get("Range"); rng != "" {
			off, n, ok := parseRange(rng)
			if !ok {
				http.Error(w, "bad range", http.StatusRequestedRangeNotSatisfiable)
				return
			}
			data, err := s.store.GetRange(key, off, n)
			if err != nil {
				writeStoreErr(w, err)
				return
			}
			w.WriteHeader(http.StatusPartialContent)
			w.Write(data)
			return
		}
		data, err := s.store.Get(key)
		if err != nil {
			writeStoreErr(w, err)
			return
		}
		w.Write(data)
	case http.MethodHead:
		n, err := s.store.Head(key)
		if err != nil {
			writeStoreErr(w, err)
			return
		}
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		if err := s.store.Delete(key); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	keys, err := s.store.List(r.URL.Query().Get("prefix"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

func writeStoreErr(w http.ResponseWriter, err error) {
	if strings.Contains(err.Error(), "key not found") {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	http.Error(w, err.Error(), http.StatusInternalServerError)
}

// parseRange parses "bytes=a-b" (inclusive b) or "bytes=a-".
func parseRange(h string) (off, n int64, ok bool) {
	h = strings.TrimPrefix(h, "bytes=")
	parts := strings.SplitN(h, "-", 2)
	if len(parts) != 2 {
		return 0, 0, false
	}
	off, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil || off < 0 {
		return 0, 0, false
	}
	if parts[1] == "" {
		return off, -1, true
	}
	end, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || end < off {
		return 0, 0, false
	}
	return off, end - off + 1, true
}

// Client is a Store that talks to a Server over HTTP.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a server at baseURL (e.g.
// "http://localhost:9000"). hc may be nil to use http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimSuffix(baseURL, "/"), hc: hc}
}

func (c *Client) objURL(key string) string {
	return c.base + "/o/" + url.PathEscape(key)
}

// Put implements Store.
func (c *Client) Put(key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.objURL(key), strings.NewReader(string(data)))
	if err != nil {
		return fmt.Errorf("oss: put %s: %w", key, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("oss: put %s: %w", key, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusCreated {
		return &StatusError{Op: "put", Key: key, Code: resp.StatusCode}
	}
	return nil
}

// Get implements Store.
func (c *Client) Get(key string) ([]byte, error) {
	resp, err := c.hc.Get(c.objURL(key))
	if err != nil {
		return nil, fmt.Errorf("oss: get %s: %w", key, err)
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Op: "get", Key: key, Code: resp.StatusCode}
	}
	return io.ReadAll(resp.Body)
}

// GetRange implements Store.
func (c *Client) GetRange(key string, off, n int64) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.objURL(key), nil)
	if err != nil {
		return nil, fmt.Errorf("oss: get range %s: %w", key, err)
	}
	if n < 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", off))
	} else {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+n-1))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("oss: get range %s: %w", key, err)
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if resp.StatusCode != http.StatusPartialContent && resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Op: "get range", Key: key, Code: resp.StatusCode}
	}
	return io.ReadAll(resp.Body)
}

// Head implements Store.
func (c *Client) Head(key string) (int64, error) {
	resp, err := c.hc.Head(c.objURL(key))
	if err != nil {
		return 0, fmt.Errorf("oss: head %s: %w", key, err)
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusNotFound {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, &StatusError{Op: "head", Key: key, Code: resp.StatusCode}
	}
	return resp.ContentLength, nil
}

// Delete implements Store.
func (c *Client) Delete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, c.objURL(key), nil)
	if err != nil {
		return fmt.Errorf("oss: delete %s: %w", key, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("oss: delete %s: %w", key, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		return &StatusError{Op: "delete", Key: key, Code: resp.StatusCode}
	}
	return nil
}

// List implements Store.
func (c *Client) List(prefix string) ([]string, error) {
	resp, err := c.hc.Get(c.base + "/list?prefix=" + url.QueryEscape(prefix))
	if err != nil {
		return nil, fmt.Errorf("oss: list %q: %w", prefix, err)
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Op: "list", Key: prefix, Code: resp.StatusCode}
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("oss: list %q: %w", prefix, err)
	}
	var out []string
	for _, line := range strings.Split(string(body), "\n") {
		if line != "" {
			out = append(out, line)
		}
	}
	return out, nil
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
