package oss

import "strings"

// Prefixed namespaces a Store under a fixed key prefix, isolating tenants
// on one physical object store (the paper's global index is per user; one
// bucket-per-user deployment maps to one Prefixed view per user).
type Prefixed struct {
	inner  Store
	prefix string
}

// NewPrefixed wraps inner under prefix (a trailing "/" is added if
// missing). An empty prefix returns a pass-through view.
func NewPrefixed(inner Store, prefix string) *Prefixed {
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return &Prefixed{inner: inner, prefix: prefix}
}

func (p *Prefixed) key(k string) string { return p.prefix + k }

// Put implements Store.
func (p *Prefixed) Put(key string, data []byte) error { return p.inner.Put(p.key(key), data) }

// Get implements Store.
func (p *Prefixed) Get(key string) ([]byte, error) { return p.inner.Get(p.key(key)) }

// GetRange implements Store.
func (p *Prefixed) GetRange(key string, off, n int64) ([]byte, error) {
	return p.inner.GetRange(p.key(key), off, n)
}

// Head implements Store.
func (p *Prefixed) Head(key string) (int64, error) { return p.inner.Head(p.key(key)) }

// Delete implements Store.
func (p *Prefixed) Delete(key string) error { return p.inner.Delete(p.key(key)) }

// List implements Store.
func (p *Prefixed) List(prefix string) ([]string, error) {
	keys, err := p.inner.List(p.key(prefix))
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, strings.TrimPrefix(k, p.prefix))
	}
	return out, nil
}
