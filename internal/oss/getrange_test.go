package oss

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"slimstore/internal/simclock"
)

// rangeReadCost is the model the planner's cost comparison relies on: one
// request latency plus bandwidth time for the bytes actually returned.
func rangeReadCost(c simclock.Costs, n int64) time.Duration {
	return c.OSSRequestLatency + time.Duration(float64(n)/c.OSSReadBandwidth*float64(time.Second))
}

func checkCharge(t *testing.T, acct *simclock.Account, costs simclock.Costs, wantReads int64, wantBytes int64) {
	t.Helper()
	io := acct.IO()
	if io.Reads != wantReads {
		t.Fatalf("reads = %d, want %d", io.Reads, wantReads)
	}
	if io.ReadBytes != wantBytes {
		t.Fatalf("read bytes = %d, want %d", io.ReadBytes, wantBytes)
	}
	want := time.Duration(wantReads)*costs.OSSRequestLatency +
		time.Duration(float64(wantBytes)/costs.OSSReadBandwidth*float64(time.Second))
	if d := io.ReadTime - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("read time %v, want %v (%d reads, %d bytes)", io.ReadTime, want, wantReads, wantBytes)
	}
}

// meteredGetRangeUnderTest drives the accounting contract the ranged-read
// planner depends on against any backing store: each GetRange costs one
// request latency plus bandwidth for the RETURNED byte count — never the
// object size — including the n < 0 suffix form and ranges clamped at the
// object's end. Failed range reads cost nothing.
func meteredGetRangeUnderTest(t *testing.T, inner Store) {
	t.Helper()
	const objSize = 1 << 20
	payload := make([]byte, objSize)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := inner.Put("obj", payload); err != nil {
		t.Fatal(err)
	}

	costs := simclock.DefaultCosts()
	acct := simclock.NewAccount()
	s := NewMetered(inner, costs, acct)

	// Interior range: charged for 64 KiB, not the 1 MiB object.
	b, err := s.GetRange("obj", 4096, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, payload[4096:4096+64<<10]) {
		t.Fatal("interior range returned wrong bytes")
	}
	checkCharge(t, acct, costs, 1, 64<<10)
	if one := rangeReadCost(costs, 64<<10); acct.IO().ReadTime != one {
		t.Fatalf("single range read time %v, want %v", acct.IO().ReadTime, one)
	}

	// Suffix form (n < 0): reads — and charges — to the end of the object.
	acct.Reset()
	b, err = s.GetRange("obj", objSize-8192, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, payload[objSize-8192:]) {
		t.Fatal("suffix range returned wrong bytes")
	}
	checkCharge(t, acct, costs, 1, 8192)

	// Over-long range is clamped at the object's end; the charge follows
	// the clamp.
	acct.Reset()
	b, err = s.GetRange("obj", objSize-100, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 100 {
		t.Fatalf("clamped range returned %d bytes, want 100", len(b))
	}
	checkCharge(t, acct, costs, 1, 100)

	// Failures — missing key, out-of-bounds offset — are not charged.
	acct.Reset()
	if _, err = s.GetRange("missing", 0, 16); err == nil {
		t.Fatal("GetRange of missing key succeeded")
	}
	if _, err = s.GetRange("obj", objSize+1, 16); err == nil {
		t.Fatal("out-of-bounds GetRange succeeded")
	}
	if io := acct.IO(); io.Reads != 0 || io.ReadBytes != 0 || io.ReadTime != 0 {
		t.Fatalf("failed range reads were charged: %+v", io)
	}
}

func TestMeteredGetRangeAccountingMem(t *testing.T) {
	s := NewMem()
	meteredGetRangeUnderTest(t, s)

	// Zero-length range still pays the request latency (the planner's
	// per-span fixed cost), with no bandwidth term. Mem-only: an empty
	// range is unrepresentable in an HTTP Range header (bytes=512-511 is
	// unsatisfiable per RFC 7233), and the planner never emits one.
	costs := simclock.DefaultCosts()
	acct := simclock.NewAccount()
	b, err := NewMetered(s, costs, acct).GetRange("obj", 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 0 {
		t.Fatalf("zero-length range returned %d bytes", len(b))
	}
	checkCharge(t, acct, costs, 1, 0)
}

func TestMeteredGetRangeAccountingHTTP(t *testing.T) {
	backend := NewMem()
	srv := httptest.NewServer(NewServer(backend))
	defer srv.Close()
	meteredGetRangeUnderTest(t, NewClient(srv.URL, srv.Client()))
}

// TestMeteredGetRangeCheaperThanFull pins the planner's premise end to
// end: k sparse range reads of a container-sized object cost less virtual
// time than one full read when the spans are few and small, and more when
// request latency dominates. Both sides come from the same ChargeRead
// model, so this is the inequality Plan() evaluates.
func TestMeteredGetRangeCheaperThanFull(t *testing.T) {
	const objSize = 4 << 20
	inner := NewMem()
	if err := inner.Put("obj", make([]byte, objSize)); err != nil {
		t.Fatal(err)
	}
	costs := simclock.DefaultCosts()

	full := simclock.NewAccount()
	if _, err := NewMetered(inner, costs, full).Get("obj"); err != nil {
		t.Fatal(err)
	}

	sparse := simclock.NewAccount()
	sm := NewMetered(inner, costs, sparse)
	for i := 0; i < 3; i++ {
		if _, err := sm.GetRange("obj", int64(i)<<20, 64<<10); err != nil {
			t.Fatal(err)
		}
	}
	if sparse.IO().ReadTime >= full.IO().ReadTime {
		t.Fatalf("3 sparse spans (%v) should beat a full read (%v)",
			sparse.IO().ReadTime, full.IO().ReadTime)
	}

	dense := simclock.NewAccount()
	dm := NewMetered(inner, costs, dense)
	for i := 0; i < 256; i++ {
		if _, err := dm.GetRange("obj", int64(i)*(objSize/256), 8<<10); err != nil {
			t.Fatal(err)
		}
	}
	if dense.IO().ReadTime <= full.IO().ReadTime {
		t.Fatalf("256 scattered spans (%v) should lose to a full read (%v)",
			dense.IO().ReadTime, full.IO().ReadTime)
	}
}
