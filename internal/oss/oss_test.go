package oss

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"slimstore/internal/simclock"
)

// storeUnderTest runs the full Store contract against an implementation.
func storeUnderTest(t *testing.T, s Store) {
	t.Helper()

	// Missing key behaviour.
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if _, err := s.Head("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Head(missing) = %v, want ErrNotFound", err)
	}
	if err := s.Delete("nope"); err != nil {
		t.Fatalf("Delete(missing) = %v, want nil", err)
	}

	// Round trip.
	data := []byte("hello, object storage")
	if err := s.Put("a/b/c", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
	n, err := s.Head("a/b/c")
	if err != nil || n != int64(len(data)) {
		t.Fatalf("Head = %d, %v; want %d", n, err, len(data))
	}

	// Overwrite.
	if err := s.Put("a/b/c", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get("a/b/c")
	if string(got) != "v2" {
		t.Fatalf("after overwrite Get = %q, want v2", got)
	}

	// Ranges.
	if err := s.Put("r", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		off, n int64
		want   string
	}{
		{0, 4, "0123"}, {3, 4, "3456"}, {5, -1, "56789"}, {9, 100, "9"}, {10, 5, ""},
	} {
		got, err := s.GetRange("r", tc.off, tc.n)
		if err != nil {
			t.Fatalf("GetRange(%d,%d): %v", tc.off, tc.n, err)
		}
		if string(got) != tc.want {
			t.Fatalf("GetRange(%d,%d) = %q, want %q", tc.off, tc.n, got, tc.want)
		}
	}
	if _, err := s.GetRange("r", -1, 2); err == nil {
		t.Fatal("GetRange(-1) should fail")
	}
	if _, err := s.GetRange("r", 11, 2); err == nil {
		t.Fatal("GetRange past end should fail")
	}

	// List with prefix, lexicographic order.
	for _, k := range []string{"p/2", "p/1", "q/1", "p/10"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.List("p/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"p/1", "p/10", "p/2"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("List(p/) = %v, want %v", keys, want)
	}

	// Delete removes from listing.
	if err := s.Delete("p/10"); err != nil {
		t.Fatal(err)
	}
	keys, _ = s.List("p/")
	if !reflect.DeepEqual(keys, []string{"p/1", "p/2"}) {
		t.Fatalf("List after delete = %v", keys)
	}

	// Odd keys survive escaping.
	odd := "weird key/with spaces/and:colons/..dots"
	if err := s.Put(odd, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err = s.Get(odd)
	if err != nil || string(got) != "x" {
		t.Fatalf("odd key round trip failed: %q, %v", got, err)
	}
}

func TestMemStore(t *testing.T) { storeUnderTest(t, NewMem()) }

func TestDiskStore(t *testing.T) {
	s, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	storeUnderTest(t, s)
}

func TestHTTPStore(t *testing.T) {
	backend := NewMem()
	srv := httptest.NewServer(NewServer(backend))
	defer srv.Close()
	storeUnderTest(t, NewClient(srv.URL, srv.Client()))
}

func TestMemIsolation(t *testing.T) {
	s := NewMem()
	data := []byte{1, 2, 3}
	s.Put("k", data)
	data[0] = 99
	got, _ := s.Get("k")
	if got[0] != 1 {
		t.Fatal("Put did not copy the caller's buffer")
	}
	got[1] = 99
	got2, _ := s.Get("k")
	if got2[1] != 2 {
		t.Fatal("Get returned shared memory")
	}
}

func TestMemConcurrency(t *testing.T) {
	s := NewMem()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d/k%d", w, i%10)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
				s.List(fmt.Sprintf("w%d/", w))
			}
		}(w)
	}
	wg.Wait()
}

func TestMeteredAccounting(t *testing.T) {
	costs := simclock.DefaultCosts()
	acct := simclock.NewAccount()
	s := NewMetered(NewMem(), costs, acct)

	payload := make([]byte, 1<<20)
	if err := s.Put("obj", payload); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("obj"); err != nil {
		t.Fatal(err)
	}
	io := acct.IO()
	if io.Writes != 1 || io.Reads != 1 {
		t.Fatalf("io counters: %+v", io)
	}
	if io.WriteBytes != 1<<20 || io.ReadBytes != 1<<20 {
		t.Fatalf("io bytes: %+v", io)
	}
	// Time model: latency + size/bandwidth.
	wantRead := costs.OSSRequestLatency + time.Duration(float64(1<<20)/costs.OSSReadBandwidth*float64(time.Second))
	if d := io.ReadTime - wantRead; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("read time %v, want %v", io.ReadTime, wantRead)
	}

	// Misses are not charged.
	before := acct.IO().Reads
	s.Get("missing")
	if acct.IO().Reads != before {
		t.Fatal("failed Get was charged")
	}

	// WithAccount charges the other account against the same data.
	acct2 := simclock.NewAccount()
	s2 := s.WithAccount(acct2)
	if _, err := s2.Get("obj"); err != nil {
		t.Fatal(err)
	}
	if acct2.IO().Reads != 1 {
		t.Fatal("WithAccount did not charge the new account")
	}
	if acct.IO().Reads != before {
		t.Fatal("WithAccount still charged the old account")
	}
}

func TestMemTotals(t *testing.T) {
	s := NewMem()
	s.Put("containers/1", make([]byte, 100))
	s.Put("containers/2", make([]byte, 50))
	s.Put("recipes/a", make([]byte, 7))
	if got := s.TotalBytes(); got != 157 {
		t.Fatalf("TotalBytes = %d", got)
	}
	if got := s.BytesWithPrefix("containers/"); got != 150 {
		t.Fatalf("BytesWithPrefix = %d", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestParseRange(t *testing.T) {
	cases := []struct {
		in     string
		off, n int64
		ok     bool
	}{
		{"bytes=0-3", 0, 4, true},
		{"bytes=5-", 5, -1, true},
		{"bytes=9-9", 9, 1, true},
		{"bytes=-5", 0, 0, false},
		{"bytes=a-b", 0, 0, false},
		{"bytes=5-3", 0, 0, false},
	}
	for _, c := range cases {
		off, n, ok := parseRange(c.in)
		if ok != c.ok || (ok && (off != c.off || n != c.n)) {
			t.Errorf("parseRange(%q) = %d,%d,%v; want %d,%d,%v", c.in, off, n, ok, c.off, c.n, c.ok)
		}
	}
}

// Property: put/get round-trips arbitrary contents across all backends.
func TestQuickRoundTrip(t *testing.T) {
	mem := NewMem()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	f := func(data []byte) bool {
		i++
		key := fmt.Sprintf("k/%d", i)
		for _, s := range []Store{mem, disk} {
			if err := s.Put(key, data); err != nil {
				return false
			}
			got, err := s.Get(key)
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixedIsolation(t *testing.T) {
	base := NewMem()
	a := NewPrefixed(base, "tenant-a")
	b := NewPrefixed(base, "tenant-b/")

	if err := a.Put("containers/C1", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("containers/C1", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	got, err := a.Get("containers/C1")
	if err != nil || string(got) != "alpha" {
		t.Fatalf("tenant-a read = %q, %v", got, err)
	}
	got, _ = b.Get("containers/C1")
	if string(got) != "beta" {
		t.Fatalf("tenant-b read = %q", got)
	}
	// Lists are namespaced and keys come back unprefixed.
	keys, err := a.List("containers/")
	if err != nil || len(keys) != 1 || keys[0] != "containers/C1" {
		t.Fatalf("tenant-a list = %v, %v", keys, err)
	}
	// Physical layout is prefixed.
	phys, _ := base.List("tenant-a/")
	if len(phys) != 1 || phys[0] != "tenant-a/containers/C1" {
		t.Fatalf("physical keys = %v", phys)
	}
	// The full Store contract holds under a prefix.
	storeUnderTest(t, NewPrefixed(NewMem(), "x"))
}

func TestHTTPOversizePutRejected(t *testing.T) {
	backend := NewMem()
	handler := NewServer(backend)
	handler.SetMaxObjectBytes(1024)
	srv := httptest.NewServer(handler)
	defer srv.Close()
	c := NewClient(srv.URL, nil)

	if err := c.Put("small", make([]byte, 1024)); err != nil {
		t.Fatalf("at-limit put rejected: %v", err)
	}
	err := c.Put("big", make([]byte, 1025))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 413 {
		t.Fatalf("oversize put = %v, want StatusError 413", err)
	}
	// The classifier must treat 413 as permanent: no retry budget burned.
	if IsTransient(err) {
		t.Fatal("413 classified as transient")
	}
	if _, err := backend.Get("big"); !errors.Is(err, ErrNotFound) {
		t.Fatal("oversize object stored anyway")
	}
}

func TestFaultyProbabilisticModes(t *testing.T) {
	mem := NewMem()
	mem.Put("k", bytes.Repeat([]byte("x"), 64))

	// Deterministic: same seed, same fault schedule.
	outcomes := func(seed int64) []bool {
		f := NewFaulty(mem)
		f.SetRand(rand.New(rand.NewSource(seed)))
		f.FailRate(0.3)
		var out []bool
		for i := 0; i < 50; i++ {
			_, err := f.Get("k")
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	fails := 0
	for _, ok := range a {
		if !ok {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("FailRate(0.3) over %d ops produced %d failures", len(a), fails)
	}

	// CorruptRate flips bytes on some reads without erroring.
	f := NewFaulty(mem)
	f.SetRand(rand.New(rand.NewSource(7)))
	f.CorruptRate(0.5)
	want, _ := mem.Get("k")
	corrupted := 0
	for i := 0; i < 40; i++ {
		got, err := f.Get("k")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			corrupted++
		}
	}
	if corrupted == 0 || corrupted == 40 {
		t.Fatalf("CorruptRate(0.5) corrupted %d/40 reads", corrupted)
	}

	// Clear disarms the rates.
	f.Clear()
	for i := 0; i < 20; i++ {
		got, err := f.Get("k")
		if err != nil || !bytes.Equal(got, want) {
			t.Fatal("faults survived Clear")
		}
	}
}
