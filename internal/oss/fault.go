package oss

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected marks failures produced by a Faulty store.
var ErrInjected = errors.New("oss: injected fault")

// Salts deriving the per-mode RNG streams from one seed (see Seed).
const (
	failSeedSalt    int64 = 0x5f3759df
	corruptSeedSalt int64 = 0x2545f491
)

// Faulty wraps a Store and injects deterministic failures, for testing
// error propagation and crash-recovery paths (a put that never lands, a
// flaky read, a store that dies after N operations, a whole backend going
// dark). All knobs are safe for concurrent use.
type Faulty struct {
	inner Store

	mu       sync.Mutex
	failPuts map[string]bool // keys whose Put fails
	failGets map[string]bool // keys whose Get/GetRange fails
	putsLeft int             // if >= 0, number of Puts allowed before all fail
	opCount  int64
	corrupt  map[string]bool // keys whose reads return flipped bytes
	down     bool            // whole-backend outage: every operation fails

	// Probabilistic modes. Each mode draws from its own seeded RNG stream,
	// and an armed mode draws exactly once per operation regardless of the
	// other modes' settings or the targeted maps — so the fault schedule of
	// one mode is a pure function of (its seed, the operation sequence) and
	// composes deterministically with the others.
	failRng     *rand.Rand
	corruptRng  *rand.Rand
	failRate    float64 // probability a Put/Get/GetRange fails
	corruptRate float64 // probability a Get/GetRange returns flipped bytes
}

// NewFaulty wraps inner with no faults armed.
func NewFaulty(inner Store) *Faulty {
	return &Faulty{
		inner:    inner,
		failPuts: make(map[string]bool),
		failGets: make(map[string]bool),
		putsLeft: -1,
		corrupt:  make(map[string]bool),
	}
}

// FailPut arms a failure for every Put of key.
func (f *Faulty) FailPut(key string) {
	f.mu.Lock()
	f.failPuts[key] = true
	f.mu.Unlock()
}

// FailGet arms a failure for every Get/GetRange of key.
func (f *Faulty) FailGet(key string) {
	f.mu.Lock()
	f.failGets[key] = true
	f.mu.Unlock()
}

// FailPutsAfter lets n more Puts succeed, then fails every subsequent Put
// (simulating the node losing its OSS connection mid-backup).
func (f *Faulty) FailPutsAfter(n int) {
	f.mu.Lock()
	f.putsLeft = n
	f.mu.Unlock()
}

// CorruptReads makes reads of key return bit-flipped data (for integrity
// verification tests).
func (f *Faulty) CorruptReads(key string) {
	f.mu.Lock()
	f.corrupt[key] = true
	f.mu.Unlock()
}

// SetOutage switches the whole-backend outage mode: while down, every
// operation (reads, writes, deletes, lists) fails with ErrInjected. This
// models one fault domain of a multi-backend deployment going dark; the
// erasure-coded tier must keep serving through it.
func (f *Faulty) SetOutage(down bool) {
	f.mu.Lock()
	f.down = down
	f.mu.Unlock()
}

// Outage reports whether the whole-backend outage mode is armed.
func (f *Faulty) Outage() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// Seed arms both probabilistic RNG streams deterministically from one
// seed. Each mode gets its own derived stream, so arming or disarming one
// mode never perturbs the fault sequence of another.
func (f *Faulty) Seed(seed int64) {
	f.mu.Lock()
	f.failRng = rand.New(rand.NewSource(seed ^ failSeedSalt))
	f.corruptRng = rand.New(rand.NewSource(seed ^ corruptSeedSalt))
	f.mu.Unlock()
}

// SetRand seeds the probabilistic modes from an injected RNG (two child
// streams are derived, one per mode). Kept for callers that already hold
// a *rand.Rand; Seed is the single-integer equivalent.
func (f *Faulty) SetRand(r *rand.Rand) {
	f.mu.Lock()
	f.failRng = rand.New(rand.NewSource(r.Int63()))
	f.corruptRng = rand.New(rand.NewSource(r.Int63()))
	f.mu.Unlock()
}

// FailRate arms probabilistic failures: each Put/Get/GetRange fails with
// probability p (0 disarms).
func (f *Faulty) FailRate(p float64) {
	f.mu.Lock()
	f.failRate = p
	f.mu.Unlock()
}

// CorruptRate arms probabilistic read corruption: each Get/GetRange
// returns flipped bytes with probability p (0 disarms).
func (f *Faulty) CorruptRate(p float64) {
	f.mu.Lock()
	f.corruptRate = p
	f.mu.Unlock()
}

// roll draws from one mode's stream, returning true with probability p.
// An armed mode (p > 0) draws exactly once per call. Caller holds f.mu.
func (f *Faulty) roll(rng **rand.Rand, salt int64, p float64) bool {
	if p <= 0 {
		return false
	}
	if *rng == nil {
		*rng = rand.New(rand.NewSource(1 ^ salt))
	}
	return (*rng).Float64() < p
}

// Clear disarms every fault, including the probabilistic rates and the
// outage mode.
func (f *Faulty) Clear() {
	f.mu.Lock()
	f.failPuts = make(map[string]bool)
	f.failGets = make(map[string]bool)
	f.corrupt = make(map[string]bool)
	f.putsLeft = -1
	f.failRate = 0
	f.corruptRate = 0
	f.down = false
	f.mu.Unlock()
}

// Ops returns the number of operations observed.
func (f *Faulty) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opCount
}

func (f *Faulty) putAllowed(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opCount++
	// Draw before any early return so the stream position depends only on
	// the operation sequence, never on which fault fired.
	failRoll := f.roll(&f.failRng, failSeedSalt, f.failRate)
	if f.down {
		return fmt.Errorf("%w: put %s (backend down)", ErrInjected, key)
	}
	if f.failPuts[key] {
		return fmt.Errorf("%w: put %s", ErrInjected, key)
	}
	if f.putsLeft == 0 {
		return fmt.Errorf("%w: put budget exhausted at %s", ErrInjected, key)
	}
	if f.putsLeft > 0 {
		f.putsLeft--
	}
	if failRoll {
		return fmt.Errorf("%w: put %s (probabilistic)", ErrInjected, key)
	}
	return nil
}

func (f *Faulty) getCheck(key string) (corrupt bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opCount++
	// Both armed streams advance unconditionally: each mode's decision
	// sequence is independent of the other mode's outcome and of the
	// targeted maps, so schedules compose deterministically from one seed.
	failRoll := f.roll(&f.failRng, failSeedSalt, f.failRate)
	corruptRoll := f.roll(&f.corruptRng, corruptSeedSalt, f.corruptRate)
	if f.down {
		return false, fmt.Errorf("%w: get %s (backend down)", ErrInjected, key)
	}
	if f.failGets[key] {
		return false, fmt.Errorf("%w: get %s", ErrInjected, key)
	}
	if failRoll {
		return false, fmt.Errorf("%w: get %s (probabilistic)", ErrInjected, key)
	}
	return f.corrupt[key] || corruptRoll, nil
}

// Put implements Store.
func (f *Faulty) Put(key string, data []byte) error {
	if err := f.putAllowed(key); err != nil {
		return err
	}
	return f.inner.Put(key, data)
}

// Get implements Store.
func (f *Faulty) Get(key string) ([]byte, error) {
	corrupt, err := f.getCheck(key)
	if err != nil {
		return nil, err
	}
	b, err := f.inner.Get(key)
	if err == nil && corrupt && len(b) > 0 {
		b[len(b)/2] ^= 0xFF
	}
	return b, err
}

// GetRange implements Store.
func (f *Faulty) GetRange(key string, off, n int64) ([]byte, error) {
	corrupt, err := f.getCheck(key)
	if err != nil {
		return nil, err
	}
	b, err := f.inner.GetRange(key, off, n)
	if err == nil && corrupt && len(b) > 0 {
		b[len(b)/2] ^= 0xFF
	}
	return b, err
}

// Head implements Store.
func (f *Faulty) Head(key string) (int64, error) {
	if _, err := f.getCheck(key); err != nil {
		return 0, err
	}
	return f.inner.Head(key)
}

// Delete implements Store.
func (f *Faulty) Delete(key string) error {
	f.mu.Lock()
	f.opCount++
	down := f.down
	f.mu.Unlock()
	if down {
		return fmt.Errorf("%w: delete %s (backend down)", ErrInjected, key)
	}
	return f.inner.Delete(key)
}

// List implements Store.
func (f *Faulty) List(prefix string) ([]string, error) {
	f.mu.Lock()
	f.opCount++
	down := f.down
	f.mu.Unlock()
	if down {
		return nil, fmt.Errorf("%w: list %s (backend down)", ErrInjected, prefix)
	}
	return f.inner.List(prefix)
}
