package oss

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrInjected marks failures produced by a Faulty store.
var ErrInjected = errors.New("oss: injected fault")

// Faulty wraps a Store and injects deterministic failures, for testing
// error propagation and crash-recovery paths (a put that never lands, a
// flaky read, a store that dies after N operations). All knobs are safe
// for concurrent use.
type Faulty struct {
	inner Store

	mu       sync.Mutex
	failPuts map[string]bool // keys whose Put fails
	failGets map[string]bool // keys whose Get/GetRange fails
	putsLeft int             // if >= 0, number of Puts allowed before all fail
	opCount  int64
	corrupt  map[string]bool // keys whose reads return flipped bytes

	// Probabilistic modes, driven by an injected deterministic RNG so the
	// chaos harness and unit tests share one reproducible fault surface.
	rng         *rand.Rand
	failRate    float64 // probability a Put/Get/GetRange fails
	corruptRate float64 // probability a Get/GetRange returns flipped bytes
}

// NewFaulty wraps inner with no faults armed.
func NewFaulty(inner Store) *Faulty {
	return &Faulty{
		inner:    inner,
		failPuts: make(map[string]bool),
		failGets: make(map[string]bool),
		putsLeft: -1,
		corrupt:  make(map[string]bool),
	}
}

// FailPut arms a failure for every Put of key.
func (f *Faulty) FailPut(key string) {
	f.mu.Lock()
	f.failPuts[key] = true
	f.mu.Unlock()
}

// FailGet arms a failure for every Get/GetRange of key.
func (f *Faulty) FailGet(key string) {
	f.mu.Lock()
	f.failGets[key] = true
	f.mu.Unlock()
}

// FailPutsAfter lets n more Puts succeed, then fails every subsequent Put
// (simulating the node losing its OSS connection mid-backup).
func (f *Faulty) FailPutsAfter(n int) {
	f.mu.Lock()
	f.putsLeft = n
	f.mu.Unlock()
}

// CorruptReads makes reads of key return bit-flipped data (for integrity
// verification tests).
func (f *Faulty) CorruptReads(key string) {
	f.mu.Lock()
	f.corrupt[key] = true
	f.mu.Unlock()
}

// SetRand injects the RNG that drives the probabilistic modes. Pass a
// seeded *rand.Rand for reproducible fault schedules; the rates default to
// a fixed seed otherwise.
func (f *Faulty) SetRand(r *rand.Rand) {
	f.mu.Lock()
	f.rng = r
	f.mu.Unlock()
}

// FailRate arms probabilistic failures: each Put/Get/GetRange fails with
// probability p (0 disarms).
func (f *Faulty) FailRate(p float64) {
	f.mu.Lock()
	f.failRate = p
	f.mu.Unlock()
}

// CorruptRate arms probabilistic read corruption: each Get/GetRange
// returns flipped bytes with probability p (0 disarms).
func (f *Faulty) CorruptRate(p float64) {
	f.mu.Lock()
	f.corruptRate = p
	f.mu.Unlock()
}

// roll returns true with probability p. Caller holds f.mu.
func (f *Faulty) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(1))
	}
	return f.rng.Float64() < p
}

// Clear disarms every fault, including the probabilistic rates.
func (f *Faulty) Clear() {
	f.mu.Lock()
	f.failPuts = make(map[string]bool)
	f.failGets = make(map[string]bool)
	f.corrupt = make(map[string]bool)
	f.putsLeft = -1
	f.failRate = 0
	f.corruptRate = 0
	f.mu.Unlock()
}

// Ops returns the number of operations observed.
func (f *Faulty) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opCount
}

func (f *Faulty) putAllowed(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opCount++
	if f.failPuts[key] {
		return fmt.Errorf("%w: put %s", ErrInjected, key)
	}
	if f.putsLeft == 0 {
		return fmt.Errorf("%w: put budget exhausted at %s", ErrInjected, key)
	}
	if f.putsLeft > 0 {
		f.putsLeft--
	}
	if f.roll(f.failRate) {
		return fmt.Errorf("%w: put %s (probabilistic)", ErrInjected, key)
	}
	return nil
}

func (f *Faulty) getCheck(key string) (corrupt bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opCount++
	if f.failGets[key] {
		return false, fmt.Errorf("%w: get %s", ErrInjected, key)
	}
	if f.roll(f.failRate) {
		return false, fmt.Errorf("%w: get %s (probabilistic)", ErrInjected, key)
	}
	return f.corrupt[key] || f.roll(f.corruptRate), nil
}

// Put implements Store.
func (f *Faulty) Put(key string, data []byte) error {
	if err := f.putAllowed(key); err != nil {
		return err
	}
	return f.inner.Put(key, data)
}

// Get implements Store.
func (f *Faulty) Get(key string) ([]byte, error) {
	corrupt, err := f.getCheck(key)
	if err != nil {
		return nil, err
	}
	b, err := f.inner.Get(key)
	if err == nil && corrupt && len(b) > 0 {
		b[len(b)/2] ^= 0xFF
	}
	return b, err
}

// GetRange implements Store.
func (f *Faulty) GetRange(key string, off, n int64) ([]byte, error) {
	corrupt, err := f.getCheck(key)
	if err != nil {
		return nil, err
	}
	b, err := f.inner.GetRange(key, off, n)
	if err == nil && corrupt && len(b) > 0 {
		b[len(b)/2] ^= 0xFF
	}
	return b, err
}

// Head implements Store.
func (f *Faulty) Head(key string) (int64, error) {
	if _, err := f.getCheck(key); err != nil {
		return 0, err
	}
	return f.inner.Head(key)
}

// Delete implements Store.
func (f *Faulty) Delete(key string) error {
	f.mu.Lock()
	f.opCount++
	f.mu.Unlock()
	return f.inner.Delete(key)
}

// List implements Store.
func (f *Faulty) List(prefix string) ([]string, error) {
	f.mu.Lock()
	f.opCount++
	f.mu.Unlock()
	return f.inner.List(prefix)
}
