package oss

import (
	"fmt"

	"slimstore/internal/simclock"
)

// Backend couples one fault-isolated simulated OSS backend with its fault
// injection surface and cost model. The erasure-coded redundancy tier
// (internal/ec) writes one shard of every stripe to each backend; chaos
// schedules reach the Faulty to take a whole backend down or rot shards.
type Backend struct {
	// Name identifies the backend in errors and stats ("b0", "b1", …).
	Name string
	// Store is the backend's I/O surface: a Faulty wrapper over a
	// Prefixed view of the base store, so faults are injected per
	// backend while all backends persist in one physical store.
	Store Store
	// Faulty is the injection surface behind Store.
	Faulty *Faulty
	// Costs is the backend's own latency/bandwidth model, letting
	// experiments mix fast and slow fault domains.
	Costs simclock.Costs
}

// BackendPrefix returns the key namespace of backend i on the shared base
// store ("ec/b<i>/").
func BackendPrefix(i int) string { return fmt.Sprintf("ec/b%d/", i) }

// NewBackendSet carves n fault-isolated backends out of one base store,
// backend i living under BackendPrefix(i) with its own Faulty injector.
// costs[i] overrides backend i's cost model; missing or zero entries fall
// back to def. Keeping all backends on one base store preserves the chaos
// harness's crash/reboot semantics: reopening the repo over the same base
// store resurrects every backend with faults cleared.
func NewBackendSet(base Store, n int, def simclock.Costs, costs []simclock.Costs) []*Backend {
	set := make([]*Backend, n)
	for i := 0; i < n; i++ {
		c := def
		if i < len(costs) && costs[i] != (simclock.Costs{}) {
			c = costs[i]
		}
		f := NewFaulty(NewPrefixed(base, BackendPrefix(i)))
		set[i] = &Backend{
			Name:   fmt.Sprintf("b%d", i),
			Store:  f,
			Faulty: f,
			Costs:  c,
		}
	}
	return set
}
