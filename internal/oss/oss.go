// Package oss simulates the cloud Object Storage Service that SLIMSTORE's
// storage layer resides on (paper §III-B): containers, recipes, indexes and
// the LSM store all persist through this package.
//
// The deduplication and restore algorithms only observe OSS through three
// properties — per-request latency, per-channel bandwidth, and request
// counts — so the simulation models exactly those, via the Metered wrapper
// charging a simclock.Account. Backends: an in-memory map (tests,
// experiments), an on-disk directory (durable local runs), and an HTTP
// client speaking to the S3-like server in this package (multi-process
// runs).
package oss

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"slimstore/internal/simclock"
)

// ErrNotFound is returned when a key does not exist.
var ErrNotFound = errors.New("oss: key not found")

// Store is the object-store abstraction. Keys are slash-separated paths.
// Implementations must be safe for concurrent use.
type Store interface {
	// Put stores an object, replacing any existing value. Implementations
	// must not retain data after Put returns (copy it, write it out, or
	// send it) — callers recycle upload buffers, e.g. the container pack
	// stage pools sealed payloads. slimlint enforces this on every
	// implementation in the module.
	//
	//slimlint:contract noretain data
	Put(key string, data []byte) error
	// Get retrieves a whole object. The returned slice must not be
	// modified by the caller if the implementation shares memory.
	Get(key string) ([]byte, error)
	// GetRange retrieves n bytes at offset off. n < 0 means to the end.
	GetRange(key string, off, n int64) ([]byte, error)
	// Head returns the object size without reading data.
	Head(key string) (int64, error)
	// Delete removes an object. Deleting a missing key is not an error.
	Delete(key string) error
	// List returns keys with the given prefix in lexicographic order.
	List(prefix string) ([]string, error)
}

// Mem is an in-memory Store.
type Mem struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{m: make(map[string][]byte)} }

// Put implements Store.
func (s *Mem) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *Mem) Get(key string) ([]byte, error) {
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// GetRange implements Store.
func (s *Mem) GetRange(key string, off, n int64) ([]byte, error) {
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if off < 0 || off > int64(len(v)) {
		return nil, fmt.Errorf("oss: range [%d,+%d) out of bounds for %s (size %d)", off, n, key, len(v))
	}
	end := int64(len(v))
	if n >= 0 && off+n < end {
		end = off + n
	}
	cp := make([]byte, end-off)
	copy(cp, v[off:end])
	return cp, nil
}

// Head implements Store.
func (s *Mem) Head(key string) (int64, error) {
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return int64(len(v)), nil
}

// Delete implements Store.
func (s *Mem) Delete(key string) error {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}

// List implements Store.
func (s *Mem) List(prefix string) ([]string, error) {
	s.mu.RLock()
	out := make([]string, 0, 16)
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// TotalBytes returns the sum of object sizes; used by space-cost
// experiments (Fig 9, Fig 10c).
func (s *Mem) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var t int64
	for _, v := range s.m {
		t += int64(len(v))
	}
	return t
}

// BytesWithPrefix returns the total size of objects under a prefix.
func (s *Mem) BytesWithPrefix(prefix string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var t int64
	for k, v := range s.m {
		if strings.HasPrefix(k, prefix) {
			t += int64(len(v))
		}
	}
	return t
}

// Len returns the number of stored objects.
func (s *Mem) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Metered wraps a Store and charges every operation to a simclock.Account
// under a cost model. All SLIMSTORE components access OSS through a Metered
// store so experiments can attribute I/O time and bytes.
type Metered struct {
	inner Store
	costs simclock.Costs
	acct  *simclock.Account
}

// NewMetered wraps inner; acct may be nil to disable accounting.
func NewMetered(inner Store, costs simclock.Costs, acct *simclock.Account) *Metered {
	return &Metered{inner: inner, costs: costs, acct: acct}
}

// Inner returns the wrapped store.
func (s *Metered) Inner() Store { return s.inner }

// Account returns the account being charged.
func (s *Metered) Account() *simclock.Account { return s.acct }

// WithAccount returns a view of the same underlying store charging a
// different account. Jobs running in parallel on separate L-nodes use
// separate accounts over one shared store.
func (s *Metered) WithAccount(acct *simclock.Account) *Metered {
	return &Metered{inner: s.inner, costs: s.costs, acct: acct}
}

// Put implements Store.
func (s *Metered) Put(key string, data []byte) error {
	if s.acct != nil {
		s.acct.ChargeWrite(s.costs, int64(len(data)))
	}
	return s.inner.Put(key, data)
}

// Get implements Store.
func (s *Metered) Get(key string) ([]byte, error) {
	v, err := s.inner.Get(key)
	if err == nil && s.acct != nil {
		s.acct.ChargeRead(s.costs, int64(len(v)))
	}
	return v, err
}

// GetRange implements Store.
func (s *Metered) GetRange(key string, off, n int64) ([]byte, error) {
	v, err := s.inner.GetRange(key, off, n)
	if err == nil && s.acct != nil {
		s.acct.ChargeRead(s.costs, int64(len(v)))
	}
	return v, err
}

// Head implements Store.
func (s *Metered) Head(key string) (int64, error) {
	n, err := s.inner.Head(key)
	if err == nil && s.acct != nil {
		s.acct.ChargeRead(s.costs, 0)
	}
	return n, err
}

// Delete implements Store.
func (s *Metered) Delete(key string) error {
	if s.acct != nil {
		s.acct.ChargeWrite(s.costs, 0)
	}
	return s.inner.Delete(key)
}

// List implements Store.
func (s *Metered) List(prefix string) ([]string, error) {
	keys, err := s.inner.List(prefix)
	if err == nil && s.acct != nil {
		s.acct.ChargeRead(s.costs, 0)
	}
	return keys, err
}
