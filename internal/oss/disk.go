package oss

import (
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is a Store backed by a local directory. Object keys map to files;
// key path segments are percent-free hex-escaped where needed so arbitrary
// keys are safe on any filesystem.
type Disk struct {
	root string
	mu   sync.RWMutex // serialises multi-step operations (put = write+rename)
}

// NewDisk returns a store rooted at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("oss: create root: %w", err)
	}
	return &Disk{root: dir}, nil
}

// escapeSeg makes one key segment filesystem-safe.
func escapeSeg(seg string) string {
	safe := true
	for i := 0; i < len(seg); i++ {
		c := seg[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' {
			continue
		}
		safe = false
		break
	}
	if safe && seg != "" && seg != "." && seg != ".." && !strings.HasPrefix(seg, "=") {
		return seg
	}
	return "=" + hex.EncodeToString([]byte(seg))
}

func unescapeSeg(seg string) string {
	if !strings.HasPrefix(seg, "=") {
		return seg
	}
	b, err := hex.DecodeString(seg[1:])
	if err != nil {
		return seg
	}
	return string(b)
}

func (s *Disk) path(key string) string {
	segs := strings.Split(key, "/")
	for i, seg := range segs {
		segs[i] = escapeSeg(seg)
	}
	return filepath.Join(append([]string{s.root}, segs...)...)
}

// Put implements Store. Writes are atomic via temp file + rename.
func (s *Disk) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("oss: put %s: %w", key, err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("oss: put %s: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("oss: put %s: %w", key, err)
	}
	return nil
}

// Get implements Store.
func (s *Disk) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("oss: get %s: %w", key, err)
	}
	return b, nil
}

// GetRange implements Store.
func (s *Disk) GetRange(key string, off, n int64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := os.Open(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return nil, fmt.Errorf("oss: get range %s: %w", key, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("oss: get range %s: %w", key, err)
	}
	size := st.Size()
	if off < 0 || off > size {
		return nil, fmt.Errorf("oss: range [%d,+%d) out of bounds for %s (size %d)", off, n, key, size)
	}
	end := size
	if n >= 0 && off+n < end {
		end = off + n
	}
	buf := make([]byte, end-off)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("oss: get range %s: %w", key, err)
	}
	return buf, nil
}

// Head implements Store.
func (s *Disk) Head(key string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, err := os.Stat(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return 0, fmt.Errorf("oss: head %s: %w", key, err)
	}
	return st.Size(), nil
}

// Delete implements Store.
func (s *Disk) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("oss: delete %s: %w", key, err)
	}
	return nil
}

// List implements Store.
func (s *Disk) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	err := filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if strings.HasSuffix(p, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		segs := strings.Split(filepath.ToSlash(rel), "/")
		for i, seg := range segs {
			segs[i] = unescapeSeg(seg)
		}
		key := strings.Join(segs, "/")
		if strings.HasPrefix(key, prefix) {
			out = append(out, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("oss: list %q: %w", prefix, err)
	}
	sort.Strings(out)
	return out, nil
}
