package oss

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxBackoff caps the exponential backoff delay so long retry
// chains degrade to steady polling instead of unbounded sleeps.
const DefaultMaxBackoff = 10 * time.Second

// Retry wraps a Store with bounded retries and capped, fully-jittered
// exponential backoff for transient failures — production resilience for
// the HTTP backend, whose requests can fail on network blips. Permanent
// errors (not-found, HTTP 4xx) never retry; 5xx and network errors do.
//
// The sleeper is injectable so tests (and the virtual-time harness) avoid
// real sleeping.
type Retry struct {
	inner    Store
	attempts int
	base     time.Duration
	maxDelay time.Duration
	sleep    func(time.Duration)
	ctx      context.Context // nil = never cancelled
	jit      *jitterSource   // shared across WithContext copies

	// IsTransient classifies retryable errors; the default treats
	// ErrNotFound and HTTP client errors (4xx except 429) as permanent and
	// retries everything else (5xx, network failures).
	IsTransient func(error) bool
}

// jitterSource lives behind a pointer so WithContext can copy a Retry by
// value without copying the mutex.
type jitterSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// retrySeq hands each Retry instance a distinct jitter seed. A process
// counter instead of the wall clock keeps charged paths deterministic
// (same construction order → same jitter sequence) while still
// de-synchronising concurrent retriers within the process; callers that
// want different cross-process spreading inject their own via SetRand.
var retrySeq atomic.Int64

// NewRetry wraps inner with `attempts` total tries (minimum 1) and
// exponential backoff starting at base, capped at DefaultMaxBackoff.
// sleep may be nil for time.Sleep.
func NewRetry(inner Store, attempts int, base time.Duration, sleep func(time.Duration)) *Retry {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	return &Retry{
		inner:       inner,
		attempts:    attempts,
		base:        base,
		maxDelay:    DefaultMaxBackoff,
		sleep:       sleep,
		jit:         &jitterSource{rng: rand.New(rand.NewSource(retrySeq.Add(1)))},
		IsTransient: IsTransient,
	}
}

// WithContext returns a view of r whose retry loop stops as soon as ctx
// is cancelled — checked before every attempt, not only inside the
// backoff sleep, so cancellation still lands when the injected sleeper is
// a no-op (simclock/virtual-time harnesses). The copy shares the inner
// store and jitter state with r.
func (r *Retry) WithContext(ctx context.Context) *Retry {
	c := *r
	c.ctx = ctx
	return &c
}

// SetMaxBackoff overrides the backoff cap.
func (r *Retry) SetMaxBackoff(d time.Duration) {
	if d > 0 {
		r.maxDelay = d
	}
}

// SetRand injects a deterministic jitter source (tests).
func (r *Retry) SetRand(rng *rand.Rand) {
	r.jit.mu.Lock()
	r.jit.rng = rng
	r.jit.mu.Unlock()
}

// IsTransient is the default error classifier: not-found and HTTP 4xx
// responses (except 429 Too Many Requests) are permanent — retrying a bad
// request only repeats it — while 5xx and network-level errors retry.
func IsTransient(err error) bool {
	if errors.Is(err, ErrNotFound) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500 || se.Code == 429
	}
	return true
}

// jitter picks a uniform delay in [0, d] — "full jitter", which spreads
// concurrent retriers instead of synchronising them into waves.
func (r *Retry) jitter(d time.Duration) time.Duration {
	r.jit.mu.Lock()
	defer r.jit.mu.Unlock()
	if d <= 0 {
		return 0
	}
	return time.Duration(r.jit.rng.Int63n(int64(d) + 1))
}

// do runs op with retries.
func (r *Retry) do(what string, op func() error) error {
	delay := r.base
	var err error
	for i := 0; i < r.attempts; i++ {
		// Check cancellation at the top of every attempt: with a no-op
		// injected sleeper (virtual time) the backoff never blocks, so
		// this is the only place a cancelled ctx can stop the loop.
		if r.ctx != nil {
			if cerr := r.ctx.Err(); cerr != nil {
				if err != nil {
					return fmt.Errorf("oss: %s cancelled after %d attempts (last error: %v): %w", what, i, err, cerr)
				}
				return fmt.Errorf("oss: %s: %w", what, cerr)
			}
		}
		if err = op(); err == nil {
			return nil
		}
		if !r.IsTransient(err) {
			return err // permanent (e.g. not found, 4xx): caller sees it as-is
		}
		if i == r.attempts-1 {
			break
		}
		r.sleep(r.jitter(delay))
		delay *= 2
		if delay > r.maxDelay {
			delay = r.maxDelay
		}
	}
	return fmt.Errorf("oss: %s failed after %d attempts: %w", what, r.attempts, err)
}

// Put implements Store.
func (r *Retry) Put(key string, data []byte) error {
	return r.do("put "+key, func() error { return r.inner.Put(key, data) })
}

// Get implements Store.
func (r *Retry) Get(key string) (b []byte, err error) {
	err = r.do("get "+key, func() error {
		b, err = r.inner.Get(key)
		return err
	})
	return b, err
}

// GetRange implements Store.
func (r *Retry) GetRange(key string, off, n int64) (b []byte, err error) {
	err = r.do("get range "+key, func() error {
		b, err = r.inner.GetRange(key, off, n)
		return err
	})
	return b, err
}

// Head implements Store.
func (r *Retry) Head(key string) (n int64, err error) {
	err = r.do("head "+key, func() error {
		n, err = r.inner.Head(key)
		return err
	})
	return n, err
}

// Delete implements Store.
func (r *Retry) Delete(key string) error {
	return r.do("delete "+key, func() error { return r.inner.Delete(key) })
}

// List implements Store.
func (r *Retry) List(prefix string) (keys []string, err error) {
	err = r.do("list "+prefix, func() error {
		keys, err = r.inner.List(prefix)
		return err
	})
	return keys, err
}
