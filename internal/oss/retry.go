package oss

import (
	"errors"
	"fmt"
	"time"
)

// Retry wraps a Store with bounded retries and exponential backoff for
// transient failures — production resilience for the HTTP backend, whose
// requests can fail on network blips. Not-found errors never retry.
//
// The sleeper is injectable so tests (and the virtual-time harness) avoid
// real sleeping.
type Retry struct {
	inner    Store
	attempts int
	base     time.Duration
	sleep    func(time.Duration)

	// IsTransient classifies retryable errors; the default retries
	// everything except ErrNotFound.
	IsTransient func(error) bool
}

// NewRetry wraps inner with `attempts` total tries (minimum 1) and
// exponential backoff starting at base. sleep may be nil for time.Sleep.
func NewRetry(inner Store, attempts int, base time.Duration, sleep func(time.Duration)) *Retry {
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	return &Retry{
		inner:    inner,
		attempts: attempts,
		base:     base,
		sleep:    sleep,
		IsTransient: func(err error) bool {
			return !errors.Is(err, ErrNotFound)
		},
	}
}

// do runs op with retries.
func (r *Retry) do(what string, op func() error) error {
	delay := r.base
	var err error
	for i := 0; i < r.attempts; i++ {
		if err = op(); err == nil {
			return nil
		}
		if !r.IsTransient(err) {
			return err // permanent (e.g. not found): caller sees it as-is
		}
		if i == r.attempts-1 {
			break
		}
		r.sleep(delay)
		delay *= 2
	}
	return fmt.Errorf("oss: %s failed after %d attempts: %w", what, r.attempts, err)
}

// Put implements Store.
func (r *Retry) Put(key string, data []byte) error {
	return r.do("put "+key, func() error { return r.inner.Put(key, data) })
}

// Get implements Store.
func (r *Retry) Get(key string) (b []byte, err error) {
	err = r.do("get "+key, func() error {
		b, err = r.inner.Get(key)
		return err
	})
	return b, err
}

// GetRange implements Store.
func (r *Retry) GetRange(key string, off, n int64) (b []byte, err error) {
	err = r.do("get range "+key, func() error {
		b, err = r.inner.GetRange(key, off, n)
		return err
	})
	return b, err
}

// Head implements Store.
func (r *Retry) Head(key string) (n int64, err error) {
	err = r.do("head "+key, func() error {
		n, err = r.inner.Head(key)
		return err
	})
	return n, err
}

// Delete implements Store.
func (r *Retry) Delete(key string) error {
	return r.do("delete "+key, func() error { return r.inner.Delete(key) })
}

// List implements Store.
func (r *Retry) List(prefix string) (keys []string, err error) {
	err = r.do("list "+prefix, func() error {
		keys, err = r.inner.List(prefix)
		return err
	})
	return keys, err
}
