package oss

import "time"

// Latency wraps a Store, sleeping PerOp of real wall-clock time before
// every request. Unlike the Metered wrapper — which charges *virtual*
// time to a simclock account — Latency makes OSS round-trips cost actual
// elapsed time, so wall-clock benchmarks of concurrent code observe the
// overlap that parallel request channels buy: N goroutines sleeping on
// timers progress together even on a single CPU, exactly like N in-flight
// HTTP requests. Used by the gmaint experiment to measure G-node fan-out.
type Latency struct {
	S     Store
	PerOp time.Duration
}

func (l *Latency) wait() {
	if l.PerOp > 0 {
		time.Sleep(l.PerOp)
	}
}

// Put implements Store.
func (l *Latency) Put(key string, data []byte) error {
	l.wait()
	return l.S.Put(key, data)
}

// Get implements Store.
func (l *Latency) Get(key string) ([]byte, error) {
	l.wait()
	return l.S.Get(key)
}

// GetRange implements Store.
func (l *Latency) GetRange(key string, off, n int64) ([]byte, error) {
	l.wait()
	return l.S.GetRange(key, off, n)
}

// Head implements Store.
func (l *Latency) Head(key string) (int64, error) {
	l.wait()
	return l.S.Head(key)
}

// Delete implements Store.
func (l *Latency) Delete(key string) error {
	l.wait()
	return l.S.Delete(key)
}

// List implements Store.
func (l *Latency) List(prefix string) ([]string, error) {
	l.wait()
	return l.S.List(prefix)
}
