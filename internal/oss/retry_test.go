package oss

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// flaky fails the first n calls of each operation, then succeeds.
type flaky struct {
	Store
	failures int32
}

func (f *flaky) Get(key string) ([]byte, error) {
	if atomic.AddInt32(&f.failures, -1) >= 0 {
		return nil, errors.New("transient blip")
	}
	return f.Store.Get(key)
}

func (f *flaky) Put(key string, data []byte) error {
	if atomic.AddInt32(&f.failures, -1) >= 0 {
		return errors.New("transient blip")
	}
	return f.Store.Put(key, data)
}

func TestRetryRecoversTransient(t *testing.T) {
	mem := NewMem()
	mem.Put("k", []byte("v"))
	var slept []time.Duration
	r := NewRetry(&flaky{Store: mem, failures: 2}, 4, 10*time.Millisecond,
		func(d time.Duration) { slept = append(slept, d) })
	r.SetRand(rand.New(rand.NewSource(7)))
	got, err := r.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Two failures → two sleeps, each fully jittered within the
	// exponential envelope.
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v", slept)
	}
	if slept[0] > 10*time.Millisecond || slept[1] > 20*time.Millisecond {
		t.Fatalf("sleeps exceed backoff envelope: %v", slept)
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	mem := NewMem()
	var slept []time.Duration
	r := NewRetry(&flaky{Store: mem, failures: 100}, 10, 100*time.Millisecond,
		func(d time.Duration) { slept = append(slept, d) })
	r.SetMaxBackoff(300 * time.Millisecond)
	r.SetRand(rand.New(rand.NewSource(7)))
	r.Put("k", []byte("v")) // exhausts
	if len(slept) != 9 {
		t.Fatalf("slept %d times, want 9", len(slept))
	}
	for i, d := range slept {
		if d > 300*time.Millisecond {
			t.Fatalf("sleep %d = %v exceeds the cap", i, d)
		}
	}
}

func TestRetryClassifiesHTTPStatus(t *testing.T) {
	cases := []struct {
		err       error
		transient bool
	}{
		{&StatusError{Op: "put", Key: "k", Code: 500}, true},
		{&StatusError{Op: "put", Key: "k", Code: 503}, true},
		{&StatusError{Op: "put", Key: "k", Code: 429}, true},
		{&StatusError{Op: "put", Key: "k", Code: 400}, false},
		{&StatusError{Op: "put", Key: "k", Code: 403}, false},
		{&StatusError{Op: "put", Key: "k", Code: 413}, false},
		{ErrNotFound, false},
		{errors.New("connection reset"), true},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.transient {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.transient)
		}
	}
}

// A 4xx from the server must surface immediately instead of burning the
// retry budget.
func TestRetryDoesNotRetryPermanentStatus(t *testing.T) {
	calls := 0
	bad := &storeFunc{inner: NewMem(), onGet: func() { calls++ }}
	r := NewRetry(&statusFailing{Store: bad, code: 403}, 5, time.Millisecond, func(time.Duration) {})
	_, err := r.Get("k")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 403 {
		t.Fatalf("err = %v, want StatusError 403", err)
	}
	if calls != 1 {
		t.Fatalf("permanent status retried %d times", calls)
	}
}

// statusFailing responds to every Get with an HTTP status error after
// delegating the call count.
type statusFailing struct {
	Store
	code int
}

func (s *statusFailing) Get(key string) ([]byte, error) {
	s.Store.Get(key)
	return nil, &StatusError{Op: "get", Key: key, Code: s.code}
}

func TestRetryExhausts(t *testing.T) {
	mem := NewMem()
	r := NewRetry(&flaky{Store: mem, failures: 100}, 3, time.Millisecond, func(time.Duration) {})
	if err := r.Put("k", []byte("v")); err == nil {
		t.Fatal("exhausted retries did not error")
	}
}

func TestRetryNotFoundIsPermanent(t *testing.T) {
	calls := 0
	mem := NewMem()
	counting := storeFunc{inner: mem, onGet: func() { calls++ }}
	r := NewRetry(&counting, 5, time.Millisecond, func(time.Duration) {})
	_, err := r.Get("missing")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if calls != 1 {
		t.Fatalf("not-found retried %d times", calls)
	}
}

// A cancelled context must stop the retry loop immediately even when the
// injected sleeper never blocks (virtual-time harnesses), instead of
// burning the whole attempt budget against a store that keeps failing.
func TestRetryStopsOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	// Pre-cancelled ctx: the store must never be called at all.
	calls := 0
	counting := &storeFunc{inner: NewMem(), onGet: func() { calls++ }}
	r := NewRetry(counting, 5, time.Millisecond, func(time.Duration) {}).WithContext(ctx)
	if _, err := r.Get("k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("cancelled retry still called the store %d times", calls)
	}

	// Cancelled mid-chain: one attempt runs, then the loop stops with the
	// transient error preserved in the message and Canceled in the chain.
	ctx2, cancel2 := context.WithCancel(context.Background())
	attempts := int32(0)
	failing := &flaky{Store: NewMem(), failures: 100}
	r2 := NewRetry(failing, 10, time.Millisecond, func(time.Duration) {
		atomic.AddInt32(&attempts, 1)
		cancel2()
	}).WithContext(ctx2)
	if err := r2.Put("k", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&attempts); got != 1 {
		t.Fatalf("retry slept %d times after cancellation, want 1", got)
	}
}

// WithContext must be a cheap view: the parent keeps working, shares
// jitter state, and stays usable concurrently.
func TestRetryWithContextLeavesParentUsable(t *testing.T) {
	mem := NewMem()
	mem.Put("k", []byte("v"))
	r := NewRetry(mem, 3, time.Millisecond, func(time.Duration) {})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.WithContext(ctx).Get("k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("scoped view err = %v, want context.Canceled", err)
	}
	if got, err := r.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("parent Get = %q, %v after scoped cancellation", got, err)
	}
}

func TestRetryPassthrough(t *testing.T) {
	r := NewRetry(NewMem(), 2, time.Millisecond, func(time.Duration) {})
	storeUnderTest(t, r)
}

// storeFunc counts Get calls.
type storeFunc struct {
	inner Store
	onGet func()
}

func (s *storeFunc) Put(key string, data []byte) error { return s.inner.Put(key, data) }
func (s *storeFunc) Get(key string) ([]byte, error) {
	s.onGet()
	return s.inner.Get(key)
}
func (s *storeFunc) GetRange(key string, off, n int64) ([]byte, error) {
	return s.inner.GetRange(key, off, n)
}
func (s *storeFunc) Head(key string) (int64, error)       { return s.inner.Head(key) }
func (s *storeFunc) Delete(key string) error              { return s.inner.Delete(key) }
func (s *storeFunc) List(prefix string) ([]string, error) { return s.inner.List(prefix) }

func TestFaultyBasics(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem)
	if err := f.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	f.FailPut("b")
	if err := f.Put("b", []byte("2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed put = %v", err)
	}
	f.FailGet("a")
	if _, err := f.Get("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed get = %v", err)
	}
	f.Clear()
	if _, err := f.Get("a"); err != nil {
		t.Fatalf("cleared get = %v", err)
	}
	f.CorruptReads("a")
	got, err := f.Get("a")
	if err != nil || string(got) == "1" {
		t.Fatalf("corrupted read = %q, %v", got, err)
	}
	if f.Ops() == 0 {
		t.Fatal("ops not counted")
	}
}
