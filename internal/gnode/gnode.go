// Package gnode implements SLIMSTORE's offline space-management node
// (paper §V-B, §VI): global reverse deduplication against the exact
// fingerprint index, sparse container compaction (SCC), and version
// collection. All G-node work runs in the background, independent of the
// online deduplicate/restore path, and is deliberately biased toward new
// versions: storage reorganisation only ever deletes or moves data that
// old versions reference, never disturbing the newest version's layout.
package gnode

import (
	"fmt"
	"sort"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/recipe"
	"slimstore/internal/simclock"
)

// GNode runs offline space-management jobs against a shared Repo.
type GNode struct {
	repo *core.Repo
	acct *simclock.Account
}

// New returns a G-node. Its I/O is charged to an internal account
// (offline work: never part of online job throughput).
func New(repo *core.Repo) *GNode {
	return &GNode{repo: repo, acct: simclock.NewAccount()}
}

// Account exposes the G-node's resource account (for experiments that
// report offline costs).
func (g *GNode) Account() *simclock.Account { return g.acct }

func (g *GNode) containers() *container.Store { return g.repo.ContainersFor(g.acct) }
func (g *GNode) recipes() *recipe.Store       { return g.repo.RecipesFor(g.acct) }

// ---------------------------------------------------------------------------
// Global reverse deduplication (§VI-A).

// ReverseDedupStats reports one reverse-deduplication pass.
type ReverseDedupStats struct {
	ContainersScanned   int
	ChunksScanned       int
	BloomSkips          int64 // unique chunks filtered without an index read
	DuplicatesRemoved   int   // old copies marked deleted
	BytesDeduplicated   int64 // payload bytes of removed old copies
	IndexInserts        int   // first-copy registrations
	ContainersRewritten int   // old containers physically compacted
	BytesReclaimed      int64 // physical bytes freed by rewrites
}

// ReverseDedup filters the chunks of newly written containers through the
// global index. A chunk already stored in an *older* container is an exact
// duplicate the L-node missed: the old copy is marked deleted (preserving
// the new version's layout) and the global index is repointed at the new
// container. Old containers whose stale proportion crosses the configured
// threshold are physically rewritten.
func (g *GNode) ReverseDedup(newContainers []container.ID) (*ReverseDedupStats, error) {
	stats := &ReverseDedupStats{}
	cs := g.containers()
	gi := g.repo.Global

	dirtyMeta := make(map[container.ID]*container.Meta)
	before := gi.Stats().BloomSkips

	for _, id := range newContainers {
		m, err := cs.ReadMeta(id)
		if err != nil {
			return nil, fmt.Errorf("gnode: reverse dedup: %w", err)
		}
		stats.ContainersScanned++
		for i := range m.Chunks {
			cm := &m.Chunks[i]
			if cm.Deleted {
				continue
			}
			stats.ChunksScanned++
			oldID, found, err := gi.Get(cm.FP)
			if err != nil {
				return nil, err
			}
			switch {
			case !found:
				// First copy anywhere: register it.
				if err := gi.Put(cm.FP, id); err != nil {
					return nil, err
				}
				stats.IndexInserts++
			case oldID == id:
				// Already registered to this container (idempotent rerun).
			default:
				// Exact duplicate. Reverse rule: delete the OLD copy, keep
				// the new version's layout intact.
				om := dirtyMeta[oldID]
				if om == nil {
					om, err = cs.ReadMeta(oldID)
					if err != nil {
						return nil, err
					}
					cp := *om
					cp.Chunks = append([]container.ChunkMeta(nil), om.Chunks...)
					om = &cp
					dirtyMeta[oldID] = om
				}
				if ocm := om.Find(cm.FP); ocm != nil && !ocm.Deleted {
					ocm.Deleted = true
					stats.DuplicatesRemoved++
					stats.BytesDeduplicated += int64(ocm.Size)
				}
				if err := gi.Put(cm.FP, id); err != nil {
					return nil, err
				}
			}
		}
	}
	stats.BloomSkips = gi.Stats().BloomSkips - before

	// Persist metadata marks; rewrite containers past the threshold.
	ids := make([]container.ID, 0, len(dirtyMeta))
	for id := range dirtyMeta {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		m := dirtyMeta[id]
		if err := cs.WriteMeta(m); err != nil {
			return nil, err
		}
		if m.StaleProportion() > g.repo.Config.RewriteStaleThreshold {
			freed, err := g.rewriteContainer(cs, m)
			if err != nil {
				return nil, err
			}
			stats.ContainersRewritten++
			stats.BytesReclaimed += freed
		}
	}
	return stats, nil
}

// rewriteContainer physically removes deleted chunks from a container,
// keeping its ID (recipes referencing surviving chunks stay valid).
func (g *GNode) rewriteContainer(cs *container.Store, m *container.Meta) (int64, error) {
	c, err := cs.Read(m.ID)
	if err != nil {
		return 0, fmt.Errorf("gnode: rewrite %s: %w", m.ID, err)
	}
	// Use the freshest metadata (m) rather than what Read returned: m may
	// carry marks not yet visible through the cache.
	nc := &container.Container{Meta: container.Meta{ID: m.ID}}
	for i := range m.Chunks {
		cm := &m.Chunks[i]
		if cm.Deleted {
			continue
		}
		data := c.Data[cm.Offset : int64(cm.Offset)+int64(cm.Size)]
		nc.Meta.Chunks = append(nc.Meta.Chunks, container.ChunkMeta{
			FP:     cm.FP,
			Offset: uint32(len(nc.Data)),
			Size:   cm.Size,
		})
		nc.Data = append(nc.Data, data...)
	}
	nc.Meta.DataSize = uint32(len(nc.Data))
	freed := int64(len(c.Data)) - int64(len(nc.Data))
	if err := cs.Write(nc); err != nil {
		return 0, err
	}
	return freed, nil
}

// ---------------------------------------------------------------------------
// Sparse container compaction (§V-B).

// SCCStats reports one compaction pass.
type SCCStats struct {
	SparseContainers int
	ChunksMoved      int
	BytesMoved       int64
	NewContainers    []container.ID
}

// CompactSparse merges the chunks that (fileID, version) references out of
// its sparse containers into fresh, dense containers, updates the
// version's recipe in place, repoints the global index, and associates the
// drained sparse containers with the version as garbage. The benefit
// applies to the *current* version immediately (unlike HAR, which rewrites
// during the next backup).
func (g *GNode) CompactSparse(fileID string, version int, sparse []container.ID) (*SCCStats, error) {
	stats := &SCCStats{SparseContainers: len(sparse)}
	if len(sparse) == 0 {
		return stats, nil
	}
	cs := g.containers()
	rs := g.recipes()

	sparseSet := make(map[container.ID]bool, len(sparse))
	for _, id := range sparse {
		sparseSet[id] = true
	}

	r, err := rs.GetRecipe(fileID, version)
	if err != nil {
		return nil, fmt.Errorf("gnode: scc: %w", err)
	}

	// Collect the fingerprints this version needs from each sparse
	// container, in recipe order for locality of the new layout.
	needed := make(map[container.ID][]fingerprint.FP)
	seen := make(map[fingerprint.FP]bool)
	r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
		if sparseSet[rec.Container] && !seen[rec.FP] {
			seen[rec.FP] = true
			needed[rec.Container] = append(needed[rec.Container], rec.FP)
		}
		return true
	})

	// Copy the needed chunks into new containers and mark the originals
	// deleted (their bytes move to the new version's storage).
	builder := container.NewBuilder(cs)
	moved := make(map[fingerprint.FP]container.ID)
	newSet := make(map[container.ID]bool)
	for _, id := range sparse {
		fps := needed[id]
		if len(fps) == 0 {
			continue
		}
		c, err := cs.Read(id)
		if err != nil {
			return nil, fmt.Errorf("gnode: scc read %s: %w", id, err)
		}
		meta := c.Meta
		metaDirty := false
		for _, fp := range fps {
			cm := meta.Find(fp)
			if cm == nil || cm.Deleted {
				continue // already moved by an earlier pass
			}
			data, err := c.ChunkData(cm)
			if err != nil {
				return nil, err
			}
			nid, err := builder.Add(fp, data)
			if err != nil {
				return nil, err
			}
			moved[fp] = nid
			newSet[nid] = true
			cm.Deleted = true
			metaDirty = true
			stats.ChunksMoved++
			stats.BytesMoved += int64(cm.Size)
		}
		if metaDirty {
			if err := cs.WriteMeta(&meta); err != nil {
				return nil, err
			}
			// The moved bytes are dead weight in the sparse container;
			// rewrite it physically once past the stale threshold so the
			// paper's Fig 9 property holds: compaction shrinks the storage
			// attributable to old versions rather than growing totals.
			if meta.StaleProportion() > g.repo.Config.RewriteStaleThreshold {
				if _, err := g.rewriteContainer(cs, &meta); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := builder.Flush(); err != nil {
		return nil, err
	}
	if len(moved) == 0 {
		return stats, nil
	}

	// Repoint the global index before the recipe so no window exists where
	// a redirect would fail.
	for fp, nid := range moved {
		if err := g.repo.Global.Put(fp, nid); err != nil {
			return nil, err
		}
	}

	// Update the recipe in place: the restore of this version no longer
	// touches the sparse containers.
	r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
		if nid, ok := moved[rec.FP]; ok {
			rec.Container = nid
		}
		return true
	})
	if _, err := rs.PutRecipe(r); err != nil {
		return nil, err
	}

	// Refresh the catalog: container list changes, and the drained sparse
	// containers become garbage associated with this version (§VI-B).
	info, err := rs.GetInfo(fileID, version)
	if err != nil {
		return nil, err
	}
	refs := make(map[container.ID]bool)
	r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
		refs[rec.Container] = true
		return true
	})
	info.Containers = info.Containers[:0]
	for id := range refs {
		info.Containers = append(info.Containers, id)
	}
	sort.Slice(info.Containers, func(a, b int) bool { return info.Containers[a] < info.Containers[b] })
	garbage := make(map[container.ID]bool, len(info.Garbage))
	for _, id := range info.Garbage {
		garbage[id] = true
	}
	for _, id := range sparse {
		if !garbage[id] {
			info.Garbage = append(info.Garbage, id)
		}
	}
	if err := rs.PutInfo(info); err != nil {
		return nil, err
	}
	for id := range newSet {
		stats.NewContainers = append(stats.NewContainers, id)
	}
	sort.Slice(stats.NewContainers, func(a, b int) bool { return stats.NewContainers[a] < stats.NewContainers[b] })
	return stats, nil
}

// ---------------------------------------------------------------------------
// Version collection (§VI-B).

// GCStats reports one version deletion.
type GCStats struct {
	GarbageCandidates   int
	ContainersCollected int
	BytesReclaimed      int64
	IndexEntriesRemoved int
}

// DeleteVersion removes a backup version. The mark phase already ran
// during backup (garbage containers are associated with the version);
// here only the sweep runs: candidates still referenced by any live
// version are kept, the rest are deleted along with their index entries.
//
// Versions should be deleted oldest-first (the retention-window pattern
// the paper assumes); the sweep re-validates references against the live
// catalog, so out-of-order deletion degrades to keeping extra data, never
// to losing referenced data.
func (g *GNode) DeleteVersion(fileID string, version int) (*GCStats, error) {
	stats := &GCStats{}
	cs := g.containers()
	rs := g.recipes()

	info, err := rs.GetInfo(fileID, version)
	if err != nil {
		return nil, fmt.Errorf("gnode: delete version: %w", err)
	}
	stats.GarbageCandidates = len(info.Garbage)

	// Remove the version's metadata first so the reference scan below
	// sees only live versions.
	if err := rs.DeleteRecipe(fileID, version); err != nil {
		return nil, err
	}
	if err := rs.DeleteInfo(fileID, version); err != nil {
		return nil, err
	}
	if err := g.repo.SimIndex.Remove(fileID, version); err != nil {
		return nil, err
	}

	if len(info.Garbage) == 0 {
		return stats, nil
	}
	live, err := g.liveContainerRefs(rs)
	if err != nil {
		return nil, err
	}
	for _, id := range info.Garbage {
		if live[id] {
			continue // still referenced (e.g. out-of-order deletion)
		}
		reclaimed, removed, err := g.dropContainer(cs, id)
		if err != nil {
			return nil, err
		}
		stats.ContainersCollected++
		stats.BytesReclaimed += reclaimed
		stats.IndexEntriesRemoved += removed
	}
	return stats, nil
}

// liveContainerRefs scans the catalog for every container referenced by a
// live version.
func (g *GNode) liveContainerRefs(rs *recipe.Store) (map[container.ID]bool, error) {
	live := make(map[container.ID]bool)
	files, err := rs.Files()
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		versions, err := rs.Versions(f)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			info, err := rs.GetInfo(f, v)
			if err != nil {
				return nil, err
			}
			for _, id := range info.Containers {
				live[id] = true
			}
		}
	}
	return live, nil
}

// dropContainer deletes a container and its global-index entries.
func (g *GNode) dropContainer(cs *container.Store, id container.ID) (int64, int, error) {
	m, err := cs.ReadMeta(id)
	if err != nil {
		// Already gone (e.g. swept via another version's garbage list).
		return 0, 0, nil
	}
	removed := 0
	for i := range m.Chunks {
		cm := &m.Chunks[i]
		cur, found, err := g.repo.Global.Get(cm.FP)
		if err != nil {
			return 0, 0, err
		}
		if found && cur == id {
			if err := g.repo.Global.Delete(cm.FP); err != nil {
				return 0, 0, err
			}
			removed++
		}
	}
	reclaimed := int64(m.DataSize) + int64(len(container.EncodeMeta(m)))
	if err := cs.Delete(id); err != nil {
		return 0, 0, err
	}
	return reclaimed, removed, nil
}

// ---------------------------------------------------------------------------

// AuditStats reports a full mark-and-sweep audit.
type AuditStats struct {
	ContainersMarked int
	ContainersSwept  int
	BytesReclaimed   int64
}

// FullSweep is the classic mark-and-sweep fallback (§II): it marks every
// container reachable from any live recipe — resolving reverse-dedup and
// SCC redirects through the global index — and deletes the rest. It is an
// audit/repair tool; normal operation uses the per-version garbage lists.
func (g *GNode) FullSweep() (*AuditStats, error) {
	cs := g.containers()
	rs := g.recipes()
	marked := make(map[container.ID]bool)

	files, err := rs.Files()
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		versions, err := rs.Versions(f)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			r, err := rs.GetRecipe(f, v)
			if err != nil {
				return nil, err
			}
			var iterErr error
			r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
				id := rec.Container
				m, err := cs.ReadMeta(id)
				if err == nil {
					if cm := m.Find(rec.FP); cm != nil && !cm.Deleted {
						marked[id] = true
						return true
					}
				}
				// Redirected chunk: mark the relocation target.
				nid, ok, err := g.repo.Global.Get(rec.FP)
				if err != nil {
					iterErr = err
					return false
				}
				if ok {
					marked[nid] = true
				}
				return true
			})
			if iterErr != nil {
				return nil, iterErr
			}
		}
	}

	all, err := cs.List()
	if err != nil {
		return nil, err
	}
	stats := &AuditStats{ContainersMarked: len(marked)}
	for _, id := range all {
		if marked[id] {
			continue
		}
		reclaimed, _, err := g.dropContainer(cs, id)
		if err != nil {
			return nil, err
		}
		stats.ContainersSwept++
		stats.BytesReclaimed += reclaimed
	}
	return stats, nil
}
