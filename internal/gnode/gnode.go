// Package gnode implements SLIMSTORE's offline space-management node
// (paper §V-B, §VI): global reverse deduplication against the exact
// fingerprint index, sparse container compaction (SCC), and version
// collection. All G-node work runs in the background, independent of the
// online deduplicate/restore path, and is deliberately biased toward new
// versions: storage reorganisation only ever deletes or moves data that
// old versions reference, never disturbing the newest version's layout.
package gnode

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/journal"
	"slimstore/internal/oss"
	"slimstore/internal/recipe"
	"slimstore/internal/simclock"
)

// GNode runs offline space-management jobs against a shared Repo.
//
// maintMu serialises the maintenance entrypoints (reverse dedup, SCC,
// version collection, full sweep, scrub) against each other — the paper's
// deployment has exactly one G-node (§III-B), so offline jobs are
// sequential by design, and serialising them keeps their read-modify-write
// cycles over container metadata trivially safe. Online L-node traffic is
// NOT behind this mutex; it synchronises with maintenance through the
// file and container locks (core.FileLocks / core.ContainerLocks).
// maintMu is the top of the lock order: it is taken before any file or
// container lock and never the other way around.
type GNode struct {
	repo    *core.Repo
	acct    *simclock.Account
	maintMu sync.Mutex
}

// New returns a G-node. Its I/O is charged to an internal account
// (offline work: never part of online job throughput).
func New(repo *core.Repo) *GNode {
	return &GNode{repo: repo, acct: simclock.NewAccount()}
}

// Account exposes the G-node's resource account (for experiments that
// report offline costs).
func (g *GNode) Account() *simclock.Account { return g.acct }

func (g *GNode) containers() *container.Store { return g.repo.ContainersFor(g.acct) }
func (g *GNode) recipes() *recipe.Store       { return g.repo.RecipesFor(g.acct) }

// ---------------------------------------------------------------------------
// Global reverse deduplication (§VI-A).

// ReverseDedupStats reports one reverse-deduplication pass.
type ReverseDedupStats struct {
	ContainersScanned   int
	ChunksScanned       int
	BloomSkips          int64 // unique chunks filtered without an index read
	DuplicatesRemoved   int   // old copies marked deleted
	BytesDeduplicated   int64 // payload bytes of removed old copies
	IndexInserts        int   // first-copy registrations
	ContainersRewritten int   // old containers physically compacted
	BytesReclaimed      int64 // physical bytes freed by rewrites
}

// ReverseDedup filters the chunks of newly written containers through the
// global index. A chunk already stored in an *older* container is an exact
// duplicate the L-node missed: the old copy is marked deleted (preserving
// the new version's layout) and the global index is repointed at the new
// container. Old containers whose stale proportion crosses the configured
// threshold are physically rewritten.
func (g *GNode) ReverseDedup(newContainers []container.ID) (*ReverseDedupStats, error) {
	g.maintMu.Lock()
	defer g.maintMu.Unlock()

	stats := &ReverseDedupStats{}
	cs := g.containers()
	gi := g.repo.Global

	dirtyMeta := make(map[container.ID]*container.Meta)
	before := gi.Stats().BloomSkips

	for _, id := range newContainers {
		m, err := cs.ReadMeta(id)
		if err != nil {
			// The list is advisory (captured at backup time); a container
			// scrub-quarantined or swept since then simply has nothing left
			// to deduplicate.
			if errors.Is(err, oss.ErrNotFound) {
				continue
			}
			return nil, fmt.Errorf("gnode: reverse dedup: %w", err)
		}
		stats.ContainersScanned++
		for i := range m.Chunks {
			cm := &m.Chunks[i]
			if cm.Deleted {
				continue
			}
			stats.ChunksScanned++
			oldID, found, err := gi.Get(cm.FP)
			if err != nil {
				return nil, err
			}
			switch {
			case !found:
				// First copy anywhere: register it.
				if err := gi.Put(cm.FP, id); err != nil {
					return nil, err
				}
				stats.IndexInserts++
			case oldID == id:
				// Already registered to this container (idempotent rerun).
			default:
				// Exact duplicate. Reverse rule: delete the OLD copy, keep
				// the new version's layout intact.
				om := dirtyMeta[oldID]
				if om == nil {
					om, err = cs.ReadMeta(oldID)
					if err != nil {
						return nil, err
					}
					cp := *om
					cp.Chunks = append([]container.ChunkMeta(nil), om.Chunks...)
					om = &cp
					dirtyMeta[oldID] = om
				}
				if ocm := om.Find(cm.FP); ocm != nil && !ocm.Deleted {
					ocm.Deleted = true
					stats.DuplicatesRemoved++
					stats.BytesDeduplicated += int64(ocm.Size)
				}
				if err := gi.Put(cm.FP, id); err != nil {
					return nil, err
				}
			}
		}
	}
	stats.BloomSkips = gi.Stats().BloomSkips - before

	// Make the repoints durable before any physical rewrite: a rewrite
	// destroys the old copies, and if a crash lost the buffered index
	// mutations, restores redirecting through the index would dangle.
	if err := gi.Flush(); err != nil {
		return nil, err
	}

	// Persist metadata marks; rewrite containers past the threshold.
	ids := make([]container.ID, 0, len(dirtyMeta))
	for id := range dirtyMeta {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		m := dirtyMeta[id]
		if err := cs.WriteMeta(m); err != nil {
			return nil, err
		}
		if m.StaleProportion() > g.repo.Config.RewriteStaleThreshold {
			freed, err := g.repo.RewriteContainer(cs, m)
			if err != nil {
				return nil, err
			}
			stats.ContainersRewritten++
			stats.BytesReclaimed += freed
		}
	}
	return stats, nil
}

// ---------------------------------------------------------------------------
// Sparse container compaction (§V-B).

// SCCStats reports one compaction pass.
type SCCStats struct {
	SparseContainers int
	ChunksMoved      int
	BytesMoved       int64
	NewContainers    []container.ID
}

// CompactSparse merges the chunks that (fileID, version) references out of
// its sparse containers into fresh, dense containers, updates the
// version's recipe in place, repoints the global index, and associates the
// drained sparse containers with the version as garbage. The benefit
// applies to the *current* version immediately (unlike HAR, which rewrites
// during the next backup).
func (g *GNode) CompactSparse(fileID string, version int, sparse []container.ID) (*SCCStats, error) {
	stats := &SCCStats{SparseContainers: len(sparse)}
	if len(sparse) == 0 {
		return stats, nil
	}
	g.maintMu.Lock()
	defer g.maintMu.Unlock()
	// SCC rewrites the version's recipe in place; exclusive vs backups and
	// restores of the file.
	g.repo.Files.Lock(fileID)
	defer g.repo.Files.Unlock(fileID)

	cs := g.containers()
	rs := g.recipes()

	sparseSet := make(map[container.ID]bool, len(sparse))
	for _, id := range sparse {
		sparseSet[id] = true
	}

	r, err := rs.GetRecipe(fileID, version)
	if err != nil {
		// Compaction requests are advisory; the version may have been
		// deleted since the backup that queued it.
		if errors.Is(err, oss.ErrNotFound) {
			return stats, nil
		}
		return nil, fmt.Errorf("gnode: scc: %w", err)
	}

	// Collect the fingerprints this version needs from each sparse
	// container, in recipe order for locality of the new layout.
	needed := make(map[container.ID][]fingerprint.FP)
	seen := make(map[fingerprint.FP]bool)
	r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
		if sparseSet[rec.Container] && !seen[rec.FP] {
			seen[rec.FP] = true
			needed[rec.Container] = append(needed[rec.Container], rec.FP)
		}
		return true
	})

	// Prepare: copy the needed chunks into fresh containers. The sources
	// stay untouched and nothing references the copies yet, so a crash
	// here leaks only unreferenced containers — FullSweep reclaims them.
	// The verified Read aborts on corrupt sources rather than laundering
	// bad bytes into freshly checksummed containers.
	builder := container.NewBuilder(cs)
	moved := make(map[fingerprint.FP]container.ID)
	newSet := make(map[container.ID]bool)
	for _, id := range sparse {
		fps := needed[id]
		if len(fps) == 0 {
			continue
		}
		c, err := cs.Read(id)
		if err != nil {
			// A quarantined or already-collected source has no chunks to
			// move; corrupt sources still abort loudly (no laundering).
			if errors.Is(err, oss.ErrNotFound) {
				continue
			}
			return nil, fmt.Errorf("gnode: scc read %s: %w", id, err)
		}
		for _, fp := range fps {
			cm := c.Meta.Find(fp)
			if cm == nil || cm.Deleted {
				continue // already moved by an earlier pass
			}
			data, err := c.ChunkData(cm)
			if err != nil {
				return nil, err
			}
			nid, err := builder.Add(fp, data)
			if err != nil {
				return nil, err
			}
			moved[fp] = nid
			newSet[nid] = true
			stats.ChunksMoved++
			stats.BytesMoved += int64(cm.Size)
		}
	}
	if err := builder.Flush(); err != nil {
		return nil, err
	}
	if len(moved) == 0 {
		return stats, nil
	}
	for id := range newSet {
		stats.NewContainers = append(stats.NewContainers, id)
	}
	sort.Slice(stats.NewContainers, func(a, b int) bool { return stats.NewContainers[a] < stats.NewContainers[b] })

	// Commit: one journal put is the atomic transition point. Before it,
	// the compaction never happened; after it, replay completes it.
	rec := &journal.Record{
		Kind:    journal.KindSCC,
		FileID:  fileID,
		Version: version,
		Sparse:  journal.RawIDs(sparse),
		New:     journal.RawIDs(stats.NewContainers),
	}
	rec.SetMoved(moved)
	key, err := g.repo.Journal.Commit(rec)
	if err != nil {
		return nil, err
	}

	// Apply: repoint index, rewrite recipe and catalog, mark the sources'
	// moved chunks deleted — all idempotent (shared with journal replay).
	if err := g.repo.ApplySCC(rec, cs, rs); err != nil {
		return nil, err
	}
	if err := g.repo.Journal.Remove(key); err != nil {
		return nil, err
	}

	// The moved bytes are dead weight in the sparse containers; rewrite
	// any past the stale threshold so the paper's Fig 9 property holds:
	// compaction shrinks the storage attributable to old versions rather
	// than growing totals. Each rewrite journals independently.
	for _, id := range sparse {
		m, err := cs.ReadMeta(id)
		if err != nil {
			continue // e.g. already swept
		}
		if m.StaleProportion() > g.repo.Config.RewriteStaleThreshold {
			if _, err := g.repo.RewriteContainer(cs, m); err != nil {
				return nil, err
			}
		}
	}
	return stats, nil
}

// ---------------------------------------------------------------------------
// Version collection (§VI-B).

// GCStats reports one version deletion.
type GCStats struct {
	GarbageCandidates   int
	ContainersCollected int
	BytesReclaimed      int64
	IndexEntriesRemoved int
}

// DeleteVersion removes a backup version. The mark phase already ran
// during backup (garbage containers are associated with the version);
// here only the sweep runs: candidates still referenced by any live
// version are kept, the rest are deleted along with their index entries.
//
// Versions should be deleted oldest-first (the retention-window pattern
// the paper assumes); the sweep re-validates references against the live
// catalog, so out-of-order deletion degrades to keeping extra data, never
// to losing referenced data.
func (g *GNode) DeleteVersion(fileID string, version int) (*GCStats, error) {
	g.maintMu.Lock()
	defer g.maintMu.Unlock()
	g.repo.Files.Lock(fileID)
	defer g.repo.Files.Unlock(fileID)

	stats := &GCStats{}
	cs := g.containers()
	rs := g.recipes()

	info, err := rs.GetInfo(fileID, version)
	if err != nil {
		return nil, fmt.Errorf("gnode: delete version: %w", err)
	}
	stats.GarbageCandidates = len(info.Garbage)

	// Commit the intent (the catalog entry holding the garbage list is
	// about to be deleted; the journal record preserves it so a crashed
	// sweep can resume), then apply and clear the record.
	rec := &journal.Record{
		Kind:    journal.KindGC,
		FileID:  fileID,
		Version: version,
		Garbage: journal.RawIDs(info.Garbage),
	}
	key, err := g.repo.Journal.Commit(rec)
	if err != nil {
		return nil, err
	}
	applied, err := g.repo.ApplyGC(rec, cs, rs)
	if err != nil {
		return nil, err
	}
	if err := g.repo.Journal.Remove(key); err != nil {
		return nil, err
	}
	stats.ContainersCollected = applied.ContainersCollected
	stats.BytesReclaimed = applied.BytesReclaimed
	stats.IndexEntriesRemoved = applied.IndexEntriesRemoved
	return stats, nil
}

// ---------------------------------------------------------------------------

// AuditStats reports a full mark-and-sweep audit.
type AuditStats struct {
	ContainersMarked int
	ContainersSwept  int
	BytesReclaimed   int64
	// JournalReplayed counts half-committed journal records rolled
	// forward before the sweep.
	JournalReplayed int
}

// FullSweep is the classic mark-and-sweep fallback (§II): it first rolls
// forward any half-committed journal records left by a crashed peer, then
// marks every container reachable from any live recipe — resolving
// reverse-dedup and SCC redirects through the global index — and deletes
// the rest (including containers a crash stranded before their operation
// committed). It is an audit/repair tool; normal operation uses the
// per-version garbage lists.
func (g *GNode) FullSweep() (*AuditStats, error) {
	g.maintMu.Lock()
	defer g.maintMu.Unlock()
	// Stop the world: a container an in-flight backup has uploaded is
	// unreachable until its recipe lands, and the sweep would reclaim it.
	release := g.repo.Files.LockAll()
	defer release()

	replayed, err := g.repo.ReplayJournal()
	if err != nil {
		return nil, fmt.Errorf("gnode: full sweep: %w", err)
	}
	cs := g.containers()
	rs := g.recipes()
	marked := make(map[container.ID]bool)

	files, err := rs.Files()
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		versions, err := rs.Versions(f)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			r, err := rs.GetRecipe(f, v)
			if err != nil {
				return nil, err
			}
			var iterErr error
			r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
				id := rec.Container
				m, err := cs.ReadMeta(id)
				if err == nil {
					if cm := m.Find(rec.FP); cm != nil && !cm.Deleted {
						marked[id] = true
						return true
					}
				}
				// Redirected chunk: mark the relocation target.
				nid, ok, err := g.repo.Global.Get(rec.FP)
				if err != nil {
					iterErr = err
					return false
				}
				if ok {
					marked[nid] = true
				}
				return true
			})
			if iterErr != nil {
				return nil, iterErr
			}
		}
	}

	all, err := cs.List()
	if err != nil {
		return nil, err
	}
	stats := &AuditStats{ContainersMarked: len(marked), JournalReplayed: replayed}
	for _, id := range all {
		if marked[id] {
			continue
		}
		reclaimed, _, err := g.repo.DropContainer(cs, id)
		if err != nil {
			return nil, err
		}
		stats.ContainersSwept++
		stats.BytesReclaimed += reclaimed
	}
	return stats, nil
}
