// Package gnode implements SLIMSTORE's offline space-management node
// (paper §V-B, §VI): global reverse deduplication against the exact
// fingerprint index, sparse container compaction (SCC), and version
// collection. All G-node work runs in the background, independent of the
// online deduplicate/restore path, and is deliberately biased toward new
// versions: storage reorganisation only ever deletes or moves data that
// old versions reference, never disturbing the newest version's layout.
package gnode

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/globalindex"
	"slimstore/internal/journal"
	"slimstore/internal/oss"
	"slimstore/internal/recipe"
	"slimstore/internal/simclock"
)

// GNode runs offline space-management jobs against a shared Repo.
//
// maintMu serialises the decide/commit step of every maintenance job
// (reverse dedup, SCC, version collection, full sweep, scrub) — the
// paper's deployment has exactly one G-node (§III-B), so offline commits
// are sequential by design, and serialising them keeps their
// read-modify-write cycles over container metadata trivially safe. The
// read-heavy phases (container scans, index probes, scrub verification)
// run OUTSIDE the mutex across a bounded worker pool, validated by the
// repo's maintenance epoch before their results are committed
// (DESIGN.md §8). Online L-node traffic is NOT behind this mutex; it
// synchronises with maintenance through the file and container locks
// (core.FileLocks / core.ContainerLocks). maintMu remains the top of the
// lock order: it is taken before any file or container lock and never
// the other way around.
type GNode struct {
	repo    *core.Repo
	acct    *simclock.Account
	maintMu sync.Mutex
}

// New returns a G-node. Its I/O is charged to an internal account
// (offline work: never part of online job throughput).
func New(repo *core.Repo) *GNode {
	return &GNode{repo: repo, acct: simclock.NewAccount()}
}

// Account exposes the G-node's resource account (for experiments that
// report offline costs).
func (g *GNode) Account() *simclock.Account { return g.acct }

func (g *GNode) containers() *container.Store { return g.repo.ContainersFor(g.acct) }
func (g *GNode) recipes() *recipe.Store       { return g.repo.RecipesFor(g.acct) }

// ---------------------------------------------------------------------------
// Global reverse deduplication (§VI-A).

// ReverseDedupStats reports one reverse-deduplication pass.
type ReverseDedupStats struct {
	ContainersScanned   int
	ChunksScanned       int
	BloomSkips          int64 // unique chunks filtered without an index read
	DuplicatesRemoved   int   // old copies marked deleted
	BytesDeduplicated   int64 // payload bytes of removed old copies
	IndexInserts        int   // first-copy registrations
	ContainersRewritten int   // old containers physically compacted
	BytesReclaimed      int64 // physical bytes freed by rewrites
}

// ReverseDedup filters the chunks of newly written containers through the
// global index. A chunk already stored in an *older* container is an exact
// duplicate the L-node missed: the old copy is marked deleted (preserving
// the new version's layout) and the global index is repointed at the new
// container. Old containers whose stale proportion crosses the configured
// threshold are physically rewritten.
//
// The pass is a fan-out/fan-in pipeline (DESIGN.md §8): container scans,
// index probes, and old-home prefetches run OUTSIDE maintMu across the
// maintenance worker pool at a sampled maintenance epoch; the
// decide/commit step then takes maintMu, validates the epoch, and merges
// the probe results deterministically (sorted container order, chunk
// order within) into one group-committed index batch. Physical rewrites
// run after the commit, outside maintMu, under the container stripe
// locks. Results are bit-identical at any worker width.
func (g *GNode) ReverseDedup(newContainers []container.ID) (*ReverseDedupStats, error) {
	// Canonicalise the work list: the decide phase follows sorted unique
	// container order, so the outcome is independent of list order and of
	// how the scan fan-out interleaves.
	ids := append([]container.ID(nil), newContainers...)
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	ids = uniqueIDs(ids)
	cs := g.containers()

	// Bounded optimism: scan and probe without the lock, then validate
	// that no maintenance commit invalidated what we read. Under a storm
	// of concurrent maintenance, fall back to scanning under the lock.
	const maxOptimistic = 3
	for attempt := 0; ; attempt++ {
		locked := attempt >= maxOptimistic
		if locked {
			g.maintMu.Lock()
		}
		epoch := g.repo.MaintEpoch()
		prep, err := g.rdPrepare(cs, ids)
		if err != nil {
			if locked {
				g.maintMu.Unlock()
			}
			return nil, fmt.Errorf("gnode: reverse dedup: %w", err)
		}
		if !locked {
			g.maintMu.Lock()
			if g.repo.MaintEpoch() != epoch {
				g.maintMu.Unlock()
				continue // a maintenance commit raced the scan; redo it
			}
		}
		stats, rewrites, err := g.rdCommit(cs, ids, prep)
		g.maintMu.Unlock()
		if err != nil {
			return nil, err
		}
		if err := g.rdRewrite(cs, stats, rewrites); err != nil {
			return nil, err
		}
		return stats, nil
	}
}

// rdPrep carries the read-only phase of a reverse-dedup pass: container
// scans, batched index probe results, and prefetched old-home metadata.
type rdPrep struct {
	scans   []*container.Meta // per ids[i]; nil → container gone (advisory list)
	scanned map[container.ID]*container.Meta

	probeFPs []fingerprint.FP // unique live fingerprints, first-encounter order
	probeID  map[fingerprint.FP]container.ID
	skips    int

	olds   map[container.ID]*container.Meta // old homes the decide phase may mark
	oldErr map[container.ID]error
}

// rdPrepare runs every read of a reverse-dedup pass across the worker
// pool: parallel meta scans of the new containers, one batched global
// index probe over the unique live fingerprints, then parallel meta
// prefetches of the old homes those probes point at.
func (g *GNode) rdPrepare(cs *container.Store, ids []container.ID) (*rdPrep, error) {
	p := &rdPrep{
		scans:   make([]*container.Meta, len(ids)),
		scanned: make(map[container.ID]*container.Meta, len(ids)),
	}
	err := g.forEach(len(ids), func(i int) error {
		m, err := cs.ReadMeta(ids[i])
		if err != nil {
			// The list is advisory (captured at backup time); a container
			// scrub-quarantined or swept since then simply has nothing left
			// to deduplicate.
			if errors.Is(err, oss.ErrNotFound) {
				return nil
			}
			return err
		}
		p.scans[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		if p.scans[i] != nil {
			p.scanned[id] = p.scans[i]
		}
	}

	// One probe per distinct live fingerprint; in-pass duplicates are
	// resolved by the decide phase's overlay, exactly as the serial loop's
	// later Gets would observe its earlier Puts.
	seen := make(map[fingerprint.FP]bool)
	for _, m := range p.scans {
		if m == nil {
			continue
		}
		for i := range m.Chunks {
			if cm := &m.Chunks[i]; !cm.Deleted && !seen[cm.FP] {
				seen[cm.FP] = true
				p.probeFPs = append(p.probeFPs, cm.FP)
			}
		}
	}
	gids, found, skips, err := g.repo.Global.GetBatch(p.probeFPs)
	if err != nil {
		return nil, err
	}
	p.skips = skips
	p.probeID = make(map[fingerprint.FP]container.ID)
	for i, fp := range p.probeFPs {
		if found[i] {
			p.probeID[fp] = gids[i]
		}
	}

	// Prefetch the metadata of old homes outside the lock; the decide
	// phase only copies them. Errors are recorded, not raised — a probe
	// hit may be stale, and staleness is the epoch check's call to make.
	var oldIDs []container.ID
	seenOld := make(map[container.ID]bool)
	for _, fp := range p.probeFPs {
		oid, ok := p.probeID[fp]
		if !ok || seenOld[oid] {
			continue
		}
		seenOld[oid] = true
		if _, isNew := p.scanned[oid]; !isNew {
			oldIDs = append(oldIDs, oid)
		}
	}
	p.olds = make(map[container.ID]*container.Meta, len(oldIDs))
	p.oldErr = make(map[container.ID]error)
	var mu sync.Mutex
	err = g.forEach(len(oldIDs), func(i int) error {
		m, err := cs.ReadMeta(oldIDs[i])
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			p.oldErr[oldIDs[i]] = err
		} else {
			p.olds[oldIDs[i]] = m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// rdCommit is the single-threaded decide/commit step, run under maintMu
// over a validated prepare: it replays the serial algorithm over the
// batched probe results (an overlay map supplies Get-sees-own-Puts
// semantics), group-commits the index mutations, flushes them durable,
// persists the metadata marks, and bumps the maintenance epoch. It
// returns the metas whose stale proportion now warrants a rewrite; the
// rewrites themselves run after maintMu is released.
func (g *GNode) rdCommit(cs *container.Store, ids []container.ID, p *rdPrep) (*ReverseDedupStats, []*container.Meta, error) {
	stats := &ReverseDedupStats{BloomSkips: int64(p.skips)}
	gi := g.repo.Global

	dirty := make(map[container.ID]*container.Meta)
	getDirty := func(id container.ID) (*container.Meta, error) {
		if m := dirty[id]; m != nil {
			return m, nil
		}
		src := p.scanned[id]
		if src == nil {
			if err := p.oldErr[id]; err != nil {
				return nil, err
			}
			src = p.olds[id]
		}
		if src == nil {
			// Not prefetched (a probe target surfaced by the overlay);
			// read it here, under the lock.
			m, err := cs.ReadMeta(id)
			if err != nil {
				return nil, err
			}
			src = m
		}
		cp := *src
		cp.Chunks = append([]container.ChunkMeta(nil), src.Chunks...)
		dirty[id] = &cp
		return &cp, nil
	}

	// overlay carries this pass's own repoints so later chunks observe
	// earlier decisions, exactly like the serial loop's index writes.
	overlay := make(map[fingerprint.FP]container.ID)
	var batch []globalindex.Entry
	for i, id := range ids {
		m := p.scans[i]
		if m == nil {
			continue
		}
		stats.ContainersScanned++
		for j := range m.Chunks {
			cm := &m.Chunks[j]
			if cm.Deleted {
				continue
			}
			stats.ChunksScanned++
			oldID, found := overlay[cm.FP]
			if !found {
				oldID, found = p.probeID[cm.FP]
			}
			switch {
			case !found:
				// First copy anywhere: register it.
				batch = append(batch, globalindex.Entry{FP: cm.FP, ID: id})
				overlay[cm.FP] = id
				stats.IndexInserts++
			case oldID == id:
				// Already registered to this container (idempotent rerun).
			default:
				// Exact duplicate. Reverse rule: delete the OLD copy, keep
				// the new version's layout intact.
				om, err := getDirty(oldID)
				if err != nil {
					return nil, nil, err
				}
				if ocm := om.Find(cm.FP); ocm != nil && !ocm.Deleted {
					ocm.Deleted = true
					stats.DuplicatesRemoved++
					stats.BytesDeduplicated += int64(ocm.Size)
				}
				batch = append(batch, globalindex.Entry{FP: cm.FP, ID: id})
				overlay[cm.FP] = id
			}
		}
	}

	if err := gi.PutBatch(batch); err != nil {
		return nil, nil, err
	}
	// Make the repoints durable before any metadata mark or physical
	// rewrite: a rewrite destroys the old copies, and if a crash lost the
	// buffered index mutations, restores redirecting through the index
	// would dangle.
	if err := gi.Flush(); err != nil {
		return nil, nil, err
	}

	// Persist metadata marks (fan-out: distinct containers, no ordering
	// dependency between them).
	dids := make([]container.ID, 0, len(dirty))
	for id := range dirty {
		dids = append(dids, id)
	}
	sort.Slice(dids, func(a, b int) bool { return dids[a] < dids[b] })
	if err := g.forEach(len(dids), func(i int) error {
		return cs.WriteMeta(dirty[dids[i]])
	}); err != nil {
		return nil, nil, err
	}
	if len(batch) > 0 || len(dids) > 0 {
		g.repo.BumpMaintEpoch()
	}

	var rewrites []*container.Meta
	for _, id := range dids {
		if m := dirty[id]; m.StaleProportion() > g.repo.Config.RewriteStaleThreshold {
			rewrites = append(rewrites, m)
		}
	}
	return stats, rewrites, nil
}

// rdRewrite physically compacts the containers the commit step marked
// past the stale threshold. It runs outside maintMu — each rewrite is
// individually journaled and serialised by its container stripe lock, so
// concurrent maintenance stays correct; a container swept concurrently
// just loses its compaction opportunity (tolerated NotFound).
func (g *GNode) rdRewrite(cs *container.Store, stats *ReverseDedupStats, rewrites []*container.Meta) error {
	if len(rewrites) == 0 {
		return nil
	}
	var mu sync.Mutex
	return g.forEach(len(rewrites), func(i int) error {
		freed, err := g.repo.RewriteContainer(cs, rewrites[i])
		if err != nil {
			if errors.Is(err, oss.ErrNotFound) {
				return nil
			}
			return err
		}
		mu.Lock()
		stats.ContainersRewritten++
		stats.BytesReclaimed += freed
		mu.Unlock()
		return nil
	})
}

// uniqueIDs collapses adjacent duplicates in a sorted ID slice.
func uniqueIDs(ids []container.ID) []container.ID {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Sparse container compaction (§V-B).

// SCCStats reports one compaction pass.
type SCCStats struct {
	SparseContainers int
	ChunksMoved      int
	BytesMoved       int64
	NewContainers    []container.ID
}

// CompactSparse merges the chunks that (fileID, version) references out of
// its sparse containers into fresh, dense containers, updates the
// version's recipe in place, repoints the global index, and associates the
// drained sparse containers with the version as garbage. The benefit
// applies to the *current* version immediately (unlike HAR, which rewrites
// during the next backup).
func (g *GNode) CompactSparse(fileID string, version int, sparse []container.ID) (*SCCStats, error) {
	stats := &SCCStats{SparseContainers: len(sparse)}
	if len(sparse) == 0 {
		return stats, nil
	}
	g.maintMu.Lock()
	defer g.maintMu.Unlock()
	// SCC rewrites the version's recipe in place; exclusive vs backups and
	// restores of the file.
	g.repo.Files.Lock(fileID)
	defer g.repo.Files.Unlock(fileID)

	cs := g.containers()
	rs := g.recipes()

	sparseSet := make(map[container.ID]bool, len(sparse))
	for _, id := range sparse {
		sparseSet[id] = true
	}

	r, err := rs.GetRecipe(fileID, version)
	if err != nil {
		// Compaction requests are advisory; the version may have been
		// deleted since the backup that queued it.
		if errors.Is(err, oss.ErrNotFound) {
			return stats, nil
		}
		return nil, fmt.Errorf("gnode: scc: %w", err)
	}

	// Collect the fingerprints this version needs from each sparse
	// container, in recipe order for locality of the new layout.
	needed := make(map[container.ID][]fingerprint.FP)
	seen := make(map[fingerprint.FP]bool)
	r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
		if sparseSet[rec.Container] && !seen[rec.FP] {
			seen[rec.FP] = true
			needed[rec.Container] = append(needed[rec.Container], rec.FP)
		}
		return true
	})

	// Prepare: copy the needed chunks into fresh containers. The sources
	// stay untouched and nothing references the copies yet, so a crash
	// here leaks only unreferenced containers — FullSweep reclaims them.
	// The verified Read aborts on corrupt sources rather than laundering
	// bad bytes into freshly checksummed containers.
	builder := container.NewBuilder(cs)
	moved := make(map[fingerprint.FP]container.ID)
	newSet := make(map[container.ID]bool)
	for _, id := range sparse {
		fps := needed[id]
		if len(fps) == 0 {
			continue
		}
		c, err := cs.Read(id)
		if err != nil {
			// A quarantined or already-collected source has no chunks to
			// move; corrupt sources still abort loudly (no laundering).
			if errors.Is(err, oss.ErrNotFound) {
				continue
			}
			return nil, fmt.Errorf("gnode: scc read %s: %w", id, err)
		}
		for _, fp := range fps {
			cm := c.Meta.Find(fp)
			if cm == nil || cm.Deleted {
				continue // already moved by an earlier pass
			}
			data, err := c.ChunkData(cm)
			if err != nil {
				return nil, err
			}
			nid, err := builder.Add(fp, data)
			if err != nil {
				return nil, err
			}
			moved[fp] = nid
			newSet[nid] = true
			stats.ChunksMoved++
			stats.BytesMoved += int64(cm.Size)
		}
	}
	if err := builder.Flush(); err != nil {
		return nil, err
	}
	if len(moved) == 0 {
		return stats, nil
	}
	for id := range newSet {
		stats.NewContainers = append(stats.NewContainers, id)
	}
	sort.Slice(stats.NewContainers, func(a, b int) bool { return stats.NewContainers[a] < stats.NewContainers[b] })

	// Commit: one journal put is the atomic transition point. Before it,
	// the compaction never happened; after it, replay completes it.
	rec := &journal.Record{
		Kind:    journal.KindSCC,
		FileID:  fileID,
		Version: version,
		Sparse:  journal.RawIDs(sparse),
		New:     journal.RawIDs(stats.NewContainers),
	}
	rec.SetMoved(moved)
	key, err := g.repo.Journal.Commit(rec)
	if err != nil {
		return nil, err
	}

	// Apply: repoint index, rewrite recipe and catalog, mark the sources'
	// moved chunks deleted — all idempotent (shared with journal replay).
	if err := g.repo.ApplySCC(rec, cs, rs); err != nil {
		return nil, err
	}
	if err := g.repo.Journal.Remove(key); err != nil {
		return nil, err
	}

	// The moved bytes are dead weight in the sparse containers; rewrite
	// any past the stale threshold so the paper's Fig 9 property holds:
	// compaction shrinks the storage attributable to old versions rather
	// than growing totals. Each rewrite journals independently.
	for _, id := range sparse {
		m, err := cs.ReadMeta(id)
		if err != nil {
			continue // e.g. already swept
		}
		if m.StaleProportion() > g.repo.Config.RewriteStaleThreshold {
			if _, err := g.repo.RewriteContainer(cs, m); err != nil {
				return nil, err
			}
		}
	}
	return stats, nil
}

// ---------------------------------------------------------------------------
// Version collection (§VI-B).

// GCStats reports one version deletion.
type GCStats struct {
	GarbageCandidates   int
	ContainersCollected int
	BytesReclaimed      int64
	IndexEntriesRemoved int
}

// DeleteVersion removes a backup version. The mark phase already ran
// during backup (garbage containers are associated with the version);
// here only the sweep runs: candidates still referenced by any live
// version are kept, the rest are deleted along with their index entries.
//
// Versions should be deleted oldest-first (the retention-window pattern
// the paper assumes); the sweep re-validates references against the live
// catalog, so out-of-order deletion degrades to keeping extra data, never
// to losing referenced data.
func (g *GNode) DeleteVersion(fileID string, version int) (*GCStats, error) {
	g.maintMu.Lock()
	defer g.maintMu.Unlock()
	g.repo.Files.Lock(fileID)
	defer g.repo.Files.Unlock(fileID)

	stats := &GCStats{}
	cs := g.containers()
	rs := g.recipes()

	info, err := rs.GetInfo(fileID, version)
	if err != nil {
		return nil, fmt.Errorf("gnode: delete version: %w", err)
	}
	stats.GarbageCandidates = len(info.Garbage)

	// Commit the intent (the catalog entry holding the garbage list is
	// about to be deleted; the journal record preserves it so a crashed
	// sweep can resume), then apply and clear the record.
	rec := &journal.Record{
		Kind:    journal.KindGC,
		FileID:  fileID,
		Version: version,
		Garbage: journal.RawIDs(info.Garbage),
	}
	key, err := g.repo.Journal.Commit(rec)
	if err != nil {
		return nil, err
	}
	applied, err := g.repo.ApplyGC(rec, cs, rs)
	if err != nil {
		return nil, err
	}
	if err := g.repo.Journal.Remove(key); err != nil {
		return nil, err
	}
	stats.ContainersCollected = applied.ContainersCollected
	stats.BytesReclaimed = applied.BytesReclaimed
	stats.IndexEntriesRemoved = applied.IndexEntriesRemoved
	return stats, nil
}

// ---------------------------------------------------------------------------

// AuditStats reports a full mark-and-sweep audit.
type AuditStats struct {
	ContainersMarked int
	ContainersSwept  int
	BytesReclaimed   int64
	// JournalReplayed counts half-committed journal records rolled
	// forward before the sweep.
	JournalReplayed int
}

// FullSweep is the classic mark-and-sweep fallback (§II): it first rolls
// forward any half-committed journal records left by a crashed peer, then
// marks every container reachable from any live recipe — resolving
// reverse-dedup and SCC redirects through the global index — and deletes
// the rest (including containers a crash stranded before their operation
// committed). It is an audit/repair tool; normal operation uses the
// per-version garbage lists.
func (g *GNode) FullSweep() (*AuditStats, error) {
	g.maintMu.Lock()
	defer g.maintMu.Unlock()
	// Stop the world: a container an in-flight backup has uploaded is
	// unreachable until its recipe lands, and the sweep would reclaim it.
	release := g.repo.Files.LockAll()
	defer release()

	replayed, err := g.repo.ReplayJournal()
	if err != nil {
		return nil, fmt.Errorf("gnode: full sweep: %w", err)
	}
	cs := g.containers()
	rs := g.recipes()

	files, err := rs.Files()
	if err != nil {
		return nil, err
	}
	type fv struct {
		file    string
		version int
	}
	var work []fv
	for _, f := range files {
		versions, err := rs.Versions(f)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			work = append(work, fv{f, v})
		}
	}

	// Mark phase, fanned out per version: each worker walks one recipe,
	// marking home containers directly and batching the global-index
	// redirect lookups for chunks whose home no longer holds them. The
	// world is stopped (LockAll above), so the walks are pure reads; the
	// union of the per-version mark sets is order-independent.
	var (
		markMu sync.Mutex
		marked = make(map[container.ID]bool)
	)
	err = g.forEach(len(work), func(wi int) error {
		r, err := rs.GetRecipe(work[wi].file, work[wi].version)
		if err != nil {
			return err
		}
		local := make(map[container.ID]bool)
		var misses []fingerprint.FP
		r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
			m, err := cs.ReadMeta(rec.Container)
			if err == nil {
				if cm := m.Find(rec.FP); cm != nil && !cm.Deleted {
					local[rec.Container] = true
					return true
				}
			}
			misses = append(misses, rec.FP)
			return true
		})
		// Redirected chunks: mark the relocation targets in one probe.
		nids, found, _, err := g.repo.Global.GetBatch(misses)
		if err != nil {
			return err
		}
		for i := range misses {
			if found[i] {
				local[nids[i]] = true
			}
		}
		markMu.Lock()
		for id := range local {
			marked[id] = true
		}
		markMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	all, err := cs.List()
	if err != nil {
		return nil, err
	}
	var unmarked []container.ID
	for _, id := range all {
		if !marked[id] {
			unmarked = append(unmarked, id)
		}
	}
	stats := &AuditStats{ContainersMarked: len(marked), JournalReplayed: replayed}
	// Sweep phase, fanned out per container: drops touch disjoint
	// containers, and each index entry is deleted only by the drop whose
	// container it names, so concurrent drops never interfere.
	var sweepMu sync.Mutex
	err = g.forEach(len(unmarked), func(i int) error {
		reclaimed, _, err := g.repo.DropContainer(cs, unmarked[i])
		if err != nil {
			return err
		}
		sweepMu.Lock()
		stats.ContainersSwept++
		stats.BytesReclaimed += reclaimed
		sweepMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return stats, nil
}
