package gnode

import (
	"fmt"
	"sync"

	"slimstore/internal/container"
)

// Maintainer runs the G-node's work asynchronously, the way the paper
// deploys it: online backup jobs hand their results to a queue and return
// immediately; the offline node drains the queue in the background
// (reverse dedup, then SCC per job), never blocking the online path.
type Maintainer struct {
	g *GNode

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []maintJob
	running bool
	active  bool // a job is being processed right now
	stopped bool

	stats MaintStats
	wg    sync.WaitGroup
}

type maintJob struct {
	fileID        string
	version       int
	newContainers []container.ID
	sparse        []container.ID
	scrub         bool // integrity scrub instead of an optimisation pass
}

// MaintStats summarises background processing.
type MaintStats struct {
	Enqueued  int
	Processed int
	Errors    int
	LastErr   error
	Reverse   ReverseDedupStats // accumulated
	SCC       SCCStats          // accumulated (counts only)
	Scrubs    int               // scrub passes completed
	Scrub     ScrubStats        // accumulated (counts only)
}

// NewMaintainer returns a stopped maintainer for g.
func NewMaintainer(g *GNode) *Maintainer {
	m := &Maintainer{g: g}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Start launches the background worker; idempotent.
func (m *Maintainer) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running || m.stopped {
		return
	}
	m.running = true
	m.wg.Add(1)
	go m.loop()
}

// Enqueue hands one finished backup to the offline node. It never blocks
// on G-node work (the paper's decoupling); it returns an error only after
// Stop.
func (m *Maintainer) Enqueue(fileID string, version int, newContainers, sparse []container.ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return fmt.Errorf("gnode: maintainer stopped")
	}
	m.queue = append(m.queue, maintJob{
		fileID:        fileID,
		version:       version,
		newContainers: append([]container.ID(nil), newContainers...),
		sparse:        append([]container.ID(nil), sparse...),
	})
	m.stats.Enqueued++
	m.cond.Broadcast()
	return nil
}

// EnqueueScrub queues an integrity scrub behind any pending optimisation
// work. Like Enqueue it never blocks on G-node work.
func (m *Maintainer) EnqueueScrub() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return fmt.Errorf("gnode: maintainer stopped")
	}
	m.queue = append(m.queue, maintJob{scrub: true})
	m.stats.Enqueued++
	m.cond.Broadcast()
	return nil
}

func (m *Maintainer) loop() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.stopped {
			m.cond.Wait()
		}
		if len(m.queue) == 0 && m.stopped {
			m.mu.Unlock()
			return
		}
		job := m.queue[0]
		m.queue = m.queue[1:]
		m.active = true
		m.mu.Unlock()

		var (
			rd         *ReverseDedupStats
			scc        *SCCStats
			sc         *ScrubStats
			err1, err2 error
		)
		if job.scrub {
			sc, err1 = m.g.Scrub()
		} else {
			rd, err1 = m.g.ReverseDedup(job.newContainers)
			scc, err2 = m.g.CompactSparse(job.fileID, job.version, job.sparse)
		}

		m.mu.Lock()
		m.stats.Processed++
		if err1 != nil || err2 != nil {
			m.stats.Errors++
			if err1 != nil {
				m.stats.LastErr = err1
			} else {
				m.stats.LastErr = err2
			}
		}
		if rd != nil {
			m.stats.Reverse.ContainersScanned += rd.ContainersScanned
			m.stats.Reverse.ChunksScanned += rd.ChunksScanned
			m.stats.Reverse.DuplicatesRemoved += rd.DuplicatesRemoved
			m.stats.Reverse.BytesDeduplicated += rd.BytesDeduplicated
			m.stats.Reverse.IndexInserts += rd.IndexInserts
			m.stats.Reverse.ContainersRewritten += rd.ContainersRewritten
			m.stats.Reverse.BytesReclaimed += rd.BytesReclaimed
		}
		if scc != nil {
			m.stats.SCC.SparseContainers += scc.SparseContainers
			m.stats.SCC.ChunksMoved += scc.ChunksMoved
			m.stats.SCC.BytesMoved += scc.BytesMoved
		}
		if sc != nil {
			m.stats.Scrubs++
			m.stats.Scrub.ContainersScanned += sc.ContainersScanned
			m.stats.Scrub.ChunksVerified += sc.ChunksVerified
			m.stats.Scrub.CorruptChunks += sc.CorruptChunks
			m.stats.Scrub.RepairedChunks += sc.RepairedChunks
			m.stats.Scrub.RebuiltContainers += sc.RebuiltContainers
			m.stats.Scrub.Quarantined = append(m.stats.Scrub.Quarantined, sc.Quarantined...)
			m.stats.Scrub.Lost = append(m.stats.Scrub.Lost, sc.Lost...)
		}
		m.active = false
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// Drain blocks until the queue is empty and no job is in flight.
func (m *Maintainer) Drain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) > 0 || m.active {
		m.cond.Wait()
	}
}

// Stop drains outstanding work and terminates the worker. Further
// Enqueue calls fail; Stop is idempotent.
func (m *Maintainer) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.stopped = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// Stats returns a snapshot of the accumulated counters.
func (m *Maintainer) Stats() MaintStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
