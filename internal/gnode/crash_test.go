package gnode

import (
	"bytes"
	"testing"

	"slimstore/internal/core"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
)

// These tests kill G-node reorganisations at every possible OSS put and
// verify the intent journal makes each outcome safe: after "reboot"
// (reopening the repo, which replays the journal), every version restores
// byte-identical and the audit sweep converges.

// cloneMem snapshots an in-memory store, giving each crash point a
// pristine copy of the baseline state.
func cloneMem(t *testing.T, src *oss.Mem) *oss.Mem {
	t.Helper()
	dst := oss.NewMem()
	keys, err := src.List("")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		b, err := src.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Put(k, b); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// sccBaseline builds a repo with two versions of one file where the
// second version's backup flagged sparse containers, so CompactSparse has
// real work. Returns the store, config, version data and the stats of the
// compactable version.
func sccBaseline(t *testing.T) (*oss.Mem, core.Config, map[int][]byte, *lnode.BackupStats) {
	t.Helper()
	cfg := testConfig()
	cfg.SparseUtilization = 0.99 // flag aggressively so SCC always has input
	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln := lnode.New(repo, "l0")

	v0 := genData(10, 1<<20)
	if _, err := ln.Backup("f", v0); err != nil {
		t.Fatal(err)
	}
	// Scatter single-byte edits: v1 shares most chunks with v0 but uses
	// each of v0's containers only partially, so they are flagged sparse.
	v1 := append([]byte{}, v0...)
	for off := 32 << 10; off < len(v1); off += 32 << 10 {
		v1[off] ^= 0xFF
	}
	st, err := ln.Backup("f", v1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.SparseContainers) == 0 {
		t.Fatal("baseline produced no sparse containers; crash coverage would be vacuous")
	}
	return mem, cfg, map[int][]byte{0: v0, 1: v1}, st
}

// verifyAfterReboot reopens the repo from the bare store (journal replay
// runs inside OpenRepo) and checks every surviving version restores
// byte-identical, then that the audit sweep runs clean.
func verifyAfterReboot(t *testing.T, mem *oss.Mem, cfg core.Config, want map[int][]byte) {
	t.Helper()
	repo, err := core.OpenRepo(mem, cfg)
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	ln := lnode.New(repo, "l0")
	for v, data := range want {
		var buf bytes.Buffer
		if _, err := ln.Restore("f", v, &buf); err != nil {
			t.Fatalf("post-crash restore v%d: %v", v, err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("post-crash restore v%d differs from original", v)
		}
	}
	if _, err := New(repo).FullSweep(); err != nil {
		t.Fatalf("post-crash sweep: %v", err)
	}
}

func TestCompactSparseCrashAtEveryPut(t *testing.T) {
	baseline, cfg, want, st := sccBaseline(t)

	completed := false
	for n := 0; n < 300 && !completed; n++ {
		mem := cloneMem(t, baseline)
		faulty := oss.NewFaulty(mem)
		repo, err := core.OpenRepo(faulty, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gn := New(repo)
		faulty.FailPutsAfter(n)
		_, err = gn.CompactSparse("f", st.Version, st.SparseContainers)
		if err == nil {
			completed = true
		}
		// "Crash": abandon the repo object (buffered index state dies with
		// it) and reboot from what actually reached the store.
		verifyAfterReboot(t, mem, cfg, want)
	}
	if !completed {
		t.Fatal("compaction never ran to completion within the put budget")
	}

	// Sanity: on the fully-compacted state the journal is empty.
	repo, err := core.OpenRepo(baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gn := New(repo)
	if _, err := gn.CompactSparse("f", st.Version, st.SparseContainers); err != nil {
		t.Fatal(err)
	}
	keys, err := repo.Journal.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("journal records survive a successful compaction: %v", keys)
	}
}

func TestDeleteVersionCrashAtEveryPut(t *testing.T) {
	baseline, cfg, want, st := sccBaseline(t)
	// Compact first so version 0 owns garbage containers worth sweeping.
	{
		repo, err := core.OpenRepo(baseline, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := New(repo).CompactSparse("f", st.Version, st.SparseContainers); err != nil {
			t.Fatal(err)
		}
	}

	completed := false
	for n := 0; n < 300 && !completed; n++ {
		mem := cloneMem(t, baseline)
		faulty := oss.NewFaulty(mem)
		repo, err := core.OpenRepo(faulty, cfg)
		if err != nil {
			t.Fatal(err)
		}
		faulty.FailPutsAfter(n)
		_, err = New(repo).DeleteVersion("f", 0)
		faulty.Clear()
		if err == nil {
			completed = true
		}

		// Reboot. Version 0 is in limbo only until replay: afterwards it
		// either fully exists or is fully gone.
		repo2, err := core.OpenRepo(mem, cfg)
		if err != nil {
			t.Fatalf("reboot: %v", err)
		}
		vs, err := repo2.Recipes.Versions("f")
		if err != nil {
			t.Fatal(err)
		}
		surviving := map[int][]byte{}
		for _, v := range vs {
			data, ok := want[v]
			if !ok {
				t.Fatalf("unknown version %d after crash", v)
			}
			surviving[v] = data
		}
		if _, ok := surviving[1]; !ok {
			t.Fatal("deleting v0 took v1 with it")
		}
		verifyAfterReboot(t, mem, cfg, surviving)
	}
	if !completed {
		t.Fatal("deletion never ran to completion within the put budget")
	}
}
