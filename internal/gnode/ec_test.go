package gnode

import (
	"errors"
	"strings"
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
)

func ecConfig() core.Config {
	cfg := testConfig()
	cfg.ECDataShards = 2
	cfg.ECParityShards = 2
	return cfg
}

func ecSetup(t *testing.T) (*lnode.LNode, *GNode, *core.Repo, *oss.Mem) {
	t.Helper()
	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, ecConfig())
	if err != nil {
		t.Fatal(err)
	}
	return lnode.New(repo, "l0"), New(repo), repo, mem
}

// killBackend deletes every shard object a backend holds, simulating the
// total loss of one fault domain.
func killBackend(t *testing.T, mem *oss.Mem, i int) int {
	t.Helper()
	keys, err := mem.List(oss.BackendPrefix(i))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := mem.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	return len(keys)
}

// TestBackupRestoreWithEC proves the striped tier is transparent to the
// backup/restore pipeline, including while ≤ M backends are dark.
func TestBackupRestoreWithEC(t *testing.T) {
	ln, _, repo, mem := ecSetup(t)
	data := genData(11, 1<<20)
	st, err := ln.Backup("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.NewContainers) == 0 {
		t.Fatal("backup created no containers")
	}
	// No plain container objects may exist: everything is striped.
	plain, err := mem.List(container.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 0 {
		t.Fatalf("container keys stored outside the EC tier: %v", plain)
	}
	if got := restoreBytes(t, ln, "f", st.Version); !bytesEqual(got, data) {
		t.Fatal("healthy EC restore not byte-identical")
	}
	// Any two of four backends dark (M=2): restores still exact.
	for _, down := range [][]int{{0}, {3}, {0, 1}, {1, 3}} {
		for _, i := range down {
			repo.EC.Backends()[i].Faulty.SetOutage(true)
		}
		if got := restoreBytes(t, ln, "f", st.Version); !bytesEqual(got, data) {
			t.Fatalf("restore with backends %v down not byte-identical", down)
		}
		for _, i := range down {
			repo.EC.Backends()[i].Faulty.SetOutage(false)
		}
	}
}

// TestScrubRepairsECStripes loses a whole backend plus a rotted shard on
// another, runs Scrub, and requires every stripe rebuilt to full K+M
// redundancy with byte-identical restores.
func TestScrubRepairsECStripes(t *testing.T) {
	ln, gn, repo, mem := ecSetup(t)
	data := genData(12, 1<<20)
	st, err := ln.Backup("f", data)
	if err != nil {
		t.Fatal(err)
	}

	lost := killBackend(t, mem, 1)
	if lost == 0 {
		t.Fatal("backend 1 held no shards")
	}
	// Rot one shard payload on another backend.
	keys, err := mem.List(oss.BackendPrefix(2) + container.Prefix)
	if err != nil || len(keys) == 0 {
		t.Fatalf("no shards on backend 2: %v", err)
	}
	var rotted string
	for _, k := range keys {
		if strings.HasSuffix(k, ".data") {
			rotted = k
			break
		}
	}
	raw := mustGetMem(t, mem, rotted)
	raw[len(raw)-5] ^= 0xFF
	if err := mem.Put(rotted, raw); err != nil {
		t.Fatal(err)
	}

	sc, err := gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if sc.ECStripesChecked == 0 || sc.ECDegradedStripes == 0 {
		t.Fatalf("scrub saw no degraded stripes: %+v", sc)
	}
	if sc.ECRepairedShards < lost+1 {
		t.Fatalf("scrub repaired %d shards, want >= %d", sc.ECRepairedShards, lost+1)
	}
	if sc.ECRepairFailures != 0 || sc.ECUnrecoverable != 0 {
		t.Fatalf("scrub reported failures: %+v", sc)
	}
	// The chunk-level pass must see no damage: EC repair runs first and
	// reconstruction is byte-exact.
	if sc.CorruptChunks != 0 || len(sc.Quarantined) != 0 || len(sc.Lost) != 0 {
		t.Fatalf("EC damage leaked into the chunk pass: %+v", sc)
	}

	// Full redundancy restored: every stripe healthy on every backend.
	ecs := repo.ECFor(nil)
	ids, err := repo.Containers.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		for _, key := range []string{container.DataKey(id), container.MetaKey(id)} {
			h, err := ecs.Check(key)
			if errors.Is(err, oss.ErrNotFound) {
				continue
			}
			if err != nil || len(h.Bad) != 0 || h.Present != 4 {
				t.Fatalf("stripe %s not fully repaired: %+v, %v", key, h, err)
			}
		}
	}
	if got := restoreBytes(t, ln, "f", st.Version); !bytesEqual(got, data) {
		t.Fatal("restore after repair not byte-identical")
	}
	// A second scrub finds nothing degraded.
	sc2, err := gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if sc2.ECDegradedStripes != 0 || sc2.ECRepairedShards != 0 {
		t.Fatalf("second scrub still repairing: %+v", sc2)
	}
}

// TestScrubECRepairFailure keeps a backend dark through the scrub: the
// pass repairs what it can, counts the failure, and a later scrub (after
// the outage lifts) completes the rebuild.
func TestScrubECRepairFailure(t *testing.T) {
	ln, gn, repo, mem := ecSetup(t)
	data := genData(13, 512<<10)
	if _, err := ln.Backup("f", data); err != nil {
		t.Fatal(err)
	}
	killBackend(t, mem, 0)
	repo.EC.Backends()[0].Faulty.SetOutage(true)
	sc, err := gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if sc.ECDegradedStripes == 0 || sc.ECRepairFailures == 0 {
		t.Fatalf("outage scrub did not count repair failures: %+v", sc)
	}
	repo.EC.Backends()[0].Faulty.SetOutage(false)
	sc, err = gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if sc.ECRepairedShards == 0 || sc.ECRepairFailures != 0 {
		t.Fatalf("post-heal scrub did not finish the rebuild: %+v", sc)
	}
	sc, err = gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if sc.ECDegradedStripes != 0 {
		t.Fatalf("stripes still degraded after heal: %+v", sc)
	}
}

func mustGetMem(t *testing.T, mem *oss.Mem, key string) []byte {
	t.Helper()
	b, err := mem.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
