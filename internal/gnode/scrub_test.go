package gnode

import (
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

// flipChunkAtRest corrupts one byte of a live chunk directly in the
// backing store — silent at-rest rot, invisible until something verifies.
func flipChunkAtRest(t *testing.T, mem *oss.Mem, repo *core.Repo, id container.ID, fp fingerprint.FP) {
	t.Helper()
	m, err := repo.Containers.ReadMeta(id)
	if err != nil {
		t.Fatal(err)
	}
	cm := m.Find(fp)
	if cm == nil {
		t.Fatalf("chunk %s not in %s", fp.Short(), id)
	}
	key := container.Prefix + id.String() + ".data"
	raw, err := mem.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	raw[cm.Offset+cm.Size/2] ^= 0xFF
	if err := mem.Put(key, raw); err != nil {
		t.Fatal(err)
	}
}

// firstLiveChunk returns a live chunk fingerprint of a container.
func firstLiveChunk(t *testing.T, repo *core.Repo, id container.ID) fingerprint.FP {
	t.Helper()
	m, err := repo.Containers.ReadMeta(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Chunks {
		if !m.Chunks[i].Deleted {
			return m.Chunks[i].FP
		}
	}
	t.Fatalf("container %s has no live chunks", id)
	return fingerprint.FP{}
}

func TestScrubRepairsFromDonor(t *testing.T) {
	cfg := testConfig()
	cfg.SimilarityMinScore = 1.1 // L-node misses cross-file dups → two physical copies
	ln, gn, repo, mem := setup(t, cfg)

	shared := genData(1, 1<<20)
	stA, err := ln.Backup("a", shared)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ln.Backup("b", shared); err != nil {
		t.Fatal(err)
	}

	victim := stA.NewContainers[0]
	fp := firstLiveChunk(t, repo, victim)
	flipChunkAtRest(t, mem, repo, victim, fp)

	sc, err := gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if sc.CorruptChunks != 1 || sc.RepairedChunks != 1 || sc.RebuiltContainers != 1 {
		t.Fatalf("scrub = %+v, want 1 corrupt chunk repaired via donor", sc)
	}
	if !sc.Clean() {
		t.Fatalf("scrub not clean: quarantined %v, lost %v", sc.Quarantined, sc.Lost)
	}
	if got := restoreBytes(t, ln, "a", stA.Version); !bytesEqual(got, shared) {
		t.Fatal("restore after repair is not byte-identical")
	}
	// A second scrub finds nothing to do.
	sc2, err := gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if sc2.CorruptChunks != 0 || sc2.RebuiltContainers != 0 {
		t.Fatalf("second scrub still found damage: %+v", sc2)
	}
}

func TestScrubQuarantinesWithoutDonor(t *testing.T) {
	ln, gn, repo, mem := setup(t, testConfig())

	data := genData(2, 1<<20)
	st, err := ln.Backup("solo", data)
	if err != nil {
		t.Fatal(err)
	}
	other := genData(3, 256<<10)
	stOther, err := ln.Backup("other", other)
	if err != nil {
		t.Fatal(err)
	}

	victim := st.NewContainers[0]
	fp := firstLiveChunk(t, repo, victim)
	flipChunkAtRest(t, mem, repo, victim, fp)

	sc, err := gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Quarantined) != 1 || sc.Quarantined[0] != victim {
		t.Fatalf("quarantined = %v, want [%s]", sc.Quarantined, victim)
	}
	if len(sc.Lost) != 1 || sc.Lost[0] != fp {
		t.Fatalf("lost = %v, want [%s]", sc.Lost, fp.Short())
	}
	if sc.RecipesRewritten == 0 {
		t.Fatal("recipes referencing the quarantined container were not rewritten")
	}

	// The damaged version must fail loudly, never return wrong bytes.
	if _, err := ln.Restore("solo", st.Version, discard{}); err == nil {
		t.Fatal("restore of a version with a lost chunk succeeded silently")
	}
	// Untouched versions stay restorable (their chunks were elsewhere).
	if got := restoreBytes(t, ln, "other", stOther.Version); !bytesEqual(got, other) {
		t.Fatal("unaffected version no longer restores byte-identical")
	}

	// The quarantined objects moved, not vanished: forensics keeps them.
	keys, err := mem.List(container.QuarantinePrefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 {
		t.Fatalf("quarantine namespace holds %d objects, want data+meta", len(keys))
	}
}

func TestScrubClearsDeadRegionRot(t *testing.T) {
	_, gn, repo, mem := setup(t, testConfig())
	cs := repo.Containers

	// A container whose first chunk was deleted by reverse dedup.
	c := &container.Container{Meta: container.Meta{ID: cs.AllocateID()}}
	a, b := genData(4, 4<<10), genData(5, 4<<10)
	c.Meta.Chunks = []container.ChunkMeta{
		{FP: fingerprint.OfBytes(a), Offset: 0, Size: uint32(len(a))},
		{FP: fingerprint.OfBytes(b), Offset: uint32(len(a)), Size: uint32(len(b))},
	}
	c.Data = append(append([]byte{}, a...), b...)
	if err := cs.Write(c); err != nil {
		t.Fatal(err)
	}
	m, _ := cs.ReadMeta(c.Meta.ID)
	cp := *m
	cp.Chunks = append([]container.ChunkMeta(nil), m.Chunks...)
	cp.Chunks[0].Deleted = true
	if err := cs.WriteMeta(&cp); err != nil {
		t.Fatal(err)
	}

	// Rot a byte inside the dead region.
	key := container.Prefix + c.Meta.ID.String() + ".data"
	raw, _ := mem.Get(key)
	raw[10] ^= 0xFF
	mem.Put(key, raw)

	sc, err := gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if sc.FooterRepairs != 1 || sc.CorruptChunks != 0 || !sc.Clean() {
		t.Fatalf("scrub = %+v, want one footer repair and a clean repo", sc)
	}
	// The rebuild dropped the dead region; the survivor still verifies.
	got, err := cs.ReadChunk(c.Meta.ID, fingerprint.OfBytes(b))
	if err != nil || !bytesEqual(got, b) {
		t.Fatalf("survivor chunk after rot cleanup: %v", err)
	}
	sc2, _ := gn.Scrub()
	if sc2.FooterRepairs != 0 {
		t.Fatal("rot cleanup did not converge")
	}
}

func TestMaintainerRunsQueuedScrub(t *testing.T) {
	ln, gn, repo, mem := setup(t, testConfig())
	st, err := ln.Backup("f", genData(6, 512<<10))
	if err != nil {
		t.Fatal(err)
	}
	flipChunkAtRest(t, mem, repo, st.NewContainers[0], firstLiveChunk(t, repo, st.NewContainers[0]))

	m := NewMaintainer(gn)
	m.Start()
	if err := m.EnqueueScrub(); err != nil {
		t.Fatal(err)
	}
	m.Drain()
	m.Stop()
	ms := m.Stats()
	if ms.Scrubs != 1 || ms.Errors != 0 {
		t.Fatalf("maintainer stats = %+v", ms)
	}
	if ms.Scrub.CorruptChunks != 1 {
		t.Fatalf("queued scrub missed the corruption: %+v", ms.Scrub)
	}
}

// discard is an io.Writer swallowing restore output.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
