package gnode

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
)

// twin is one of two identically seeded repos maintained at different
// worker widths.
type twin struct {
	ln   *lnode.LNode
	gn   *GNode
	repo *core.Repo
	mem  *oss.Mem
	new  []container.ID
}

// buildTwin seeds a repo with cross-file duplicate backups the L-node is
// forced to miss, so reverse dedup has marks, repoints, and rewrites to
// do. Deterministic: every twin holds byte-identical state.
func buildTwin(t *testing.T, workers int) *twin {
	t.Helper()
	cfg := testConfig()
	cfg.SimilarityMinScore = 1.1 // force the L-node to miss cross-file dups
	cfg.MaintWorkers = workers
	ln, gn, repo, mem := setup(t, cfg)

	shared := genData(5, 1<<20)
	other := genData(6, 512<<10)
	mixed := append(append([]byte(nil), other...), shared[:512<<10]...)

	tw := &twin{ln: ln, gn: gn, repo: repo, mem: mem}
	for _, f := range []struct {
		name string
		data []byte
	}{{"a", shared}, {"b", mixed}, {"c", shared}} {
		st, err := ln.Backup(f.name, f.data)
		if err != nil {
			t.Fatalf("backup %s: %v", f.name, err)
		}
		tw.new = append(tw.new, st.NewContainers...)
	}
	return tw
}

// indexDump snapshots the global index.
func indexDump(t *testing.T, repo *core.Repo) map[fingerprint.FP]container.ID {
	t.Helper()
	m := map[fingerprint.FP]container.ID{}
	if err := repo.Global.Scan(func(fp fingerprint.FP, id container.ID) bool {
		m[fp] = id
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

// metaDump serialises every container's metadata in ID order.
func metaDump(t *testing.T, repo *core.Repo) string {
	t.Helper()
	ids, err := repo.Containers.List()
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var buf bytes.Buffer
	for _, id := range ids {
		m, err := repo.Containers.ReadMeta(id)
		if err != nil {
			t.Fatalf("meta %s: %v", id, err)
		}
		fmt.Fprintf(&buf, "%s size=%d\n", id, m.DataSize)
		for i := range m.Chunks {
			cm := &m.Chunks[i]
			fmt.Fprintf(&buf, "  %s off=%d size=%d deleted=%v\n", cm.FP.Short(), cm.Offset, cm.Size, cm.Deleted)
		}
	}
	return buf.String()
}

func assertTwinsEqual(t *testing.T, serial, parallel *twin, files []string) {
	t.Helper()
	si, pi := indexDump(t, serial.repo), indexDump(t, parallel.repo)
	if !reflect.DeepEqual(si, pi) {
		t.Errorf("global index diverges: serial %d entries, parallel %d", len(si), len(pi))
	}
	sm, pm := metaDump(t, serial.repo), metaDump(t, parallel.repo)
	if sm != pm {
		t.Errorf("container metadata diverges:\n--- serial ---\n%s--- parallel ---\n%s", sm, pm)
	}
	for _, f := range files {
		sb := restoreBytes(t, serial.ln, f, 0)
		pb := restoreBytes(t, parallel.ln, f, 0)
		if !bytes.Equal(sb, pb) {
			t.Errorf("file %s restores diverge", f)
		}
	}
}

// TestReverseDedupParallelMatchesSerial is the determinism contract of
// the fan-out pipeline: any MaintWorkers width must produce bit-identical
// stats, index state, container metadata, and restored bytes.
func TestReverseDedupParallelMatchesSerial(t *testing.T) {
	serial := buildTwin(t, -1) // negative → strictly serial pool
	parallel := buildTwin(t, 8)

	ss, err := serial.gn.ReverseDedup(serial.new)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := parallel.gn.ReverseDedup(parallel.new)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss, ps) {
		t.Errorf("stats diverge:\nserial:   %+v\nparallel: %+v", ss, ps)
	}
	if ss.DuplicatesRemoved == 0 || ss.ContainersRewritten == 0 {
		t.Fatalf("degenerate workload, nothing deduplicated: %+v", ss)
	}
	assertTwinsEqual(t, serial, parallel, []string{"a", "b", "c"})

	// Idempotence holds for the parallel pass too.
	again, err := parallel.gn.ReverseDedup(parallel.new)
	if err != nil {
		t.Fatal(err)
	}
	if again.DuplicatesRemoved != 0 || again.IndexInserts != 0 {
		t.Errorf("parallel rerun not idempotent: %+v", again)
	}
}

// TestScrubParallelMatchesSerial corrupts both twins identically —
// donor-repairable rot and an unrepairable loss — and requires the
// parallel scrub to reach exactly the serial verdicts and final state.
func TestScrubParallelMatchesSerial(t *testing.T) {
	serial := buildTwin(t, -1)
	parallel := buildTwin(t, 8)

	for _, tw := range []*twin{serial, parallel} {
		if _, err := tw.gn.ReverseDedup(tw.new); err != nil {
			t.Fatal(err)
		}
		all, err := tw.repo.Containers.List()
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		var ids []container.ID // containers that still hold live chunks
		for _, id := range all {
			m, err := tw.repo.Containers.ReadMeta(id)
			if err != nil {
				t.Fatal(err)
			}
			for i := range m.Chunks {
				if !m.Chunks[i].Deleted {
					ids = append(ids, id)
					break
				}
			}
		}
		if len(ids) < 2 {
			t.Fatalf("only %d containers with live chunks", len(ids))
		}
		// Corrupt a live chunk in the first and last such container; the
		// scrub decides repair vs quarantine vs loss identically on both
		// twins because the damaged bytes are identical.
		flipChunkAtRest(t, tw.mem, tw.repo, ids[0], firstLiveChunk(t, tw.repo, ids[0]))
		flipChunkAtRest(t, tw.mem, tw.repo, ids[len(ids)-1], firstLiveChunk(t, tw.repo, ids[len(ids)-1]))
	}

	ss, err := serial.gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := parallel.gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss, ps) {
		t.Errorf("scrub stats diverge:\nserial:   %+v\nparallel: %+v", ss, ps)
	}
	if ss.CorruptChunks == 0 {
		t.Fatalf("corruption not detected: %+v", ss)
	}

	si, pi := indexDump(t, serial.repo), indexDump(t, parallel.repo)
	if !reflect.DeepEqual(si, pi) {
		t.Errorf("global index diverges after scrub: serial %d entries, parallel %d", len(si), len(pi))
	}
	sm, pm := metaDump(t, serial.repo), metaDump(t, parallel.repo)
	if sm != pm {
		t.Errorf("container metadata diverges after scrub:\n--- serial ---\n%s--- parallel ---\n%s", sm, pm)
	}
}

// TestFullSweepParallelMatchesSerial deletes a version on both twins and
// audits: the parallel mark/sweep must keep exactly the serial survivors.
func TestFullSweepParallelMatchesSerial(t *testing.T) {
	serial := buildTwin(t, -1)
	parallel := buildTwin(t, 8)

	for _, tw := range []*twin{serial, parallel} {
		if _, err := tw.gn.ReverseDedup(tw.new); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.gn.DeleteVersion("c", 0); err != nil {
			t.Fatal(err)
		}
	}
	ss, err := serial.gn.FullSweep()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := parallel.gn.FullSweep()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss, ps) {
		t.Errorf("sweep stats diverge:\nserial:   %+v\nparallel: %+v", ss, ps)
	}
	assertTwinsEqual(t, serial, parallel, []string{"a", "b"})
}
