package gnode

import (
	"sync"
	"sync/atomic"
)

// workers returns the fan-out width for maintenance work (Config
// MaintWorkers: 0 → default, negative → serial).
func (g *GNode) workers() int {
	w := g.repo.Config.MaintWorkers
	if w < 1 {
		return 1
	}
	return w
}

// forEach runs fn(0..n-1) across the maintenance worker pool, returning
// the first error and abandoning undispatched indices once one occurs.
// With one worker (or n ≤ 1) it degenerates to the plain serial loop.
// fn must synchronise its own writes to shared state; the helper only
// guarantees each index is dispatched exactly once and that every
// in-flight fn has returned before forEach does (so results written into
// per-index slots are safe to read without further locking).
func (g *GNode) forEach(n int, fn func(int) error) error {
	w := g.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
