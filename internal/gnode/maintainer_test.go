package gnode

import (
	"bytes"
	"testing"

	"slimstore/internal/lnode"
)

func TestMaintainerProcessesInBackground(t *testing.T) {
	ln, gn, repo, _ := setup(t, testConfig())
	m := NewMaintainer(gn)
	m.Start()
	m.Start() // idempotent

	var stats []*lnode.BackupStats
	data := genData(80, 1<<20)
	for v := 0; v < 3; v++ {
		d := append([]byte{}, data...)
		copy(d[:64], genData(int64(800+v), 64))
		st, err := ln.Backup("f", d)
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, st)
		if err := m.Enqueue(st.FileID, st.Version, st.NewContainers, st.SparseContainers); err != nil {
			t.Fatal(err)
		}
	}
	m.Drain()
	ms := m.Stats()
	if ms.Enqueued != 3 || ms.Processed != 3 || ms.Errors != 0 {
		t.Fatalf("stats = %+v", ms)
	}
	if ms.Reverse.IndexInserts == 0 {
		t.Fatal("background reverse dedup registered nothing")
	}

	// Every version still restores after background processing.
	for v := 0; v < 3; v++ {
		d := append([]byte{}, data...)
		copy(d[:64], genData(int64(800+v), 64))
		if !bytes.Equal(restoreBytes(t, ln, "f", v), d) {
			t.Fatalf("version %d corrupt after background optimize", v)
		}
	}

	m.Stop()
	m.Stop() // idempotent
	if err := m.Enqueue("f", 0, nil, nil); err == nil {
		t.Fatal("enqueue after stop succeeded")
	}
	_ = repo
	_ = stats
}

func TestMaintainerStopDrainsQueue(t *testing.T) {
	ln, gn, _, _ := setup(t, testConfig())
	m := NewMaintainer(gn)
	st, err := ln.Backup("f", genData(81, 512<<10))
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue before Start: the job waits in the queue.
	if err := m.Enqueue(st.FileID, st.Version, st.NewContainers, st.SparseContainers); err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Stop() // must process the queued job before terminating
	if ms := m.Stats(); ms.Processed != 1 {
		t.Fatalf("Stop did not drain: %+v", ms)
	}
}
