package gnode

import (
	"reflect"
	"sort"
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/lnode"
)

// buildTwinLayout is buildTwin with an index layout: shards G-shards,
// each replicated across `replicas` kvstores. Workload and data are
// byte-identical to buildTwin, so any layout must converge to the same
// repo state.
func buildTwinLayout(t *testing.T, workers, shards, replicas int) *twin {
	t.Helper()
	cfg := testConfig()
	cfg.SimilarityMinScore = 1.1 // force the L-node to miss cross-file dups
	cfg.MaintWorkers = workers
	cfg.GlobalShards = shards
	cfg.GlobalReplicas = replicas
	ln, gn, repo, mem := setup(t, cfg)

	shared := genData(5, 1<<20)
	other := genData(6, 512<<10)
	mixed := append(append([]byte(nil), other...), shared[:512<<10]...)

	tw := &twin{ln: ln, gn: gn, repo: repo, mem: mem}
	for _, f := range []struct {
		name string
		data []byte
	}{{"a", shared}, {"b", mixed}, {"c", shared}} {
		st, err := ln.Backup(f.name, f.data)
		if err != nil {
			t.Fatalf("backup %s: %v", f.name, err)
		}
		tw.new = append(tw.new, st.NewContainers...)
	}
	return tw
}

// normalizeBloom zeroes the one stat that legitimately varies with the
// index layout: each shard sizes its own bloom filter, so false-positive
// patterns — and therefore how many index reads the filter saves — differ
// across shard counts. Dedup outcomes never depend on it (a false
// positive only costs a wasted lookup).
func normalizeBloom(s *ReverseDedupStats) *ReverseDedupStats {
	c := *s
	c.BloomSkips = 0
	return &c
}

// TestShardedMaintenanceMatchesSingle is the clustered-G-node twin
// contract: reverse dedup and a full mark-and-sweep over an N-shard
// (optionally quorum-replicated) global index must leave exactly the
// state the single-node serial pass leaves — same stats, same index
// dump, same container metadata, same restored bytes.
func TestShardedMaintenanceMatchesSingle(t *testing.T) {
	serial := buildTwin(t, -1) // single shard, single replica, serial pool
	layouts := map[string]*twin{
		"4-shard":    buildTwinLayout(t, 4, 4, 1),
		"4-shard-3x": buildTwinLayout(t, 4, 4, 3),
	}

	ss, err := serial.gn.ReverseDedup(serial.new)
	if err != nil {
		t.Fatal(err)
	}
	if ss.DuplicatesRemoved == 0 || ss.ContainersRewritten == 0 {
		t.Fatalf("degenerate workload, nothing deduplicated: %+v", ss)
	}
	for name, tw := range layouts {
		ps, err := tw.gn.ReverseDedup(tw.new)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(normalizeBloom(ss), normalizeBloom(ps)) {
			t.Errorf("%s: dedup stats diverge:\nserial:  %+v\nsharded: %+v", name, ss, ps)
		}
		assertTwinsEqual(t, serial, tw, []string{"a", "b", "c"})
	}

	// Delete a version and sweep on every layout.
	if _, err := serial.gn.DeleteVersion("c", 0); err != nil {
		t.Fatal(err)
	}
	sw, err := serial.gn.FullSweep()
	if err != nil {
		t.Fatal(err)
	}
	if sw.ContainersSwept == 0 {
		t.Fatalf("degenerate sweep, nothing reclaimed: %+v", sw)
	}
	for name, tw := range layouts {
		if _, err := tw.gn.DeleteVersion("c", 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pw, err := tw.gn.FullSweep()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(sw, pw) {
			t.Errorf("%s: sweep stats diverge:\nserial:  %+v\nsharded: %+v", name, sw, pw)
		}
		assertTwinsEqual(t, serial, tw, []string{"a", "b"})
	}
}

// TestShardedScrubMatchesSingle corrupts both twins identically and
// requires the sharded, replicated index to reach the serial scrub's
// exact verdicts (repairs, repoints, quarantine decisions).
func TestShardedScrubMatchesSingle(t *testing.T) {
	serial := buildTwin(t, -1)
	sharded := buildTwinLayout(t, 4, 4, 3)

	for _, tw := range []*twin{serial, sharded} {
		if _, err := tw.gn.ReverseDedup(tw.new); err != nil {
			t.Fatal(err)
		}
		all, err := tw.repo.Containers.List()
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		var ids []container.ID
		for _, id := range all {
			m, err := tw.repo.Containers.ReadMeta(id)
			if err != nil {
				t.Fatal(err)
			}
			for i := range m.Chunks {
				if !m.Chunks[i].Deleted {
					ids = append(ids, id)
					break
				}
			}
		}
		if len(ids) < 2 {
			t.Fatalf("only %d containers with live chunks", len(ids))
		}
		flipChunkAtRest(t, tw.mem, tw.repo, ids[0], firstLiveChunk(t, tw.repo, ids[0]))
		flipChunkAtRest(t, tw.mem, tw.repo, ids[len(ids)-1], firstLiveChunk(t, tw.repo, ids[len(ids)-1]))
	}

	ss, err := serial.gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	ps, err := sharded.gn.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss, ps) {
		t.Errorf("scrub stats diverge:\nserial:  %+v\nsharded: %+v", ss, ps)
	}
	if ss.CorruptChunks == 0 {
		t.Fatalf("corruption not detected: %+v", ss)
	}
	si, pi := indexDump(t, serial.repo), indexDump(t, sharded.repo)
	if !reflect.DeepEqual(si, pi) {
		t.Errorf("global index diverges after scrub: serial %d entries, sharded %d", len(si), len(pi))
	}
	if sm, pm := metaDump(t, serial.repo), metaDump(t, sharded.repo); sm != pm {
		t.Errorf("container metadata diverges after scrub:\n--- serial ---\n%s--- sharded ---\n%s", sm, pm)
	}
}

// TestReopenShardedRepo closes a replicated repo mid-life and reopens it
// through core.OpenRepo, exercising group log recovery plus per-shard
// bloom rebuilds; the reopened repo must serve identical restores.
func TestReopenShardedRepo(t *testing.T) {
	tw := buildTwinLayout(t, 4, 4, 3)
	if _, err := tw.gn.ReverseDedup(tw.new); err != nil {
		t.Fatal(err)
	}
	want := indexDump(t, tw.repo)
	a := restoreBytes(t, tw.ln, "a", 0)
	if err := tw.repo.Global.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := testConfig()
	cfg.SimilarityMinScore = 1.1
	cfg.MaintWorkers = 4
	cfg.GlobalShards = 4
	cfg.GlobalReplicas = 3
	repo, err := core.OpenRepo(tw.mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.ReplGroups) != 4 {
		t.Fatalf("reopened repo has %d replica groups, want 4", len(repo.ReplGroups))
	}
	if got := indexDump(t, repo); !reflect.DeepEqual(got, want) {
		t.Fatalf("index diverges after reopen: %d entries, want %d", len(got), len(want))
	}
	ln2 := lnode.New(repo, "l0")
	if got := restoreBytes(t, ln2, "a", 0); string(got) != string(a) {
		t.Fatal("restore diverges after reopen")
	}
}
