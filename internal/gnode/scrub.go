package gnode

import (
	"errors"
	"fmt"
	"sort"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
	"slimstore/internal/recipe"
)

// ScrubStats reports one integrity scrub of the container namespace.
type ScrubStats struct {
	ContainersScanned int
	ChunksVerified    int
	CorruptChunks     int // live chunks failing their checksum
	RepairedChunks    int // corrupt chunks restored from intact copies
	RebuiltContainers int // containers rewritten in place (repair or rot cleanup)
	FooterRepairs     int // dead-region rot cleared by rebuilding
	RecipesRewritten  int // recipes repointed away from quarantined containers
	IndexRepointed    int // global-index entries moved to surviving copies
	IndexPurged       int // global-index entries for unrecoverable chunks
	JournalReplayed   int

	// Quarantined lists containers moved out of the live namespace:
	// unreadable metadata, missing payload, or live corruption with no
	// donor for every damaged chunk.
	Quarantined []container.ID
	// Lost lists fingerprints with no intact copy anywhere. Restores
	// needing them fail loudly; everything else remains restorable.
	Lost []fingerprint.FP
}

// Clean reports whether the scrub left the repo fully intact: nothing
// quarantined, nothing lost.
func (s *ScrubStats) Clean() bool { return len(s.Quarantined) == 0 && len(s.Lost) == 0 }

// Scrub verifies every container against its checksums and repairs what
// it can (paper-level goal: detect silent OSS corruption before a restore
// needs the bytes). Per container:
//
//   - live chunks all verify, footer stale → dead-region rot; the
//     container is rebuilt in place, dropping the rotten dead bytes.
//   - some live chunks corrupt, every one has an intact copy (same
//     fingerprint) in another container → rebuilt in place with donor
//     bytes.
//   - otherwise → intact chunks are salvaged into fresh containers and
//     the damaged container is quarantined; chunks with no intact copy
//     anywhere are reported Lost.
//
// Afterwards the global index is repointed at surviving copies (entries
// for lost chunks are purged so restores fail loudly instead of chasing
// dangling references) and recipes referencing quarantined containers are
// rewritten. Scrub is re-runnable: a crash mid-scrub leaves state a
// subsequent Scrub (or FullSweep) finishes cleaning; in-place rebuilds go
// through the intent journal.
func (g *GNode) Scrub() (*ScrubStats, error) {
	g.maintMu.Lock()
	defer g.maintMu.Unlock()

	stats := &ScrubStats{}
	replayed, err := g.repo.ReplayJournal()
	if err != nil {
		return nil, fmt.Errorf("gnode: scrub: %w", err)
	}
	stats.JournalReplayed = replayed
	cs := g.containers()

	ids, err := cs.List()
	if err != nil {
		return nil, fmt.Errorf("gnode: scrub: %w", err)
	}

	// Pass 1: metadata. The owners map (fingerprint → containers holding a
	// live copy) drives donor lookups; containers whose metadata cannot be
	// decoded are beyond repair (offsets unknown) and head to quarantine.
	owners := make(map[fingerprint.FP][]container.ID)
	bad := make(map[container.ID]bool)
	for _, id := range ids {
		m, err := cs.ReadMeta(id)
		if err != nil {
			bad[id] = true
			continue
		}
		for i := range m.Chunks {
			if cm := &m.Chunks[i]; !cm.Deleted {
				owners[cm.FP] = append(owners[cm.FP], id)
			}
		}
	}

	// Pass 2: payload verification and repair.
	quarantined := make(map[container.ID]bool)
	moved := make(map[fingerprint.FP]container.ID) // salvaged/repaired relocations
	lost := make(map[fingerprint.FP]bool)
	builder := container.NewBuilder(cs)

	quarantine := func(id container.ID) error {
		// Write side of the container lock: wait out restores that pinned
		// this container before its damage was known.
		g.repo.CLocks.Lock(id)
		err := cs.Quarantine(id)
		g.repo.CLocks.Unlock(id)
		if err != nil {
			return fmt.Errorf("gnode: scrub: %w", err)
		}
		quarantined[id] = true
		stats.Quarantined = append(stats.Quarantined, id)
		return nil
	}

	// donor returns verified bytes for fp from any intact container other
	// than exclude.
	donor := func(fp fingerprint.FP, exclude container.ID) ([]byte, bool) {
		for _, oid := range owners[fp] {
			if oid == exclude || bad[oid] || quarantined[oid] {
				continue
			}
			if data, err := cs.ReadChunk(oid, fp); err == nil {
				return data, true
			}
		}
		return nil, false
	}

	for _, id := range ids {
		stats.ContainersScanned++
		if bad[id] {
			if err := quarantine(id); err != nil {
				return nil, err
			}
			continue
		}
		c, footerOK, err := cs.ReadRaw(id)
		if err != nil {
			// Metadata decoded in pass 1 but the payload is now unreadable.
			if err := quarantine(id); err != nil {
				return nil, err
			}
			continue
		}

		var corrupt []*container.ChunkMeta
		for i := range c.Meta.Chunks {
			cm := &c.Meta.Chunks[i]
			if cm.Deleted {
				continue
			}
			stats.ChunksVerified++
			if verr := c.VerifyChunk(cm); verr != nil {
				corrupt = append(corrupt, cm)
			}
		}

		if len(corrupt) == 0 {
			if !footerOK && c.Meta.Checksummed() {
				// Rot confined to deleted regions: rebuild to shed it.
				if _, err := g.repo.RewriteContainer(cs, &c.Meta); err != nil {
					return nil, fmt.Errorf("gnode: scrub rot cleanup %s: %w", id, err)
				}
				stats.FooterRepairs++
				stats.RebuiltContainers++
			}
			continue
		}
		stats.CorruptChunks += len(corrupt)

		repaired := make(map[fingerprint.FP][]byte, len(corrupt))
		for _, cm := range corrupt {
			if data, ok := donor(cm.FP, id); ok {
				repaired[cm.FP] = data
			}
		}

		if len(repaired) == len(corrupt) {
			// Full repair: rebuild in place from local intact bytes plus
			// donor copies; recipes and the index stay valid as-is.
			nc := &container.Container{Meta: container.Meta{ID: id}}
			for i := range c.Meta.Chunks {
				cm := &c.Meta.Chunks[i]
				if cm.Deleted {
					continue
				}
				data, ok := repaired[cm.FP]
				if !ok {
					if data, err = c.ChunkData(cm); err != nil {
						return nil, err
					}
				}
				nc.Meta.Chunks = append(nc.Meta.Chunks, container.ChunkMeta{
					FP:     cm.FP,
					Offset: uint32(len(nc.Data)),
					Size:   uint32(len(data)),
				})
				nc.Data = append(nc.Data, data...)
			}
			if err := g.repo.WriteRebuilt(cs, nc); err != nil {
				return nil, fmt.Errorf("gnode: scrub repair %s: %w", id, err)
			}
			stats.RepairedChunks += len(repaired)
			stats.RebuiltContainers++
			continue
		}

		// Partial damage with missing donors: salvage what verifies into
		// fresh containers, quarantine the rest.
		for i := range c.Meta.Chunks {
			cm := &c.Meta.Chunks[i]
			if cm.Deleted {
				continue
			}
			data, ok := repaired[cm.FP]
			if ok {
				stats.RepairedChunks++
			} else {
				if c.VerifyChunk(cm) != nil {
					lost[cm.FP] = true
					continue
				}
				if data, err = c.ChunkData(cm); err != nil {
					return nil, err
				}
			}
			nid, err := builder.Add(cm.FP, data)
			if err != nil {
				return nil, err
			}
			moved[cm.FP] = nid
		}
		if err := quarantine(id); err != nil {
			return nil, err
		}
	}
	if err := builder.Flush(); err != nil {
		return nil, err
	}

	// A fingerprint is only lost if no intact copy survived anywhere.
	for fp := range lost {
		if _, ok := moved[fp]; ok {
			delete(lost, fp)
			continue
		}
		if _, ok := donor(fp, container.Invalid); ok {
			delete(lost, fp)
		}
	}

	if len(quarantined) > 0 {
		if err := g.scrubFixIndex(stats, quarantined, moved, lost); err != nil {
			return nil, err
		}
		if err := g.scrubFixRecipes(stats, quarantined, moved); err != nil {
			return nil, err
		}
	}
	for fp := range lost {
		stats.Lost = append(stats.Lost, fp)
	}
	sort.Slice(stats.Lost, func(a, b int) bool { return stats.Lost[a].String() < stats.Lost[b].String() })
	sort.Slice(stats.Quarantined, func(a, b int) bool { return stats.Quarantined[a] < stats.Quarantined[b] })
	if err := g.repo.Global.Flush(); err != nil {
		return nil, err
	}
	return stats, nil
}

// scrubFixIndex repoints global-index entries that reference quarantined
// containers at surviving copies, and purges entries for lost chunks so
// restore redirects fail loudly instead of dangling.
func (g *GNode) scrubFixIndex(stats *ScrubStats, quarantined map[container.ID]bool,
	moved map[fingerprint.FP]container.ID, lost map[fingerprint.FP]bool) error {

	type fix struct {
		fp  fingerprint.FP
		nid container.ID // Invalid → purge
	}
	var fixes []fix
	err := g.repo.Global.Scan(func(fp fingerprint.FP, id container.ID) bool {
		if !quarantined[id] {
			return true
		}
		if nid, ok := moved[fp]; ok {
			fixes = append(fixes, fix{fp, nid})
		} else if nid, ok := g.intactOwner(fp, quarantined); ok {
			fixes = append(fixes, fix{fp, nid})
		} else {
			fixes = append(fixes, fix{fp, container.Invalid})
			lost[fp] = true
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, f := range fixes {
		if f.nid == container.Invalid {
			if err := g.repo.Global.Delete(f.fp); err != nil {
				return err
			}
			stats.IndexPurged++
			continue
		}
		if err := g.repo.Global.Put(f.fp, f.nid); err != nil {
			return err
		}
		stats.IndexRepointed++
	}
	return nil
}

// intactOwner finds a non-quarantined container holding a live, verified
// copy of fp.
func (g *GNode) intactOwner(fp fingerprint.FP, quarantined map[container.ID]bool) (container.ID, bool) {
	cs := g.containers()
	ids, err := cs.List()
	if err != nil {
		return container.Invalid, false
	}
	for _, id := range ids {
		if quarantined[id] {
			continue
		}
		m, err := cs.ReadMeta(id)
		if err != nil {
			continue
		}
		if cm := m.Find(fp); cm != nil && !cm.Deleted {
			if _, err := cs.ReadChunk(id, fp); err == nil {
				return id, true
			}
		}
	}
	return container.Invalid, false
}

// scrubFixRecipes rewrites recipes (and their catalog container lists)
// that reference quarantined containers, pointing each record at the
// chunk's surviving home. Records whose chunks are lost keep their stale
// reference — the restore path reports them loudly.
func (g *GNode) scrubFixRecipes(stats *ScrubStats, quarantined map[container.ID]bool,
	moved map[fingerprint.FP]container.ID) error {

	rs := g.recipes()
	files, err := rs.Files()
	if err != nil {
		return err
	}
	// Resolved fp→container homes, shared across recipes to bound donor
	// scans.
	resolved := make(map[fingerprint.FP]container.ID, len(moved))
	for fp, id := range moved {
		resolved[fp] = id
	}
	for _, f := range files {
		// Exclusive per-file: recipes are rewritten in place and must not
		// race a backup appending a version or a restore resolving one.
		g.repo.Files.Lock(f)
		if err := g.scrubFixFile(stats, f, quarantined, resolved); err != nil {
			g.repo.Files.Unlock(f)
			return err
		}
		g.repo.Files.Unlock(f)
	}
	return nil
}

// scrubFixFile rewrites one file's recipes away from quarantined
// containers; the caller holds the file's exclusive lock.
func (g *GNode) scrubFixFile(stats *ScrubStats, f string, quarantined map[container.ID]bool,
	resolved map[fingerprint.FP]container.ID) error {

	rs := g.recipes()
	versions, err := rs.Versions(f)
	if err != nil {
		return err
	}
	for _, v := range versions {
		r, err := rs.GetRecipe(f, v)
		if err != nil {
			if errors.Is(err, oss.ErrNotFound) {
				continue
			}
			return err
		}
		changed := false
		r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
			if !quarantined[rec.Container] {
				return true
			}
			nid, ok := resolved[rec.FP]
			if !ok {
				if nid, ok = g.intactOwner(rec.FP, quarantined); ok {
					resolved[rec.FP] = nid
				}
			}
			if ok {
				rec.Container = nid
				changed = true
			}
			return true
		})
		if !changed {
			continue
		}
		if _, err := rs.PutRecipe(r); err != nil {
			return err
		}
		info, err := rs.GetInfo(f, v)
		if err == nil {
			refs := make(map[container.ID]bool)
			r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
				refs[rec.Container] = true
				return true
			})
			info.Containers = info.Containers[:0]
			for id := range refs {
				info.Containers = append(info.Containers, id)
			}
			sort.Slice(info.Containers, func(a, b int) bool { return info.Containers[a] < info.Containers[b] })
			if err := rs.PutInfo(info); err != nil {
				return err
			}
		}
		stats.RecipesRewritten++
	}
	return nil
}
