package gnode

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/globalindex"
	"slimstore/internal/oss"
	"slimstore/internal/recipe"
)

// ScrubStats reports one integrity scrub of the container namespace.
type ScrubStats struct {
	ContainersScanned int
	ChunksVerified    int
	CorruptChunks     int // live chunks failing their checksum
	RepairedChunks    int // corrupt chunks restored from intact copies
	RebuiltContainers int // containers rewritten in place (repair or rot cleanup)
	FooterRepairs     int // dead-region rot cleared by rebuilding
	RecipesRewritten  int // recipes repointed away from quarantined containers
	IndexRepointed    int // global-index entries moved to surviving copies
	IndexPurged       int // global-index entries for unrecoverable chunks
	JournalReplayed   int

	// Redundancy-tier counters (zero when the EC tier is off). The EC
	// pass runs before chunk verification: every container stripe is
	// checked across all K+M backends and degraded-but-recoverable
	// stripes are rebuilt to full redundancy.
	ECStripesChecked  int // striped objects checked across all backends
	ECDegradedStripes int // stripes missing at least one healthy shard
	ECRepairedShards  int // shards reconstructed and rewritten
	ECRepairFailures  int // stripes whose rewrite failed (backend still down)
	ECUnrecoverable   int // stripes below K shards (left to quarantine/salvage)

	// Quarantined lists containers moved out of the live namespace:
	// unreadable metadata, missing payload, or live corruption with no
	// donor for every damaged chunk.
	Quarantined []container.ID
	// Lost lists fingerprints with no intact copy anywhere. Restores
	// needing them fail loudly; everything else remains restorable.
	Lost []fingerprint.FP
}

// Clean reports whether the scrub left the repo fully intact: nothing
// quarantined, nothing lost.
func (s *ScrubStats) Clean() bool { return len(s.Quarantined) == 0 && len(s.Lost) == 0 }

// Scrub verifies every container against its checksums and repairs what
// it can (paper-level goal: detect silent OSS corruption before a restore
// needs the bytes). Per container:
//
//   - live chunks all verify, footer stale → dead-region rot; the
//     container is rebuilt in place, dropping the rotten dead bytes.
//   - some live chunks corrupt, every one has an intact copy (same
//     fingerprint) in another container → rebuilt in place with donor
//     bytes.
//   - otherwise → intact chunks are salvaged into fresh containers and
//     the damaged container is quarantined; chunks with no intact copy
//     anywhere are reported Lost.
//
// Afterwards the global index is repointed at surviving copies (entries
// for lost chunks are purged so restores fail loudly instead of chasing
// dangling references) and recipes referencing quarantined containers are
// rewritten. Scrub is re-runnable: a crash mid-scrub leaves state a
// subsequent Scrub (or FullSweep) finishes cleaning; in-place rebuilds go
// through the intent journal.
//
// The expensive part — reading and checksumming every payload — fans out
// across the maintenance worker pool OUTSIDE maintMu at a sampled
// maintenance epoch; the repair step then takes the lock, validates the
// epoch, and applies the verdicts serially in container-ID order, so any
// worker width produces identical repairs, stats, and final state
// (DESIGN.md §8).
func (g *GNode) Scrub() (*ScrubStats, error) {
	// Journal replay mutates shared state; do it under the lock, before
	// the verification pass reads anything.
	g.maintMu.Lock()
	replayed, err := g.repo.ReplayJournal()
	g.maintMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("gnode: scrub: %w", err)
	}

	// Redundancy-tier repair first: rebuilding degraded stripes to full
	// K+M redundancy lets the chunk-level verification below read through
	// clean stripes instead of paying degraded reconstructions, and
	// restores full fault tolerance before anything else runs.
	ecStats, err := g.ecRepair()
	if err != nil {
		return nil, fmt.Errorf("gnode: scrub: %w", err)
	}

	const maxOptimistic = 2
	for attempt := 0; ; attempt++ {
		locked := attempt >= maxOptimistic
		if locked {
			g.maintMu.Lock()
		}
		epoch := g.repo.MaintEpoch()
		sv, err := g.scrubVerify()
		if err != nil {
			if locked {
				g.maintMu.Unlock()
			}
			return nil, fmt.Errorf("gnode: scrub: %w", err)
		}
		if !locked {
			g.maintMu.Lock()
			if g.repo.MaintEpoch() != epoch {
				g.maintMu.Unlock()
				continue // a maintenance commit raced the verify; redo it
			}
		}
		stats, err := g.scrubRepair(sv)
		g.maintMu.Unlock()
		if err != nil {
			return nil, err
		}
		stats.JournalReplayed = replayed
		stats.ECStripesChecked = ecStats.checked
		stats.ECDegradedStripes = ecStats.degraded
		stats.ECRepairedShards = ecStats.repairedShards
		stats.ECRepairFailures = ecStats.repairFailed
		stats.ECUnrecoverable = ecStats.unrecoverable
		return stats, nil
	}
}

// ecRepairStats aggregates the redundancy-tier pass.
type ecRepairStats struct {
	checked, degraded, repairedShards, repairFailed, unrecoverable int
}

// ecRepair is the redundancy-tier pass of Scrub (DESIGN.md §12): every
// container stripe is checked across all K+M backends, and degraded but
// recoverable stripes are rebuilt to full redundancy. Each repair runs
// under the container's stripe write lock (waiting out restores that
// pinned it) and rewrites only missing, rotted, or stale shards with
// byte-identical reconstructions — no logical change, so no journal
// record or maintenance-epoch bump is needed, and a crash mid-repair
// simply leaves fewer shards for the next scrub to rewrite. Stripes
// below K healthy shards are counted unrecoverable and left to the
// chunk-level quarantine/salvage machinery.
func (g *GNode) ecRepair() (*ecRepairStats, error) {
	st := &ecRepairStats{}
	ecs := g.repo.ECFor(g.acct)
	if ecs == nil {
		return st, nil
	}
	cs := g.containers()
	ids, err := cs.List()
	if err != nil {
		return nil, fmt.Errorf("ec repair: %w", err)
	}
	var mu sync.Mutex
	err = g.forEach(len(ids), func(i int) error {
		id := ids[i]
		for _, key := range []string{container.DataKey(id), container.MetaKey(id)} {
			h, err := ecs.Check(key)
			if err != nil {
				if errors.Is(err, oss.ErrNotFound) {
					continue // half never written or already swept
				}
				return fmt.Errorf("ec check %s: %w", key, err)
			}
			mu.Lock()
			st.checked++
			mu.Unlock()
			if len(h.Bad) == 0 {
				continue
			}
			if !h.Recoverable {
				mu.Lock()
				st.degraded++
				st.unrecoverable++
				mu.Unlock()
				continue
			}
			g.repo.CLocks.Lock(id)
			n, rerr := ecs.Repair(key)
			g.repo.CLocks.Unlock(id)
			mu.Lock()
			st.degraded++
			st.repairedShards += n
			if rerr != nil {
				// Rewrite failed (backend still down): the stripe stays
				// degraded for the next scrub — not fatal.
				st.repairFailed++
			}
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// scrubVerdict is one container's verification result.
type scrubVerdict struct {
	meta *container.Meta // from ReadMeta; nil → metadata unreadable
	// rawMeta is the payload's own metadata copy (what repairs rebuild
	// from); the payload itself is released unless repair needs it.
	rawMeta  *container.Meta
	c        *container.Container // retained only when chunks need repairing
	footerOK bool
	readErr  bool // metadata decodes but the payload is unreadable
	live     int  // live chunks checksummed
	corrupt  []int
}

// scrubView is the read-only output of the parallel verification pass.
type scrubView struct {
	ids      []container.ID
	verdicts []scrubVerdict
	// owners (fingerprint → containers holding a live copy, in container
	// order) drives donor and surviving-owner lookups without rescanning
	// the namespace.
	owners map[fingerprint.FP][]container.ID
}

// scrubVerify reads and checksums every container across the worker
// pool. Each worker writes only its own verdict slot; the owners map is
// assembled afterwards in deterministic container order.
func (g *GNode) scrubVerify() (*scrubView, error) {
	cs := g.containers()
	ids, err := cs.List()
	if err != nil {
		return nil, err
	}
	sv := &scrubView{ids: ids, verdicts: make([]scrubVerdict, len(ids))}
	err = g.forEach(len(ids), func(i int) error {
		v := &sv.verdicts[i]
		m, err := cs.ReadMeta(ids[i])
		if err != nil {
			return nil // metadata unreadable → quarantine verdict
		}
		v.meta = m
		c, footerOK, err := cs.ReadRaw(ids[i])
		if err != nil {
			v.readErr = true
			return nil
		}
		v.footerOK = footerOK
		for j := range c.Meta.Chunks {
			cm := &c.Meta.Chunks[j]
			if cm.Deleted {
				continue
			}
			v.live++
			if c.VerifyChunk(cm) != nil {
				v.corrupt = append(v.corrupt, j)
			}
		}
		if len(v.corrupt) > 0 {
			v.c = c // the repair step needs the payload
		} else {
			// Keep only the metadata (rot cleanup rebuilds from it);
			// the payload — the bulk of the memory — is dropped here.
			cp := c.Meta
			v.rawMeta = &cp
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sv.owners = make(map[fingerprint.FP][]container.ID)
	for i := range sv.verdicts {
		m := sv.verdicts[i].meta
		if m == nil {
			continue
		}
		for j := range m.Chunks {
			if cm := &m.Chunks[j]; !cm.Deleted {
				sv.owners[cm.FP] = append(sv.owners[cm.FP], sv.ids[i])
			}
		}
	}
	return sv, nil
}

// scrubRepair applies the verdicts under maintMu, in container-ID order:
// quarantines, donor repairs, salvages, then the index and recipe fixes.
// Only the independent rot-cleanup rewrites fan back out to the pool.
func (g *GNode) scrubRepair(sv *scrubView) (*ScrubStats, error) {
	stats := &ScrubStats{}
	cs := g.containers()

	bad := make(map[container.ID]bool)
	for i := range sv.verdicts {
		if sv.verdicts[i].meta == nil {
			bad[sv.ids[i]] = true
		}
	}

	quarantined := make(map[container.ID]bool)
	moved := make(map[fingerprint.FP]container.ID) // salvaged/repaired relocations
	lost := make(map[fingerprint.FP]bool)
	builder := container.NewBuilder(cs)

	quarantine := func(id container.ID) error {
		// Write side of the container lock: wait out restores that pinned
		// this container before its damage was known.
		g.repo.CLocks.Lock(id)
		err := cs.Quarantine(id)
		g.repo.CLocks.Unlock(id)
		if err != nil {
			return fmt.Errorf("gnode: scrub: %w", err)
		}
		quarantined[id] = true
		stats.Quarantined = append(stats.Quarantined, id)
		return nil
	}

	// donor returns verified bytes for fp from any intact container other
	// than exclude.
	donor := func(fp fingerprint.FP, exclude container.ID) ([]byte, bool) {
		for _, oid := range sv.owners[fp] {
			if oid == exclude || bad[oid] || quarantined[oid] {
				continue
			}
			if data, err := cs.ReadChunk(oid, fp); err == nil {
				return data, true
			}
		}
		return nil, false
	}

	var rotOnly []int // verdict indices needing a dead-region rot rebuild
	for i, id := range sv.ids {
		v := &sv.verdicts[i]
		stats.ContainersScanned++
		if v.meta == nil || v.readErr {
			if err := quarantine(id); err != nil {
				return nil, err
			}
			continue
		}
		stats.ChunksVerified += v.live

		if len(v.corrupt) == 0 {
			if !v.footerOK && v.rawMeta.Checksummed() {
				rotOnly = append(rotOnly, i)
			}
			continue
		}
		stats.CorruptChunks += len(v.corrupt)

		c := v.c
		corrupt := make([]*container.ChunkMeta, len(v.corrupt))
		corruptSet := make(map[int]bool, len(v.corrupt))
		for k, j := range v.corrupt {
			corrupt[k] = &c.Meta.Chunks[j]
			corruptSet[j] = true
		}

		repaired := make(map[fingerprint.FP][]byte, len(corrupt))
		for _, cm := range corrupt {
			if data, ok := donor(cm.FP, id); ok {
				repaired[cm.FP] = data
			}
		}

		if len(repaired) == len(corrupt) {
			// Full repair: rebuild in place from local intact bytes plus
			// donor copies; recipes and the index stay valid as-is.
			nc := &container.Container{Meta: container.Meta{ID: id}}
			for j := range c.Meta.Chunks {
				cm := &c.Meta.Chunks[j]
				if cm.Deleted {
					continue
				}
				data, ok := repaired[cm.FP]
				if !ok {
					var err error
					if data, err = c.ChunkData(cm); err != nil {
						return nil, err
					}
				}
				nc.Meta.Chunks = append(nc.Meta.Chunks, container.ChunkMeta{
					FP:     cm.FP,
					Offset: uint32(len(nc.Data)),
					Size:   uint32(len(data)),
				})
				nc.Data = append(nc.Data, data...)
			}
			if err := g.repo.WriteRebuilt(cs, nc); err != nil {
				return nil, fmt.Errorf("gnode: scrub repair %s: %w", id, err)
			}
			stats.RepairedChunks += len(repaired)
			stats.RebuiltContainers++
			continue
		}

		// Partial damage with missing donors: salvage what verifies into
		// fresh containers, quarantine the rest.
		for j := range c.Meta.Chunks {
			cm := &c.Meta.Chunks[j]
			if cm.Deleted {
				continue
			}
			data, ok := repaired[cm.FP]
			if ok {
				stats.RepairedChunks++
			} else {
				if corruptSet[j] {
					lost[cm.FP] = true
					continue
				}
				var err error
				if data, err = c.ChunkData(cm); err != nil {
					return nil, err
				}
			}
			nid, err := builder.Add(cm.FP, data)
			if err != nil {
				return nil, err
			}
			moved[cm.FP] = nid
		}
		if err := quarantine(id); err != nil {
			return nil, err
		}
	}
	if err := builder.Flush(); err != nil {
		return nil, err
	}

	// Dead-region rot cleanup: each rebuild touches one container under
	// its own stripe lock and journal record — independent work, fanned
	// out across the pool.
	if err := g.forEach(len(rotOnly), func(k int) error {
		v := &sv.verdicts[rotOnly[k]]
		if _, err := g.repo.RewriteContainer(cs, v.rawMeta); err != nil {
			return fmt.Errorf("gnode: scrub rot cleanup %s: %w", v.rawMeta.ID, err)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	stats.FooterRepairs += len(rotOnly)
	stats.RebuiltContainers += len(rotOnly)

	// A fingerprint is only lost if no intact copy survived anywhere.
	for fp := range lost {
		if _, ok := moved[fp]; ok {
			delete(lost, fp)
			continue
		}
		if _, ok := donor(fp, container.Invalid); ok {
			delete(lost, fp)
		}
	}

	if len(quarantined) > 0 {
		if err := g.scrubFixIndex(stats, sv, bad, quarantined, moved, lost); err != nil {
			return nil, err
		}
		if err := g.scrubFixRecipes(stats, sv, bad, quarantined, moved); err != nil {
			return nil, err
		}
	}
	for fp := range lost {
		stats.Lost = append(stats.Lost, fp)
	}
	sort.Slice(stats.Lost, func(a, b int) bool { return stats.Lost[a].String() < stats.Lost[b].String() })
	sort.Slice(stats.Quarantined, func(a, b int) bool { return stats.Quarantined[a] < stats.Quarantined[b] })
	if err := g.repo.Global.Flush(); err != nil {
		return nil, err
	}
	if stats.RebuiltContainers > 0 || len(stats.Quarantined) > 0 || len(moved) > 0 ||
		stats.IndexRepointed > 0 || stats.IndexPurged > 0 || stats.RecipesRewritten > 0 {
		g.repo.BumpMaintEpoch()
	}
	return stats, nil
}

// scrubFixIndex repoints global-index entries that reference quarantined
// containers at surviving copies, and purges entries for lost chunks so
// restore redirects fail loudly instead of dangling. Repoints are applied
// as one group-committed batch.
func (g *GNode) scrubFixIndex(stats *ScrubStats, sv *scrubView, bad, quarantined map[container.ID]bool,
	moved map[fingerprint.FP]container.ID, lost map[fingerprint.FP]bool) error {

	var repoints []globalindex.Entry
	var purges []fingerprint.FP
	err := g.repo.Global.Scan(func(fp fingerprint.FP, id container.ID) bool {
		if !quarantined[id] {
			return true
		}
		if nid, ok := moved[fp]; ok {
			repoints = append(repoints, globalindex.Entry{FP: fp, ID: nid})
		} else if nid, ok := g.intactOwner(fp, sv, bad, quarantined); ok {
			repoints = append(repoints, globalindex.Entry{FP: fp, ID: nid})
		} else {
			purges = append(purges, fp)
			lost[fp] = true
		}
		return true
	})
	if err != nil {
		return err
	}
	if err := g.repo.Global.PutBatch(repoints); err != nil {
		return err
	}
	stats.IndexRepointed += len(repoints)
	for _, fp := range purges {
		if err := g.repo.Global.Delete(fp); err != nil {
			return err
		}
		stats.IndexPurged++
	}
	return nil
}

// intactOwner finds a non-quarantined container holding a live, verified
// copy of fp, consulting the owners map the verification pass built
// instead of rescanning the namespace.
func (g *GNode) intactOwner(fp fingerprint.FP, sv *scrubView, bad, quarantined map[container.ID]bool) (container.ID, bool) {
	cs := g.containers()
	for _, id := range sv.owners[fp] {
		if bad[id] || quarantined[id] {
			continue
		}
		if _, err := cs.ReadChunk(id, fp); err == nil {
			return id, true
		}
	}
	return container.Invalid, false
}

// scrubFixRecipes rewrites recipes (and their catalog container lists)
// that reference quarantined containers, pointing each record at the
// chunk's surviving home. Records whose chunks are lost keep their stale
// reference — the restore path reports them loudly.
func (g *GNode) scrubFixRecipes(stats *ScrubStats, sv *scrubView, bad, quarantined map[container.ID]bool,
	moved map[fingerprint.FP]container.ID) error {

	rs := g.recipes()
	files, err := rs.Files()
	if err != nil {
		return err
	}
	// Resolved fp→container homes, shared across recipes to bound donor
	// scans.
	resolved := make(map[fingerprint.FP]container.ID, len(moved))
	for fp, id := range moved {
		resolved[fp] = id
	}
	for _, f := range files {
		// Exclusive per-file: recipes are rewritten in place and must not
		// race a backup appending a version or a restore resolving one.
		g.repo.Files.Lock(f)
		if err := g.scrubFixFile(stats, f, sv, bad, quarantined, resolved); err != nil {
			g.repo.Files.Unlock(f)
			return err
		}
		g.repo.Files.Unlock(f)
	}
	return nil
}

// scrubFixFile rewrites one file's recipes away from quarantined
// containers; the caller holds the file's exclusive lock.
func (g *GNode) scrubFixFile(stats *ScrubStats, f string, sv *scrubView, bad, quarantined map[container.ID]bool,
	resolved map[fingerprint.FP]container.ID) error {

	rs := g.recipes()
	versions, err := rs.Versions(f)
	if err != nil {
		return err
	}
	for _, v := range versions {
		r, err := rs.GetRecipe(f, v)
		if err != nil {
			if errors.Is(err, oss.ErrNotFound) {
				continue
			}
			return err
		}
		changed := false
		r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
			if !quarantined[rec.Container] {
				return true
			}
			nid, ok := resolved[rec.FP]
			if !ok {
				if nid, ok = g.intactOwner(rec.FP, sv, bad, quarantined); ok {
					resolved[rec.FP] = nid
				}
			}
			if ok {
				rec.Container = nid
				changed = true
			}
			return true
		})
		if !changed {
			continue
		}
		if _, err := rs.PutRecipe(r); err != nil {
			return err
		}
		info, err := rs.GetInfo(f, v)
		if err == nil {
			refs := make(map[container.ID]bool)
			r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
				refs[rec.Container] = true
				return true
			})
			info.Containers = info.Containers[:0]
			for id := range refs {
				info.Containers = append(info.Containers, id)
			}
			sort.Slice(info.Containers, func(a, b int) bool { return info.Containers[a] < info.Containers[b] })
			if err := rs.PutInfo(info); err != nil {
				return err
			}
		}
		stats.RecipesRewritten++
	}
	return nil
}
