package gnode

import (
	"bytes"
	"math/rand"
	"testing"

	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.ChunkParams = chunker.ParamsForAvg(4 << 10)
	cfg.ContainerCapacity = 128 << 10
	cfg.SegmentChunks = 64
	cfg.SampleRatio = 8
	cfg.ChunkMerging = false
	cfg.CacheMemBytes = 16 << 20
	cfg.CacheDiskBytes = 64 << 20
	cfg.LAWChunks = 256
	cfg.PrefetchThreads = 0
	return cfg
}

func setup(t *testing.T, cfg core.Config) (*lnode.LNode, *GNode, *core.Repo, *oss.Mem) {
	t.Helper()
	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return lnode.New(repo, "l0"), New(repo), repo, mem
}

func genData(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func restoreBytes(t *testing.T, n *lnode.LNode, fileID string, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := n.Restore(fileID, version, &buf); err != nil {
		t.Fatalf("restore %s v%d: %v", fileID, version, err)
	}
	return buf.Bytes()
}

func TestReverseDedupFindsMissedDuplicates(t *testing.T) {
	cfg := testConfig()
	cfg.SimilarityMinScore = 1.1 // force the L-node to miss cross-file dups
	ln, gn, _, _ := setup(t, cfg)

	shared := genData(1, 1<<20)
	stA, err := ln.Backup("a", shared)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gn.ReverseDedup(stA.NewContainers); err != nil {
		t.Fatal(err)
	}

	stB, err := ln.Backup("b", shared)
	if err != nil {
		t.Fatal(err)
	}
	if stB.DuplicateBytes != 0 {
		t.Fatalf("L-node should have missed the duplicates, found %d bytes", stB.DuplicateBytes)
	}
	rd, err := gn.ReverseDedup(stB.NewContainers)
	if err != nil {
		t.Fatal(err)
	}
	if rd.DuplicatesRemoved == 0 {
		t.Fatalf("reverse dedup found nothing: %+v", rd)
	}
	if rd.BytesDeduplicated < int64(len(shared))/2 {
		t.Fatalf("reverse dedup reclaimed only %d of %d bytes", rd.BytesDeduplicated, len(shared))
	}
	// Old containers (file a's) crossed the stale threshold: rewritten.
	if rd.ContainersRewritten == 0 || rd.BytesReclaimed == 0 {
		t.Fatalf("no physical rewrite happened: %+v", rd)
	}

	// Both files restore byte-identically — a's reads follow redirects.
	if !bytes.Equal(restoreBytes(t, ln, "a", 0), shared) {
		t.Fatal("file a corrupt after reverse dedup")
	}
	if !bytes.Equal(restoreBytes(t, ln, "b", 0), shared) {
		t.Fatal("file b corrupt after reverse dedup")
	}
	var buf bytes.Buffer
	rs, err := ln.Restore("a", 0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Redirects == 0 {
		t.Fatal("old version restored without redirects — reverse dedup had no effect?")
	}
}

func TestReverseDedupIdempotent(t *testing.T) {
	cfg := testConfig()
	ln, gn, _, _ := setup(t, cfg)
	st, err := ln.Backup("f", genData(2, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := gn.ReverseDedup(st.NewContainers)
	if err != nil {
		t.Fatal(err)
	}
	if r1.IndexInserts == 0 {
		t.Fatal("first pass registered nothing")
	}
	r2, err := gn.ReverseDedup(st.NewContainers)
	if err != nil {
		t.Fatal(err)
	}
	if r2.DuplicatesRemoved != 0 || r2.IndexInserts != 0 {
		t.Fatalf("second pass was not a no-op: %+v", r2)
	}
}

// sparseScenario backs up v0 and a v1 that keeps only a thin slice of v0's
// content, so v0's containers become sparse from v1's point of view.
func sparseScenario(t *testing.T, cfg core.Config) (*lnode.LNode, *GNode, []byte, []byte, *lnode.BackupStats) {
	t.Helper()
	ln, gn, _, _ := setup(t, cfg)
	v0 := genData(3, 2<<20)
	st0, err := ln.Backup("f", v0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gn.ReverseDedup(st0.NewContainers); err != nil {
		t.Fatal(err)
	}
	// v1: mostly new data, with small slices of v0 scattered through it.
	// Slices are large enough (32 KiB) for CDC to resynchronise inside
	// them, so a few interior chunks dedup against each of v0's
	// containers — exactly the sparse-container pattern of §V-B.
	var v1 bytes.Buffer
	fresh := genData(4, 2<<20)
	const step = 128 << 10
	const slice = 32 << 10
	i := 0
	for off := 0; off+step <= len(fresh); off += step {
		v1.Write(fresh[off : off+step])
		src := (i * step) % (len(v0) - slice)
		v1.Write(v0[src : src+slice])
		i++
	}
	st1, err := ln.Backup("f", v1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gn.ReverseDedup(st1.NewContainers); err != nil {
		t.Fatal(err)
	}
	return ln, gn, v0, v1.Bytes(), st1
}

func TestSparseContainerCompaction(t *testing.T) {
	ln, gn, v0, v1, st1 := sparseScenario(t, testConfig())
	if len(st1.SparseContainers) == 0 {
		t.Fatal("no sparse containers detected in the sparse scenario")
	}

	// Read amplification before compaction.
	var buf bytes.Buffer
	before, err := ln.Restore("f", 1, &buf)
	if err != nil {
		t.Fatal(err)
	}

	scc, err := gn.CompactSparse("f", 1, st1.SparseContainers)
	if err != nil {
		t.Fatal(err)
	}
	if scc.ChunksMoved == 0 || len(scc.NewContainers) == 0 {
		t.Fatalf("compaction moved nothing: %+v", scc)
	}

	buf.Reset()
	after, err := ln.Restore("f", 1, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), v1) {
		t.Fatal("v1 corrupt after SCC")
	}
	if after.Cache.ContainersRead >= before.Cache.ContainersRead {
		t.Fatalf("SCC did not reduce container reads: %d -> %d",
			before.Cache.ContainersRead, after.Cache.ContainersRead)
	}

	// The old version still restores via global-index redirects.
	if !bytes.Equal(restoreBytes(t, ln, "f", 0), v0) {
		t.Fatal("v0 corrupt after SCC")
	}
}

func TestSCCNoSparse(t *testing.T) {
	_, gn, _, _, _ := func() (*lnode.LNode, *GNode, *core.Repo, *oss.Mem, int) {
		ln, gn, repo, mem := setup(t, testConfig())
		if _, err := ln.Backup("f", genData(5, 512<<10)); err != nil {
			t.Fatal(err)
		}
		return ln, gn, repo, mem, 0
	}()
	st, err := gn.CompactSparse("f", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksMoved != 0 {
		t.Fatalf("compaction with no sparse containers moved chunks: %+v", st)
	}
}

func TestVersionCollection(t *testing.T) {
	cfg := testConfig()
	ln, gn, repo, mem := setup(t, cfg)

	// Three versions with substantial drift so old containers become
	// garbage candidates.
	var datas [][]byte
	d := genData(6, 1<<20)
	for v := 0; v < 3; v++ {
		datas = append(datas, d)
		st, err := ln.Backup("f", d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gn.ReverseDedup(st.NewContainers); err != nil {
			t.Fatal(err)
		}
		// Next version: replace the first half entirely.
		nd := append([]byte{}, d...)
		copy(nd[:len(nd)/2], genData(int64(100+v), len(nd)/2))
		d = nd
	}

	sizeBefore := mem.BytesWithPrefix("containers/")
	gc, err := gn.DeleteVersion("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if gc.GarbageCandidates == 0 || gc.ContainersCollected == 0 {
		t.Fatalf("nothing collected: %+v", gc)
	}
	sizeAfter := mem.BytesWithPrefix("containers/")
	if sizeAfter >= sizeBefore {
		t.Fatalf("container space did not shrink: %d -> %d", sizeBefore, sizeAfter)
	}

	// Catalog and indexes no longer list v0.
	if vs, _ := repo.Recipes.Versions("f"); len(vs) != 2 || vs[0] != 1 {
		t.Fatalf("versions after delete = %v", vs)
	}
	if got := repo.SimIndex.VersionsOf("f"); len(got) != 2 {
		t.Fatalf("simindex versions after delete = %v", got)
	}

	// Remaining versions still restore byte-identically.
	for v := 1; v < 3; v++ {
		if !bytes.Equal(restoreBytes(t, ln, "f", v), datas[v]) {
			t.Fatalf("version %d corrupt after GC", v)
		}
	}
}

func TestDeleteOutOfOrderKeepsSharedContainers(t *testing.T) {
	cfg := testConfig()
	ln, gn, _, _ := setup(t, cfg)
	base := genData(7, 1<<20)
	for v := 0; v < 3; v++ {
		d := append([]byte{}, base...)
		copy(d[:64], genData(int64(200+v), 64))
		if _, err := ln.Backup("f", d); err != nil {
			t.Fatal(err)
		}
	}
	// Delete the middle version: its containers are shared with v0/v2 and
	// must survive the sweep's live check.
	if _, err := gn.DeleteVersion("f", 1); err != nil {
		t.Fatal(err)
	}
	d0 := append([]byte{}, base...)
	copy(d0[:64], genData(200, 64))
	if !bytes.Equal(restoreBytes(t, ln, "f", 0), d0) {
		t.Fatal("v0 corrupt after deleting v1")
	}
	d2 := append([]byte{}, base...)
	copy(d2[:64], genData(202, 64))
	if !bytes.Equal(restoreBytes(t, ln, "f", 2), d2) {
		t.Fatal("v2 corrupt after deleting v1")
	}
}

func TestFullSweep(t *testing.T) {
	cfg := testConfig()
	ln, gn, repo, _ := setup(t, cfg)
	st, err := ln.Backup("f", genData(8, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gn.ReverseDedup(st.NewContainers); err != nil {
		t.Fatal(err)
	}

	// Nothing should be swept on a healthy repo.
	audit, err := gn.FullSweep()
	if err != nil {
		t.Fatal(err)
	}
	if audit.ContainersSwept != 0 {
		t.Fatalf("healthy repo lost %d containers to FullSweep", audit.ContainersSwept)
	}

	// Orphan a container (simulated crash between container write and
	// recipe write) and verify the audit reclaims it.
	cs := repo.Containers
	orphan := genData(9, 4096)
	oc := &container.Container{
		Meta: container.Meta{ID: cs.AllocateID(), DataSize: uint32(len(orphan))},
		Data: orphan,
	}
	oc.Meta.Chunks = []container.ChunkMeta{{
		FP: fingerprint.OfBytes(orphan), Offset: 0, Size: uint32(len(orphan)),
	}}
	if err := cs.Write(oc); err != nil {
		t.Fatal(err)
	}
	audit, err = gn.FullSweep()
	if err != nil {
		t.Fatal(err)
	}
	if audit.ContainersSwept != 1 {
		t.Fatalf("audit swept %d containers, want 1", audit.ContainersSwept)
	}
	if !bytes.Equal(restoreBytes(t, ln, "f", 0), genData(8, 1<<20)) {
		t.Fatal("file corrupt after FullSweep")
	}
}

func TestSCCIdempotent(t *testing.T) {
	ln, gn, _, v1, st1 := sparseScenario(t, testConfig())
	_ = v1
	if len(st1.SparseContainers) == 0 {
		t.Skip("no sparse containers at this scale")
	}
	first, err := gn.CompactSparse("f", 1, st1.SparseContainers)
	if err != nil {
		t.Fatal(err)
	}
	// Re-running the same compaction must move nothing further.
	second, err := gn.CompactSparse("f", 1, st1.SparseContainers)
	if err != nil {
		t.Fatal(err)
	}
	if second.ChunksMoved != 0 {
		t.Fatalf("second SCC pass moved %d chunks (first: %d)", second.ChunksMoved, first.ChunksMoved)
	}
	if !bytes.Equal(restoreBytes(t, ln, "f", 1), v1) {
		t.Fatal("v1 corrupt after repeated SCC")
	}
}

func TestReverseDedupRewriteThreshold(t *testing.T) {
	// With a threshold of ~1.0 the stale containers are never rewritten:
	// duplicates are only marked, so physical space stays put while the
	// metadata records the logical reclamation.
	cfg := testConfig()
	cfg.SimilarityMinScore = 1.1
	cfg.RewriteStaleThreshold = 0.99
	ln, gn, _, mem := setup(t, cfg)

	dataA := genData(95, 1<<20)
	stA, err := ln.Backup("a", dataA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gn.ReverseDedup(stA.NewContainers); err != nil {
		t.Fatal(err)
	}
	before := mem.BytesWithPrefix("containers/")
	// b duplicates only every second 64 KiB block of a, so a's containers
	// end up ~50% stale — below the 0.99 rewrite threshold.
	dataB := append([]byte{}, dataA...)
	for off := 0; off+(128<<10) <= len(dataB); off += 128 << 10 {
		copy(dataB[off:off+(64<<10)], genData(int64(9000+off), 64<<10))
	}
	stB, err := ln.Backup("b", dataB)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := gn.ReverseDedup(stB.NewContainers)
	if err != nil {
		t.Fatal(err)
	}
	if rd.DuplicatesRemoved == 0 {
		t.Fatal("no duplicates found")
	}
	// Only a fully-duplicated container may cross a 0.99 threshold; with
	// 50% overlap that is at most the short tail container.
	if rd.ContainersRewritten > 1 {
		t.Fatalf("rewrites happened despite 0.99 threshold: %+v", rd)
	}
	// Physical space grew by b's copy (marks only, no rewrite).
	after := mem.BytesWithPrefix("containers/")
	if after <= before {
		t.Fatalf("expected space growth without rewrites: %d -> %d", before, after)
	}
	// Both restore correctly regardless.
	if !bytes.Equal(restoreBytes(t, ln, "a", 0), dataA) ||
		!bytes.Equal(restoreBytes(t, ln, "b", 0), dataB) {
		t.Fatal("restore corrupt under mark-only reverse dedup")
	}
}

func TestDeleteVersionMissing(t *testing.T) {
	_, gn, _, _ := setup(t, testConfig())
	if _, err := gn.DeleteVersion("ghost", 3); err == nil {
		t.Fatal("deleting a missing version did not error")
	}
}
