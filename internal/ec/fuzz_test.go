package ec

import (
	"bytes"
	"testing"
)

// FuzzECDecode throws arbitrary bytes at the shard-envelope decoder: it
// must never panic, and any envelope it accepts must re-encode to the
// exact input bytes (decode is a retraction of encode — the property that
// keeps repaired shards byte-identical to the originals).
func FuzzECDecode(f *testing.F) {
	h, payload := goldenShard()
	f.Add([]byte{})
	f.Add(EncodeShard(h, payload))
	f.Add(EncodeShard(ShardHeader{StripeID: 1, Index: 0, K: 1, M: 0}, []byte{0}))
	trunc := EncodeShard(h, payload)
	f.Add(trunc[:HeaderSize])
	flipped := EncodeShard(h, payload)
	flipped[HeaderSize] ^= 0xFF
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, b []byte) {
		hdr, p, err := DecodeShard(b)
		if err != nil {
			return
		}
		// Accepted envelopes are exactly canonical: geometry plausible,
		// re-encode reproduces the input.
		if hdr.K < 1 || hdr.K+hdr.M > 256 || hdr.Index >= hdr.K+hdr.M || hdr.ObjLen < 0 {
			t.Fatalf("decoder accepted implausible geometry %+v", hdr)
		}
		again := EncodeShard(hdr, p)
		if !bytes.Equal(again, b) {
			t.Fatalf("accepted envelope is not canonical: re-encode differs at byte %d", firstDiff(again, b))
		}
	})
}
