package ec

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"

	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

// Store is the erasure-coded redundancy tier: an oss.Store that stripes
// every object into K data + M parity shards across K+M fault-isolated
// backends. Reads reconstruct transparently while at most M shards are
// unavailable (whole-backend outage, missing object, or checksum-failed
// envelope), charging reconstruction CPU to the job's account; more than
// M losses surface loudly as ErrInsufficient. Views from WithAccount
// share the backends and stats, mirroring oss.Metered.
type Store struct {
	codec    *Codec
	backends []*oss.Backend
	cpu      simclock.Costs    // CPU-side cost model (reconstruction)
	acct     *simclock.Account // may be nil (unmetered view)
	sh       *shared
}

// shared is the per-tier state common to every account view.
type shared struct {
	mu    sync.Mutex
	stats Stats
}

// Stats counts tier activity since the store was built. Counters are
// aggregated across all account views.
type Stats struct {
	StripesWritten      int64 // Put calls that wrote a full stripe
	ShardWrites         int64 // individual shard objects written (incl. repairs)
	Reads               int64 // Get calls served
	DegradedReads       int64 // Gets that needed reconstruction
	ReconstructedShards int64 // shards rebuilt by reads and repairs
	ShardFailures       int64 // shard reads lost to outage, rot, or staleness
	RangedReads         int64 // GetRange calls served from shard sub-ranges
	RangedFallbacks     int64 // GetRanges that fell back to full reconstruction
	RepairedShards      int64 // shards rewritten to a backend by Repair
}

// NewStore builds the tier over len(backends) = k+m backends. cpu supplies
// the reconstruction cost model (Costs.ECReconstructPerByte).
func NewStore(backends []*oss.Backend, k, m int, cpu simclock.Costs) (*Store, error) {
	codec, err := NewCodec(k, m)
	if err != nil {
		return nil, err
	}
	if len(backends) != k+m {
		return nil, fmt.Errorf("ec: RS(%d+%d) needs %d backends, have %d", k, m, k+m, len(backends))
	}
	return &Store{codec: codec, backends: backends, cpu: cpu, sh: &shared{}}, nil
}

// WithAccount returns a view over the same backends and stats charging a
// different account (nil disables charging).
func (s *Store) WithAccount(acct *simclock.Account) *Store {
	v := *s
	v.acct = acct
	return &v
}

// Codec exposes the tier's codec geometry.
func (s *Store) Codec() *Codec { return s.codec }

// Backends exposes the backend set (the chaos injection surface).
func (s *Store) Backends() []*oss.Backend { return s.backends }

// Stats snapshots the tier counters.
func (s *Store) Stats() Stats {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	return s.sh.stats
}

func (s *Store) bump(f func(*Stats)) {
	s.sh.mu.Lock()
	f(&s.sh.stats)
	s.sh.mu.Unlock()
}

func (s *Store) chargeRead(i, n int) {
	if s.acct != nil {
		s.acct.ChargeRead(s.backends[i].Costs, int64(n))
	}
}

func (s *Store) chargeWrite(i, n int) {
	if s.acct != nil {
		s.acct.ChargeWrite(s.backends[i].Costs, int64(n))
	}
}

func (s *Store) chargeReconstruct(n int) {
	if s.acct != nil {
		s.acct.ChargeCPUBytes(simclock.PhaseECReconstruct, int64(n), s.cpu.ECReconstructPerByte)
	}
}

// header returns the envelope header for a write of data under key.
func (s *Store) header(key string, data []byte) ShardHeader {
	return ShardHeader{
		StripeID: StripeIDOf(key),
		K:        s.codec.K(),
		M:        s.codec.M(),
		ObjLen:   int64(len(data)),
		ObjCRC:   crc32.Checksum(data, crcTable),
	}
}

// Put implements oss.Store: encode and write one shard per backend. Every
// backend is attempted even after a failure (leaving the stripe as
// complete as possible for later repair), but any failure makes the whole
// Put fail loudly — callers treat the object as not written and the
// container data-then-meta protocol keeps partial stripes invisible.
func (s *Store) Put(key string, data []byte) error {
	shards := s.codec.Encode(data)
	h := s.header(key, data)
	// Parity generation is the same GF arithmetic as reconstruction.
	s.chargeReconstruct(s.codec.M() * len(shards[0]))
	var errs []error
	wrote := int64(0)
	for i, payload := range shards {
		h.Index = i
		env := EncodeShard(h, payload)
		if err := s.backends[i].Store.Put(key, env); err != nil {
			errs = append(errs, fmt.Errorf("backend %s: %w", s.backends[i].Name, err))
			continue
		}
		wrote++
		s.chargeWrite(i, len(env))
	}
	s.bump(func(st *Stats) {
		st.StripesWritten++
		st.ShardWrites += wrote
	})
	if len(errs) > 0 {
		return fmt.Errorf("ec: put %s: %w", key, errors.Join(errs...))
	}
	return nil
}

// fetchShard reads and validates shard i of key. ok=false with notFound
// reporting whether the miss was a plain absent object (as opposed to an
// outage, rot, or a shard from a different stripe).
func (s *Store) fetchShard(key string, i int) (h ShardHeader, payload []byte, ok, notFound bool) {
	raw, err := s.backends[i].Store.Get(key)
	if err != nil {
		return h, nil, false, errors.Is(err, oss.ErrNotFound)
	}
	h, payload, err = DecodeShard(raw)
	if err != nil || h.Index != i || h.K != s.codec.K() || h.M != s.codec.M() ||
		h.StripeID != StripeIDOf(key) {
		return h, nil, false, false
	}
	s.chargeRead(i, len(raw))
	return h, payload, true, false
}

// stripe is the validated view of one key across all backends.
type stripe struct {
	hdrs     []*ShardHeader // by shard index, nil if unreadable
	payloads [][]byte
	notFound int // slots where the shard object simply does not exist
	failed   int // slots lost to outage, rot, or mismatched envelopes
}

// fetchStripe reads shards [0, upto) of key. Slots beyond upto stay nil.
func (s *Store) fetchStripe(key string, upto int) *stripe {
	n := s.codec.K() + s.codec.M()
	st := &stripe{hdrs: make([]*ShardHeader, n), payloads: make([][]byte, n)}
	for i := 0; i < upto; i++ {
		h, payload, ok, notFound := s.fetchShard(key, i)
		switch {
		case ok:
			hc := h
			st.hdrs[i] = &hc
			st.payloads[i] = payload
		case notFound:
			st.notFound++
		default:
			st.failed++
		}
	}
	return st
}

// winner picks the write generation with the most surviving shards
// (deterministic tie-break on the generation tuple) and returns its
// header plus the count of shards belonging to it.
func (st *stripe) winner() (ShardHeader, int) {
	counts := make(map[[2]uint64]int)
	for _, h := range st.hdrs {
		if h != nil {
			counts[h.gen()]++
		}
	}
	var best ShardHeader
	bestN := 0
	for _, h := range st.hdrs {
		if h == nil {
			continue
		}
		n := counts[h.gen()]
		g, bg := h.gen(), best.gen()
		if n > bestN || (n == bestN && (g[0] < bg[0] || (g[0] == bg[0] && g[1] < bg[1]))) {
			best, bestN = *h, n
		}
	}
	return best, bestN
}

// slots returns the winning generation's payloads in codec order (nil for
// every other slot) and the list of slots needing a rewrite.
func (st *stripe) slots(gen ShardHeader) (shards [][]byte, bad []int) {
	shards = make([][]byte, len(st.payloads))
	want := gen.gen()
	for i, h := range st.hdrs {
		if h != nil && h.gen() == want {
			shards[i] = st.payloads[i]
		} else {
			bad = append(bad, i)
		}
	}
	return shards, bad
}

// Get implements oss.Store: fetch the K data shards, reconstructing from
// parity when any are missing, rotted, or stale.
func (s *Store) Get(key string) ([]byte, error) {
	k, m := s.codec.K(), s.codec.M()
	st := s.fetchStripe(key, k)

	// Fast path: every data shard intact and from one generation — no GF
	// arithmetic, just join and verify the object checksum.
	if st.failed == 0 && st.notFound == 0 {
		if gen, n := st.winner(); n == k {
			data, err := s.codec.Join(st.payloads[:k], int(gen.ObjLen))
			if err == nil && crc32.Checksum(data, crcTable) == gen.ObjCRC {
				s.bump(func(x *Stats) { x.Reads++ })
				return data, nil
			}
		}
	}

	// Degraded: fetch the parity shards too and decode the winning
	// generation.
	for i := k; i < k+m; i++ {
		h, payload, ok, notFound := s.fetchShard(key, i)
		switch {
		case ok:
			hc := h
			st.hdrs[i] = &hc
			st.payloads[i] = payload
		case notFound:
			st.notFound++
		default:
			st.failed++
		}
	}
	gen, n := st.winner()
	if n == 0 && st.failed == 0 {
		return nil, fmt.Errorf("%w: %s", oss.ErrNotFound, key)
	}
	if n < k {
		s.bump(func(x *Stats) { x.ShardFailures += int64(k + m - n) })
		return nil, fmt.Errorf("ec: get %s: %w (%d of %d shards of the best generation, %d unreadable)",
			key, ErrInsufficient, n, k+m, st.failed)
	}
	shards, bad := st.slots(gen)
	missingData := 0
	for i := 0; i < k; i++ {
		if shards[i] == nil {
			missingData++
		}
	}
	if err := s.codec.Reconstruct(shards); err != nil {
		return nil, fmt.Errorf("ec: get %s: %w", key, err)
	}
	data, err := s.codec.Join(shards[:k], int(gen.ObjLen))
	if err != nil {
		return nil, fmt.Errorf("ec: get %s: %w", key, err)
	}
	if crc32.Checksum(data, crcTable) != gen.ObjCRC {
		return nil, fmt.Errorf("ec: get %s: reconstructed object fails its checksum", key)
	}
	s.chargeReconstruct(missingData * len(shards[0]))
	s.bump(func(x *Stats) {
		x.Reads++
		x.DegradedReads++
		x.ReconstructedShards += int64(missingData)
		x.ShardFailures += int64(len(bad))
	})
	return data, nil
}

// probeHeader reads one shard header from the first backend that serves a
// valid one.
func (s *Store) probeHeader(key string) (ShardHeader, error) {
	var lastErr error
	allMissing := true
	for i := range s.backends {
		raw, err := s.backends[i].Store.GetRange(key, 0, HeaderSize)
		if err != nil {
			if !errors.Is(err, oss.ErrNotFound) {
				allMissing = false
			}
			lastErr = err
			continue
		}
		allMissing = false
		h, err := DecodeShardHeader(raw)
		if err != nil || h.StripeID != StripeIDOf(key) {
			lastErr = fmt.Errorf("ec: probe %s on backend %s: invalid header", key, s.backends[i].Name)
			continue
		}
		s.chargeRead(i, len(raw))
		return h, nil
	}
	if allMissing {
		return ShardHeader{}, fmt.Errorf("%w: %s", oss.ErrNotFound, key)
	}
	return ShardHeader{}, fmt.Errorf("ec: probe %s: no backend served a header: %w", key, lastErr)
}

// GetRange implements oss.Store. The contiguous split maps a byte range
// onto sub-ranges of at most a handful of consecutive shards, so the
// ranged-read planner's economics survive striping: one small header
// probe plus one ranged read per covering shard. Any unreadable covering
// shard falls back to a full reconstructing Get.
func (s *Store) GetRange(key string, off, n int64) ([]byte, error) {
	h, err := s.probeHeader(key)
	if err != nil {
		return nil, err
	}
	if off < 0 || off > h.ObjLen {
		return nil, fmt.Errorf("oss: range [%d,+%d) out of bounds for %s (size %d)", off, n, key, h.ObjLen)
	}
	end := h.ObjLen
	if n >= 0 && off+n < end {
		end = off + n
	}
	if end == off {
		s.bump(func(x *Stats) { x.RangedReads++ })
		return []byte{}, nil
	}
	out := make([]byte, 0, end-off)
	sz := int64(s.codec.ShardSize(int(h.ObjLen)))
	for j := off / sz; j*sz < end; j++ {
		if int(j) >= s.codec.K() {
			break
		}
		lo, hi := j*sz, (j+1)*sz
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		part, err := s.backends[j].Store.GetRange(key, HeaderSize+lo-j*sz, hi-lo)
		if err != nil || int64(len(part)) != hi-lo {
			// Covering shard unreachable — reconstruct the whole object.
			s.bump(func(x *Stats) { x.RangedFallbacks++ })
			full, gerr := s.Get(key)
			if gerr != nil {
				return nil, gerr
			}
			return full[off:end], nil
		}
		s.chargeRead(int(j), len(part))
		out = append(out, part...)
	}
	s.bump(func(x *Stats) { x.RangedReads++ })
	return out, nil
}

// Head implements oss.Store.
func (s *Store) Head(key string) (int64, error) {
	h, err := s.probeHeader(key)
	if err != nil {
		return 0, err
	}
	return h.ObjLen, nil
}

// Delete implements oss.Store: the shard must disappear from every
// backend, so a deletion during an outage fails loudly rather than
// leaving resurrectable stale shards behind (journal-driven GC retries
// after the heal).
func (s *Store) Delete(key string) error {
	var errs []error
	for i := range s.backends {
		if err := s.backends[i].Store.Delete(key); err != nil {
			errs = append(errs, fmt.Errorf("backend %s: %w", s.backends[i].Name, err))
			continue
		}
		s.chargeWrite(i, 0)
	}
	if len(errs) > 0 {
		return fmt.Errorf("ec: delete %s: %w", key, errors.Join(errs...))
	}
	return nil
}

// List implements oss.Store: the union of keys across reachable backends
// (a stripe is listed even when some backends are down — scrub needs to
// see degraded stripes). Only when every backend fails does List fail.
func (s *Store) List(prefix string) ([]string, error) {
	seen := make(map[string]bool)
	var lastErr error
	ok := 0
	for i := range s.backends {
		keys, err := s.backends[i].Store.List(prefix)
		if err != nil {
			lastErr = fmt.Errorf("backend %s: %w", s.backends[i].Name, err)
			continue
		}
		ok++
		for _, k := range keys {
			seen[k] = true
		}
	}
	if ok == 0 {
		return nil, fmt.Errorf("ec: list %s: %w", prefix, lastErr)
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out, nil
}

// StripeHealth is the scrub-facing view of one striped object.
type StripeHealth struct {
	Key string
	// Present counts shards of the winning generation that are readable
	// and checksum-valid.
	Present int
	// Bad lists shard slots needing a rewrite: missing, rotted, stale
	// generation, or on an unreachable backend.
	Bad []int
	// Recoverable is Present >= K: Repair can rebuild the stripe.
	Recoverable bool
}

// Check reads every shard of key and classifies the stripe. A key with no
// shard anywhere returns oss.ErrNotFound.
func (s *Store) Check(key string) (*StripeHealth, error) {
	k, m := s.codec.K(), s.codec.M()
	st := s.fetchStripe(key, k+m)
	gen, n := st.winner()
	if n == 0 {
		if st.failed == 0 {
			return nil, fmt.Errorf("%w: %s", oss.ErrNotFound, key)
		}
		return &StripeHealth{Key: key, Present: 0, Bad: allSlots(k + m)}, nil
	}
	_, bad := st.slots(gen)
	return &StripeHealth{Key: key, Present: n, Bad: bad, Recoverable: n >= k}, nil
}

func allSlots(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Repair rebuilds a degraded stripe back to full K+M redundancy:
// reconstruct the winning generation from its survivors and rewrite every
// bad slot. Reconstruction is deterministic, so repaired shard objects
// are byte-identical to the originals. Rewrites that fail (backend still
// down) leave the stripe degraded for the next scrub; the returned count
// says how many shards actually landed. Repair is idempotent and safe to
// crash out of at any point — it only ever writes bytes the stripe
// already logically contains.
func (s *Store) Repair(key string) (repaired int, err error) {
	k, m := s.codec.K(), s.codec.M()
	st := s.fetchStripe(key, k+m)
	gen, n := st.winner()
	if n < k {
		return 0, fmt.Errorf("ec: repair %s: %w (%d of %d shards)", key, ErrInsufficient, n, k+m)
	}
	shards, bad := st.slots(gen)
	if len(bad) == 0 {
		return 0, nil
	}
	if err := s.codec.Reconstruct(shards); err != nil {
		return 0, fmt.Errorf("ec: repair %s: %w", key, err)
	}
	// Never write a repair whose reconstructed object fails its checksum.
	data, err := s.codec.Join(shards[:k], int(gen.ObjLen))
	if err != nil {
		return 0, fmt.Errorf("ec: repair %s: %w", key, err)
	}
	if crc32.Checksum(data, crcTable) != gen.ObjCRC {
		return 0, fmt.Errorf("ec: repair %s: reconstructed object fails its checksum", key)
	}
	s.chargeReconstruct(len(bad) * len(shards[0]))
	h := gen
	var errs []error
	for _, i := range bad {
		h.Index = i
		env := EncodeShard(h, shards[i])
		if werr := s.backends[i].Store.Put(key, env); werr != nil {
			errs = append(errs, fmt.Errorf("backend %s: %w", s.backends[i].Name, werr))
			continue
		}
		repaired++
		s.chargeWrite(i, len(env))
	}
	rep := int64(repaired)
	recon := int64(len(bad))
	s.bump(func(x *Stats) {
		x.RepairedShards += rep
		x.ReconstructedShards += recon
		x.ShardWrites += rep
	})
	if len(errs) > 0 {
		return repaired, fmt.Errorf("ec: repair %s: %w", key, errors.Join(errs...))
	}
	return repaired, nil
}

// Router splits one OSS namespace between the striped tier and a plain
// store: keys under the routed prefixes (the container namespaces) ride
// the redundancy tier, everything else (recipes, indexes, journal, LSM
// segments) stays on the plain store. container.Store opens over a Router
// so the whole container path — backup, restore, quarantine, rewrite —
// stripes transparently.
type Router struct {
	tier     *Store
	plain    oss.Store
	prefixes []string
}

// NewRouter routes keys under any of prefixes to tier and the rest to
// plain.
func NewRouter(tier *Store, plain oss.Store, prefixes ...string) *Router {
	return &Router{tier: tier, plain: plain, prefixes: prefixes}
}

// Tier returns the EC store behind the router.
func (r *Router) Tier() *Store { return r.tier }

func (r *Router) routed(key string) bool {
	for _, p := range r.prefixes {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

func (r *Router) store(key string) oss.Store {
	if r.routed(key) {
		return r.tier
	}
	return r.plain
}

// Put implements oss.Store.
func (r *Router) Put(key string, data []byte) error { return r.store(key).Put(key, data) }

// Get implements oss.Store.
func (r *Router) Get(key string) ([]byte, error) { return r.store(key).Get(key) }

// GetRange implements oss.Store.
func (r *Router) GetRange(key string, off, n int64) ([]byte, error) {
	return r.store(key).GetRange(key, off, n)
}

// Head implements oss.Store.
func (r *Router) Head(key string) (int64, error) { return r.store(key).Head(key) }

// Delete implements oss.Store.
func (r *Router) Delete(key string) error { return r.store(key).Delete(key) }

// List implements oss.Store. A listing prefix inside a routed namespace
// serves from the tier; a broader prefix merges both sides, hiding the
// tier's physical shard objects behind their logical keys.
func (r *Router) List(prefix string) ([]string, error) {
	if r.routed(prefix) {
		return r.tier.List(prefix)
	}
	keys, err := r.plain.List(prefix)
	if err != nil {
		return nil, err
	}
	out := keys[:0]
	for _, k := range keys {
		// Physical shard namespaces live on the plain base store; hide
		// them from logical listings.
		if !strings.HasPrefix(k, "ec/") && !r.routed(k) {
			out = append(out, k)
		}
	}
	merged := false
	for _, p := range r.prefixes {
		if strings.HasPrefix(p, prefix) {
			tk, err := r.tier.List(p)
			if err != nil {
				return nil, err
			}
			out = append(out, tk...)
			merged = true
		}
	}
	if merged {
		sort.Strings(out)
	}
	return out, nil
}
