package ec

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenShard builds a deterministic envelope: a fixed header over a
// seeded payload, mirroring the container v2 golden tests so the on-wire
// shard layout can never drift silently.
func goldenShard() (ShardHeader, []byte) {
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 96)
	rng.Read(payload)
	h := ShardHeader{
		StripeID: StripeIDOf("containers/0000000000000123.data"),
		Index:    3,
		K:        4,
		M:        2,
		ObjLen:   379,
		ObjCRC:   0xDEADBEEF,
	}
	return h, payload
}

func TestGoldenShardEnvelope(t *testing.T) {
	h, payload := goldenShard()
	got := EncodeShard(h, payload)
	path := filepath.Join("testdata", "golden", "shard_v1.bin")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("shard envelope drifted from golden layout at byte %d (len got=%d want=%d)",
			firstDiff(got, want), len(got), len(want))
	}

	// The pinned bytes must also decode back to the exact header and
	// payload — guarding decoder and encoder together.
	dh, dp, err := DecodeShard(want)
	if err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	if dh != h {
		t.Fatalf("golden header decodes to %+v, want %+v", dh, h)
	}
	if !bytes.Equal(dp, payload) {
		t.Fatal("golden payload mismatch")
	}
}

// TestGoldenHeaderFields pins the exact byte offsets of every header
// field, so a reordering that happens to keep CRCs consistent still
// fails.
func TestGoldenHeaderFields(t *testing.T) {
	h, payload := goldenShard()
	b := EncodeShard(h, payload)
	checks := []struct {
		name string
		off  int
		want []byte
	}{
		{"magic", 0, []byte{'S', 'L', 'E', 'S'}},
		{"version", 4, []byte{1, 0, 0, 0}},
		{"shard index", 16, []byte{3}},
		{"k", 17, []byte{4}},
		{"m", 18, []byte{2}},
		{"pad", 19, []byte{0}},
		{"objlen", 20, []byte{0x7B, 1, 0, 0, 0, 0, 0, 0}},
		{"objcrc", 28, []byte{0xEF, 0xBE, 0xAD, 0xDE}},
	}
	for _, c := range checks {
		if !bytes.Equal(b[c.off:c.off+len(c.want)], c.want) {
			t.Errorf("%s at offset %d: got % x, want % x", c.name, c.off, b[c.off:c.off+len(c.want)], c.want)
		}
	}
	if len(b) != HeaderSize+len(payload)+TrailerSize {
		t.Errorf("envelope length %d, want %d", len(b), HeaderSize+len(payload)+TrailerSize)
	}
}

// TestEnvelopeCorruptionDetected flips every byte of the envelope in turn
// and requires DecodeShard to reject each mutation (header CRC for the
// prefix, payload CRC for the body).
func TestEnvelopeCorruptionDetected(t *testing.T) {
	h, payload := goldenShard()
	good := EncodeShard(h, payload)
	if _, _, err := DecodeShard(good); err != nil {
		t.Fatalf("pristine envelope rejected: %v", err)
	}
	for i := range good {
		bad := make([]byte, len(good))
		copy(bad, good)
		bad[i] ^= 0x01
		if _, _, err := DecodeShard(bad); err == nil {
			t.Fatalf("byte flip at offset %d not detected", i)
		}
	}
	for _, n := range []int{0, 4, HeaderSize - 1, HeaderSize, HeaderSize + TrailerSize - 1} {
		if _, _, err := DecodeShard(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

func TestStripeIDStability(t *testing.T) {
	// FNV-1a 64 is part of the on-wire format: pin known values.
	for key, want := range map[string]uint64{
		"":                  0xcbf29ce484222325,
		"a":                 0xaf63dc4c8601ec8c,
		"containers/x.data": StripeIDOf("containers/x.data"),
	} {
		if got := StripeIDOf(key); got != want {
			t.Errorf("StripeIDOf(%q) = %#x, want %#x", key, got, want)
		}
	}
	if StripeIDOf("containers/a.data") == StripeIDOf("containers/b.data") {
		t.Error("distinct keys hash to one stripe ID")
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
