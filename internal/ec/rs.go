package ec

import (
	"errors"
	"fmt"
)

// ErrInsufficient is returned when fewer than K shards of one generation
// survive — the stripe is unrecoverable and the loss must surface loudly.
var ErrInsufficient = errors.New("ec: insufficient shards to reconstruct")

// Codec is a systematic RS(K+M) erasure codec: shards 0..K-1 carry the
// data verbatim (contiguous split), shards K..K+M-1 carry parity. Any K of
// the K+M shards reconstruct the original. Safe for concurrent use.
type Codec struct {
	k, m int
	// parity[i][j] is the coefficient of data shard j in parity shard i.
	// Rows come from an extended-Cauchy matrix: element (i,j) =
	// 1/(x_i ⊕ y_j) with x_i = K+i, y_j = j. Stacked under the K×K
	// identity this gives a matrix whose every K-row submatrix is
	// invertible (expanding identity rows reduces any such determinant to
	// a Cauchy minor, which is nonsingular), i.e. any M losses decode.
	parity [][]byte
}

// NewCodec builds an RS(k+m) codec. k ≥ 1 data shards, m ≥ 0 parity
// shards, k+m ≤ 256 (the field size bounds distinct Cauchy points). k=1
// degenerates to (1+m)-replication up to a constant factor.
func NewCodec(k, m int) (*Codec, error) {
	if k < 1 || m < 0 || k+m > 256 {
		return nil, fmt.Errorf("ec: invalid codec RS(%d+%d): need k ≥ 1, m ≥ 0, k+m ≤ 256", k, m)
	}
	c := &Codec{k: k, m: m, parity: make([][]byte, m)}
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = inv(byte(k+i) ^ byte(j))
		}
		c.parity[i] = row
	}
	return c, nil
}

// K and M report the codec geometry.
func (c *Codec) K() int { return c.k }

// M reports the parity shard count.
func (c *Codec) M() int { return c.m }

// ShardSize returns the per-shard payload size for an object of n bytes:
// ceil(n/k), minimum 1 so zero-length objects still produce shards.
func (c *Codec) ShardSize(n int) int {
	sz := (n + c.k - 1) / c.k
	if sz < 1 {
		sz = 1
	}
	return sz
}

// Split cuts data into k contiguous shards of ShardSize(len(data)) bytes,
// zero-padding the tail. Contiguity (shard j holds bytes [j·s, (j+1)·s))
// is what keeps ranged reads local to one or two shards.
func (c *Codec) Split(data []byte) [][]byte {
	sz := c.ShardSize(len(data))
	shards := make([][]byte, c.k)
	for j := 0; j < c.k; j++ {
		sh := make([]byte, sz)
		lo := j * sz
		if lo < len(data) {
			copy(sh, data[lo:])
		}
		shards[j] = sh
	}
	return shards
}

// Join reassembles the original n-byte object from the k data shards.
func (c *Codec) Join(shards [][]byte, n int) ([]byte, error) {
	if len(shards) < c.k {
		return nil, fmt.Errorf("ec: join needs %d data shards, have %d", c.k, len(shards))
	}
	sz := c.ShardSize(n)
	out := make([]byte, 0, c.k*sz)
	for j := 0; j < c.k; j++ {
		if len(shards[j]) != sz {
			return nil, fmt.Errorf("ec: data shard %d is %d bytes, want %d", j, len(shards[j]), sz)
		}
		out = append(out, shards[j]...)
	}
	return out[:n], nil
}

// Encode splits data and appends the m parity shards, returning k+m
// shards of equal size.
func (c *Codec) Encode(data []byte) [][]byte {
	shards := c.Split(data)
	sz := len(shards[0])
	for i := 0; i < c.m; i++ {
		p := make([]byte, sz)
		for j := 0; j < c.k; j++ {
			mulAdd(p, shards[j], c.parity[i][j])
		}
		shards = append(shards, p)
	}
	return shards
}

// Reconstruct fills every nil entry of shards (length k+m) in place from
// the surviving ones. All present shards must share one length. Fewer
// than k survivors returns ErrInsufficient — losses beyond M are detected
// loudly, never papered over.
func (c *Codec) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("ec: reconstruct wants %d shard slots, got %d", c.k+c.m, len(shards))
	}
	present := make([]int, 0, c.k)
	sz := -1
	for i, sh := range shards {
		if sh == nil {
			continue
		}
		if sz < 0 {
			sz = len(sh)
		} else if len(sh) != sz {
			return fmt.Errorf("ec: shard %d is %d bytes, others are %d", i, len(sh), sz)
		}
		if len(present) < c.k {
			present = append(present, i)
		}
	}
	if len(present) < c.k {
		n := 0
		for _, sh := range shards {
			if sh != nil {
				n++
			}
		}
		return fmt.Errorf("%w: %d of %d shards present, need %d", ErrInsufficient, n, c.k+c.m, c.k)
	}

	// Fast path: all data shards survived — parity recomputes directly.
	missingData := false
	for j := 0; j < c.k; j++ {
		if shards[j] == nil {
			missingData = true
			break
		}
	}
	if !missingData {
		c.fillParity(shards, sz)
		return nil
	}

	// Build the K×K generator submatrix of the chosen survivors and invert
	// it: row for data shard j is the unit vector e_j, row for parity
	// shard k+i is the Cauchy row parity[i].
	sub := make([][]byte, c.k)
	for r, idx := range present {
		row := make([]byte, c.k)
		if idx < c.k {
			row[idx] = 1
		} else {
			copy(row, c.parity[idx-c.k])
		}
		sub[r] = row
	}
	if !invertMatrix(sub) {
		// Unreachable for a Cauchy construction; guard anyway.
		return fmt.Errorf("ec: singular decode matrix for survivors %v", present)
	}
	// Decode each missing data shard d as Σ_r sub[d][r] · survivor_r.
	for d := 0; d < c.k; d++ {
		if shards[d] != nil {
			continue
		}
		out := make([]byte, sz)
		for r, idx := range present {
			mulAdd(out, shards[idx], sub[d][r])
		}
		shards[d] = out
	}
	c.fillParity(shards, sz)
	return nil
}

// fillParity recomputes every nil parity shard from the (now complete)
// data shards.
func (c *Codec) fillParity(shards [][]byte, sz int) {
	for i := 0; i < c.m; i++ {
		if shards[c.k+i] != nil {
			continue
		}
		p := make([]byte, sz)
		for j := 0; j < c.k; j++ {
			mulAdd(p, shards[j], c.parity[i][j])
		}
		shards[c.k+i] = p
	}
}

// Verify recomputes parity from the data shards and reports whether every
// shard is consistent (used by tests; the store relies on per-shard CRCs).
func (c *Codec) Verify(shards [][]byte) bool {
	if len(shards) != c.k+c.m {
		return false
	}
	sz := -1
	for _, sh := range shards {
		if sh == nil {
			return false
		}
		if sz < 0 {
			sz = len(sh)
		} else if len(sh) != sz {
			return false
		}
	}
	for i := 0; i < c.m; i++ {
		p := make([]byte, sz)
		for j := 0; j < c.k; j++ {
			mulAdd(p, shards[j], c.parity[i][j])
		}
		for b := range p {
			if p[b] != shards[c.k+i][b] {
				return false
			}
		}
	}
	return true
}
