package ec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Shard envelope layout (little-endian, golden-pinned by golden_test.go):
//
//	offset size field
//	 0     4    magic "SLES" (0x53454C53 LE)
//	 4     4    version (1)
//	 8     8    stripe ID (FNV-1a 64 of the object key)
//	16     1    shard index
//	17     1    K (data shards)
//	18     1    M (parity shards)
//	19     1    reserved (0)
//	20     8    object length (bytes of the original, pre-split object)
//	28     4    object CRC32C (checksum of the whole original object)
//	32     4    header CRC32C (over bytes 0..32)
//	36     …    shard payload (ShardSize(objLen) bytes)
//	end-4  4    payload CRC32C
//
// The (stripeID, objLen, objCRC) triple identifies one write generation:
// shards from an interrupted overwrite disagree on it, so readers can
// group survivors by generation instead of mixing incompatible shards.

const (
	envMagic   = 0x53454C53 // "SLES"
	envVersion = 1

	// HeaderSize is the fixed envelope prefix before the shard payload.
	HeaderSize = 36
	// TrailerSize is the payload CRC suffix.
	TrailerSize = 4
	// Overhead is the total envelope bytes added per shard.
	Overhead = HeaderSize + TrailerSize
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrEnvelope marks a shard whose envelope failed validation (bad magic,
// header CRC, or payload CRC) — the read path treats it as an erasure.
var ErrEnvelope = errors.New("ec: invalid shard envelope")

// ShardHeader is the decoded fixed prefix of a shard object.
type ShardHeader struct {
	StripeID uint64
	Index    int
	K, M     int
	ObjLen   int64
	ObjCRC   uint32
}

// gen returns the write-generation identity of the header.
func (h ShardHeader) gen() [2]uint64 {
	return [2]uint64{h.StripeID, uint64(h.ObjLen)<<32 | uint64(h.ObjCRC)}
}

// StripeIDOf derives the stripe ID of an object key (FNV-1a 64).
func StripeIDOf(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// EncodeShard wraps one shard payload in its envelope.
func EncodeShard(h ShardHeader, payload []byte) []byte {
	b := make([]byte, HeaderSize+len(payload)+TrailerSize)
	binary.LittleEndian.PutUint32(b[0:], envMagic)
	binary.LittleEndian.PutUint32(b[4:], envVersion)
	binary.LittleEndian.PutUint64(b[8:], h.StripeID)
	b[16] = byte(h.Index)
	b[17] = byte(h.K)
	b[18] = byte(h.M)
	b[19] = 0
	binary.LittleEndian.PutUint64(b[20:], uint64(h.ObjLen))
	binary.LittleEndian.PutUint32(b[28:], h.ObjCRC)
	binary.LittleEndian.PutUint32(b[32:], crc32.Checksum(b[:32], crcTable))
	copy(b[HeaderSize:], payload)
	binary.LittleEndian.PutUint32(b[HeaderSize+len(payload):], crc32.Checksum(payload, crcTable))
	return b
}

// DecodeShardHeader validates and decodes just the fixed prefix (enough
// for Head and ranged reads, which never touch the payload CRC).
func DecodeShardHeader(b []byte) (ShardHeader, error) {
	var h ShardHeader
	if len(b) < HeaderSize {
		return h, fmt.Errorf("%w: %d bytes, need %d header bytes", ErrEnvelope, len(b), HeaderSize)
	}
	if binary.LittleEndian.Uint32(b[0:]) != envMagic {
		return h, fmt.Errorf("%w: bad magic %#x", ErrEnvelope, binary.LittleEndian.Uint32(b[0:]))
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != envVersion {
		return h, fmt.Errorf("%w: unsupported version %d", ErrEnvelope, v)
	}
	if got, want := crc32.Checksum(b[:32], crcTable), binary.LittleEndian.Uint32(b[32:]); got != want {
		return h, fmt.Errorf("%w: header CRC mismatch (got %#x want %#x)", ErrEnvelope, got, want)
	}
	h.StripeID = binary.LittleEndian.Uint64(b[8:])
	h.Index = int(b[16])
	h.K = int(b[17])
	h.M = int(b[18])
	h.ObjLen = int64(binary.LittleEndian.Uint64(b[20:]))
	h.ObjCRC = binary.LittleEndian.Uint32(b[28:])
	if h.K < 1 || h.K+h.M > 256 || h.Index >= h.K+h.M || h.ObjLen < 0 {
		return h, fmt.Errorf("%w: implausible geometry idx=%d k=%d m=%d len=%d",
			ErrEnvelope, h.Index, h.K, h.M, h.ObjLen)
	}
	return h, nil
}

// DecodeShard validates the whole envelope (header and payload CRC) and
// returns the header and payload. The payload aliases b.
func DecodeShard(b []byte) (ShardHeader, []byte, error) {
	h, err := DecodeShardHeader(b)
	if err != nil {
		return h, nil, err
	}
	if len(b) < HeaderSize+TrailerSize {
		return h, nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrEnvelope, len(b), HeaderSize+TrailerSize)
	}
	payload := b[HeaderSize : len(b)-TrailerSize]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(b[len(b)-TrailerSize:]); got != want {
		return h, nil, fmt.Errorf("%w: payload CRC mismatch (got %#x want %#x)", ErrEnvelope, got, want)
	}
	return h, payload, nil
}
