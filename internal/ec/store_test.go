package ec

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

func newTestTier(t *testing.T, k, m int) (*Store, *oss.Mem) {
	t.Helper()
	mem := oss.NewMem()
	set := oss.NewBackendSet(mem, k+m, simclock.DefaultCosts(), nil)
	s, err := NewStore(set, k, m, simclock.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return s, mem
}

func shardKey(i int, key string) string { return oss.BackendPrefix(i) + key }

func TestStorePutGetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range [][2]int{{1, 2}, {2, 1}, {4, 2}} {
		s, mem := newTestTier(t, g[0], g[1])
		for _, n := range []int{0, 1, 100, 4096, 100_000} {
			key := "containers/obj.data"
			data := make([]byte, n)
			rng.Read(data)
			if err := s.Put(key, data); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(key)
			if err != nil {
				t.Fatalf("RS(%d+%d) n=%d: %v", g[0], g[1], n, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("RS(%d+%d) n=%d: round trip mismatch", g[0], g[1], n)
			}
			// One shard object must exist on every backend.
			for i := 0; i < g[0]+g[1]; i++ {
				if _, err := mem.Get(shardKey(i, key)); err != nil {
					t.Fatalf("backend %d missing its shard: %v", i, err)
				}
			}
		}
		if st := s.Stats(); st.DegradedReads != 0 {
			t.Fatalf("healthy round trips counted %d degraded reads", st.DegradedReads)
		}
	}
}

func TestStoreGetNotFound(t *testing.T) {
	s, _ := newTestTier(t, 2, 1)
	if _, err := s.Get("containers/nope.data"); !errors.Is(err, oss.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if _, err := s.Head("containers/nope.data"); !errors.Is(err, oss.ErrNotFound) {
		t.Fatalf("Head: want ErrNotFound, got %v", err)
	}
	if _, err := s.Check("containers/nope.data"); !errors.Is(err, oss.ErrNotFound) {
		t.Fatalf("Check: want ErrNotFound, got %v", err)
	}
}

// TestStoreDegradedReads kills every ≤M subset of backends in turn and
// requires byte-identical reads, then one extra backend and requires a
// loud ErrInsufficient.
func TestStoreDegradedReads(t *testing.T) {
	const k, m = 4, 2
	s, _ := newTestTier(t, k, m)
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 50_000)
	rng.Read(data)
	key := "containers/c1.data"
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	n := k + m
	for mask := 0; mask < 1<<n; mask++ {
		var down []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				down = append(down, i)
			}
		}
		for _, i := range down {
			s.Backends()[i].Faulty.SetOutage(true)
		}
		got, err := s.Get(key)
		if len(down) <= m {
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("down=%v: err=%v equal=%v", down, err, err == nil && bytes.Equal(got, data))
			}
		} else if !errors.Is(err, ErrInsufficient) {
			t.Fatalf("down=%v (> M): want ErrInsufficient, got %v", down, err)
		}
		for _, i := range down {
			s.Backends()[i].Faulty.SetOutage(false)
		}
	}
	if st := s.Stats(); st.DegradedReads == 0 || st.ReconstructedShards == 0 {
		t.Fatalf("outage reads did not count as degraded: %+v", st)
	}
}

// TestStoreShardRot flips bytes inside shard objects (payload and header)
// and requires transparent reconstruction up to M rotted shards.
func TestStoreShardRot(t *testing.T) {
	const k, m = 3, 2
	s, mem := newTestTier(t, k, m)
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 20_000)
	rng.Read(data)
	key := "containers/rot.data"
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	rot := func(i int, off int) {
		raw, err := mem.Get(shardKey(i, key))
		if err != nil {
			t.Fatal(err)
		}
		raw[off] ^= 0xFF
		if err := mem.Put(shardKey(i, key), raw); err != nil {
			t.Fatal(err)
		}
	}
	rot(0, HeaderSize+10) // payload rot
	rot(3, 8)             // header rot (stripe ID)
	got, err := s.Get(key)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("2 rotted shards: err=%v", err)
	}
	// A third rotted shard exceeds M.
	rot(1, HeaderSize)
	if _, err := s.Get(key); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("3 rotted shards: want ErrInsufficient, got %v", err)
	}
}

func TestStoreGetRange(t *testing.T) {
	for _, g := range [][2]int{{1, 1}, {3, 2}, {4, 2}} {
		s, _ := newTestTier(t, g[0], g[1])
		rng := rand.New(rand.NewSource(5))
		data := make([]byte, 10_000)
		rng.Read(data)
		key := "containers/r.data"
		if err := s.Put(key, data); err != nil {
			t.Fatal(err)
		}
		cases := [][2]int64{{0, 10}, {0, 10_000}, {9_990, 10}, {2_400, 3_000}, {5_000, -1}, {0, 0}, {10_000, 5}}
		for _, c := range cases {
			got, err := s.GetRange(key, c[0], c[1])
			if err != nil {
				t.Fatalf("RS(%d+%d) range %v: %v", g[0], g[1], c, err)
			}
			end := int64(len(data))
			if c[1] >= 0 && c[0]+c[1] < end {
				end = c[0] + c[1]
			}
			if !bytes.Equal(got, data[c[0]:end]) {
				t.Fatalf("RS(%d+%d) range %v: content mismatch (%d bytes)", g[0], g[1], c, len(got))
			}
		}
		if _, err := s.GetRange(key, 10_001, 5); err == nil {
			t.Fatal("offset past end must error")
		}
		// Degraded ranged read: kill a backend holding a covering shard;
		// the fallback must still return exact bytes.
		s.Backends()[0].Faulty.SetOutage(true)
		got, err := s.GetRange(key, 10, 50)
		if err != nil || !bytes.Equal(got, data[10:60]) {
			t.Fatalf("RS(%d+%d) degraded range: err=%v", g[0], g[1], err)
		}
		s.Backends()[0].Faulty.SetOutage(false)
	}
}

func TestStoreHeadDeleteList(t *testing.T) {
	s, mem := newTestTier(t, 2, 2)
	keys := []string{"containers/a.data", "containers/a.meta", "containers/b.data"}
	for i, k := range keys {
		if err := s.Put(k, bytes.Repeat([]byte{byte(i)}, 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Head(keys[1]); err != nil || n != 101 {
		t.Fatalf("Head = %d, %v; want 101", n, err)
	}
	got, err := s.List("containers/")
	if err != nil || !reflect.DeepEqual(got, keys) {
		t.Fatalf("List = %v, %v", got, err)
	}
	// One backend down: listing still sees every stripe.
	s.Backends()[3].Faulty.SetOutage(true)
	if got, err = s.List("containers/"); err != nil || !reflect.DeepEqual(got, keys) {
		t.Fatalf("List with outage = %v, %v", got, err)
	}
	// Delete during an outage fails loudly (no resurrectable shards left
	// behind silently)…
	if err := s.Delete(keys[0]); err == nil {
		t.Fatal("delete during outage must fail")
	}
	s.Backends()[3].Faulty.SetOutage(false)
	// …and succeeds after the heal, clearing every backend.
	if err := s.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := mem.Get(shardKey(i, keys[0])); !errors.Is(err, oss.ErrNotFound) {
			t.Fatalf("backend %d still holds a deleted shard", i)
		}
	}
	if _, err := s.Get(keys[0]); !errors.Is(err, oss.ErrNotFound) {
		t.Fatalf("deleted object still readable: %v", err)
	}
}

// TestStoreRepair damages shards every way the scrub can meet them —
// missing object, rotted payload, whole-backend outage — and checks
// Repair rewrites byte-identical shard objects.
func TestStoreRepair(t *testing.T) {
	const k, m = 4, 2
	s, mem := newTestTier(t, k, m)
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 30_000)
	rng.Read(data)
	key := "containers/rep.data"
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	pristine := make(map[int][]byte)
	for i := 0; i < k+m; i++ {
		raw, err := mem.Get(shardKey(i, key))
		if err != nil {
			t.Fatal(err)
		}
		pristine[i] = raw
	}

	// Healthy stripe: Check reports full redundancy, Repair is a no-op.
	h, err := s.Check(key)
	if err != nil || h.Present != k+m || len(h.Bad) != 0 || !h.Recoverable {
		t.Fatalf("healthy Check = %+v, %v", h, err)
	}
	if n, err := s.Repair(key); err != nil || n != 0 {
		t.Fatalf("healthy Repair = %d, %v", n, err)
	}

	// Damage two shards: delete one, rot another.
	if err := mem.Delete(shardKey(1, key)); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), pristine[4]...)
	raw[HeaderSize+5] ^= 0x55
	if err := mem.Put(shardKey(4, key), raw); err != nil {
		t.Fatal(err)
	}
	h, err = s.Check(key)
	if err != nil || h.Present != k+m-2 || !reflect.DeepEqual(h.Bad, []int{1, 4}) || !h.Recoverable {
		t.Fatalf("degraded Check = %+v, %v", h, err)
	}
	if n, err := s.Repair(key); err != nil || n != 2 {
		t.Fatalf("Repair = %d, %v", n, err)
	}
	for i := 0; i < k+m; i++ {
		raw, err := mem.Get(shardKey(i, key))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, pristine[i]) {
			t.Fatalf("repaired shard %d is not byte-identical to the original", i)
		}
	}

	// Repair with a backend down rewrites what it can and reports the
	// rest.
	if err := mem.Delete(shardKey(2, key)); err != nil {
		t.Fatal(err)
	}
	if err := mem.Delete(shardKey(3, key)); err != nil {
		t.Fatal(err)
	}
	s.Backends()[3].Faulty.SetOutage(true)
	n, err := s.Repair(key)
	if n != 1 || err == nil {
		t.Fatalf("partial repair = %d, %v; want 1 shard and an error", n, err)
	}
	s.Backends()[3].Faulty.SetOutage(false)
	if n, err = s.Repair(key); n != 1 || err != nil {
		t.Fatalf("post-heal repair = %d, %v", n, err)
	}
	if !bytes.Equal(mustGet(t, mem, shardKey(3, key)), pristine[3]) {
		t.Fatal("post-heal repaired shard differs")
	}

	// Beyond M losses: Repair refuses loudly.
	for i := 0; i < m+1; i++ {
		if err := mem.Delete(shardKey(i, key)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Repair(key); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("unrecoverable Repair: want ErrInsufficient, got %v", err)
	}
}

// TestStoreStaleGeneration overwrites an object, then resurrects one old
// shard: reads must serve the new generation and Repair must rewrite the
// stale shard.
func TestStoreStaleGeneration(t *testing.T) {
	const k, m = 2, 2
	s, mem := newTestTier(t, k, m)
	key := "containers/gen.data"
	v1 := bytes.Repeat([]byte("one"), 500)
	v2 := bytes.Repeat([]byte("twotwo"), 400)
	if err := s.Put(key, v1); err != nil {
		t.Fatal(err)
	}
	old := mustGet(t, mem, shardKey(0, key))
	if err := s.Put(key, v2); err != nil {
		t.Fatal(err)
	}
	fresh := mustGet(t, mem, shardKey(0, key))
	if err := mem.Put(shardKey(0, key), old); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil || !bytes.Equal(got, v2) {
		t.Fatalf("read with stale shard: err=%v, served old generation=%v", err, bytes.Equal(got, v1))
	}
	h, err := s.Check(key)
	if err != nil || h.Present != k+m-1 || !reflect.DeepEqual(h.Bad, []int{0}) {
		t.Fatalf("Check with stale shard = %+v, %v", h, err)
	}
	if n, err := s.Repair(key); err != nil || n != 1 {
		t.Fatalf("Repair = %d, %v", n, err)
	}
	if !bytes.Equal(mustGet(t, mem, shardKey(0, key)), fresh) {
		t.Fatal("repair did not restore the current generation")
	}
}

// TestStoreAccounting pins the metering contract: per-shard I/O lands on
// the view's account under each backend's cost model, and degraded reads
// charge PhaseECReconstruct CPU.
func TestStoreAccounting(t *testing.T) {
	const k, m = 2, 1
	mem := oss.NewMem()
	costs := simclock.DefaultCosts()
	set := oss.NewBackendSet(mem, k+m, costs, nil)
	base, err := NewStore(set, k, m, costs)
	if err != nil {
		t.Fatal(err)
	}
	acct := simclock.NewAccount()
	s := base.WithAccount(acct)
	data := make([]byte, 10_000)
	if err := s.Put("containers/x.data", data); err != nil {
		t.Fatal(err)
	}
	io := acct.IO()
	if io.Writes != int64(k+m) {
		t.Fatalf("Put charged %d writes, want %d", io.Writes, k+m)
	}
	perShard := int64(base.Codec().ShardSize(len(data)) + Overhead)
	if io.WriteBytes != int64(k+m)*perShard {
		t.Fatalf("Put charged %d write bytes, want %d", io.WriteBytes, int64(k+m)*perShard)
	}
	if cpu := acct.CPUPhase(simclock.PhaseECReconstruct); cpu <= 0 {
		t.Fatal("parity generation charged no EC CPU")
	}

	acct.Reset()
	if _, err := s.Get("containers/x.data"); err != nil {
		t.Fatal(err)
	}
	if io = acct.IO(); io.Reads != int64(k) {
		t.Fatalf("healthy Get charged %d reads, want %d", io.Reads, k)
	}
	if acct.CPUPhase(simclock.PhaseECReconstruct) != 0 {
		t.Fatal("healthy Get charged reconstruction CPU")
	}

	acct.Reset()
	s.Backends()[0].Faulty.SetOutage(true)
	if _, err := s.Get("containers/x.data"); err != nil {
		t.Fatal(err)
	}
	if acct.CPUPhase(simclock.PhaseECReconstruct) <= 0 {
		t.Fatal("degraded Get charged no reconstruction CPU")
	}
	// The unmetered base view shares stats but charges nothing.
	if _, err := base.Get("containers/x.data"); err != nil {
		t.Fatal(err)
	}
	if st := base.Stats(); st.DegradedReads != 2 {
		t.Fatalf("views do not share stats: %+v", st)
	}
}

func TestRouter(t *testing.T) {
	mem := oss.NewMem()
	set := oss.NewBackendSet(mem, 3, simclock.DefaultCosts(), nil)
	tier, err := NewStore(set, 2, 1, simclock.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(tier, mem, "containers/", "quarantine/")
	if err := r.Put("containers/c.data", []byte("striped")); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("recipes/f/1", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	// The striped key must not exist as a plain base object; the plain key
	// must.
	if _, err := mem.Get("containers/c.data"); !errors.Is(err, oss.ErrNotFound) {
		t.Fatal("routed key leaked to the plain store")
	}
	if _, err := mem.Get("ec/b0/containers/c.data"); err != nil {
		t.Fatalf("striped shard missing: %v", err)
	}
	if _, err := mem.Get("recipes/f/1"); err != nil {
		t.Fatalf("plain key missing: %v", err)
	}
	for _, key := range []string{"containers/c.data", "recipes/f/1"} {
		if _, err := r.Get(key); err != nil {
			t.Fatalf("router Get %s: %v", key, err)
		}
	}
	// A broad listing merges both sides and hides physical shard keys.
	keys, err := r.List("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"containers/c.data", "recipes/f/1"}) {
		t.Fatalf("merged List = %v", keys)
	}
	if keys, err = r.List("containers/"); err != nil || !reflect.DeepEqual(keys, []string{"containers/c.data"}) {
		t.Fatalf("routed List = %v, %v", keys, err)
	}
	if err := r.Delete("containers/c.data"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("containers/c.data"); !errors.Is(err, oss.ErrNotFound) {
		t.Fatal("routed delete did not take")
	}
}

func mustGet(t *testing.T, mem *oss.Mem, key string) []byte {
	t.Helper()
	b, err := mem.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
