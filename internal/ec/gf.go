// Package ec implements the erasure-coded redundancy tier (DESIGN.md §12):
// a systematic Reed-Solomon RS(K+M) codec over GF(2^8) and an oss.Store
// that stripes every container object into K data + M parity shards across
// K+M fault-isolated OSS backends. Any K intact shards reconstruct the
// original object, so the tier survives up to M whole-backend outages or
// shard corruptions without losing a byte — the durability side of the
// replication-versus-deduplication balance that FASTEN and CDStore frame.
package ec

// GF(2^8) arithmetic with the AES-adjacent primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), generator 2. Exp/log tables make
// multiply two lookups; a full 256×256 product table (64 KiB, built once)
// makes the hot encode loops a single indexed XOR per byte.

const gfPoly = 0x11d

var (
	gfExp [512]byte // gfExp[i] = 2^i, doubled so mul needs no mod-255
	gfLog [256]byte // gfLog[gfExp[i]] = i; gfLog[0] unused
	gfMul [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x >= 256 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			gfMul[a][b] = gfExp[int(gfLog[a])+int(gfLog[b])]
		}
	}
}

func mul(a, b byte) byte { return gfMul[a][b] }

// inv returns the multiplicative inverse; inv(0) panics (never reachable
// from a well-formed Cauchy matrix).
func inv(a byte) byte {
	if a == 0 {
		panic("ec: inverse of zero in GF(2^8)")
	}
	return gfExp[255-int(gfLog[a])]
}

// mulAdd computes dst[i] ^= c*src[i] for every byte, the inner loop of
// encode and reconstruct.
func mulAdd(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	row := &gfMul[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// invertMatrix inverts an n×n matrix over GF(2^8) in place via
// Gauss-Jordan, returning false if the matrix is singular.
func invertMatrix(m [][]byte) bool {
	n := len(m)
	// Augment with the identity.
	for i := 0; i < n; i++ {
		m[i] = append(m[i], make([]byte, n)...)
		m[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return false
		}
		m[col], m[pivot] = m[pivot], m[col]
		if p := m[col][col]; p != 1 {
			pi := inv(p)
			for j := 0; j < 2*n; j++ {
				m[col][j] = mul(m[col][j], pi)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			c := m[r][col]
			for j := 0; j < 2*n; j++ {
				m[r][j] ^= mul(c, m[col][j])
			}
		}
	}
	// Strip the left half, leaving the inverse.
	for i := 0; i < n; i++ {
		m[i] = m[i][n:]
	}
	return true
}
