package ec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func testData(t *testing.T, rng *rand.Rand, n int) []byte {
	t.Helper()
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// eraseAndReconstruct wipes the given shard slots, reconstructs, and
// checks every shard comes back byte-identical to the original encoding.
func eraseAndReconstruct(t *testing.T, c *Codec, orig [][]byte, lost []int) {
	t.Helper()
	shards := make([][]byte, len(orig))
	for i := range orig {
		cp := make([]byte, len(orig[i]))
		copy(cp, orig[i])
		shards[i] = cp
	}
	for _, i := range lost {
		shards[i] = nil
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatalf("RS(%d+%d) reconstruct with lost %v: %v", c.K(), c.M(), lost, err)
	}
	for i := range orig {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("RS(%d+%d) lost %v: shard %d differs after reconstruction", c.K(), c.M(), lost, i)
		}
	}
}

// TestReconstructExhaustive proves round-trip reconstruction under every
// erasure pattern of ≤ M lost shards for a battery of small geometries —
// including k=1 (replication) and m=0 (striping only).
func TestReconstructExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	geoms := [][2]int{{1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {3, 2}, {4, 2}, {4, 3}, {5, 3}}
	sizes := []int{0, 1, 5, 63, 64, 65, 1000}
	for _, g := range geoms {
		k, m := g[0], g[1]
		c, err := NewCodec(k, m)
		if err != nil {
			t.Fatalf("NewCodec(%d,%d): %v", k, m, err)
		}
		n := k + m
		for _, sz := range sizes {
			data := testData(t, rng, sz)
			orig := c.Encode(data)
			if len(orig) != n {
				t.Fatalf("RS(%d+%d): Encode returned %d shards", k, m, len(orig))
			}
			if !c.Verify(orig) {
				t.Fatalf("RS(%d+%d): fresh encoding fails Verify", k, m)
			}
			if got, err := c.Join(orig[:k], sz); err != nil || !bytes.Equal(got, data) {
				t.Fatalf("RS(%d+%d): join of pristine data shards: err=%v equal=%v", k, m, err, bytes.Equal(got, data))
			}
			// Every subset of ≤ m erasures.
			for mask := 0; mask < 1<<n; mask++ {
				var lost []int
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						lost = append(lost, i)
					}
				}
				if len(lost) > m {
					continue
				}
				eraseAndReconstruct(t, c, orig, lost)
			}
		}
	}
}

// TestReconstructTooManyLost pins the loud-failure contract: more than M
// erasures must return ErrInsufficient, never garbage.
func TestReconstructTooManyLost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range [][2]int{{1, 1}, {2, 2}, {4, 2}, {3, 3}} {
		k, m := g[0], g[1]
		c, err := NewCodec(k, m)
		if err != nil {
			t.Fatal(err)
		}
		orig := c.Encode(testData(t, rng, 512))
		n := k + m
		for mask := 0; mask < 1<<n; mask++ {
			var lost []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					lost = append(lost, i)
				}
			}
			if len(lost) <= m {
				continue
			}
			shards := make([][]byte, n)
			copy(shards, orig)
			for _, i := range lost {
				shards[i] = nil
			}
			if err := c.Reconstruct(shards); !errors.Is(err, ErrInsufficient) {
				t.Fatalf("RS(%d+%d) lost %v: want ErrInsufficient, got %v", k, m, lost, err)
			}
		}
	}
}

// TestReconstructRandomLarge covers geometries too big for exhaustive
// pattern enumeration with seeded random erasure patterns.
func TestReconstructRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, g := range [][2]int{{8, 4}, {10, 4}, {16, 3}} {
		k, m := g[0], g[1]
		c, err := NewCodec(k, m)
		if err != nil {
			t.Fatal(err)
		}
		data := testData(t, rng, 8192)
		orig := c.Encode(data)
		for trial := 0; trial < 200; trial++ {
			nLost := 1 + rng.Intn(m)
			perm := rng.Perm(k + m)
			eraseAndReconstruct(t, c, orig, perm[:nLost])
		}
	}
}

func TestCodecValidation(t *testing.T) {
	for _, g := range [][2]int{{0, 1}, {-1, 2}, {1, -1}, {200, 100}} {
		if _, err := NewCodec(g[0], g[1]); err == nil {
			t.Errorf("NewCodec(%d,%d): want error", g[0], g[1])
		}
	}
	// The largest legal geometry must construct (every Cauchy element
	// nonzero and invertible).
	if _, err := NewCodec(128, 128); err != nil {
		t.Errorf("NewCodec(128,128): %v", err)
	}
}

// TestReplicationDegenerate pins the k=1 special case used for both meta
// replication and the naive-(1+M) bench baseline: every shard alone
// reconstructs the object.
func TestReplicationDegenerate(t *testing.T) {
	c, err := NewCodec(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("replicate me")
	orig := c.Encode(data)
	for keep := 0; keep < 4; keep++ {
		shards := make([][]byte, 4)
		cp := make([]byte, len(orig[keep]))
		copy(cp, orig[keep])
		shards[keep] = cp
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("keep only shard %d: %v", keep, err)
		}
		got, err := c.Join(shards[:1], len(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("keep only shard %d: join err=%v got=%q", keep, err, got)
		}
	}
}

func TestGFArithmetic(t *testing.T) {
	// Inverse property over the whole field.
	for a := 1; a < 256; a++ {
		if got := mul(byte(a), inv(byte(a))); got != 1 {
			t.Fatalf("a·a⁻¹ = %d for a=%d", got, a)
		}
	}
	// Distributivity spot-check against the table.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if mul(a, b^c) != mul(a, b)^mul(a, c) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
		if mul(a, b) != mul(b, a) {
			t.Fatalf("commutativity fails for %d,%d", a, b)
		}
	}
}

func TestInvertMatrixSingular(t *testing.T) {
	m := [][]byte{{1, 2}, {1, 2}}
	if invertMatrix(m) {
		t.Fatal("inverted a singular matrix")
	}
}
