// Package lnode implements SLIMSTORE's stateless online processing node
// (paper §III-B, §IV, §V-A): fast online deduplication exploiting
// similarity and logical locality, the two history-aware accelerations
// (skip chunking and chunk merging / SuperChunking), and online restore
// with the full-vision cache and LAW-based prefetching.
//
// An L-node holds no durable state: everything a job needs — the recipe
// index of the detected base file, similar segment recipes, container
// metadata — is fetched from the storage layer during the job, so L-nodes
// scale out freely.
package lnode

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/recipe"
	"slimstore/internal/simclock"
	"slimstore/internal/simindex"
)

// LNode executes backup and restore jobs against a shared Repo.
type LNode struct {
	repo *core.Repo
	name string

	// Ingest fast-path resources (hashpool.go, ingest.go): a persistent
	// fingerprint worker pool and recycled pipeline runs.
	mu     sync.Mutex
	hpool  *hashPool
	closed bool
	runs   sync.Pool // *ingestRun

	// Restore fast-path resources (restorefast.go): an optional dedicated
	// verify pool (nil when verification shares hpool) and recycled
	// reassembly-ring runs.
	vpool *hashPool
	rruns sync.Pool // *restoreRun
}

// New returns an L-node. name is informational (logs, stats).
func New(repo *core.Repo, name string) *LNode {
	return &LNode{repo: repo, name: name}
}

// Name returns the node name.
func (n *LNode) Name() string { return n.name }

// BackupStats reports one backup job.
type BackupStats struct {
	FileID  string
	Version int

	LogicalBytes   int64 // input size
	DuplicateBytes int64 // bytes eliminated as duplicates
	StoredBytes    int64 // chunk payload bytes written to containers

	NumChunks     int // chunk records in the new recipe
	NumDuplicates int

	// History-aware skip chunking (§IV-B).
	SkipHits, SkipMisses int
	// SuperChunking (§IV-C): matches of existing superchunks and newly
	// merged ones.
	SuperHits, SuperMisses, NewSuperchunks int

	SegmentsFetched int
	// Inline global-index probing (Config.InlineGlobalProbe): fingerprints
	// probed against the global index and duplicates found there.
	GlobalProbes, GlobalHits int
	// Base file detection (STEP 1): "name", "similarity", or "none".
	BaseBy      string
	BaseFile    string
	BaseVersion int

	NewContainers    []container.ID
	SparseContainers []container.ID // detected for G-node's SCC (§V-B)

	Account *simclock.Account
	Elapsed time.Duration // virtual time, upload overlapped with compute
}

// DedupRatio is eliminated bytes over input bytes.
func (s *BackupStats) DedupRatio() float64 {
	if s.LogicalBytes == 0 {
		return 0
	}
	return float64(s.DuplicateBytes) / float64(s.LogicalBytes)
}

// ThroughputMBps is the deduplication throughput in MB/s of virtual time.
func (s *BackupStats) ThroughputMBps() float64 {
	return simclock.ThroughputMBps(s.LogicalBytes, s.Elapsed)
}

// dedupEntry is one historical chunk record in the dedup cache, with
// enough context to find its successor for skip chunking.
type dedupEntry struct {
	rec   recipe.ChunkRecord
	segNo int
	idx   int
}

// backupJob is the per-job state of the online dedup pipeline.
type backupJob struct {
	node *LNode
	cfg  *core.Config
	acct *simclock.Account

	recipes    *recipe.Store
	containers *container.Store
	builder    *container.Builder
	pool       *container.PackPool // nil when packing synchronously
	sampler    fingerprint.Sampler

	// Base file (STEP 1 result).
	baseReader *recipe.SegmentReader
	baseIndex  *recipe.Index

	// Dedup cache (STEP 2): prefetched segment recipes, bounded by
	// Config.DedupCacheSegments with FIFO eviction.
	dedupCache   map[fingerprint.FP]dedupEntry
	superByFirst map[fingerprint.FP]dedupEntry
	fetchedSegs  map[int]*recipe.Segment
	fetchOrder   []int

	stats BackupStats

	// Output assembly.
	segments   []recipe.Segment
	curSegment []recipe.ChunkRecord
	// Pending run of merge-eligible records (history-aware chunk merging).
	pending   []pendingRec
	data      []byte
	sampled   []fingerprint.FP // sampled fingerprints for the sketch
	lastMatch *dedupEntry

	// Fast-path scratch, reused across batches (ingest.go).
	verdicts []probeVerdict
	gfps     []fingerprint.FP
	gidx     []int
}

type pendingRec struct {
	rec recipe.ChunkRecord
	off int64
}

// newBackupJob builds the per-job pipeline state shared by Backup and
// BackupStream. The caller must `defer j.drainPool()`.
func (n *LNode) newBackupJob(data []byte) *backupJob {
	acct := simclock.NewAccount()
	cfg := &n.repo.Config
	j := &backupJob{
		node:         n,
		cfg:          cfg,
		acct:         acct,
		recipes:      n.repo.RecipesFor(acct),
		containers:   n.repo.ContainersFor(acct),
		sampler:      fingerprint.NewSampler(cfg.SampleRatio),
		dedupCache:   make(map[fingerprint.FP]dedupEntry),
		superByFirst: make(map[fingerprint.FP]dedupEntry),
		fetchedSegs:  make(map[int]*recipe.Segment),
		data:         data,
	}
	if cfg.PackWorkers > 0 {
		// Pack stage: filled containers seal and upload on background
		// workers while the dedup loop continues (§IV-A's overlap of
		// computation and multipart upload, realised with real threads).
		// The byte budget bounds payload bytes buffered ahead of the
		// uploads, so ingest speed cannot outrun the write path unboundedly.
		budget := cfg.PackBudgetBytes
		if budget < 0 {
			budget = 0
		}
		j.pool = container.NewPackPoolBudget(j.containers, cfg.PackWorkers, budget)
		j.builder = container.NewBuilderAsync(j.containers, j.pool)
	} else {
		j.builder = container.NewBuilder(j.containers)
	}
	j.stats.Account = acct
	return j
}

// drainPool waits out the pack workers on error paths so no goroutine
// outlives the job. persist() owns the success-path Close and nils j.pool.
func (j *backupJob) drainPool() {
	if j.pool != nil {
		//slimlint:ignore errdiscipline this drain only runs when the job is already returning the original error; persist() owns the success-path Close and checks it
		j.pool.Close()
		j.pool = nil
	}
}

// finish computes virtual elapsed time from the account.
func (j *backupJob) finish() *BackupStats {
	io := j.acct.IO()
	cpu := j.acct.CPUTime()
	// The backup pipeline overlaps three resources (paper §IV-A/Fig 2):
	// segment-recipe prefetching (OSS reads), computation, and multipart
	// container upload (OSS writes). Elapsed time is the longest of the
	// three timelines; Fig 2's bottleneck flips from network (version 0
	// uploads everything) to CPU (later versions upload little).
	elapsed := cpu
	if io.ReadTime > elapsed {
		elapsed = io.ReadTime
	}
	if io.WriteTime > elapsed {
		elapsed = io.WriteTime
	}
	j.stats.Elapsed = elapsed
	return &j.stats
}

// Backup deduplicates one input file version and persists containers,
// recipe, recipe index, similarity sketch, and catalog entry.
func (n *LNode) Backup(fileID string, data []byte) (*BackupStats, error) {
	if fileID == "" {
		return nil, fmt.Errorf("lnode: empty file ID")
	}
	// Exclusive file lock: concurrent backups of the same file would race on
	// version allocation, and restores must see a complete version chain.
	// Different files proceed in parallel (striped by file ID).
	n.repo.Files.Lock(fileID)
	defer n.repo.Files.Unlock(fileID)

	j := n.newBackupJob(data)
	defer j.drainPool()
	j.stats.FileID = fileID
	j.stats.LogicalBytes = int64(len(data))

	// STEP 1: detect the latest historical version by name, falling back
	// to the similar file index.
	if err := j.detectBase(fileID, data); err != nil {
		return nil, err
	}

	// STEP 2: chunk, fingerprint, and deduplicate against prefetched
	// similar segment recipes.
	if err := j.dedupe(); err != nil {
		return nil, err
	}

	// STEP 3: persist containers, recipe, recipe index, sketch, catalog.
	if err := j.persist(fileID); err != nil {
		return nil, err
	}
	return j.finish(), nil
}

// BackupStream deduplicates one input version read from r without ever
// materialising it: resident memory stays O(pipeline window) — head
// probe + ring slabs + pack budget — regardless of input size. Requires
// the fast-path configuration (history-aware cuts need random access to
// the whole version); other configurations fall back to buffering the
// stream and calling Backup.
func (n *LNode) BackupStream(fileID string, rd io.Reader) (*BackupStats, error) {
	cfg := &n.repo.Config
	if cfg.SkipChunking || cfg.ChunkMerging || cfg.HashWorkers <= 0 || cfg.LegacyIngest {
		data, err := io.ReadAll(rd)
		if err != nil {
			return nil, fmt.Errorf("lnode: read stream: %w", err)
		}
		return n.Backup(fileID, data)
	}
	if fileID == "" {
		return nil, fmt.Errorf("lnode: empty file ID")
	}
	n.repo.Files.Lock(fileID)
	defer n.repo.Files.Unlock(fileID)

	// Base detection samples only the head (§IV-A) — the one part of the
	// stream that must be buffered, and later re-cut as the stream prefix.
	head := make([]byte, headBytes)
	hn, err := io.ReadFull(rd, head)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("lnode: read stream head: %w", err)
	}
	head = head[:hn]

	j := n.newBackupJob(nil)
	defer j.drainPool()
	j.stats.FileID = fileID

	if err := j.detectBase(fileID, head); err != nil {
		return nil, err
	}
	if err := j.dedupeStream(head, rd); err != nil {
		return nil, err
	}
	if err := j.persist(fileID); err != nil {
		return nil, err
	}
	return j.finish(), nil
}

// detectBase implements STEP 1 of §IV-A.
func (j *backupJob) detectBase(fileID string, data []byte) error {
	latest, ok, err := j.recipes.LatestVersion(fileID)
	if err != nil {
		return fmt.Errorf("lnode: detect base: %w", err)
	}
	if ok {
		j.stats.Version = latest + 1
		j.stats.BaseBy = "name"
		j.stats.BaseFile = fileID
		j.stats.BaseVersion = latest
		return j.openBase(fileID, latest)
	}
	j.stats.Version = 0
	j.stats.BaseBy = "none"

	// Name miss: sample the header chunks and query the similar file
	// index (large files cannot be fully chunked in memory first, so only
	// the head is sampled — §IV-A).
	head := data
	if len(head) > headBytes {
		head = head[:headBytes]
	}
	cutter := j.node.repo.Cutter()
	stream := chunker.NewStream(head, cutter, nil, j.cfg.Costs) // probe pass: not charged as chunking
	var chunks []chunker.Chunk
	for {
		ch, ok := stream.Next()
		if !ok {
			break
		}
		chunks = append(chunks, ch)
	}
	var all []fingerprint.FP
	if j.cfg.LegacyIngest {
		all = hashChunks(j.cfg.FingerprintAlg, chunks, j.cfg.HashWorkers)
	} else {
		all = j.node.hashAll(j.cfg.FingerprintAlg, chunks)
	}
	var fps []fingerprint.FP
	for _, fp := range all {
		if j.sampler.Sample(fp) {
			fps = append(fps, fp)
		}
	}
	j.acct.ChargeCPUBytes(simclock.PhaseOther, int64(len(head)), j.cfg.Costs.OtherPerByte)
	if len(fps) == 0 {
		return nil
	}
	m, found := j.node.repo.SimIndex.Query(simindex.SketchOf(fps, simindex.DefaultSketchSize), j.cfg.SimilarityMinScore)
	j.acct.ChargeCPU(simclock.PhaseIndexQuery, j.cfg.Costs.IndexLookup)
	if !found {
		return nil
	}
	j.stats.BaseBy = "similarity"
	j.stats.BaseFile = m.FileID
	j.stats.BaseVersion = m.Version
	return j.openBase(m.FileID, m.Version)
}

func (j *backupJob) openBase(fileID string, version int) error {
	idx, err := j.recipes.GetIndex(fileID, version)
	if err != nil {
		return fmt.Errorf("lnode: fetch recipe index: %w", err)
	}
	rd, err := j.recipes.OpenSegments(fileID, version)
	if err != nil {
		return fmt.Errorf("lnode: open base segments: %w", err)
	}
	j.baseIndex = idx
	j.baseReader = rd
	return nil
}

// fetchSegment prefetches one similar segment recipe into the dedup
// cache, evicting the oldest segment when the cache is full.
func (j *backupJob) fetchSegment(segNo int) error {
	if _, done := j.fetchedSegs[segNo]; done {
		return nil
	}
	seg, err := j.baseReader.Fetch(segNo)
	if err != nil {
		return fmt.Errorf("lnode: prefetch segment %d: %w", segNo, err)
	}
	for len(j.fetchedSegs) >= j.cfg.DedupCacheSegments && len(j.fetchOrder) > 0 {
		j.evictSegment(j.fetchOrder[0])
		j.fetchOrder = j.fetchOrder[1:]
	}
	j.fetchedSegs[segNo] = seg
	j.fetchOrder = append(j.fetchOrder, segNo)
	j.stats.SegmentsFetched++
	for i := range seg.Records {
		rec := &seg.Records[i]
		e := dedupEntry{rec: *rec, segNo: segNo, idx: i}
		if _, dup := j.dedupCache[rec.FP]; !dup {
			j.dedupCache[rec.FP] = e
		}
		if rec.Super {
			if _, dup := j.superByFirst[rec.FirstChunk]; !dup {
				j.superByFirst[rec.FirstChunk] = e
			}
		}
		j.acct.ChargeCPU(simclock.PhaseIndexQuery, j.cfg.Costs.IndexInsert)
	}
	return nil
}

// evictSegment drops one prefetched segment and its cache entries.
func (j *backupJob) evictSegment(segNo int) {
	seg := j.fetchedSegs[segNo]
	if seg == nil {
		return
	}
	delete(j.fetchedSegs, segNo)
	for i := range seg.Records {
		rec := &seg.Records[i]
		if e, ok := j.dedupCache[rec.FP]; ok && e.segNo == segNo {
			delete(j.dedupCache, rec.FP)
		}
		if rec.Super {
			if e, ok := j.superByFirst[rec.FirstChunk]; ok && e.segNo == segNo {
				delete(j.superByFirst, rec.FirstChunk)
			}
		}
	}
	if j.lastMatch != nil && j.lastMatch.segNo == segNo {
		j.lastMatch = nil
	}
}

// successor returns the historical record following e (crossing into the
// next segment only if it is already in the dedup cache).
func (j *backupJob) successor(e *dedupEntry) (dedupEntry, bool) {
	seg := j.fetchedSegs[e.segNo]
	if seg == nil {
		return dedupEntry{}, false
	}
	if e.idx+1 < len(seg.Records) {
		return dedupEntry{rec: seg.Records[e.idx+1], segNo: e.segNo, idx: e.idx + 1}, true
	}
	next := j.fetchedSegs[e.segNo+1]
	if next == nil || len(next.Records) == 0 {
		return dedupEntry{}, false
	}
	return dedupEntry{rec: next.Records[0], segNo: e.segNo + 1, idx: 0}, true
}

// dedupe implements STEP 2: the main chunk loop with history-aware skip
// chunking and SuperChunking.
func (j *backupJob) dedupe() error {
	// With both history-aware accelerations off, chunk boundaries no longer
	// depend on dedup decisions, so chunking+fingerprinting can run as a
	// parallel front stage: the pooled batch pipeline (ingest.go), or the
	// materialize-everything legacy pipeline (pipeline.go) kept as the
	// measured baseline behind Config.LegacyIngest.
	if !j.cfg.SkipChunking && !j.cfg.ChunkMerging && j.cfg.HashWorkers > 0 {
		if j.cfg.LegacyIngest {
			return j.dedupeLegacy()
		}
		return j.dedupeFast()
	}
	cutter := j.node.repo.Cutter()
	stream := chunker.NewStream(j.data, cutter, j.acct, j.cfg.Costs)

	for !stream.Done() {
		// History-aware skip chunking (§IV-B): after a confirmed
		// duplicate, try cutting the historical successor's size directly
		// and verifying by fingerprint comparison alone.
		if j.cfg.SkipChunking && j.lastMatch != nil {
			next, ok := j.successor(j.lastMatch)
			if ok && (!next.rec.Super || j.cfg.ChunkMerging) {
				if ch, cut := stream.SkipCut(int(next.rec.Size)); cut {
					fp := j.node.repo.Fingerprint(j.acct, ch.Data)
					if fp == next.rec.FP {
						if next.rec.Super {
							j.stats.SuperHits++
						} else {
							j.stats.SkipHits++
						}
						j.emitDuplicate(next, ch)
						continue
					}
					stream.Rewind(ch.Offset)
					j.stats.SkipMisses++
				}
			}
			j.lastMatch = nil
		}

		// Regular CDC path.
		ch, ok := stream.Next()
		if !ok {
			break
		}
		fp := j.node.repo.Fingerprint(j.acct, ch.Data)
		j.acct.ChargeCPU(simclock.PhaseIndexQuery, j.cfg.Costs.IndexLookup)
		e, hit := j.dedupCache[fp]
		if !hit && j.baseIndex != nil {
			// Probe the recipe index; a sample match prefetches the whole
			// similar segment recipe (logical locality). Sampling bounds
			// the index size, not the probe cost — the index is already in
			// L-node memory for the duration of the job, so every miss
			// probes it.
			if segNo, found := j.baseIndex.Samples[fp]; found {
				if err := j.fetchSegment(int(segNo)); err != nil {
					return err
				}
				e, hit = j.dedupCache[fp]
			}
		}
		if hit {
			j.emitDuplicate(e, ch)
			continue
		}

		// SuperChunking (Algorithm 1): the chunk may be the first chunk
		// of a historical superchunk.
		if j.cfg.ChunkMerging {
			if super, ok := j.superByFirst[fp]; ok && int(super.rec.Size) > ch.Size() {
				ext, cut := stream.SkipCut(int(super.rec.Size) - ch.Size())
				if cut {
					scData := j.data[ch.Offset : ch.Offset+int64(super.rec.Size)]
					scFP := j.node.repo.Fingerprint(j.acct, scData)
					if scFP == super.rec.FP {
						j.stats.SuperHits++
						j.emitDuplicate(super, chunker.Chunk{Offset: ch.Offset, Data: scData})
						continue
					}
					stream.Rewind(ext.Offset)
					j.stats.SuperMisses++
					// The paper marks the small chunk duplicate here
					// (Algorithm 1 line 10); our containers address whole
					// chunks only, so the chunk is stored unique instead —
					// a slightly larger ratio loss on superchunk changes.
				}
			}
		}

		if err := j.emitUnique(fp, ch); err != nil {
			return err
		}
	}
	return j.flushPending()
}

// emitDuplicate records a confirmed duplicate chunk.
func (j *backupJob) emitDuplicate(e dedupEntry, ch chunker.Chunk) {
	rec := e.rec
	rec.DuplicateTimes++
	j.stats.NumDuplicates++
	j.stats.DuplicateBytes += int64(ch.Size())
	j.lastMatch = &e
	j.appendRecord(rec, ch.Offset)
}

// emitUnique stores a new chunk and records it.
func (j *backupJob) emitUnique(fp fingerprint.FP, ch chunker.Chunk) error {
	id, err := j.builder.Add(fp, ch.Data)
	if err != nil {
		return fmt.Errorf("lnode: store chunk: %w", err)
	}
	j.stats.StoredBytes += int64(ch.Size())
	j.lastMatch = nil
	j.appendRecord(recipe.ChunkRecord{
		FP:        fp,
		Container: id,
		Size:      uint32(ch.Size()),
	}, ch.Offset)
	return nil
}

// appendRecord feeds the history-aware chunk-merging stage (§IV-C):
// consecutive duplicate records whose duplicateTimes reached the merge
// threshold accumulate into a pending run that becomes a superchunk.
func (j *backupJob) appendRecord(rec recipe.ChunkRecord, off int64) {
	mergeable := j.cfg.ChunkMerging &&
		!rec.Super &&
		rec.DuplicateTimes >= uint32(j.cfg.MergeThreshold) &&
		rec.DuplicateTimes > 0
	if mergeable {
		// Cap the run so superchunks stay within MaxSuperChunkBytes.
		if len(j.pending) > 0 {
			runBytes := int64(0)
			for i := range j.pending {
				runBytes += int64(j.pending[i].rec.Size)
			}
			if runBytes+int64(rec.Size) > int64(j.cfg.MaxSuperChunkBytes) {
				j.mergePendingRun()
			}
		}
		j.pending = append(j.pending, pendingRec{rec: rec, off: off})
		return
	}
	j.mergePendingRun()
	j.commitRecord(rec)
}

// mergePendingRun converts the pending run into a superchunk (if it has at
// least two chunks) or commits its records unchanged.
func (j *backupJob) mergePendingRun() {
	defer func() { j.pending = j.pending[:0] }()
	if len(j.pending) == 0 {
		return
	}
	if len(j.pending) < 2 {
		for i := range j.pending {
			j.commitRecord(j.pending[i].rec)
		}
		return
	}
	start := j.pending[0].off
	var total int64
	minDup := j.pending[0].rec.DuplicateTimes
	for i := range j.pending {
		total += int64(j.pending[i].rec.Size)
		if d := j.pending[i].rec.DuplicateTimes; d < minDup {
			minDup = d
		}
	}
	scData := j.data[start : start+total]
	scFP := j.node.repo.Fingerprint(j.acct, scData)
	// The merged blob must be stored: no existing container holds it
	// contiguously. This one-time write is the Fig 7 version-6 dip and
	// the source of the small deduplication-ratio loss.
	id, err := j.builder.Add(scFP, scData)
	if err != nil {
		// Fall back to the unmerged records; merging is an optimisation.
		for i := range j.pending {
			j.commitRecord(j.pending[i].rec)
		}
		return
	}
	j.stats.StoredBytes += total
	j.stats.NewSuperchunks++
	j.commitRecord(recipe.ChunkRecord{
		FP:             scFP,
		Container:      id,
		Size:           uint32(total),
		DuplicateTimes: minDup,
		Super:          true,
		FirstChunk:     j.pending[0].rec.FP,
	})
}

// commitRecord adds a finalized record to the current segment.
func (j *backupJob) commitRecord(rec recipe.ChunkRecord) {
	j.stats.NumChunks++
	j.acct.ChargeCPU(simclock.PhaseOther, j.cfg.Costs.RecipeAppend)
	if len(j.curSegment) == 0 || j.sampler.Sample(rec.FP) {
		j.sampled = append(j.sampled, rec.FP)
	}
	j.curSegment = append(j.curSegment, rec)
	if len(j.curSegment) >= j.cfg.SegmentChunks {
		j.segments = append(j.segments, recipe.Segment{Records: j.curSegment})
		j.curSegment = nil
	}
}

func (j *backupJob) flushPending() error {
	j.mergePendingRun()
	if len(j.curSegment) > 0 {
		j.segments = append(j.segments, recipe.Segment{Records: j.curSegment})
		j.curSegment = nil
	}
	return nil
}

// persist implements STEP 3 plus the bookkeeping G-node depends on:
// sparse-container detection and the version-collection mark phase.
func (j *backupJob) persist(fileID string) error {
	if err := j.builder.Flush(); err != nil {
		return fmt.Errorf("lnode: flush containers: %w", err)
	}
	if j.pool != nil {
		// Barrier: every container must be durable before the recipe that
		// references it lands (and before sparse detection reads metas back).
		pool := j.pool
		j.pool = nil
		if err := pool.Close(); err != nil {
			return fmt.Errorf("lnode: pack containers: %w", err)
		}
	}

	r := &recipe.Recipe{FileID: fileID, Version: j.stats.Version, Segments: j.segments}
	if _, err := j.recipes.PutRecipe(r); err != nil {
		return err
	}
	idx := recipe.BuildIndex(r, j.sampler)
	if err := j.recipes.PutIndex(idx); err != nil {
		return err
	}
	if err := j.node.repo.SimIndex.Put(fileID, j.stats.Version,
		simindex.SketchOf(j.sampled, simindex.DefaultSketchSize)); err != nil {
		return err
	}

	// Containers referenced by this version, and the new ones it created.
	refs := make(map[container.ID]int)
	r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
		refs[rec.Container]++
		return true
	})
	var refList []container.ID
	for id := range refs {
		refList = append(refList, id)
	}
	sort.Slice(refList, func(a, b int) bool { return refList[a] < refList[b] })

	prevSet := make(map[container.ID]bool)
	if j.stats.BaseBy == "name" {
		prevInfo, err := j.recipes.GetInfo(fileID, j.stats.Version-1)
		if err == nil {
			for _, id := range prevInfo.Containers {
				prevSet[id] = true
			}
			// Version-collection mark phase (§VI-B): containers referenced
			// by the previous version but not this one become garbage
			// candidates associated with the previous version.
			var garbage []container.ID
			for _, id := range prevInfo.Containers {
				if _, still := refs[id]; !still {
					garbage = append(garbage, id)
				}
			}
			if len(garbage) > 0 {
				prevInfo.Garbage = appendUnique(prevInfo.Garbage, garbage)
				if err := j.recipes.PutInfo(prevInfo); err != nil {
					return err
				}
			}
		}
	}
	for _, id := range refList {
		if !prevSet[id] {
			// Either brand new or newly referenced via similarity.
			if int64(id) > 0 && refs[id] > 0 {
				j.stats.NewContainers = append(j.stats.NewContainers, id)
			}
		}
	}

	// Sparse-container detection (§V-B): utilization of each referenced
	// container from this version's point of view.
	for _, id := range refList {
		m, err := j.containers.ReadMeta(id)
		if err != nil {
			return fmt.Errorf("lnode: sparse detection: %w", err)
		}
		if len(m.Chunks) == 0 {
			continue
		}
		util := float64(refs[id]) / float64(len(m.Chunks))
		if util < j.cfg.SparseUtilization {
			j.stats.SparseContainers = append(j.stats.SparseContainers, id)
		}
	}

	info := &recipe.VersionInfo{
		FileID:      fileID,
		Version:     j.stats.Version,
		LogicalSize: j.stats.LogicalBytes,
		StoredSize:  j.stats.StoredBytes,
		NumChunks:   j.stats.NumChunks,
		Containers:  refList,
	}
	return j.recipes.PutInfo(info)
}

func appendUnique(dst []container.ID, add []container.ID) []container.ID {
	seen := make(map[container.ID]bool, len(dst))
	for _, id := range dst {
		seen[id] = true
	}
	for _, id := range add {
		if !seen[id] {
			seen[id] = true
			dst = append(dst, id)
		}
	}
	return dst
}
