package lnode

import (
	"fmt"
	"io"
	"time"

	"slimstore/internal/cache"
	"slimstore/internal/container"
	"slimstore/internal/recipe"
	"slimstore/internal/simclock"
)

// RestoreStats reports one restore job.
type RestoreStats struct {
	FileID  string
	Version int

	Bytes     int64
	Cache     cache.Stats
	Redirects int // chunks relocated by reverse dedup / SCC (old versions)

	PrefetchThreads int
	// Prefetch reports LAW prefetcher effectiveness (dispatched/consumed/
	// direct/cancelled slots). The consumed-vs-direct split depends on
	// goroutine scheduling; virtual-time accounting does not (DESIGN.md §14).
	Prefetch cache.PrefetchStats
	Account  *simclock.Account
	Elapsed  time.Duration
}

// ThroughputMBps is the restore throughput in MB/s of virtual time.
func (s *RestoreStats) ThroughputMBps() float64 {
	return simclock.ThroughputMBps(s.Bytes, s.Elapsed)
}

// Restore streams a backup version to w, using the configured cache
// policy and LAW-based prefetching (§V-A).
func (n *LNode) Restore(fileID string, version int, w io.Writer) (*RestoreStats, error) {
	return n.restore(fileID, version, w, n.repo.Config.VerifyRestore)
}

// Verify restores a version to a null sink with per-chunk fingerprint
// verification forced on, reporting integrity without materialising data.
func (n *LNode) Verify(fileID string, version int) (*RestoreStats, error) {
	return n.restore(fileID, version, io.Discard, true)
}

func (n *LNode) restore(fileID string, version int, w io.Writer, verify bool) (*RestoreStats, error) {
	// Shared file lock: the version chain and this version's recipe stay
	// stable for the duration (backup/delete/compaction of the file wait).
	n.repo.Files.RLock(fileID)
	defer n.repo.Files.RUnlock(fileID)

	acct := simclock.NewAccount()
	cfg := &n.repo.Config
	recipes := n.repo.RecipesFor(acct)
	containers := n.repo.ContainersFor(acct)

	r, err := recipes.GetRecipe(fileID, version)
	if err != nil {
		return nil, err
	}
	stats := &RestoreStats{
		FileID: fileID, Version: version,
		PrefetchThreads: cfg.PrefetchThreads,
		Account:         acct,
	}

	seq, redirects, rst, metas, release, err := n.pinSequence(containers, r, acct)
	if err != nil {
		return nil, err
	}
	defer release()
	stats.Redirects = redirects

	policy, err := cache.New(cfg.RestorePolicy, cache.Config{
		MemBytes:  cfg.CacheMemBytes,
		DiskBytes: cfg.CacheDiskBytes,
		DiskDir:   cfg.CacheDiskDir,
		LAW:       cfg.LAWChunks,
	})
	if err != nil {
		return nil, err
	}

	// All container reads go through the node-level restore I/O layer:
	// shared cache + singleflight across jobs, cost-model ranged reads for
	// sparse need-sets (DESIGN.md §10).
	rio := newRestoreIO(n, containers, seq, metas)
	defer rio.close()
	fetch := cache.Fetcher(rio.fetch)
	threads := cfg.PrefetchThreads
	var pf *cache.Prefetcher
	if threads > 0 {
		// LAW prefetching is policy-agnostic: the dispatch sequence derives
		// from the pinned request sequence, not from the policy, so OSS
		// reads overlap the restore pipeline for every policy (DESIGN.md
		// §14) — the policy's own fetches are served from prefetch slots.
		pf = cache.NewPrefetcher(fetch, seq, threads, threads*2)
		defer pf.Close()
		fetch = pf.Fetch
	}

	var emit cache.Emit
	var run *restoreRun
	if cfg.LegacyRestore {
		pos := 0
		emit = func(data []byte) error {
			acct.ChargeCPUBytes(simclock.PhaseOther, int64(len(data)), cfg.Costs.RestorePerByte)
			if verify {
				if got := n.repo.Fingerprint(acct, data); got != seq[pos].FP {
					return fmt.Errorf("lnode: verify %s v%d: chunk %d corrupt (got %s, want %s)",
						fileID, version, pos, got.Short(), seq[pos].FP.Short())
				}
			}
			pos++
			_, werr := w.Write(data)
			return werr
		}
	} else {
		run = n.newRestoreRun(acct, w, verify, seq, fileID, version)
		emit = run.emit
	}
	cstats, err := policy.Restore(seq, fetch, emit)
	if run != nil {
		_, err = run.finish(err)
	}
	if err != nil {
		return nil, fmt.Errorf("lnode: restore %s v%d: %w", fileID, version, err)
	}
	// Two-layer cache disk traffic costs local-disk time, not OSS time.
	acct.ChargeCPUBytes(simclock.PhaseOther,
		cstats.DiskHitBytes+cstats.DiskSwapBytes, cfg.Costs.DiskCachePerByte)

	stats.Bytes = cstats.LogicalBytes
	stats.Cache = cstats
	stats.Cache.ResolveMetaReads = rst.metaReads
	stats.Cache.ResolveMetaMemoHits = rst.memoHits
	rio.addTo(&stats.Cache)
	if pf != nil {
		stats.Prefetch = pf.Stats()
	}
	if threads > 0 {
		// LAW prefetching overlaps OSS reads with the restore pipeline
		// across `threads` parallel channels (§V-A, Table II).
		stats.Elapsed = acct.ElapsedOverlapped(threads)
	} else {
		stats.Elapsed = acct.ElapsedSequential()
	}
	return stats, nil
}

// pinSequence resolves the restore sequence and read-pins every container
// it references, so G-node maintenance cannot rewrite or drop a container
// between resolution and the reads. Pinning cannot happen before resolving
// (the container set is the *output* of resolution), so after taking the
// pins we re-resolve and check the set is unchanged; if maintenance slid in
// during the window we release, adopt the new set, and retry. Pins are
// shared read-locks taken in sorted stripe order (core.ContainerLocks.Pin),
// so concurrent restores never deadlock and rewrites wait, not fail.
// It also returns the metadata memo of the final (pinned) resolution
// pass: the exact container states the sequence was resolved against,
// which the restore I/O layer plans its ranged reads from without
// re-reading any metadata.
func (n *LNode) pinSequence(containers *container.Store, r *recipe.Recipe, acct *simclock.Account) ([]cache.Request, int, resolveStats, map[container.ID]*container.Meta, func(), error) {
	seq, _, total, _, err := n.resolveSequence(containers, r, acct)
	if err != nil {
		return nil, 0, resolveStats{}, nil, nil, err
	}
	const maxAttempts = 8
	for attempt := 0; ; attempt++ {
		release := n.repo.CLocks.Pin(requestContainers(seq))
		seq2, redirects2, rst, metas, err := n.resolveSequence(containers, r, acct)
		total.metaReads += rst.metaReads
		total.memoHits += rst.memoHits
		if err != nil {
			release()
			return nil, 0, resolveStats{}, nil, nil, err
		}
		if sameContainers(seq, seq2) {
			return seq2, redirects2, total, metas, release, nil
		}
		release()
		if attempt+1 >= maxAttempts {
			return nil, 0, resolveStats{}, nil, nil, fmt.Errorf("lnode: restore %s v%d: container set unstable after %d attempts",
				r.FileID, r.Version, maxAttempts)
		}
		seq = seq2
	}
}

func requestContainers(seq []cache.Request) []container.ID {
	ids := make([]container.ID, len(seq))
	for i, rq := range seq {
		ids[i] = rq.Container
	}
	return ids
}

func sameContainers(a, b []cache.Request) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Container != b[i].Container {
			return false
		}
	}
	return true
}

// resolveStats counts the metadata traffic of sequence resolution.
type resolveStats struct {
	metaReads int // container-metadata fetches actually issued
	memoHits  int // per-record lookups served by the pass's memo
}

// resolveSequence converts a recipe into the restore request sequence,
// redirecting chunks whose original copy was deleted by reverse
// deduplication or sparse-container compaction. The redirect pays one
// global-index query per moved chunk — the cost the paper accepts for old
// versions (§VI-A).
//
// Recipes reference the same container for long runs of consecutive
// chunks, so the metadata read is memoized. The memo lives for ONE pass
// only: pinSequence re-resolves after pinning precisely to observe any
// maintenance that slid in, and a memo surviving between the passes
// would blind that revalidation.
func (n *LNode) resolveSequence(containers *container.Store, r *recipe.Recipe, acct *simclock.Account) ([]cache.Request, int, resolveStats, map[container.ID]*container.Meta, error) {
	seq := make([]cache.Request, 0, r.NumChunks())
	redirects := 0
	var rst resolveStats
	memo := make(map[container.ID]*container.Meta) // nil value → unreadable
	readMeta := func(id container.ID) (*container.Meta, bool) {
		if m, ok := memo[id]; ok {
			rst.memoHits++
			return m, m != nil
		}
		rst.metaReads++
		m, err := containers.ReadMeta(id)
		if err != nil {
			m = nil
		}
		memo[id] = m
		return m, m != nil
	}
	var iterErr error
	r.Iter(func(_, _ int, rec *recipe.ChunkRecord) bool {
		req := cache.Request{FP: rec.FP, Container: rec.Container, Size: rec.Size}
		m, readable := readMeta(rec.Container)
		switch {
		case readable:
			if cm := m.Find(rec.FP); cm == nil || cm.Deleted {
				// Moved: consult the global index.
				acct.ChargeCPU(simclock.PhaseIndexQuery, n.repo.Config.Costs.IndexLookup)
				id, ok, gerr := n.repo.Global.Get(rec.FP)
				if gerr != nil {
					iterErr = gerr
					return false
				}
				if !ok {
					iterErr = fmt.Errorf("lnode: chunk %s of %s v%d lost (container %s)",
						rec.FP.Short(), r.FileID, r.Version, rec.Container)
					return false
				}
				req.Container = id
				redirects++
				readMeta(id) // memoize the redirect target for the read planner
			}
		default:
			// Container gone entirely (compacted away): redirect.
			acct.ChargeCPU(simclock.PhaseIndexQuery, n.repo.Config.Costs.IndexLookup)
			id, ok, gerr := n.repo.Global.Get(rec.FP)
			if gerr != nil {
				iterErr = gerr
				return false
			}
			if !ok {
				iterErr = fmt.Errorf("lnode: chunk %s of %s v%d lost with container %s",
					rec.FP.Short(), r.FileID, r.Version, rec.Container)
				return false
			}
			req.Container = id
			redirects++
			readMeta(id) // memoize the redirect target for the read planner
		}
		seq = append(seq, req)
		return true
	})
	if iterErr != nil {
		return nil, 0, resolveStats{}, nil, iterErr
	}
	return seq, redirects, rst, memo, nil
}
