//go:build !race

package lnode

// Sizing for TestBackupStreamResidentMemory: a 192 MiB unique stream must
// fit the pipeline window (head probe 8 MiB + ring slabs + pack budget +
// accumulated recipe), far below the input size.
const (
	streamTestBytes = 192 << 20
	streamHeapBound = 96 << 20

	raceEnabled = false
)
