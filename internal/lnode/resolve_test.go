package lnode

import (
	"bytes"
	"testing"
)

// Sequence resolution used to pay one metadata read per recipe record;
// the per-pass memo collapses that to one read per distinct container.
// pinSequence resolves twice (resolve, then revalidate under pins), so
// the lookups split exactly into reads + memo hits across two passes.
func TestResolveSequenceMemoized(t *testing.T) {
	n, _ := newNode(t, testConfig())
	data := genData(3, 1<<20)
	if _, err := n.Backup("f", data); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	st, err := n.Restore("f", 0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("restore mismatch")
	}

	c := st.Cache
	if c.ResolveMetaReads == 0 || c.ResolveMetaMemoHits == 0 {
		t.Fatalf("resolution counters empty: reads=%d hits=%d", c.ResolveMetaReads, c.ResolveMetaMemoHits)
	}
	if got, want := c.ResolveMetaReads+c.ResolveMetaMemoHits, 2*c.Requests; got != want {
		t.Fatalf("lookups %d over two passes, want %d (2×%d records)", got, want, c.Requests)
	}
	// A 1 MiB file spans few containers but ~256 chunks: the memo must
	// absorb the overwhelming majority of the lookups.
	if c.ResolveMetaReads >= c.ResolveMetaMemoHits {
		t.Fatalf("memo ineffective: %d reads vs %d hits", c.ResolveMetaReads, c.ResolveMetaMemoHits)
	}
}
