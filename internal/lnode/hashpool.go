package lnode

import (
	"sync"

	"slimstore/internal/chunker"
	"slimstore/internal/fingerprint"
)

// This file is the persistent fingerprint worker pool of the ingest fast
// path (DESIGN.md §13). The pre-fast-path pipeline spawned HashWorkers
// goroutines per hashChunks call; an L-node now owns one long-lived pool
// fed over a channel, so the steady-state hot path schedules work without
// goroutine churn. The pool is lazily created on first use and torn down
// by Close (the jobs engine closes its L-nodes when a host retires).

// hashJob is one unit of pool work: fingerprint chunks[i] into fps[i]
// for every i, then signal done. chunks and fps are owned by the
// submitter until done fires; the worker never retains them.
type hashJob struct {
	alg    fingerprint.Algorithm
	chunks []chunker.Chunk
	fps    []fingerprint.FP
	done   *sync.WaitGroup
}

// hashPool is a fixed set of long-lived fingerprint workers.
type hashPool struct {
	jobs chan hashJob
	wg   sync.WaitGroup
}

func newHashPool(workers int) *hashPool {
	p := &hashPool{jobs: make(chan hashJob, 4*workers)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				for k := range j.chunks {
					j.fps[k] = fingerprint.Of(j.alg, j.chunks[k].Data)
				}
				j.done.Done()
			}
		}()
	}
	return p
}

// submit enqueues one job; j.done must have been Add(1)'d by the caller.
func (p *hashPool) submit(j hashJob) { p.jobs <- j }

func (p *hashPool) close() {
	close(p.jobs)
	p.wg.Wait()
}

// hashers returns the node's persistent pool, creating it on first use.
// Nil when the configuration hashes inline (HashWorkers <= 0) or the
// node is closed — callers fall back to inline hashing.
func (n *LNode) hashers() *hashPool {
	if n.repo.Config.HashWorkers <= 0 {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	if n.hpool == nil {
		n.hpool = newHashPool(n.repo.Config.HashWorkers)
	}
	return n.hpool
}

// Close tears down the node's worker pool. Safe to call multiple times;
// jobs running on the node must have completed. After Close the node
// still works, hashing inline.
func (n *LNode) Close() {
	n.mu.Lock()
	pool := n.hpool
	vpool := n.vpool
	n.hpool = nil
	n.vpool = nil
	n.closed = true
	n.mu.Unlock()
	if pool != nil {
		pool.close()
	}
	if vpool != nil {
		vpool.close()
	}
}

// hashAll fingerprints chunks in input order through the persistent pool,
// splitting the slice into one contiguous range per worker. Small inputs
// (<= smallHashBatch chunks per worker) hash inline — the crossover below
// which handing work to the pool costs more than the hashing
// (BenchmarkHashChunksCrossover).
func (n *LNode) hashAll(alg fingerprint.Algorithm, chunks []chunker.Chunk) []fingerprint.FP {
	w := n.repo.Config.HashWorkers
	pool := n.hashers()
	if pool == nil || len(chunks) <= smallHashBatch*w {
		return hashChunks(alg, chunks, 1)
	}
	fps := make([]fingerprint.FP, len(chunks))
	stride := (len(chunks) + w - 1) / w
	var wg sync.WaitGroup
	for s := 0; s < len(chunks); s += stride {
		e := s + stride
		if e > len(chunks) {
			e = len(chunks)
		}
		wg.Add(1)
		pool.submit(hashJob{alg: alg, chunks: chunks[s:e], fps: fps[s:e], done: &wg})
	}
	wg.Wait()
	return fps
}
