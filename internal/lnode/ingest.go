package lnode

import (
	"fmt"
	"io"
	"sync"
	"time"

	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/recipe"
	"slimstore/internal/simclock"
)

// This file is the allocation-lean ingest fast path (DESIGN.md §13):
// chunk → fingerprint → dedupe → pack as a bounded pipeline of pooled
// batches. It replaces the materialize-everything hand-off of the legacy
// pipeline (pipeline.go) — which buffered every chunk header and
// fingerprint of the version before the first dedup lookup — with a ring
// of recycled chunk batches, so a multi-GiB stream ingests in O(window)
// resident memory and the steady-state hot loop allocates (almost)
// nothing.
//
// Ownership discipline:
//   - The producer cuts chunks into batches and hands each batch to the
//     persistent hash pool, then to the ring. From that point the batch
//     (chunks, fps, attached slab) belongs to the consumer.
//   - The consumer waits for the batch's fingerprints, charges its
//     virtual CPU, runs the dedup sink (which copies unique payloads into
//     container buffers), and recycles the batch and its slab.
//   - In streaming mode each input buffer is attached to the last batch
//     cut from it; the ring is FIFO, so by the time that batch is
//     recycled every earlier batch referencing the buffer has been
//     consumed.
//
// Virtual-time determinism: chunking and fingerprint costs accumulate as
// per-chunk time.Duration conversions (exactly the truncation the serial
// path performs per ChargeCPUBytes call) summed into the batch, so the
// account total is bit-identical to the serial path regardless of worker
// count or interleaving.
const (
	// ingestBatchChunks is the hand-off granularity: one hash-pool job and
	// one ring slot per this many chunks (~1 MiB at the default 4 KiB avg).
	ingestBatchChunks = 256
	// ingestRingDepth bounds batches in flight between producer and
	// consumer — the pipeline's window, and its backpressure on the cutter.
	ingestRingDepth = 4
	// ingestSlabBytes is the streaming read-buffer size (grown to 4×Max
	// for oversized chunk configurations).
	ingestSlabBytes = 1 << 20
	// headBytes is how much of the input base detection samples (§IV-A);
	// also the streaming head-probe size.
	headBytes = 8 << 20
)

// chunkBatch is one pipeline unit: a run of consecutive chunks, their
// fingerprints (filled asynchronously by the hash pool; wait on done),
// the virtual CPU its production cost, and optionally the input buffer
// this batch is the last user of.
type chunkBatch struct {
	chunks   []chunker.Chunk
	fps      []fingerprint.FP
	done     sync.WaitGroup
	chunkCPU time.Duration
	hashCPU  time.Duration
	slab     []byte
}

var batchPool = sync.Pool{New: func() any { return new(chunkBatch) }}

func getBatch() *chunkBatch { return batchPool.Get().(*chunkBatch) }

func putBatch(b *chunkBatch) {
	if b.slab != nil {
		putSlab(b.slab)
		b.slab = nil
	}
	b.chunks = b.chunks[:0]
	b.fps = b.fps[:0]
	b.chunkCPU, b.hashCPU = 0, 0
	batchPool.Put(b)
}

// slabPool recycles streaming read buffers. Entries may differ in size
// across configurations; getSlab drops undersized ones.
var slabPool = sync.Pool{New: func() any { return (*[]byte)(nil) }}

func getSlab(n int) []byte {
	if p, _ := slabPool.Get().(*[]byte); p != nil && cap(*p) >= n {
		return (*p)[:n]
	}
	return make([]byte, n)
}

func putSlab(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	slabPool.Put(&b)
}

// ingestRun is the per-backup pipeline state, pooled on the L-node so a
// steady stream of backups reuses the ring, cutter, and channels.
type ingestRun struct {
	node      *LNode
	alg       fingerprint.Algorithm
	cutter    chunker.Cutter
	cutCost   float64
	hashCost  float64
	maxChunk  int
	slabBytes int

	// ring carries batches producer → consumer; a nil batch is the
	// end-of-stream sentinel (the channel is never closed, so pooled runs
	// can reuse it).
	ring chan *chunkBatch
	// stop aborts the producer when the consumer fails mid-stream.
	stop    chan struct{}
	stopped bool

	prodErr  error
	produced int64
}

// newIngestRun takes a run from the node's pool; the cutter and ring
// survive reuse, only the per-run state resets.
func (n *LNode) newIngestRun() *ingestRun {
	cfg := &n.repo.Config
	r, _ := n.runs.Get().(*ingestRun)
	if r == nil {
		r = &ingestRun{ring: make(chan *chunkBatch, ingestRingDepth)}
	}
	if r.cutter == nil {
		r.cutter = n.repo.Cutter()
		r.maxChunk = r.cutter.Params().Max
		r.slabBytes = ingestSlabBytes
		if m := 4 * r.maxChunk; m > r.slabBytes {
			r.slabBytes = m
		}
	}
	r.node = n
	r.alg = cfg.FingerprintAlg
	r.cutCost = r.cutter.PerByteCost(cfg.Costs)
	r.hashCost = cfg.Costs.SHA1PerByte
	if cfg.FingerprintAlg == fingerprint.SHA256 {
		r.hashCost = cfg.Costs.SHA256PerByte
	}
	if r.stop == nil || r.stopped {
		r.stop = make(chan struct{})
		r.stopped = false
	}
	r.prodErr = nil
	r.produced = 0
	return r
}

func (n *LNode) putIngestRun(r *ingestRun) { n.runs.Put(r) }

// emit hands a finished batch to the hash pool and the ring. owned, if
// non-nil, is an input buffer whose last chunks live in this batch; it is
// recycled when the batch is. Returns false when the consumer aborted.
func (r *ingestRun) emit(b *chunkBatch, owned []byte) bool {
	b.slab = owned
	if cap(b.fps) < len(b.chunks) {
		b.fps = make([]fingerprint.FP, len(b.chunks))
	}
	b.fps = b.fps[:len(b.chunks)]
	b.done.Add(1)
	if pool := r.node.hashers(); pool != nil && len(b.chunks) > 0 {
		pool.submit(hashJob{alg: r.alg, chunks: b.chunks, fps: b.fps, done: &b.done})
	} else {
		for i := range b.chunks {
			b.fps[i] = fingerprint.Of(r.alg, b.chunks[i].Data)
		}
		b.done.Done()
	}
	select {
	case r.ring <- b:
		return true
	case <-r.stop:
		b.done.Wait()
		putBatch(b)
		return false
	}
}

// cut appends the next chunk starting at buf[pos] to b, charging its
// production cost into the batch. Returns the chunk length.
func (r *ingestRun) cut(b *chunkBatch, buf []byte, pos int, base int64) int {
	n := r.cutter.Cut(buf[pos:])
	if n <= 0 { // defensive, mirrors chunker.Stream.Next
		n = 1
	}
	b.chunks = append(b.chunks, chunker.Chunk{Offset: base + int64(pos), Data: buf[pos : pos+n]})
	b.chunkCPU += time.Duration(float64(n) * r.cutCost)
	b.hashCPU += time.Duration(float64(n) * r.hashCost)
	return n
}

// produceBuffer cuts an in-memory version into batches. Runs as a
// goroutine; always terminates the ring with the nil sentinel.
func (r *ingestRun) produceBuffer(data []byte) {
	defer func() { r.ring <- nil }()
	b := getBatch()
	pos := 0
	for pos < len(data) {
		pos += r.cut(b, data, pos, 0)
		if len(b.chunks) >= ingestBatchChunks {
			if !r.emit(b, nil) {
				return
			}
			b = getBatch()
		}
	}
	if len(b.chunks) > 0 {
		if !r.emit(b, nil) {
			return
		}
	} else {
		putBatch(b)
	}
	r.produced = int64(len(data))
}

// produceStream cuts head followed by rd into batches, reading through
// recycled slabs. A chunk is cut only when the lookahead covers the
// cutter's maximum chunk size (or the stream hit EOF), which makes the
// boundaries identical to cutting the whole input as one buffer. Runs as
// a goroutine; always terminates the ring with the nil sentinel.
func (r *ingestRun) produceStream(head []byte, rd io.Reader) {
	defer func() { r.ring <- nil }()
	b := getBatch()
	buf := head
	pos := 0
	var base int64
	eof := false
	for {
		for pos < len(buf) && (eof || len(buf)-pos >= r.maxChunk) {
			n := r.cut(b, buf, pos, base)
			pos += n
			r.produced += int64(n)
			if len(b.chunks) >= ingestBatchChunks {
				if !r.emit(b, nil) {
					return
				}
				b = getBatch()
			}
		}
		if eof {
			break
		}
		// Refill: copy the (< maxChunk) tail into a fresh slab and hand the
		// current buffer to the outgoing batch — the FIFO ring guarantees
		// every earlier batch referencing it is consumed first.
		slab := getSlab(r.slabBytes)
		rem := copy(slab, buf[pos:])
		if !r.emit(b, buf) {
			return
		}
		b = getBatch()
		base += int64(pos)
		n, err := io.ReadFull(rd, slab[rem:])
		buf, pos = slab[:rem+n], 0
		switch err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			eof = true
		default:
			r.prodErr = fmt.Errorf("lnode: read stream: %w", err)
			putBatch(b)
			putSlab(slab)
			return
		}
	}
	// The final buffer travels with the final batch (possibly empty).
	if len(b.chunks) > 0 || len(buf) > 0 {
		if !r.emit(b, buf) {
			return
		}
	} else {
		putBatch(b)
	}
}

// consume drains the ring in order, charging each batch's virtual CPU and
// feeding it to sink. On sink error the producer is aborted and the ring
// drained so the run stays reusable. acct may be nil (measurement runs).
func (r *ingestRun) consume(acct *simclock.Account, sink func(*chunkBatch) error) error {
	var firstErr error
	for {
		b := <-r.ring
		if b == nil {
			break
		}
		b.done.Wait()
		if firstErr == nil {
			if acct != nil {
				acct.ChargeCPU(simclock.PhaseChunking, b.chunkCPU)
				acct.ChargeCPU(simclock.PhaseFingerprint, b.hashCPU)
			}
			if err := sink(b); err != nil {
				firstErr = err
				r.stopped = true
				close(r.stop)
			}
		}
		putBatch(b)
	}
	if firstErr != nil {
		return firstErr
	}
	return r.prodErr
}

// probeVerdict is the dedup decision for one chunk, captured before any
// emission so the emit pass is pure output.
type probeVerdict struct {
	e    dedupEntry
	hit  bool
	gid  container.ID
	ghit bool
}

// consumeBatch is STEP 2 over one batch: probe every chunk in input order
// (local dedup cache, then recipe-index sample fetch, then — optionally —
// one batched global-index lookup for the misses), then emit the verdicts
// in input order. Probing never depends on emission state, so the split
// produces bit-identical recipes to the interleaved serial loop.
func (j *backupJob) consumeBatch(b *chunkBatch) error {
	if cap(j.verdicts) < len(b.chunks) {
		j.verdicts = make([]probeVerdict, len(b.chunks))
	}
	v := j.verdicts[:len(b.chunks)]
	for i := range b.chunks {
		fp := b.fps[i]
		j.acct.ChargeCPU(simclock.PhaseIndexQuery, j.cfg.Costs.IndexLookup)
		e, hit := j.dedupCache[fp]
		if !hit && j.baseIndex != nil {
			if segNo, found := j.baseIndex.Samples[fp]; found {
				if err := j.fetchSegment(int(segNo)); err != nil {
					return err
				}
				e, hit = j.dedupCache[fp]
			}
		}
		v[i] = probeVerdict{e: e, hit: hit}
	}
	if j.cfg.InlineGlobalProbe && j.node.repo.Global != nil {
		if err := j.probeGlobal(b, v); err != nil {
			return err
		}
	}
	for i := range b.chunks {
		switch {
		case v[i].hit:
			j.emitDuplicate(v[i].e, b.chunks[i])
		case v[i].ghit:
			j.emitGlobalDuplicate(b.fps[i], v[i].gid, b.chunks[i])
		default:
			if err := j.emitUnique(b.fps[i], b.chunks[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// probeGlobal resolves local misses against the global fingerprint index
// in one batched lookup. The paper dedups globally offline (G-node
// reverse deduplication, §V-A); this optional inline probe only ever hits
// fingerprints the G-node has already indexed, trading one batched index
// round-trip per ~ingestBatchChunks chunks for cross-file dedup at
// backup time.
func (j *backupJob) probeGlobal(b *chunkBatch, v []probeVerdict) error {
	j.gfps = j.gfps[:0]
	j.gidx = j.gidx[:0]
	for i := range v {
		if !v[i].hit {
			j.gfps = append(j.gfps, b.fps[i])
			j.gidx = append(j.gidx, i)
		}
	}
	if len(j.gfps) == 0 {
		return nil
	}
	ids, found, _, err := j.node.repo.Global.GetBatch(j.gfps)
	if err != nil {
		return fmt.Errorf("lnode: global probe: %w", err)
	}
	for k := range j.gfps {
		j.acct.ChargeCPU(simclock.PhaseIndexQuery, j.cfg.Costs.IndexLookup)
		j.stats.GlobalProbes++
		if found[k] {
			v[j.gidx[k]].ghit = true
			v[j.gidx[k]].gid = ids[k]
		}
	}
	return nil
}

// emitGlobalDuplicate records a chunk deduplicated against the global
// index: no new payload is stored, the recipe references the container
// the G-node indexed.
func (j *backupJob) emitGlobalDuplicate(fp fingerprint.FP, id container.ID, ch chunker.Chunk) {
	j.stats.NumDuplicates++
	j.stats.GlobalHits++
	j.stats.DuplicateBytes += int64(ch.Size())
	j.lastMatch = nil
	j.appendRecord(recipe.ChunkRecord{
		FP:             fp,
		Container:      id,
		Size:           uint32(ch.Size()),
		DuplicateTimes: 1,
	}, ch.Offset)
}

// dedupeFast is STEP 2 on the pooled pipeline for in-memory input.
func (j *backupJob) dedupeFast() error {
	r := j.node.newIngestRun()
	go r.produceBuffer(j.data)
	err := r.consume(j.acct, j.consumeBatch)
	j.node.putIngestRun(r)
	if err != nil {
		return err
	}
	return j.flushPending()
}

// dedupeStream is STEP 2 on the pooled pipeline for streaming input; it
// also learns the version's logical size as a side effect of cutting.
func (j *backupJob) dedupeStream(head []byte, rd io.Reader) error {
	r := j.node.newIngestRun()
	go r.produceStream(head, rd)
	err := r.consume(j.acct, j.consumeBatch)
	j.stats.LogicalBytes = r.produced
	j.node.putIngestRun(r)
	if err != nil {
		return err
	}
	return j.flushPending()
}

// IngestHandoff drives data through the pooled chunk→hash→ring hand-off
// with a counting sink — the steady-state allocation and throughput probe
// used by the ingest benchmark and the allocation-regression tests.
// Returns the number of chunks produced.
func (n *LNode) IngestHandoff(data []byte) int {
	r := n.newIngestRun()
	go r.produceBuffer(data)
	total := 0
	for {
		b := <-r.ring
		if b == nil {
			break
		}
		b.done.Wait()
		total += len(b.chunks)
		putBatch(b)
	}
	n.putIngestRun(r)
	return total
}

// LegacyHandoff is the pre-fast-path hand-off for the same work:
// materialize every chunk, then fingerprint with per-call spawned
// workers. Kept as the benchmark baseline IngestHandoff is gated against.
func LegacyHandoff(alg fingerprint.Algorithm, cutter chunker.Cutter, data []byte, workers int) int {
	chunks := chunker.SplitAll(data, cutter)
	fps := hashChunks(alg, chunks, workers)
	return len(fps)
}
