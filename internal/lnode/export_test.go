package lnode

// Hooks for the external engine property test (engine_property_test.go,
// package lnode_test). That test drives the concurrent job engine, and
// internal/jobs imports this package, so it has to live in the external
// test package to avoid an import cycle.
var (
	TestConfig = testConfig
	GenData    = genData
	Mutate     = mutate
)
