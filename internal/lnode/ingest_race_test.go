//go:build race

package lnode

// Race-instrumented builds run TestBackupStreamResidentMemory on a
// smaller stream (instrumentation slows cutting ~10x) with a laxer bound
// (the race allocator pads allocations).
const (
	streamTestBytes = 64 << 20
	streamHeapBound = 128 << 20

	raceEnabled = true
)
