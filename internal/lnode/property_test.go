package lnode

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/oss"
)

// Property: for ANY sequence of random mutations across ANY number of
// versions, with the full pipeline enabled (skip chunking, merging,
// reverse dedup, SCC) every version restores byte-identically and the
// audit finds nothing to sweep. This is the system's end-to-end safety
// invariant.
func TestQuickFullPipelineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	run := func(seed int64, nVersions, churn uint8) bool {
		versions := int(nVersions)%5 + 2
		changes := int(churn)%30 + 1

		cfg := testConfig()
		cfg.MergeThreshold = 2 // make merging fire within few versions
		repo, err := core.OpenRepo(oss.NewMem(), cfg)
		if err != nil {
			return false
		}
		ln := New(repo, "l0")
		gn := gnode.New(repo)

		data := genData(seed, 1<<20)
		var kept [][]byte
		for v := 0; v < versions; v++ {
			kept = append(kept, append([]byte{}, data...))
			st, err := ln.Backup("f", data)
			if err != nil {
				t.Logf("backup v%d: %v", v, err)
				return false
			}
			if _, err := gn.ReverseDedup(st.NewContainers); err != nil {
				t.Logf("reverse dedup v%d: %v", v, err)
				return false
			}
			if _, err := gn.CompactSparse("f", v, st.SparseContainers); err != nil {
				t.Logf("scc v%d: %v", v, err)
				return false
			}
			data = mutate(data, seed^int64(v+1)*7919, changes)
		}
		for v, want := range kept {
			var buf bytes.Buffer
			if _, err := ln.Restore("f", v, &buf); err != nil {
				t.Logf("restore v%d: %v", v, err)
				return false
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Logf("version %d corrupt", v)
				return false
			}
			if _, err := ln.Verify("f", v); err != nil {
				t.Logf("verify v%d: %v", v, err)
				return false
			}
		}
		audit, err := gn.FullSweep()
		if err != nil || audit.ContainersSwept != 0 {
			t.Logf("audit: %+v, %v", audit, err)
			return false
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{
		MaxCount: 8,
		Rand:     rand.New(rand.NewSource(99)),
	}); err != nil {
		t.Fatal(err)
	}
}

// Property: deleting any prefix of versions never affects the survivors.
func TestQuickRetentionSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	run := func(seed int64, delPrefix uint8) bool {
		const versions = 5
		cfg := testConfig()
		repo, err := core.OpenRepo(oss.NewMem(), cfg)
		if err != nil {
			return false
		}
		ln := New(repo, "l0")
		gn := gnode.New(repo)

		data := genData(seed, 512<<10)
		var kept [][]byte
		for v := 0; v < versions; v++ {
			kept = append(kept, append([]byte{}, data...))
			if _, err := ln.Backup("f", data); err != nil {
				return false
			}
			data = mutate(data, seed^int64(v+100), 8)
		}
		del := int(delPrefix) % versions // delete versions [0, del)
		for v := 0; v < del; v++ {
			if _, err := gn.DeleteVersion("f", v); err != nil {
				t.Logf("delete v%d: %v", v, err)
				return false
			}
		}
		for v := del; v < versions; v++ {
			var buf bytes.Buffer
			if _, err := ln.Restore("f", v, &buf); err != nil {
				t.Logf("restore v%d after deleting [0,%d): %v", v, del, err)
				return false
			}
			if !bytes.Equal(buf.Bytes(), kept[v]) {
				t.Logf("survivor v%d corrupt", v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{
		MaxCount: 8,
		Rand:     rand.New(rand.NewSource(7)),
	}); err != nil {
		t.Fatal(err)
	}
}
