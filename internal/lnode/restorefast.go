package lnode

import (
	"fmt"
	"io"
	"sync"

	"slimstore/internal/cache"
	"slimstore/internal/chunker"
	"slimstore/internal/fingerprint"
	"slimstore/internal/simclock"
)

// This file is the restore fast path (DESIGN.md §14): the read-side twin
// of the pooled ingest pipeline. The legacy emit (kept behind
// Config.LegacyRestore as the measured baseline) charges, verifies, and
// writes every chunk inside one sequential callback, so the OSS fetch,
// the per-chunk SHA, and the sink write serialise. The fast path splits
// them into a bounded pipeline:
//
//	policy emit ──ring──▶ verifier ──out──▶ writer
//
//   - The emit stage (the policy's goroutine) charges the chunk's virtual
//     CPU, copies the payload into a pooled slot, hands the slot to the
//     persistent fingerprint pool when verifying, and pushes it onto the
//     reassembly ring. Copying before returning honours the policies'
//     buffer ownership: a policy may evict or reuse the emitted bytes the
//     moment emit returns.
//   - The verifier drains the ring in order (the ring is FIFO and the
//     verifier is single, so reassembly is free), waits for each slot's
//     fingerprint, and compares it against the recipe's.
//   - The writer runs w.Write behind a depth-2 hand-off channel, so the
//     sink overlaps the next window's verification (double-buffered
//     write-behind).
//
// The ring depth (Config.RestoreWindow) bounds slots in flight, so a
// restore streams at O(window × chunk size) resident pipeline memory.
//
// Ownership discipline: a slot belongs to the emit stage until it enters
// the ring, then to the verifier, then to the writer, which recycles it.
// On abort the stage holding a slot recycles it after the fingerprint
// pool is done with it. The ring and out channels are never closed — the
// nil sentinel terminates both loops, so pooled runs reuse the channels.
//
// Virtual-time determinism: every charge is a per-chunk
// time.Duration(float64(n)·costPerByte) conversion issued on the emit
// stage in sequence order — exactly the serial path's truncation and
// order — so accounts are bit-identical to Config.LegacyRestore
// regardless of worker count or interleaving (TestRestoreTwinSerial).

// restoreOutDepth is the writer hand-off depth: one buffer being written
// while the next verified one waits — the double-buffered write-behind.
const restoreOutDepth = 2

// restoreSlot is one in-flight chunk: a pooled payload copy, the
// recipe's expected fingerprint, and the computed one (filled
// asynchronously by the fingerprint pool; wait on done).
type restoreSlot struct {
	buf  []byte
	idx  int            // position in the restore sequence (error reports)
	want fingerprint.FP // recipe fingerprint (verify runs only)
	need bool           // fingerprint not yet computed: verifier hashes inline

	// chunk/got are the slot's single-chunk view for hashJob, so a pool
	// submission allocates nothing.
	chunk [1]chunker.Chunk
	got   [1]fingerprint.FP
	done  sync.WaitGroup
}

var restoreSlotPool = sync.Pool{New: func() any { return new(restoreSlot) }}

func getRestoreSlot() *restoreSlot { return restoreSlotPool.Get().(*restoreSlot) }

func putRestoreSlot(s *restoreSlot) {
	s.buf = s.buf[:0]
	s.need = false
	s.chunk[0] = chunker.Chunk{}
	restoreSlotPool.Put(s)
}

// restoreRun is the per-restore pipeline state, pooled on the L-node so a
// steady stream of restore/verify jobs reuses the ring and channels.
type restoreRun struct {
	node   *LNode
	acct   *simclock.Account
	w      io.Writer
	verify bool
	alg    fingerprint.Algorithm
	pool   *hashPool // nil = hash on the verifier (VerifyWorkers < 0)

	emitCost float64 // Costs.RestorePerByte
	hashCost float64 // per-byte fingerprint cost, serial-path identical

	fileID  string
	version int
	seq     []cache.Request
	pos     int
	written int64 // writer-accumulated sink bytes (range restores)

	// ring carries slots emit → verifier; out carries verified slots to
	// the writer. A nil slot is the end-of-stream sentinel on both (the
	// channels are never closed, so pooled runs reuse them).
	ring chan *restoreSlot
	out  chan *restoreSlot
	// stop aborts the emit stage when verification or the sink fails.
	stop    chan struct{}
	stopped bool

	mu  sync.Mutex
	err error // first pipeline error
	wg  sync.WaitGroup
}

// newRestoreRun takes a run from the node's pool and starts its verifier
// and writer; the channels survive reuse unless the configured window
// changed. Callers must finish() the run on every path.
func (n *LNode) newRestoreRun(acct *simclock.Account, w io.Writer, verify bool, seq []cache.Request, fileID string, version int) *restoreRun {
	cfg := &n.repo.Config
	window := cfg.RestoreWindow
	if window < 2 {
		window = 2
	}
	r, _ := n.rruns.Get().(*restoreRun)
	if r == nil || cap(r.ring) != window {
		r = &restoreRun{
			ring: make(chan *restoreSlot, window),
			out:  make(chan *restoreSlot, restoreOutDepth),
		}
	}
	if r.stop == nil || r.stopped {
		r.stop = make(chan struct{})
		r.stopped = false
	}
	r.node = n
	r.acct = acct
	r.w = w
	r.verify = verify
	r.alg = cfg.FingerprintAlg
	r.pool = nil
	if verify {
		r.pool = n.verifiers()
	}
	r.emitCost = cfg.Costs.RestorePerByte
	r.hashCost = cfg.Costs.SHA1PerByte
	if cfg.FingerprintAlg == fingerprint.SHA256 {
		r.hashCost = cfg.Costs.SHA256PerByte
	}
	r.fileID, r.version = fileID, version
	r.seq = seq
	r.pos = 0
	r.written = 0
	r.err = nil
	r.wg.Add(2)
	go r.verifyLoop()
	go r.writeLoop()
	return r
}

// fail records the pipeline's first error and aborts the emit stage.
func (r *restoreRun) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	if !r.stopped {
		r.stopped = true
		close(r.stop)
	}
	r.mu.Unlock()
}

func (r *restoreRun) failed() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// emit is the cache.Emit of the fast path. It runs on the policy's
// goroutine, so charges land in sequence order.
func (r *restoreRun) emit(data []byte) error {
	if err := r.failed(); err != nil {
		return err
	}
	r.acct.ChargeCPUBytes(simclock.PhaseOther, int64(len(data)), r.emitCost)
	if r.verify {
		// Same per-chunk conversion the serial path's repo.Fingerprint
		// charge performs, issued here so totals stay bit-identical.
		r.acct.ChargeCPUBytes(simclock.PhaseFingerprint, int64(len(data)), r.hashCost)
	}
	return r.push(data)
}

// push copies data into a pooled slot and queues it on the reassembly
// ring. The caller has already issued the chunk's virtual charges (the
// range-restore emit charges the full chunk but pushes only the trimmed
// payload).
func (r *restoreRun) push(data []byte) error {
	s := getRestoreSlot()
	s.buf = append(s.buf[:0], data...)
	s.idx = r.pos
	r.pos++
	if r.verify {
		s.want = r.seq[s.idx].FP
		if r.pool != nil {
			s.chunk[0] = chunker.Chunk{Data: s.buf}
			s.done.Add(1)
			r.pool.submit(hashJob{alg: r.alg, chunks: s.chunk[:], fps: s.got[:], done: &s.done})
		} else {
			s.need = true // verifier hashes inline
		}
	}
	select {
	case r.ring <- s:
		return nil
	case <-r.stop:
		s.done.Wait()
		putRestoreSlot(s)
		return r.failed()
	}
}

// verifyLoop drains the ring in order, resolves each slot's fingerprint,
// and forwards verified slots to the writer. On mismatch it aborts the
// emit stage and keeps draining so the run stays reusable.
func (r *restoreRun) verifyLoop() {
	defer r.wg.Done()
	for {
		s := <-r.ring
		if s == nil {
			r.out <- nil
			return
		}
		if r.verify {
			if s.need {
				s.got[0] = fingerprint.Of(r.alg, s.buf)
			} else {
				s.done.Wait()
			}
			if r.failed() == nil && s.got[0] != s.want {
				r.fail(fmt.Errorf("lnode: verify %s v%d: chunk %d corrupt (got %s, want %s)",
					r.fileID, r.version, s.idx, s.got[0].Short(), s.want.Short()))
			}
		}
		if r.failed() != nil {
			putRestoreSlot(s) // drain mode: recycle without forwarding
		} else {
			r.out <- s
		}
	}
}

// writeLoop is the write-behind sink: it writes verified slots in order
// and recycles them. The writer always drains to the sentinel — on error
// it stops writing but keeps recycling, so the verifier never blocks.
func (r *restoreRun) writeLoop() {
	defer r.wg.Done()
	for {
		s := <-r.out
		if s == nil {
			return
		}
		if r.failed() == nil {
			nw, werr := r.w.Write(s.buf)
			r.written += int64(nw)
			if werr != nil {
				r.fail(werr)
			}
		}
		putRestoreSlot(s)
	}
}

// finish terminates the pipeline, joins its goroutines, recycles the
// run, and folds the pipeline's error into the policy's: the pipeline
// error wins (it is the first failure in sequence order; the policy
// error is either the same one propagated through emit, or a fetch error
// that a serial execution would have hit later). Returns the sink bytes
// the writer delivered. The run must not be used after finish.
func (r *restoreRun) finish(policyErr error) (int64, error) {
	r.ring <- nil
	r.wg.Wait()
	err := r.err
	if err == nil {
		err = policyErr
	}
	written := r.written
	r.acct, r.w, r.seq = nil, nil, nil
	r.node.rruns.Put(r)
	return written, err
}

// verifiers returns the fingerprint pool verification fans out over:
// the node's ingest hash pool when the configured sizes agree (one pool,
// shared backpressure), a dedicated pool otherwise. Nil when
// VerifyWorkers < 0 (hash on the verifier stage) or the node is closed.
func (n *LNode) verifiers() *hashPool {
	w := n.repo.Config.VerifyWorkers
	if w <= 0 {
		return nil
	}
	if w == n.repo.Config.HashWorkers {
		return n.hashers()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	if n.vpool == nil {
		n.vpool = newHashPool(w)
	}
	return n.vpool
}

// RestoreHandoff drives payloads through the pooled emit→verify→write
// pipeline into a discarding sink — the steady-state allocation and
// throughput probe used by the restorefast benchmark and the
// allocation-regression tests. Returns the number of chunks written.
func (n *LNode) RestoreHandoff(chunks [][]byte, seq []cache.Request, verify bool) int {
	r := n.newRestoreRun(simclock.NewAccount(), io.Discard, verify, seq, "handoff", 0)
	for _, c := range chunks {
		if err := r.emit(c); err != nil {
			break
		}
	}
	if _, err := r.finish(nil); err != nil {
		return -1
	}
	return len(chunks)
}

// LegacyRestoreHandoff is the same hand-off without pooling: every chunk
// allocates its own slot and payload copy before verification and the
// sink write, the way a naive pipelined emit would. Kept as the
// benchmark baseline RestoreHandoff is gated against.
func LegacyRestoreHandoff(alg fingerprint.Algorithm, chunks [][]byte, seq []cache.Request, verify bool) int {
	for i, c := range chunks {
		buf := append([]byte(nil), c...)
		if verify {
			if fingerprint.Of(alg, buf) != seq[i].FP {
				return -1
			}
		}
		if _, err := io.Discard.Write(buf); err != nil {
			return -1
		}
	}
	return len(chunks)
}
