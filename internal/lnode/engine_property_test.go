// Engine interleaving property test. It lives in package lnode_test
// (not lnode) because it drives internal/jobs, which imports lnode; the
// helpers it shares with property_test.go are re-exported by
// export_test.go.
package lnode_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/jobs"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
)

// engineFile mirrors what the engine should have durably stored for one
// file: the surviving versions and their exact bytes, the head content
// the next backup mutates, and the pending G-node pass for the last
// finished backup.
type engineFile struct {
	id       string
	data     []byte
	versions map[int][]byte
	next     int
	optimize *jobs.Job
}

func (f *engineFile) pickVersion(rng *rand.Rand) (int, []byte, bool) {
	if len(f.versions) == 0 {
		return 0, nil, false
	}
	vs := make([]int, 0, len(f.versions))
	for v := range f.versions {
		vs = append(vs, v)
	}
	// Map iteration order is random in a way the seed does not control;
	// pick deterministically from the sorted set.
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
	v := vs[rng.Intn(len(vs))]
	return v, f.versions[v], true
}

func (f *engineFile) oldest() (int, bool) {
	if len(f.versions) == 0 {
		return 0, false
	}
	min, first := 0, true
	for v := range f.versions {
		if first || v < min {
			min, first = v, false
		}
	}
	return min, true
}

// Property: for ANY seeded interleaving of backup / restore / verify /
// delete / optimize / sweep jobs run CONCURRENTLY through the engine,
// under EVERY restore cache policy: every job succeeds, every restore is
// byte-identical to what was backed up, version numbering stays
// sequential, space accounting is conserved wave over wave (stored bytes
// explain all container growth; deletes never grow it), and a final
// audit sweeps nothing. This is the concurrent analogue of
// TestQuickFullPipelineRoundTrip in property_test.go.
func TestQuickEngineInterleavings(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	for i, policy := range []string{"fv", "opt", "alacc", "lru"} {
		policy, quickSeed := policy, int64(1000+i)
		t.Run(policy, func(t *testing.T) {
			t.Parallel()
			run := func(seed int64, waveSel, churnSel uint8) bool {
				waves := int(waveSel)%4 + 3
				churn := int(churnSel)%16 + 4
				err := runEngineInterleaving(policy, seed, waves, churn)
				if err != nil {
					t.Logf("policy %s seed %d waves %d churn %d: %v",
						policy, seed, waves, churn, err)
					return false
				}
				return true
			}
			if err := quick.Check(run, &quick.Config{
				MaxCount: 3,
				Rand:     rand.New(rand.NewSource(quickSeed)),
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func runEngineInterleaving(policy string, seed int64, waves, churn int) error {
	rng := rand.New(rand.NewSource(seed))
	cfg := lnode.TestConfig()
	cfg.RestorePolicy = policy
	cfg.MergeThreshold = 2 // let chunk merging fire within few versions
	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, cfg)
	if err != nil {
		return err
	}
	eng := jobs.New(repo, gnode.New(repo), jobs.Options{LNodes: 4})
	defer eng.Close()
	ctx := context.Background()

	files := make([]*engineFile, 3)
	for i := range files {
		files[i] = &engineFile{
			id:       fmt.Sprintf("db/f%d", i),
			data:     lnode.GenData(seed^int64(i*31+1), 192<<10),
			versions: make(map[int][]byte),
		}
	}

	prevSpace := mem.BytesWithPrefix("containers/")
	for w := 0; w < waves; w++ {
		var batch []jobs.Job
		var checks []func(jobs.Result) error
		var storedWave int64
		add := func(j jobs.Job, check func(jobs.Result) error) {
			batch = append(batch, j)
			checks = append(checks, check)
		}

		// One job per file per wave, so jobs in a wave never conflict on
		// a (file, version) pair; the engine runs the wave concurrently
		// across its 4 L-nodes.
		for _, f := range files {
			f := f
			switch op := rng.Intn(6); {
			case op <= 1 || len(f.versions) == 0: // backup a new version
				if len(f.versions) > 0 {
					f.data = lnode.Mutate(f.data, seed^int64(w*131+len(f.id)), churn)
				}
				data := append([]byte(nil), f.data...)
				want := f.next
				add(jobs.Job{Kind: jobs.Backup, FileID: f.id, Data: data},
					func(r jobs.Result) error {
						if r.Err != nil {
							return fmt.Errorf("backup %s: %w", f.id, r.Err)
						}
						st := r.Backup
						if st.Version != want {
							return fmt.Errorf("backup %s got version %d, model expects %d", f.id, st.Version, want)
						}
						if st.DuplicateBytes < 0 || st.DuplicateBytes > st.LogicalBytes {
							return fmt.Errorf("backup %s v%d: DuplicateBytes %d of %d logical", f.id, st.Version, st.DuplicateBytes, st.LogicalBytes)
						}
						if st.StoredBytes < st.LogicalBytes-st.DuplicateBytes {
							return fmt.Errorf("backup %s v%d: stored %d < logical %d - duplicate %d (lost bytes)",
								f.id, st.Version, st.StoredBytes, st.LogicalBytes, st.DuplicateBytes)
						}
						storedWave += st.StoredBytes
						f.versions[st.Version] = data
						f.next = st.Version + 1
						f.optimize = &jobs.Job{
							Kind: jobs.Optimize, FileID: f.id, Version: st.Version,
							NewContainers: st.NewContainers, Sparse: st.SparseContainers,
						}
						return nil
					})
			case op == 2: // restore a random surviving version
				v, want, _ := f.pickVersion(rng)
				var buf bytes.Buffer
				add(jobs.Job{Kind: jobs.Restore, FileID: f.id, Version: v, Out: &buf},
					func(r jobs.Result) error {
						if r.Err != nil {
							return fmt.Errorf("restore %s v%d: %w", f.id, v, r.Err)
						}
						if !bytes.Equal(buf.Bytes(), want) {
							return fmt.Errorf("restore %s v%d: %d bytes differ from the %d backed up", f.id, v, buf.Len(), len(want))
						}
						return nil
					})
			case op == 3: // verify a random surviving version
				v, _, _ := f.pickVersion(rng)
				add(jobs.Job{Kind: jobs.Verify, FileID: f.id, Version: v},
					func(r jobs.Result) error {
						if r.Err != nil {
							return fmt.Errorf("verify %s v%d: %w", f.id, v, r.Err)
						}
						return nil
					})
			case op == 4 && len(f.versions) >= 2: // delete the oldest version
				v, _ := f.oldest()
				add(jobs.Job{Kind: jobs.Delete, FileID: f.id, Version: v},
					func(r jobs.Result) error {
						if r.Err != nil {
							return fmt.Errorf("delete %s v%d: %w", f.id, v, r.Err)
						}
						delete(f.versions, v)
						return nil
					})
			case op == 5 && f.optimize != nil: // G-node pass for the last backup
				j := *f.optimize
				f.optimize = nil
				add(j, func(r jobs.Result) error {
					if r.Err != nil {
						return fmt.Errorf("optimize %s v%d: %w", j.FileID, j.Version, r.Err)
					}
					return nil
				})
			}
		}
		if rng.Intn(4) == 0 { // occasionally audit mid-flight
			add(jobs.Job{Kind: jobs.Sweep}, func(r jobs.Result) error {
				if r.Err != nil {
					return fmt.Errorf("sweep: %w", r.Err)
				}
				return nil
			})
		}

		for i, r := range eng.Run(ctx, batch) {
			if err := checks[i](r); err != nil {
				return fmt.Errorf("wave %d: %w", w, err)
			}
		}

		// Monotone space accounting: container space may only grow by
		// what this wave's backups reported as stored (plus bounded
		// framing/metadata overhead); deletes and compaction only shrink
		// it. A violation means bytes appeared that no stat accounts for.
		space := mem.BytesWithPrefix("containers/")
		if slack := storedWave/4 + 512<<10; space > prevSpace+storedWave+slack {
			return fmt.Errorf("wave %d: container space %d > previous %d + stored %d + slack %d",
				w, space, prevSpace, storedWave, slack)
		}
		prevSpace = space
	}

	// Quiesce: every surviving version of every file must restore
	// byte-identically and verify, all through the engine at once.
	var batch []jobs.Job
	var checks []func(jobs.Result) error
	for _, f := range files {
		for v, want := range f.versions {
			f, v, want := f, v, want
			var buf bytes.Buffer
			batch = append(batch, jobs.Job{Kind: jobs.Restore, FileID: f.id, Version: v, Out: &buf})
			checks = append(checks, func(r jobs.Result) error {
				if r.Err != nil {
					return fmt.Errorf("final restore %s v%d: %w", f.id, v, r.Err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					return fmt.Errorf("final restore %s v%d differs", f.id, v)
				}
				return nil
			})
			batch = append(batch, jobs.Job{Kind: jobs.Verify, FileID: f.id, Version: v})
			checks = append(checks, func(r jobs.Result) error {
				if r.Err != nil {
					return fmt.Errorf("final verify %s v%d: %w", f.id, v, r.Err)
				}
				return nil
			})
		}
	}
	for i, r := range eng.Run(ctx, batch) {
		if err := checks[i](r); err != nil {
			return err
		}
	}

	// Nothing may dangle: with every job complete, the audit must find
	// every container reachable.
	res := eng.Run(ctx, []jobs.Job{{Kind: jobs.Sweep}})
	if res[0].Err != nil {
		return fmt.Errorf("final sweep: %w", res[0].Err)
	}
	if res[0].Audit.ContainersSwept != 0 {
		return fmt.Errorf("final sweep reclaimed %d containers: chunks were lost or leaked", res[0].Audit.ContainersSwept)
	}
	st := eng.Stats()
	if st.Failed != 0 || st.Completed != st.Submitted {
		return fmt.Errorf("engine stats inconsistent: %+v", st)
	}
	return nil
}
