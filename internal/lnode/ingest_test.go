package lnode

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"

	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/oss"
	"slimstore/internal/recipe"
)

// fastConfig is testConfig with the history-aware accelerations off, which
// routes STEP 2 through the pooled ingest fast path (ingest.go).
func fastConfig() core.Config {
	cfg := testConfig()
	cfg.SkipChunking = false
	cfg.ChunkMerging = false
	return cfg
}

// comparable strips the per-job account pointer so twin stats can be
// compared field-for-field (including virtual Elapsed).
func comparableStats(s *BackupStats) BackupStats {
	c := *s
	c.Account = nil
	return c
}

// backupVersions runs two versions of a file through a fresh repo and
// returns stats and full recipes.
func backupVersions(t *testing.T, cfg core.Config, versions [][]byte) ([]BackupStats, []*recipe.Recipe) {
	t.Helper()
	n, repo := newNode(t, cfg)
	defer n.Close()
	var stats []BackupStats
	var recs []*recipe.Recipe
	for i, data := range versions {
		st, err := n.Backup("twin", data)
		if err != nil {
			t.Fatalf("backup v%d: %v", i, err)
		}
		stats = append(stats, comparableStats(st))
		r, err := repo.RecipesFor(nil).GetRecipe("twin", st.Version)
		if err != nil {
			t.Fatalf("get recipe v%d: %v", i, err)
		}
		recs = append(recs, r)
	}
	return stats, recs
}

// TestIngestTwinSerial pins the fast path to the serial reference: same
// chunk boundaries, fingerprints, recipes, dedup stats, and bit-identical
// virtual time, for every cutter. Run under -race by scripts/check.sh,
// which also exercises the pipeline's concurrency.
func TestIngestTwinSerial(t *testing.T) {
	for _, algo := range []string{"fastcdc", "gear", "rabin", "buzhash", "fixed"} {
		t.Run(algo, func(t *testing.T) {
			v0 := genData(42, 3<<20)
			versions := [][]byte{v0, mutate(v0, 43, 150)}

			fastCfg := fastConfig()
			fastCfg.ChunkAlgo = algo
			fastStats, fastRecs := backupVersions(t, fastCfg, versions)

			serialCfg := fastConfig()
			serialCfg.ChunkAlgo = algo
			serialCfg.HashWorkers = -1 // serial STEP 2 reference
			serialStats, serialRecs := backupVersions(t, serialCfg, versions)

			for i := range versions {
				if !reflect.DeepEqual(fastStats[i], serialStats[i]) {
					t.Errorf("v%d stats diverge:\nfast:   %+v\nserial: %+v", i, fastStats[i], serialStats[i])
				}
				if !reflect.DeepEqual(fastRecs[i], serialRecs[i]) {
					t.Errorf("v%d recipes diverge", i)
				}
			}
		})
	}
}

// TestIngestTwinLegacy pins the fast path against the legacy pipelined
// ingest on recipes and dedup counters. (Virtual time is excluded: the
// legacy path charges fingerprinting as one lump sum, which may round
// differently from per-chunk charging by a few nanoseconds.)
func TestIngestTwinLegacy(t *testing.T) {
	v0 := genData(17, 3<<20)
	versions := [][]byte{v0, mutate(v0, 18, 150)}

	fastStats, fastRecs := backupVersions(t, fastConfig(), versions)

	legacyCfg := fastConfig()
	legacyCfg.LegacyIngest = true
	legacyStats, legacyRecs := backupVersions(t, legacyCfg, versions)

	for i := range versions {
		f, l := fastStats[i], legacyStats[i]
		f.Elapsed, l.Elapsed = 0, 0
		if !reflect.DeepEqual(f, l) {
			t.Errorf("v%d stats diverge:\nfast:   %+v\nlegacy: %+v", i, f, l)
		}
		if !reflect.DeepEqual(fastRecs[i], legacyRecs[i]) {
			t.Errorf("v%d recipes diverge", i)
		}
	}
}

// TestBackupStreamTwin pins streaming ingest to buffered ingest: cutting
// through recycled slabs with bounded lookahead must reproduce the exact
// whole-buffer chunk boundaries, for every cutter. The input exceeds the
// head-probe size so the slab refill path (tail carry between buffers) is
// exercised.
func TestBackupStreamTwin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MiB stream per cutter")
	}
	for _, algo := range []string{"fastcdc", "gear", "rabin", "buzhash", "fixed"} {
		t.Run(algo, func(t *testing.T) {
			cfg := fastConfig()
			cfg.ChunkAlgo = algo
			v0 := genData(71, headBytes+2<<20)
			versions := [][]byte{v0, mutate(v0, 72, 100)}

			bufStats, bufRecs := backupVersions(t, cfg, versions)

			n, repo := newNode(t, cfg)
			defer n.Close()
			for i, data := range versions {
				st, err := n.BackupStream("twin", bytes.NewReader(data))
				if err != nil {
					t.Fatalf("stream backup v%d: %v", i, err)
				}
				if got := comparableStats(st); !reflect.DeepEqual(got, bufStats[i]) {
					t.Errorf("v%d stats diverge:\nstream: %+v\nbuffer: %+v", i, got, bufStats[i])
				}
				r, err := repo.RecipesFor(nil).GetRecipe("twin", st.Version)
				if err != nil {
					t.Fatalf("get recipe v%d: %v", i, err)
				}
				if !reflect.DeepEqual(r, bufRecs[i]) {
					t.Errorf("v%d recipes diverge", i)
				}
			}
			if got := restoreBytes(t, n, "twin", 1); !bytes.Equal(got, versions[1]) {
				t.Error("restore of streamed version diverges from input")
			}
		})
	}
}

// TestBackupStreamFallback covers the buffering fallback for
// configurations the streaming cutter cannot serve.
func TestBackupStreamFallback(t *testing.T) {
	cfg := testConfig() // history-aware accelerations on
	n, _ := newNode(t, cfg)
	defer n.Close()
	data := genData(5, 1<<20)
	st, err := n.BackupStream("f", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if st.LogicalBytes != int64(len(data)) {
		t.Fatalf("logical bytes = %d, want %d", st.LogicalBytes, len(data))
	}
	if got := restoreBytes(t, n, "f", 0); !bytes.Equal(got, data) {
		t.Error("restore diverges from input")
	}
}

// TestInlineGlobalProbe: chunks the local dedup window misses but the
// G-node has already indexed deduplicate inline via one batched
// global-index probe per chunk batch.
func TestInlineGlobalProbe(t *testing.T) {
	cfg := fastConfig()
	cfg.InlineGlobalProbe = true
	cfg.SimilarityMinScore = 2 // force a cold base so only the global index can hit
	n, repo := newNode(t, cfg)
	defer n.Close()

	data := genData(29, 2<<20)
	st1, err := n.Backup("origin", data)
	if err != nil {
		t.Fatal(err)
	}
	if st1.GlobalHits != 0 {
		t.Fatalf("first backup hit the empty global index: %d", st1.GlobalHits)
	}
	// Offline reverse dedup indexes the new containers' fingerprints.
	g := gnode.New(repo)
	if _, err := g.ReverseDedup(st1.NewContainers); err != nil {
		t.Fatal(err)
	}

	st2, err := n.Backup("copy", data)
	if err != nil {
		t.Fatal(err)
	}
	if st2.GlobalProbes == 0 || st2.GlobalHits == 0 {
		t.Fatalf("want global probes and hits, got probes=%d hits=%d", st2.GlobalProbes, st2.GlobalHits)
	}
	if st2.StoredBytes >= st1.StoredBytes/2 {
		t.Errorf("global dedup stored %d bytes of a fully duplicate file (first version stored %d)",
			st2.StoredBytes, st1.StoredBytes)
	}
	if got := restoreBytes(t, n, "copy", 0); !bytes.Equal(got, data) {
		t.Error("restore through globally deduped recipe diverges")
	}
}

// TestIngestHandoffAllocs is the steady-state allocation gate of the fast
// path: the pooled chunk→hash→ring hand-off must allocate at least 10x
// less per pass than the legacy materialize-everything hand-off.
func TestIngestHandoffAllocs(t *testing.T) {
	cfg := fastConfig()
	n, repo := newNode(t, cfg)
	defer n.Close()
	data := genData(3, 4<<20)
	want := len(chunker.SplitAll(data, repo.Cutter()))

	// Pin the GC so sync.Pool contents survive the measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for i := 0; i < 3; i++ { // warm the batch/run pools and goroutine cache
		if got := n.IngestHandoff(data); got != want {
			t.Fatalf("handoff produced %d chunks, want %d", got, want)
		}
	}
	fast := testing.AllocsPerRun(10, func() { n.IngestHandoff(data) })

	cutter := repo.Cutter()
	legacy := testing.AllocsPerRun(10, func() {
		LegacyHandoff(cfg.FingerprintAlg, cutter, data, cfg.HashWorkers)
	})

	t.Logf("allocs/pass over %d chunks: fast=%.1f legacy=%.1f", want, fast, legacy)
	if raceEnabled {
		// Race instrumentation allocates shadow state per goroutine and
		// channel op; the counts only mean anything uninstrumented.
		t.Skip("allocation gate skipped under -race")
	}
	if fast > 4 {
		t.Errorf("fast hand-off allocates %.1f/pass, want <= 4", fast)
	}
	if fast*10 > legacy {
		t.Errorf("fast hand-off %.1f allocs/pass is not 10x below legacy %.1f", fast, legacy)
	}
}

// discardStore drops container payloads on write and delegates everything
// else, so a stream test can push far more data than it wants resident.
type discardStore struct{ oss.Store }

func (s discardStore) Put(key string, data []byte) error {
	if strings.HasPrefix(key, container.Prefix) && strings.HasSuffix(key, ".data") {
		return nil
	}
	return s.Store.Put(key, data)
}

// rndReader yields a deterministic pseudo-random byte stream (splitmix64).
type rndReader struct{ state uint64 }

func (r *rndReader) Read(p []byte) (int, error) {
	for i := 0; i < len(p); i += 8 {
		r.state += 0x9e3779b97f4a7c15
		z := r.state
		z ^= z >> 30
		z *= 0xbf58476d1ce4e9b5
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		for j := 0; j < 8 && i+j < len(p); j++ {
			p[i+j] = byte(z >> (8 * uint(j)))
		}
	}
	return len(p), nil
}

// heapSampler wraps the input stream and samples live heap every
// sampleEvery bytes read.
type heapSampler struct {
	inner io.Reader
	since int64
	peak  uint64
}

const heapSampleEvery = 16 << 20

func (h *heapSampler) Read(p []byte) (int, error) {
	n, err := h.inner.Read(p)
	h.since += int64(n)
	if h.since >= heapSampleEvery {
		h.since = 0
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > h.peak {
			h.peak = ms.HeapAlloc
		}
	}
	return n, err
}

// TestBackupStreamResidentMemory is the O(window) gate: streaming a
// synthetic unique stream many times larger than the pipeline window must
// keep live heap bounded by the window (head probe + ring slabs + pack
// budget + recipe), not the input size. Input and bound are build-tag
// sized (ingest_norace_test.go / ingest_race_test.go).
func TestBackupStreamResidentMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("streams hundreds of MiB")
	}
	cfg := fastConfig()
	repo, err := core.OpenRepo(discardStore{oss.NewMem()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := New(repo, "l0")
	defer n.Close()

	src := &heapSampler{inner: io.LimitReader(&rndReader{state: 1}, streamTestBytes)}
	st, err := n.BackupStream("big", src)
	if err != nil {
		t.Fatal(err)
	}
	if st.LogicalBytes != streamTestBytes {
		t.Fatalf("logical bytes = %d, want %d", st.LogicalBytes, int64(streamTestBytes))
	}
	t.Logf("peak live heap %.1f MiB over a %d MiB stream (bound %d MiB)",
		float64(src.peak)/(1<<20), streamTestBytes>>20, int64(streamHeapBound)>>20)
	if src.peak > streamHeapBound {
		t.Errorf("peak live heap %d bytes exceeds O(window) bound %d", src.peak, int64(streamHeapBound))
	}
}

// TestBackupStreamReadError: a mid-stream read failure must surface and
// leave no goroutines wedged (the -race run doubles as the leak check).
func TestBackupStreamReadError(t *testing.T) {
	cfg := fastConfig()
	n, _ := newNode(t, cfg)
	defer n.Close()
	src := io.MultiReader(
		io.LimitReader(&rndReader{state: 2}, headBytes+4<<20),
		iotest{},
	)
	if _, err := n.BackupStream("bad", src); err == nil {
		t.Fatal("want read error to surface")
	}
}

type iotest struct{}

func (iotest) Read([]byte) (int, error) { return 0, io.ErrClosedPipe }

func BenchmarkIngestHandoff(b *testing.B) {
	cfg := fastConfig()
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	n := New(repo, "l0")
	defer n.Close()
	data := genData(3, 8<<20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.IngestHandoff(data)
	}
}

func BenchmarkLegacyHandoff(b *testing.B) {
	cfg := fastConfig()
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	cutter := repo.Cutter()
	data := genData(3, 8<<20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LegacyHandoff(cfg.FingerprintAlg, cutter, data, cfg.HashWorkers)
	}
}

// BenchmarkHashChunksCrossover locates the input size below which
// spawning hash workers costs more than hashing inline — the basis for
// the smallHashBatch threshold.
func BenchmarkHashChunksCrossover(b *testing.B) {
	cfg := fastConfig()
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	cutter := repo.Cutter()
	for _, nchunks := range []int{1, 2, 8, 64, 512} {
		data := genData(9, nchunks*cfg.ChunkParams.Avg)
		chunks := chunker.SplitAll(data, cutter)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("chunks=%d/workers=%d", len(chunks), workers), func(b *testing.B) {
				b.SetBytes(int64(len(data)))
				for i := 0; i < b.N; i++ {
					hashChunks(cfg.FingerprintAlg, chunks, workers)
				}
			})
		}
	}
}
