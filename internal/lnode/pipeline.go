package lnode

import (
	"sync"
	"sync/atomic"

	"slimstore/internal/chunker"
	"slimstore/internal/fingerprint"
	"slimstore/internal/simclock"
)

// This file is the parallel front stage of the backup pipeline:
// chunk → fingerprint run concurrently, feeding the (inherently serial)
// dedup-lookup stage, which in turn feeds the async pack stage
// (container.PackPool). The stage only exists when chunk boundaries are
// decided by content alone: skip chunking and chunk merging both make the
// next cut depend on the previous dedup verdict (chunker.Stream.SkipCut /
// Rewind), which serialises the loop by construction — with them enabled,
// parallelism comes from the hash pool in base detection and from the pack
// stage instead.
//
// Virtual-time accounting stays deterministic under this parallelism:
// simclock.Account charges are commutative sums, so the total is
// independent of worker interleaving, and chunk boundaries, fingerprints,
// and dedup decisions are computed exactly as in the serial path.

// smallHashBatch is the per-worker chunk count below which spawning (or
// feeding) workers costs more than hashing inline — measured by
// BenchmarkHashChunksCrossover.
const smallHashBatch = 2

// hashChunks fingerprints chunks with a bounded worker pool, preserving
// input order. workers <= 1 hashes inline, as do inputs too small to
// amortise the spawn (<= smallHashBatch chunks per worker). No simclock
// charges — callers account for the pass themselves (the probe pass
// bills OtherPerByte).
func hashChunks(alg fingerprint.Algorithm, chunks []chunker.Chunk, workers int) []fingerprint.FP {
	fps := make([]fingerprint.FP, len(chunks))
	if workers > len(chunks) {
		workers = len(chunks)
	}
	if workers > 1 && len(chunks) <= smallHashBatch*workers {
		workers = 1
	}
	if workers <= 1 {
		for i := range chunks {
			fps[i] = fingerprint.Of(alg, chunks[i].Data)
		}
		return fps
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				fps[i] = fingerprint.Of(alg, chunks[i].Data)
			}
		}()
	}
	wg.Wait()
	return fps
}

// dedupeLegacy is STEP 2 with the pre-fast-path parallel front stage: cut
// the whole stream (serial, cheap), materialize every chunk, fingerprint
// across HashWorkers per-call goroutines, then run the dedup lookups in
// order. Produces bit-identical recipes to the serial path. Kept (behind
// Config.LegacyIngest) as the measured baseline of the ingest experiment;
// the default fast path is the pooled batch pipeline in ingest.go.
func (j *backupJob) dedupeLegacy() error {
	cutter := j.node.repo.Cutter()
	stream := chunker.NewStream(j.data, cutter, j.acct, j.cfg.Costs)
	var chunks []chunker.Chunk
	for {
		ch, ok := stream.Next()
		if !ok {
			break
		}
		chunks = append(chunks, ch)
	}

	// Parallel fingerprint stage. The CPU charge is identical to the serial
	// path's per-chunk Repo.Fingerprint calls; summed here in one shot.
	per := j.cfg.Costs.SHA1PerByte
	if j.cfg.FingerprintAlg == fingerprint.SHA256 {
		per = j.cfg.Costs.SHA256PerByte
	}
	var hashedBytes int64
	for i := range chunks {
		hashedBytes += int64(chunks[i].Size())
	}
	j.acct.ChargeCPUBytes(simclock.PhaseFingerprint, hashedBytes, per)
	fps := hashChunks(j.cfg.FingerprintAlg, chunks, j.cfg.HashWorkers)

	for i := range chunks {
		ch, fp := chunks[i], fps[i]
		j.acct.ChargeCPU(simclock.PhaseIndexQuery, j.cfg.Costs.IndexLookup)
		e, hit := j.dedupCache[fp]
		if !hit && j.baseIndex != nil {
			if segNo, found := j.baseIndex.Samples[fp]; found {
				if err := j.fetchSegment(int(segNo)); err != nil {
					return err
				}
				e, hit = j.dedupCache[fp]
			}
		}
		if hit {
			j.emitDuplicate(e, ch)
			continue
		}
		if err := j.emitUnique(fp, ch); err != nil {
			return err
		}
	}
	return j.flushPending()
}
