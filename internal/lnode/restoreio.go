package lnode

import (
	"sync"

	"slimstore/internal/cache"
	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/simclock"
)

// restoreIO is the node-level fetch layer every restore's container reads
// go through (DESIGN.md §10). It sits between the per-job cache policy
// (which decides WHAT to keep) and the container store (which executes
// reads), and decides HOW each container is read:
//
//  1. A container resident in the node-wide shared cache is returned
//     without touching OSS (no simclock charge — another job already paid).
//  2. A container the planner judged sparse for this job's need-set is
//     fetched with coalesced ranged reads, charged to this job, and NOT
//     shared (a partial container only answers this job's requests).
//  3. Everything else is a full-object read through the shared cache's
//     singleflight: one OSS GET per container node-wide, charged to the
//     one job that runs it; concurrent requesters join for free.
//
// The layer is safe for concurrent use by the LAW prefetch workers.
type restoreIO struct {
	containers *container.Store     // this job's metered view
	session    *cache.SharedSession // nil = shared cache disabled
	metas      map[container.ID]*container.Meta
	need       map[container.ID]map[fingerprint.FP]bool
	costs      simclock.Costs
	ranged     bool

	mu          sync.Mutex
	plans       map[container.ID]cache.ReadPlan
	spanned     []*container.Container // span-assembled partials (pooled payload buffers)
	sharedHits  int
	sharedJoins int
	rangedReads int
	rangedSpans int
	rangedBytes int64
}

// newRestoreIO builds the fetch layer for one pinned request sequence.
// metas is the metadata memo of the pinned resolution pass — exactly the
// state the sequence was resolved against, so plans derived from it match
// what the spans will serve. close the returned layer when the job ends.
func newRestoreIO(n *LNode, containers *container.Store, seq []cache.Request, metas map[container.ID]*container.Meta) *restoreIO {
	rio := &restoreIO{
		containers: containers,
		metas:      metas,
		costs:      n.repo.Config.Costs,
		ranged:     !n.repo.Config.DisableRangedReads,
		plans:      make(map[container.ID]cache.ReadPlan),
	}
	if n.repo.RestoreIO != nil {
		rio.session = n.repo.RestoreIO.NewSession()
	}
	rio.need = make(map[container.ID]map[fingerprint.FP]bool)
	for i := range seq {
		set := rio.need[seq[i].Container]
		if set == nil {
			set = make(map[fingerprint.FP]bool)
			rio.need[seq[i].Container] = set
		}
		set[seq[i].FP] = true
	}
	return rio
}

// close releases the job's shared-cache references and returns the
// span-assembled partial containers' payload buffers to the container
// store's pool. Partial containers are scoped to this one job (never
// shared node-wide), and close runs only after the restore pipeline and
// prefetch workers have been joined, so nothing references the payloads.
func (rio *restoreIO) close() {
	if rio.session != nil {
		rio.session.Close()
	}
	rio.mu.Lock()
	spanned := rio.spanned
	rio.spanned = nil
	rio.mu.Unlock()
	for _, c := range spanned {
		rio.containers.Release(c)
	}
}

// plan returns the memoized read plan for id (ok=false when planning is
// off or the resolution pass has no metadata for id).
func (rio *restoreIO) plan(id container.ID) (cache.ReadPlan, bool) {
	if !rio.ranged {
		return cache.ReadPlan{}, false
	}
	need, m := rio.need[id], rio.metas[id]
	if need == nil || m == nil {
		return cache.ReadPlan{}, false
	}
	rio.mu.Lock()
	defer rio.mu.Unlock()
	p, ok := rio.plans[id]
	if !ok {
		p = cache.Plan(m, need, rio.costs)
		rio.plans[id] = p
	}
	return p, true
}

// fetch is the cache.Fetcher the restore policy (and prefetcher) use.
func (rio *restoreIO) fetch(id container.ID) (*container.Container, error) {
	if rio.session != nil {
		if c, ok := rio.session.Get(id); ok {
			rio.mu.Lock()
			rio.sharedHits++
			rio.mu.Unlock()
			return c, nil
		}
	}
	if p, ok := rio.plan(id); ok && !p.Full {
		c, err := rio.containers.ReadSpans(id, p.Spans)
		if err != nil {
			return nil, err
		}
		rio.mu.Lock()
		rio.spanned = append(rio.spanned, c)
		rio.rangedReads++
		rio.rangedSpans += len(p.Spans)
		rio.rangedBytes += p.SpanBytes
		rio.mu.Unlock()
		return c, nil
	}
	if rio.session == nil {
		return rio.containers.Read(id)
	}
	c, src, err := rio.session.Fetch(id, func() (*container.Container, error) {
		return rio.containers.Read(id)
	})
	if err != nil {
		return nil, err
	}
	rio.mu.Lock()
	switch src {
	case cache.SrcHit:
		rio.sharedHits++
	case cache.SrcJoined:
		rio.sharedJoins++
	}
	rio.mu.Unlock()
	return c, nil
}

// addTo merges the layer's counters into a job's cache stats.
func (rio *restoreIO) addTo(st *cache.Stats) {
	rio.mu.Lock()
	defer rio.mu.Unlock()
	st.SharedHits += rio.sharedHits
	st.SharedJoins += rio.sharedJoins
	st.RangedReads += rio.rangedReads
	st.RangedSpans += rio.rangedSpans
	st.RangedBytes += rio.rangedBytes
}
