package lnode

import (
	"fmt"
	"io"

	"slimstore/internal/cache"
	"slimstore/internal/simclock"
)

// RestoreRange streams bytes [off, off+length) of a version to w — partial
// recovery (a corrupted database page, a log tail) without paying for the
// full restore. Only the containers holding the overlapping chunks are
// read; length < 0 means to the end of the file.
func (n *LNode) RestoreRange(fileID string, version int, off, length int64, w io.Writer) (*RestoreStats, error) {
	if off < 0 {
		return nil, fmt.Errorf("lnode: restore range: negative offset %d", off)
	}
	n.repo.Files.RLock(fileID)
	defer n.repo.Files.RUnlock(fileID)

	acct := simclock.NewAccount()
	cfg := &n.repo.Config
	recipes := n.repo.RecipesFor(acct)
	containers := n.repo.ContainersFor(acct)

	r, err := recipes.GetRecipe(fileID, version)
	if err != nil {
		return nil, err
	}
	total := r.LogicalBytes()
	if off > total {
		return nil, fmt.Errorf("lnode: restore range: offset %d beyond file size %d", off, total)
	}
	end := total
	if length >= 0 && off+length < end {
		end = off + length
	}

	full, redirects, _, metas, release, err := n.pinSequence(containers, r, acct)
	if err != nil {
		return nil, err
	}
	defer release()

	// Select the chunk window overlapping [off, end) and remember how much
	// to trim from the first and last chunks.
	var seq []cache.Request
	var pos int64
	var headTrim int64
	for _, req := range full {
		next := pos + int64(req.Size)
		if next > off && pos < end {
			if len(seq) == 0 {
				headTrim = off - pos
			}
			seq = append(seq, req)
		}
		pos = next
		if pos >= end {
			break
		}
	}

	stats := &RestoreStats{
		FileID: fileID, Version: version,
		PrefetchThreads: cfg.PrefetchThreads,
		Account:         acct,
		Redirects:       redirects,
	}
	if len(seq) == 0 {
		stats.Elapsed = acct.ElapsedSequential()
		return stats, nil
	}

	policy, err := cache.New(cfg.RestorePolicy, cache.Config{
		MemBytes:  cfg.CacheMemBytes,
		DiskBytes: cfg.CacheDiskBytes,
		DiskDir:   cfg.CacheDiskDir,
		LAW:       cfg.LAWChunks,
	})
	if err != nil {
		return nil, err
	}
	// The need-set comes from the windowed sequence, so the planner reads
	// only the spans covering the requested byte range — partial recovery
	// is the sparsest restore shape there is.
	rio := newRestoreIO(n, containers, seq, metas)
	defer rio.close()
	fetch := cache.Fetcher(rio.fetch)

	// The trim arithmetic runs on the emit side in both modes; the fast
	// path then hands the trimmed payload to the pipeline (charging the
	// full chunk first, exactly like the serial emit), so the write-behind
	// sink overlaps the next chunk's fetch. No verification and no
	// prefetcher here: RestoreRange keeps strictly sequential virtual time
	// (the ranged-read planner's cost model is calibrated against it).
	want := end - off
	var written int64 // serial mode: sink bytes; fast mode: bytes queued
	var run *restoreRun
	if !cfg.LegacyRestore {
		run = n.newRestoreRun(acct, w, false, seq, fileID, version)
	}
	cstats, err := policy.Restore(seq, fetch, func(data []byte) error {
		acct.ChargeCPUBytes(simclock.PhaseOther, int64(len(data)), cfg.Costs.RestorePerByte)
		d := data
		if headTrim > 0 {
			if headTrim >= int64(len(d)) {
				headTrim -= int64(len(d))
				return nil
			}
			d = d[headTrim:]
			headTrim = 0
		}
		if rem := want - written; int64(len(d)) > rem {
			d = d[:rem]
		}
		if len(d) == 0 {
			return nil
		}
		if run != nil {
			written += int64(len(d))
			return run.push(d)
		}
		nw, werr := w.Write(d)
		written += int64(nw)
		return werr
	})
	if run != nil {
		written, err = run.finish(err)
	}
	if err != nil {
		return nil, fmt.Errorf("lnode: restore range %s v%d [%d,%d): %w", fileID, version, off, end, err)
	}
	stats.Bytes = written
	stats.Cache = cstats
	rio.addTo(&stats.Cache)
	stats.Elapsed = acct.ElapsedSequential()
	return stats, nil
}
