package lnode

import (
	"bytes"
	"reflect"
	"runtime/debug"
	"testing"

	"slimstore/internal/cache"
	"slimstore/internal/chunker"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

// restorePolicies are the four cache policies the restore pipeline must
// be twin-identical under.
var restorePolicies = []string{"fv", "opt", "alacc", "lru"}

// comparableRestore strips the account pointer and the prefetcher
// effectiveness counters (the consumed-vs-direct split depends on
// goroutine scheduling; prefetchConserved checks it separately) so twin
// stats compare field-for-field, including virtual Elapsed.
func comparableRestore(s *RestoreStats) RestoreStats {
	c := *s
	c.Account = nil
	c.Prefetch = cache.PrefetchStats{}
	return c
}

// prefetchConserved asserts the scheduling-dependent counters are at
// least self-consistent on a successful restore: every dispatched slot
// was consumed (no worker fetched for nothing).
func prefetchConserved(t *testing.T, st *RestoreStats) {
	t.Helper()
	if st.Prefetch.Cancelled != 0 {
		t.Errorf("prefetch cancelled %d slots on a clean restore: %+v", st.Prefetch.Cancelled, st.Prefetch)
	}
	if st.Prefetch.Dispatched != st.Prefetch.Consumed {
		t.Errorf("prefetch dispatched %d != consumed %d", st.Prefetch.Dispatched, st.Prefetch.Consumed)
	}
}

// restoreTwin runs one restore in the given mode and returns comparable
// stats plus the restored bytes.
func restoreTwin(t *testing.T, n *LNode, repo *core.Repo, fileID string, version int, legacy bool) (RestoreStats, []byte) {
	t.Helper()
	repo.Config.LegacyRestore = legacy
	var buf bytes.Buffer
	st, err := n.Restore(fileID, version, &buf)
	if err != nil {
		t.Fatalf("restore %s v%d (legacy=%v): %v", fileID, version, legacy, err)
	}
	return comparableRestore(st), buf.Bytes()
}

// TestRestoreTwinSerial pins the pipelined restore to the serial emit:
// identical restored bytes and field-for-field identical stats (including
// bit-identical virtual Elapsed) for every cache policy, with LAW
// prefetching engaged for all of them. Run under -race by
// scripts/check.sh, which also exercises the pipeline's concurrency.
func TestRestoreTwinSerial(t *testing.T) {
	cfg := testConfig()
	// The node-wide shared cache would let each run warm the next one;
	// twin runs must see identical reads, so disable it.
	cfg.SharedCacheBytes = -1
	n, repo := newNode(t, cfg)
	defer n.Close()
	v0 := genData(61, 3<<20)
	versions := [][]byte{v0, mutate(v0, 62, 150)}
	for i, d := range versions {
		if _, err := n.Backup("twin", d); err != nil {
			t.Fatalf("backup v%d: %v", i, err)
		}
	}

	for _, policy := range restorePolicies {
		t.Run(policy, func(t *testing.T) {
			repo.Config.RestorePolicy = policy
			for v := range versions {
				fast, fastBytes := restoreTwin(t, n, repo, "twin", v, false)
				serial, serialBytes := restoreTwin(t, n, repo, "twin", v, true)
				if !bytes.Equal(fastBytes, versions[v]) {
					t.Fatalf("v%d: pipelined restore corrupt", v)
				}
				if !bytes.Equal(fastBytes, serialBytes) {
					t.Fatalf("v%d: pipelined and serial restores diverge", v)
				}
				if !reflect.DeepEqual(fast, serial) {
					t.Errorf("v%d stats diverge:\nfast:   %+v\nserial: %+v", v, fast, serial)
				}
			}
		})
	}
}

// TestVerifyTwinSerial is the same pin for Verify jobs, which add the
// per-chunk fingerprint stage the pipeline fans out over the hash pool.
// The verify worker count sweeps the three pool shapes: shared with the
// ingest pool, dedicated, and inline on the verifier stage.
func TestVerifyTwinSerial(t *testing.T) {
	cfg := testConfig()
	cfg.SharedCacheBytes = -1 // keep twin runs independent (see above)
	n, repo := newNode(t, cfg)
	defer n.Close()
	data := genData(63, 3<<20)
	if _, err := n.Backup("twin", data); err != nil {
		t.Fatal(err)
	}

	for _, policy := range restorePolicies {
		t.Run(policy, func(t *testing.T) {
			repo.Config.RestorePolicy = policy
			for _, workers := range []int{repo.Config.HashWorkers, 3, -1} {
				repo.Config.VerifyWorkers = workers

				repo.Config.LegacyRestore = false
				fastSt, err := n.Verify("twin", 0)
				if err != nil {
					t.Fatalf("pipelined verify (W=%d): %v", workers, err)
				}
				prefetchConserved(t, fastSt)

				repo.Config.LegacyRestore = true
				serialSt, err := n.Verify("twin", 0)
				if err != nil {
					t.Fatalf("serial verify: %v", err)
				}
				fast, serial := comparableRestore(fastSt), comparableRestore(serialSt)
				if !reflect.DeepEqual(fast, serial) {
					t.Errorf("W=%d verify stats diverge:\nfast:   %+v\nserial: %+v", workers, fast, serial)
				}
			}
		})
	}
}

// TestRestoreRangeTwinSerial pins the pipelined range restore (trimmed
// pushes, no verification, strictly sequential virtual time) to the
// serial emit across all policies and window shapes: chunk-unaligned
// head, mid-chunk tail, single-byte, and to-end-of-file ranges.
func TestRestoreRangeTwinSerial(t *testing.T) {
	cfg := testConfig()
	cfg.SharedCacheBytes = -1 // keep twin runs independent (see above)
	n, repo := newNode(t, cfg)
	defer n.Close()
	data := genData(64, 3<<20)
	if _, err := n.Backup("twin", data); err != nil {
		t.Fatal(err)
	}
	total := int64(len(data))
	ranges := []struct {
		off, length int64
	}{
		{0, 64 << 10},
		{1234567, 300<<10 + 17},
		{total / 2, 1},
		{total - 5000, -1},
	}

	for _, policy := range restorePolicies {
		t.Run(policy, func(t *testing.T) {
			repo.Config.RestorePolicy = policy
			for _, rg := range ranges {
				end := total
				if rg.length >= 0 && rg.off+rg.length < end {
					end = rg.off + rg.length
				}

				repo.Config.LegacyRestore = false
				var fastBuf bytes.Buffer
				fastSt, err := n.RestoreRange("twin", 0, rg.off, rg.length, &fastBuf)
				if err != nil {
					t.Fatalf("pipelined range [%d,+%d): %v", rg.off, rg.length, err)
				}

				repo.Config.LegacyRestore = true
				var serialBuf bytes.Buffer
				serialSt, err := n.RestoreRange("twin", 0, rg.off, rg.length, &serialBuf)
				if err != nil {
					t.Fatalf("serial range [%d,+%d): %v", rg.off, rg.length, err)
				}

				if !bytes.Equal(fastBuf.Bytes(), data[rg.off:end]) {
					t.Fatalf("range [%d,+%d): pipelined bytes wrong", rg.off, rg.length)
				}
				if !bytes.Equal(fastBuf.Bytes(), serialBuf.Bytes()) {
					t.Fatalf("range [%d,+%d): pipelined and serial diverge", rg.off, rg.length)
				}
				fast, serial := comparableRestore(fastSt), comparableRestore(serialSt)
				if !reflect.DeepEqual(fast, serial) {
					t.Errorf("range [%d,+%d) stats diverge:\nfast:   %+v\nserial: %+v", rg.off, rg.length, fast, serial)
				}
			}
		})
	}
}

// TestRestorePrefetchAllPolicies: the prefetcher must engage (dispatch
// slots) for every policy, not just fv, and a prefetched restore's stats
// must stay bit-identical to the unprefetched one apart from Elapsed
// overlap — the prefetcher changes WHEN containers are read, never what
// is charged.
func TestRestorePrefetchAllPolicies(t *testing.T) {
	data := genData(65, 3<<20)
	for _, policy := range restorePolicies {
		t.Run(policy, func(t *testing.T) {
			cfg := testConfig()
			cfg.RestorePolicy = policy
			cfg.SharedCacheBytes = -1 // keep the two runs independent
			n, repo := newNode(t, cfg)
			defer n.Close()
			if _, err := n.Backup("f", data); err != nil {
				t.Fatal(err)
			}

			st, err := n.Restore("f", 0, bytes.NewBuffer(nil))
			if err != nil {
				t.Fatal(err)
			}
			if st.Prefetch.Dispatched+st.Prefetch.Direct == 0 {
				t.Fatalf("policy %s saw no prefetch activity: %+v", policy, st.Prefetch)
			}
			prefetchConserved(t, st)

			repo.Config.PrefetchThreads = 0
			plain, err := n.Restore("f", 0, bytes.NewBuffer(nil))
			if err != nil {
				t.Fatal(err)
			}
			a, b := comparableRestore(st), comparableRestore(plain)
			a.Elapsed, b.Elapsed = 0, 0
			a.PrefetchThreads, b.PrefetchThreads = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("prefetching changed restore stats:\nwith:    %+v\nwithout: %+v", a, b)
			}
			if st.Elapsed > plain.Elapsed {
				t.Errorf("prefetched Elapsed %v exceeds unprefetched %v", st.Elapsed, plain.Elapsed)
			}
		})
	}
}

// TestRestoreRunVerifyFailure exercises the pipeline's abort path
// directly: a fingerprint mismatch must surface as the serial path's
// verify error, leave no goroutines behind (the -race run doubles as the
// leak check), and leave the pooled run reusable for the next restore.
func TestRestoreRunVerifyFailure(t *testing.T) {
	cfg := fastConfig()
	n, repo := newNode(t, cfg)
	defer n.Close()
	data := genData(66, 1<<20)
	chunks := chunker.SplitAll(data, repo.Cutter())
	bufs := make([][]byte, len(chunks))
	seq := make([]cache.Request, len(chunks))
	for i, c := range chunks {
		bufs[i] = c.Data
		seq[i] = cache.Request{FP: fingerprint.Of(cfg.FingerprintAlg, c.Data), Size: uint32(len(c.Data))}
	}
	if got := n.RestoreHandoff(bufs, seq, true); got != len(chunks) {
		t.Fatalf("clean handoff = %d, want %d", got, len(chunks))
	}
	seq[len(seq)/2].FP = fingerprint.FP{} // poison one chunk
	if got := n.RestoreHandoff(bufs, seq, true); got != -1 {
		t.Fatalf("poisoned handoff = %d, want failure", got)
	}
	// The run (and its channels) must have been recycled cleanly.
	seq[len(seq)/2].FP = fingerprint.Of(cfg.FingerprintAlg, bufs[len(seq)/2])
	if got := n.RestoreHandoff(bufs, seq, true); got != len(chunks) {
		t.Fatalf("post-failure handoff = %d, want %d", got, len(chunks))
	}
}

// TestRestoreHandoffAllocs is the steady-state allocation gate of the
// restore fast path: the pooled slot hand-off (emit→verify→write over
// recycled slots) must allocate at least 10x less per pass than the
// naive per-chunk-copy hand-off.
func TestRestoreHandoffAllocs(t *testing.T) {
	cfg := fastConfig()
	n, repo := newNode(t, cfg)
	defer n.Close()
	data := genData(67, 4<<20)
	chunks := chunker.SplitAll(data, repo.Cutter())
	bufs := make([][]byte, len(chunks))
	seq := make([]cache.Request, len(chunks))
	for i, c := range chunks {
		bufs[i] = c.Data
		seq[i] = cache.Request{FP: fingerprint.Of(cfg.FingerprintAlg, c.Data), Size: uint32(len(c.Data))}
	}

	// Pin the GC so sync.Pool contents survive the measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for i := 0; i < 3; i++ { // warm the slot/run pools and goroutine cache
		if got := n.RestoreHandoff(bufs, seq, true); got != len(chunks) {
			t.Fatalf("handoff produced %d chunks, want %d", got, len(chunks))
		}
	}
	fast := testing.AllocsPerRun(10, func() { n.RestoreHandoff(bufs, seq, true) })
	legacy := testing.AllocsPerRun(10, func() {
		LegacyRestoreHandoff(cfg.FingerprintAlg, bufs, seq, true)
	})

	t.Logf("allocs/pass over %d chunks: fast=%.1f legacy=%.1f", len(chunks), fast, legacy)
	if raceEnabled {
		// Race instrumentation allocates shadow state per goroutine and
		// channel op; the counts only mean anything uninstrumented.
		t.Skip("allocation gate skipped under -race")
	}
	if fast > 8 {
		t.Errorf("fast hand-off allocates %.1f/pass, want <= 8", fast)
	}
	if fast*10 > legacy {
		t.Errorf("fast hand-off %.1f allocs/pass is not 10x below legacy %.1f", fast, legacy)
	}
}

// handoffFixture splits data into the chunk payloads and expected-FP
// sequence the hand-off probes consume.
func handoffFixture(cfg core.Config, repo *core.Repo, data []byte) ([][]byte, []cache.Request) {
	chunks := chunker.SplitAll(data, repo.Cutter())
	bufs := make([][]byte, len(chunks))
	seq := make([]cache.Request, len(chunks))
	for i, c := range chunks {
		bufs[i] = c.Data
		seq[i] = cache.Request{FP: fingerprint.Of(cfg.FingerprintAlg, c.Data), Size: uint32(len(c.Data))}
	}
	return bufs, seq
}

func BenchmarkRestoreHandoff(b *testing.B) {
	cfg := fastConfig()
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	n := New(repo, "l0")
	defer n.Close()
	data := genData(68, 8<<20)
	bufs, seq := handoffFixture(cfg, repo, data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.RestoreHandoff(bufs, seq, true)
	}
}

func BenchmarkLegacyRestoreHandoff(b *testing.B) {
	cfg := fastConfig()
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	data := genData(68, 8<<20)
	bufs, seq := handoffFixture(cfg, repo, data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LegacyRestoreHandoff(cfg.FingerprintAlg, bufs, seq, true)
	}
}
