package lnode

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/oss"
)

// These tests inject storage faults and verify the system fails loudly,
// leaves no corrupted state behind, and recovers via the audit sweep.

func TestBackupFailsWhenOSSDies(t *testing.T) {
	mem := oss.NewMem()
	faulty := oss.NewFaulty(mem)
	repo, err := core.OpenRepo(faulty, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := New(repo, "l0")

	// Let a handful of container writes land, then cut the connection.
	faulty.FailPutsAfter(3)
	if _, err := n.Backup("f", genData(50, 4<<20)); !errors.Is(err, oss.ErrInjected) {
		t.Fatalf("backup error = %v, want injected fault", err)
	}

	// The failed backup must not have registered a version.
	faulty.Clear()
	if vs, _ := repo.Recipes.Versions("f"); len(vs) != 0 {
		t.Fatalf("failed backup registered versions %v", vs)
	}

	// Orphaned containers from the dead job are reclaimed by the audit.
	gn := gnode.New(repo)
	audit, err := gn.FullSweep()
	if err != nil {
		t.Fatal(err)
	}
	if audit.ContainersSwept == 0 {
		t.Fatal("audit found no orphans after a mid-backup crash")
	}

	// A retry on the healed store succeeds and restores correctly.
	data := genData(50, 4<<20)
	st, err := n.Backup("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 0 {
		t.Fatalf("retry version = %d", st.Version)
	}
	if !bytes.Equal(restoreBytes(t, n, "f", 0), data) {
		t.Fatal("post-recovery restore corrupt")
	}
}

func TestRestorePropagatesReadFaults(t *testing.T) {
	mem := oss.NewMem()
	faulty := oss.NewFaulty(mem)
	repo, err := core.OpenRepo(faulty, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := New(repo, "l0")
	if _, err := n.Backup("f", genData(51, 2<<20)); err != nil {
		t.Fatal(err)
	}
	// Fail reads of the first container's payload.
	keys, _ := mem.List("containers/")
	for _, k := range keys {
		if strings.HasSuffix(k, ".data") {
			faulty.FailGet(k)
			break
		}
	}
	if _, err := n.Restore("f", 0, io.Discard); !errors.Is(err, oss.ErrInjected) {
		t.Fatalf("restore error = %v, want injected fault", err)
	}
}

func TestVerifyRestoreCatchesCorruption(t *testing.T) {
	mem := oss.NewMem()
	faulty := oss.NewFaulty(mem)
	cfg := testConfig()
	cfg.VerifyRestore = true
	cfg.PrefetchThreads = 0
	// The clean control restore below would populate the node-wide shared
	// cache, and the post-corruption restore would then (correctly) serve
	// clean bytes from memory without touching OSS. This test is about
	// detection on read, so make every restore read the store.
	cfg.SharedCacheBytes = -1
	repo, err := core.OpenRepo(faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := New(repo, "l0")
	data := genData(52, 2<<20)
	if _, err := n.Backup("f", data); err != nil {
		t.Fatal(err)
	}
	// Clean restore passes verification.
	if !bytes.Equal(restoreBytes(t, n, "f", 0), data) {
		t.Fatal("clean verified restore corrupt")
	}
	// Bit-rot in a container payload must be detected, not returned.
	keys, _ := mem.List("containers/")
	for _, k := range keys {
		if strings.HasSuffix(k, ".data") {
			faulty.CorruptReads(k)
		}
	}
	_, err = n.Restore("f", 0, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupted restore error = %v, want verification failure", err)
	}
}

func TestRestoreDetectsCorruptionWithoutVerifyFlag(t *testing.T) {
	// Even with VerifyRestore off (no per-chunk re-fingerprinting), the
	// container CRCs must catch bit-rot: corruption never flows through
	// silently.
	mem := oss.NewMem()
	faulty := oss.NewFaulty(mem)
	cfg := testConfig()
	cfg.VerifyRestore = false
	cfg.PrefetchThreads = 0
	repo, err := core.OpenRepo(faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := New(repo, "l0")
	data := genData(53, 1<<20)
	if _, err := n.Backup("f", data); err != nil {
		t.Fatal(err)
	}
	keys, _ := mem.List("containers/")
	for _, k := range keys {
		if strings.HasSuffix(k, ".data") {
			faulty.CorruptReads(k)
		}
	}
	var buf bytes.Buffer
	_, err = n.Restore("f", 0, &buf)
	if err == nil {
		t.Fatal("corrupted restore succeeded silently")
	}
	if !errors.Is(err, container.ErrCorrupt) {
		t.Fatalf("restore error = %v, want ErrCorrupt", err)
	}
	var ce *container.CorruptError
	if !errors.As(err, &ce) || ce.Container == container.Invalid {
		t.Fatalf("error should identify the corrupt container: %v", err)
	}
}

func TestRangeRestoreDetectsCorruption(t *testing.T) {
	// The range path fetches whole containers too, so the same CRC checks
	// must guard partial restores — a corrupted window fails, never returns
	// wrong bytes.
	mem := oss.NewMem()
	faulty := oss.NewFaulty(mem)
	cfg := testConfig()
	cfg.PrefetchThreads = 0
	repo, err := core.OpenRepo(faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := New(repo, "l0")
	data := genData(55, 2<<20)
	if _, err := n.Backup("f", data); err != nil {
		t.Fatal(err)
	}

	// Clean range restore first, as a control.
	var buf bytes.Buffer
	if _, err := n.RestoreRange("f", 0, 512<<10, 64<<10, &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data[512<<10:576<<10]) {
		t.Fatal("clean range restore returned wrong bytes")
	}

	keys, _ := mem.List("containers/")
	for _, k := range keys {
		if strings.HasSuffix(k, ".data") {
			faulty.CorruptReads(k)
		}
	}
	buf.Reset()
	_, err = n.RestoreRange("f", 0, 512<<10, 64<<10, &buf)
	if err == nil {
		t.Fatal("corrupted range restore succeeded silently")
	}
	if !errors.Is(err, container.ErrCorrupt) {
		t.Fatalf("range restore error = %v, want ErrCorrupt", err)
	}
}

func TestGnodeFaultPropagation(t *testing.T) {
	mem := oss.NewMem()
	faulty := oss.NewFaulty(mem)
	repo, err := core.OpenRepo(faulty, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	n := New(repo, "l0")
	st, err := n.Backup("f", genData(54, 2<<20))
	if err != nil {
		t.Fatal(err)
	}
	// Reverse dedup must surface meta-read failures.
	keys, _ := mem.List("containers/")
	for _, k := range keys {
		if strings.HasSuffix(k, ".meta") {
			faulty.FailGet(k)
		}
	}
	repo.Containers.InvalidateMeta(st.NewContainers[0])
	gn := gnode.New(repo)
	if _, err := gn.ReverseDedup(st.NewContainers); err == nil {
		t.Fatal("reverse dedup swallowed a read fault")
	}
}
