package lnode

import (
	"bytes"
	"math/rand"
	"testing"

	"slimstore/internal/chunker"
	"slimstore/internal/core"
	"slimstore/internal/oss"
)

// testConfig returns a small-scale config suitable for MB-sized test files.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.ChunkParams = chunker.ParamsForAvg(4 << 10)
	cfg.ContainerCapacity = 256 << 10
	cfg.SegmentChunks = 64
	cfg.SampleRatio = 8
	cfg.MaxSuperChunkBytes = 64 << 10
	cfg.CacheMemBytes = 16 << 20
	cfg.CacheDiskBytes = 64 << 20
	cfg.LAWChunks = 256
	cfg.PrefetchThreads = 2
	return cfg
}

func newNode(t *testing.T, cfg core.Config) (*LNode, *core.Repo) {
	t.Helper()
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return New(repo, "l0"), repo
}

// mutate produces the next version of data: overwrite some ranges, insert
// and delete a little, keeping dupRatio of the bytes unchanged.
func mutate(data []byte, seed int64, changes int) []byte {
	r := rand.New(rand.NewSource(seed))
	out := append([]byte{}, data...)
	for i := 0; i < changes; i++ {
		switch r.Intn(3) {
		case 0: // overwrite a range
			if len(out) < 100 {
				break
			}
			off := r.Intn(len(out) - 64)
			n := 32 + r.Intn(64)
			if off+n > len(out) {
				n = len(out) - off
			}
			r.Read(out[off : off+n])
		case 1: // insert
			off := r.Intn(len(out))
			ins := make([]byte, 16+r.Intn(128))
			r.Read(ins)
			out = append(out[:off], append(ins, out[off:]...)...)
		case 2: // delete
			if len(out) < 2000 {
				break
			}
			off := r.Intn(len(out) - 1000)
			n := 16 + r.Intn(256)
			out = append(out[:off], out[off+n:]...)
		}
	}
	return out
}

func genData(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func restoreBytes(t *testing.T, n *LNode, fileID string, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := n.Restore(fileID, version, &buf); err != nil {
		t.Fatalf("restore %s v%d: %v", fileID, version, err)
	}
	return buf.Bytes()
}

func TestBackupRestoreRoundTrip(t *testing.T) {
	n, _ := newNode(t, testConfig())
	data := genData(1, 4<<20)
	st, err := n.Backup("db/file1", data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 0 || st.BaseBy != "none" {
		t.Fatalf("first backup stats: %+v", st)
	}
	if st.LogicalBytes != int64(len(data)) {
		t.Fatalf("LogicalBytes = %d", st.LogicalBytes)
	}
	if st.DuplicateBytes != 0 {
		t.Fatalf("first version should have no duplicates, got %d", st.DuplicateBytes)
	}
	got := restoreBytes(t, n, "db/file1", 0)
	if !bytes.Equal(got, data) {
		t.Fatal("restored bytes differ from original")
	}
}

func TestIncrementalVersionsDedup(t *testing.T) {
	n, _ := newNode(t, testConfig())
	data := genData(2, 4<<20)
	versions := [][]byte{data}
	for v := 0; v < 5; v++ {
		data = mutate(data, int64(100+v), 20)
		versions = append(versions, data)
	}
	for v, d := range versions {
		st, err := n.Backup("f", d)
		if err != nil {
			t.Fatalf("backup v%d: %v", v, err)
		}
		if st.Version != v {
			t.Fatalf("version = %d, want %d", st.Version, v)
		}
		if v > 0 {
			if st.BaseBy != "name" || st.BaseVersion != v-1 {
				t.Fatalf("v%d base detection: %+v", v, st)
			}
			if ratio := st.DedupRatio(); ratio < 0.85 {
				t.Fatalf("v%d dedup ratio %.3f, want > 0.85 for light mutations", v, ratio)
			}
		}
	}
	// Every version restores byte-identically.
	for v, want := range versions {
		got := restoreBytes(t, n, "f", v)
		if !bytes.Equal(got, want) {
			t.Fatalf("version %d corrupt after multi-version dedup", v)
		}
	}
}

func TestSkipChunkingHitsAndEquivalence(t *testing.T) {
	base := genData(3, 2<<20)
	next := mutate(base, 300, 10)

	run := func(skip bool) (*BackupStats, []byte) {
		cfg := testConfig()
		cfg.SkipChunking = skip
		cfg.ChunkMerging = false
		n, _ := newNode(t, cfg)
		if _, err := n.Backup("f", base); err != nil {
			t.Fatal(err)
		}
		st, err := n.Backup("f", next)
		if err != nil {
			t.Fatal(err)
		}
		return st, restoreBytes(t, n, "f", 1)
	}

	withSkip, outSkip := run(true)
	noSkip, outPlain := run(false)

	if withSkip.SkipHits == 0 {
		t.Fatal("skip chunking never succeeded on an incremental version")
	}
	if noSkip.SkipHits != 0 {
		t.Fatal("skip hits counted with skip chunking disabled")
	}
	// The paper's Fig 5(b): skip chunking must not change the dedup ratio.
	if d := withSkip.DedupRatio() - noSkip.DedupRatio(); d < -0.001 || d > 0.001 {
		t.Fatalf("skip chunking changed dedup ratio: %.4f vs %.4f",
			withSkip.DedupRatio(), noSkip.DedupRatio())
	}
	if !bytes.Equal(outSkip, outPlain) || !bytes.Equal(outSkip, next) {
		t.Fatal("restored output differs under skip chunking")
	}
	// Skip hits avoid the byte-by-byte scan: chunking CPU must drop.
	skipCPU := withSkip.Account.CPUPhase("chunking")
	plainCPU := noSkip.Account.CPUPhase("chunking")
	if skipCPU >= plainCPU {
		t.Fatalf("chunking CPU did not drop with skip chunking: %v vs %v", skipCPU, plainCPU)
	}
}

func TestChunkMergingCreatesAndMatchesSuperchunks(t *testing.T) {
	cfg := testConfig()
	cfg.MergeThreshold = 3
	n, _ := newNode(t, cfg)

	data := genData(4, 2<<20)
	var stats []*BackupStats
	// Back up the same region repeatedly with tiny head mutations so
	// duplicateTimes climbs past the threshold.
	for v := 0; v < 7; v++ {
		d := append([]byte{}, data...)
		copy(d[:8], []byte{byte(v), 1, 2, 3, 4, 5, 6, 7})
		st, err := n.Backup("f", d)
		if err != nil {
			t.Fatalf("backup v%d: %v", v, err)
		}
		stats = append(stats, st)
	}
	var created, matched int
	for _, st := range stats {
		created += st.NewSuperchunks
		matched += st.SuperHits
	}
	if created == 0 {
		t.Fatal("no superchunks were created despite stable content")
	}
	if matched == 0 {
		t.Fatal("no superchunk matches in later versions")
	}
	// Chunk count should fall once merging kicks in (Fig 6a: avg size up).
	if stats[6].NumChunks >= stats[1].NumChunks {
		t.Fatalf("chunk count did not fall: v1=%d v6=%d", stats[1].NumChunks, stats[6].NumChunks)
	}
	// Every version still restores correctly.
	for v := 0; v < 7; v++ {
		d := append([]byte{}, data...)
		copy(d[:8], []byte{byte(v), 1, 2, 3, 4, 5, 6, 7})
		if !bytes.Equal(restoreBytes(t, n, "f", v), d) {
			t.Fatalf("version %d corrupt with chunk merging", v)
		}
	}
}

func TestSimilarityDetection(t *testing.T) {
	n, _ := newNode(t, testConfig())
	data := genData(5, 2<<20)
	if _, err := n.Backup("original-name", data); err != nil {
		t.Fatal(err)
	}
	// Same content, new name: STEP 1 must fall back to the similar file
	// index and still dedupe nearly everything.
	st, err := n.Backup("renamed-file", mutate(data, 500, 5))
	if err != nil {
		t.Fatal(err)
	}
	if st.BaseBy != "similarity" || st.BaseFile != "original-name" {
		t.Fatalf("similarity detection failed: %+v", st)
	}
	if st.DedupRatio() < 0.8 {
		t.Fatalf("dedup ratio %.3f via similarity, want > 0.8", st.DedupRatio())
	}
}

func TestUnrelatedFileNoFalseBase(t *testing.T) {
	n, _ := newNode(t, testConfig())
	if _, err := n.Backup("a", genData(6, 1<<20)); err != nil {
		t.Fatal(err)
	}
	st, err := n.Backup("b", genData(7, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if st.BaseBy == "similarity" {
		t.Fatalf("unrelated file matched a base: %+v", st)
	}
	if st.DuplicateBytes != 0 {
		t.Fatalf("phantom duplicates: %d bytes", st.DuplicateBytes)
	}
}

func TestRestoreWithPrefetchThreads(t *testing.T) {
	for _, threads := range []int{0, 1, 4} {
		cfg := testConfig()
		cfg.PrefetchThreads = threads
		n, _ := newNode(t, cfg)
		data := genData(8, 2<<20)
		if _, err := n.Backup("f", data); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		st, err := n.Restore("f", 0, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("threads=%d: corrupt restore", threads)
		}
		if st.Cache.Rereads != 0 {
			t.Fatalf("threads=%d: rereads = %d", threads, st.Cache.Rereads)
		}
		if threads > 0 {
			// Overlapped I/O must not be slower than sequential.
			seq := st.Account.ElapsedSequential()
			if st.Elapsed > seq {
				t.Fatalf("threads=%d: overlapped %v > sequential %v", threads, st.Elapsed, seq)
			}
		}
	}
}

func TestRestoreMissingVersion(t *testing.T) {
	n, _ := newNode(t, testConfig())
	var buf bytes.Buffer
	if _, err := n.Restore("ghost", 0, &buf); err == nil {
		t.Fatal("restoring a missing file did not error")
	}
}

func TestBackupEmptyFileID(t *testing.T) {
	n, _ := newNode(t, testConfig())
	if _, err := n.Backup("", []byte("x")); err == nil {
		t.Fatal("empty file ID accepted")
	}
}

func TestStatsAccounting(t *testing.T) {
	cfg := testConfig()
	cfg.ChunkMerging = false
	n, _ := newNode(t, cfg)
	data := genData(9, 2<<20)
	st, err := n.Backup("f", data)
	if err != nil {
		t.Fatal(err)
	}
	// Without merging, stored + duplicate == logical exactly.
	if st.StoredBytes+st.DuplicateBytes != st.LogicalBytes {
		t.Fatalf("byte accounting: stored %d + dup %d != logical %d",
			st.StoredBytes, st.DuplicateBytes, st.LogicalBytes)
	}
	if st.ThroughputMBps() <= 0 {
		t.Fatal("throughput not positive")
	}
	io := st.Account.IO()
	if io.WriteBytes < st.StoredBytes {
		t.Fatalf("OSS write bytes %d < stored bytes %d", io.WriteBytes, st.StoredBytes)
	}
}

func TestVersionInfoAndGarbageMark(t *testing.T) {
	cfg := testConfig()
	n, repo := newNode(t, cfg)
	data := genData(10, 2<<20)
	if _, err := n.Backup("f", data); err != nil {
		t.Fatal(err)
	}
	// Replace most content so v1 uses mostly new containers.
	data2 := genData(11, 2<<20)
	if _, err := n.Backup("f", data2); err != nil {
		t.Fatal(err)
	}
	info0, err := repo.Recipes.GetInfo("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(info0.Garbage) == 0 {
		t.Fatal("no garbage containers marked on v0 after divergent v1")
	}
	info1, err := repo.Recipes.GetInfo("f", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(info1.Containers) == 0 || info1.LogicalSize != int64(len(data2)) {
		t.Fatalf("v1 info: %+v", info1)
	}
}

func TestDedupCacheEviction(t *testing.T) {
	cfg := testConfig()
	cfg.SegmentChunks = 32
	cfg.DedupCacheSegments = 2 // hold only two prefetched segments
	cfg.ChunkMerging = false
	n, _ := newNode(t, cfg)
	data := genData(60, 2<<20)
	if _, err := n.Backup("f", data); err != nil {
		t.Fatal(err)
	}
	st, err := n.Backup("f", mutate(data, 600, 5))
	if err != nil {
		t.Fatal(err)
	}
	// With a tiny cache the sequential pass still dedups well (segments
	// are needed roughly in order), and the bound held.
	if st.DedupRatio() < 0.7 {
		t.Fatalf("dedup ratio %.3f with bounded cache", st.DedupRatio())
	}
	if st.SegmentsFetched < 3 {
		t.Fatalf("expected many segment fetches, got %d", st.SegmentsFetched)
	}
	if !bytes.Equal(restoreBytes(t, n, "f", 1), mutate(data, 600, 5)) {
		t.Fatal("restore corrupt with bounded dedup cache")
	}
}

func TestRestoreRange(t *testing.T) {
	n, _ := newNode(t, testConfig())
	data := genData(90, 3<<20)
	if _, err := n.Backup("f", data); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ off, length int64 }{
		{0, 100},                     // head
		{1 << 20, 64 << 10},          // middle, unaligned
		{int64(len(data)) - 777, -1}, // tail, open-ended
		{12345, 1},                   // single byte
		{0, -1},                      // whole file via range API
		{int64(len(data)), 100},      // empty at EOF
	}
	for _, c := range cases {
		var buf bytes.Buffer
		st, err := n.RestoreRange("f", 0, c.off, c.length, &buf)
		if err != nil {
			t.Fatalf("range [%d,+%d): %v", c.off, c.length, err)
		}
		end := int64(len(data))
		if c.length >= 0 && c.off+c.length < end {
			end = c.off + c.length
		}
		want := data[c.off:end]
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("range [%d,+%d): got %d bytes, want %d", c.off, c.length, buf.Len(), len(want))
		}
		if st.Bytes != int64(len(want)) {
			t.Fatalf("range [%d,+%d): stats.Bytes = %d", c.off, c.length, st.Bytes)
		}
	}
	// A small middle range must read far fewer containers than the full
	// restore (that is the point of the API).
	var buf bytes.Buffer
	full, err := n.Restore("f", 0, &buf)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	small, err := n.RestoreRange("f", 0, 1<<20, 32<<10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if small.Cache.ContainersRead >= full.Cache.ContainersRead {
		t.Fatalf("range restore read %d containers, full read %d",
			small.Cache.ContainersRead, full.Cache.ContainersRead)
	}
	// Errors.
	if _, err := n.RestoreRange("f", 0, -1, 10, &buf); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := n.RestoreRange("f", 0, int64(len(data))+1, 10, &buf); err == nil {
		t.Fatal("offset past EOF accepted")
	}
}
