package core

import (
	"errors"
	"fmt"
	"sort"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/journal"
	"slimstore/internal/oss"
	"slimstore/internal/recipe"
)

// This file holds the apply half of the intent-journal protocol (see
// package journal). The G-node commits a record and calls the matching
// Apply*; OpenRepo replays surviving records through the same functions,
// so every step here must be idempotent. Apply functions end by flushing
// the global index: its LSM buffers writes, and removing a journal record
// before the index mutations are durable would lose them to a crash.

// ReplayJournal rolls forward (or, for rewrites whose payload never
// landed, rolls back) every surviving journal record, in commit order. It
// returns the number of records replayed. OpenRepo calls it before the
// repo does any new work; FullSweep calls it to reclaim half-committed
// operations from a crashed peer.
func (r *Repo) ReplayJournal() (int, error) {
	keys, err := r.Journal.List()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, k := range keys {
		rec, err := r.Journal.Get(k)
		if err != nil {
			if errors.Is(err, oss.ErrNotFound) {
				continue // a concurrent replayer got there first
			}
			return n, err
		}
		switch rec.Kind {
		case journal.KindSCC:
			err = r.ApplySCC(rec, nil, nil)
		case journal.KindGC:
			_, err = r.ApplyGC(rec, nil, nil)
		case journal.KindRewrite:
			err = r.replayRewrite(rec)
		default:
			return n, fmt.Errorf("core: journal record %d has unknown kind %q", rec.Seq, rec.Kind)
		}
		if err != nil {
			return n, fmt.Errorf("core: replay journal record %d (%s): %w", rec.Seq, rec.Kind, err)
		}
		if err := r.Journal.Remove(k); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ApplySCC performs the committed half of a sparse-container compaction:
// the moved chunks already live in their new containers; this repoints
// the global index, rewrites the version's recipe and catalog entry, and
// marks the moved chunks deleted in the drained sources. Safe to re-run.
// cs and rs direct the I/O (metered views); nil selects the repo's
// unmetered stores (the replay path).
func (r *Repo) ApplySCC(rec *journal.Record, cs *container.Store, rs *recipe.Store) error {
	if cs == nil {
		cs = r.Containers
	}
	if rs == nil {
		rs = r.Recipes
	}
	moved, err := rec.MovedFPs()
	if err != nil {
		return err
	}

	// Index first: restores redirect relocated chunks through it, so no
	// window may exist where a redirect would miss.
	for fp, nid := range moved {
		if err := r.Global.Put(fp, nid); err != nil {
			return err
		}
	}

	// Recipe: this version's restores stop touching the sparse sources.
	// A missing recipe means the version was deleted after the commit;
	// the remaining steps still apply.
	rcp, err := rs.GetRecipe(rec.FileID, rec.Version)
	switch {
	case errors.Is(err, oss.ErrNotFound):
	case err != nil:
		return err
	default:
		rcp.Iter(func(_, _ int, cr *recipe.ChunkRecord) bool {
			if nid, ok := moved[cr.FP]; ok {
				cr.Container = nid
			}
			return true
		})
		if _, err := rs.PutRecipe(rcp); err != nil {
			return err
		}

		// Catalog: refresh the container list and associate the drained
		// sources with this version as garbage (§VI-B).
		info, err := rs.GetInfo(rec.FileID, rec.Version)
		if err != nil && !errors.Is(err, oss.ErrNotFound) {
			return err
		}
		if err == nil {
			refs := make(map[container.ID]bool)
			rcp.Iter(func(_, _ int, cr *recipe.ChunkRecord) bool {
				refs[cr.Container] = true
				return true
			})
			info.Containers = info.Containers[:0]
			for id := range refs {
				info.Containers = append(info.Containers, id)
			}
			sort.Slice(info.Containers, func(a, b int) bool { return info.Containers[a] < info.Containers[b] })
			garbage := make(map[container.ID]bool, len(info.Garbage))
			for _, id := range info.Garbage {
				garbage[id] = true
			}
			for _, id := range journal.IDs(rec.Sparse) {
				if !garbage[id] {
					info.Garbage = append(info.Garbage, id)
				}
			}
			if err := rs.PutInfo(info); err != nil {
				return err
			}
		}
	}

	// Mark the moved chunks deleted in the sources, now that nothing
	// routes reads to them (the index and recipe point at the copies).
	for _, id := range journal.IDs(rec.Sparse) {
		m, err := cs.ReadMeta(id)
		if err != nil {
			if errors.Is(err, oss.ErrNotFound) {
				continue // already swept
			}
			return err
		}
		cp := *m
		cp.Chunks = append([]container.ChunkMeta(nil), m.Chunks...)
		dirty := false
		for fp := range moved {
			if cm := cp.Find(fp); cm != nil && !cm.Deleted {
				cm.Deleted = true
				dirty = true
			}
		}
		if dirty {
			if err := cs.WriteMeta(&cp); err != nil {
				return err
			}
		}
	}
	r.BumpMaintEpoch()
	return r.Global.Flush()
}

// GCApply reports what a version-deletion apply actually swept.
type GCApply struct {
	ContainersCollected int
	BytesReclaimed      int64
	IndexEntriesRemoved int
}

// ApplyGC performs the committed half of a version deletion: removes the
// version's recipe, catalog entry and similarity sketch, then sweeps the
// journaled garbage containers that no surviving version references.
// Safe to re-run — deletes tolerate already-deleted state. cs and rs
// direct the I/O (metered views); nil selects the repo's unmetered
// stores (the replay path).
func (r *Repo) ApplyGC(rec *journal.Record, cs *container.Store, rs *recipe.Store) (*GCApply, error) {
	if cs == nil {
		cs = r.Containers
	}
	if rs == nil {
		rs = r.Recipes
	}
	out := &GCApply{}
	if err := rs.DeleteRecipe(rec.FileID, rec.Version); err != nil {
		return nil, err
	}
	if err := rs.DeleteInfo(rec.FileID, rec.Version); err != nil {
		return nil, err
	}
	if err := r.SimIndex.Remove(rec.FileID, rec.Version); err != nil {
		return nil, err
	}
	if len(rec.Garbage) > 0 {
		live, err := r.LiveContainerRefs(rs)
		if err != nil {
			return nil, err
		}
		cands := make(map[container.ID]bool)
		for _, id := range journal.IDs(rec.Garbage) {
			if !live[id] {
				cands[id] = true
			}
		}
		pinned, err := r.redirectPins(cs, rs, cands)
		if err != nil {
			return nil, err
		}
		for _, id := range journal.IDs(rec.Garbage) {
			if live[id] || pinned[id] {
				continue // still referenced (e.g. out-of-order deletion)
			}
			reclaimed, removed, err := r.DropContainer(cs, id)
			if err != nil {
				return nil, err
			}
			out.ContainersCollected++
			out.BytesReclaimed += reclaimed
			out.IndexEntriesRemoved += removed
		}
	}
	return out, r.Global.Flush()
}

// redirectPins reports which garbage candidates must survive because a
// live recipe redirects into them. Reverse dedup deletes an old copy of a
// chunk and repoints the global index at a *newer* container, so an old
// version's recipe — which still names the drained container — resolves
// the chunk through the index at restore time. The redirect target never
// appears in that version's catalog entry, so the info-based liveness
// check alone would let an out-of-order deletion (or a cross-file
// dependency) drop the only physical copy of a still-referenced chunk.
// This pass catches exactly those: a candidate is pinned when it is the
// index-canonical home of a fingerprint that some live recipe references
// via a different container.
func (r *Repo) redirectPins(cs *container.Store, rs *recipe.Store, cands map[container.ID]bool) (map[container.ID]bool, error) {
	// Fingerprints whose canonical copy sits in a candidate.
	own := make(map[fingerprint.FP]container.ID)
	for id := range cands {
		m, err := cs.ReadMeta(id)
		if err != nil {
			continue // unreadable meta: DropContainer will no-op it anyway
		}
		for i := range m.Chunks {
			cm := &m.Chunks[i]
			if cm.Deleted {
				continue
			}
			cur, found, err := r.Global.Get(cm.FP)
			if err != nil {
				return nil, err
			}
			if found && cur == id {
				own[cm.FP] = id
			}
		}
	}
	if len(own) == 0 {
		return nil, nil
	}

	pinned := make(map[container.ID]bool)
	files, err := rs.Files()
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		versions, err := rs.Versions(f)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			rcp, err := rs.GetRecipe(f, v)
			if err != nil {
				if errors.Is(err, oss.ErrNotFound) {
					continue // catalog entry without a recipe: nothing to pin
				}
				return nil, err
			}
			rcp.Iter(func(_, _ int, cr *recipe.ChunkRecord) bool {
				if cand, ok := own[cr.FP]; ok && cr.Container != cand {
					pinned[cand] = true
				}
				return len(pinned) < len(cands) // all pinned: stop early
			})
			if len(pinned) == len(cands) {
				return pinned, nil
			}
		}
	}
	return pinned, nil
}

// replayRewrite resolves an interrupted in-place container rewrite. The
// record committed before the new data object was put, so two states are
// possible: the data landed (checksum matches) — roll forward by writing
// the journaled metadata — or it never landed — the old objects are
// untouched, so dropping the record rolls back.
func (r *Repo) replayRewrite(rec *journal.Record) error {
	id := container.ID(rec.Target)
	raw, err := r.Containers.GetRawData(id)
	if err != nil {
		if errors.Is(err, oss.ErrNotFound) {
			return nil // container gone entirely: nothing to finish
		}
		return err
	}
	if int64(len(raw)) != rec.DataLen || container.ChecksumOf(raw) != rec.DataCRC {
		return nil // new payload never landed: old state intact, roll back
	}
	r.CLocks.Lock(id)
	defer r.CLocks.Unlock(id)
	r.BumpMaintEpoch()
	return r.Containers.PutRaw(id, nil, rec.Meta)
}

// RewriteContainer physically removes deleted chunks from a container,
// keeping its ID (recipes referencing surviving chunks stay valid). The
// rewrite replaces both objects of an existing container, so it runs
// under a journal record: commit {new meta, new data checksum} → put data
// → put meta → remove record. m supplies the freshest deletion marks; cs
// directs the I/O (typically a metered view). Returns bytes freed.
func (r *Repo) RewriteContainer(cs *container.Store, m *container.Meta) (int64, error) {
	c, err := cs.Read(m.ID)
	if err != nil {
		return 0, fmt.Errorf("core: rewrite %s: %w", m.ID, err)
	}
	nc := &container.Container{Meta: container.Meta{ID: m.ID}}
	for i := range m.Chunks {
		cm := &m.Chunks[i]
		if cm.Deleted {
			continue
		}
		data := c.Data[cm.Offset : int64(cm.Offset)+int64(cm.Size)]
		nc.Meta.Chunks = append(nc.Meta.Chunks, container.ChunkMeta{
			FP:     cm.FP,
			Offset: uint32(len(nc.Data)),
			Size:   cm.Size,
		})
		nc.Data = append(nc.Data, data...)
	}
	if err := r.WriteRebuilt(cs, nc); err != nil {
		return 0, err
	}
	return int64(len(c.Data)) - int64(len(nc.Data)), nil
}

// WriteRebuilt journals and writes a rebuilt container over its existing
// ID (the commit → data → meta → remove protocol of KindRewrite). The
// scrub pass uses it directly when it has reassembled a container from
// intact local chunks plus donor copies.
func (r *Repo) WriteRebuilt(cs *container.Store, nc *container.Container) error {
	if err := nc.Seal(); err != nil {
		return err
	}
	encData := container.EncodeData(nc.Data)
	encMeta := container.EncodeMeta(&nc.Meta)

	key, err := r.Journal.Commit(&journal.Record{
		Kind:    journal.KindRewrite,
		Target:  uint64(nc.Meta.ID),
		Meta:    encMeta,
		DataCRC: container.ChecksumOf(encData),
		DataLen: int64(len(encData)),
	})
	if err != nil {
		return err
	}
	// Replacing the data object races in-flight restores that resolved
	// this container before the rewrite: wait for their read pins.
	r.CLocks.Lock(nc.Meta.ID)
	err = cs.PutRaw(nc.Meta.ID, encData, encMeta)
	r.CLocks.Unlock(nc.Meta.ID)
	if err != nil {
		return err
	}
	r.BumpMaintEpoch()
	return r.Journal.Remove(key)
}

// LiveContainerRefs scans the catalog for every container referenced by a
// live version.
func (r *Repo) LiveContainerRefs(rs *recipe.Store) (map[container.ID]bool, error) {
	live := make(map[container.ID]bool)
	files, err := rs.Files()
	if err != nil {
		return nil, err
	}
	for _, f := range files {
		versions, err := rs.Versions(f)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			info, err := rs.GetInfo(f, v)
			if err != nil {
				return nil, err
			}
			for _, id := range info.Containers {
				live[id] = true
			}
		}
	}
	return live, nil
}

// DropContainer deletes a container and its global-index entries,
// returning the bytes reclaimed and index entries removed. Dropping an
// already-dropped container is a no-op.
func (r *Repo) DropContainer(cs *container.Store, id container.ID) (int64, int, error) {
	m, err := cs.ReadMeta(id)
	if err != nil {
		// Already gone (e.g. swept via another version's garbage list).
		return 0, 0, nil
	}
	removed := 0
	for i := range m.Chunks {
		cm := &m.Chunks[i]
		cur, found, err := r.Global.Get(cm.FP)
		if err != nil {
			return 0, 0, err
		}
		if found && cur == id {
			if err := r.Global.Delete(cm.FP); err != nil {
				return 0, 0, err
			}
			removed++
		}
	}
	reclaimed := int64(m.DataSize) + int64(len(container.EncodeMeta(m)))
	r.CLocks.Lock(id)
	err = cs.Delete(id)
	r.CLocks.Unlock(id)
	if err != nil {
		return 0, 0, err
	}
	r.BumpMaintEpoch()
	return reclaimed, removed, nil
}
