package core

import (
	"hash/fnv"
	"sort"
	"sync"

	"slimstore/internal/container"
)

// This file is the repo's concurrency-control layer. The paper runs many
// stateless L-node jobs against one shared storage layer (§VII-E, six
// L-nodes, one OSS); when those jobs are goroutines in one process the
// shared substrate needs explicit synchronisation. Three lock families
// cover it, with a fixed acquisition order (see DESIGN.md §7):
//
//  1. the G-node maintenance mutex (held by gnode, not here),
//  2. per-file locks — backup/delete/compaction of a file are exclusive,
//     restores of the same file share,
//  3. per-container striped RW locks — restores pin the containers they
//     read; physical rewrites/drops take the write side.
//
// Nothing below these acquires anything above them, so the order is
// acyclic by construction.

// fileLockShards is the per-file lock-table stripe count. Two distinct
// files hashing to one stripe serialise unnecessarily; with jobs counted
// in dozens, 64 stripes make that vanishingly rare.
const fileLockShards = 64

// FileLocks serialises mutations per backup file: concurrent backups of
// the same file would race on the version counter and the previous
// version's garbage list, so writers are exclusive; restores take the
// shared side (they must not observe a half-written version chain).
type FileLocks struct {
	shards [fileLockShards]sync.RWMutex
}

func (l *FileLocks) shard(fileID string) *sync.RWMutex {
	h := fnv.New32a()
	h.Write([]byte(fileID))
	return &l.shards[h.Sum32()%fileLockShards]
}

// Lock acquires the exclusive (writer) lock for fileID.
func (l *FileLocks) Lock(fileID string) { l.shard(fileID).Lock() }

// Unlock releases the exclusive lock for fileID.
func (l *FileLocks) Unlock(fileID string) { l.shard(fileID).Unlock() }

// RLock acquires the shared (reader) lock for fileID.
func (l *FileLocks) RLock(fileID string) { l.shard(fileID).RLock() }

// RUnlock releases the shared lock for fileID.
func (l *FileLocks) RUnlock(fileID string) { l.shard(fileID).RUnlock() }

// LockAll acquires every stripe exclusively, in index order, and returns a
// release function. FullSweep uses it as a stop-the-world barrier: a
// container written by an in-flight backup is unreachable until the recipe
// lands, and the sweep would reclaim it as garbage. Index order makes
// LockAll deadlock-free against per-file Lock/RLock (single-stripe
// acquisitions cannot form a cycle with an ordered sweep).
func (l *FileLocks) LockAll() (release func()) {
	for i := range l.shards {
		l.shards[i].Lock()
	}
	return func() {
		for i := range l.shards {
			l.shards[i].Unlock()
		}
	}
}

// containerLockShards stripes the container lock table. Restores pin
// whole stripes, so more stripes mean fewer false conflicts between a
// restore and an unrelated rewrite.
const containerLockShards = 128

// ContainerLocks is a striped reader/writer lock table over container
// IDs. It implements the protocol that lets online restore proceed while
// the G-node compacts: a restore read-pins every container its resolved
// sequence references for the duration of the restore; a physical rewrite
// (which replaces or deletes the data object) takes the write side of
// that container's stripe and therefore waits for in-flight restores.
// Metadata-only writes (deletion marks) do not need the write side: the
// global index is flushed before marks land, so a reader that observes a
// mark redirects through the index.
type ContainerLocks struct {
	shards [containerLockShards]sync.RWMutex
}

func (l *ContainerLocks) shard(id container.ID) *sync.RWMutex {
	return &l.shards[uint64(id)%containerLockShards]
}

// Lock acquires the write side for one container (rewrite, drop,
// quarantine). Writers take one container at a time, so they can never
// deadlock against pinned readers.
func (l *ContainerLocks) Lock(id container.ID) { l.shard(id).Lock() }

// Unlock releases the write side.
func (l *ContainerLocks) Unlock(id container.ID) { l.shard(id).Unlock() }

// Pin read-locks the stripes covering ids and returns a release function.
// Stripes are acquired in ascending order and all up front — a pinned
// reader never acquires another lock while holding these, so two
// overlapping pins cannot deadlock each other or a writer.
func (l *ContainerLocks) Pin(ids []container.ID) (release func()) {
	seen := make(map[int]bool, len(ids))
	order := make([]int, 0, len(ids))
	for _, id := range ids {
		s := int(uint64(id) % containerLockShards)
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	sort.Ints(order)
	for _, s := range order {
		l.shards[s].RLock()
	}
	return func() {
		// Release order is irrelevant for correctness; mirror acquisition.
		for _, s := range order {
			l.shards[s].RUnlock()
		}
	}
}
