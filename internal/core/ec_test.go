package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"slimstore/internal/ec"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

func TestECConfigDefaults(t *testing.T) {
	cfg := Config{ECDataShards: 4, ECParityShards: 2}
	cfg.fillDefaults()
	if cfg.ECBackends != 6 {
		t.Fatalf("ECBackends derived as %d, want 6", cfg.ECBackends)
	}
	// An explicit mismatched backend count is rejected at open.
	bad := Config{ECDataShards: 4, ECParityShards: 2, ECBackends: 5}
	if _, err := OpenRepo(oss.NewMem(), bad); err == nil {
		t.Fatal("mismatched ECBackends accepted")
	}
	// EC off → no tier.
	repo, err := OpenRepo(oss.NewMem(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if repo.EC != nil || repo.ECFor(simclock.NewAccount()) != nil {
		t.Fatal("EC tier armed without ECDataShards")
	}
}

// TestECWiring opens a repo with the redundancy tier armed and checks
// container-namespace objects stripe across fault-isolated backends while
// everything else stays plain.
func TestECWiring(t *testing.T) {
	mem := oss.NewMem()
	cfg := Config{ECDataShards: 2, ECParityShards: 1}
	repo, err := OpenRepo(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repo.EC == nil || len(repo.EC.Backends()) != 3 {
		t.Fatalf("EC tier not armed with 3 backends")
	}

	acct := simclock.NewAccount()
	cv := repo.ContainersFor(acct)
	id := cv.AllocateID()
	data := bytes.Repeat([]byte("chunk"), 4000)
	key := "containers/" + id.String() + ".data"
	tier := repo.ECFor(acct)
	if err := tier.Put(key, data); err != nil {
		t.Fatal(err)
	}
	// The logical key exists only as shards, never as a plain object.
	if _, err := mem.Get(key); !errors.Is(err, oss.ErrNotFound) {
		t.Fatal("container object written as a plain base object")
	}
	for i := 0; i < 3; i++ {
		if _, err := mem.Get(oss.BackendPrefix(i) + key); err != nil {
			t.Fatalf("backend %d holds no shard: %v", i, err)
		}
	}
	// One backend dark: the tier still serves the exact bytes and charges
	// reconstruction CPU on the account.
	repo.EC.Backends()[2].Faulty.SetOutage(true)
	got, err := tier.Get(key)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded read through repo tier: %v", err)
	}
	repo.EC.Backends()[2].Faulty.SetOutage(false)

	// Non-container keys bypass the tier entirely.
	if err := repo.Metered(acct).Put("recipes/f/1", []byte("r")); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Get("recipes/f/1"); err != nil {
		t.Fatalf("plain key striped or lost: %v", err)
	}
	keys, err := mem.List("ec/")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !strings.HasPrefix(k, "ec/b") {
			t.Fatalf("stray physical key %s", k)
		}
	}
	// Reopening over the same base store sees the same stripes (fresh
	// Faulty wrappers, faults cleared) — crash/reboot semantics.
	repo2, err := OpenRepo(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err = repo2.EC.Get(key)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("reopened repo cannot read stripe: %v", err)
	}
	var _ *ec.Store = repo2.EC
}
