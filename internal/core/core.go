// Package core wires SLIMSTORE's storage layer together (paper Fig 1): the
// container store, recipe store, similar file index, and global index, all
// residing on one OSS store, plus the system configuration shared by the
// L-node and G-node computing layers.
package core

import (
	"fmt"
	"sync/atomic"

	"slimstore/internal/cache"
	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/ec"
	"slimstore/internal/fingerprint"
	"slimstore/internal/globalindex"
	"slimstore/internal/journal"
	"slimstore/internal/kvstore"
	"slimstore/internal/oss"
	"slimstore/internal/recipe"
	"slimstore/internal/repl"
	"slimstore/internal/simclock"
	"slimstore/internal/simindex"
)

// Config holds every tunable of the system. The defaults reproduce the
// paper's evaluation setup (§VII-A).
type Config struct {
	// ChunkAlgo selects the CDC algorithm: "rabin", "gear", "fastcdc",
	// "fixed". Default "fastcdc".
	ChunkAlgo string
	// ChunkParams bound chunk sizes; default 4 KiB average (§VII-B).
	ChunkParams chunker.Params
	// FingerprintAlg selects the chunk hash. Default SHA-1 (§II).
	FingerprintAlg fingerprint.Algorithm

	// SegmentChunks is the number of consecutive chunks per segment
	// recipe. Default 256.
	SegmentChunks int
	// SampleRatio is R in the mod-R representative sampling (§IV-A).
	// Default 32.
	SampleRatio int
	// SimilarityMinScore is the minimum sketch resemblance for the
	// similar-file fallback of STEP 1. Default 0.1.
	SimilarityMinScore float64
	// DedupCacheSegments bounds how many prefetched segment recipes a
	// backup job keeps in its dedup cache (oldest evicted first).
	// Default 256; L-nodes are stateless, so this is the job's entire
	// index memory footprint.
	DedupCacheSegments int

	// SkipChunking enables history-aware skip chunking (§IV-B).
	SkipChunking bool
	// ChunkMerging enables history-aware chunk merging (§IV-C).
	ChunkMerging bool
	// MergeThreshold is the duplicateTimes value at which consecutive
	// duplicate chunks merge into a superchunk. Default 5 (§VII-B).
	MergeThreshold int
	// MaxSuperChunkBytes caps superchunk size. Default 2 MiB (§VII-E).
	MaxSuperChunkBytes int

	// ContainerCapacity is the container payload size. Default 4 MiB.
	ContainerCapacity int

	// SparseUtilization is the utilization below which a container
	// referenced by the current backup is recorded as sparse (§V-B).
	// Default 0.3.
	SparseUtilization float64
	// RewriteStaleThreshold is the deleted-chunk proportion at which
	// reverse deduplication physically rewrites a container (§VI-A).
	// Default 0.2.
	RewriteStaleThreshold float64

	// Restore cache sizing (§V-A).
	CacheMemBytes  int64
	CacheDiskBytes int64
	// CacheDiskDir, when set, spills the FV cache's disk layer to real
	// files in this directory (the L-node local disk of the paper);
	// empty simulates the layer in memory.
	CacheDiskDir string
	LAWChunks    int
	// RestorePolicy selects the cache policy: "fv" (default), "opt",
	// "alacc", "lru".
	RestorePolicy string
	// PrefetchThreads is the LAW prefetcher worker count; 0 disables
	// prefetching (Table II).
	PrefetchThreads int
	// VerifyRestore re-fingerprints every restored chunk and fails the
	// restore on any mismatch (end-to-end integrity at fingerprinting
	// cost).
	VerifyRestore bool
	// SharedCacheBytes budgets the node-wide restore container cache
	// shared by all concurrent jobs (DESIGN.md §10). 0 selects the
	// default (256 MiB); negative disables the cache and singleflight
	// entirely, making every job fetch for itself.
	SharedCacheBytes int64
	// DisableRangedReads turns off the cost-model ranged-read planner, so
	// every container fetch reads the full object (the pre-planner
	// behaviour; the restoreio benchmark uses this as its baseline).
	DisableRangedReads bool

	// PackWorkers is the number of background workers sealing and
	// uploading filled containers while the dedup loop keeps running (the
	// pack stage of the backup pipeline). 0 selects the default (4);
	// negative packs synchronously.
	PackWorkers int
	// HashWorkers is the worker-pool size for parallelisable
	// fingerprinting: the base-detection probe pass always uses it, and
	// the main loop does too when both history-aware accelerations are
	// off (their skip cuts make boundaries depend on dedup decisions).
	// 0 selects the default (4); negative hashes inline.
	HashWorkers int
	// VerifyWorkers is the fan-out width of per-chunk fingerprint
	// verification on the restore fast path (DESIGN.md §14): verify jobs
	// are spread over a persistent hash worker pool instead of paying one
	// serial SHA per chunk. 0 selects the default (4, sharing the
	// HashWorkers pool when the sizes agree); negative verifies inline on
	// the pipeline's reassembly stage.
	VerifyWorkers int
	// RestoreWindow bounds the restore pipeline's in-flight chunk slots
	// (the reassembly ring depth): how far fetch/decode may run ahead of
	// the verified, in-order sink writes. It is the restore counterpart
	// of the ingest ring and caps resident pipeline memory at
	// O(window × chunk size). 0 selects the default (256); values below 2
	// are clamped to 2 (the minimum that still overlaps).
	RestoreWindow int
	// LegacyRestore selects the pre-fast-path serial restore emit: every
	// chunk is charged, verified, and written inside one sequential
	// callback. Default false — the pooled reassembly-ring pipeline
	// (DESIGN.md §14). The restorefast benchmark uses this as its
	// measured baseline, the way LegacyIngest serves the ingest
	// experiment.
	LegacyRestore bool
	// LegacyIngest selects the pre-fast-path pipelined ingest on the
	// content-defined path: materialize every chunk into one []Chunk,
	// spawn hash workers per call, probe the dedup cache chunk-by-chunk.
	// Default false — the pooled ring fast path (DESIGN.md §13). The
	// ingest benchmark uses this as its measured baseline, the way
	// DisableRangedReads serves the restoreio experiment.
	LegacyIngest bool
	// InlineGlobalProbe extends the fast ingest path with batched probes
	// of the global fingerprint index: chunks that miss the job's local
	// dedup cache are looked up in the global index (one GetBatch per
	// ring batch) and recorded as duplicates on a hit. Default false —
	// the paper's design performs global deduplication offline on the
	// G-node; enabling this trades index traffic on the backup path for
	// catching cross-file duplicates the similarity detector misses.
	// Only hits containers the G-node has already indexed.
	InlineGlobalProbe bool
	// PackBudgetBytes bounds the payload bytes of filled containers that
	// may sit sealed-or-sealing ahead of the pack workers (queued plus
	// in-flight), the explicit backpressure of the pack stage. 0 selects
	// the default 3 × PackWorkers × ContainerCapacity; negative disables
	// the byte budget (the queue's container-count bound still applies).
	PackBudgetBytes int64
	// MaintWorkers is the fan-out width of G-node offline maintenance
	// (reverse dedup scans, scrub verification, sweep marking, container
	// rewrites). 0 selects the default (4); negative runs serially. Any
	// width produces bit-identical results — it only changes wall-clock.
	MaintWorkers int

	// GlobalShards partitions the global fingerprint index by hash
	// prefix into this many G-shards (DESIGN.md §11); shard operations
	// proceed concurrently instead of serialising on one LSM mutex.
	// Default 1 — the original single-G-node layout, byte-compatible
	// with existing repositories. Maximum 256 (one shard per prefix
	// byte value).
	GlobalShards int
	// GlobalReplicas replicates each index shard across 2f+1 kvstore
	// instances behind a quorum-committed batch log with leader
	// failover (internal/repl). Default 1: unreplicated, no
	// replication log, identical to the pre-repl layout.
	GlobalReplicas int
	// GlobalKV tunes each index shard's LSM engine; the shard map
	// manages key prefixes. Zero values select kvstore defaults.
	GlobalKV kvstore.Options

	// ECDataShards (K) and ECParityShards (M) arm the erasure-coded
	// redundancy tier (DESIGN.md §12): every container object is striped
	// RS(K+M) across K+M fault-isolated OSS backends, surviving any M
	// backend losses. 0 data shards disables the tier (the default
	// single-copy layout). K=1 with M>0 is (1+M)-replication.
	ECDataShards   int
	ECParityShards int
	// ECBackends is the backend count; 0 derives K+M. Any other value
	// must equal K+M (one shard per fault domain).
	ECBackends int
	// ECBackendCosts optionally gives backend i its own OSS cost model
	// (mixing fast and slow fault domains); missing or zero entries use
	// Costs.
	ECBackendCosts []simclock.Costs

	// Costs is the virtual-time cost model.
	Costs simclock.Costs
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		ChunkAlgo:             "fastcdc",
		ChunkParams:           chunker.DefaultParams(),
		FingerprintAlg:        fingerprint.SHA1,
		SegmentChunks:         256,
		SampleRatio:           32,
		SimilarityMinScore:    0.1,
		DedupCacheSegments:    256,
		SkipChunking:          true,
		ChunkMerging:          true,
		MergeThreshold:        5,
		MaxSuperChunkBytes:    2 << 20,
		ContainerCapacity:     4 << 20,
		SparseUtilization:     0.3,
		RewriteStaleThreshold: 0.2,
		CacheMemBytes:         256 << 20,
		CacheDiskBytes:        1 << 30,
		LAWChunks:             4096,
		RestorePolicy:         "fv",
		PrefetchThreads:       6,
		PackWorkers:           4,
		HashWorkers:           4,
		VerifyWorkers:         4,
		RestoreWindow:         256,
		MaintWorkers:          4,
		Costs:                 simclock.DefaultCosts(),
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.ChunkAlgo == "" {
		c.ChunkAlgo = d.ChunkAlgo
	}
	if c.ChunkParams == (chunker.Params{}) {
		c.ChunkParams = d.ChunkParams
	}
	if c.SegmentChunks <= 0 {
		c.SegmentChunks = d.SegmentChunks
	}
	if c.SampleRatio <= 0 {
		c.SampleRatio = d.SampleRatio
	}
	if c.SimilarityMinScore <= 0 {
		c.SimilarityMinScore = d.SimilarityMinScore
	}
	if c.DedupCacheSegments <= 0 {
		c.DedupCacheSegments = d.DedupCacheSegments
	}
	if c.MergeThreshold <= 0 {
		c.MergeThreshold = d.MergeThreshold
	}
	if c.MaxSuperChunkBytes <= 0 {
		c.MaxSuperChunkBytes = d.MaxSuperChunkBytes
	}
	if c.ContainerCapacity <= 0 {
		c.ContainerCapacity = d.ContainerCapacity
	}
	if c.SparseUtilization <= 0 {
		c.SparseUtilization = d.SparseUtilization
	}
	if c.RewriteStaleThreshold <= 0 {
		c.RewriteStaleThreshold = d.RewriteStaleThreshold
	}
	if c.CacheMemBytes <= 0 {
		c.CacheMemBytes = d.CacheMemBytes
	}
	if c.LAWChunks <= 0 {
		c.LAWChunks = d.LAWChunks
	}
	if c.RestorePolicy == "" {
		c.RestorePolicy = d.RestorePolicy
	}
	if c.PackWorkers == 0 {
		c.PackWorkers = d.PackWorkers
	}
	if c.HashWorkers == 0 {
		c.HashWorkers = d.HashWorkers
	}
	if c.VerifyWorkers == 0 {
		c.VerifyWorkers = d.VerifyWorkers
	}
	if c.RestoreWindow == 0 {
		c.RestoreWindow = d.RestoreWindow
	}
	if c.RestoreWindow < 2 {
		c.RestoreWindow = 2
	}
	if c.MaintWorkers == 0 {
		c.MaintWorkers = d.MaintWorkers
	}
	if c.PackBudgetBytes == 0 && c.PackWorkers > 0 {
		c.PackBudgetBytes = 3 * int64(c.PackWorkers) * int64(c.ContainerCapacity)
	}
	if c.GlobalShards <= 0 {
		c.GlobalShards = 1
	}
	if c.GlobalReplicas <= 0 {
		c.GlobalReplicas = 1
	}
	if c.Costs == (simclock.Costs{}) {
		c.Costs = d.Costs
	}
	if c.ECDataShards > 0 && c.ECBackends <= 0 {
		c.ECBackends = c.ECDataShards + c.ECParityShards
	}
}

// Repo is the opened storage layer. One Repo is shared by every L-node and
// the G-node of a backup domain; all of its components are safe for
// concurrent use.
type Repo struct {
	Config Config

	// Base is the raw (unmetered) OSS store.
	Base oss.Store
	// Containers, Recipes operate unmetered; per-job metered views come
	// from ContainersFor / RecipesFor.
	Containers *container.Store
	Recipes    *recipe.Store
	SimIndex   *simindex.Index
	// Global is the (possibly sharded, possibly replicated) global
	// fingerprint index. With GlobalShards=GlobalReplicas=1 it is one
	// plain Index behind a pass-through view — the original layout.
	Global *globalindex.Sharded
	// ReplGroups holds shard k's replica group when GlobalReplicas > 1
	// (nil otherwise) — the chaos harness's kill/restart surface.
	ReplGroups []*repl.Group
	// ReplDowntime accumulates the virtual failover cost charged by
	// every shard group (PhaseFailover).
	ReplDowntime *simclock.Account
	// Journal is the intent journal for multi-object reorganisations;
	// OpenRepo replays surviving records before returning.
	Journal *journal.Store

	// EC is the erasure-coded redundancy tier (nil when ECDataShards is
	// 0): container objects are striped across EC.Backends(), whose
	// Faulty wrappers are the chaos injection surface for whole-backend
	// outages and shard rot.
	EC *ec.Store

	// Files serialises per-file mutations across concurrent jobs
	// (backup/delete/compaction exclusive, restore shared).
	Files FileLocks
	// CLocks is the container reader/writer lock table: restores pin the
	// containers they read, physical rewrites take the write side.
	CLocks ContainerLocks

	// RestoreIO is the node-wide shared restore container cache
	// (singleflight fetches + bounded reference-counted caching across
	// jobs); nil when Config.SharedCacheBytes is negative. Container
	// mutations invalidate it via the store's OnInvalidate hook.
	RestoreIO *cache.Shared

	// maintEpoch counts committed maintenance mutations (rewrites, drops,
	// compactions, GC, reverse-dedup/scrub commits). Backups never bump
	// it. G-node's parallel passes scan and probe OUTSIDE maintMu at a
	// sampled epoch, then validate it under the lock: unchanged means no
	// maintenance invalidated the scan, so the pass commits; changed means
	// retry. See DESIGN.md §8.
	maintEpoch atomic.Uint64
}

// MaintEpoch samples the maintenance epoch (see the field comment).
func (r *Repo) MaintEpoch() uint64 { return r.maintEpoch.Load() }

// BumpMaintEpoch marks a committed maintenance mutation, invalidating any
// optimistic scan concurrently in flight.
func (r *Repo) BumpMaintEpoch() { r.maintEpoch.Add(1) }

// OpenRepo opens (or initialises) the storage layer on an OSS store.
func OpenRepo(store oss.Store, cfg Config) (*Repo, error) {
	cfg.fillDefaults()
	if err := cfg.ChunkParams.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if _, err := chunker.New(cfg.ChunkAlgo, cfg.ChunkParams); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var tier *ec.Store
	containerOSS := store
	if cfg.ECDataShards > 0 {
		k, m := cfg.ECDataShards, cfg.ECParityShards
		if cfg.ECBackends != k+m {
			return nil, fmt.Errorf("core: ECBackends %d must equal ECDataShards+ECParityShards %d",
				cfg.ECBackends, k+m)
		}
		set := oss.NewBackendSet(store, k+m, cfg.Costs, cfg.ECBackendCosts)
		var err error
		if tier, err = ec.NewStore(set, k, m, cfg.Costs); err != nil {
			return nil, fmt.Errorf("core: open redundancy tier: %w", err)
		}
		containerOSS = ecRouter(tier, store)
	}
	cs, err := container.NewStore(containerOSS, cfg.ContainerCapacity)
	if err != nil {
		return nil, fmt.Errorf("core: open containers: %w", err)
	}
	si, err := simindex.Open(store)
	if err != nil {
		return nil, fmt.Errorf("core: open similar file index: %w", err)
	}
	gi, groups, downtime, err := openGlobal(store, &cfg)
	if err != nil {
		return nil, fmt.Errorf("core: open global index: %w", err)
	}
	js, err := journal.Open(store)
	if err != nil {
		return nil, fmt.Errorf("core: open journal: %w", err)
	}
	r := &Repo{
		Config:       cfg,
		Base:         store,
		EC:           tier,
		Containers:   cs,
		Recipes:      recipe.NewStore(store),
		SimIndex:     si,
		Global:       gi,
		ReplGroups:   groups,
		ReplDowntime: downtime,
		Journal:      js,
	}
	if cfg.SharedCacheBytes >= 0 {
		r.RestoreIO = cache.NewShared(cfg.SharedCacheBytes)
		cs.OnInvalidate(r.RestoreIO.Invalidate)
	}
	// Roll forward any reorganisation a previous process crashed in the
	// middle of, before this process does new work against the repo.
	if _, err := r.ReplayJournal(); err != nil {
		return nil, fmt.Errorf("core: replay journal: %w", err)
	}
	return r, nil
}

// openGlobal builds the global index for the configured layout. The
// 1-shard/1-replica default opens the index at the historic "gidx/"
// prefix — byte-compatible with repositories written before sharding
// existed. Sharded layouts place shard k at "gidx/s<k>/" (replicas
// under "gidx/s<k>/n<i>/" with the log at "gidx/s<k>/log/").
func openGlobal(store oss.Store, cfg *Config) (*globalindex.Sharded, []*repl.Group, *simclock.Account, error) {
	shards := cfg.GlobalShards
	if shards > 256 {
		return nil, nil, nil, fmt.Errorf("GlobalShards %d exceeds the 256 prefix ranges", shards)
	}
	bloomPerShard := (1 << 22) / shards
	if bloomPerShard < 1<<16 {
		bloomPerShard = 1 << 16
	}
	workers := cfg.MaintWorkers
	if workers < 1 {
		workers = 1
	}

	if shards == 1 && cfg.GlobalReplicas == 1 {
		idx, err := globalindex.Open(store, globalindex.Options{KV: cfg.GlobalKV})
		if err != nil {
			return nil, nil, nil, err
		}
		s, err := globalindex.NewSharded([]*globalindex.Index{idx}, workers)
		return s, nil, nil, err
	}

	var (
		idxs     []*globalindex.Index
		groups   []*repl.Group
		downtime *simclock.Account
	)
	if cfg.GlobalReplicas > 1 {
		downtime = simclock.NewAccount()
	}
	for k := 0; k < shards; k++ {
		prefix := fmt.Sprintf("gidx/s%d/", k)
		opts := globalindex.Options{BloomCapacity: bloomPerShard}
		var idx *globalindex.Index
		if cfg.GlobalReplicas > 1 {
			grp, err := repl.Open(store, repl.Options{
				Replicas: cfg.GlobalReplicas,
				Prefix:   prefix,
				KV:       cfg.GlobalKV,
				Downtime: downtime,
			})
			if err != nil {
				return nil, nil, nil, fmt.Errorf("shard %d: %w", k, err)
			}
			groups = append(groups, grp)
			if idx, err = globalindex.OpenBackend(grp, opts); err != nil {
				return nil, nil, nil, fmt.Errorf("shard %d: %w", k, err)
			}
		} else {
			kv := cfg.GlobalKV
			kv.Prefix = prefix
			opts.KV = kv
			var err error
			if idx, err = globalindex.Open(store, opts); err != nil {
				return nil, nil, nil, fmt.Errorf("shard %d: %w", k, err)
			}
		}
		idxs = append(idxs, idx)
	}
	s, err := globalindex.NewSharded(idxs, workers)
	return s, groups, downtime, err
}

// Metered returns an OSS view charging acct under the repo's cost model.
func (r *Repo) Metered(acct *simclock.Account) *oss.Metered {
	return oss.NewMetered(r.Base, r.Config.Costs, acct)
}

// ecRouter routes the container namespaces through the redundancy tier
// and everything else to plain.
func ecRouter(tier *ec.Store, plain oss.Store) *ec.Router {
	return ec.NewRouter(tier, plain, container.Prefix, container.QuarantinePrefix)
}

// ContainersFor returns a container-store view charging acct. With the
// redundancy tier armed, container I/O stripes through a per-account EC
// view (charging per-shard, per-backend costs) while recipes, indexes and
// the journal keep using the plain metered store.
func (r *Repo) ContainersFor(acct *simclock.Account) *container.Store {
	if r.EC == nil {
		return r.Containers.View(r.Metered(acct))
	}
	return r.Containers.View(ecRouter(r.EC.WithAccount(acct), r.Metered(acct)))
}

// ECFor returns an EC-tier view charging acct (nil when the tier is off).
func (r *Repo) ECFor(acct *simclock.Account) *ec.Store {
	if r.EC == nil {
		return nil
	}
	return r.EC.WithAccount(acct)
}

// RecipesFor returns a recipe-store view charging acct.
func (r *Repo) RecipesFor(acct *simclock.Account) *recipe.Store {
	return recipe.NewStore(r.Metered(acct))
}

// Cutter constructs the configured chunker.
func (r *Repo) Cutter() chunker.Cutter {
	c, err := chunker.New(r.Config.ChunkAlgo, r.Config.ChunkParams)
	if err != nil {
		// Config was validated at OpenRepo; this cannot fail afterwards.
		panic(err)
	}
	return c
}

// Fingerprint hashes a chunk with the configured algorithm, charging the
// fingerprinting CPU phase.
func (r *Repo) Fingerprint(acct *simclock.Account, data []byte) fingerprint.FP {
	per := r.Config.Costs.SHA1PerByte
	if r.Config.FingerprintAlg == fingerprint.SHA256 {
		per = r.Config.Costs.SHA256PerByte
	}
	if acct != nil {
		acct.ChargeCPUBytes(simclock.PhaseFingerprint, int64(len(data)), per)
	}
	return fingerprint.Of(r.Config.FingerprintAlg, data)
}
