package core

import (
	"testing"

	"slimstore/internal/chunker"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

func TestDefaultConfigIsValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.ChunkParams.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRepo(oss.NewMem(), cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFillDefaults(t *testing.T) {
	// A zero config opens with every default applied.
	repo, err := OpenRepo(oss.NewMem(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := repo.Config
	d := DefaultConfig()
	if cfg.ChunkAlgo != d.ChunkAlgo || cfg.SegmentChunks != d.SegmentChunks ||
		cfg.SampleRatio != d.SampleRatio || cfg.MergeThreshold != d.MergeThreshold ||
		cfg.ContainerCapacity != d.ContainerCapacity || cfg.RestorePolicy != d.RestorePolicy {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	// Partial overrides survive.
	repo2, err := OpenRepo(oss.NewMem(), Config{ChunkAlgo: "rabin", SampleRatio: 8})
	if err != nil {
		t.Fatal(err)
	}
	if repo2.Config.ChunkAlgo != "rabin" || repo2.Config.SampleRatio != 8 {
		t.Fatalf("overrides lost: %+v", repo2.Config)
	}
	if repo2.Config.SegmentChunks != d.SegmentChunks {
		t.Fatal("unset fields not defaulted")
	}
}

func TestOpenRepoRejectsBadConfig(t *testing.T) {
	if _, err := OpenRepo(oss.NewMem(), Config{ChunkAlgo: "nope"}); err == nil {
		t.Fatal("unknown chunk algorithm accepted")
	}
	bad := Config{ChunkParams: chunker.Params{Min: 100, Avg: 50, Max: 10}}
	if _, err := OpenRepo(oss.NewMem(), bad); err == nil {
		t.Fatal("invalid chunk params accepted")
	}
}

func TestMeteredViews(t *testing.T) {
	repo, err := OpenRepo(oss.NewMem(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	acct := simclock.NewAccount()
	m := repo.Metered(acct)
	if err := m.Put("x", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if acct.IO().Writes != 1 {
		t.Fatal("metered view did not charge the account")
	}
	// Container view shares the allocator with the base store.
	cv := repo.ContainersFor(acct)
	id1 := repo.Containers.AllocateID()
	id2 := cv.AllocateID()
	if id2 != id1+1 {
		t.Fatalf("views do not share the allocator: %v then %v", id1, id2)
	}
}

func TestCutterAndFingerprint(t *testing.T) {
	repo, err := OpenRepo(oss.NewMem(), Config{ChunkAlgo: "gear"})
	if err != nil {
		t.Fatal(err)
	}
	if got := repo.Cutter().Name(); got != "gear" {
		t.Fatalf("Cutter = %s", got)
	}
	acct := simclock.NewAccount()
	data := make([]byte, 10000)
	fp := repo.Fingerprint(acct, data)
	if fp != fingerprint.Of(fingerprint.SHA1, data) {
		t.Fatal("Fingerprint does not match configured algorithm")
	}
	if acct.CPUPhase(simclock.PhaseFingerprint) == 0 {
		t.Fatal("fingerprinting not charged")
	}
	// SHA-256 variant charges the dearer rate.
	repo2, _ := OpenRepo(oss.NewMem(), Config{FingerprintAlg: fingerprint.SHA256})
	acct2 := simclock.NewAccount()
	fp2 := repo2.Fingerprint(acct2, data)
	if fp2 != fingerprint.Of(fingerprint.SHA256, data) {
		t.Fatal("SHA256 config ignored")
	}
	if acct2.CPUPhase(simclock.PhaseFingerprint) <= acct.CPUPhase(simclock.PhaseFingerprint) {
		t.Fatal("SHA256 should cost more than SHA1")
	}
}
