package globalindex

import (
	"fmt"
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

func fpN(n int) fingerprint.FP {
	return fingerprint.OfBytes([]byte(fmt.Sprintf("chunk-%d", n)))
}

func TestPutGetDelete(t *testing.T) {
	x, err := Open(oss.NewMem(), Options{BloomCapacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := x.Put(fpN(i), container.ID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		id, ok, err := x.Get(fpN(i))
		if err != nil || !ok || id != container.ID(i+1) {
			t.Fatalf("Get(%d) = %v, %v, %v", i, id, ok, err)
		}
	}
	// Relocation (reverse dedup moves the pointer to the new container).
	if err := x.Put(fpN(5), 999); err != nil {
		t.Fatal(err)
	}
	id, ok, _ := x.Get(fpN(5))
	if !ok || id != 999 {
		t.Fatalf("after relocation Get = %v, %v", id, ok)
	}
	// Delete.
	if err := x.Delete(fpN(7)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := x.Get(fpN(7)); ok {
		t.Fatal("deleted fingerprint still resolves")
	}
	// Unique chunks short-circuit via the bloom filter.
	before := x.Stats().BloomSkips
	for i := 1000; i < 1500; i++ {
		if _, ok, _ := x.Get(fpN(i)); ok {
			t.Fatalf("phantom hit for %d", i)
		}
	}
	if x.Stats().BloomSkips-before < 400 {
		t.Fatalf("bloom skipped only %d of 500 unique lookups", x.Stats().BloomSkips-before)
	}
}

func TestReopenRebuildsBloom(t *testing.T) {
	mem := oss.NewMem()
	x, _ := Open(mem, Options{BloomCapacity: 1000})
	for i := 0; i < 50; i++ {
		x.Put(fpN(i), container.ID(i+1))
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	x2, err := Open(mem, Options{BloomCapacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if x2.Stats().Entries != 50 {
		t.Fatalf("reopened Entries = %d", x2.Stats().Entries)
	}
	for i := 0; i < 50; i++ {
		id, ok, err := x2.Get(fpN(i))
		if err != nil || !ok || id != container.ID(i+1) {
			t.Fatalf("reopened Get(%d) = %v, %v, %v", i, id, ok, err)
		}
	}
}

func TestScan(t *testing.T) {
	x, _ := Open(oss.NewMem(), Options{BloomCapacity: 100})
	want := map[fingerprint.FP]container.ID{}
	for i := 0; i < 30; i++ {
		want[fpN(i)] = container.ID(i + 1)
		x.Put(fpN(i), container.ID(i+1))
	}
	got := map[fingerprint.FP]container.ID{}
	err := x.Scan(func(fp fingerprint.FP, id container.ID) bool {
		got[fp] = id
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan found %d entries, want %d", len(got), len(want))
	}
	for fp, id := range want {
		if got[fp] != id {
			t.Fatalf("scan mismatch for %s", fp.Short())
		}
	}
}
