package globalindex

import (
	"fmt"
	"sync"
	"sync/atomic"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
)

// Sharded partitions the global fingerprint index by hash prefix into N
// G-shards (the shared-nothing clustered layout): shard k owns the
// contiguous fingerprint range where int(fp[0])*N/256 == k, so shard
// boundaries nest as N grows and a full Scan over shards 0..N-1 visits
// fingerprints in global order. Each shard is a complete Index — its own
// bloom stripes, its own backend (a plain kvstore or a replicated
// group) — so shard operations proceed concurrently instead of
// serialising on one LSM mutex.
//
// With one shard every method delegates straight to it, keeping the
// single-G-node configuration byte-identical to the unsharded code path.
type Sharded struct {
	shards  []*Index
	workers int

	// ops counts routed operations; the chaos harness registers an OnOp
	// hook to fire shard-kill/leader-kill schedules at exact op counts
	// mid-maintenance.
	ops  atomic.Int64
	onOp atomic.Value // func(int64)
}

// NewSharded assembles a sharded view over per-shard indexes (order is
// the shard map: shards[k] owns prefix range k). workers bounds the
// per-call shard fan-out; <1 runs shards serially, mirroring the
// MaintWorkers convention.
func NewSharded(shards []*Index, workers int) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("globalindex: sharded view needs at least one shard")
	}
	if workers < 1 {
		workers = 1
	}
	return &Sharded{shards: shards, workers: workers}, nil
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard exposes one shard index (tests, stats drill-down).
func (s *Sharded) Shard(k int) *Index { return s.shards[k] }

// ShardFor maps a fingerprint to its owning shard: contiguous prefix
// ranges, so global fingerprint order is the concatenation of the
// shards' orders.
func (s *Sharded) ShardFor(fp fingerprint.FP) int {
	return int(fp[0]) * len(s.shards) / 256
}

// OnOp registers a hook receiving the running operation count before
// each routed index operation. The chaos harness uses it to inject
// faults at deterministic points mid-sweep; the hook may be called from
// concurrent maintenance workers and must be goroutine-safe.
func (s *Sharded) OnOp(fn func(n int64)) {
	s.onOp.Store(fn)
}

// Ops returns the routed-operation count.
func (s *Sharded) Ops() int64 { return s.ops.Load() }

func (s *Sharded) step() {
	n := s.ops.Add(1)
	if fn, ok := s.onOp.Load().(func(int64)); ok && fn != nil {
		fn(n)
	}
}

// forEachShard runs fn over every shard id across the fan-out pool,
// returning the first error (remaining dispatches are abandoned).
func (s *Sharded) forEachShard(fn func(k int) error) error {
	n := len(s.shards)
	w := s.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for k := 0; k < n; k++ {
			if err := fn(k); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				if err := fn(k); err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}

// Put records fp → id on its owning shard.
func (s *Sharded) Put(fp fingerprint.FP, id container.ID) error {
	s.step()
	return s.shards[s.ShardFor(fp)].Put(fp, id)
}

// Get resolves fp through its owning shard.
func (s *Sharded) Get(fp fingerprint.FP) (container.ID, bool, error) {
	s.step()
	return s.shards[s.ShardFor(fp)].Get(fp)
}

// Delete removes fp from its owning shard.
func (s *Sharded) Delete(fp fingerprint.FP) error {
	s.step()
	return s.shards[s.ShardFor(fp)].Delete(fp)
}

// PutBatch splits the entries per shard (preserving relative order, so
// same-fingerprint conflicts still resolve last-write-wins like the
// unsharded path) and commits the sub-batches concurrently.
func (s *Sharded) PutBatch(entries []Entry) error {
	s.step()
	if len(entries) == 0 {
		return nil
	}
	if len(s.shards) == 1 {
		return s.shards[0].PutBatch(entries)
	}
	groups := make([][]Entry, len(s.shards))
	for i := range entries {
		k := s.ShardFor(entries[i].FP)
		groups[k] = append(groups[k], entries[i])
	}
	return s.forEachShard(func(k int) error {
		if len(groups[k]) == 0 {
			return nil
		}
		return s.shards[k].PutBatch(groups[k])
	})
}

// GetBatch fans the lookup out per shard. Result slices are positional
// (shard workers write disjoint indexes), so the answer is identical to
// the unsharded call; bloomSkips is the sum over shards.
func (s *Sharded) GetBatch(fps []fingerprint.FP) (ids []container.ID, found []bool, bloomSkips int, err error) {
	s.step()
	if len(s.shards) == 1 {
		return s.shards[0].GetBatch(fps)
	}
	ids = make([]container.ID, len(fps))
	found = make([]bool, len(fps))
	if len(fps) == 0 {
		return ids, found, 0, nil
	}
	groups := make([][]int, len(s.shards))
	for i := range fps {
		k := s.ShardFor(fps[i])
		groups[k] = append(groups[k], i)
	}
	skips := make([]int, len(s.shards))
	err = s.forEachShard(func(k int) error {
		if len(groups[k]) == 0 {
			return nil
		}
		sub := make([]fingerprint.FP, len(groups[k]))
		for j, i := range groups[k] {
			sub[j] = fps[i]
		}
		sids, sfound, sskips, serr := s.shards[k].GetBatch(sub)
		if serr != nil {
			return serr
		}
		for j, i := range groups[k] {
			ids[i] = sids[j]
			found[i] = sfound[j]
		}
		skips[k] = sskips
		return nil
	})
	if err != nil {
		return nil, nil, 0, err
	}
	for _, n := range skips {
		bloomSkips += n
	}
	return ids, found, bloomSkips, nil
}

// Scan visits all entries in global fingerprint order: shards own
// contiguous prefix ranges, so visiting them in shard order is key
// order.
func (s *Sharded) Scan(fn func(fp fingerprint.FP, id container.ID) bool) error {
	stopped := false
	for _, sh := range s.shards {
		if err := sh.Scan(func(fp fingerprint.FP, id container.ID) bool {
			if !fn(fp, id) {
				stopped = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// Stats sums the per-shard snapshots (entries, lookups, bloom skips and
// the KV engine counters are all additive).
func (s *Sharded) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		out.Entries += st.Entries
		out.Lookups += st.Lookups
		out.BloomSkips += st.BloomSkips
		out.KV.Puts += st.KV.Puts
		out.KV.Gets += st.KV.Gets
		out.KV.Deletes += st.KV.Deletes
		out.KV.BloomNegative += st.KV.BloomNegative
		out.KV.TableReads += st.KV.TableReads
		out.KV.BlockCacheHits += st.KV.BlockCacheHits
		out.KV.Flushes += st.KV.Flushes
		out.KV.Compactions += st.KV.Compactions
		out.KV.TablesLive += st.KV.TablesLive
		out.KV.WALSegments += st.KV.WALSegments
	}
	return out
}

// Flush persists every shard.
func (s *Sharded) Flush() error {
	return s.forEachShard(func(k int) error { return s.shards[k].Flush() })
}

// Close closes every shard, returning the first error.
func (s *Sharded) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
