// Package globalindex maintains the global fingerprint index (paper
// §III-B): the mapping from every chunk fingerprint of a user to the
// container storing the chunk, persisted in Rocks-OSS (internal/kvstore).
//
// G-node uses it for exact reverse deduplication (§VI-A): newly written
// chunks are filtered through an in-memory global bloom filter first —
// unique chunks short-circuit without any OSS access — and only potential
// duplicates pay an LSM point lookup.
package globalindex

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"slimstore/internal/cbf"
	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/kvstore"
	"slimstore/internal/oss"
)

// Options configure the index.
type Options struct {
	// KV tunes the underlying LSM store.
	KV kvstore.Options
	// BloomCapacity sizes the global bloom filter (expected distinct
	// chunks). Default 1<<22 (~4M chunks).
	BloomCapacity int
	// BloomFPRate is the filter's false-positive rate. Default 0.01.
	BloomFPRate float64
}

// bloomShards stripes the in-memory bloom filter. Every chunk of every
// concurrent backup/restore job passes through the filter, so one mutex
// here would be the system's hottest lock; fingerprints are uniformly
// distributed, so sharding by the first byte spreads the traffic evenly.
const bloomShards = 64

// bloomShard is one stripe of the global bloom filter.
type bloomShard struct {
	mu    sync.RWMutex
	bloom *cbf.Bloom
	n     int64
}

// Backend is the persistent KV engine an Index runs on: a plain
// kvstore.DB for the single-node layout, or a repl.Group replicating
// the same operations across a quorum of kvstores. The method set is
// exactly the slice of the kvstore API the index uses, so the DB
// satisfies it without adaptation.
type Backend interface {
	Put(key, value []byte) error
	Get(key []byte) (value []byte, found bool, err error)
	GetMulti(keys [][]byte) (values [][]byte, found []bool, err error)
	Apply(b *kvstore.Batch) error
	Delete(key []byte) error
	Scan(start, end []byte, fn func(key, value []byte) bool) error
	Flush() error
	Close() error
	Stats() kvstore.Stats
}

// Index is the global fingerprint index. Safe for concurrent use: the
// bloom filter is sharded by fingerprint prefix (reads take a shard
// RLock), the stats are atomics, and the LSM store synchronises itself.
type Index struct {
	db     Backend
	shards [bloomShards]bloomShard

	// Stats.
	bloomSkips atomic.Int64 // lookups answered "unique" by the filter alone
	lookups    atomic.Int64
}

func (x *Index) shard(fp fingerprint.FP) *bloomShard {
	return &x.shards[int(fp[0])%bloomShards]
}

// Open opens the index over an OSS store, rebuilding the bloom filter from
// the persisted entries.
func Open(store oss.Store, opts Options) (*Index, error) {
	if opts.KV.Prefix == "" {
		opts.KV.Prefix = "gidx/"
	}
	if opts.BloomCapacity <= 0 {
		opts.BloomCapacity = 1 << 22
	}
	if opts.BloomFPRate <= 0 {
		opts.BloomFPRate = 0.01
	}
	db, err := kvstore.Open(store, opts.KV)
	if err != nil {
		return nil, fmt.Errorf("globalindex: %w", err)
	}
	return OpenBackend(db, opts)
}

// OpenBackend opens the index over an already-constructed backend (a
// replicated group, a pre-tuned kvstore), rebuilding the bloom filter
// from the persisted entries. Options.KV is ignored — the backend was
// built with its own engine tuning.
func OpenBackend(db Backend, opts Options) (*Index, error) {
	if opts.BloomCapacity <= 0 {
		opts.BloomCapacity = 1 << 22
	}
	if opts.BloomFPRate <= 0 {
		opts.BloomFPRate = 0.01
	}
	x := &Index{db: db}
	per := opts.BloomCapacity / bloomShards
	if per < 1024 {
		per = 1024
	}
	for i := range x.shards {
		x.shards[i].bloom = cbf.NewBloom(per, opts.BloomFPRate)
	}
	err := db.Scan(nil, nil, func(k, v []byte) bool {
		if len(k) == fingerprint.Size {
			var fp fingerprint.FP
			copy(fp[:], k)
			s := x.shard(fp)
			s.bloom.Add(fp)
			s.n++
		}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("globalindex: rebuild bloom: %w", err)
	}
	return x, nil
}

// Put records that fp is stored in container id (insert or relocation).
func (x *Index) Put(fp fingerprint.FP, id container.ID) error {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], uint64(id))
	if err := x.db.Put(fp[:], v[:]); err != nil {
		return fmt.Errorf("globalindex: put %s: %w", fp.Short(), err)
	}
	s := x.shard(fp)
	s.mu.Lock()
	if !s.bloom.MayContain(fp) {
		s.n++
	}
	s.bloom.Add(fp)
	s.mu.Unlock()
	return nil
}

// Get returns the container currently holding fp. The bloom filter answers
// definite misses without touching the LSM store.
func (x *Index) Get(fp fingerprint.FP) (container.ID, bool, error) {
	x.lookups.Add(1)
	s := x.shard(fp)
	s.mu.RLock()
	miss := !s.bloom.MayContain(fp)
	s.mu.RUnlock()
	if miss {
		x.bloomSkips.Add(1)
		return container.Invalid, false, nil
	}
	v, ok, err := x.db.Get(fp[:])
	if err != nil {
		return container.Invalid, false, fmt.Errorf("globalindex: get %s: %w", fp.Short(), err)
	}
	if !ok || len(v) != 8 {
		return container.Invalid, false, nil
	}
	return container.ID(binary.LittleEndian.Uint64(v)), true, nil
}

// Entry is one batched index mutation: fp is (now) stored in container ID.
type Entry struct {
	FP fingerprint.FP
	ID container.ID
}

// PutBatch records a set of fingerprint→container mappings in one
// group-committed kvstore batch: one WAL record, one lock acquisition.
// The sharded blooms stay coherent with the serial path — each bloom
// shard is locked once, and the distinct-entry estimate n counts exactly
// the fingerprints a loop of Puts would have counted. Entries applied in
// slice order, so a batch writing the same fingerprint twice resolves
// like the equivalent loop (last write wins).
func (x *Index) PutBatch(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	var b kvstore.Batch
	var v [8]byte
	for i := range entries {
		binary.LittleEndian.PutUint64(v[:], uint64(entries[i].ID))
		b.Put(entries[i].FP[:], v[:])
	}
	if err := x.db.Apply(&b); err != nil {
		return fmt.Errorf("globalindex: put batch of %d: %w", len(entries), err)
	}
	// Group bloom updates per shard so each stripe is locked once.
	var byShard [bloomShards][]fingerprint.FP
	for i := range entries {
		si := int(entries[i].FP[0]) % bloomShards
		byShard[si] = append(byShard[si], entries[i].FP)
	}
	for si := range byShard {
		if len(byShard[si]) == 0 {
			continue
		}
		s := &x.shards[si]
		s.mu.Lock()
		for _, fp := range byShard[si] {
			if !s.bloom.MayContain(fp) {
				s.n++
			}
			s.bloom.Add(fp)
		}
		s.mu.Unlock()
	}
	return nil
}

// GetBatch resolves many fingerprints in one pass: bloom probes grouped
// per shard (one RLock each), then a single kvstore GetMulti for the
// bloom-positive survivors. Results are parallel slices; found[i] is
// false for unknown fingerprints. bloomSkips reports how many of THESE
// lookups the filter answered alone — callers tracking per-pass filter
// effectiveness (G-node stats) need the local count, not a delta of the
// global counter, which concurrent jobs also advance.
func (x *Index) GetBatch(fps []fingerprint.FP) (ids []container.ID, found []bool, bloomSkips int, err error) {
	ids = make([]container.ID, len(fps))
	found = make([]bool, len(fps))
	if len(fps) == 0 {
		return ids, found, 0, nil
	}
	x.lookups.Add(int64(len(fps)))

	var byShard [bloomShards][]int
	for i := range fps {
		si := int(fps[i][0]) % bloomShards
		byShard[si] = append(byShard[si], i)
	}
	survivors := make([]int, 0, len(fps))
	for si := range byShard {
		if len(byShard[si]) == 0 {
			continue
		}
		s := &x.shards[si]
		s.mu.RLock()
		for _, i := range byShard[si] {
			if s.bloom.MayContain(fps[i]) {
				survivors = append(survivors, i)
			} else {
				bloomSkips++
			}
		}
		s.mu.RUnlock()
	}
	x.bloomSkips.Add(int64(bloomSkips))
	if len(survivors) == 0 {
		return ids, found, bloomSkips, nil
	}
	sort.Ints(survivors) // deterministic probe order regardless of sharding

	keys := make([][]byte, len(survivors))
	for j, i := range survivors {
		keys[j] = fps[i][:]
	}
	values, hit, err := x.db.GetMulti(keys)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("globalindex: get batch of %d: %w", len(fps), err)
	}
	for j, i := range survivors {
		if hit[j] && len(values[j]) == 8 {
			ids[i] = container.ID(binary.LittleEndian.Uint64(values[j]))
			found[i] = true
		}
	}
	return ids, found, bloomSkips, nil
}

// Delete removes fp (its chunk no longer exists in any container). The
// bloom filter cannot delete, so it retains a stale positive until the
// next Open; correctness is unaffected, only one wasted lookup.
func (x *Index) Delete(fp fingerprint.FP) error {
	if err := x.db.Delete(fp[:]); err != nil {
		return fmt.Errorf("globalindex: delete %s: %w", fp.Short(), err)
	}
	return nil
}

// Scan visits all (fingerprint, container) pairs in fingerprint order.
func (x *Index) Scan(fn func(fp fingerprint.FP, id container.ID) bool) error {
	return x.db.Scan(nil, nil, func(k, v []byte) bool {
		if len(k) != fingerprint.Size || len(v) != 8 {
			return true
		}
		var fp fingerprint.FP
		copy(fp[:], k)
		return fn(fp, container.ID(binary.LittleEndian.Uint64(v)))
	})
}

// Stats reports index activity.
type Stats struct {
	Entries    int64
	Lookups    int64
	BloomSkips int64
	KV         kvstore.Stats
}

// Stats returns a snapshot.
func (x *Index) Stats() Stats {
	s := Stats{Lookups: x.lookups.Load(), BloomSkips: x.bloomSkips.Load()}
	for i := range x.shards {
		sh := &x.shards[i]
		sh.mu.RLock()
		s.Entries += sh.n
		sh.mu.RUnlock()
	}
	s.KV = x.db.Stats()
	return s
}

// Flush persists the memtable (cheap durability point for offline jobs).
func (x *Index) Flush() error { return x.db.Flush() }

// Close flushes and closes the underlying store.
func (x *Index) Close() error { return x.db.Close() }
