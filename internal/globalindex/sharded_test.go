package globalindex

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/kvstore"
	"slimstore/internal/oss"
	"slimstore/internal/repl"
)

// testFP fabricates a deterministic fingerprint whose first byte spreads
// across the shard space.
func testFP(i int) fingerprint.FP {
	var fp fingerprint.FP
	rng := rand.New(rand.NewSource(int64(i)))
	for j := range fp {
		fp[j] = byte(rng.Intn(256))
	}
	return fp
}

// openSharded builds an n-shard view over one Mem store, replicas per
// shard as given (1 = plain kvstore backend).
func openSharded(t *testing.T, store oss.Store, n, replicas, workers int) *Sharded {
	t.Helper()
	shards := make([]*Index, n)
	for k := 0; k < n; k++ {
		prefix := fmt.Sprintf("gidx/s%d/", k)
		var backend Backend
		if replicas > 1 {
			g, err := repl.Open(store, repl.Options{Replicas: replicas, Prefix: prefix})
			if err != nil {
				t.Fatal(err)
			}
			backend = g
		} else {
			idx, err := Open(store, Options{KV: kvOpts(prefix), BloomCapacity: 1 << 16})
			if err != nil {
				t.Fatal(err)
			}
			shards[k] = idx
			continue
		}
		idx, err := OpenBackend(backend, Options{BloomCapacity: 1 << 16})
		if err != nil {
			t.Fatal(err)
		}
		shards[k] = idx
	}
	s, err := NewSharded(shards, workers)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedMatchesSingle drives identical workloads through a single
// index and sharded views (plain and replicated backends) and demands
// identical answers, scan order, and entry counts.
func TestShardedMatchesSingle(t *testing.T) {
	single, err := Open(oss.NewMem(), Options{BloomCapacity: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	singleView, err := NewSharded([]*Index{single}, 1)
	if err != nil {
		t.Fatal(err)
	}
	views := map[string]*Sharded{
		"single":      singleView,
		"4-shard":     openSharded(t, oss.NewMem(), 4, 1, 4),
		"4-shard-3x":  openSharded(t, oss.NewMem(), 4, 3, 4),
		"7-shard-ser": openSharded(t, oss.NewMem(), 7, 1, -1),
	}

	const N = 400
	var batch []Entry
	for i := 0; i < N; i++ {
		batch = append(batch, Entry{FP: testFP(i), ID: container.ID(i)})
	}
	for name, v := range views {
		// Mix batch and single-op writes, then move some, delete some.
		if err := v.PutBatch(batch[:N/2]); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := N / 2; i < N; i++ {
			if err := v.Put(batch[i].FP, batch[i].ID); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		for i := 0; i < N; i += 7 {
			if err := v.Put(batch[i].FP, container.ID(i+1000)); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		for i := 3; i < N; i += 11 {
			if err := v.Delete(batch[i].FP); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if err := v.Flush(); err != nil {
			t.Fatalf("%s: flush: %v", name, err)
		}
	}

	// Point lookups and batch lookups agree everywhere.
	fps := make([]fingerprint.FP, N)
	for i := range fps {
		fps[i] = batch[i].FP
	}
	refIDs, refFound, _, err := views["single"].GetBatch(fps)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range views {
		ids, found, _, err := v.GetBatch(fps)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(ids, refIDs) || !reflect.DeepEqual(found, refFound) {
			t.Errorf("%s: GetBatch diverges from single index", name)
		}
		for i := 0; i < N; i += 13 {
			id, ok, err := v.Get(fps[i])
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if ok != refFound[i] || (ok && id != refIDs[i]) {
				t.Errorf("%s: Get(%d) = (%v,%v), want (%v,%v)", name, i, id, ok, refIDs[i], refFound[i])
			}
		}
	}

	// Scan visits fingerprints in global order on every layout, with
	// identical content.
	type pair struct {
		FP fingerprint.FP
		ID container.ID
	}
	dump := func(v *Sharded) []pair {
		var out []pair
		var prev fingerprint.FP
		first := true
		if err := v.Scan(func(fp fingerprint.FP, id container.ID) bool {
			if !first && bytes.Compare(prev[:], fp[:]) >= 0 {
				t.Fatalf("scan out of order: %s after %s", fp.Short(), prev.Short())
			}
			prev, first = fp, false
			out = append(out, pair{fp, id})
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := dump(views["single"])
	for name, v := range views {
		if got := dump(v); !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: scan dump diverges (%d vs %d entries)", name, len(got), len(ref))
		}
	}

	// Entry accounting is additive across shards.
	want := views["single"].Stats().Entries
	for name, v := range views {
		if got := v.Stats().Entries; got != want {
			t.Errorf("%s: entries = %d, want %d", name, got, want)
		}
	}
}

// TestShardedOnOpHook checks the chaos seam: the hook observes a
// strictly increasing op count and can act on group state mid-stream.
func TestShardedOnOpHook(t *testing.T) {
	s := openSharded(t, oss.NewMem(), 2, 1, 2)
	var fired int64
	s.OnOp(func(n int64) {
		if n == 5 {
			fired = n
		}
	})
	for i := 0; i < 10; i++ {
		if err := s.Put(testFP(i), container.ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 5 {
		t.Fatalf("hook never saw op 5 (fired=%d)", fired)
	}
	if s.Ops() != 10 {
		t.Fatalf("ops = %d, want 10", s.Ops())
	}
}

// kvOpts builds KV options with the given prefix for test shards.
func kvOpts(prefix string) (o kvstore.Options) {
	o.Prefix = prefix
	return o
}
