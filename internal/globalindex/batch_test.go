package globalindex

import (
	"math/rand"
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

// Property: PutBatch+GetBatch behave exactly like the loop of singles —
// same visible mappings, same bloom distinct-entry estimate, and the same
// number of lookups short-circuited by the filter.
func TestBatchMatchesSingles(t *testing.T) {
	opts := Options{BloomCapacity: 4096}
	single, err := Open(oss.NewMem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Open(oss.NewMem(), opts)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	var pending []Entry
	for i := 0; i < 600; i++ {
		// Overlapping fingerprints force relocations and bloom dup hits.
		e := Entry{FP: fpN(rng.Intn(250)), ID: container.ID(rng.Intn(40) + 1)}
		if err := single.Put(e.FP, e.ID); err != nil {
			t.Fatal(err)
		}
		pending = append(pending, e)
		if len(pending) >= 53 {
			if err := batched.PutBatch(pending); err != nil {
				t.Fatal(err)
			}
			pending = pending[:0]
		}
	}
	if err := batched.PutBatch(pending); err != nil {
		t.Fatal(err)
	}

	ss, bs := single.Stats(), batched.Stats()
	if ss.Entries != bs.Entries {
		t.Fatalf("bloom entry estimate diverges: singles %d, batched %d", ss.Entries, bs.Entries)
	}
	if ss.KV.Puts != bs.KV.Puts {
		t.Fatalf("kv puts diverge: singles %d, batched %d", ss.KV.Puts, bs.KV.Puts)
	}

	// Dump both indexes; they must agree key for key.
	dump := func(x *Index) map[fingerprint.FP]container.ID {
		m := map[fingerprint.FP]container.ID{}
		if err := x.Scan(func(fp fingerprint.FP, id container.ID) bool {
			m[fp] = id
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	sm, bm := dump(single), dump(batched)
	if len(sm) != len(bm) {
		t.Fatalf("index sizes diverge: singles %d, batched %d", len(sm), len(bm))
	}
	for fp, id := range sm {
		if bm[fp] != id {
			t.Fatalf("fp %s: singles → %d, batched → %d", fp.Short(), id, bm[fp])
		}
	}

	// Probe a mix of present and absent fingerprints both ways on the
	// batched index, and compare against singles lookups: same answers,
	// same bloom skip count.
	var fps []fingerprint.FP
	for i := 0; i < 400; i++ {
		fps = append(fps, fpN(i)) // 250 present at most, rest absent
	}
	ids, found, skips, err := batched.GetBatch(fps)
	if err != nil {
		t.Fatal(err)
	}
	singleSkips := 0
	for i, fp := range fps {
		before := single.Stats().BloomSkips
		id, ok, err := single.Get(fp)
		if err != nil {
			t.Fatal(err)
		}
		if single.Stats().BloomSkips > before {
			singleSkips++
		}
		if ok != found[i] || (ok && id != ids[i]) {
			t.Fatalf("fp %s: GetBatch = (%d,%v), Get = (%d,%v)", fp.Short(), ids[i], found[i], id, ok)
		}
	}
	if skips != singleSkips {
		t.Fatalf("bloom skips diverge: GetBatch %d, singles %d", skips, singleSkips)
	}
}

func TestGetBatchEmptyAndUnknown(t *testing.T) {
	x, err := Open(oss.NewMem(), Options{BloomCapacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ids, found, skips, err := x.GetBatch(nil)
	if err != nil || len(ids) != 0 || len(found) != 0 || skips != 0 {
		t.Fatalf("empty GetBatch = %v %v %d %v", ids, found, skips, err)
	}
	if err := x.PutBatch(nil); err != nil {
		t.Fatal(err)
	}
	// All-absent batch: every lookup must short-circuit in the filter.
	var fps []fingerprint.FP
	for i := 0; i < 50; i++ {
		fps = append(fps, fpN(i))
	}
	_, found, skips, err = x.GetBatch(fps)
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range found {
		if ok {
			t.Fatalf("absent fp %d reported found", i)
		}
	}
	if skips != len(fps) {
		t.Fatalf("empty index skipped %d of %d lookups in the bloom", skips, len(fps))
	}
}
