package simclock

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestChargeCPUAndBreakdown(t *testing.T) {
	a := NewAccount()
	a.ChargeCPU(PhaseChunking, 30*time.Millisecond)
	a.ChargeCPU(PhaseFingerprint, 60*time.Millisecond)
	a.ChargeCPU(PhaseIndexQuery, 10*time.Millisecond)
	a.ChargeCPU(PhaseOther, -5) // negative charges are ignored

	if got := a.CPUTime(); got != 100*time.Millisecond {
		t.Fatalf("CPUTime = %v", got)
	}
	br := a.CPUBreakdown()
	if br[PhaseChunking] != 0.3 || br[PhaseFingerprint] != 0.6 || br[PhaseIndexQuery] != 0.1 {
		t.Fatalf("breakdown = %v", br)
	}
	if _, ok := br[PhaseOther]; ok {
		t.Fatal("zero phase included in breakdown")
	}
	if a.CPUPhase(PhaseChunking) != 30*time.Millisecond {
		t.Fatal("CPUPhase wrong")
	}
}

func TestChargeCPUBytes(t *testing.T) {
	a := NewAccount()
	a.ChargeCPUBytes(PhaseChunking, 1000, 2.5) // 2500 ns
	if got := a.CPUTime(); got != 2500*time.Nanosecond {
		t.Fatalf("CPUTime = %v", got)
	}
	a.ChargeCPUBytes(PhaseChunking, -5, 2.5)
	a.ChargeCPUBytes(PhaseChunking, 5, 0)
	if got := a.CPUTime(); got != 2500*time.Nanosecond {
		t.Fatal("degenerate charges changed the account")
	}
}

func TestIOModel(t *testing.T) {
	c := Costs{
		OSSRequestLatency: 10 * time.Millisecond,
		OSSReadBandwidth:  100 << 20,
		OSSWriteBandwidth: 200 << 20,
	}
	a := NewAccount()
	a.ChargeRead(c, 100<<20)  // 10ms + 1s
	a.ChargeWrite(c, 200<<20) // 10ms + 1s
	io := a.IO()
	if io.Reads != 1 || io.Writes != 1 || io.ReadBytes != 100<<20 || io.WriteBytes != 200<<20 {
		t.Fatalf("io counters: %+v", io)
	}
	wantRead := 10*time.Millisecond + time.Second
	if d := io.ReadTime - wantRead; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("ReadTime = %v, want %v", io.ReadTime, wantRead)
	}
}

func TestElapsedModels(t *testing.T) {
	c := Costs{OSSRequestLatency: 0, OSSReadBandwidth: 1 << 30, OSSWriteBandwidth: 1 << 30}
	a := NewAccount()
	a.ChargeCPU(PhaseOther, 100*time.Millisecond)
	a.ChargeRead(c, 6<<30) // 6s of read time
	if got := a.ElapsedSequential(); got < 6*time.Second {
		t.Fatalf("sequential = %v", got)
	}
	// 6 channels: io time 1s > cpu 0.1s → io-bound at 1s.
	if got := a.ElapsedOverlapped(6); got != time.Second {
		t.Fatalf("overlapped(6) = %v", got)
	}
	// 100 channels: io 60ms < cpu → cpu-bound.
	if got := a.ElapsedOverlapped(100); got != 100*time.Millisecond {
		t.Fatalf("overlapped(100) = %v", got)
	}
	// channels < 1 treated as 1.
	if a.ElapsedOverlapped(0) != a.ElapsedOverlapped(1) {
		t.Fatal("channels<1 not clamped")
	}
}

func TestMergeAndReset(t *testing.T) {
	c := DefaultCosts()
	a, b := NewAccount(), NewAccount()
	a.ChargeCPU(PhaseChunking, time.Millisecond)
	b.ChargeCPU(PhaseChunking, 2*time.Millisecond)
	b.ChargeRead(c, 1000)
	a.Merge(b)
	if a.CPUTime() != 3*time.Millisecond || a.IO().Reads != 1 {
		t.Fatalf("after merge: cpu=%v io=%+v", a.CPUTime(), a.IO())
	}
	a.Merge(nil) // no-op
	a.Reset()
	if a.CPUTime() != 0 || a.IO().Reads != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestThroughputMBps(t *testing.T) {
	if got := ThroughputMBps(100<<20, time.Second); got != 100 {
		t.Fatalf("ThroughputMBps = %f", got)
	}
	if ThroughputMBps(1, 0) != 0 {
		t.Fatal("zero elapsed should yield 0")
	}
}

func TestConcurrentCharging(t *testing.T) {
	a := NewAccount()
	c := DefaultCosts()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.ChargeCPU(PhaseChunking, time.Microsecond)
				a.ChargeRead(c, 100)
			}
		}()
	}
	wg.Wait()
	if a.CPUTime() != 8*1000*time.Microsecond {
		t.Fatalf("CPUTime = %v", a.CPUTime())
	}
	if a.IO().Reads != 8000 {
		t.Fatalf("Reads = %d", a.IO().Reads)
	}
}

func TestString(t *testing.T) {
	a := NewAccount()
	a.ChargeCPU(PhaseChunking, time.Millisecond)
	a.ChargeWrite(DefaultCosts(), 123)
	s := a.String()
	if !strings.Contains(s, "chunking") || !strings.Contains(s, "123B") {
		t.Fatalf("String() = %q", s)
	}
}

func TestDefaultCostsCalibration(t *testing.T) {
	c := DefaultCosts()
	// The documented Fig 2 proportions: Rabin chunking dominates its CPU
	// profile, FastCDC is cheaper than SHA-1-equivalent per-chunk work.
	if c.RabinPerByte <= c.FastCDCPerByte {
		t.Fatal("rabin must cost more than fastcdc")
	}
	if c.SHA256PerByte <= c.SHA1PerByte {
		t.Fatal("sha256 must cost more than sha1")
	}
	if c.OSSRequestLatency <= 0 || c.OSSReadBandwidth <= 0 {
		t.Fatal("OSS model must be positive")
	}
}
