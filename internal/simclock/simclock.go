// Package simclock provides a deterministic virtual clock and resource
// accounting used by every performance experiment in the repository.
//
// The paper evaluates SLIMSTORE on a cloud testbed (Alibaba ECS + OSS); this
// reproduction replaces wall-clock measurement with a calibrated cost model so
// experiments are deterministic and laptop-fast while preserving the shapes
// the paper reports: CPU-versus-network bottleneck crossovers (Fig 2),
// chunking cost dominance (Fig 5d), prefetch-thread saturation (Table II),
// and read-amplification-bound restore throughput (Fig 8).
//
// Components charge time to an Account instead of sleeping. Throughput is
// then bytes processed divided by virtual elapsed time.
package simclock

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Phase labels a CPU accounting bucket. The set mirrors the breakdown in
// Fig 2 of the paper: chunking, fingerprinting, index querying, and others.
type Phase string

// CPU phases used across the system.
const (
	PhaseChunking    Phase = "chunking"
	PhaseFingerprint Phase = "fingerprinting"
	PhaseIndexQuery  Phase = "index-query"
	PhaseOther       Phase = "other"
	// PhaseECReconstruct is the GF(2^8) arithmetic of the erasure-coded
	// redundancy tier: parity generation on writes, shard reconstruction
	// on degraded reads and scrub repair.
	PhaseECReconstruct Phase = "ec-reconstruct"
)

// Costs holds the calibrated per-unit virtual costs. All CPU costs are in
// nanoseconds per byte unless stated otherwise. The defaults are calibrated
// so that the relative proportions match the paper's measurements (see
// DefaultCosts); absolute MB/s figures depend on them and are documented in
// EXPERIMENTS.md.
type Costs struct {
	// Chunking (per byte scanned by the sliding window).
	RabinPerByte   float64
	GearPerByte    float64
	FastCDCPerByte float64
	FixedPerByte   float64
	// SkipVerifyPerByte is charged for bytes covered by a successful
	// history-aware skip (one fingerprint comparison replaces byte-by-byte
	// scanning, so only hashing cost applies; chunking cost is zero).
	SkipVerifyPerByte float64

	// Fingerprinting.
	SHA1PerByte   float64
	SHA256PerByte float64

	// Index and cache operations (per operation).
	IndexLookup  time.Duration // in-memory index/cache lookup
	IndexInsert  time.Duration
	RecipeAppend time.Duration // per chunk record appended

	// OtherPerByte covers buffering, copying and segment bookkeeping.
	OtherPerByte float64

	// OSS cost model.
	OSSRequestLatency time.Duration // fixed per-request round trip
	OSSReadBandwidth  float64       // bytes per second, single channel
	OSSWriteBandwidth float64       // bytes per second, single channel

	// RestorePerByte is the CPU cost of assembling restored data
	// (copying chunks from cache into the output stream, verification).
	RestorePerByte float64

	// DiskCachePerByte is charged when the two-layer FV cache spills to or
	// reads from the L-node local disk (much cheaper than OSS).
	DiskCachePerByte float64

	// ECReconstructPerByte is the GF(2^8) cost of the erasure-coding
	// tier, charged per parity byte generated on writes and per shard
	// byte reconstructed on degraded reads and repairs.
	ECReconstructPerByte float64
}

// DefaultCosts returns the calibrated cost model.
//
// Calibration targets, all from the paper:
//   - Fig 2: for version 0 the network is the bottleneck (all data
//     uploads); for later versions CPU is. Rabin chunking ~60 % of dedup
//     CPU, FastCDC ~40 %, fingerprinting and per-record work the rest
//     (per 4 KiB chunk: rabin 18.4 µs, sha 4.4 µs, lookup+append 5 µs).
//   - Fig 5(a): Rabin ≈ 2-2.5× faster with skip chunking at the dataset's
//     0.84 average duplication, FastCDC ≈ 1.5×.
//   - Fig 6/7: chunk merging pays through fewer chunk records (recipe
//     appends, dedup-cache lookups) and fewer segment-recipe fetches —
//     the paper's "overhead of persisting and prefetching recipes is
//     reduced by several times".
//   - Fig 5(d): with skip chunking, CDC falls to ~2 % of CPU time.
//   - Table II: restore ≈ 30-36 MB/s unprefetched (request latency +
//     single-channel 40 MiB/s reads) → ~208 MB/s once ≥6 prefetch threads
//     make the pipeline CPU-bound at RestorePerByte.
func DefaultCosts() Costs {
	return Costs{
		RabinPerByte:      4.5,
		GearPerByte:       2.2,
		FastCDCPerByte:    2.0,
		FixedPerByte:      0.05,
		SkipVerifyPerByte: 0.0,

		SHA1PerByte:   1.1,
		SHA256PerByte: 1.65,

		IndexLookup:  3 * time.Microsecond,
		IndexInsert:  1 * time.Microsecond,
		RecipeAppend: 2 * time.Microsecond,

		OtherPerByte: 0.5,

		OSSRequestLatency: 2 * time.Millisecond,
		OSSReadBandwidth:  40 << 20,  // 40 MiB/s per channel
		OSSWriteBandwidth: 100 << 20, // multipart upload, per job

		RestorePerByte:   4.6,
		DiskCachePerByte: 0.8,

		// Table-driven GF(2^8) XOR-multiply runs near memory bandwidth;
		// calibrated slightly above SHA-1 per byte of shard touched.
		ECReconstructPerByte: 1.5,
	}
}

// Account accumulates virtual CPU and I/O time. It is safe for concurrent
// use; per-phase CPU charges from concurrent workers are summed (callers
// model worker parallelism explicitly, see Elapsed helpers).
type Account struct {
	mu       sync.Mutex
	cpu      map[Phase]time.Duration
	ioReads  int64
	ioWrites int64
	ioRBytes int64
	ioWBytes int64
	ioRTime  time.Duration
	ioWTime  time.Duration
}

// NewAccount returns an empty account.
func NewAccount() *Account {
	return &Account{cpu: make(map[Phase]time.Duration)}
}

// ChargeCPU adds d to the given CPU phase.
func (a *Account) ChargeCPU(p Phase, d time.Duration) {
	if d <= 0 {
		return
	}
	a.mu.Lock()
	a.cpu[p] += d
	a.mu.Unlock()
}

// ChargeCPUBytes charges n bytes at perByte nanoseconds each.
func (a *Account) ChargeCPUBytes(p Phase, n int64, perByte float64) {
	if n <= 0 || perByte <= 0 {
		return
	}
	a.ChargeCPU(p, time.Duration(float64(n)*perByte))
}

// ChargeRead records one OSS read of n bytes under the given cost model.
func (a *Account) ChargeRead(c Costs, n int64) {
	d := c.OSSRequestLatency + time.Duration(float64(n)/c.OSSReadBandwidth*float64(time.Second))
	a.mu.Lock()
	a.ioReads++
	a.ioRBytes += n
	a.ioRTime += d
	a.mu.Unlock()
}

// ChargeWrite records one OSS write of n bytes under the given cost model.
func (a *Account) ChargeWrite(c Costs, n int64) {
	d := c.OSSRequestLatency + time.Duration(float64(n)/c.OSSWriteBandwidth*float64(time.Second))
	a.mu.Lock()
	a.ioWrites++
	a.ioWBytes += n
	a.ioWTime += d
	a.mu.Unlock()
}

// Merge adds every counter from b into a.
func (a *Account) Merge(b *Account) {
	if b == nil {
		return
	}
	b.mu.Lock()
	cpu := make(map[Phase]time.Duration, len(b.cpu))
	for k, v := range b.cpu {
		cpu[k] = v
	}
	reads, writes := b.ioReads, b.ioWrites
	rb, wb := b.ioRBytes, b.ioWBytes
	rt, wt := b.ioRTime, b.ioWTime
	b.mu.Unlock()

	a.mu.Lock()
	defer a.mu.Unlock()
	for k, v := range cpu {
		a.cpu[k] += v
	}
	a.ioReads += reads
	a.ioWrites += writes
	a.ioRBytes += rb
	a.ioWBytes += wb
	a.ioRTime += rt
	a.ioWTime += wt
}

// Reset zeroes every counter.
func (a *Account) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cpu = make(map[Phase]time.Duration)
	a.ioReads, a.ioWrites = 0, 0
	a.ioRBytes, a.ioWBytes = 0, 0
	a.ioRTime, a.ioWTime = 0, 0
}

// CPUTime returns total CPU time across phases.
func (a *Account) CPUTime() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t time.Duration
	for _, v := range a.cpu {
		t += v
	}
	return t
}

// CPUPhase returns the CPU time charged to one phase.
func (a *Account) CPUPhase(p Phase) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cpu[p]
}

// CPUBreakdown returns per-phase CPU fractions (0..1). Phases with zero time
// are omitted.
func (a *Account) CPUBreakdown() map[Phase]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total time.Duration
	for _, v := range a.cpu {
		total += v
	}
	out := make(map[Phase]float64, len(a.cpu))
	if total == 0 {
		return out
	}
	for k, v := range a.cpu {
		if v > 0 {
			out[k] = float64(v) / float64(total)
		}
	}
	return out
}

// IOStats summarises I/O counters.
type IOStats struct {
	Reads, Writes         int64
	ReadBytes, WriteBytes int64
	ReadTime, WriteTime   time.Duration
}

// IO returns a snapshot of the I/O counters.
func (a *Account) IO() IOStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return IOStats{
		Reads: a.ioReads, Writes: a.ioWrites,
		ReadBytes: a.ioRBytes, WriteBytes: a.ioWBytes,
		ReadTime: a.ioRTime, WriteTime: a.ioWTime,
	}
}

// ElapsedSequential models a fully serial pipeline: every I/O blocks the CPU.
func (a *Account) ElapsedSequential() time.Duration {
	io := a.IO()
	return a.CPUTime() + io.ReadTime + io.WriteTime
}

// ElapsedOverlapped models a pipeline where I/O is performed by `channels`
// parallel background workers overlapping with computation (LAW prefetching,
// multi-channel OSS upload). Elapsed time is the maximum of the CPU timeline
// and the per-channel I/O timeline. channels < 1 is treated as 1.
func (a *Account) ElapsedOverlapped(channels int) time.Duration {
	if channels < 1 {
		channels = 1
	}
	io := a.IO()
	ioTime := time.Duration(float64(io.ReadTime+io.WriteTime) / float64(channels))
	cpu := a.CPUTime()
	if cpu > ioTime {
		return cpu
	}
	return ioTime
}

// ThroughputMBps converts bytes and a virtual duration into MB/s (1 MB =
// 2^20 bytes). Returns 0 when elapsed is zero.
func ThroughputMBps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / elapsed.Seconds()
}

// String renders the account compactly for logs and experiment output.
func (a *Account) String() string {
	a.mu.Lock()
	phases := make([]Phase, 0, len(a.cpu))
	for k := range a.cpu {
		phases = append(phases, k)
	}
	a.mu.Unlock()
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	s := "cpu{"
	for i, p := range phases {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%v", p, a.CPUPhase(p))
	}
	io := a.IO()
	s += fmt.Sprintf("} io{r=%d/%dB w=%d/%dB rt=%v wt=%v}",
		io.Reads, io.ReadBytes, io.Writes, io.WriteBytes, io.ReadTime, io.WriteTime)
	return s
}
