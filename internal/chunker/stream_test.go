package chunker

import (
	"math/rand"
	"testing"

	"slimstore/internal/simclock"
)

var allAlgos = []string{"rabin", "gear", "fastcdc", "buzhash", "fixed"}

// TestStreamReset: a reset stream must produce exactly the cuts a fresh
// NewStream over the same buffer would, for every cutter — the property
// the ingest fast path relies on to recycle one Stream per version.
func TestStreamReset(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	bufA := make([]byte, 1<<20)
	bufB := make([]byte, 700<<10)
	r.Read(bufA)
	r.Read(bufB)

	for _, algo := range allAlgos {
		c, err := New(algo, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		cuts := func(s *Stream) []Chunk {
			var out []Chunk
			for {
				ch, ok := s.Next()
				if !ok {
					return out
				}
				out = append(out, ch)
			}
		}
		s := NewStream(bufA, c, nil, simclock.Costs{})
		first := cuts(s)

		// Reset onto a different buffer, then back: both must equal fresh runs.
		s.Reset(bufB)
		gotB := cuts(s)
		s.Reset(bufA)
		gotA := cuts(s)

		freshB := SplitAll(bufB, c)
		if len(gotB) != len(freshB) {
			t.Fatalf("%s: reset onto B: %d chunks, fresh %d", algo, len(gotB), len(freshB))
		}
		for i := range gotB {
			if gotB[i].Offset != freshB[i].Offset || gotB[i].Size() != freshB[i].Size() {
				t.Fatalf("%s: reset cut %d = (%d,%d), fresh = (%d,%d)",
					algo, i, gotB[i].Offset, gotB[i].Size(), freshB[i].Offset, freshB[i].Size())
			}
		}
		if len(gotA) != len(first) {
			t.Fatalf("%s: reset back onto A: %d chunks, first pass %d", algo, len(gotA), len(first))
		}
		for i := range gotA {
			if gotA[i].Offset != first[i].Offset || gotA[i].Size() != first[i].Size() {
				t.Fatalf("%s: reset-back cut %d diverges", algo, i)
			}
		}
		if s.BytesScanned() != int64(len(bufA)) || s.BytesSkipped() != 0 {
			t.Errorf("%s: counters not restarted: scanned=%d skipped=%d",
				algo, s.BytesScanned(), s.BytesSkipped())
		}
	}
}

// TestStreamResetMidBuffer: resetting a partially-consumed stream restarts
// cleanly.
func TestStreamResetMidBuffer(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	buf := make([]byte, 256<<10)
	r.Read(buf)
	c, err := New("fastcdc", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(buf, c, nil, simclock.Costs{})
	for i := 0; i < 3; i++ { // consume a few chunks
		s.Next()
	}
	s.Reset(buf)
	want := SplitAll(buf, c)
	for i := range want {
		ch, ok := s.Next()
		if !ok || ch.Offset != want[i].Offset || ch.Size() != want[i].Size() {
			t.Fatalf("cut %d diverges after mid-buffer reset", i)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream not exhausted after reset replay")
	}
}

// TestCutAllocs: every cutter's Cut must be allocation-free — it runs
// once per chunk on the ingest hot path.
func TestCutAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	buf := make([]byte, 256<<10)
	r.Read(buf)
	for _, algo := range allAlgos {
		c, err := New(algo, DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		pos := 0
		allocs := testing.AllocsPerRun(200, func() {
			if pos >= len(buf) {
				pos = 0
			}
			pos += c.Cut(buf[pos:])
		})
		if allocs != 0 {
			t.Errorf("%s: Cut allocates %.1f/op, want 0", algo, allocs)
		}
	}
}

// TestStreamNextAllocs: the pooled hand-off budget assumes Stream.Next
// itself is allocation-free.
func TestStreamNextAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	buf := make([]byte, 1<<20)
	r.Read(buf)
	c, err := New("fastcdc", DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	acct := simclock.NewAccount()
	s := NewStream(buf, c, acct, simclock.DefaultCosts())
	allocs := testing.AllocsPerRun(200, func() {
		if s.Done() {
			s.Reset(buf)
		}
		s.Next()
	})
	if allocs != 0 {
		t.Errorf("Stream.Next allocates %.1f/op, want 0", allocs)
	}
}
