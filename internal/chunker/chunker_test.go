package chunker

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"slimstore/internal/simclock"
)

func randBytes(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func allCutters(t *testing.T, p Params) []Cutter {
	t.Helper()
	names := []string{"rabin", "gear", "fastcdc", "buzhash", "fixed"}
	out := make([]Cutter, 0, len(names))
	for _, n := range names {
		c, err := New(n, p)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		out = append(out, c)
	}
	return out
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("bogus", DefaultParams()); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{Min: 1024, Avg: 4096, Max: 16384}, true},
		{Params{Min: 0, Avg: 4096, Max: 16384}, false},
		{Params{Min: 8192, Avg: 4096, Max: 16384}, false},
		{Params{Min: 1024, Avg: 4095, Max: 16384}, false},
		{Params{Min: 1024, Avg: 4096, Max: 2048}, false},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

func TestCoverageAndBounds(t *testing.T) {
	data := randBytes(1, 1<<20)
	p := DefaultParams()
	for _, c := range allCutters(t, p) {
		chunks := SplitAll(data, c)
		var total int
		for i, ch := range chunks {
			total += ch.Size()
			last := i == len(chunks)-1
			if !last && ch.Size() < p.Min {
				t.Errorf("%s: chunk %d size %d < min %d", c.Name(), i, ch.Size(), p.Min)
			}
			if ch.Size() > p.Max {
				t.Errorf("%s: chunk %d size %d > max %d", c.Name(), i, ch.Size(), p.Max)
			}
		}
		if total != len(data) {
			t.Errorf("%s: chunks cover %d bytes, want %d", c.Name(), total, len(data))
		}
		// Reassembly must reproduce the input exactly.
		var buf bytes.Buffer
		for _, ch := range chunks {
			buf.Write(ch.Data)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Errorf("%s: reassembled data differs from input", c.Name())
		}
	}
}

func TestAverageChunkSize(t *testing.T) {
	data := randBytes(2, 8<<20)
	p := DefaultParams()
	for _, c := range allCutters(t, p) {
		if c.Name() == "fixed" {
			continue
		}
		chunks := SplitAll(data, c)
		avg := float64(len(data)) / float64(len(chunks))
		// CDC averages land within a factor ~2 of the target on random data.
		if avg < float64(p.Avg)/2.5 || avg > float64(p.Avg)*2.5 {
			t.Errorf("%s: avg chunk size %.0f, want around %d", c.Name(), avg, p.Avg)
		}
	}
}

// TestContentDefined checks the key CDC property: inserting bytes near the
// start shifts offsets but the cut points resynchronise, so most chunks are
// identical between the two versions.
func TestContentDefined(t *testing.T) {
	data := randBytes(3, 4<<20)
	ins := randBytes(4, 137)
	mutated := append(append(append([]byte{}, data[:1000]...), ins...), data[1000:]...)

	for _, c := range allCutters(t, DefaultParams()) {
		if c.Name() == "fixed" {
			continue // fixed-size chunking is expected to fail this
		}
		a := SplitAll(data, c)
		b := SplitAll(mutated, c)
		setA := make(map[string]struct{}, len(a))
		for _, ch := range a {
			setA[string(ch.Data)] = struct{}{}
		}
		same := 0
		for _, ch := range b {
			if _, ok := setA[string(ch.Data)]; ok {
				same++
			}
		}
		frac := float64(same) / float64(len(b))
		if frac < 0.95 {
			t.Errorf("%s: only %.2f%% of chunks survive a 137-byte insertion", c.Name(), frac*100)
		}
	}
}

// TestFixedBoundaryShift documents why fixed-size chunking has a low dedup
// ratio: a small insertion destroys all downstream chunk identity.
func TestFixedBoundaryShift(t *testing.T) {
	data := randBytes(5, 1<<20)
	mutated := append([]byte{0xAB}, data...)
	c := NewFixed(DefaultParams())
	a := SplitAll(data, c)
	b := SplitAll(mutated, c)
	setA := make(map[string]struct{}, len(a))
	for _, ch := range a {
		setA[string(ch.Data)] = struct{}{}
	}
	same := 0
	for _, ch := range b {
		if _, ok := setA[string(ch.Data)]; ok {
			same++
		}
	}
	if same > len(b)/10 {
		t.Errorf("fixed chunking unexpectedly resistant to boundary shift: %d/%d chunks survived", same, len(b))
	}
}

// TestDeterminism: cutting is a pure function of content.
func TestDeterminism(t *testing.T) {
	data := randBytes(6, 2<<20)
	for _, c := range allCutters(t, DefaultParams()) {
		a := SplitAll(data, c)
		b := SplitAll(data, c)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic chunk count %d vs %d", c.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i].Offset != b[i].Offset || a[i].Size() != b[i].Size() {
				t.Fatalf("%s: chunk %d differs between runs", c.Name(), i)
			}
		}
	}
}

// TestCutLocality: a cut decision depends only on a bounded suffix of the
// data before the cut point, which is what makes skip chunking sound — if
// the bytes of a skipped chunk are identical to the historical chunk, the
// next CDC cut from the skip target matches the historical cut.
func TestCutLocality(t *testing.T) {
	suffix := randBytes(7, 256<<10)
	prefixA := randBytes(8, 64<<10)
	prefixB := randBytes(9, 32<<10)
	for _, c := range allCutters(t, DefaultParams()) {
		if c.Name() == "fixed" {
			continue
		}
		a := c.Cut(suffix)
		// Cut from the same position within two different files.
		dataA := append(append([]byte{}, prefixA...), suffix...)
		dataB := append(append([]byte{}, prefixB...), suffix...)
		cutA := c.Cut(dataA[len(prefixA):])
		cutB := c.Cut(dataB[len(prefixB):])
		if cutA != a || cutB != a {
			t.Errorf("%s: cut depends on data before the start: %d/%d vs %d", c.Name(), cutA, cutB, a)
		}
	}
}

func TestStreamSkipCut(t *testing.T) {
	data := randBytes(10, 1<<20)
	acct := simclock.NewAccount()
	s := NewStream(data, NewFastCDC(DefaultParams()), acct, simclock.DefaultCosts())

	ch, ok := s.SkipCut(5000)
	if !ok || ch.Size() != 5000 || ch.Offset != 0 {
		t.Fatalf("SkipCut(5000) = %+v, %v", ch, ok)
	}
	if s.Pos() != 5000 {
		t.Fatalf("Pos() = %d, want 5000", s.Pos())
	}
	// Failed skip: rewind restores the position.
	s.Rewind(ch.Offset)
	if s.Pos() != 0 || s.BytesSkipped() != 0 {
		t.Fatalf("Rewind failed: pos=%d skipped=%d", s.Pos(), s.BytesSkipped())
	}
	// Skip past the end fails without consuming.
	if _, ok := s.SkipCut(len(data) + 1); ok {
		t.Fatal("SkipCut past EOF should fail")
	}
	// Interleave CDC cuts and skips; total coverage must be exact.
	var total int
	for !s.Done() {
		if total%3 == 0 && s.Remaining() > 4096 {
			c, ok := s.SkipCut(4096)
			if !ok {
				t.Fatal("SkipCut failed mid-stream")
			}
			total += c.Size()
			continue
		}
		c, ok := s.Next()
		if !ok {
			break
		}
		total += c.Size()
	}
	if total != len(data) {
		t.Fatalf("consumed %d bytes, want %d", total, len(data))
	}
	if got := s.BytesScanned() + s.BytesSkipped(); got != int64(len(data)) {
		t.Fatalf("scanned+skipped = %d, want %d", got, len(data))
	}
}

func TestStreamAccounting(t *testing.T) {
	data := randBytes(11, 1<<20)
	costs := simclock.DefaultCosts()
	acct := simclock.NewAccount()
	s := NewStream(data, NewRabin(DefaultParams()), acct, costs)
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	want := float64(len(data)) * costs.RabinPerByte
	got := float64(acct.CPUPhase(simclock.PhaseChunking))
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("chunking CPU charged %v, want ~%v ns", got, want)
	}
}

// Property: for any data, chunks from any cutter tile the input exactly.
func TestQuickCoverage(t *testing.T) {
	p := Params{Min: 64, Avg: 256, Max: 1024}
	cutters := allCutters(t, p)
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		for _, c := range cutters {
			var off int64
			for _, ch := range SplitAll(data, c) {
				if ch.Offset != off || ch.Size() == 0 {
					return false
				}
				off += int64(ch.Size())
			}
			if off != int64(len(data)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParamsForAvg(t *testing.T) {
	p := ParamsForAvg(1 << 20)
	if p.Min != 1<<18 || p.Avg != 1<<20 || p.Max != 1<<22 {
		t.Fatalf("ParamsForAvg(1MiB) = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p := ParamsForAvg(1); p.Avg < 64 {
		t.Fatalf("tiny avg not clamped: %+v", p)
	}
}

func BenchmarkCutters(b *testing.B) {
	data := randBytes(12, 8<<20)
	for _, name := range []string{"rabin", "gear", "fastcdc", "buzhash", "fixed"} {
		c, err := New(name, DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				SplitAll(data, c)
			}
		})
	}
}
