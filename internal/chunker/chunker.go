// Package chunker implements the content-defined chunking (CDC) algorithms
// used by SLIMSTORE and its baselines: Rabin-based CDC, Gear, FastCDC, and
// fixed-size chunking (paper §II, §IV-B).
//
// Chunkers are exposed as pure cut-point functions (Cutter) so that the
// deduplication pipeline can drive them incrementally and interleave
// history-aware skip chunking (§IV-B) and SuperChunking (§IV-C, Algorithm 1)
// with regular CDC: a skip attempt bypasses the byte-by-byte sliding window
// entirely, and on failure the pipeline resumes CDC from the saved position.
package chunker

import (
	"fmt"

	"slimstore/internal/simclock"
)

// Params bound chunk sizes. Avg must be a power of two for the mask-based
// cutters; Normalize applies FastCDC-style two-mask normalization.
type Params struct {
	Min int
	Avg int
	Max int
}

// DefaultParams returns the paper's default 4 KiB average chunking with the
// usual 1/4 min and 4x max bounds.
func DefaultParams() Params { return ParamsForAvg(4 << 10) }

// ParamsForAvg derives Min=Avg/4 and Max=Avg*4 bounds for a target average.
func ParamsForAvg(avg int) Params {
	if avg < 64 {
		avg = 64
	}
	return Params{Min: avg / 4, Avg: avg, Max: avg * 4}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Min <= 0 || p.Avg <= 0 || p.Max <= 0 {
		return fmt.Errorf("chunker: params must be positive: %+v", p)
	}
	if p.Min > p.Avg || p.Avg > p.Max {
		return fmt.Errorf("chunker: want min <= avg <= max: %+v", p)
	}
	if p.Avg&(p.Avg-1) != 0 {
		return fmt.Errorf("chunker: avg must be a power of two: %d", p.Avg)
	}
	return nil
}

// maskForAvg returns a bit mask with log2(avg) bits set, so a random hash
// matches it with probability 1/avg.
func maskForAvg(avg int) uint64 {
	bits := 0
	for v := avg; v > 1; v >>= 1 {
		bits++
	}
	return (1 << bits) - 1
}

// Cutter finds the next cut point in a byte stream.
type Cutter interface {
	// Name identifies the algorithm ("rabin", "gear", "fastcdc", "fixed").
	Name() string
	// Cut returns the length of the next chunk starting at data[0]. It is
	// always in (0, len(data)] and respects the cutter's size bounds except
	// when len(data) is smaller than the minimum (the tail chunk).
	Cut(data []byte) int
	// Params returns the size bounds in effect.
	Params() Params
	// PerByteCost returns the virtual CPU cost charged per byte scanned by
	// the sliding window under the given cost model.
	PerByteCost(c simclock.Costs) float64
}

// New constructs a cutter by algorithm name. Supported names: "rabin",
// "gear", "fastcdc", "buzhash", "fixed".
func New(name string, p Params) (Cutter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch name {
	case "rabin":
		return NewRabin(p), nil
	case "gear":
		return NewGear(p), nil
	case "fastcdc":
		return NewFastCDC(p), nil
	case "buzhash":
		return NewBuzhash(p), nil
	case "fixed":
		return NewFixed(p), nil
	default:
		return nil, fmt.Errorf("chunker: unknown algorithm %q", name)
	}
}

// ---------------------------------------------------------------------------
// Fixed-size chunking.

// Fixed cuts chunks of exactly Avg bytes. It is the cheapest cutter but
// suffers from the boundary-shift problem (paper §II).
type Fixed struct{ p Params }

// NewFixed returns a fixed-size cutter.
func NewFixed(p Params) *Fixed { return &Fixed{p: p} }

// Name implements Cutter.
func (f *Fixed) Name() string { return "fixed" }

// Params implements Cutter.
func (f *Fixed) Params() Params { return f.p }

// PerByteCost implements Cutter.
func (f *Fixed) PerByteCost(c simclock.Costs) float64 { return c.FixedPerByte }

// Cut implements Cutter.
func (f *Fixed) Cut(data []byte) int {
	if len(data) <= f.p.Avg {
		return len(data)
	}
	return f.p.Avg
}

// ---------------------------------------------------------------------------
// Gear table shared by Gear and FastCDC.

// gearTable is a deterministic table of 256 pseudo-random 64-bit values
// (Gear hash, Xia et al. 2014). Generated once with splitmix64 so the whole
// system is reproducible across runs and platforms.
var gearTable = buildGearTable(0x9E3779B97F4A7C15)

func buildGearTable(seed uint64) [256]uint64 {
	var t [256]uint64
	s := seed
	for i := range t {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}

// ---------------------------------------------------------------------------
// Gear CDC.

// Gear is the plain Gear-hash CDC: h = (h << 1) + G[b]; cut when the top
// bits of h match the mask. One shift+add+lookup per byte makes it much
// cheaper than Rabin while achieving a similar deduplication ratio.
type Gear struct {
	p    Params
	mask uint64
}

// NewGear returns a Gear cutter for the given bounds.
func NewGear(p Params) *Gear {
	// Use the high bits of the gear hash: they mix input from the most
	// recent ~64 bytes, giving content-defined boundaries.
	return &Gear{p: p, mask: maskForAvg(p.Avg) << 28}
}

// Name implements Cutter.
func (g *Gear) Name() string { return "gear" }

// Params implements Cutter.
func (g *Gear) Params() Params { return g.p }

// PerByteCost implements Cutter.
func (g *Gear) PerByteCost(c simclock.Costs) float64 { return c.GearPerByte }

// Cut implements Cutter.
func (g *Gear) Cut(data []byte) int {
	n := len(data)
	if n <= g.p.Min {
		return n
	}
	max := g.p.Max
	if n < max {
		max = n
	}
	var h uint64
	for i := g.p.Min; i < max; i++ {
		h = (h << 1) + gearTable[data[i]]
		if h&g.mask == 0 {
			return i + 1
		}
	}
	return max
}

// ---------------------------------------------------------------------------
// FastCDC.

// FastCDC implements the normalized-chunking variant of Gear (Xia et al.,
// ATC'16): a stricter mask before the target average size and a looser mask
// after it, which concentrates the chunk-size distribution around the
// average and lets the loop skip the sub-minimum region entirely.
type FastCDC struct {
	p     Params
	maskS uint64 // stricter: avg*4 expected distance
	maskL uint64 // looser: avg/4 expected distance
}

// NewFastCDC returns a FastCDC cutter for the given bounds.
func NewFastCDC(p Params) *FastCDC {
	return &FastCDC{
		p:     p,
		maskS: maskForAvg(p.Avg*4) << 20,
		maskL: maskForAvg(p.Avg/4) << 20,
	}
}

// Name implements Cutter.
func (f *FastCDC) Name() string { return "fastcdc" }

// Params implements Cutter.
func (f *FastCDC) Params() Params { return f.p }

// PerByteCost implements Cutter.
func (f *FastCDC) PerByteCost(c simclock.Costs) float64 { return c.FastCDCPerByte }

// Cut implements Cutter.
func (f *FastCDC) Cut(data []byte) int {
	n := len(data)
	if n <= f.p.Min {
		return n
	}
	max := f.p.Max
	if n < max {
		max = n
	}
	normal := f.p.Avg
	if normal > max {
		normal = max
	}
	var h uint64
	i := f.p.Min
	for ; i < normal; i++ {
		h = (h << 1) + gearTable[data[i]]
		if h&f.maskS == 0 {
			return i + 1
		}
	}
	for ; i < max; i++ {
		h = (h << 1) + gearTable[data[i]]
		if h&f.maskL == 0 {
			return i + 1
		}
	}
	return max
}

// ---------------------------------------------------------------------------
// Rabin CDC.

// rabinPoly is an irreducible polynomial of degree 53 over GF(2), the same
// default used by LBFS-lineage chunkers. The Rabin fingerprint of a window
// is the window's polynomial residue modulo this polynomial.
const rabinPoly uint64 = 0x3DA3358B4DC173

// rabinWindowSize is the sliding-window width in bytes.
const rabinWindowSize = 64

// rabinTables precomputes the byte-at-a-time update tables.
type rabinTables struct {
	out   [256]uint64 // effect of the byte leaving the window
	mod   [256]uint64 // reduction of the byte shifted past the polynomial degree
	deg   int
	shift uint
}

var rabinTab = buildRabinTables(rabinPoly)

func polyDeg(p uint64) int {
	d := -1
	for i := 0; i < 64; i++ {
		if p&(1<<uint(i)) != 0 {
			d = i
		}
	}
	return d
}

// polyMod reduces value modulo the polynomial p over GF(2).
func polyMod(value, p uint64, degP int) uint64 {
	d := polyDeg(value)
	for d >= degP {
		value ^= p << uint(d-degP)
		d = polyDeg(value)
	}
	return value
}

// polyMulMod multiplies a and b over GF(2) modulo p.
func polyMulMod(a, b, p uint64, degP int) uint64 {
	var res uint64
	a = polyMod(a, p, degP)
	for i := 0; b != 0; i++ {
		if b&1 != 0 {
			// res ^= a * x^i mod p
			t := a
			for j := 0; j < i; j++ {
				t <<= 1
				if polyDeg(t) >= degP {
					t ^= p
				}
			}
			res ^= t
		}
		b >>= 1
	}
	return polyMod(res, p, degP)
}

func buildRabinTables(p uint64) rabinTables {
	var t rabinTables
	t.deg = polyDeg(p)
	t.shift = uint(t.deg - 8)
	// mod table: for the top byte b of the fingerprint, the reduction of
	// b * x^deg modulo p.
	for b := 0; b < 256; b++ {
		t.mod[b] = polyMod(uint64(b)<<uint(t.deg), p, t.deg) | uint64(b)<<uint(t.deg)
	}
	// out table: contribution of the byte about to leave the window. After a
	// byte is appended, windowSize-1 further bytes are appended before it is
	// slid out, so its contribution is b * x^(8*(windowSize-1)) mod p.
	xw := uint64(1)
	for i := 0; i < 8*(rabinWindowSize-1); i++ {
		xw <<= 1
		if polyDeg(xw) >= t.deg {
			xw ^= p
		}
	}
	for b := 0; b < 256; b++ {
		t.out[b] = polyMulMod(uint64(b), xw, p, t.deg)
	}
	return t
}

// Rabin is the classic Rabin-fingerprint CDC. It is the most expensive
// cutter (two table lookups, shifts and xors per byte plus window ring
// maintenance) and serves as the paper's costly baseline in Fig 2/Fig 5.
type Rabin struct {
	p    Params
	mask uint64
}

// NewRabin returns a Rabin cutter for the given bounds.
func NewRabin(p Params) *Rabin {
	return &Rabin{p: p, mask: maskForAvg(p.Avg)}
}

// Name implements Cutter.
func (r *Rabin) Name() string { return "rabin" }

// Params implements Cutter.
func (r *Rabin) Params() Params { return r.p }

// PerByteCost implements Cutter.
func (r *Rabin) PerByteCost(c simclock.Costs) float64 { return c.RabinPerByte }

// Cut implements Cutter.
func (r *Rabin) Cut(data []byte) int {
	n := len(data)
	if n <= r.p.Min {
		return n
	}
	max := r.p.Max
	if n < max {
		max = n
	}
	var window [rabinWindowSize]byte
	var pos int
	var digest uint64

	append1 := func(b byte) {
		top := byte(digest >> rabinTab.shift)
		digest = ((digest << 8) | uint64(b)) ^ rabinTab.mod[top]
	}
	slide := func(b byte) {
		old := window[pos]
		window[pos] = b
		pos = (pos + 1) % rabinWindowSize
		digest ^= rabinTab.out[old]
		append1(b)
	}

	// Warm the window over the last windowSize bytes before the minimum cut
	// point, then scan byte-by-byte.
	start := r.p.Min - rabinWindowSize
	if start < 0 {
		start = 0
	}
	for i := start; i < r.p.Min; i++ {
		slide(data[i])
	}
	for i := r.p.Min; i < max; i++ {
		slide(data[i])
		if digest&r.mask == 0 {
			return i + 1
		}
	}
	return max
}

// ---------------------------------------------------------------------------
// Buzhash CDC.

// Buzhash is the cyclic-polynomial rolling hash used by the borg/attic
// family of deduplicating archivers: rolling costs one rotate and two
// table lookups per byte — cheaper than Rabin, with true O(1) windowed
// rolling unlike Gear's decaying sum.
type Buzhash struct {
	p    Params
	mask uint64
}

// buzWindowSize is the Buzhash sliding-window width in bytes.
const buzWindowSize = 64

// buzTable reuses the deterministic gear table (256 pseudo-random words).
var buzTable = buildGearTable(0xC2B2AE3D27D4EB4F)

// NewBuzhash returns a Buzhash cutter for the given bounds.
func NewBuzhash(p Params) *Buzhash {
	return &Buzhash{p: p, mask: maskForAvg(p.Avg)}
}

// Name implements Cutter.
func (b *Buzhash) Name() string { return "buzhash" }

// Params implements Cutter.
func (b *Buzhash) Params() Params { return b.p }

// PerByteCost implements Cutter. Buzhash costs about the same per byte as
// Gear (rotate + xor + two lookups vs shift + add + one lookup).
func (b *Buzhash) PerByteCost(c simclock.Costs) float64 { return c.GearPerByte }

func rotl(v uint64, n uint) uint64 { return v<<n | v>>(64-n) }

// Cut implements Cutter.
func (b *Buzhash) Cut(data []byte) int {
	n := len(data)
	if n <= b.p.Min {
		return n
	}
	max := b.p.Max
	if n < max {
		max = n
	}
	// Warm the window over the buzWindowSize bytes before the minimum cut
	// point (cut decisions depend only on the trailing window, which is
	// what makes skip chunking sound for this cutter too).
	start := b.p.Min - buzWindowSize
	if start < 0 {
		start = 0
	}
	var h uint64
	for i := start; i < b.p.Min; i++ {
		h = rotl(h, 1) ^ buzTable[data[i]]
	}
	width := b.p.Min - start
	for i := b.p.Min; i < max; i++ {
		// Slide: remove data[i-width], add data[i].
		h = rotl(h, 1) ^ rotl(buzTable[data[i-width]], uint(width%64)) ^ buzTable[data[i]]
		if h&b.mask == 0 {
			return i + 1
		}
	}
	return max
}
