package chunker

import (
	"bytes"
	"testing"

	"slimstore/internal/simclock"
)

// fuzzCutterNames selects the algorithm under fuzz; every registered
// cutter shares the partition invariants.
var fuzzCutterNames = []string{"fixed", "gear", "fastcdc", "rabin", "buzhash"}

func fuzzCutter(t *testing.T, cutterSel, avgSel uint8) Cutter {
	name := fuzzCutterNames[int(cutterSel)%len(fuzzCutterNames)]
	avg := 64 << (int(avgSel) % 8) // 64 B .. 8 KiB target average
	c, err := New(name, ParamsForAvg(avg))
	if err != nil {
		t.Fatalf("New(%q, avg %d): %v", name, avg, err)
	}
	return c
}

// FuzzPartition checks the CDC partition invariants for arbitrary inputs:
// full coverage in order, no empty chunks, min/max bounds (the final chunk
// may undershoot min), and determinism across repeated runs.
func FuzzPartition(f *testing.F) {
	f.Add([]byte("hello, slimstore"), uint8(0), uint8(0))
	f.Add(bytes.Repeat([]byte{0}, 4096), uint8(2), uint8(3))
	f.Add([]byte{}, uint8(4), uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, cutterSel, avgSel uint8) {
		c := fuzzCutter(t, cutterSel, avgSel)
		p := c.Params()
		chunks := SplitAll(data, c)

		var pos int64
		for i, ch := range chunks {
			if ch.Offset != pos {
				t.Fatalf("%s: chunk %d at offset %d, want %d", c.Name(), i, ch.Offset, pos)
			}
			if ch.Size() == 0 {
				t.Fatalf("%s: chunk %d empty", c.Name(), i)
			}
			if ch.Size() > p.Max {
				t.Fatalf("%s: chunk %d size %d > max %d", c.Name(), i, ch.Size(), p.Max)
			}
			if i < len(chunks)-1 && ch.Size() < p.Min {
				t.Fatalf("%s: chunk %d size %d < min %d", c.Name(), i, ch.Size(), p.Min)
			}
			if !bytes.Equal(ch.Data, data[ch.Offset:ch.Offset+int64(ch.Size())]) {
				t.Fatalf("%s: chunk %d data does not match its claimed range", c.Name(), i)
			}
			pos += int64(ch.Size())
		}
		if pos != int64(len(data)) {
			t.Fatalf("%s: chunks cover %d bytes, want %d", c.Name(), pos, len(data))
		}

		again := SplitAll(data, c)
		if len(again) != len(chunks) {
			t.Fatalf("%s: non-deterministic: %d vs %d chunks", c.Name(), len(again), len(chunks))
		}
		for i := range again {
			if again[i].Offset != chunks[i].Offset || again[i].Size() != chunks[i].Size() {
				t.Fatalf("%s: non-deterministic boundary at chunk %d", c.Name(), i)
			}
		}
	})
}

// FuzzStreamSkip drives Stream through arbitrary interleavings of Next,
// SkipCut, and Rewind — the exact boundary machinery history-aware skip
// chunking leans on — checking the position model and that every emitted
// chunk matches its claimed byte range.
func FuzzStreamSkip(f *testing.F) {
	f.Add([]byte("abcdefghijklmnopqrstuvwxyz0123456789"), []byte{0, 1, 2, 0, 1}, uint8(1), uint8(2))
	f.Add(bytes.Repeat([]byte{7}, 2048), []byte{1, 1, 2, 2, 0}, uint8(3), uint8(4))
	f.Fuzz(func(t *testing.T, data, ops []byte, cutterSel, avgSel uint8) {
		c := fuzzCutter(t, cutterSel, avgSel)
		s := NewStream(data, c, nil, simclock.Costs{})
		pos := 0
		check := func(ch Chunk, via string) {
			if ch.Offset != int64(pos) {
				t.Fatalf("%s: chunk at offset %d, model position %d", via, ch.Offset, pos)
			}
			if !bytes.Equal(ch.Data, data[ch.Offset:ch.Offset+int64(ch.Size())]) {
				t.Fatalf("%s: chunk data does not match its claimed range", via)
			}
			pos += ch.Size()
		}
		for _, op := range ops {
			switch op % 3 {
			case 0: // CDC cut
				ch, ok := s.Next()
				if !ok {
					if pos != len(data) {
						t.Fatalf("Next exhausted at position %d of %d", pos, len(data))
					}
					continue
				}
				if ch.Size() == 0 {
					t.Fatal("Next returned an empty chunk")
				}
				check(ch, "Next")
			case 1: // positioned skip cut
				n := int(op)%257 + 1
				ch, ok := s.SkipCut(n)
				if ok != (pos+n <= len(data)) {
					t.Fatalf("SkipCut(%d) at %d/%d: ok=%v", n, pos, len(data), ok)
				}
				if !ok {
					continue
				}
				if ch.Size() != n {
					t.Fatalf("SkipCut(%d) returned %d bytes", n, ch.Size())
				}
				check(ch, "SkipCut")
			case 2: // failed-skip rewind
				back := int(op) % (pos + 1)
				s.Rewind(int64(pos - back))
				pos -= back
			}
			if s.Pos() != pos {
				t.Fatalf("stream position %d, model %d", s.Pos(), pos)
			}
		}
		// Drain: the stream must finish covering the input exactly.
		for {
			ch, ok := s.Next()
			if !ok {
				break
			}
			check(ch, "drain")
		}
		if pos != len(data) {
			t.Fatalf("drained to %d of %d bytes", pos, len(data))
		}
	})
}
