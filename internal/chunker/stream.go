package chunker

import (
	"slimstore/internal/simclock"
)

// Chunk is a contiguous piece of a file produced by chunking.
type Chunk struct {
	Offset int64  // position of the first byte within the file
	Data   []byte // sub-slice of the file buffer, not a copy
}

// Size returns the chunk length in bytes.
func (c Chunk) Size() int { return len(c.Data) }

// Stream drives a Cutter over an in-memory file and charges virtual CPU
// time for every byte the sliding window scans. It also exposes the exact
// positioned cuts needed by history-aware skip chunking and SuperChunking:
// SkipCut consumes a caller-chosen number of bytes without scanning them.
type Stream struct {
	data   []byte
	pos    int
	cutter Cutter
	acct   *simclock.Account
	costs  simclock.Costs

	scanned int64 // bytes scanned by the CDC sliding window
	skipped int64 // bytes consumed by skip cuts
}

// NewStream returns a stream over data. acct may be nil to disable
// accounting.
func NewStream(data []byte, c Cutter, acct *simclock.Account, costs simclock.Costs) *Stream {
	return &Stream{data: data, cutter: c, acct: acct, costs: costs}
}

// Reset rewinds the stream onto a new buffer, keeping the cutter and
// accounting configuration. Per-version streams reuse one Stream value
// instead of reallocating; a reset stream produces exactly the cuts a
// fresh NewStream over the same buffer would. The scanned/skipped
// counters restart at zero.
func (s *Stream) Reset(data []byte) {
	s.data = data
	s.pos = 0
	s.scanned, s.skipped = 0, 0
}

// Pos returns the current offset.
func (s *Stream) Pos() int { return s.pos }

// Remaining returns the number of unconsumed bytes.
func (s *Stream) Remaining() int { return len(s.data) - s.pos }

// Done reports whether the whole file has been consumed.
func (s *Stream) Done() bool { return s.pos >= len(s.data) }

// BytesScanned returns how many bytes were scanned byte-by-byte by CDC.
func (s *Stream) BytesScanned() int64 { return s.scanned }

// BytesSkipped returns how many bytes were consumed by skip cuts.
func (s *Stream) BytesSkipped() int64 { return s.skipped }

// Next cuts the next chunk with the CDC algorithm, charging the cutter's
// per-byte cost for the scanned bytes. It returns false when the stream is
// exhausted.
func (s *Stream) Next() (Chunk, bool) {
	if s.Done() {
		return Chunk{}, false
	}
	n := s.cutter.Cut(s.data[s.pos:])
	if n <= 0 { // defensive: a cutter must always make progress
		n = 1
	}
	ch := Chunk{Offset: int64(s.pos), Data: s.data[s.pos : s.pos+n]}
	s.pos += n
	s.scanned += int64(n)
	if s.acct != nil {
		s.acct.ChargeCPUBytes(simclock.PhaseChunking, int64(n), s.cutter.PerByteCost(s.costs))
	}
	return ch, true
}

// SkipCut consumes exactly n bytes as one chunk without running the sliding
// window — the history-aware skip of §IV-B and the superchunk cut of
// Algorithm 1. Only the (near-zero) skip-verification cost is charged; the
// caller separately charges fingerprinting for the duplicate check. If fewer
// than n bytes remain, ok is false and nothing is consumed.
func (s *Stream) SkipCut(n int) (Chunk, bool) {
	if n <= 0 || s.pos+n > len(s.data) {
		return Chunk{}, false
	}
	ch := Chunk{Offset: int64(s.pos), Data: s.data[s.pos : s.pos+n]}
	s.pos += n
	s.skipped += int64(n)
	if s.acct != nil {
		s.acct.ChargeCPUBytes(simclock.PhaseChunking, int64(n), s.costs.SkipVerifyPerByte)
	}
	return ch, true
}

// Rewind moves the position back to off, undoing a failed skip attempt. off
// must not exceed the current position.
func (s *Stream) Rewind(off int64) {
	if int(off) < 0 || int(off) > s.pos {
		return
	}
	s.skipped -= int64(s.pos) - off
	s.pos = int(off)
}

// SplitAll chunks an entire buffer in one call; a convenience for tests,
// baselines, and the workload generator.
func SplitAll(data []byte, c Cutter) []Chunk {
	s := NewStream(data, c, nil, simclock.Costs{})
	var out []Chunk
	for {
		ch, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, ch)
	}
}
