package workload

import (
	"bytes"
	"testing"
)

func TestDeterminism(t *testing.T) {
	g1 := New(SDB(4, 1<<20))
	g2 := New(SDB(4, 1<<20))
	for i := 0; i < 4; i++ {
		for v := 0; v < 3; v++ {
			if !bytes.Equal(g1.Version(i, v), g2.Version(i, v)) {
				t.Fatalf("file %d v%d differs across generators", i, v)
			}
		}
	}
}

func TestVersionSeqMatchesVersion(t *testing.T) {
	g := New(SDB(2, 1<<20))
	var collected [][]byte
	err := g.VersionSeq(1, func(v int, data []byte) error {
		if v >= 3 {
			return errStop
		}
		collected = append(collected, append([]byte{}, data...))
		return nil
	})
	if err != errStop {
		t.Fatal(err)
	}
	for v, want := range collected {
		if !bytes.Equal(g.Version(1, v), want) {
			t.Fatalf("VersionSeq and Version disagree at v%d", v)
		}
	}
}

var errStop = &stopErr{}

type stopErr struct{}

func (*stopErr) Error() string { return "stop" }

func TestDupRatioTargets(t *testing.T) {
	g := New(SDB(8, 2<<20))
	// Per-file ratios span the configured band and the mean lands near
	// the paper's 0.84.
	lo, hi := g.FileDupRatio(0), g.FileDupRatio(7)
	if lo != 0.65 || hi != 0.95 {
		t.Fatalf("ratio band = [%f, %f]", lo, hi)
	}
	mean := g.MeanDupRatio()
	if mean < 0.80 || mean > 0.88 {
		t.Fatalf("mean dup ratio %f, want ≈0.84", mean)
	}
	// Measured page-level duplication tracks the target.
	for _, i := range []int{0, 7} {
		target := g.FileDupRatio(i)
		got := g.MeasureDup(i, 1)
		if got < target-0.08 || got > target+0.08 {
			t.Errorf("file %d: measured dup %f, target %f", i, got, target)
		}
	}
}

func TestSelfReference(t *testing.T) {
	g := New(SDB(2, 4<<20))
	base := g.Base(0)
	pages := len(base) / PageSize
	seen := map[string]bool{}
	dups := 0
	for p := 0; p < pages; p++ {
		key := string(base[p*PageSize : (p+1)*PageSize])
		if seen[key] {
			dups++
		}
		seen[key] = true
	}
	frac := float64(dups) / float64(pages)
	if frac < 0.12 || frac > 0.30 {
		t.Fatalf("self-reference fraction %f, want ≈0.20", frac)
	}

	r := New(RData(2, 4<<20))
	rbase := r.Base(0)
	seen = map[string]bool{}
	dups = 0
	for p := 0; p < len(rbase)/PageSize; p++ {
		key := string(rbase[p*PageSize : (p+1)*PageSize])
		if seen[key] {
			dups++
		}
		seen[key] = true
	}
	if frac := float64(dups) / float64(len(rbase)/PageSize); frac > 0.02 {
		t.Fatalf("R-Data self-reference %f, want ≈0", frac)
	}
}

func TestTableIProfiles(t *testing.T) {
	sdb := New(SDB(0, 0)).Stats()
	if sdb.Versions != 25 || sdb.Name != "S-DB" {
		t.Fatalf("S-DB stats: %+v", sdb)
	}
	if sdb.MeanDup < 0.80 || sdb.MeanDup > 0.88 {
		t.Fatalf("S-DB mean dup %f", sdb.MeanDup)
	}
	rd := New(RData(0, 0)).Stats()
	if rd.Versions != 13 || rd.SelfRef > 0.01 {
		t.Fatalf("R-Data stats: %+v", rd)
	}
	if rd.MeanDup < 0.90 || rd.MeanDup > 0.94 {
		t.Fatalf("R-Data mean dup %f", rd.MeanDup)
	}
}

func TestFileIDsStable(t *testing.T) {
	g := New(SDB(3, 1<<20))
	ids := g.FileIDs()
	if len(ids) != 3 || ids[0] != "S-DB/table0000.db" {
		t.Fatalf("FileIDs = %v", ids)
	}
}

func TestSizeDrift(t *testing.T) {
	g := New(SDB(1, 2<<20))
	base := len(g.Base(0))
	last := len(g.Version(0, 10))
	// Inserts and deletes roughly balance; size should stay within 20%.
	if last < base*8/10 || last > base*12/10 {
		t.Fatalf("size drifted from %d to %d over 10 versions", base, last)
	}
}
