// Package workload generates the paper's evaluation datasets (Table I).
//
// S-DB — "a set of database files, each table simulated by insert, update,
// and delete operations": 500 files, 25 versions, per-file inter-version
// duplication ratio between 0.65 and 0.95 (average 0.84), 20%
// self-reference. R-Data — a real enterprise backup (7440 files, 13
// versions, average duplication 0.92, 0.1% self-reference) — is matched by
// its statistical profile.
//
// The paper itself simulates S-DB, so this package re-implements that
// generator. Generation is fully deterministic from the spec's seed, and
// sizes scale down from the paper's terabytes to laptop scale (the
// experiments report ratios and throughputs, which are size-invariant
// above a few hundred megabytes).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// PageSize is the database-page granularity of simulated mutations.
const PageSize = 8 << 10

// Spec describes a synthetic multi-version dataset.
type Spec struct {
	Name  string
	Files int
	// FileBytes is the initial size of each file.
	FileBytes int
	Versions  int
	// DupLow/DupHigh bound the per-file inter-version duplication ratio;
	// files are assigned ratios spanning the range with mean ~DupMean.
	DupLow, DupHigh float64
	// DupSkew shapes the distribution across files (u^DupSkew); < 1 skews
	// the mean toward DupHigh.
	DupSkew float64
	// SelfRef is the fraction of version-0 content that repeats content
	// from earlier in the same file (self-reference chunks, §V-A).
	SelfRef float64
	// HotFraction caps the hot window (the file's tail that absorbs
	// HotWeight of the update runs) as a share of the file; the window is
	// otherwise sized to ~1.5x the hot budget so hot pages churn every
	// version. Database tables concentrate writes in hot pages/extents,
	// which is what leaves cold regions stable across many versions (the
	// substrate of history-aware merging).
	HotFraction float64
	// HotWeight is the fraction of update runs that land in the hot
	// region.
	HotWeight float64
	Seed      int64
}

// SDB returns the S-DB spec (Table I) scaled so each file starts at
// fileBytes and there are `files` tables. files<=0 and fileBytes<=0 pick
// small defaults suitable for tests and benches.
func SDB(files, fileBytes int) Spec {
	if files <= 0 {
		files = 8
	}
	if fileBytes <= 0 {
		fileBytes = 4 << 20
	}
	return Spec{
		Name:        "S-DB",
		Files:       files,
		FileBytes:   fileBytes,
		Versions:    25,
		DupLow:      0.65,
		DupHigh:     0.95,
		DupSkew:     0.6, // mean ≈ 0.84
		SelfRef:     0.20,
		HotFraction: 0.25,
		HotWeight:   0.9,
		Seed:        20210426,
	}
}

// RData returns the R-Data profile (Table I): many smaller files, high
// duplication, negligible self-reference.
func RData(files, fileBytes int) Spec {
	if files <= 0 {
		files = 32
	}
	if fileBytes <= 0 {
		fileBytes = 1 << 20
	}
	return Spec{
		Name:        "R-Data",
		Files:       files,
		FileBytes:   fileBytes,
		Versions:    13,
		DupLow:      0.90,
		DupHigh:     0.94,
		DupSkew:     1.0, // mean ≈ 0.92
		SelfRef:     0.001,
		HotFraction: 0.25,
		HotWeight:   0.9,
		Seed:        20210531,
	}
}

// Generator produces file versions deterministically.
type Generator struct {
	spec Spec
}

// New returns a generator for the spec.
func New(spec Spec) *Generator {
	if spec.Files <= 0 || spec.FileBytes <= 0 || spec.Versions <= 0 {
		panic(fmt.Sprintf("workload: invalid spec %+v", spec))
	}
	if spec.DupSkew <= 0 {
		spec.DupSkew = 1
	}
	return &Generator{spec: spec}
}

// Spec returns the generator's spec.
func (g *Generator) Spec() Spec { return g.spec }

// FileIDs lists the dataset's logical file names.
func (g *Generator) FileIDs() []string {
	out := make([]string, g.spec.Files)
	for i := range out {
		out[i] = fmt.Sprintf("%s/table%04d.db", g.spec.Name, i)
	}
	return out
}

// FileDupRatio returns the target inter-version duplication ratio of file i.
func (g *Generator) FileDupRatio(i int) float64 {
	if g.spec.Files == 1 {
		return (g.spec.DupLow + g.spec.DupHigh) / 2
	}
	u := float64(i) / float64(g.spec.Files-1)
	return g.spec.DupLow + (g.spec.DupHigh-g.spec.DupLow)*math.Pow(u, g.spec.DupSkew)
}

// MeanDupRatio is the average target ratio across files.
func (g *Generator) MeanDupRatio() float64 {
	var s float64
	for i := 0; i < g.spec.Files; i++ {
		s += g.FileDupRatio(i)
	}
	return s / float64(g.spec.Files)
}

// fileSeed derives the base seed of file i.
func (g *Generator) fileSeed(i int) int64 {
	return g.spec.Seed*1_000_003 + int64(i)*7919
}

// Base generates version 0 of file i: random pages, with SelfRef of the
// pages copied from earlier pages of the same file (self-reference).
func (g *Generator) Base(i int) []byte {
	r := rand.New(rand.NewSource(g.fileSeed(i)))
	pages := g.spec.FileBytes / PageSize
	if pages < 4 {
		pages = 4
	}
	out := make([]byte, 0, pages*PageSize)
	page := make([]byte, PageSize)
	for p := 0; p < pages; p++ {
		if p > 0 && r.Float64() < g.spec.SelfRef {
			src := r.Intn(p)
			out = append(out, out[src*PageSize:(src+1)*PageSize]...)
			continue
		}
		r.Read(page)
		out = append(out, page...)
	}
	return out
}

// Next evolves data into the next version of file i with insert, update,
// and delete operations touching ~1-dup of the bytes. v identifies the
// version being created (for deterministic seeding).
func (g *Generator) Next(i, v int, data []byte) []byte {
	r := rand.New(rand.NewSource(g.fileSeed(i) ^ int64(v)*104729))
	dup := g.FileDupRatio(i)
	out := append([]byte{}, data...)
	pages := len(out) / PageSize
	if pages < 4 {
		return out
	}
	// Changed pages ≈ (1-dup) of the file. Overwriting a self-referenced
	// page leaves its twin intact (the content is still duplicated), so
	// the budget compensates by 1/(1-SelfRef). Of the change budget: 80%
	// updates, 10% inserts, 10% deletes (in pages).
	//
	// Mutations land as contiguous runs of pages, one run per stratum of
	// the file — database updates touch ranges (a batch of rows, an
	// extent), not isolated random pages. Clustering is what makes the
	// history-aware optimisations historical: regions missed by several
	// versions' runs accumulate duplicateTimes and merge into superchunks
	// that keep matching.
	budget := int(float64(pages) * (1 - dup) / (1 - g.spec.SelfRef))
	if budget < 1 {
		budget = 1
	}
	if budget > pages/2 {
		budget = pages / 2
	}
	updates := budget * 8 / 10
	inserts := budget / 10
	deletes := budget - updates - inserts

	const runLen = 32 // 256 KiB update ranges
	hotBudget := int(float64(updates) * g.spec.HotWeight)
	coldBudget := updates - hotBudget
	hotRuns := (hotBudget + runLen - 1) / runLen
	coldRuns := (coldBudget + runLen - 1) / runLen

	// applyRuns stratifies `count` runs over the page window [lo, hi).
	applyRuns := func(count, lo, hi int, left *int) {
		if count < 1 || hi-lo < 1 {
			return
		}
		for k := 0; k < count && *left > 0; k++ {
			n := runLen
			if n > *left {
				n = *left
			}
			*left -= n
			win := hi - lo
			stratum := lo + win*k/count
			span := win/count - n
			if span < 1 {
				span = 1
			}
			start := stratum + r.Intn(span)
			if start+n > hi {
				start = hi - n
			}
			if start < lo {
				start = lo
			}
			end := start + n
			if end > len(out)/PageSize {
				end = len(out) / PageSize
			}
			r.Read(out[start*PageSize : end*PageSize])
		}
	}
	// The hot window (the file's tail) is sized to ~1.5x the hot budget:
	// hot pages are overwritten so often they never accumulate
	// duplicateTimes, while cold pages are touched only by the occasional
	// cold run — the hot/cold split real database tables exhibit.
	cur := len(out) / PageSize
	hotPages := hotBudget * 3 / 2
	if hotPages < runLen {
		hotPages = runLen
	}
	// HotFraction caps the window only when the cap still fits the hot
	// budget — a window smaller than the budget would saturate and break
	// the file's duplication-ratio target.
	if cap := int(float64(cur) * g.spec.HotFraction); g.spec.HotFraction > 0 && cap > hotBudget && hotPages > cap {
		hotPages = cap
	}
	if hotPages > cur/2 {
		hotPages = cur / 2
	}
	hotLo := cur - hotPages
	hotLeft := hotBudget
	coldLeft := coldBudget
	applyRuns(hotRuns, hotLo, cur, &hotLeft)
	applyRuns(coldRuns, 0, hotLo, &coldLeft)
	if rem := hotLeft + coldLeft; rem > 0 { // degenerate windows: spend uniformly
		applyRuns(1, 0, cur, &rem)
	}
	// One insert run and one delete run (extent growth/shrink), inside the
	// hot window like real tables growing and vacuuming at the tail.
	if inserts > 0 {
		lo := hotLo
		p := lo + r.Intn(len(out)/PageSize-lo+1)
		ins := make([]byte, inserts*PageSize)
		r.Read(ins)
		out = append(out[:p*PageSize], append(ins, out[p*PageSize:]...)...)
	}
	if deletes > 0 && len(out) > (deletes+8)*PageSize && len(out)/PageSize-deletes > hotLo {
		p := hotLo + r.Intn(len(out)/PageSize-deletes-hotLo)
		out = append(out[:p*PageSize], out[(p+deletes)*PageSize:]...)
	}
	return out
}

// Version materialises version v of file i by chaining mutations from the
// base. O(v · size); use VersionSeq to stream all versions in order.
func (g *Generator) Version(i, v int) []byte {
	data := g.Base(i)
	for k := 1; k <= v; k++ {
		data = g.Next(i, k, data)
	}
	return data
}

// VersionSeq calls fn with each version of file i in order, reusing the
// chained state (fn must not retain the slice).
func (g *Generator) VersionSeq(i int, fn func(v int, data []byte) error) error {
	data := g.Base(i)
	if err := fn(0, data); err != nil {
		return err
	}
	for v := 1; v < g.spec.Versions; v++ {
		data = g.Next(i, v, data)
		if err := fn(v, data); err != nil {
			return err
		}
	}
	return nil
}

// Stats describes the generated dataset, for reproducing Table I.
type Stats struct {
	Name       string
	TotalBytes int64
	Versions   int
	Files      int
	MeanDup    float64
	SelfRef    float64
}

// Stats computes dataset statistics. Total size is estimated as files ×
// versions × file size (insert/delete drift is ~zero-mean).
func (g *Generator) Stats() Stats {
	return Stats{
		Name:       g.spec.Name,
		TotalBytes: int64(g.spec.Files) * int64(g.spec.Versions) * int64(g.spec.FileBytes),
		Versions:   g.spec.Versions,
		Files:      g.spec.Files,
		MeanDup:    g.MeanDupRatio(),
		SelfRef:    g.spec.SelfRef,
	}
}

// MeasureDup measures the actual byte-level duplication ratio between two
// consecutive versions of file i (shared pages / total pages of the new
// version) — used to validate the generator against its targets.
func (g *Generator) MeasureDup(i, v int) float64 {
	if v < 1 {
		return 0
	}
	prev := g.Version(i, v-1)
	cur := g.Version(i, v)
	seen := make(map[string]int)
	for p := 0; p+PageSize <= len(prev); p += PageSize {
		seen[string(prev[p:p+PageSize])]++
	}
	shared := 0
	total := 0
	for p := 0; p+PageSize <= len(cur); p += PageSize {
		total++
		key := string(cur[p : p+PageSize])
		if seen[key] > 0 {
			seen[key]--
			shared++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(shared) / float64(total)
}
