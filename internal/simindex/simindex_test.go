package simindex

import (
	"fmt"
	"testing"

	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

func fpsOf(ids ...int) []fingerprint.FP {
	out := make([]fingerprint.FP, 0, len(ids))
	for _, id := range ids {
		out = append(out, fingerprint.OfBytes([]byte(fmt.Sprintf("fp-%d", id))))
	}
	return out
}

func seqFPs(start, n int) []fingerprint.FP {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = start + i
	}
	return fpsOf(ids...)
}

func TestSketchOf(t *testing.T) {
	fps := seqFPs(0, 100)
	sk := SketchOf(fps, 16)
	if len(sk) != 16 {
		t.Fatalf("sketch size %d, want 16", len(sk))
	}
	for i := 1; i < len(sk); i++ {
		if sk[i] <= sk[i-1] {
			t.Fatal("sketch not strictly ascending")
		}
	}
	// Duplicates collapse.
	dup := append(append([]fingerprint.FP{}, fps[:4]...), fps[:4]...)
	if got := SketchOf(dup, 16); len(got) != 4 {
		t.Fatalf("sketch of duplicated set has %d entries, want 4", len(got))
	}
	// k defaulting.
	if got := SketchOf(fps, 0); len(got) != DefaultSketchSize {
		t.Fatalf("default k produced %d entries", len(got))
	}
}

func TestResemblance(t *testing.T) {
	a := SketchOf(seqFPs(0, 200), 32)
	if r := Resemblance(a, a); r != 1 {
		t.Fatalf("self resemblance = %f", r)
	}
	b := SketchOf(seqFPs(5000, 200), 32)
	if r := Resemblance(a, b); r > 0.1 {
		t.Fatalf("disjoint resemblance = %f", r)
	}
	// 90% shared content resembles more than 10% shared content.
	hi := SketchOf(append(seqFPs(0, 180), seqFPs(9000, 20)...), 32)
	lo := SketchOf(append(seqFPs(0, 20), seqFPs(9000, 180)...), 32)
	if Resemblance(a, hi) <= Resemblance(a, lo) {
		t.Fatalf("resemblance ordering wrong: hi=%f lo=%f", Resemblance(a, hi), Resemblance(a, lo))
	}
	if Resemblance(nil, a) != 0 || Resemblance(a, nil) != 0 {
		t.Fatal("empty sketch resemblance should be 0")
	}
}

func TestIndexQuery(t *testing.T) {
	mem := oss.NewMem()
	idx, err := Open(mem)
	if err != nil {
		t.Fatal(err)
	}
	// Three files with different content regions.
	if err := idx.Put("f1", 0, SketchOf(seqFPs(0, 300), 32)); err != nil {
		t.Fatal(err)
	}
	if err := idx.Put("f1", 1, SketchOf(seqFPs(10, 300), 32)); err != nil {
		t.Fatal(err)
	}
	if err := idx.Put("f2", 0, SketchOf(seqFPs(10000, 300), 32)); err != nil {
		t.Fatal(err)
	}

	// A stream overlapping f1's newer version strongly.
	q := SketchOf(seqFPs(15, 300), 32)
	m, ok := idx.Query(q, 0.05)
	if !ok {
		t.Fatal("no match found")
	}
	if m.FileID != "f1" || m.Version != 1 {
		t.Fatalf("Query = %+v, want f1 v1", m)
	}

	// A stream unlike anything indexed.
	if m, ok := idx.Query(SketchOf(seqFPs(500000, 300), 32), 0.05); ok {
		t.Fatalf("unexpected match %+v", m)
	}

	if idx.Len() != 3 {
		t.Fatalf("Len = %d", idx.Len())
	}
	vs := idx.VersionsOf("f1")
	if len(vs) != 2 || vs[0] != 0 || vs[1] != 1 {
		t.Fatalf("VersionsOf = %v", vs)
	}
}

func TestIndexPersistence(t *testing.T) {
	mem := oss.NewMem()
	idx, _ := Open(mem)
	sk := SketchOf(seqFPs(0, 100), 16)
	if err := idx.Put("file with spaces/and-slash", 7, sk); err != nil {
		t.Fatal(err)
	}

	// A fresh index (new L-node) sees the entry.
	idx2, err := Open(mem)
	if err != nil {
		t.Fatal(err)
	}
	if idx2.Len() != 1 {
		t.Fatalf("reloaded Len = %d", idx2.Len())
	}
	m, ok := idx2.Query(sk, 0.5)
	if !ok || m.FileID != "file with spaces/and-slash" || m.Version != 7 {
		t.Fatalf("reloaded Query = %+v, %v", m, ok)
	}

	// Remove persists too.
	if err := idx2.Remove(m.FileID, m.Version); err != nil {
		t.Fatal(err)
	}
	idx3, _ := Open(mem)
	if idx3.Len() != 0 {
		t.Fatalf("Len after remove = %d", idx3.Len())
	}
}

func TestQueryDeterministicTieBreak(t *testing.T) {
	mem := oss.NewMem()
	idx, _ := Open(mem)
	sk := SketchOf(seqFPs(0, 100), 16)
	idx.Put("b", 0, sk)
	idx.Put("a", 0, sk)
	idx.Put("a", 1, sk)
	m, ok := idx.Query(sk, 0.5)
	if !ok || m.FileID != "a" || m.Version != 1 {
		t.Fatalf("tie break = %+v", m)
	}
}

func TestEntryRoundTrip(t *testing.T) {
	e := &Entry{FileID: "x/y", Version: 3, Sketch: Sketch{1, 2, 3, 1 << 60}}
	got, err := decodeEntry(encodeEntry(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.FileID != e.FileID || got.Version != e.Version || len(got.Sketch) != 4 || got.Sketch[3] != 1<<60 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := decodeEntry([]byte{1}); err == nil {
		t.Fatal("short entry accepted")
	}
}
