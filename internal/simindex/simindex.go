// Package simindex implements the similar file index (paper §III-B): it
// stores representative fingerprints of each backed-up file so an L-node
// can find a historical version or similar file for an incoming stream
// whose name lookup failed (§IV-A STEP 1).
//
// Following Broder's theorem, the resemblance of two files is estimated
// from the resemblance of small random samples. Each file version keeps a
// bounded min-wise sketch (the K smallest sampled fingerprint values);
// the file maximising sketch overlap is returned as the similar file.
//
// The index resides in the storage layer (one small OSS object per file
// version) and is mirrored in memory so queries cost no OSS round trips;
// L-nodes stay stateless — any node can reload the mirror from OSS.
package simindex

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

// DefaultSketchSize is the number of min-hash values kept per file version.
const DefaultSketchSize = 32

// Prefix is the OSS namespace of the index.
const Prefix = "simindex/"

// Sketch is a min-wise sample of a file's fingerprint set: the K smallest
// 64-bit foldings, ascending and deduplicated.
type Sketch []uint64

// SketchOf builds a sketch of size at most k from sampled fingerprints.
func SketchOf(fps []fingerprint.FP, k int) Sketch {
	if k <= 0 {
		k = DefaultSketchSize
	}
	vals := make([]uint64, 0, len(fps))
	for _, fp := range fps {
		vals = append(vals, fp.Uint64())
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := make(Sketch, 0, k)
	var prev uint64
	for i, v := range vals {
		if i > 0 && v == prev {
			continue
		}
		out = append(out, v)
		prev = v
		if len(out) == k {
			break
		}
	}
	return out
}

// Resemblance estimates the Jaccard similarity of the sets behind two
// sketches by their overlap within the union's K smallest values.
func Resemblance(a, b Sketch) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	k := len(a)
	if len(b) > k {
		k = len(b)
	}
	// Merge the two sorted sketches, counting matches among the k smallest
	// union values.
	i, j, seen, match := 0, 0, 0, 0
	for seen < k && i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			match++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
		seen++
	}
	return float64(match) / float64(k)
}

// Entry is one indexed file version.
type Entry struct {
	FileID  string
	Version int
	Sketch  Sketch
}

func entryKey(fileID string, version int) string {
	return fmt.Sprintf("%s%x/%08d", Prefix, fileID, version)
}

func encodeEntry(e *Entry) []byte {
	buf := make([]byte, 0, 8+len(e.FileID)+8*len(e.Sketch))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.FileID)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, e.FileID...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(e.Version))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.Sketch)))
	buf = append(buf, tmp[:4]...)
	for _, v := range e.Sketch {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	return buf
}

func decodeEntry(b []byte) (*Entry, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("simindex: entry too short")
	}
	nameLen := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+nameLen+8 {
		return nil, fmt.Errorf("simindex: truncated entry")
	}
	e := &Entry{FileID: string(b[4 : 4+nameLen])}
	p := 4 + nameLen
	e.Version = int(binary.LittleEndian.Uint32(b[p:]))
	n := int(binary.LittleEndian.Uint32(b[p+4:]))
	p += 8
	if len(b) != p+8*n {
		return nil, fmt.Errorf("simindex: entry size mismatch")
	}
	e.Sketch = make(Sketch, n)
	for i := 0; i < n; i++ {
		e.Sketch[i] = binary.LittleEndian.Uint64(b[p:])
		p += 8
	}
	return e, nil
}

// Index is the similar file index. Safe for concurrent use.
type Index struct {
	store oss.Store

	mu      sync.RWMutex
	entries map[string]*Entry // keyed by fileID\x00version
}

func memKey(fileID string, version int) string {
	return fileID + "\x00" + strconv.Itoa(version)
}

// Open loads the index mirror from OSS.
func Open(store oss.Store) (*Index, error) {
	idx := &Index{store: store, entries: make(map[string]*Entry)}
	keys, err := store.List(Prefix)
	if err != nil {
		return nil, fmt.Errorf("simindex: open: %w", err)
	}
	for _, k := range keys {
		b, err := store.Get(k)
		if err != nil {
			return nil, fmt.Errorf("simindex: open %s: %w", k, err)
		}
		e, err := decodeEntry(b)
		if err != nil {
			return nil, fmt.Errorf("simindex: open %s: %w", k, err)
		}
		idx.entries[memKey(e.FileID, e.Version)] = e
	}
	return idx, nil
}

// Put indexes a file version's sketch, persisting it to OSS.
func (x *Index) Put(fileID string, version int, sk Sketch) error {
	e := &Entry{FileID: fileID, Version: version, Sketch: sk}
	if err := x.store.Put(entryKey(fileID, version), encodeEntry(e)); err != nil {
		return fmt.Errorf("simindex: put %s v%d: %w", fileID, version, err)
	}
	x.mu.Lock()
	x.entries[memKey(fileID, version)] = e
	x.mu.Unlock()
	return nil
}

// Remove drops a file version from the index.
func (x *Index) Remove(fileID string, version int) error {
	if err := x.store.Delete(entryKey(fileID, version)); err != nil {
		return fmt.Errorf("simindex: remove %s v%d: %w", fileID, version, err)
	}
	x.mu.Lock()
	delete(x.entries, memKey(fileID, version))
	x.mu.Unlock()
	return nil
}

// Match is a similarity query result.
type Match struct {
	FileID  string
	Version int
	Score   float64
}

// Query returns the most similar indexed file version for a sketch, with
// ok=false when nothing scores above minScore. When several versions tie,
// the newest version of the lexicographically smallest file wins, so
// results are deterministic.
func (x *Index) Query(sk Sketch, minScore float64) (Match, bool) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	best := Match{Score: -1}
	for _, e := range x.entries {
		s := Resemblance(sk, e.Sketch)
		if s < minScore {
			continue
		}
		if s > best.Score ||
			(s == best.Score && (e.FileID < best.FileID ||
				e.FileID == best.FileID && e.Version > best.Version)) {
			best = Match{FileID: e.FileID, Version: e.Version, Score: s}
		}
	}
	return best, best.Score >= 0
}

// Len returns the number of indexed file versions.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.entries)
}

// VersionsOf returns indexed versions of a file, ascending; used by
// version collection to trim old entries.
func (x *Index) VersionsOf(fileID string) []int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var out []int
	prefix := fileID + "\x00"
	for k := range x.entries {
		if strings.HasPrefix(k, prefix) {
			v, err := strconv.Atoi(k[len(prefix):])
			if err == nil {
				out = append(out, v)
			}
		}
	}
	sort.Ints(out)
	return out
}
