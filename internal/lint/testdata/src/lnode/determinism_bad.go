// Package lnode is the determinism fixture: it carries the package name
// of a simclock-charged package, so every nondeterminism pattern below
// must be flagged — wall clock, global rand, env reads, and map iteration
// order escaping into output — while the explicitly seeded and
// explicitly sorted forms stay clean.
package lnode

import (
	"encoding/json"
	"math/rand"
	"os"
	"sort"
	"time"
)

// wallClock leaks host time into a charged path.
func wallClock() int64 {
	return time.Now().UnixNano() // BAD: time.Now in charged package
}

// elapsed leaks host time via Since.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // BAD: time.Since in charged package
}

// globalRand draws from the process-global source.
func globalRand() int {
	return rand.Intn(10) // BAD: global math/rand
}

// env reads ambient configuration.
func env() string {
	return os.Getenv("SLIM_DEBUG") // BAD: os.Getenv in charged package
}

// encodeKeys lets map iteration order become the encoded artifact.
func encodeKeys(counts map[string]int) ([]byte, error) {
	var keys []string
	for k := range counts { // BAD: appended slice never sorted
		keys = append(keys, k)
	}
	return json.Marshal(keys)
}

// writeRows emits rows straight from the loop body.
func writeRows(enc *json.Encoder, counts map[string]int) error {
	for k, v := range counts {
		if err := enc.Encode([2]any{k, v}); err != nil { // BAD: sink inside map range
			return err
		}
	}
	return nil
}

// sortedKeys is the negative control: collected then sorted.
func sortedKeys(counts map[string]int) []string {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// seeded is deterministic: explicit seed, explicit source.
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// counting builds a map from a map — order-independent, no finding.
func counting(in map[string]int) map[string]bool {
	out := make(map[string]bool, len(in))
	for k, v := range in {
		out[k] = v > 0
	}
	return out
}
