// Package xlock_dep is the helper half of the cross-package
// lock-inversion fixture: functions that acquire file stripes on behalf
// of callers. Nothing here is wrong in isolation — the inversion only
// exists at the call site in xlock_bad, one package away.
package xlock_dep

import "slimstore/internal/core"

// TouchFile locks the file stripe for name and releases it.
func TouchFile(fl *core.FileLocks, name string) {
	fl.Lock(name)
	defer fl.Unlock(name)
}

// TouchViaHelper adds a frame so the inversion sits two calls and a
// package boundary away from the bad acquisition site.
func TouchViaHelper(fl *core.FileLocks, name string) {
	TouchFile(fl, name)
}
