// Package xlock_bad holds a container stripe and calls into xlock_dep,
// which acquires a file stripe: a FileLocks-under-ContainerLocks
// inversion that only a cross-package, transitive call graph can see.
// TestCrossPackageInversion proves the legacy one-level engine misses
// every finding in this package.
package xlock_bad

import (
	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/lint/testdata/src/xlock_dep"
)

type node struct {
	files  *core.FileLocks
	clocks *core.ContainerLocks
}

// inversionAcrossPackages acquires FileLocks via xlock_dep while a
// container stripe is held.
func (n *node) inversionAcrossPackages(id container.ID, file string) {
	n.clocks.Lock(id)
	defer n.clocks.Unlock(id)
	xlock_dep.TouchFile(n.files, file) // BAD: FileLocks under ContainerLocks, one package away
}

// deepInversion is the same sin through two frames.
func (n *node) deepInversion(id container.ID, file string) {
	n.clocks.Lock(id)
	defer n.clocks.Unlock(id)
	xlock_dep.TouchViaHelper(n.files, file) // BAD: two frames and a package boundary away
}

// orderedCaller is the negative control: hierarchy walked top-down, the
// same helper called with nothing below FileLocks held.
func (n *node) orderedCaller(id container.ID, file string) {
	xlock_dep.TouchFile(n.files, file)
	n.clocks.Lock(id)
	defer n.clocks.Unlock(id)
}
