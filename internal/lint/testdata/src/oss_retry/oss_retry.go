// Package oss replays the PR 4 retry-jitter bug verbatim: a backoff
// helper seeding math/rand from the wall clock inside the simulated
// store, which made latency traces unreproducible across runs. The
// package is named oss so determinism charges it exactly like the real
// one.
package oss

import (
	"math/rand"
	"time"
)

// retryJitter is the historical bug: wall-clock seeding in a charged
// package.
func retryJitter() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // BAD: wall clock in the simulation
}

// seededJitter is the shipped fix: the seed comes from configuration.
func seededJitter(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
