// Package ctxflow_bad mints root contexts outside main: once plainly,
// once while a perfectly good ctx sits in the parameter list.
package ctxflow_bad

import "context"

func mint() context.Context {
	return context.Background() // BAD: root context outside main
}

func todo() context.Context {
	return context.TODO() // BAD: TODO is still a root
}

func refusesToForward(ctx context.Context) error {
	return work(context.Background()) // BAD: received ctx not forwarded
}

func forwards(ctx context.Context) error {
	return work(ctx)
}

func derives(ctx context.Context) error {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(c)
}

func work(ctx context.Context) error {
	return ctx.Err()
}
