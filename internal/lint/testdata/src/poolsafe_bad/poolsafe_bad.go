// Package poolsafe_bad commits every pool-lifetime sin slimlint knows:
// use after Put, double Put on one path, Put while an alias escaped
// (via a global, a channel, and a retaining callee), a Put racing a
// deferred Put, and a noretain contract violated by an implementation.
// The negative controls at the bottom are the production idioms the
// walker must keep accepting: select-arm ownership transfer and revival
// by reassignment.
package poolsafe_bad

import "sync"

type buf struct {
	b []byte
}

var pool = sync.Pool{New: func() any { return &buf{} }}

var global *buf

var kept *buf

// getBuf is the pooled constructor; poolsafe learns transitively that
// its result is pooled.
func getBuf() *buf {
	return pool.Get().(*buf)
}

// putBuf is the recycler; poolsafe learns transitively that it Puts its
// parameter.
func putBuf(b *buf) {
	pool.Put(b)
}

// keep retains its argument in a package-level variable.
func keep(b *buf) {
	kept = b
}

// useAfterPut reads the buffer after recycling it.
func useAfterPut() int {
	b := getBuf()
	putBuf(b)
	return len(b.b) // BAD: pooled memory may already be reused
}

// doublePut recycles the same buffer twice on one path.
func doublePut() {
	b := getBuf()
	putBuf(b)
	putBuf(b) // BAD: second Put of the same buffer
}

// escapeThenPut stores the buffer into a global, then recycles it.
func escapeThenPut() {
	b := getBuf()
	global = b // escape
	putBuf(b)  // BAD: the global outlives the recycle
}

// sendThenPut hands the buffer to another goroutine, then recycles it.
func sendThenPut(ch chan *buf) {
	b := getBuf()
	ch <- b   // escape
	putBuf(b) // BAD: the receiver outlives the recycle
}

// stashThenPut escapes through the call graph: keep retains its
// parameter, so passing b to it is an escape.
func stashThenPut() {
	b := getBuf()
	keep(b)   // escape, one frame deep
	putBuf(b) // BAD: kept outlives the recycle
}

// deferredDouble recycles inline while a deferred Put is pending.
func deferredDouble() {
	b := getBuf()
	defer putBuf(b)
	putBuf(b) // BAD: the deferred Put fires again at exit
}

// Sink is a storage-shaped interface with a noretain contract, like
// oss.Store.Put in the real tree.
type Sink interface {
	//slimlint:contract noretain data
	Write(data []byte) error
}

// BadSink aliases the caller's buffer — a contract violation an
// implementation inherits from the interface declaration.
type BadSink struct {
	last []byte
}

func (s *BadSink) Write(data []byte) error { // BAD: retains data
	s.last = data
	return nil
}

// GoodSink copies; the contract holds.
type GoodSink struct {
	last []byte
}

func (s *GoodSink) Write(data []byte) error {
	s.last = append([]byte(nil), data...)
	return nil
}

// transferOK is the negative control for select-arm ownership transfer:
// the buffer either leaves on the channel or is recycled, never both.
func transferOK(ch chan *buf, stop chan struct{}) bool {
	b := getBuf()
	select {
	case ch <- b:
		return true
	case <-stop:
		putBuf(b)
		return false
	}
}

// reassignOK is the negative control for revival by reassignment.
func reassignOK() *buf {
	b := getBuf()
	putBuf(b)
	b = getBuf()
	return b
}
