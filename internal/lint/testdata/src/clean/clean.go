// Package clean is the all-negative fixture: correct lock ordering with
// defers and release closures, checked storage errors, forwarded
// contexts, sorted map iteration, balanced pool Get/Put, and goroutines
// with join or stop edges. slimlint must exit 0 here.
package clean

import (
	"context"
	"sort"
	"sync"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/oss"
)

type system struct {
	maintMu sync.Mutex
	mu      sync.Mutex
	files   *core.FileLocks
	clocks  *core.ContainerLocks
}

func (s *system) maintenance(id container.ID, ids []container.ID, file string) {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()
	s.files.Lock(file)
	defer s.files.Unlock(file)
	release := s.clocks.Pin(ids)
	defer release()
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (s *system) store(ctx context.Context, st oss.Store, keys map[string]bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	for _, k := range ordered {
		if err := st.Put(k, nil); err != nil {
			return err
		}
	}
	return nil
}

type pooledBuf struct {
	b []byte
}

var bufPool = sync.Pool{New: func() any { return &pooledBuf{} }}

// roundTrip takes a buffer, uses it, and recycles it exactly once — the
// balanced pool idiom poolsafe must keep accepting.
func roundTrip(data []byte) int {
	b := bufPool.Get().(*pooledBuf)
	b.b = append(b.b[:0], data...)
	n := len(b.b)
	bufPool.Put(b)
	return n
}

// fanOut runs joined workers draining a channel that is closed after
// the send loop — both goroutineleak exit edges in one function.
func fanOut(items []string) {
	ch := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range ch {
			}
		}()
	}
	for _, it := range items {
		ch <- it
	}
	close(ch)
	wg.Wait()
}
