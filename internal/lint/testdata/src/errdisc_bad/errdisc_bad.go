// Package errdisc_bad discards storage-layer errors in every way the
// errdiscipline analyzer distinguishes: a bare expression statement, a
// `_ =` without justification, a deferred call, a goroutine, and the
// multi-value `v, _ :=` form. It also carries one malformed suppression
// (no reason) to pin that bare excuses are findings, not passes.
package errdisc_bad

import "slimstore/internal/oss"

func drop(s oss.Store) {
	s.Put("k", nil) // BAD: result discarded

	_ = s.Delete("k") // BAD: _ without an ignore directive

	defer s.Put("k2", nil) // BAD: deferred discard

	go s.Delete("k3") // BAD: goroutine discard
}

func dropMulti(s oss.Store) []byte {
	b, _ := s.Get("k") // BAD: error position is _
	return b
}

func bareExcuse(s oss.Store) {
	//slimlint:ignore errdiscipline
	_ = s.Delete("k") // BAD: directive has no reason, so it neither suppresses nor passes
}

func checked(s oss.Store) error {
	if err := s.Put("k", nil); err != nil {
		return err
	}
	b, err := s.Get("k")
	_ = b
	return err
}
