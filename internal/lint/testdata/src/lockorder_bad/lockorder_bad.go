// Package lockorder_bad commits every lock-hierarchy sin slimlint knows:
// inverted acquisition order (directly and through a sibling call), a
// leaked Lock, a self-deadlocking re-lock, a discarded release func, and
// a deferred Lock. It imports the real core lock tables so the fixtures
// exercise exactly the types production code uses.
package lockorder_bad

import (
	"sync"

	"slimstore/internal/container"
	"slimstore/internal/core"
)

type node struct {
	maintMu sync.Mutex
	mu      sync.Mutex
	files   *core.FileLocks
	clocks  *core.ContainerLocks
}

// containerBeforeFile inverts FileLocks → ContainerLocks.
func (n *node) containerBeforeFile(id container.ID, file string) {
	n.clocks.Lock(id)
	defer n.clocks.Unlock(id)
	n.files.Lock(file) // BAD: FileLocks acquired under a container stripe
	defer n.files.Unlock(file)
}

// leafBeforeMaint inverts maintMu → leaves.
func (n *node) leafBeforeMaint() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.maintMu.Lock() // BAD: maintMu acquired under a leaf mutex
	defer n.maintMu.Unlock()
}

// leak never releases the file stripe.
func (n *node) leak(file string) {
	n.files.Lock(file) // BAD: no Unlock on any path
}

// relock deadlocks on itself.
func (n *node) relock() {
	n.mu.Lock()
	n.mu.Lock() // BAD: second Lock can never proceed
	n.mu.Unlock()
	n.mu.Unlock()
}

// lockFile is the sibling the one-level call-graph check sees through.
func (n *node) lockFile(file string) {
	n.files.Lock(file)
	defer n.files.Unlock(file)
}

// callsSiblingHoldingContainer holds a container stripe and calls a
// sibling that takes a file stripe: the same inversion, one frame deep.
func (n *node) callsSiblingHoldingContainer(id container.ID, file string) {
	n.clocks.Lock(id)
	defer n.clocks.Unlock(id)
	n.lockFile(file) // BAD: callee acquires FileLocks under ContainerLocks
}

// dropsRelease pins stripes and throws the only release away.
func (n *node) dropsRelease(ids []container.ID) {
	_ = n.clocks.Pin(ids) // BAD: release func discarded
}

// deferredLock defers an acquisition — a typo'd Unlock.
func (n *node) deferredLock() {
	defer n.mu.Lock() // BAD: acquires at exit
}

// properOrder is the negative control: full hierarchy walked top-down
// with defers, plus the release-closure pattern. No findings.
func (n *node) properOrder(id container.ID, ids []container.ID, file string) {
	n.maintMu.Lock()
	defer n.maintMu.Unlock()
	n.files.Lock(file)
	defer n.files.Unlock(file)
	release := n.clocks.Pin(ids)
	defer release()
	n.mu.Lock()
	defer n.mu.Unlock()
}

// branchBalanced releases on one arm and falls through on the other; the
// merge must not believe the lock is still held afterwards. No findings.
func (n *node) branchBalanced(cond bool) {
	n.mu.Lock()
	if cond {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
}

// returnsRelease hands the obligation to its caller, like LockAll. No
// findings.
func (n *node) returnsRelease(ids []container.ID) func() {
	release := n.clocks.Pin(ids)
	return release
}
