// Package goroutineleak_bad replays the pre-PR-5 cache prefetcher bug:
// a feeder goroutine that sends unconditionally on a semaphore and a
// jobs channel, with no stop select and no join — when a consumer bails
// out mid-sequence, the feeder parks on the send forever. The workers,
// which drain a channel that is eventually closed and Done a Waited
// WaitGroup, are the negative control.
package goroutineleak_bad

import "sync"

type prefetcher struct {
	jobs chan int
	sem  chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

func newPrefetcher(ids []int) *prefetcher {
	p := &prefetcher{
		jobs: make(chan int),
		sem:  make(chan struct{}, 2),
		stop: make(chan struct{}),
	}
	for i := 0; i < 2; i++ {
		p.wg.Add(1)
		go p.worker() // ok: Done on a Waited WaitGroup
	}
	go func() { // BAD: unconditional sends, no stop select, never joined
		defer close(p.jobs)
		for _, id := range ids {
			p.sem <- struct{}{}
			p.jobs <- id
		}
	}()
	return p
}

func (p *prefetcher) worker() {
	defer p.wg.Done()
	for range p.jobs {
		<-p.sem
	}
}

// monitor is the negative control for the stop-channel pattern: the
// goroutine exits when Close closes p.stop.
func (p *prefetcher) monitor() {
	go func() {
		for {
			select {
			case <-p.jobs:
			case <-p.stop:
				return
			}
		}
	}()
}

// Close joins the workers and releases the monitor.
func (p *prefetcher) Close() {
	close(p.stop)
	p.wg.Wait()
}

// tick spins forever with no stop signal at all.
func tick(n *int) {
	go func() { // BAD: no join or stop edge anywhere
		for {
			*n++
		}
	}()
}
