// Package suppress_ok would be full of findings — but every one carries
// a well-formed //slimlint:ignore with a reason, in both the line-above
// and same-line forms, so slimlint exits 0 on it. (Suppression inside
// charged packages is exercised by the committed bench suppressions in
// the real tree; this fixture pins the directive mechanics alone.)
package suppress_ok

import (
	"context"

	"slimstore/internal/oss"
)

func excusedDiscard(s oss.Store) {
	//slimlint:ignore errdiscipline best-effort cache cleanup; a failed delete only delays space reclaim
	_ = s.Delete("cache-key")

	s.Put("k", nil) //slimlint:ignore errdiscipline same-line form: fire-and-forget warmup write, never read back
}

func excusedRoot() context.Context {
	//slimlint:ignore ctxflow this fixture models a detached janitor loop that must outlive request contexts
	return context.Background()
}
