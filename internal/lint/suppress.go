// Suppression syntax:
//
//	//slimlint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it. The
// analyzer name must match the finding ("suppression" directives are
// per-analyzer on purpose: a line excused from determinism is still
// checked for lock order). The reason is mandatory and free-form; a
// directive without one does not suppress and is itself reported, as is a
// directive that matches nothing — stale excuses rot into lies.
package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

const ignorePrefix = "slimlint:ignore"

// directive is one parsed //slimlint:ignore comment.
type directive struct {
	file     string // module-relative
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// parseDirectives extracts every slimlint directive in the package.
func parseDirectives(p *Package) []*directive {
	var out []*directive
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := &directive{file: p.relPath(pos.Filename), line: pos.Line, pos: c.Pos()}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.analyzer = fields[0]
					d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppressions filters findings covered by a valid directive and
// appends findings for invalid or unused directives. active names the
// analyzers that actually ran this invocation: a directive for a known
// analyzer that was deselected (-only) is skipped outright, neither
// suppressing nor counting as stale.
func applySuppressions(pkgs []*Package, findings []Finding, active map[string]bool) []Finding {
	byFileLine := map[string][]*directive{}
	var all []*directive
	for _, p := range pkgs {
		for _, d := range parseDirectives(p) {
			key := fmt.Sprintf("%s:%d", d.file, d.line)
			byFileLine[key] = append(byFileLine[key], d)
			all = append(all, d)
		}
	}

	var kept []Finding
	for _, f := range findings {
		suppressed := false
		// A directive suppresses findings on its own line and on the line
		// below it (the comment-above form).
		for _, line := range []int{f.Line, f.Line - 1} {
			for _, d := range byFileLine[fmt.Sprintf("%s:%d", f.File, line)] {
				if d.analyzer != f.Analyzer {
					continue
				}
				if d.reason == "" {
					continue // invalid directive: reported below, does not suppress
				}
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}

	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, d := range all {
		switch {
		case d.analyzer == "" || d.reason == "":
			kept = append(kept, Finding{
				Analyzer: "suppression", File: d.file, Line: d.line, Col: 1,
				Message: fmt.Sprintf("malformed directive — want //%s <analyzer> <reason>, the reason is mandatory", ignorePrefix),
			})
		case !known[d.analyzer]:
			kept = append(kept, Finding{
				Analyzer: "suppression", File: d.file, Line: d.line, Col: 1,
				Message: fmt.Sprintf("unknown analyzer %q in directive (have: %s)", d.analyzer, strings.Join(AnalyzerNames(), ", ")),
			})
		case active != nil && !active[d.analyzer]:
			// The analyzer this directive excuses did not run; no verdict.
		case !d.used:
			kept = append(kept, Finding{
				Analyzer: "suppression", File: d.file, Line: d.line, Col: 1,
				Message: fmt.Sprintf("unused %s suppression — the finding it excused is gone; delete the directive", d.analyzer),
			})
		}
	}
	return kept
}

// InsertSuppressions implements -fix=suppress: for each finding it
// inserts a //slimlint:ignore stub (with a TODO reason to be edited into
// a real justification) on the line above the finding, preserving
// indentation. Returns the new content per module-relative file path;
// callers decide whether to write.
func InsertSuppressions(moduleDir string, findings []Finding) (map[string][]byte, error) {
	byFile := map[string][]Finding{}
	for _, f := range findings {
		if f.Analyzer == "suppression" {
			continue // directives are fixed by editing, not by more directives
		}
		byFile[f.File] = append(byFile[f.File], f)
	}
	out := map[string][]byte{}
	for rel, fs := range byFile {
		data, err := os.ReadFile(moduleDir + "/" + rel)
		if err != nil {
			return nil, err
		}
		lines := strings.Split(string(data), "\n")
		// Insert bottom-up so earlier line numbers stay valid; one stub
		// per (line, analyzer).
		sort.Slice(fs, func(i, j int) bool { return fs[i].Line > fs[j].Line })
		seen := map[string]bool{}
		for _, f := range fs {
			key := fmt.Sprintf("%d/%s", f.Line, f.Analyzer)
			if seen[key] || f.Line < 1 || f.Line > len(lines) {
				continue
			}
			seen[key] = true
			target := lines[f.Line-1]
			indent := target[:len(target)-len(strings.TrimLeft(target, " \t"))]
			stub := fmt.Sprintf("%s//%s %s TODO(triage): %s", indent, ignorePrefix, f.Analyzer, f.Message)
			lines = append(lines[:f.Line-1], append([]string{stub}, lines[f.Line-1:]...)...)
		}
		out[rel] = []byte(strings.Join(lines, "\n"))
	}
	return out, nil
}
