// lockorder enforces the documented acyclic lock hierarchy (DESIGN.md
// §7–8):
//
//	maintMu  →  FileLocks stripes  →  ContainerLocks stripes  →  leaf mutexes
//
// Within every function body it tracks which families are held at each
// acquisition (branch-sensitively: if/switch arms are walked separately
// and merged by intersection, so a lock released on one arm is not
// assumed held afterwards) and flags:
//
//   - an acquisition of a family that ranks above a family already held
//     (e.g. FileLocks.Lock while a ContainerLocks stripe is held);
//   - the same transitively through the whole-program call graph:
//     holding X and calling anything — across packages, through
//     interface methods resolved to every concrete implementation the
//     program declares — that acquires something above X, bounded at
//     maxSummaryDepth frames. Findings carry the call chain
//     ("calls a → b, which acquires …"). Acquisitions under `go`
//     statements are excluded from summaries: a spawned goroutine does
//     not run under the caller's held set;
//   - re-acquiring the exact same mutex expression already held
//     (self-deadlock on sync.Mutex / the write side of sync.RWMutex);
//   - a Lock with no reachable Unlock: no direct call, no defer, no
//     release inside a function literal (the returned-release-closure
//     pattern of FileLocks.LockAll / ContainerLocks.Pin), and the
//     release func neither called, deferred, nor escaping via return.
//
// Families are matched structurally, not by import path, so fixture
// packages exercise the same rules: a method call on a named type
// FileLocks / ContainerLocks, a sync.Mutex or sync.RWMutex field named
// maintMu, and any other sync mutex as a leaf.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type lockFamily int

const (
	famMaint     lockFamily = iota // G-node maintenance mutex: top of the order
	famFile                        // core.FileLocks stripes
	famContainer                   // core.ContainerLocks stripes
	famLeaf                        // every other sync.Mutex / sync.RWMutex
)

func (f lockFamily) String() string {
	switch f {
	case famMaint:
		return "maintMu"
	case famFile:
		return "FileLocks"
	case famContainer:
		return "ContainerLocks"
	}
	return "leaf mutex"
}

// lockEvent classifies one lock-related call.
type lockEvent struct {
	family  lockFamily
	key     string // rendered receiver expr, e.g. "g.repo.Files"
	method  string // Lock, RLock, Unlock, RUnlock, Pin, LockAll
	acquire bool
	// releaseFunc marks acquire-returning-release calls (Pin, LockAll):
	// the unlock travels through the returned closure.
	releaseFunc bool
	pos         token.Pos
}

func lockOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "lock acquisitions must follow maintMu → FileLocks → ContainerLocks → leaves, and every Lock needs a reachable Unlock",
		Run:  runLockOrder,
	}
}

// classifyLockCall decides whether call is a lock operation and on which
// family. Returns nil for anything else.
func classifyLockCall(p *Package, call *ast.CallExpr) *lockEvent {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	m := sel.Sel.Name
	switch m {
	case "Lock", "RLock", "Unlock", "RUnlock", "Pin", "LockAll":
	default:
		return nil
	}
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil
	}
	named := namedRecv(s.Recv())
	if named == nil {
		return nil
	}
	ev := &lockEvent{method: m, key: types.ExprString(sel.X), pos: call.Pos()}
	switch {
	case named.Obj().Name() == "FileLocks":
		ev.family = famFile
	case named.Obj().Name() == "ContainerLocks":
		ev.family = famContainer
	case isSyncMutex(named):
		if terminalFieldName(sel.X) == "maintMu" {
			ev.family = famMaint
		} else {
			ev.family = famLeaf
		}
	default:
		return nil
	}
	switch m {
	case "Lock", "RLock":
		ev.acquire = true
	case "Pin", "LockAll":
		if ev.family == famLeaf || ev.family == famMaint {
			return nil // Pin/LockAll only exist on the striped tables
		}
		ev.acquire = true
		ev.releaseFunc = true
	}
	return ev
}

func isSyncMutex(n *types.Named) bool {
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// terminalFieldName returns the last identifier of a selector chain
// ("g.repo.maintMu" → "maintMu", bare "maintMu" → itself).
func terminalFieldName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// transAcquire is one lock acquisition reachable from a function:
// family/key plus the call path (below the summarized function) leading
// to the function that performs it. An empty chain means the function
// acquires directly.
type transAcquire struct {
	family lockFamily
	key    string
	chain  []*types.Func
}

// lockSummary is the transitive acquisition summary of one function.
type lockSummary struct {
	acquires []transAcquire
}

// lockSummaryOf computes (memoized, cycle-guarded, depth-bounded) the
// lock families fn can acquire synchronously — directly or through
// callees resolved by the call graph. A call that classifies as a lock
// operation is recorded as the event itself; its implementation's body
// is not entered (FileLocks.Lock's internal stripe mutexes are the
// abstraction's business, not the caller's). Calls spawned by `go` are
// excluded: they do not run under the caller's held set.
func (pr *program) lockSummaryOf(fn *types.Func, depth int) *lockSummary {
	if sum, ok := pr.lockSums[fn]; ok {
		return sum
	}
	if depth > maxSummaryDepth || pr.lockActive[fn] {
		return &lockSummary{}
	}
	node := pr.graph.nodeFor(fn)
	if node == nil {
		return &lockSummary{} // out-of-program, or no body
	}
	pr.lockActive[fn] = true
	sum := &lockSummary{}
	seen := map[string]bool{}
	add := func(a transAcquire) {
		k := fmt.Sprintf("%d|%s", a.family, a.key)
		if !seen[k] {
			seen[k] = true
			sum.acquires = append(sum.acquires, a)
		}
	}
	asyncCalls := map[*ast.CallExpr]bool{}
	inspectShallow(node.decl.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			asyncCalls[gs.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || asyncCalls[call] {
			return true
		}
		if ev := classifyLockCall(node.pkg, call); ev != nil {
			if ev.acquire {
				add(transAcquire{family: ev.family, key: ev.key})
			}
			return true
		}
		for _, e := range pr.graph.resolveCall(node.pkg, call) {
			for _, a := range pr.lockSummaryOf(e.callee, depth+1).acquires {
				add(transAcquire{
					family: a.family,
					key:    a.key,
					chain:  append([]*types.Func{e.callee}, a.chain...),
				})
			}
		}
		return true
	})
	delete(pr.lockActive, fn)
	pr.lockSums[fn] = sum
	return sum
}

// callAcquire is one acquisition reachable from a specific call site:
// the chain starts at the direct callee.
type callAcquire struct {
	chain  []*types.Func
	family lockFamily
	key    string
}

// heldLock is one entry of the walker's held set.
type heldLock struct {
	family lockFamily
	key    string
	method string // Lock vs RLock, for the self-deadlock check
}

// lockWalker carries per-function analysis state.
type lockWalker struct {
	p        *Package
	resolve  func(call *ast.CallExpr) []callAcquire
	findings *[]Finding
	reported map[string]bool // (pos, families, held key) dedupe across fan-out

	// Whole-body bookkeeping for the missing-unlock check.
	acquired     map[string]token.Pos // key → first acquire position
	acquiredFam  map[string]lockFamily
	released     map[string]bool   // key saw Unlock/RUnlock (any path, incl. closures)
	releaseVars  map[string]string // release-func variable name → lock key
	releaseCalls map[string]bool   // lock key → release func invoked/deferred/escaped
}

// runLockOrder is the v2 engine: call sites resolve through the
// whole-program call graph to transitive, cross-package summaries.
func runLockOrder(pr *program, p *Package) []Finding {
	return lockOrderWalk(p, func(call *ast.CallExpr) []callAcquire {
		var out []callAcquire
		for _, e := range pr.graph.resolveCall(p, call) {
			for _, a := range pr.lockSummaryOf(e.callee, 0).acquires {
				out = append(out, callAcquire{
					chain:  append([]*types.Func{e.callee}, a.chain...),
					family: a.family,
					key:    a.key,
				})
			}
		}
		return out
	})
}

// lockOrderLegacyFindings is the pre-v2 engine: one level of same-package
// calls only, no transitivity, no interface fan-out. It exists as a test
// hook so lint_test.go can prove the cross-package fixtures are invisible
// to it.
func lockOrderLegacyFindings(p *Package) []Finding {
	summaries := map[*types.Func]*lockSummary{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := &lockSummary{}
			inspectShallow(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if ev := classifyLockCall(p, call); ev != nil && ev.acquire {
						sum.acquires = append(sum.acquires, transAcquire{family: ev.family, key: ev.key})
					}
				}
				return true
			})
			summaries[fn] = sum
		}
	}
	return lockOrderWalk(p, func(call *ast.CallExpr) []callAcquire {
		fn := p.calleeFunc(call)
		if fn == nil || fn.Pkg() != p.Types {
			return nil
		}
		sum := summaries[fn]
		if sum == nil {
			return nil
		}
		var out []callAcquire
		for _, a := range sum.acquires {
			out = append(out, callAcquire{chain: []*types.Func{fn}, family: a.family, key: a.key})
		}
		return out
	})
}

// lockOrderWalk runs the body walker over every function in p with the
// given call-site resolver.
func lockOrderWalk(p *Package, resolve func(*ast.CallExpr) []callAcquire) []Finding {
	var findings []Finding
	for _, f := range p.Files {
		for _, fb := range fileFuncBodies(f) {
			w := &lockWalker{
				p:            p,
				resolve:      resolve,
				findings:     &findings,
				reported:     map[string]bool{},
				acquired:     map[string]token.Pos{},
				acquiredFam:  map[string]lockFamily{},
				released:     map[string]bool{},
				releaseVars:  map[string]string{},
				releaseCalls: map[string]bool{},
			}
			w.walkStmts(fb.body.List, &[]heldLock{})
			w.reportLeaks(fb)
		}
	}
	return findings
}

// chainString renders a call path for a finding, package-qualifying
// functions declared outside the reported package.
func (w *lockWalker) chainString(chain []*types.Func) string {
	parts := make([]string, len(chain))
	for i, fn := range chain {
		parts[i] = displayName(fn, w.p)
	}
	return strings.Join(parts, " → ")
}

// lockMethodNames are the lock-table method names; a method with one of
// these names on a receiver IS the lock abstraction, so its body is
// exempt from the leak check (the paired release is the sibling method or
// the returned closure).
var lockMethodNames = map[string]bool{
	"Lock": true, "RLock": true, "Unlock": true, "RUnlock": true,
	"Pin": true, "LockAll": true,
}

// reportLeaks flags locks acquired somewhere in the body with no release
// on any path. Releases inside nested function literals count (that is
// the returned-release-closure pattern of LockAll/Pin), as does handing
// the release func to the caller via return. Bodies that implement a
// lock-table method (FileLocks.Lock et al.) are exempt: the paired
// release is by design in a sibling method.
func (w *lockWalker) reportLeaks(fb funcBody) {
	if fb.decl != nil && fb.decl.Recv != nil && lockMethodNames[fb.decl.Name.Name] {
		return
	}
	ast.Inspect(fb.body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.scanClosureReleases(fl)
			return false
		}
		return true
	})
	for key, pos := range w.acquired {
		if w.released[key] || w.releaseCalls[key] {
			continue
		}
		*w.findings = append(*w.findings, w.p.finding("lockorder", pos,
			"%s on %s has no reachable Unlock on any path (no direct call, defer, or release-closure use)",
			w.acquiredFam[key], key))
	}
}

// walkStmts processes a statement list in order, threading the held set.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held *[]heldLock) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func copyHeld(h []heldLock) *[]heldLock {
	c := append([]heldLock(nil), h...)
	return &c
}

// intersectHeld keeps only locks held on every branch.
func intersectHeld(branches ...[]heldLock) []heldLock {
	if len(branches) == 0 {
		return nil
	}
	out := branches[0]
	for _, b := range branches[1:] {
		var next []heldLock
		for _, l := range out {
			for _, m := range b {
				if l.key == m.key && l.method == m.method {
					next = append(next, l)
					break
				}
			}
		}
		out = next
	}
	return out
}

func (w *lockWalker) walkStmt(s ast.Stmt, held *[]heldLock) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		w.walkStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.scanExpr(st.Cond, held)
		b1 := copyHeld(*held)
		w.walkStmt(st.Body, b1)
		b2 := copyHeld(*held)
		if st.Else != nil {
			w.walkStmt(st.Else, b2)
		}
		*held = intersectHeld(*b1, *b2)
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.scanExpr(st.Cond, held)
		}
		body := copyHeld(*held)
		w.walkStmt(st.Body, body)
		if st.Post != nil {
			w.walkStmt(st.Post, body)
		}
		// Assume balanced loop bodies; the leak check still catches an
		// acquire with no release anywhere.
	case *ast.RangeStmt:
		w.scanExpr(st.X, held)
		body := copyHeld(*held)
		w.walkStmt(st.Body, body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Tag != nil {
			w.scanExpr(st.Tag, held)
		}
		w.walkCaseBodies(st.Body, held)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.walkCaseBodies(st.Body, held)
	case *ast.SelectStmt:
		w.walkCaseBodies(st.Body, held)
	case *ast.DeferStmt:
		w.handleDefer(st, held)
	case *ast.GoStmt:
		// The goroutine body is analyzed as an independent funcBody; its
		// argument expressions evaluate here.
		for _, a := range st.Call.Args {
			w.scanExpr(a, held)
		}
	case *ast.AssignStmt:
		w.handleAssign(st, held)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			// Returning the release func (or a closure that releases)
			// hands the obligation to the caller.
			if id, ok := ast.Unparen(r).(*ast.Ident); ok {
				if key, ok := w.releaseVars[id.Name]; ok {
					w.releaseCalls[key] = true
				}
			}
			w.scanExpr(r, held)
		}
	case *ast.ExprStmt:
		w.scanExpr(st.X, held)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, held)
	default:
		inspectShallow(s, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				w.handleCall(call, held)
				return false
			}
			return true
		})
	}
}

func (w *lockWalker) walkCaseBodies(body *ast.BlockStmt, held *[]heldLock) {
	var results [][]heldLock
	hasDefault := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				w.walkStmt(cc.Comm, copyHeld(*held))
			}
			stmts = cc.Body
		}
		b := copyHeld(*held)
		w.walkStmts(stmts, b)
		results = append(results, *b)
	}
	if !hasDefault {
		results = append(results, *held) // fall-through path
	}
	if len(results) > 0 {
		*held = intersectHeld(results...)
	}
}

// handleDefer processes `defer X.Unlock()` / `defer release()` /
// `defer func(){...}()`. A deferred unlock counts as a release for the
// leak check but the lock stays held for ordering purposes (it is held
// until function exit).
func (w *lockWalker) handleDefer(st *ast.DeferStmt, held *[]heldLock) {
	if ev := classifyLockCall(w.p, st.Call); ev != nil {
		if !ev.acquire {
			w.released[ev.key] = true
		} else {
			// `defer mu.Lock()` is almost certainly a typo'd unlock.
			*w.findings = append(*w.findings, w.p.finding("lockorder", st.Pos(),
				"deferred %s on %s acquires at function exit — did you mean Unlock?", ev.method, ev.key))
		}
		return
	}
	switch fun := ast.Unparen(st.Call.Fun).(type) {
	case *ast.Ident:
		if key, ok := w.releaseVars[fun.Name]; ok {
			w.releaseCalls[key] = true
			return
		}
	case *ast.FuncLit:
		// Releases inside the deferred closure count via the closure scan
		// in scanClosureReleases (fileFuncBodies analyzes its order
		// independently).
		w.scanClosureReleases(fun)
		return
	}
	for _, a := range st.Call.Args {
		w.scanExpr(a, held)
	}
}

// scanClosureReleases records Unlock/RUnlock and release-var calls found
// inside a nested function literal of the current body. It deliberately
// records releases only — acquisitions inside the literal are checked
// when the literal is analyzed as its own body.
func (w *lockWalker) scanClosureReleases(fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ev := classifyLockCall(w.p, call); ev != nil && !ev.acquire {
			w.released[ev.key] = true
		} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if key, ok := w.releaseVars[id.Name]; ok {
				w.releaseCalls[key] = true
			}
		}
		return true
	})
}

// handleAssign tracks `release := l.Pin(ids)` style bindings, then scans
// both sides for lock calls.
func (w *lockWalker) handleAssign(st *ast.AssignStmt, held *[]heldLock) {
	if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			if ev := classifyLockCall(w.p, call); ev != nil && ev.releaseFunc {
				w.handleCall(call, held)
				if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					w.releaseVars[id.Name] = ev.key
				} else {
					// Release func discarded: certain leak.
					*w.findings = append(*w.findings, w.p.finding("lockorder", st.Pos(),
						"release func of %s on %s is discarded — the stripes can never be unlocked", ev.method, ev.key))
					w.releaseCalls[ev.key] = true // don't double-report as a leak
				}
				return
			}
		}
	}
	for _, e := range st.Rhs {
		w.scanExpr(e, held)
	}
}

// scanExpr finds lock calls and plain calls inside an expression,
// left-to-right, without entering function literals.
func (w *lockWalker) scanExpr(e ast.Expr, held *[]heldLock) {
	if e == nil {
		return
	}
	inspectShallow(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			w.handleCall(call, held)
			return false
		}
		return true
	})
}

// handleCall is the core transition: classify the call, check ordering,
// update the held set, and apply the one-level call-graph check for
// sibling functions. Nested call arguments are scanned first (they
// evaluate before the outer call).
func (w *lockWalker) handleCall(call *ast.CallExpr, held *[]heldLock) {
	for _, a := range call.Args {
		w.scanExpr(a, held)
	}
	if ev := classifyLockCall(w.p, call); ev != nil {
		w.applyEvent(ev, held)
		return
	}
	// Release-func variable invoked directly: release := Pin(...); release().
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if key, ok := w.releaseVars[id.Name]; ok {
			w.releaseCalls[key] = true
			removeHeld(held, key)
			return
		}
	}
	// Call-graph check: calling anything that (transitively) acquires
	// above a held family is the same inversion, one or more frames
	// removed. Fan-out through interface methods can surface the same
	// family via several chains; report each (site, family pair, held
	// key) once, with the first chain found.
	for _, ca := range w.resolve(call) {
		for _, h := range *held {
			if ca.family < h.family {
				dedupe := fmt.Sprintf("%d|%d|%d|%s", call.Pos(), ca.family, h.family, h.key)
				if w.reported[dedupe] {
					continue
				}
				w.reported[dedupe] = true
				*w.findings = append(*w.findings, w.p.finding("lockorder", call.Pos(),
					"calls %s, which acquires %s (%s) while %s (%s) is held — violates maintMu → FileLocks → ContainerLocks → leaves",
					w.chainString(ca.chain), ca.family, ca.key, h.family, h.key))
			}
		}
	}
	// Evaluate the receiver/base expression too (method chains).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.scanExpr(sel.X, held)
	}
}

func (w *lockWalker) applyEvent(ev *lockEvent, held *[]heldLock) {
	if ev.acquire {
		for _, h := range *held {
			if ev.family < h.family {
				*w.findings = append(*w.findings, w.p.finding("lockorder", ev.pos,
					"acquires %s (%s) while %s (%s) is held — violates maintMu → FileLocks → ContainerLocks → leaves",
					ev.family, ev.key, h.family, h.key))
			}
			// Self-deadlock: re-locking the same mutex expression. Only
			// exact write-lock repeats on plain mutexes are certain; the
			// striped tables take per-ID stripes, so same-receiver repeats
			// there are routine.
			if (ev.family == famLeaf || ev.family == famMaint) &&
				h.key == ev.key && ev.method == "Lock" && h.method == "Lock" {
				*w.findings = append(*w.findings, w.p.finding("lockorder", ev.pos,
					"re-acquires %s already held on this path — self-deadlock", ev.key))
			}
		}
		if _, seen := w.acquired[ev.key]; !seen {
			w.acquired[ev.key] = ev.pos
			w.acquiredFam[ev.key] = ev.family
		}
		*held = append(*held, heldLock{family: ev.family, key: ev.key, method: ev.method})
		if ev.releaseFunc {
			// The paired release is the returned closure; tracked via
			// releaseVars at the assignment site.
		}
	} else {
		w.released[ev.key] = true
		removeHeld(held, ev.key)
	}
}

// removeHeld drops the most recent held entry for key.
func removeHeld(held *[]heldLock, key string) {
	h := *held
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].key == key {
			*held = append(h[:i], h[i+1:]...)
			return
		}
	}
}
