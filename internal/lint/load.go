// Package loading without golang.org/x/tools: slimlint walks the module
// itself, parses each package with go/parser, and type-checks with
// go/types. Imports inside the module resolve recursively through the
// same loader (so fixture packages under testdata/ can import real
// slimstore packages); everything else — the standard library — resolves
// through go/importer's "source" compiler, which type-checks from
// $GOROOT/src and needs no pre-built export data.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis. Test
// files (_test.go) are excluded: the invariants slimlint guards are about
// production paths, and tests legitimately use wall clocks, env vars, and
// ad-hoc contexts.
type Package struct {
	Path  string // import path (module-relative for in-module packages)
	Name  string // package name from the source
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	moduleDir string
	loader    *Loader // back-reference for program construction (call graph)
}

// relPath renders filename relative to the module root, for stable output
// across machines.
func (p *Package) relPath(filename string) string {
	if rel, err := filepath.Rel(p.moduleDir, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// Loader loads and type-checks module packages. It implements
// types.ImporterFrom so packages under analysis can import each other.
type Loader struct {
	ModuleDir  string
	ModulePath string

	fset    *token.FileSet
	byDir   map[string]*Package       // loaded packages, keyed by absolute dir
	byTypes map[*types.Package]*Package // the same packages, keyed by type object
	loading map[string]bool           // import-cycle guard, keyed by absolute dir
	std     types.ImporterFrom        // source importer for out-of-module paths
}

// NewLoader locates the enclosing module from dir (walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImportFrom")
	}
	return &Loader{
		ModuleDir:  root,
		ModulePath: modPath,
		fset:       fset,
		byDir:      map[string]*Package{},
		byTypes:    map[*types.Package]*Package{},
		loading:    map[string]bool{},
		std:        std,
	}, nil
}

// modulePath reads the module directive from a go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load expands patterns ("./...", "dir/...", or plain directories,
// relative to cwd) and returns the matched packages, type-checked.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "/...")
		if root == "." || root == "" {
			root = "."
		}
		if !recursive {
			add(root)
			continue
		}
		absRoot, err := filepath.Abs(root)
		if err != nil {
			return nil, err
		}
		err = filepath.WalkDir(absRoot, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// Skip hidden/tool directories, and testdata unless the walk
			// was explicitly rooted inside it (fixtures are linted by
			// naming them).
			if path != absRoot && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps an absolute in-module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (cached). Returns
// (nil, nil) when dir holds no non-test Go files.
func (l *Loader) loadDir(dir string) (*Package, error) {
	if pkg, ok := l.byDir[dir]; ok {
		return pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			// Mixed-package directory (e.g. main + tool stubs); keep the
			// first package seen, matching go/build's primary package.
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-check %s: %v", importPath, typeErrs[0])
	}
	pkg := &Package{
		Path:      importPath,
		Name:      pkgName,
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		Info:      info,
		moduleDir: l.ModuleDir,
		loader:    l,
	}
	l.byDir[dir] = pkg
	l.byTypes[tpkg] = pkg
	return pkg, nil
}

// packageFor maps a type-checker package object back to the loaded source
// package, or nil for out-of-module (standard library) packages.
func (l *Loader) packageFor(t *types.Package) *Package { return l.byTypes[t] }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal import paths
// load through this loader (from source, recursively); everything else
// defers to the standard library source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
