// poolsafe enforces sync.Pool lifetime discipline over the pooled ingest
// and container hot paths (DESIGN.md §13): once a buffer goes back to
// its pool, any surviving reference is a silent-corruption bug that
// -race cannot see, because the recycle path is fully synchronized.
//
// Per function body, walked path-sensitively (if/switch/select arms are
// analyzed separately — the select-arm ownership transfer of
// lnode.emit is legal and must not cross-contaminate):
//
//   - use after Put: reading an expression (or any extension of it —
//     b.slab after putSlab(b.slab)) that was returned to a pool on this
//     path. Reassignment revives the key;
//   - double Put: returning the same expression to a pool twice on one
//     path, including an explicit Put racing a pending deferred Put;
//   - Put while escaped: a locally-Gotten pooled value stored into a
//     field, global, map, or channel (or handed to a goroutine or a
//     retaining callee) and THEN recycled — the escapee outlives the
//     buffer.
//
// Put-shaped recyclers are recognized transitively through the call
// graph: putBatch(b), putSlab(&b), putBuf(b[:0]), and Store.Release →
// putBuf(c.Data) all count as Puts of the corresponding argument, and
// getBatch/getSlab/getBuf-shaped wrappers around Get mark their result
// pooled. Separately, //slimlint:contract noretain declarations are
// enforced at every implementation via the retention inference in
// retain.go.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func poolSafeAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "poolsafe",
		Doc:  "sync.Pool values must not be used after Put, Put twice, or Put while an alias has escaped; noretain contracts must hold in every implementation",
		Run:  runPoolSafe,
	}
}

func runPoolSafe(pr *program, p *Package) []Finding {
	var findings []Finding
	for _, f := range p.Files {
		for _, fb := range fileFuncBodies(f) {
			pw := &poolWalker{pr: pr, p: p, findings: &findings}
			pw.walkStmts(fb.body.List, newPoolState())
		}
	}

	// Contract enforcement: every function declared (or inheriting, via
	// an implemented interface method) a noretain contract must not
	// retain that parameter.
	for fn, node := range pr.graph.nodes {
		if node.pkg != p {
			continue
		}
		for _, idx := range pr.contractParams(fn) {
			site, ok := pr.retainSummaryOf(fn, 0).retains[idx]
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			name := "?"
			if idx < sig.Params().Len() {
				name = sig.Params().At(idx).Name()
			}
			pos := p.Fset.Position(site.pos)
			findings = append(findings, p.finding("poolsafe", node.decl.Name.Pos(),
				"%s is declared //slimlint:contract noretain %s but retains it — %s at %s:%d",
				displayName(fn, p), name, site.what, p.relPath(pos.Filename), pos.Line))
		}
	}
	return findings
}

// ---------------------------------------------------------------------------
// Pool call classification and function summaries.

// classifyPoolCall reports whether call is sync.Pool.Get or .Put.
func classifyPoolCall(p *Package, call *ast.CallExpr) (method string, ok bool) {
	sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOK {
		return "", false
	}
	m := sel.Sel.Name
	if m != "Get" && m != "Put" {
		return "", false
	}
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", false
	}
	named := namedRecv(s.Recv())
	if named == nil || !isSyncType(named, "Pool") {
		return "", false
	}
	return m, true
}

// isPoolGetExpr reports whether e is (possibly asserted) pool.Get().
func isPoolGetExpr(p *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	m, ok := classifyPoolCall(p, call)
	return ok && m == "Get"
}

// poolSummary is the transitive pool behavior of one function: which
// parameters it returns to a pool, and whether its results come from
// one.
type poolSummary struct {
	putsParams    map[int]bool
	returnsPooled bool
}

// poolSummaryOf computes (memoized, cycle-guarded) fn's pool summary
// through the call graph: putBatch → batchPool.Put(b) makes putBatch a
// recycler of parameter 0; Store.Release → putBuf(c.Data) inherits it
// through the field.
func (pr *program) poolSummaryOf(fn *types.Func, depth int) *poolSummary {
	if s, ok := pr.poolSums[fn]; ok {
		return s
	}
	empty := &poolSummary{putsParams: map[int]bool{}}
	if depth > maxSummaryDepth || pr.poolActive[fn] {
		return empty
	}
	node := pr.graph.nodeFor(fn)
	if node == nil {
		return empty
	}
	pr.poolActive[fn] = true
	p := node.pkg
	sum := &poolSummary{putsParams: map[int]bool{}}

	paramIdx := map[types.Object]int{}
	for i, obj := range paramObjects(p, node.decl) {
		if obj != nil {
			paramIdx[obj] = i
		}
	}
	pooledLocals := map[types.Object]bool{}
	markParamPut := func(arg ast.Expr) {
		if root := rootIdentObject(p, arg); root != nil {
			if i, ok := paramIdx[root]; ok {
				sum.putsParams[i] = true
			}
		}
	}
	inspectShallow(node.decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for k := range st.Lhs {
				id, ok := ast.Unparen(st.Lhs[k]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(p, id)
				if obj == nil {
					continue
				}
				if pr.isPooledSource(p, st.Rhs[k], pooledLocals, depth) {
					pooledLocals[obj] = true
				}
			}
		case *ast.CallExpr:
			if m, ok := classifyPoolCall(p, st); ok {
				if m == "Put" && len(st.Args) == 1 {
					markParamPut(st.Args[0])
				}
				return true
			}
			for _, e := range pr.graph.resolveCall(p, st) {
				cs := pr.poolSummaryOf(e.callee, depth+1)
				for j := range cs.putsParams {
					if j < len(st.Args) {
						markParamPut(st.Args[j])
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if pr.isPooledSource(p, r, pooledLocals, depth) {
					sum.returnsPooled = true
				}
			}
		}
		return true
	})
	delete(pr.poolActive, fn)
	pr.poolSums[fn] = sum
	return sum
}

// isPooledSource reports whether e yields a pool-originated value: a
// direct Get, a call to a returnsPooled function, or a copy/deref of a
// local already known pooled (the getSlab `b := *bp` idiom).
func (pr *program) isPooledSource(p *Package, e ast.Expr, pooledLocals map[types.Object]bool, depth int) bool {
	e = ast.Unparen(e)
	if isPoolGetExpr(p, e) {
		return true
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		for _, edge := range pr.graph.resolveCall(p, x) {
			if pr.poolSummaryOf(edge.callee, depth+1).returnsPooled {
				return true
			}
		}
	case *ast.StarExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			return pooledLocals[objOf(p, id)]
		}
	case *ast.Ident:
		return pooledLocals[objOf(p, x)]
	case *ast.TypeAssertExpr:
		return pr.isPooledSource(p, x.X, pooledLocals, depth)
	}
	return false
}

// ---------------------------------------------------------------------------
// Path-sensitive body walker.

// poolState is one execution path's view of pooled values, keyed by
// normalized expression strings ("b", "b.slab").
type poolState struct {
	pooled     map[string]bool      // locally pool-obtained keys
	dead       map[string]token.Pos // Put already happened on this path
	escaped    map[string]token.Pos // alias escaped on this path
	deferred   map[string]bool      // a deferred Put pends at function exit
	terminated bool                 // path ended in return
}

func newPoolState() *poolState {
	return &poolState{
		pooled:   map[string]bool{},
		dead:     map[string]token.Pos{},
		escaped:  map[string]token.Pos{},
		deferred: map[string]bool{},
	}
}

func (st *poolState) clone() *poolState {
	c := newPoolState()
	for k, v := range st.pooled {
		c.pooled[k] = v
	}
	for k, v := range st.dead {
		c.dead[k] = v
	}
	for k, v := range st.escaped {
		c.escaped[k] = v
	}
	for k, v := range st.deferred {
		c.deferred[k] = v
	}
	c.terminated = st.terminated
	return c
}

// mergeInto unions the non-terminated branch states into dst (a value
// dead or escaped on ANY surviving path stays flagged — the analysis is
// conservative toward reporting).
func mergeInto(dst *poolState, branches ...*poolState) {
	live := 0
	for _, b := range branches {
		if b.terminated {
			continue
		}
		live++
		for k, v := range b.pooled {
			dst.pooled[k] = v
		}
		for k, v := range b.dead {
			dst.dead[k] = v
		}
		for k, v := range b.escaped {
			dst.escaped[k] = v
		}
		for k, v := range b.deferred {
			dst.deferred[k] = v
		}
	}
	if live == 0 && len(branches) > 0 {
		dst.terminated = true
	}
}

// exprKey normalizes an expression to its tracking key: parens, &,
// slice bounds, and type assertions are stripped (Put(&b), Put(b[:0]),
// and Put(b) all target "b").
func exprKey(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return ""
			}
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return types.ExprString(x)
		default:
			return ""
		}
	}
}

// keyExtends reports whether use is k itself or a sub-expression of it
// ("b.slab" extends "b"; "b" does not extend "b.slab").
func keyExtends(use, k string) bool {
	return use == k || strings.HasPrefix(use, k+".") || strings.HasPrefix(use, k+"[")
}

// rootName returns the leading identifier of a key ("b.slab" → "b").
func rootName(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '.' || key[i] == '[' {
			return key[:i]
		}
	}
	return key
}

type poolWalker struct {
	pr       *program
	p        *Package
	findings *[]Finding
}

func (pw *poolWalker) walkStmts(stmts []ast.Stmt, st *poolState) {
	for _, s := range stmts {
		pw.walkStmt(s, st)
	}
}

func (pw *poolWalker) walkStmt(s ast.Stmt, st *poolState) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		pw.walkStmts(x.List, st)
	case *ast.IfStmt:
		if x.Init != nil {
			pw.walkStmt(x.Init, st)
		}
		pw.scanNode(x.Cond, st)
		b1 := st.clone()
		pw.walkStmt(x.Body, b1)
		b2 := st.clone()
		if x.Else != nil {
			pw.walkStmt(x.Else, b2)
		}
		mergeInto(st, b1, b2)
	case *ast.ForStmt:
		if x.Init != nil {
			pw.walkStmt(x.Init, st)
		}
		if x.Cond != nil {
			pw.scanNode(x.Cond, st)
		}
		body := st.clone()
		pw.walkStmt(x.Body, body)
		if x.Post != nil {
			pw.walkStmt(x.Post, body)
		}
		mergeInto(st, body, st.clone()) // loop may run zero times
	case *ast.RangeStmt:
		pw.scanNode(x.X, st)
		body := st.clone()
		// Range variables are rebound every iteration: anything known
		// about their old values is stale inside the body.
		for _, v := range []ast.Expr{x.Key, x.Value} {
			if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
				reviveKey(body, id.Name)
				delete(body.pooled, id.Name)
			}
		}
		pw.walkStmt(x.Body, body)
		mergeInto(st, body, st.clone())
	case *ast.SwitchStmt:
		if x.Init != nil {
			pw.walkStmt(x.Init, st)
		}
		if x.Tag != nil {
			pw.scanNode(x.Tag, st)
		}
		pw.walkCaseBodies(x.Body, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			pw.walkStmt(x.Init, st)
		}
		pw.walkCaseBodies(x.Body, st)
	case *ast.SelectStmt:
		pw.walkCaseBodies(x.Body, st)
	case *ast.DeferStmt:
		pw.handleDefer(x, st)
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			pw.scanNode(a, st)
			if pk := pooledRootKeyOf(st, a); pk != "" {
				st.escaped[pk] = a.Pos()
			}
		}
	case *ast.SendStmt:
		pw.scanNode(x.Value, st)
		if pk := pooledRootKeyOf(st, x.Value); pk != "" {
			st.escaped[pk] = x.Pos()
		}
	case *ast.AssignStmt:
		pw.handleAssign(x, st)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			pw.scanNode(r, st)
			if pk := pooledRootKeyOf(st, r); pk != "" {
				delete(st.pooled, pk) // ownership handed to the caller
			}
		}
		st.terminated = true
	case *ast.ExprStmt:
		pw.scanNode(x.X, st)
	case *ast.LabeledStmt:
		pw.walkStmt(x.Stmt, st)
	default:
		pw.scanNode(s, st)
	}
}

func (pw *poolWalker) walkCaseBodies(body *ast.BlockStmt, st *poolState) {
	var results []*poolState
	hasDefault := false
	for _, c := range body.List {
		b := st.clone()
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				pw.scanNode(e, b)
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				pw.walkStmt(cc.Comm, b)
			}
			stmts = cc.Body
		}
		pw.walkStmts(stmts, b)
		results = append(results, b)
	}
	if !hasDefault {
		results = append(results, st.clone())
	}
	if len(results) > 0 {
		// Start from a clean slate so only branch outcomes survive.
		fresh := newPoolState()
		mergeInto(fresh, results...)
		*st = *fresh
	}
}

// handleDefer treats deferred Puts as pending at exit: a later explicit
// Put of the same key is a double Put.
func (pw *poolWalker) handleDefer(d *ast.DeferStmt, st *poolState) {
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		inspectShallow(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				for _, key := range pw.putKeysOf(call) {
					st.deferred[key] = true
				}
			}
			return true
		})
		return
	}
	keys := pw.putKeysOf(d.Call)
	if len(keys) == 0 {
		for _, a := range d.Call.Args {
			pw.scanNode(a, st)
		}
		return
	}
	for _, key := range keys {
		if first, dead := st.dead[key]; dead {
			pw.report(d.Pos(), "defers a second Put of %s — already returned to its pool at line %d",
				key, pw.p.Fset.Position(first).Line)
			continue
		}
		st.deferred[key] = true
	}
}

// putKeysOf returns the keys call returns to a pool: the argument of a
// direct sync.Pool Put, or the arguments in recycler positions of a
// putBatch-shaped callee.
func (pw *poolWalker) putKeysOf(call *ast.CallExpr) []string {
	if m, ok := classifyPoolCall(pw.p, call); ok {
		if m == "Put" && len(call.Args) == 1 {
			if key := exprKey(call.Args[0]); key != "" {
				return []string{key}
			}
		}
		return nil
	}
	putIdx := map[int]bool{}
	for _, e := range pw.pr.graph.resolveCall(pw.p, call) {
		for j := range pw.pr.poolSummaryOf(e.callee, 0).putsParams {
			putIdx[j] = true
		}
	}
	var keys []string
	for j := range putIdx {
		if j < len(call.Args) {
			if key := exprKey(call.Args[j]); key != "" {
				keys = append(keys, key)
			}
		}
	}
	return keys
}

func (pw *poolWalker) handleAssign(a *ast.AssignStmt, st *poolState) {
	if len(a.Lhs) != len(a.Rhs) {
		for _, r := range a.Rhs {
			pw.scanNode(r, st)
		}
		for _, l := range a.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
				reviveKey(st, id.Name)
				delete(st.pooled, id.Name)
			}
		}
		return
	}
	for k := range a.Lhs {
		lhs := ast.Unparen(a.Lhs[k])
		rhs := a.Rhs[k]
		fromPool := isPoolGetExpr(pw.p, rhs) || pw.callReturnsPooled(rhs)
		if !fromPool {
			pw.scanNode(rhs, st)
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			if obj := objOf(pw.p, id); obj != nil && obj.Parent() == pw.p.Types.Scope() {
				// Assigning into a package-level variable: anything
				// pooled on the right escapes the function.
				if pk := pooledRootKeyOf(st, rhs); pk != "" {
					st.escaped[pk] = a.Pos()
				}
				continue
			}
			reviveKey(st, id.Name)
			if fromPool || pooledRootKeyOf(st, rhs) != "" {
				st.pooled[id.Name] = true
			} else {
				delete(st.pooled, id.Name)
			}
			continue
		}
		// Composite left side: b.slab = x revives "b.slab"; storing a
		// pooled value under a different root is an escape.
		lhsKey := exprKey(lhs)
		if lhsKey != "" {
			reviveKey(st, lhsKey)
		}
		if pk := pooledRootKeyOf(st, rhs); pk != "" && lhsKey != "" && rootName(lhsKey) != pk {
			st.escaped[pk] = a.Pos()
		}
	}
}

// callReturnsPooled reports whether rhs is a call to a returnsPooled
// function (getBatch-shaped wrapper).
func (pw *poolWalker) callReturnsPooled(rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	for _, e := range pw.pr.graph.resolveCall(pw.p, call) {
		if pw.pr.poolSummaryOf(e.callee, 0).returnsPooled {
			return true
		}
	}
	return false
}

// pooledRootKeyOf maps e to the pooled key it is rooted in, or "".
func pooledRootKeyOf(st *poolState, e ast.Expr) string {
	key := exprKey(e)
	if key == "" {
		return ""
	}
	for pk := range st.pooled {
		if keyExtends(key, pk) {
			return pk
		}
	}
	return ""
}

// reviveKey clears dead/escaped/deferred facts for key and everything it
// roots (assigning b revives b and b.slab).
func reviveKey(st *poolState, key string) {
	for _, m := range []map[string]token.Pos{st.dead, st.escaped} {
		for k := range m {
			if keyExtends(k, key) {
				delete(m, k)
			}
		}
	}
	for k := range st.deferred {
		if keyExtends(k, key) {
			delete(st.deferred, k)
		}
	}
}

// scanNode walks an expression (or opaque statement) looking for pool
// operations and uses of dead keys, without entering function literals.
func (pw *poolWalker) scanNode(n ast.Node, st *poolState) {
	if n == nil {
		return
	}
	inspectShallow(n, func(nn ast.Node) bool {
		switch x := nn.(type) {
		case *ast.CallExpr:
			pw.handleCall(x, st)
			return false
		case *ast.SelectorExpr:
			pw.useCheck(types.ExprString(x), x.Pos(), st)
			return true
		case *ast.Ident:
			pw.useCheck(x.Name, x.Pos(), st)
			return true
		}
		return true
	})
}

// useCheck flags a read of a key whose value is back in its pool.
func (pw *poolWalker) useCheck(key string, pos token.Pos, st *poolState) {
	if key == "" {
		return
	}
	for k, putPos := range st.dead {
		if keyExtends(key, k) {
			pw.report(pos, "uses %s after it was returned to its pool at line %d — pooled memory may already be reused",
				key, pw.p.Fset.Position(putPos).Line)
			delete(st.dead, k) // one report per recycled value
			return
		}
	}
}

// handleCall processes one call: pool Put/Get, recognized recyclers,
// retaining callees, then argument scanning.
func (pw *poolWalker) handleCall(call *ast.CallExpr, st *poolState) {
	if m, ok := classifyPoolCall(pw.p, call); ok {
		if m == "Put" && len(call.Args) == 1 {
			pw.handlePut(call.Args[0], call.Pos(), st)
		}
		return
	}

	putIdx := map[int]bool{}
	retainIdx := map[int]bool{}
	for _, e := range pw.pr.graph.resolveCall(pw.p, call) {
		sum := pw.pr.poolSummaryOf(e.callee, 0)
		for j := range sum.putsParams {
			putIdx[j] = true
		}
		rs := pw.pr.retainSummaryOf(e.callee, 0)
		for j := range rs.retains {
			if !pw.pr.contractCovers(e.callee, j) && !sum.putsParams[j] {
				retainIdx[j] = true
			}
		}
	}
	for j, a := range call.Args {
		switch {
		case putIdx[j]:
			pw.handlePut(a, call.Pos(), st)
		default:
			pw.scanNode(a, st)
			if retainIdx[j] {
				if pk := pooledRootKeyOf(st, a); pk != "" {
					st.escaped[pk] = a.Pos()
				}
			}
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		pw.scanNode(sel.X, st)
	}
}

// handlePut applies one Put of arg: double-Put and put-while-escaped
// checks, then the key goes dead on this path.
func (pw *poolWalker) handlePut(arg ast.Expr, pos token.Pos, st *poolState) {
	key := exprKey(arg)
	if key == "" {
		return
	}
	if first, ok := st.dead[key]; ok {
		pw.report(pos, "returns %s to its pool twice on this path — first Put at line %d",
			key, pw.p.Fset.Position(first).Line)
		return
	}
	if st.deferred[key] {
		pw.report(pos, "returns %s to its pool while a deferred Put of it is pending — double Put at function exit", key)
		return
	}
	if esc, ok := st.escaped[key]; ok {
		pw.report(pos, "returns %s to its pool while an alias escaped at line %d — the escapee outlives the recycle",
			key, pw.p.Fset.Position(esc).Line)
		delete(st.escaped, key)
	}
	st.dead[key] = pos
}

func (pw *poolWalker) report(pos token.Pos, format string, args ...any) {
	*pw.findings = append(*pw.findings, pw.p.finding("poolsafe", pos, format, args...))
}
