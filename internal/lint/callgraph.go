// Whole-program call graph: the engine the cross-package analyzers sit
// on. A Run builds one program over the target packages plus every
// in-module package they (transitively) import — all of which the loader
// already parsed and type-checked to satisfy the imports — and a call
// graph whose nodes are the declared functions and methods of those
// packages.
//
// Edges are resolved three ways:
//
//   - static calls (plain functions, concrete methods) through the
//     identifier's type object;
//   - interface method calls through method-set resolution: the callee
//     edge fans out to the matching method of every concrete type the
//     program declares that implements the interface — the over-
//     approximation that makes a `container` helper reached through an
//     `oss.Store` value visible to lockorder;
//   - calls through plain function values stay unresolved (a documented
//     gap; the analyzers treat them conservatively where it matters).
//
// A function's SYNCHRONOUS edge set deliberately excludes two things:
// calls inside nested function literals (each literal is analyzed as a
// body of its own, and whether it ever runs is not this graph's claim)
// and the spawned call of a `go` statement (it runs on another
// goroutine, so it does not execute under the caller's lock set). The
// `go` calls are kept as async edges for the goroutineleak analyzer.
//
// Summary queries over the graph (lock acquisitions, pool recycling,
// parameter retention) are memoized depth-bounded DFS walks — bounded so
// a pathological call chain cannot make the linter super-linear, deep
// enough (maxSummaryDepth) that every real chain in this repository
// resolves.
package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// maxSummaryDepth bounds every transitive summary walk (lock
// acquisitions, retention inference, goroutine join/stop edges). The
// deepest real chain in this tree is 4 frames; 8 leaves headroom without
// letting recursion run away.
const maxSummaryDepth = 8

// program is one analysis scope: the packages findings are reported for,
// plus every in-module dependency those packages can call into.
type program struct {
	targets []*Package
	all     []*Package // targets ∪ transitive in-module imports, sorted by path

	graph *callGraph

	// Program-wide indexes built once and shared by the analyzers.
	closedChans map[types.Object]bool // channel fields/vars passed to close() anywhere
	waitedWGs   map[types.Object]bool // sync.WaitGroup fields/vars with a .Wait() call anywhere

	lockSums   map[*types.Func]*lockSummary
	lockActive map[*types.Func]bool // cycle guard for lock summaries
	poolSums   map[*types.Func]*poolSummary
	poolActive map[*types.Func]bool
	retSums    map[*types.Func]*retainSummary
	retActive  map[*types.Func]bool

	contracts map[*types.Func][]int // fn → noretain parameter indices (receiver = -1)
}

// newProgram collects the transitive in-module closure of pkgs from the
// loader cache and builds the call graph over it.
func newProgram(pkgs []*Package) *program {
	pr := &program{targets: pkgs}
	seen := map[*Package]bool{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		pr.all = append(pr.all, p)
		if p.loader == nil {
			return
		}
		for _, imp := range p.Types.Imports() {
			visit(p.loader.packageFor(imp))
		}
	}
	for _, p := range pkgs {
		visit(p)
	}
	sort.Slice(pr.all, func(i, j int) bool { return pr.all[i].Path < pr.all[j].Path })
	pr.graph = buildCallGraph(pr.all)
	pr.buildSignalIndexes()
	pr.lockSums = map[*types.Func]*lockSummary{}
	pr.lockActive = map[*types.Func]bool{}
	pr.poolSums = map[*types.Func]*poolSummary{}
	pr.poolActive = map[*types.Func]bool{}
	pr.retSums = map[*types.Func]*retainSummary{}
	pr.retActive = map[*types.Func]bool{}
	pr.contracts = parseContracts(pr.all)
	return pr
}

// cgEdge is one resolved call site inside a function body.
type cgEdge struct {
	callee *types.Func
	call   *ast.CallExpr
	async  bool // the spawned call of a `go` statement
	viaIfc bool // resolved through interface method-set fan-out
}

// cgNode is one declared function or method with a body in the program.
type cgNode struct {
	fn    *types.Func
	pkg   *Package
	decl  *ast.FuncDecl
	edges []cgEdge
}

type callGraph struct {
	nodes map[*types.Func]*cgNode
	// implCache memoizes interface-method → concrete-method fan-out.
	implCache map[*types.Func][]*types.Func
	// concrete holds every non-interface named type declared in the
	// program — the "types we instantiate" the method-set resolution
	// considers. ifaces holds the named interface types, for the inverse
	// lookup (contract inheritance).
	concrete []*types.Named
	ifaces   []*types.Named
}

// nodeFor returns the graph node holding fn's body, or nil for functions
// declared outside the program (standard library) or without bodies.
func (g *callGraph) nodeFor(fn *types.Func) *cgNode { return g.nodes[fn] }

func buildCallGraph(all []*Package) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*cgNode{}, implCache: map[*types.Func][]*types.Func{}}

	// Pass 1: nodes for every declared function/method with a body, and
	// the program's concrete named types.
	for _, p := range all {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				switch dd := d.(type) {
				case *ast.FuncDecl:
					if dd.Body == nil {
						continue
					}
					if fn, ok := p.Info.Defs[dd.Name].(*types.Func); ok {
						g.nodes[fn] = &cgNode{fn: fn, pkg: p, decl: dd}
					}
				case *ast.GenDecl:
					for _, spec := range dd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						obj, ok := p.Info.Defs[ts.Name].(*types.TypeName)
						if !ok {
							continue
						}
						named, ok := obj.Type().(*types.Named)
						if !ok {
							continue
						}
						if types.IsInterface(named) {
							g.ifaces = append(g.ifaces, named)
						} else {
							g.concrete = append(g.concrete, named)
						}
					}
				}
			}
		}
	}

	// Pass 2: edges. Calls under a nested FuncLit belong to the literal,
	// not to the declared function; the spawned call of a `go` statement
	// is async.
	for _, n := range g.nodes {
		n.edges = collectEdges(g, n.pkg, n.decl.Body)
	}
	return g
}

// collectEdges walks body shallowly (literals excluded) and resolves
// every call expression, marking `go` spawns async.
func collectEdges(g *callGraph, p *Package, body *ast.BlockStmt) []cgEdge {
	var edges []cgEdge
	var asyncCalls = map[*ast.CallExpr]bool{}
	inspectShallow(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			asyncCalls[gs.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, e := range g.resolveCall(p, call) {
			e.async = asyncCalls[call]
			edges = append(edges, e)
		}
		return true
	})
	return edges
}

// resolveCall maps one call expression to its callee set: one edge for a
// static call, a fan-out for an interface method, nothing for builtins,
// conversions and func-value calls.
func (g *callGraph) resolveCall(p *Package, call *ast.CallExpr) []cgEdge {
	fn := p.calleeFunc(call)
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	recv := sig.Recv()
	if recv == nil || !types.IsInterface(recv.Type()) {
		return []cgEdge{{callee: fn, call: call}}
	}
	// Interface dispatch: fan out to the matching concrete methods.
	edges := []cgEdge{{callee: fn, call: call, viaIfc: true}}
	for _, impl := range g.implsOf(fn) {
		edges = append(edges, cgEdge{callee: impl, call: call, viaIfc: true})
	}
	return edges
}

// implsOf resolves an interface method to the same-named method of every
// program-declared concrete type implementing the interface.
func (g *callGraph) implsOf(ifaceMethod *types.Func) []*types.Func {
	if impls, ok := g.implCache[ifaceMethod]; ok {
		return impls
	}
	var impls []*types.Func
	recv := ifaceMethod.Type().(*types.Signature).Recv()
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if ok {
		for _, named := range g.concrete {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, ifaceMethod.Pkg(), ifaceMethod.Name())
			if m, ok := obj.(*types.Func); ok && g.nodes[m] != nil {
				impls = append(impls, m)
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].FullName() < impls[j].FullName() })
	g.implCache[ifaceMethod] = impls
	return impls
}

// interfaceMethodsOf returns the program interface methods a concrete
// method implements — the inverse of implsOf, used to inherit noretain
// contracts declared on interfaces (oss.Store.Put) down to every
// implementation.
func (g *callGraph) interfaceMethodsOf(fn *types.Func) []*types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	recvT := sig.Recv().Type()
	var out []*types.Func
	for _, named := range g.ifaces {
		iface, ok := named.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		if !types.Implements(recvT, iface) && !types.Implements(types.NewPointer(recvT), iface) {
			continue
		}
		for i := 0; i < iface.NumExplicitMethods(); i++ {
			m := iface.ExplicitMethod(i)
			if m.Name() == fn.Name() {
				out = append(out, m)
			}
		}
	}
	return out
}

// buildSignalIndexes records, program-wide, which channel objects are
// ever closed and which WaitGroup objects are ever waited on. Object
// identity (the *types.Var of the field or variable) is the key, so
// `close(p.jobs)` in one method pairs with `range p.jobs` in another —
// across packages when the field is exported.
func (pr *program) buildSignalIndexes() {
	pr.closedChans = map[types.Object]bool{}
	pr.waitedWGs = map[types.Object]bool{}
	for _, p := range pr.all {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					if fun.Name == "close" && len(call.Args) == 1 {
						if _, isBuiltin := p.Info.Uses[fun].(*types.Builtin); isBuiltin {
							if obj := p.baseObject(call.Args[0]); obj != nil {
								pr.closedChans[obj] = true
							}
						}
					}
				case *ast.SelectorExpr:
					if fun.Sel.Name == "Wait" {
						if s := p.Info.Selections[fun]; s != nil && s.Kind() == types.MethodVal {
							if named := namedRecv(s.Recv()); named != nil && isSyncType(named, "WaitGroup") {
								if obj := p.baseObject(fun.X); obj != nil {
									pr.waitedWGs[obj] = true
								}
							}
						}
					}
				}
				return true
			})
		}
	}
}

// isSyncType reports whether n is sync.<name>.
func isSyncType(n *types.Named, name string) bool {
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// baseObject resolves the variable or field object an expression is
// rooted at: `p.jobs` → the jobs field var, `stop` → the stop var.
// Returns nil for expressions with no stable object (map index, call
// result).
func (p *Package) baseObject(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := p.Info.Uses[x]; obj != nil {
			return obj
		}
		return p.Info.Defs[x]
	case *ast.SelectorExpr:
		if s := p.Info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		if obj := p.Info.Uses[x.Sel]; obj != nil {
			return obj
		}
	case *ast.UnaryExpr:
		return p.baseObject(x.X)
	}
	return nil
}

// displayName renders fn for findings: the bare name within the reported
// package (matching how the code at the call site reads), qualified as
// pkg.Recv.Method for anything declared elsewhere.
func displayName(fn *types.Func, from *Package) string {
	name := fn.Name()
	if fn.Pkg() == nil || from == nil || fn.Pkg() == from.Types {
		return name
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedRecv(sig.Recv().Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	return fn.Pkg().Name() + "." + name
}
