package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from current analyzer output:
//
//	go test ./internal/lint -run TestFixtureGoldens -update
var update = flag.Bool("update", false, "rewrite golden files")

// newTestLoader builds one loader rooted at the repository; fixtures
// share it so the module dependencies (oss, core, …) type-check once.
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func lintFixture(t *testing.T, l *Loader, name string) []Finding {
	t.Helper()
	pkgs, err := l.Load([]string{filepath.Join("testdata", "src", name)})
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", name, len(pkgs))
	}
	return Run(pkgs)
}

// TestFixtureGoldens pins the exact findings (positions and messages) for
// every positive fixture package, one golden file per analyzer's fixture.
func TestFixtureGoldens(t *testing.T) {
	l := newTestLoader(t)
	for _, name := range []string{"lockorder_bad", "lnode", "errdisc_bad", "ctxflow_bad"} {
		t.Run(name, func(t *testing.T) {
			findings := lintFixture(t, l, name)
			if len(findings) == 0 {
				t.Fatalf("%s: fixture produced no findings — the gate would pass bad code", name)
			}
			var buf bytes.Buffer
			WriteHuman(&buf, findings)
			golden := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("findings diverge from golden %s:\n--- got\n%s--- want\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}

// TestNegativeFixtures: the all-correct package and the fully-suppressed
// package must both be clean — the suppression syntax in both its forms
// (line above, same line) actually suppresses.
func TestNegativeFixtures(t *testing.T) {
	l := newTestLoader(t)
	for _, name := range []string{"clean", "suppress_ok"} {
		if findings := lintFixture(t, l, name); len(findings) != 0 {
			var buf bytes.Buffer
			WriteHuman(&buf, findings)
			t.Errorf("%s: want 0 findings, got:\n%s", name, buf.String())
		}
	}
}

// TestSpecificInvariants pins the two acceptance-critical detections
// independently of golden formatting: lockorder must flag the synthetic
// ContainerLocks-before-FileLocks acquisition, and determinism must flag
// the synthetic time.Now in the lnode fixture.
func TestSpecificInvariants(t *testing.T) {
	l := newTestLoader(t)

	lockFindings := lintFixture(t, l, "lockorder_bad")
	if !hasFinding(lockFindings, "lockorder", "acquires FileLocks") {
		t.Error("lockorder did not flag the ContainerLocks-before-FileLocks inversion")
	}
	if !hasFinding(lockFindings, "lockorder", "calls lockFile") {
		t.Error("lockorder did not see through the one-level call graph")
	}
	if !hasFinding(lockFindings, "lockorder", "no reachable Unlock") {
		t.Error("lockorder did not flag the leaked Lock")
	}

	detFindings := lintFixture(t, l, "lnode")
	if !hasFinding(detFindings, "determinism", "time.Now") {
		t.Error("determinism did not flag time.Now in the lnode fixture")
	}
	if !hasFinding(detFindings, "determinism", "map iteration") {
		t.Error("determinism did not flag map iteration flowing into output")
	}
}

func hasFinding(fs []Finding, analyzer, substr string) bool {
	for _, f := range fs {
		if f.Analyzer == analyzer && strings.Contains(f.Message, substr) {
			return true
		}
	}
	return false
}

// TestInsertSuppressions checks -fix=suppress mechanics: one stub per
// (line, analyzer), inserted above the finding with matching indentation,
// carrying a TODO reason that satisfies the directive grammar.
func TestInsertSuppressions(t *testing.T) {
	l := newTestLoader(t)
	findings := lintFixture(t, l, "ctxflow_bad")
	edited, err := InsertSuppressions(l.ModuleDir, findings)
	if err != nil {
		t.Fatal(err)
	}
	rel := "internal/lint/testdata/src/ctxflow_bad/ctxflow_bad.go"
	content, ok := edited[rel]
	if !ok {
		t.Fatalf("no edit for %s (have %v)", rel, keys(edited))
	}
	got := strings.Count(string(content), "//slimlint:ignore ctxflow TODO(triage):")
	if got != len(findings) {
		t.Fatalf("inserted %d stubs, want %d", got, len(findings))
	}
	// Indentation must match the flagged line: the `return context…` sites
	// are tab-indented, so their stubs must be too.
	if !strings.Contains(string(content), "\t//slimlint:ignore ctxflow TODO(triage):") {
		t.Error("stub not indented to match the flagged line")
	}
	// The original file on disk must be untouched (the CLI decides when
	// to write).
	onDisk, err := os.ReadFile(filepath.Join(l.ModuleDir, rel))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(onDisk), "TODO(triage)") {
		t.Error("InsertSuppressions wrote to disk; it must only return content")
	}
}

func keys[V any](m map[string]V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSuppressionHygiene: unused and unknown-analyzer directives are
// findings too — a stale excuse must not silently linger.
func TestSuppressionHygiene(t *testing.T) {
	dir := t.TempDir()
	src := `package clean

// an unused excuse:
//slimlint:ignore determinism this line has no finding to excuse

// an unknown analyzer:
//slimlint:ignore nosuchthing reason text
var X = 1
`
	writeTempModulePkg(t, dir, "hygiene", src)
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{filepath.Join(dir, "hygiene")})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs)
	if !hasFinding(findings, "suppression", "unused determinism suppression") {
		t.Errorf("unused directive not reported; got %v", findings)
	}
	if !hasFinding(findings, "suppression", `unknown analyzer "nosuchthing"`) {
		t.Errorf("unknown analyzer not reported; got %v", findings)
	}
}

// writeTempModulePkg lays out a throwaway module with one package so
// loader tests don't depend on the repository tree.
func writeTempModulePkg(t *testing.T, moduleDir, pkg, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(moduleDir, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(moduleDir, pkg), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(moduleDir, pkg, pkg+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTreeIsClean dogfoods the gate from go test: the repository itself
// must carry zero findings. scripts/check.sh also runs the CLI form, but
// failing here keeps `go test ./...` sufficient to catch a regression.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is a few seconds; skipped in -short")
	}
	l := newTestLoader(t)
	pkgs, err := l.Load([]string{l.ModuleDir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from the module — the walker lost most of the tree", len(pkgs))
	}
	findings := Run(pkgs)
	if len(findings) != 0 {
		var buf bytes.Buffer
		WriteHuman(&buf, findings)
		t.Errorf("the tree has slimlint findings:\n%s", buf.String())
	}
}

// TestJSONShape pins the artifact schema CI uploads.
func TestJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty findings must encode as [], got %q", buf.String())
	}
	buf.Reset()
	fs := []Finding{{Analyzer: "ctxflow", File: "a/b.go", Line: 3, Col: 9, Message: "m"}}
	if err := WriteJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"analyzer": "ctxflow"`, `"file": "a/b.go"`, `"line": 3`, `"col": 9`, `"message": "m"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, buf.String())
		}
	}
	_ = fmt.Sprint // keep fmt linked for future debugging helpers
}
