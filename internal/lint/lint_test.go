package lint

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden files from current analyzer output:
//
//	go test ./internal/lint -run TestFixtureGoldens -update
var update = flag.Bool("update", false, "rewrite golden files")

// newTestLoader builds one loader rooted at the repository; fixtures
// share it so the module dependencies (oss, core, …) type-check once.
func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func loadFixture(t *testing.T, l *Loader, name string) []*Package {
	t.Helper()
	pkgs, err := l.Load([]string{filepath.Join("testdata", "src", name)})
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs
}

func lintFixture(t *testing.T, l *Loader, name string) []Finding {
	t.Helper()
	return Run(loadFixture(t, l, name))
}

// TestFixtureGoldens pins the exact findings (positions and messages) for
// every positive fixture package, one golden file per analyzer's fixture.
func TestFixtureGoldens(t *testing.T) {
	l := newTestLoader(t)
	for _, name := range []string{
		"lockorder_bad", "lnode", "errdisc_bad", "ctxflow_bad",
		"poolsafe_bad", "goroutineleak_bad", "xlock_bad", "oss_retry",
	} {
		t.Run(name, func(t *testing.T) {
			findings := lintFixture(t, l, name)
			if len(findings) == 0 {
				t.Fatalf("%s: fixture produced no findings — the gate would pass bad code", name)
			}
			var buf bytes.Buffer
			WriteHuman(&buf, findings)
			golden := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("findings diverge from golden %s:\n--- got\n%s--- want\n%s", golden, buf.Bytes(), want)
			}
		})
	}
}

// TestNegativeFixtures: the all-correct package and the fully-suppressed
// package must both be clean — the suppression syntax in both its forms
// (line above, same line) actually suppresses.
func TestNegativeFixtures(t *testing.T) {
	l := newTestLoader(t)
	for _, name := range []string{"clean", "suppress_ok"} {
		if findings := lintFixture(t, l, name); len(findings) != 0 {
			var buf bytes.Buffer
			WriteHuman(&buf, findings)
			t.Errorf("%s: want 0 findings, got:\n%s", name, buf.String())
		}
	}
}

// TestSpecificInvariants pins the two acceptance-critical detections
// independently of golden formatting: lockorder must flag the synthetic
// ContainerLocks-before-FileLocks acquisition, and determinism must flag
// the synthetic time.Now in the lnode fixture.
func TestSpecificInvariants(t *testing.T) {
	l := newTestLoader(t)

	lockFindings := lintFixture(t, l, "lockorder_bad")
	if !hasFinding(lockFindings, "lockorder", "acquires FileLocks") {
		t.Error("lockorder did not flag the ContainerLocks-before-FileLocks inversion")
	}
	if !hasFinding(lockFindings, "lockorder", "calls lockFile") {
		t.Error("lockorder did not see through the one-level call graph")
	}
	if !hasFinding(lockFindings, "lockorder", "no reachable Unlock") {
		t.Error("lockorder did not flag the leaked Lock")
	}

	detFindings := lintFixture(t, l, "lnode")
	if !hasFinding(detFindings, "determinism", "time.Now") {
		t.Error("determinism did not flag time.Now in the lnode fixture")
	}
	if !hasFinding(detFindings, "determinism", "map iteration") {
		t.Error("determinism did not flag map iteration flowing into output")
	}

	// The PR 4 retry-jitter bug, replayed in a package named oss, must
	// still be caught: wall-clock seeding inside a charged package.
	retryFindings := lintFixture(t, l, "oss_retry")
	if !hasFinding(retryFindings, "determinism", "time.Now in simclock-charged package oss") {
		t.Error("determinism did not flag the historical oss retry-jitter wall-clock seed")
	}

	poolFindings := lintFixture(t, l, "poolsafe_bad")
	for _, substr := range []string{
		"after it was returned to its pool",
		"twice on this path",
		"while an alias escaped",
		"while a deferred Put of it is pending",
		"declared //slimlint:contract noretain data but retains it",
	} {
		if !hasFinding(poolFindings, "poolsafe", substr) {
			t.Errorf("poolsafe did not produce a finding containing %q", substr)
		}
	}

	// The pre-PR-5 prefetcher feeder — unconditional sends, no stop
	// select, never joined — must be flagged; the Done/close/stop-chan
	// goroutines around it must not be.
	leakFindings := lintFixture(t, l, "goroutineleak_bad")
	var leaks int
	for _, f := range leakFindings {
		if f.Analyzer == "goroutineleak" {
			leaks++
		}
	}
	if leaks != 2 {
		t.Errorf("goroutineleak found %d leaks in goroutineleak_bad, want exactly 2 (feeder and tick)", leaks)
	}
}

// TestCrossPackageInversion is the acceptance proof for the call-graph
// rebase: the seeded FileLocks-under-ContainerLocks inversion in
// xlock_bad routes through the xlock_dep package, so the legacy
// one-level, same-package engine misses it entirely while the
// whole-program engine reports both call chains.
func TestCrossPackageInversion(t *testing.T) {
	l := newTestLoader(t)
	pkgs := loadFixture(t, l, "xlock_bad")

	legacy := lockOrderLegacyFindings(pkgs[0])
	for _, f := range legacy {
		if strings.Contains(f.Message, "is held") {
			t.Fatalf("legacy engine unexpectedly caught the cross-package inversion: %s", f.Message)
		}
	}

	findings := Run(pkgs)
	if !hasFinding(findings, "lockorder", "calls xlock_dep.TouchFile, which acquires FileLocks") {
		t.Error("call-graph engine missed the one-frame cross-package inversion")
	}
	if !hasFinding(findings, "lockorder", "calls xlock_dep.TouchViaHelper → xlock_dep.TouchFile") {
		t.Error("call-graph engine missed the two-frame cross-package inversion chain")
	}
}

// TestRunSelected pins -only semantics: deselected analyzers neither
// run nor have their suppressions judged stale, and the stats always
// carry the shared callgraph row.
func TestRunSelected(t *testing.T) {
	l := newTestLoader(t)
	pkgs := loadFixture(t, l, "suppress_ok")

	// suppress_ok carries errdiscipline and ctxflow directives. With only
	// goroutineleak active, those directives must be ignored — neither
	// suppressing anything nor reported as unused.
	findings, stats := RunSelected(pkgs, []string{"goroutineleak"})
	if len(findings) != 0 {
		t.Errorf("-only goroutineleak on suppress_ok: want 0 findings, got %v", findings)
	}
	var sawCallgraph, sawGoroutineleak, sawErrdiscipline bool
	for _, s := range stats {
		switch s.Analyzer {
		case "callgraph":
			sawCallgraph = true
		case "goroutineleak":
			sawGoroutineleak = true
		case "errdiscipline":
			sawErrdiscipline = true
		}
	}
	if !sawCallgraph || !sawGoroutineleak {
		t.Errorf("stats missing expected rows (callgraph=%v goroutineleak=%v): %v", sawCallgraph, sawGoroutineleak, stats)
	}
	if sawErrdiscipline {
		t.Errorf("stats carry a row for the deselected errdiscipline analyzer: %v", stats)
	}

	// With errdiscipline active again the same directives must suppress.
	findings, _ = RunSelected(pkgs, []string{"errdiscipline", "ctxflow"})
	if len(findings) != 0 {
		t.Errorf("-only errdiscipline,ctxflow on suppress_ok: want 0 findings, got %v", findings)
	}
}

func hasFinding(fs []Finding, analyzer, substr string) bool {
	for _, f := range fs {
		if f.Analyzer == analyzer && strings.Contains(f.Message, substr) {
			return true
		}
	}
	return false
}

// TestInsertSuppressions checks -fix=suppress mechanics: one stub per
// (line, analyzer), inserted above the finding with matching indentation,
// carrying a TODO reason that satisfies the directive grammar.
func TestInsertSuppressions(t *testing.T) {
	l := newTestLoader(t)
	findings := lintFixture(t, l, "ctxflow_bad")
	edited, err := InsertSuppressions(l.ModuleDir, findings)
	if err != nil {
		t.Fatal(err)
	}
	rel := "internal/lint/testdata/src/ctxflow_bad/ctxflow_bad.go"
	content, ok := edited[rel]
	if !ok {
		t.Fatalf("no edit for %s (have %v)", rel, keys(edited))
	}
	got := strings.Count(string(content), "//slimlint:ignore ctxflow TODO(triage):")
	if got != len(findings) {
		t.Fatalf("inserted %d stubs, want %d", got, len(findings))
	}
	// Indentation must match the flagged line: the `return context…` sites
	// are tab-indented, so their stubs must be too.
	if !strings.Contains(string(content), "\t//slimlint:ignore ctxflow TODO(triage):") {
		t.Error("stub not indented to match the flagged line")
	}
	// The original file on disk must be untouched (the CLI decides when
	// to write).
	onDisk, err := os.ReadFile(filepath.Join(l.ModuleDir, rel))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(onDisk), "TODO(triage)") {
		t.Error("InsertSuppressions wrote to disk; it must only return content")
	}
}

func keys[V any](m map[string]V) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSuppressionHygiene: unused and unknown-analyzer directives are
// findings too — a stale excuse must not silently linger.
func TestSuppressionHygiene(t *testing.T) {
	dir := t.TempDir()
	src := `package clean

// an unused excuse:
//slimlint:ignore determinism this line has no finding to excuse

// an unknown analyzer:
//slimlint:ignore nosuchthing reason text
var X = 1
`
	writeTempModulePkg(t, dir, "hygiene", src)
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load([]string{filepath.Join(dir, "hygiene")})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs)
	if !hasFinding(findings, "suppression", "unused determinism suppression") {
		t.Errorf("unused directive not reported; got %v", findings)
	}
	if !hasFinding(findings, "suppression", `unknown analyzer "nosuchthing"`) {
		t.Errorf("unknown analyzer not reported; got %v", findings)
	}
}

// writeTempModulePkg lays out a throwaway module with one package so
// loader tests don't depend on the repository tree.
func writeTempModulePkg(t *testing.T, moduleDir, pkg, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(moduleDir, "go.mod"), []byte("module tmpmod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(moduleDir, pkg), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(moduleDir, pkg, pkg+".go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestTreeIsClean dogfoods the gate from go test: the repository itself
// must carry zero findings. scripts/check.sh also runs the CLI form, but
// failing here keeps `go test ./...` sufficient to catch a regression.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is a few seconds; skipped in -short")
	}
	l := newTestLoader(t)
	pkgs, err := l.Load([]string{l.ModuleDir + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from the module — the walker lost most of the tree", len(pkgs))
	}
	findings := Run(pkgs)
	if len(findings) != 0 {
		var buf bytes.Buffer
		WriteHuman(&buf, findings)
		t.Errorf("the tree has slimlint findings:\n%s", buf.String())
	}
}

// TestJSONShape pins the artifact schema CI uploads.
func TestJSONShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty findings must encode as [], got %q", buf.String())
	}
	buf.Reset()
	fs := []Finding{{Analyzer: "ctxflow", File: "a/b.go", Line: 3, Col: 9, Message: "m"}}
	if err := WriteJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"analyzer": "ctxflow"`, `"file": "a/b.go"`, `"line": 3`, `"col": 9`, `"message": "m"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %s:\n%s", want, buf.String())
		}
	}
	_ = fmt.Sprint // keep fmt linked for future debugging helpers
}
