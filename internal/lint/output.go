// Rendering: the human form is one finding per line in the conventional
// file:line:col layout editors hyperlink, grouped under a diff-style
// per-file header; the JSON form is a stable machine-readable array that
// CI uploads as an artifact.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// WriteHuman renders findings grouped by file with a trailing count.
func WriteHuman(w io.Writer, findings []Finding) {
	lastFile := ""
	for _, f := range findings {
		if f.File != lastFile {
			fmt.Fprintf(w, "--- %s\n", f.File)
			lastFile = f.File
		}
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(w, "\nslimlint: %d finding(s)\n", len(findings))
	}
}

// WriteJSON renders findings as a JSON array (never null: an empty run is
// `[]`, so artifact consumers need no special case).
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// WriteStats renders the per-analyzer accounting table: findings and
// wall time per analyzer, call-graph construction, and the total.
func WriteStats(w io.Writer, stats []Stat) {
	var total time.Duration
	fmt.Fprintf(w, "%-14s %9s %12s\n", "analyzer", "findings", "elapsed")
	for _, s := range stats {
		total += s.Elapsed
		fmt.Fprintf(w, "%-14s %9d %12s\n", s.Analyzer, s.Findings, s.Elapsed.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "%-14s %9s %12s\n", "total", "", total.Round(time.Millisecond))
}
