// Rendering: the human form is one finding per line in the conventional
// file:line:col layout editors hyperlink, grouped under a diff-style
// per-file header; the JSON form is a stable machine-readable array that
// CI uploads as an artifact.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteHuman renders findings grouped by file with a trailing count.
func WriteHuman(w io.Writer, findings []Finding) {
	lastFile := ""
	for _, f := range findings {
		if f.File != lastFile {
			fmt.Fprintf(w, "--- %s\n", f.File)
			lastFile = f.File
		}
		fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(w, "\nslimlint: %d finding(s)\n", len(findings))
	}
}

// WriteJSON renders findings as a JSON array (never null: an empty run is
// `[]`, so artifact consumers need no special case).
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
