// goroutineleak flags `go` statements whose goroutine has no reachable
// join or stop edge — the analyzer-shaped version of the pre-PR-5 cache
// prefetcher bug, where a feeder goroutine blocked forever on a
// semaphore send after its workers died.
//
// A goroutine is considered bounded if its body — or anything it calls
// synchronously, resolved through the program call graph up to
// maxSummaryDepth frames — contains at least one of:
//
//   - a WaitGroup join edge: a .Done() on a sync.WaitGroup object that
//     some code, anywhere in the program, .Wait()s on (object identity:
//     the field or variable, so p.wg pairs across methods and
//     packages);
//   - a stop edge: a receive from, or range over, a channel object that
//     some code, anywhere in the program, close()s — the worker-pool
//     `for j := range p.jobs` + `close(p.jobs)` idiom, and the
//     `select { case <-p.stop: }` cancellation idiom;
//   - a context stop edge: a receive from ctx.Done().
//
// Sends are deliberately NOT edges: the broken prefetcher's feeder also
// ended with close(p.jobs), but on the error path it parked forever on
// an unconditional `p.sem <-` send first. Only signals the goroutine
// OBSERVES bound its lifetime.
//
// Package main is exempt: examples and commands own the process, and
// process exit reaps everything.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func goroutineLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutineleak",
		Doc:  "every go statement needs a reachable join or stop edge: a Done on a Waited WaitGroup, a receive/range over an ever-closed channel, or ctx.Done",
		Run:  runGoroutineLeak,
	}
}

func runGoroutineLeak(pr *program, p *Package) []Finding {
	if p.Name == "main" {
		return nil
	}
	var findings []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !pr.goroutineHasExit(p, gs) {
				findings = append(findings, p.finding("goroutineleak", gs.Pos(),
					"goroutine has no reachable join or stop edge (no Done on a Waited WaitGroup, no receive from an ever-closed channel, no ctx.Done) — it can leak"))
			}
			return true
		})
	}
	return findings
}

// goroutineHasExit resolves the spawned body (function literal or
// declared callee, with interface fan-out) and scans it for an exit
// edge.
func (pr *program) goroutineHasExit(p *Package, gs *ast.GoStmt) bool {
	visited := map[*types.Func]bool{}
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return pr.scanForExit(p, lit.Body, visited, 0)
	}
	for _, e := range pr.graph.resolveCall(p, gs.Call) {
		node := pr.graph.nodeFor(e.callee)
		if node == nil {
			continue
		}
		visited[e.callee] = true
		if pr.scanForExit(node.pkg, node.decl.Body, visited, 0) {
			return true
		}
	}
	return false
}

// scanForExit looks for a join/stop edge anywhere in body, including
// nested literals (deferred closures run on this goroutine) but
// excluding the spawned bodies of further `go` statements (those run on
// OTHER goroutines and bound their own lifetimes), and recursing into
// synchronously called program functions.
func (pr *program) scanForExit(p *Package, body *ast.BlockStmt, visited map[*types.Func]bool, depth int) bool {
	found := false
	spawned := map[ast.Node]bool{} // FuncLits and calls under nested go statements
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			spawned[x.Call] = true
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				spawned[lit] = true
			}
		case *ast.FuncLit:
			if spawned[x] {
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && pr.isExitRecv(p, x.X) {
				found = true
			}
		case *ast.RangeStmt:
			if obj := p.baseObject(x.X); obj != nil && pr.closedChans[obj] {
				found = true
			}
		case *ast.CallExpr:
			if spawned[x] {
				return true // args still walked; the callee runs elsewhere
			}
			if pr.isJoinCall(p, x) {
				found = true
				return false
			}
			if depth < maxSummaryDepth {
				for _, e := range pr.graph.resolveCall(p, x) {
					if visited[e.callee] {
						continue
					}
					visited[e.callee] = true
					node := pr.graph.nodeFor(e.callee)
					if node != nil && pr.scanForExit(node.pkg, node.decl.Body, visited, depth+1) {
						found = true
						return false
					}
				}
			}
		}
		return !found
	})
	return found
}

// isExitRecv reports whether receiving from ch is a stop edge: the
// channel object is closed somewhere in the program, or ch is
// ctx.Done().
func (pr *program) isExitRecv(p *Package, ch ast.Expr) bool {
	if call, ok := ast.Unparen(ch).(*ast.CallExpr); ok {
		fn := p.calleeFunc(call)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" && fn.Name() == "Done"
	}
	obj := p.baseObject(ch)
	return obj != nil && pr.closedChans[obj]
}

// isJoinCall reports whether call is .Done() on a WaitGroup object that
// the program Wait()s on.
func (pr *program) isJoinCall(p *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	named := namedRecv(s.Recv())
	if named == nil || !isSyncType(named, "WaitGroup") {
		return false
	}
	obj := p.baseObject(sel.X)
	return obj != nil && pr.waitedWGs[obj]
}
