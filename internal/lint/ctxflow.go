// ctxflow enforces context plumbing discipline: cancellation roots belong
// to process entry points. Outside package main (tests are never loaded),
// minting context.Background() or context.TODO() severs the caller's
// cancellation chain — a job submitted with a deadline would run a
// sub-operation that can never be cancelled. Inside a function that
// already receives a ctx the finding is sharper: the received ctx (or a
// context derived from it) is the one to forward.
package lint

import (
	"go/ast"
	"go/types"
)

func ctxFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "no context.Background()/TODO() outside package main; a received ctx must be the one forwarded",
		Run:  runCtxFlow,
	}
}

func runCtxFlow(_ *program, p *Package) []Finding {
	if p.Name == "main" {
		return nil
	}
	var findings []Finding
	for _, f := range p.Files {
		for _, fb := range fileFuncBodies(f) {
			hasCtx := funcHasCtxParam(p, fb.typ)
			inspectShallow(fb.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg := p.pkgNameOf(sel.X)
				if pkg == nil || pkg.Path() != "context" {
					return true
				}
				name := sel.Sel.Name
				if name != "Background" && name != "TODO" {
					return true
				}
				if hasCtx {
					findings = append(findings, p.finding("ctxflow", call.Pos(),
						"context.%s() inside a function that receives a ctx — forward the received ctx (or a context derived from it)", name))
				} else {
					findings = append(findings, p.finding("ctxflow", call.Pos(),
						"context.%s() outside package main — accept a ctx parameter and let the entry point own the root context", name))
				}
				return true
			})
		}
	}
	return findings
}

// funcHasCtxParam reports whether the function signature includes a
// context.Context parameter.
func funcHasCtxParam(p *Package, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok {
			continue
		}
		if named, ok := tv.Type.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}
