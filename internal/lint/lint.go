// Package lint is slimlint: a project-invariant static analyzer for this
// repository. The concurrency and determinism rules the system stakes its
// correctness on — the acyclic lock hierarchy of DESIGN.md §7, the
// virtual-time determinism contract of internal/simclock, the error
// discipline of the storage layer — live in prose and in whichever tests
// happen to exercise the bad interleaving. slimlint checks them at
// compile time, over plain go/ast + go/types (no x/tools), so a refactor
// that silently inverts a lock order or sneaks wall-clock time into a
// charged path fails the gate instead of surfacing later under -race.
//
// Analyzers (see DESIGN.md §9 for the invariant each one guards):
//
//   - lockorder: Lock/RLock acquisitions must respect
//     maintMu → FileLocks → ContainerLocks → leaf mutexes, including
//     through one level of intra-package calls; a Lock must have a
//     reachable Unlock (directly, deferred, or via a returned release
//     closure).
//   - determinism: no time.Now, global math/rand, or os.Getenv inside
//     simclock-charged packages (lnode, gnode, oss, jobs, bench), and no
//     map iteration flowing into encoded output without a sort.
//   - errdiscipline: no discarded error results from the oss, kvstore,
//     journal, or container APIs; `_ =` needs a //slimlint:ignore with a
//     reason.
//   - ctxflow: no context.Background()/TODO() outside package main and
//     tests; a function that receives a ctx forwards that ctx.
//
// Findings are suppressed line-by-line with
//
//	//slimlint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it. The reason is mandatory: a
// bare ignore is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one rule violation at a position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative path
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one named rule set run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Finding
}

// Analyzers returns the full suite, in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		lockOrderAnalyzer(),
		determinismAnalyzer(),
		errDisciplineAnalyzer(),
		ctxFlowAnalyzer(),
	}
}

// Run executes every analyzer over pkgs, applies //slimlint:ignore
// suppressions, and returns the surviving findings sorted by position.
// Invalid directives (missing reason) and unused directives are reported
// as findings of the synthetic "suppression" analyzer.
func Run(pkgs []*Package) []Finding {
	var all []Finding
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			all = append(all, a.Run(pkg)...)
		}
	}
	all = applySuppressions(pkgs, all)
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		if all[i].Col != all[j].Col {
			return all[i].Col < all[j].Col
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all
}

// finding builds a Finding at pos within pkg.
func (p *Package) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	position := p.Fset.Position(pos)
	return Finding{
		Analyzer: analyzer,
		File:     p.relPath(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers used by several analyzers.

// pkgNameOf resolves a selector base like `time` in `time.Now` to the
// imported package it names, or nil if the base is not a package
// qualifier.
func (p *Package) pkgNameOf(e ast.Expr) *types.Package {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}

// namedRecv dereferences pointers and returns the named type of t, or nil.
func namedRecv(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// calleeFunc resolves the *types.Func a call invokes (plain function or
// method), or nil for builtins, conversions, and indirect calls through
// function values.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// enclosingFuncs yields every function body in the file: declared
// functions and methods plus each function literal, paired with the
// parameter list in scope for it. Literals are visited as independent
// bodies: a goroutine or deferred closure does not inherit the lock/ctx
// state of its lexical parent, and treating them separately keeps the
// analyzers conservative.
type funcBody struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	typ  *ast.FuncType
	body *ast.BlockStmt
}

func fileFuncBodies(f *ast.File) []funcBody {
	var out []funcBody
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcBody{decl: fd, typ: fd.Type, body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcBody{lit: fl, typ: fl.Type, body: fl.Body})
			}
			return true
		})
	}
	return out
}

// inspectShallow walks n without descending into nested function
// literals; fileFuncBodies hands those out as bodies of their own.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
