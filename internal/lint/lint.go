// Package lint is slimlint: a project-invariant static analyzer for this
// repository. The concurrency and determinism rules the system stakes its
// correctness on — the acyclic lock hierarchy of DESIGN.md §7, the
// virtual-time determinism contract of internal/simclock, the error
// discipline of the storage layer — live in prose and in whichever tests
// happen to exercise the bad interleaving. slimlint checks them at
// compile time, over plain go/ast + go/types (no x/tools), so a refactor
// that silently inverts a lock order or sneaks wall-clock time into a
// charged path fails the gate instead of surfacing later under -race.
//
// Analyzers (see DESIGN.md §9 for the invariant each one guards):
//
//   - lockorder: Lock/RLock acquisitions must respect
//     maintMu → FileLocks → ContainerLocks → leaf mutexes, including
//     transitively through the whole-program call graph (cross-package,
//     interface-method fan-out); a Lock must have a reachable Unlock
//     (directly, deferred, or via a returned release closure).
//   - poolsafe: sync.Pool lifetime discipline — no use after Put, no
//     double Put, no Put while an alias has escaped into longer-lived
//     state, and //slimlint:contract noretain parameters must not be
//     retained by any implementation.
//   - goroutineleak: every `go` statement needs a reachable join or stop
//     edge — a WaitGroup Done paired with a Wait, a receive/range over a
//     channel that is closed somewhere, or a ctx.Done select.
//   - determinism: no time.Now, global math/rand, or os.Getenv inside
//     simclock-charged packages (lnode, gnode, oss, jobs, bench), and no
//     map iteration flowing into encoded output without a sort.
//   - errdiscipline: no discarded error results from the oss, kvstore,
//     journal, or container APIs; `_ =` needs a //slimlint:ignore with a
//     reason.
//   - ctxflow: no context.Background()/TODO() outside package main and
//     tests; a function that receives a ctx forwards that ctx.
//
// Findings are suppressed line-by-line with
//
//	//slimlint:ignore <analyzer> <reason>
//
// on the flagged line or the line above it. The reason is mandatory: a
// bare ignore is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"time"
)

// Finding is one rule violation at a position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-relative path
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one named rule set. Run receives the whole program (for
// call-graph queries) plus the single target package findings are
// reported for.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*program, *Package) []Finding
}

// Analyzers returns the full suite, in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		lockOrderAnalyzer(),
		poolSafeAnalyzer(),
		goroutineLeakAnalyzer(),
		determinismAnalyzer(),
		errDisciplineAnalyzer(),
		ctxFlowAnalyzer(),
	}
}

// AnalyzerNames lists the suite's names, in report order.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Stat is one row of the per-run accounting: findings and wall time per
// analyzer, plus a synthetic "callgraph" row for program construction.
type Stat struct {
	Analyzer string        `json:"analyzer"`
	Findings int           `json:"findings"`
	Elapsed  time.Duration `json:"elapsed"`
}

// Run executes every analyzer over pkgs, applies //slimlint:ignore
// suppressions, and returns the surviving findings sorted by position.
// Invalid directives (missing reason) and unused directives are reported
// as findings of the synthetic "suppression" analyzer.
func Run(pkgs []*Package) []Finding {
	findings, _ := RunSelected(pkgs, nil)
	return findings
}

// RunSelected is Run restricted to the named analyzers (nil or empty =
// all), returning per-analyzer stats alongside the findings. Directives
// naming a known but unselected analyzer are left alone — skipping an
// analyzer must not make its suppressions look stale.
func RunSelected(pkgs []*Package, only []string) ([]Finding, []Stat) {
	active := map[string]bool{}
	if len(only) == 0 {
		for _, a := range Analyzers() {
			active[a.Name] = true
		}
	} else {
		for _, name := range only {
			active[name] = true
		}
	}

	start := time.Now()
	pr := newProgram(pkgs)
	stats := []Stat{{Analyzer: "callgraph", Elapsed: time.Since(start)}}

	var all []Finding
	for _, a := range Analyzers() {
		if !active[a.Name] {
			continue
		}
		aStart := time.Now()
		for _, pkg := range pkgs {
			all = append(all, a.Run(pr, pkg)...)
		}
		stats = append(stats, Stat{Analyzer: a.Name, Elapsed: time.Since(aStart)})
	}
	all = applySuppressions(pkgs, all, active)
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		if all[i].Col != all[j].Col {
			return all[i].Col < all[j].Col
		}
		if all[i].Analyzer != all[j].Analyzer {
			return all[i].Analyzer < all[j].Analyzer
		}
		return all[i].Message < all[j].Message
	})
	// Count what SURVIVED suppression — the stats must match the report
	// the user sees, not the raw pre-filter tallies (every finding a
	// valid //slimlint:ignore excuses is not a finding).
	byAnalyzer := map[string]int{}
	for _, f := range all {
		byAnalyzer[f.Analyzer]++
	}
	for i := range stats {
		stats[i].Findings = byAnalyzer[stats[i].Analyzer]
	}
	stats = append(stats, Stat{Analyzer: "suppression", Findings: byAnalyzer["suppression"]})
	return all, stats
}

// finding builds a Finding at pos within pkg.
func (p *Package) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	position := p.Fset.Position(pos)
	return Finding{
		Analyzer: analyzer,
		File:     p.relPath(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// ---------------------------------------------------------------------------
// Shared AST/type helpers used by several analyzers.

// pkgNameOf resolves a selector base like `time` in `time.Now` to the
// imported package it names, or nil if the base is not a package
// qualifier.
func (p *Package) pkgNameOf(e ast.Expr) *types.Package {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported()
	}
	return nil
}

// namedRecv dereferences pointers and returns the named type of t, or nil.
func namedRecv(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// calleeFunc resolves the *types.Func a call invokes (plain function or
// method), or nil for builtins, conversions, and indirect calls through
// function values.
func (p *Package) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// enclosingFuncs yields every function body in the file: declared
// functions and methods plus each function literal, paired with the
// parameter list in scope for it. Literals are visited as independent
// bodies: a goroutine or deferred closure does not inherit the lock/ctx
// state of its lexical parent, and treating them separately keeps the
// analyzers conservative.
type funcBody struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	typ  *ast.FuncType
	body *ast.BlockStmt
}

func fileFuncBodies(f *ast.File) []funcBody {
	var out []funcBody
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, funcBody{decl: fd, typ: fd.Type, body: fd.Body})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcBody{lit: fl, typ: fl.Type, body: fl.Body})
			}
			return true
		})
	}
	return out
}

// inspectShallow walks n without descending into nested function
// literals; fileFuncBodies hands those out as bodies of their own.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
