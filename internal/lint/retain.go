// Retention inference: does a function keep a reference to one of its
// parameters after it returns? This backs the noretain contract check —
// an implementation of a contracted method must not retain the
// contracted parameter — and the poolsafe escape analysis, which treats
// passing a pooled buffer to a retaining callee as an escape.
//
// The analysis is a shallow, order-insensitive alias walk, deliberately
// biased the way a linter must be:
//
//   - aliases are the parameter itself, &param, param fields/elements/
//     subslices, and local variables bound to any of those. A pointer
//     DEREFERENCE (`cp := *m`) is treated as a value copy and breaks
//     aliasing — the cacheMeta deep-copy idiom relies on this — as do
//     call results (append, EncodeMeta) and basic/string-typed
//     expressions (immutable or copied by assignment);
//   - retention is: assigning an alias to anything not rooted at the
//     parameter itself (fields, globals, maps — own-object stores like
//     `c.Data = payload` are fine), sending an alias on a channel,
//     handing an alias to a `go` call, or passing an alias to a callee
//     that retains the corresponding parameter (recursed through the
//     call graph, bounded by maxSummaryDepth; cycles and out-of-program
//     callees are assumed non-retaining; contracted callees are trusted
//     by declaration, which terminates wrapper chains).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// retainSite is the evidence for one retained parameter.
type retainSite struct {
	pos  token.Pos
	what string
}

// retainSummary maps retained parameter indices to their evidence.
type retainSummary struct {
	retains map[int]retainSite
}

func (pr *program) retainSummaryOf(fn *types.Func, depth int) *retainSummary {
	if s, ok := pr.retSums[fn]; ok {
		return s
	}
	empty := &retainSummary{retains: map[int]retainSite{}}
	if depth > maxSummaryDepth || pr.retActive[fn] {
		return empty
	}
	node := pr.graph.nodeFor(fn)
	if node == nil {
		return empty
	}
	pr.retActive[fn] = true
	p := node.pkg
	sum := &retainSummary{retains: map[int]retainSite{}}

	paramIdx := map[types.Object]int{}
	for i, obj := range paramObjects(p, node.decl) {
		if obj != nil {
			paramIdx[obj] = i
		}
	}
	aliases := map[types.Object]int{}
	for obj, i := range paramIdx {
		aliases[obj] = i
	}

	record := func(i int, pos token.Pos, what string) {
		if _, ok := sum.retains[i]; !ok {
			sum.retains[i] = retainSite{pos: pos, what: what}
		}
	}

	// aliasOf resolves e to the parameter it aliases, or -1.
	aliasOf := func(e ast.Expr) int {
		if tv, ok := p.Info.Types[e]; ok && isBasicOrString(tv.Type) {
			return -1
		}
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				if obj := objOf(p, x); obj != nil {
					if i, ok := aliases[obj]; ok {
						return i
					}
				}
				return -1
			case *ast.SelectorExpr:
				if p.pkgNameOf(x.X) != nil {
					return -1 // qualified identifier, not a field chain
				}
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.UnaryExpr:
				if x.Op != token.AND {
					return -1
				}
				e = x.X
			default:
				return -1
			}
		}
	}

	inspectShallow(node.decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for k := range st.Lhs {
				i := aliasOf(st.Rhs[k])
				if i < 0 {
					continue
				}
				lhs := ast.Unparen(st.Lhs[k])
				if id, ok := lhs.(*ast.Ident); ok {
					if id.Name == "_" {
						continue
					}
					if obj := objOf(p, id); obj != nil {
						if obj.Parent() == p.Types.Scope() {
							record(i, st.Pos(), "stored into package-level "+id.Name)
							continue
						}
						if _, isParam := paramIdx[obj]; !isParam {
							aliases[obj] = i // local binding extends the alias set
						}
					}
					continue
				}
				if root := rootIdentObject(p, lhs); root != nil {
					if j, ok := aliases[root]; ok && j == i {
						continue // own-object store: c.Data = <alias of c>
					}
				}
				record(i, st.Pos(), "stored into "+types.ExprString(st.Lhs[k]))
			}
		case *ast.SendStmt:
			if i := aliasOf(st.Value); i >= 0 {
				record(i, st.Pos(), "sent on "+types.ExprString(st.Chan))
			}
		case *ast.GoStmt:
			for _, a := range st.Call.Args {
				if i := aliasOf(a); i >= 0 {
					record(i, a.Pos(), "handed to a goroutine")
				}
			}
		case *ast.CallExpr:
			callees := pr.graph.resolveCall(p, st)
			if len(callees) == 0 {
				return true // builtin / func value / stdlib conversion: non-retaining
			}
			for k, a := range st.Args {
				i := aliasOf(a)
				if i < 0 {
					continue
				}
				for _, e := range callees {
					sig, ok := e.callee.Type().(*types.Signature)
					if !ok {
						continue
					}
					j := k
					if sig.Variadic() && j >= sig.Params().Len()-1 {
						j = sig.Params().Len() - 1
					}
					if j < 0 || j >= sig.Params().Len() {
						continue
					}
					if pr.contractCovers(e.callee, j) {
						continue // non-retaining by declared contract
					}
					if site, ok := pr.retainSummaryOf(e.callee, depth+1).retains[j]; ok {
						pos := p.Fset.Position(site.pos)
						record(i, a.Pos(), fmt.Sprintf("passed to %s, which retains it (%s at %s:%d)",
							displayName(e.callee, p), site.what, p.relPath(pos.Filename), pos.Line))
						break
					}
				}
			}
		}
		return true
	})
	delete(pr.retActive, fn)
	pr.retSums[fn] = sum
	return sum
}

// paramObjects lists the declared parameter objects of fd in flattened
// order (nil for unnamed parameters).
func paramObjects(p *Package, fd *ast.FuncDecl) []types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	var out []types.Object
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, nm := range f.Names {
			out = append(out, p.Info.Defs[nm])
		}
	}
	return out
}

// objOf resolves an identifier to its object, use or definition.
func objOf(p *Package, id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// rootIdentObject walks selector/index/slice/deref/assert chains down to
// the root identifier's object ("s.m[key]" → s), or nil when the chain
// bottoms out in a call or literal.
func rootIdentObject(p *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return objOf(p, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isBasicOrString reports whether t is a basic type (including string):
// values that are copied, not aliased, by assignment.
func isBasicOrString(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Basic)
	return ok
}
