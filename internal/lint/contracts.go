// Contract annotations. A function or interface method can declare that
// it does not retain a parameter past the call:
//
//	//slimlint:contract noretain <param> [<param>...]
//
// on the declaration's doc comment (or, for interface methods, the
// method's doc or trailing comment). Two things follow from a contract:
//
//   - every concrete implementation is checked (through the call graph)
//     to actually not retain that parameter — storing it into a field,
//     global, map, or channel, or forwarding it to a callee that
//     retains, is a poolsafe finding at the implementation;
//   - callers may pass pooled buffers to the contracted parameter and
//     recycle them afterwards; the retention inference trusts the
//     contract instead of recursing, which is what lets wrapper chains
//     (Retry → Metered → Mem) terminate.
//
// The annotation is aimed at oss.Store.Put / container Store.Write
// shaped APIs: hot paths that hand a pooled payload to a storage layer
// and reuse the buffer the moment the call returns.
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

const contractPrefix = "slimlint:contract"

// parseContracts scans every program package for contract annotations
// and maps each annotated function/interface method to the indices of
// its noretain parameters.
func parseContracts(all []*Package) map[*types.Func][]int {
	out := map[*types.Func][]int{}
	add := func(fn *types.Func, params *ast.FieldList, names []string) {
		for _, name := range names {
			if idx := paramIndexByName(params, name); idx >= 0 {
				out[fn] = append(out[fn], idx)
			}
		}
	}
	for _, p := range all {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				switch dd := d.(type) {
				case *ast.FuncDecl:
					if fn, ok := p.Info.Defs[dd.Name].(*types.Func); ok {
						add(fn, dd.Type.Params, contractNames(dd.Doc))
					}
				case *ast.GenDecl:
					for _, spec := range dd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						it, ok := ts.Type.(*ast.InterfaceType)
						if !ok || it.Methods == nil {
							continue
						}
						for _, m := range it.Methods.List {
							if len(m.Names) == 0 {
								continue // embedded interface
							}
							ft, ok := m.Type.(*ast.FuncType)
							if !ok {
								continue
							}
							names := append(contractNames(m.Doc), contractNames(m.Comment)...)
							if fn, ok := p.Info.Defs[m.Names[0]].(*types.Func); ok {
								add(fn, ft.Params, names)
							}
						}
					}
				}
			}
		}
	}
	return out
}

// contractNames extracts the parameter names of every noretain contract
// line in cg.
func contractNames(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var names []string
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		rest, ok := strings.CutPrefix(text, contractPrefix)
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 2 || fields[0] != "noretain" {
			continue
		}
		names = append(names, fields[1:]...)
	}
	return names
}

// paramIndexByName maps a parameter name to its flattened index in the
// field list, or -1.
func paramIndexByName(params *ast.FieldList, name string) int {
	if params == nil {
		return -1
	}
	idx := 0
	for _, f := range params.List {
		if len(f.Names) == 0 {
			idx++
			continue
		}
		for _, nm := range f.Names {
			if nm.Name == name {
				return idx
			}
			idx++
		}
	}
	return -1
}

// contractParams returns fn's noretain parameter indices: its own plus
// any inherited from program interface methods it implements (an
// oss.Store implementation inherits the Put contract from the
// interface).
func (pr *program) contractParams(fn *types.Func) []int {
	idx := append([]int(nil), pr.contracts[fn]...)
	for _, im := range pr.graph.interfaceMethodsOf(fn) {
		idx = append(idx, pr.contracts[im]...)
	}
	seen := map[int]bool{}
	var out []int
	for _, i := range idx {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// contractCovers reports whether parameter j of fn is declared noretain.
func (pr *program) contractCovers(fn *types.Func, j int) bool {
	for _, i := range pr.contractParams(fn) {
		if i == j {
			return true
		}
	}
	return false
}
