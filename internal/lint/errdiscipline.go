// errdiscipline enforces that errors from the storage layer are handled.
// The oss, kvstore, journal, and container packages are the durability
// boundary: a swallowed error there is silent data loss (an unacked OSS
// put, a dropped journal record, an unflushed WAL batch). Every call into
// those APIs whose last result is an error must consume it:
//
//   - a bare expression statement discarding the result is flagged;
//   - `defer f(...)` / `go f(...)` discarding the result is flagged;
//   - assigning the error position to `_` is flagged unless the line
//     carries a //slimlint:ignore errdiscipline <reason> suppression —
//     the discipline is that intentional discards are visible and
//     justified, not silent.
package lint

import (
	"go/ast"
	"go/types"
)

// errTargetPkgs are the import paths whose APIs must not have errors
// discarded.
var errTargetPkgs = map[string]bool{
	"slimstore/internal/oss":       true,
	"slimstore/internal/kvstore":   true,
	"slimstore/internal/journal":   true,
	"slimstore/internal/container": true,
}

func errDisciplineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errdiscipline",
		Doc:  "errors returned by the oss/kvstore/journal/container APIs must be consumed; `_ =` needs an ignore directive with a reason",
		Run:  runErrDiscipline,
	}
}

func runErrDiscipline(_ *program, p *Package) []Finding {
	var findings []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
					if name, ok := p.errTargetCall(call); ok {
						findings = append(findings, p.finding("errdiscipline", st.Pos(),
							"result of %s discarded — the error is the durability signal; handle it or assign and justify with //slimlint:ignore", name))
					}
				}
			case *ast.DeferStmt:
				if name, ok := p.errTargetCall(st.Call); ok {
					findings = append(findings, p.finding("errdiscipline", st.Pos(),
						"deferred %s discards its error — capture it in a named return or log it explicitly", name))
				}
			case *ast.GoStmt:
				if name, ok := p.errTargetCall(st.Call); ok {
					findings = append(findings, p.finding("errdiscipline", st.Pos(),
						"go %s discards its error — collect it through a channel or errgroup-style join", name))
				}
			case *ast.AssignStmt:
				findings = append(findings, p.checkErrAssign(st)...)
			}
			return true
		})
	}
	return findings
}

// errTargetCall reports whether call invokes a target-package function or
// method whose final result is an error, returning a display name.
func (p *Package) errTargetCall(call *ast.CallExpr) (string, bool) {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !errTargetPkgs[fn.Pkg().Path()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	last := res.At(res.Len() - 1).Type()
	if !isErrorType(last) {
		return "", false
	}
	name := fn.Name()
	if recv := sig.Recv(); recv != nil {
		if named := namedRecv(recv.Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	} else {
		name = fn.Pkg().Name() + "." + name
	}
	return name, true
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// checkErrAssign flags `_` in the error position of an assignment whose
// RHS is a target-package call. The suppression layer (applySuppressions)
// lets a justified //slimlint:ignore keep it.
func (p *Package) checkErrAssign(st *ast.AssignStmt) []Finding {
	var findings []Finding
	flag := func(call *ast.CallExpr) {
		if name, ok := p.errTargetCall(call); ok {
			findings = append(findings, p.finding("errdiscipline", st.Pos(),
				"error from %s assigned to _ — add //slimlint:ignore errdiscipline <reason> if the discard is intentional", name))
		}
	}
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value: v, _ := target(...). The error is the last result.
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			if id, ok := st.Lhs[len(st.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
				flag(call)
			}
		}
		return findings
	}
	for i, rhs := range st.Rhs {
		if i >= len(st.Lhs) {
			break
		}
		id, ok := st.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			flag(call)
		}
	}
	return findings
}
