// determinism guards the virtual-time contract: simclock-charged packages
// must compute identical results (stats, recipes, encoded artifacts)
// given identical inputs, regardless of host, wall clock, or map seed.
// Inside the charged packages (lnode, gnode, oss, jobs, bench, repl, ec)
// it flags:
//
//   - time.Now / time.Since — wall clock leaking into charged paths;
//   - package-level math/rand functions (rand.Intn, rand.Shuffle, …) —
//     they draw from the process-global, randomly-seeded source;
//     explicitly seeded rand.New(rand.NewSource(seed)) is fine;
//   - os.Getenv / os.LookupEnv / os.Environ — ambient configuration that
//     makes results host-dependent;
//   - `for k := range m` over a map whose iteration order escapes: the
//     body appends to a slice that is never sorted afterwards in the
//     same function, or writes directly to an output sink (Put, Write,
//     Encode, Marshal, Fprint*) from inside the loop. This is the exact
//     bug class the G-node serial-decide phase had to design around
//     (DESIGN.md §8: decisions are made in sorted container order).
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// chargedPackages are the simclock-charged packages by package name, so
// fixture packages with the same name are checked identically.
var chargedPackages = map[string]bool{
	"lnode": true,
	"gnode": true,
	"oss":   true,
	"jobs":  true,
	"bench": true,
	"repl":  true, // replicated index groups charge failover downtime to simclock
	"ec":    true, // erasure-coded tier charges shard I/O and reconstruction CPU
}

// allowedRandFuncs construct explicitly seeded generators and are
// deterministic given a deterministic seed.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// sinkMethods are call names that emit bytes whose order is the iteration
// order: container/OSS writes, encoders, and formatted output.
var sinkMethods = map[string]bool{
	"Put": true, "Write": true, "WriteString": true,
	"Encode": true, "Marshal": true, "MarshalIndent": true,
	"Fprintf": true, "Fprintln": true, "Fprint": true,
}

func determinismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "no wall clock, global rand, env vars, or unsorted map iteration flowing into output inside simclock-charged packages",
		Run:  runDeterminism,
	}
}

func runDeterminism(_ *program, p *Package) []Finding {
	if !chargedPackages[p.Name] {
		return nil
	}
	var findings []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fd := p.nondeterministicCall(call); fd != nil {
					findings = append(findings, *fd)
				}
			}
			return true
		})
		// Map-iteration analysis needs the enclosing function for the
		// "sorted later" escape hatch, so it walks per body.
		for _, fb := range fileFuncBodies(f) {
			findings = append(findings, p.checkMapRanges(fb)...)
		}
	}
	return findings
}

// nondeterministicCall flags time.Now/Since, global math/rand draws, and
// env reads.
func (p *Package) nondeterministicCall(call *ast.CallExpr) *Finding {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	pkg := p.pkgNameOf(sel.X)
	if pkg == nil {
		return nil
	}
	name := sel.Sel.Name
	switch pkg.Path() {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			fd := p.finding("determinism", call.Pos(),
				"time.%s in simclock-charged package %s — charge virtual time via simclock, or suppress with a reason if this measures the host itself", name, p.Name)
			return &fd
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[name] {
			fd := p.finding("determinism", call.Pos(),
				"rand.%s draws from the global, randomly-seeded source — use rand.New(rand.NewSource(seed)) with an explicit seed", name)
			return &fd
		}
	case "os":
		if name == "Getenv" || name == "LookupEnv" || name == "Environ" {
			fd := p.finding("determinism", call.Pos(),
				"os.%s makes results depend on ambient host configuration — plumb the value through Config, or suppress with a reason for artifact paths", name)
			return &fd
		}
	}
	return nil
}

// checkMapRanges flags map iterations whose order escapes into output.
func (p *Package) checkMapRanges(fb funcBody) []Finding {
	var findings []Finding
	// Collect the range statements over maps, shallowly (nested literals
	// are their own funcBody).
	inspectShallow(fb.body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		findings = append(findings, p.checkOneMapRange(fb, rng)...)
		return true
	})
	return findings
}

func (p *Package) checkOneMapRange(fb funcBody, rng *ast.RangeStmt) []Finding {
	var findings []Finding
	var appendTargets []string
	inspectShallow(rng.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(nn.Fun).(*ast.SelectorExpr); ok && sinkMethods[sel.Sel.Name] {
				findings = append(findings, p.finding("determinism", nn.Pos(),
					"map iteration order flows into %s.%s — emit in sorted key order instead", types.ExprString(sel.X), sel.Sel.Name))
			}
		case *ast.AssignStmt:
			// v = append(v, ...) inside the loop: iteration order becomes
			// slice order.
			for i, rhs := range nn.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
					continue
				}
				if i < len(nn.Lhs) {
					if id, ok := ast.Unparen(nn.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
						appendTargets = append(appendTargets, id.Name)
					}
				}
			}
		}
		return true
	})
	for _, target := range appendTargets {
		if !p.sortedLater(fb, target) {
			findings = append(findings, p.finding("determinism", rng.Pos(),
				"map iteration appends to %q, which is never sorted in this function — slice order is the map's random iteration order", target))
		}
	}
	return findings
}

// sortedLater reports whether the function body contains a sort of the
// named slice: sort.*/slices.Sort* taking it as an argument, or any call
// whose name contains "sort" mentioning it (covers local helpers like
// core.SortContainerIDs).
func (p *Package) sortedLater(fb funcBody, varName string) bool {
	found := false
	inspectShallow(fb.body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortCall(p, call) {
			return true
		}
		for _, a := range call.Args {
			mentioned := false
			ast.Inspect(a, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && id.Name == varName {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				found = true
				break
			}
		}
		return true
	})
	return found
}

func isSortCall(p *Package, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if pkg := p.pkgNameOf(fun.X); pkg != nil {
			if pkg.Path() == "sort" || pkg.Path() == "slices" {
				return true
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}
