package cache

import (
	"container/list"
	"fmt"

	"slimstore/internal/fingerprint"
)

// ALACC is the look-ahead window assisted chunk cache of Cao et al.
// (FAST'18), the paper's strongest restore-cache baseline: a forward
// assembly area (FAA) assembles a span of the output stream directly from
// container reads, while a chunk cache retains chunks that the LAW shows
// will be needed beyond the current span.
//
// This implementation fixes the FAA/chunk-cache split (the original adapts
// it dynamically); the paper's comparison depends on ALACC's structural
// property — fragments beyond the LAW are unprotected — which is
// unaffected by the adaptivity.
type ALACC struct {
	cfg Config
}

// NewALACC returns an ALACC policy.
func NewALACC(cfg Config) *ALACC { return &ALACC{cfg: cfg.withDefaults()} }

// Name implements Restorer.
func (a *ALACC) Name() string { return "alacc" }

// Restore implements Restorer.
func (a *ALACC) Restore(seq []Request, fetch Fetcher, emit Emit) (Stats, error) {
	var stats Stats
	cf := newCountingFetcher(fetch, &stats)

	// Chunk cache: bounded LRU over chunk payloads.
	type centry struct {
		fp   fingerprint.FP
		data []byte
		elem *list.Element
	}
	ccap := a.cfg.MemBytes - a.cfg.FAABytes
	if ccap < 0 {
		ccap = 0
	}
	ccache := make(map[fingerprint.FP]*centry)
	order := list.New()
	var cbytes int64
	insert := func(fp fingerprint.FP, data []byte) {
		if ccap <= 0 {
			return
		}
		if e, ok := ccache[fp]; ok {
			order.MoveToFront(e.elem)
			return
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		e := &centry{fp: fp, data: cp}
		e.elem = order.PushFront(e)
		ccache[fp] = e
		cbytes += int64(len(cp))
		for cbytes > ccap && order.Len() > 0 {
			back := order.Back()
			v := back.Value.(*centry)
			order.Remove(back)
			delete(ccache, v.fp)
			cbytes -= int64(len(v.data))
		}
	}

	i := 0
	for i < len(seq) {
		// Build the FAA span [i, j).
		j := i
		var span int64
		for j < len(seq) && (j == i || span+int64(seq[j].Size) <= a.cfg.FAABytes) {
			span += int64(seq[j].Size)
			j++
		}
		// Fingerprints the LAW sees beyond this span.
		beyond := make(map[fingerprint.FP]bool)
		for p := j; p < i+a.cfg.LAW && p < len(seq); p++ {
			beyond[seq[p].FP] = true
		}

		assembled := make([][]byte, j-i)
		for p := i; p < j; p++ {
			if assembled[p-i] != nil {
				continue
			}
			stats.Requests++
			req := &seq[p]
			if e, ok := ccache[req.FP]; ok {
				stats.MemHits++
				order.MoveToFront(e.elem)
				assembled[p-i] = e.data
				continue
			}
			c, err := cf.get(req.Container)
			if err != nil {
				return stats, err
			}
			// Fill every unassembled span position served by this
			// container (FAA copies straight from the read buffer).
			for q := p; q < j; q++ {
				if assembled[q-i] != nil || seq[q].Container != req.Container {
					continue
				}
				data, err := c.Get(seq[q].FP)
				if err != nil {
					return stats, err
				}
				assembled[q-i] = data
				if q > p {
					stats.Requests++
				}
			}
			// Chunks needed beyond the span (within the LAW) enter the
			// chunk cache.
			for k := range c.Meta.Chunks {
				cm := &c.Meta.Chunks[k]
				if cm.Deleted || !beyond[cm.FP] {
					continue
				}
				data, err := c.ChunkData(cm)
				if err != nil {
					return stats, err
				}
				insert(cm.FP, data)
			}
		}
		for p := i; p < j; p++ {
			d := assembled[p-i]
			if d == nil {
				return stats, fmt.Errorf("cache: alacc: position %d unassembled", p)
			}
			stats.LogicalBytes += int64(len(d))
			if err := emit(d); err != nil {
				return stats, err
			}
		}
		i = j
	}
	return stats, nil
}
