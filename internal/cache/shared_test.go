package cache

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"testing"

	"slimstore/internal/container"
)

// synthContainer builds an in-memory container of the given payload size,
// bypassing any store — the shared cache only sees opaque containers.
func synthContainer(id container.ID, size int) *container.Container {
	return &container.Container{
		Meta: container.Meta{ID: id, DataSize: uint32(size)},
		Data: make([]byte, size),
	}
}

func TestSharedSingleflightCollapsesConcurrentFetches(t *testing.T) {
	s := NewShared(1 << 20)
	const id = container.ID(7)
	const riders = 8

	var fetches int
	arrived := make(chan struct{}, riders)
	release := make(chan struct{})
	fetch := func() (*container.Container, error) {
		fetches++ // only the singleflight owner runs this; -race checks it
		<-release
		return synthContainer(id, 4096), nil
	}

	var wg sync.WaitGroup
	results := make([]FetchSource, riders)
	for i := 0; i < riders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ss := s.NewSession()
			defer ss.Close()
			arrived <- struct{}{}
			c, src, err := ss.Fetch(id, fetch)
			if err != nil || c == nil {
				t.Errorf("rider %d: %v", i, err)
				return
			}
			results[i] = src
		}(i)
	}
	for i := 0; i < riders; i++ {
		<-arrived
	}
	close(release)
	wg.Wait()

	if fetches != 1 {
		t.Fatalf("base fetch ran %d times, want 1", fetches)
	}
	var owners, joinersOrHits int
	for _, src := range results {
		if src == SrcFetched {
			owners++
		} else {
			joinersOrHits++
		}
	}
	if owners != 1 || joinersOrHits != riders-1 {
		t.Fatalf("got %d owners / %d riders, want 1 / %d (%v)", owners, joinersOrHits, riders-1, results)
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits+st.InflightJoins != riders-1 {
		t.Fatalf("stats %+v: want 1 miss and %d hits+joins", st, riders-1)
	}
}

func TestSharedCacheHitAvoidsRefetch(t *testing.T) {
	s := NewShared(1 << 20)
	const id = container.ID(3)
	var fetches int
	fetch := func() (*container.Container, error) {
		fetches++
		return synthContainer(id, 1024), nil
	}

	a := s.NewSession()
	if _, src, err := a.Fetch(id, fetch); err != nil || src != SrcFetched {
		t.Fatalf("first fetch: src=%v err=%v", src, err)
	}
	a.Close()

	b := s.NewSession()
	defer b.Close()
	if c, ok := b.Get(id); !ok || c == nil {
		t.Fatal("Get missed a resident container")
	}
	if _, src, err := b.Fetch(id, fetch); err != nil || src != SrcHit {
		t.Fatalf("second fetch: src=%v err=%v, want SrcHit", src, err)
	}
	if fetches != 1 {
		t.Fatalf("base fetch ran %d times, want 1", fetches)
	}
}

func TestSharedBudgetIsStrict(t *testing.T) {
	const budget = minSharedBytes // 64 KiB, probation 16 KiB
	s := NewShared(budget)
	ss := s.NewSession()

	// A cold sweep of many 4 KiB containers: resident bytes must never
	// exceed the budget even though every fetch succeeds.
	for i := 1; i <= 64; i++ {
		id := container.ID(i)
		if _, _, err := ss.Fetch(id, func() (*container.Container, error) {
			return synthContainer(id, 4096), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	ss.Close()
	st := s.Stats()
	if st.Bytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("a 256 KiB sweep through a 64 KiB cache must evict")
	}
}

func TestSharedColdSweepCannotEvictProtectedWorkingSet(t *testing.T) {
	s := NewShared(minSharedBytes)
	warm := s.NewSession()

	// Job 1 establishes a working set and re-uses it → each re-use
	// promotes the entry out of probation into the protected segment.
	workingSet := []container.ID{100, 101, 102}
	for _, id := range workingSet {
		id := id
		if _, _, err := warm.Fetch(id, func() (*container.Container, error) {
			return synthContainer(id, 8192), nil
		}); err != nil {
			t.Fatal(err)
		}
		if _, ok := warm.Get(id); !ok {
			t.Fatalf("container %d evicted before the sweep", id)
		}
	}
	warm.Close() // drop references: protection must come from the segment, not refs

	// Job 2 sweeps 128 cold containers through the cache.
	cold := s.NewSession()
	for i := 1; i <= 128; i++ {
		id := container.ID(i)
		if _, _, err := cold.Fetch(id, func() (*container.Container, error) {
			return synthContainer(id, 4096), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	cold.Close()

	check := s.NewSession()
	defer check.Close()
	for _, id := range workingSet {
		if _, ok := check.Get(id); !ok {
			t.Fatalf("cold sweep evicted protected container %d", id)
		}
	}
}

func TestSharedReferencedEntriesAreNotEvicted(t *testing.T) {
	s := NewShared(minSharedBytes) // probation budget 16 KiB
	holder := s.NewSession()

	// The holder pins one 12 KiB container (fits probation alone).
	pinned := container.ID(1)
	c1, _, err := holder.Fetch(pinned, func() (*container.Container, error) {
		return synthContainer(pinned, 12<<10), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Another job sweeps 12 KiB containers: they cannot fit next to the
	// pinned entry, must be rejected (never evict the referenced one).
	sweeper := s.NewSession()
	for i := 10; i < 20; i++ {
		id := container.ID(i)
		if _, _, err := sweeper.Fetch(id, func() (*container.Container, error) {
			return synthContainer(id, 12<<10), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	sweeper.Close()

	st := s.Stats()
	if st.Rejects == 0 {
		t.Fatalf("stats %+v: sweeps past a pinned entry must reject admissions", st)
	}
	if st.Bytes > minSharedBytes {
		t.Fatalf("resident %d bytes exceeds budget", st.Bytes)
	}
	if c, ok := holder.Get(pinned); !ok || c != c1 {
		t.Fatal("referenced container was evicted or replaced")
	}

	// After release, the space is reclaimable again.
	holder.Close()
	late := s.NewSession()
	defer late.Close()
	id := container.ID(99)
	if _, src, err := late.Fetch(id, func() (*container.Container, error) {
		return synthContainer(id, 12<<10), nil
	}); err != nil || src != SrcFetched {
		t.Fatalf("post-release fetch: src=%v err=%v", src, err)
	}
	if _, ok := late.Get(id); !ok {
		t.Fatal("post-release admission failed with free space available")
	}
}

func TestSharedInvalidateDropsResidentAndPoisonsInflight(t *testing.T) {
	s := NewShared(1 << 20)
	ss := s.NewSession()
	defer ss.Close()

	// Resident entry invalidated → next fetch goes to OSS again.
	id := container.ID(5)
	var fetches int
	fetch := func() (*container.Container, error) {
		fetches++
		return synthContainer(id, 2048), nil
	}
	if _, _, err := ss.Fetch(id, fetch); err != nil {
		t.Fatal(err)
	}
	s.Invalidate(id)
	if _, ok := ss.Get(id); ok {
		t.Fatal("invalidated container still resident")
	}
	if _, src, err := ss.Fetch(id, fetch); err != nil || src != SrcFetched {
		t.Fatalf("refetch after invalidate: src=%v err=%v", src, err)
	}
	if fetches != 2 {
		t.Fatalf("base fetch ran %d times, want 2", fetches)
	}

	// Invalidation racing an in-flight fetch: the owner still gets its
	// container (resolved under its restore pins), but it is not admitted.
	id2 := container.ID(6)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		other := s.NewSession()
		defer other.Close()
		c, _, err := other.Fetch(id2, func() (*container.Container, error) {
			close(started)
			<-release
			return synthContainer(id2, 2048), nil
		})
		if err != nil || c == nil {
			t.Errorf("poisoned fetch must still serve its owner: %v", err)
		}
	}()
	<-started
	s.Invalidate(id2)
	close(release)
	<-done
	if _, ok := ss.Get(id2); ok {
		t.Fatal("container invalidated mid-flight was admitted")
	}
}

func TestSharedFetchErrorPropagatesAndRetries(t *testing.T) {
	s := NewShared(1 << 20)
	ss := s.NewSession()
	defer ss.Close()
	id := container.ID(11)
	boom := errors.New("oss unavailable")
	if _, _, err := ss.Fetch(id, func() (*container.Container, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the fetch error", err)
	}
	// Errors are not cached: the next fetch runs again and can succeed.
	c, src, err := ss.Fetch(id, func() (*container.Container, error) { return synthContainer(id, 512), nil })
	if err != nil || c == nil || src != SrcFetched {
		t.Fatalf("retry after error: c=%v src=%v err=%v", c, src, err)
	}
}

// TestSharedWithPrefetcherAndTwoJobs composes the layers the engine
// stacks: per-job LAW prefetch workers on top of per-job shared-cache
// sessions. Two jobs restoring the same fragmented stream must together
// trigger at most one base fetch per unique container.
func TestSharedWithPrefetcherAndTwoJobs(t *testing.T) {
	repo, seq, want := fragmentedScenario(t)
	s := NewShared(1 << 30)

	baseMu := sync.Mutex{}
	baseFetches := make(map[container.ID]int)
	base := func(id container.ID) (*container.Container, error) {
		baseMu.Lock()
		baseFetches[id]++
		baseMu.Unlock()
		return repo.cs.Read(id)
	}

	runJob := func() ([]byte, Stats, error) {
		ss := s.NewSession()
		defer ss.Close()
		shared := func(id container.ID) (*container.Container, error) {
			c, _, err := ss.Fetch(id, func() (*container.Container, error) { return base(id) })
			return c, err
		}
		pf := NewPrefetcher(shared, seq, 4, 8)
		defer pf.Close()
		var out bytes.Buffer
		pol := NewFV(Config{MemBytes: 1 << 30, LAW: 64})
		st, err := pol.Restore(seq, pf.Fetch, func(d []byte) error { _, werr := out.Write(d); return werr })
		return out.Bytes(), st, err
	}

	var wg sync.WaitGroup
	outs := make([][]byte, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _, errs[i] = runJob()
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], want) {
			t.Fatalf("job %d restored wrong bytes", i)
		}
	}
	for id, n := range baseFetches {
		if n != 1 {
			t.Errorf("container %d fetched %d times from OSS, want 1", id, n)
		}
	}
}

// TestPrefetcherMidSequenceErrorShutsDownCleanly drives satellite (b):
// a fetch error in the middle of the sequence must surface to the
// consumer, and an immediate Close must join every worker and the feeder
// without deadlocking, leaving no goroutine still fetching.
func TestPrefetcherMidSequenceErrorShutsDownCleanly(t *testing.T) {
	repo, seq, _ := fragmentedScenario(t)
	boom := errors.New("injected mid-sequence failure")

	// Fail every fetch after the third distinct container.
	var mu sync.Mutex
	fetched := make(map[container.ID]bool)
	inflight := 0
	base := func(id container.ID) (*container.Container, error) {
		mu.Lock()
		inflight++
		fetched[id] = true
		fail := len(fetched) > 3
		mu.Unlock()
		defer func() { mu.Lock(); inflight--; mu.Unlock() }()
		if fail {
			return nil, boom
		}
		return repo.cs.Read(id)
	}

	pf := NewPrefetcher(base, seq, 3, 6)
	var err error
	for i := range seq {
		if _, ferr := pf.Fetch(seq[i].Container); ferr != nil {
			err = ferr
			break
		}
	}
	if !errors.Is(err, boom) {
		t.Fatalf("mid-sequence error did not surface: %v", err)
	}
	pf.Close() // must not deadlock; joins workers AND the feeder
	mu.Lock()
	n := inflight
	mu.Unlock()
	if n != 0 {
		t.Fatalf("%d fetches still in flight after Close", n)
	}
}

// TestPrefetcherFetchDuringCloseDoesNotHang reproduces the stranded-slot
// race: the feeder marks a slot dispatched, then Close wins the race
// before the slot reaches a worker — its done channel never closes. A
// concurrent Fetch of that slot must fall back to a direct fetch instead
// of blocking forever.
func TestPrefetcherFetchDuringCloseDoesNotHang(t *testing.T) {
	repo, seq, _ := fragmentedScenario(t)

	// One worker, buffer 2: the worker blocks inside the first container's
	// fetch while the feeder acquires a buffer token for the second, marks
	// it dispatched, and blocks handing it over.
	first := seq[0].Container
	var second container.ID
	for i := range seq {
		if seq[i].Container != first {
			second = seq[i].Container
			break
		}
	}
	release := make(chan struct{})
	base := func(id container.ID) (*container.Container, error) {
		if id == first {
			<-release
		}
		return repo.cs.Read(id)
	}
	pf := NewPrefetcher(base, seq, 1, 2)

	// Wait until the feeder has marked the second container dispatched.
	for {
		pf.mu.Lock()
		d := pf.slots[second].dispatched
		pf.mu.Unlock()
		if d {
			break
		}
		runtime.Gosched()
	}

	closed := make(chan struct{})
	go func() {
		defer close(closed)
		pf.Close() // blocks until the worker's fetch of `first` returns
	}()

	// Wait for Close to take effect, then fetch the stranded slot: it must
	// return via the direct path, not hang on the never-closed done channel.
	<-pf.stop
	c, err := pf.Fetch(second)
	if err != nil || c == nil {
		t.Fatalf("stranded-slot fetch: %v", err)
	}
	if c.Meta.ID != second {
		t.Fatalf("fetched container %d, want %d", c.Meta.ID, second)
	}

	close(release)
	<-closed
}
