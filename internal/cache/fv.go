package cache

import (
	"fmt"

	"slimstore/internal/cbf"
	"slimstore/internal/fingerprint"
)

// FV is SLIMSTORE's restore cache with a full-vision replacement policy
// (paper §V-A). It is chunk-granular and built from the complete restore
// information in the recipe:
//
//   - A counting bloom filter (CBF) records how many future references
//     each chunk has; counts decrement as chunks are restored. A chunk
//     whose count is zero (status S_U) is useless and leaves the cache
//     immediately.
//   - A look-ahead window marks chunks needed soon (S_I). Chunks with
//     future references beyond the window (S_L) are protected too — this
//     is what distinguishes FV from LAW-bounded caches: large-span and
//     self-referencing fragments outside the window cannot be evicted.
//   - The cache is two-layer: when memory fills with useful chunks, S_L
//     chunks swap to the L-node's local disk (Cache_d) and return before
//     use, avoiding OSS rereads entirely.
//
// With sufficient mem+disk capacity every container is read exactly once.
type FV struct {
	cfg Config
}

// NewFV returns a full-vision cache policy.
func NewFV(cfg Config) *FV { return &FV{cfg: cfg.withDefaults()} }

// Name implements Restorer.
func (f *FV) Name() string { return "fv" }

// fvState carries the per-run state.
type fvState struct {
	cfg  Config
	refs *cbf.Counting // future reference counts (the per-file CBF)
	law  map[fingerprint.FP]int

	mem       map[fingerprint.FP][]byte
	memOrder  []fingerprint.FP // insertion order, for deterministic demotion
	memBytes  int64
	disk      *spillStore
	diskOrder []fingerprint.FP

	stats *Stats
}

// Restore implements Restorer.
func (f *FV) Restore(seq []Request, fetch Fetcher, emit Emit) (Stats, error) {
	var stats Stats
	cf := newCountingFetcher(fetch, &stats)
	st := &fvState{
		cfg:   f.cfg,
		refs:  cbf.NewCounting(len(seq)+16, 0.001),
		law:   make(map[fingerprint.FP]int),
		mem:   make(map[fingerprint.FP][]byte),
		disk:  newSpillStore(f.cfg.DiskDir),
		stats: &stats,
	}
	defer st.disk.close()
	// Full vision: the whole sequence populates the CBF up front.
	for i := range seq {
		st.refs.Add(seq[i].FP)
	}
	for i := 0; i < f.cfg.LAW && i < len(seq); i++ {
		st.law[seq[i].FP]++
	}

	for i := range seq {
		req := &seq[i]
		stats.Requests++
		if i > 0 {
			if j := i + f.cfg.LAW - 1; j < len(seq) {
				st.law[seq[j].FP]++
			}
		}

		data, ok := st.mem[req.FP]
		switch {
		case ok:
			stats.MemHits++
		default:
			if d, onDisk, derr := st.disk.take(req.FP); derr != nil {
				return stats, derr
			} else if onDisk {
				stats.DiskHits++
				stats.DiskHitBytes += int64(len(d))
				st.insertMem(req.FP, d)
				data = d
				break
			}
			// Miss: read the whole container, keep only useful chunks.
			// The requested chunk is captured first and admitted last so
			// admission pressure from its container-mates can never evict
			// the chunk this very request needs.
			c, err := cf.get(req.Container)
			if err != nil {
				return stats, err
			}
			var reqData []byte
			for j := range c.Meta.Chunks {
				cm := &c.Meta.Chunks[j]
				if cm.FP != req.FP {
					continue
				}
				reqData, err = c.ChunkData(cm)
				if err != nil {
					return stats, err
				}
				break
			}
			if reqData == nil {
				return stats, fmt.Errorf("cache: fv: chunk %s missing from container %s",
					req.FP.Short(), req.Container)
			}
			for j := range c.Meta.Chunks {
				cm := &c.Meta.Chunks[j]
				if cm.FP == req.FP || cm.Deleted || st.refs.Count(cm.FP) == 0 {
					continue // the request itself is admitted last; S_U never
				}
				if _, inMem := st.mem[cm.FP]; inMem {
					continue
				}
				if st.disk.has(cm.FP) {
					continue
				}
				payload, err := c.ChunkData(cm)
				if err != nil {
					return stats, err
				}
				st.insertMem(cm.FP, payload)
			}
			st.insertMem(req.FP, reqData)
			data = reqData
		}

		stats.LogicalBytes += int64(len(data))
		if err := emit(data); err != nil {
			return stats, err
		}

		// The reference is consumed; S_U chunks leave immediately.
		st.refs.Remove(req.FP)
		if st.refs.Count(req.FP) == 0 {
			if d, okm := st.mem[req.FP]; okm {
				st.memBytes -= int64(len(d))
				delete(st.mem, req.FP)
			}
			st.disk.drop(req.FP)
		}
		// Position i leaves the window.
		if n := st.law[req.FP]; n <= 1 {
			delete(st.law, req.FP)
		} else {
			st.law[req.FP] = n - 1
		}
	}
	return stats, nil
}

// insertMem admits a chunk to the memory layer, demoting S_L chunks to the
// disk layer (and, under extreme pressure, dropping from disk) to respect
// capacities.
func (s *fvState) insertMem(fp fingerprint.FP, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mem[fp] = cp
	s.memOrder = append(s.memOrder, fp)
	s.memBytes += int64(len(cp))

	// Compact the order list when stale entries dominate, keeping victim
	// scans amortised-linear.
	if len(s.memOrder) > 2*len(s.mem)+16 {
		live := s.memOrder[:0]
		seen := make(map[fingerprint.FP]bool, len(s.mem))
		for _, k := range s.memOrder {
			if _, ok := s.mem[k]; ok && !seen[k] {
				seen[k] = true
				live = append(live, k)
			}
		}
		s.memOrder = live
	}

	for s.memBytes > s.cfg.MemBytes && len(s.mem) > 1 {
		victim, ok := s.pickMemVictim(fp)
		if !ok {
			break
		}
		d := s.mem[victim]
		s.memBytes -= int64(len(d))
		delete(s.mem, victim)
		if s.cfg.DiskBytes > 0 {
			s.stats.DiskSwaps++
			s.stats.DiskSwapBytes += int64(len(d))
			if err := s.disk.put(victim, d); err != nil {
				// A failing local disk degrades to dropping the chunk
				// (worst case: one extra OSS read later).
				continue
			}
			s.diskOrder = append(s.diskOrder, victim)
			for s.disk.bytes > s.cfg.DiskBytes && len(s.disk.sizes) > 0 {
				s.dropOldestDisk()
			}
		}
	}
}

// pickMemVictim prefers the oldest S_L chunk (future use beyond the LAW);
// if every cached chunk is S_I it takes the oldest chunk that is not the
// one just inserted.
func (s *fvState) pickMemVictim(justInserted fingerprint.FP) (fingerprint.FP, bool) {
	// First pass: oldest S_L.
	for _, fp := range s.memOrder {
		if _, live := s.mem[fp]; !live {
			continue
		}
		if fp == justInserted {
			continue
		}
		if s.law[fp] == 0 {
			return fp, true
		}
	}
	// Second pass: oldest anything (all S_I).
	for _, fp := range s.memOrder {
		if _, live := s.mem[fp]; !live {
			continue
		}
		if fp == justInserted {
			continue
		}
		return fp, true
	}
	return fingerprint.FP{}, false
}

func (s *fvState) dropOldestDisk() {
	for len(s.diskOrder) > 0 {
		fp := s.diskOrder[0]
		s.diskOrder = s.diskOrder[1:]
		if s.disk.has(fp) {
			s.disk.drop(fp)
			return
		}
	}
	// diskOrder exhausted but entries remain (shouldn't happen): clear one.
	for fp := range s.disk.sizes {
		s.disk.drop(fp)
		return
	}
}
