package cache

import (
	"reflect"
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/simclock"
)

// planMeta builds a meta of n contiguous chunks of the given size.
func planMeta(n int, size uint32) *container.Meta {
	m := &container.Meta{ID: 42}
	for i := 0; i < n; i++ {
		var fp fingerprint.FP
		fp[0], fp[1], fp[2] = byte(i>>16), byte(i>>8), byte(i)
		fp[4] = 0xA5 // distinguish from the zero FP
		m.Chunks = append(m.Chunks, container.ChunkMeta{FP: fp, Offset: uint32(i) * size, Size: size})
	}
	m.DataSize = uint32(n) * size
	return m
}

func needOf(m *container.Meta, idxs ...int) map[fingerprint.FP]bool {
	need := make(map[fingerprint.FP]bool)
	for _, i := range idxs {
		need[m.Chunks[i].FP] = true
	}
	return need
}

func TestPlanSparsePicksRangedAndCoversNeeds(t *testing.T) {
	costs := simclock.DefaultCosts()
	// 1024 × 4 KiB = 4 MiB container; need 3 chunks far apart: three tiny
	// spans (3 × 2 ms + 12 KiB/bw) beat one full read (2 ms + 4 MiB/bw ≈ 102 ms).
	m := planMeta(1024, 4096)
	need := needOf(m, 10, 500, 1000)
	p := Plan(m, need, costs)
	if p.Full {
		t.Fatalf("sparse need chose a full read (full=%v ranged=%v)", p.FullCost, p.RangedCost)
	}
	if len(p.Spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(p.Spans), p.Spans)
	}
	if p.RangedCost >= p.FullCost {
		t.Fatalf("ranged cost %v not below full cost %v", p.RangedCost, p.FullCost)
	}
	if p.NeedBytes != 3*4096 || p.SpanBytes != 3*4096 {
		t.Fatalf("need=%d span=%d bytes, want 12288 each", p.NeedBytes, p.SpanBytes)
	}
	// Each span must carry exactly its needed chunk, within bounds.
	for i, want := range []int{10, 500, 1000} {
		sp := p.Spans[i]
		if len(sp.Chunks) != 1 || sp.Chunks[0] != want {
			t.Fatalf("span %d chunks %v, want [%d]", i, sp.Chunks, want)
		}
		cm := m.Chunks[want]
		if sp.Off != int64(cm.Offset) || sp.Len != int64(cm.Size) {
			t.Fatalf("span %d [%d,+%d) does not match chunk [%d,+%d)", i, sp.Off, sp.Len, cm.Offset, cm.Size)
		}
	}
}

func TestPlanScatteredNeedPicksFull(t *testing.T) {
	costs := simclock.DefaultCosts()
	// Need every 12th chunk of a 512 × 8 KiB container: gaps of 88 KiB sit
	// just above the ~80 KiB coalesce threshold, so nothing merges and the
	// ~43 per-span request latencies (~94 ms) land within the full-read
	// bias margin of the single 102 ms full read — the planner must prefer
	// the full (shareable) object.
	m := planMeta(512, 8192) // 4 MiB
	var idxs []int
	for i := 0; i < 512; i += 12 {
		idxs = append(idxs, i)
	}
	p := Plan(m, needOf(m, idxs...), costs)
	if !p.Full {
		t.Fatalf("%d scattered spans (cost %v) should lose to one full read (%v)", len(p.Spans), p.RangedCost, p.FullCost)
	}
	if len(p.Spans) != 0 {
		t.Fatalf("full plan still carries %d spans", len(p.Spans))
	}
}

func TestPlanCoalescesSmallGaps(t *testing.T) {
	costs := simclock.DefaultCosts()
	gap := int64(costs.OSSRequestLatency.Seconds() * costs.OSSReadBandwidth) // ~80 KiB

	// Chunks 4 KiB each; need two chunks whose gap is below the threshold
	// → one span reading through the gap.
	m := planMeta(1024, 4096)
	a, b := 100, 100+int(gap/4096) // gap = (b-a-1)*4096 < gap threshold
	p := Plan(m, needOf(m, a, b), costs)
	if p.Full || len(p.Spans) != 1 {
		t.Fatalf("close chunks not coalesced: full=%v spans=%+v", p.Full, p.Spans)
	}
	sp := p.Spans[0]
	if !reflect.DeepEqual(sp.Chunks, []int{a, b}) {
		t.Fatalf("span chunks %v, want [%d %d]", sp.Chunks, a, b)
	}
	wantLen := int64(m.Chunks[b].Offset+m.Chunks[b].Size) - int64(m.Chunks[a].Offset)
	if sp.Off != int64(m.Chunks[a].Offset) || sp.Len != wantLen {
		t.Fatalf("span [%d,+%d), want [%d,+%d)", sp.Off, sp.Len, m.Chunks[a].Offset, wantLen)
	}
	if p.SpanBytes != wantLen || p.NeedBytes != 2*4096 {
		t.Fatalf("span=%d (want %d) need=%d (want %d)", p.SpanBytes, wantLen, p.NeedBytes, 2*4096)
	}

	// Push the two chunks past the threshold → two spans.
	far := a + int(gap/4096) + 2
	p = Plan(m, needOf(m, a, far), costs)
	if p.Full || len(p.Spans) != 2 {
		t.Fatalf("distant chunks wrongly coalesced: full=%v spans=%+v", p.Full, p.Spans)
	}
}

func TestPlanDuplicateFingerprintResolvesFirstRecord(t *testing.T) {
	costs := simclock.DefaultCosts()
	m := planMeta(64, 4096)
	m.Chunks[40].FP = m.Chunks[3].FP // duplicate: Find would return index 3
	p := Plan(m, needOf(m, 40), costs)
	if p.Full {
		t.Fatal("single-chunk need planned a full read")
	}
	if len(p.Spans) != 1 || len(p.Spans[0].Chunks) != 1 || p.Spans[0].Chunks[0] != 3 {
		t.Fatalf("duplicate fp resolved to %+v, want chunk index 3 (the first record, as Find returns)", p.Spans)
	}
}

func TestPlanIgnoresAbsentFingerprintsAndEmptyNeed(t *testing.T) {
	costs := simclock.DefaultCosts()
	m := planMeta(32, 4096)
	var absent fingerprint.FP
	absent[0] = 0xFF
	p := Plan(m, map[fingerprint.FP]bool{absent: true}, costs)
	if !p.Full {
		t.Fatal("nothing resolvable must degrade to a full plan")
	}
	p = Plan(m, nil, costs)
	if !p.Full || p.RangedCost != p.FullCost {
		t.Fatalf("empty need: %+v", p)
	}
}

func TestPlanIsDeterministic(t *testing.T) {
	costs := simclock.DefaultCosts()
	m := planMeta(256, 4096)
	need := needOf(m, 7, 8, 9, 64, 65, 200, 13, 99, 150, 151)
	first := Plan(m, need, costs)
	for i := 0; i < 16; i++ {
		if got := Plan(m, need, costs); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: plan differs:\n%+v\nvs\n%+v", i, got, first)
		}
	}
}
