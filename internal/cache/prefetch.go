package cache

import (
	"sync"

	"slimstore/internal/container"
)

// Prefetcher implements LAW-based prefetching (paper §V-A): background
// workers walk the container sequence derived from the recipe and read
// containers ahead of the restore position, so the restore pipeline finds
// every container already in memory. With enough workers the prefetch
// rate exceeds the restore rate and the pipeline never blocks on OSS.
//
// Wrap a policy's Fetcher with NewPrefetcher's Fetch. Virtual-time
// experiments additionally model the I/O overlap with
// simclock.Account.ElapsedOverlapped(threads).
//
// The prefetcher is safe for any consumption order: a request for a
// container that has not been dispatched yet (the consumer ran ahead of
// the prefetch window, or skipped containers whose chunks it already had)
// is fetched directly and its slot cancelled, so the pipeline can never
// deadlock — at worst it degrades to direct fetching.
type Prefetcher struct {
	fetch Fetcher

	mu    sync.Mutex
	slots map[container.ID]*pfSlot
	stats PrefetchStats

	jobs chan container.ID
	sem  chan struct{} // bounds dispatched-but-unconsumed containers
	wg   sync.WaitGroup
	stop chan struct{}
}

// PrefetchStats reports how effective a restore's LAW prefetching was:
// how many container slots the feeder dispatched to workers, how many of
// those the consumer actually took from their slot, how many requests
// bypassed the slots entirely (rereads, or the consumer outran the
// prefetch window), and how many dispatched slots were never consumed
// (work the workers fetched for nothing — normally zero; early aborts
// and shutdown races strand slots).
//
// The split between Consumed and Direct depends on goroutine scheduling
// (a fast consumer overtakes the feeder), so these counters are
// observability, not determinism: virtual-time accounting is unaffected
// because each container's read is charged exactly once whichever side
// issues it. Twin tests normalise this field before DeepEqual.
type PrefetchStats struct {
	Dispatched int // slots handed to prefetch workers
	Consumed   int // fetches served from a dispatched slot
	Direct     int // fetches that bypassed the slots
	Cancelled  int // dispatched slots never consumed
}

type pfSlot struct {
	done       chan struct{}
	c          *container.Container
	err        error
	consumed   bool
	dispatched bool
}

// NewPrefetcher starts `threads` workers prefetching the containers of seq
// in first-need order. buffer bounds how many fetched-but-unconsumed
// containers may be held (it must be >= 1; it also bounds memory).
// threads <= 0 disables prefetching (Fetch degenerates to fetch).
func NewPrefetcher(fetch Fetcher, seq []Request, threads, buffer int) *Prefetcher {
	p := &Prefetcher{fetch: fetch, slots: make(map[container.ID]*pfSlot), stop: make(chan struct{})}
	if threads <= 0 {
		return p
	}
	if buffer < threads {
		buffer = threads
	}
	// Unique containers in order of first need.
	seen := make(map[container.ID]bool)
	var order []container.ID
	for i := range seq {
		id := seq[i].Container
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
	}
	for _, id := range order {
		p.slots[id] = &pfSlot{done: make(chan struct{})}
	}

	p.jobs = make(chan container.ID)
	p.sem = make(chan struct{}, buffer)
	for w := 0; w < threads; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.jobs)
		for _, id := range order {
			// Acquire the buffer slot in dispatch order so an early
			// container can never be starved of a slot by later ones.
			select {
			case p.sem <- struct{}{}:
			case <-p.stop:
				return
			}
			p.mu.Lock()
			s := p.slots[id]
			if s.consumed {
				// The consumer already fetched it directly; skip.
				p.mu.Unlock()
				<-p.sem
				continue
			}
			s.dispatched = true
			p.stats.Dispatched++
			p.mu.Unlock()
			select {
			case p.jobs <- id:
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

func (p *Prefetcher) worker() {
	defer p.wg.Done()
	for id := range p.jobs {
		p.mu.Lock()
		s := p.slots[id]
		p.mu.Unlock()
		s.c, s.err = p.fetch(id)
		close(s.done)
	}
}

// Fetch returns the container: from its prefetch slot when the slot is
// dispatched or done, directly otherwise (rereads, or requests that
// outran the prefetch window).
func (p *Prefetcher) Fetch(id container.ID) (*container.Container, error) {
	p.mu.Lock()
	s := p.slots[id]
	if s == nil || s.consumed {
		p.stats.Direct++
		p.mu.Unlock()
		return p.fetch(id)
	}
	s.consumed = true
	dispatched := s.dispatched
	if !dispatched {
		p.stats.Direct++
	}
	p.mu.Unlock()
	if !dispatched {
		// Not in flight yet: fetch directly; the feeder will skip the
		// consumed slot without spending a buffer token.
		return p.fetch(id)
	}
	select {
	case <-s.done:
	case <-p.stop:
		// Shutdown race: the feeder marks a slot dispatched before handing
		// it to a worker, so Close can strand a dispatched slot whose done
		// channel will never close. Fall back to a direct fetch unless the
		// worker did complete it.
		select {
		case <-s.done:
		default:
			p.mu.Lock()
			p.stats.Direct++
			p.mu.Unlock()
			return p.fetch(id)
		}
	}
	<-p.sem // free the buffer slot
	p.mu.Lock()
	p.stats.Consumed++
	p.mu.Unlock()
	return s.c, s.err
}

// Stats snapshots the prefetcher's effectiveness counters. Cancelled is
// derived: dispatched slots whose fetch no consumer ever took.
func (p *Prefetcher) Stats() PrefetchStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Cancelled = st.Dispatched - st.Consumed
	return st
}

// Close stops the workers; safe to call multiple times.
func (p *Prefetcher) Close() {
	select {
	case <-p.stop:
		return
	default:
		close(p.stop)
	}
	p.wg.Wait()
}
