package cache

import (
	"sync"

	"slimstore/internal/container"
)

// Prefetcher implements LAW-based prefetching (paper §V-A): background
// workers walk the container sequence derived from the recipe and read
// containers ahead of the restore position, so the restore pipeline finds
// every container already in memory. With enough workers the prefetch
// rate exceeds the restore rate and the pipeline never blocks on OSS.
//
// Wrap a policy's Fetcher with NewPrefetcher's Fetch. Virtual-time
// experiments additionally model the I/O overlap with
// simclock.Account.ElapsedOverlapped(threads).
//
// The prefetcher is safe for any consumption order: a request for a
// container that has not been dispatched yet (the consumer ran ahead of
// the prefetch window, or skipped containers whose chunks it already had)
// is fetched directly and its slot cancelled, so the pipeline can never
// deadlock — at worst it degrades to direct fetching.
type Prefetcher struct {
	fetch Fetcher

	mu    sync.Mutex
	slots map[container.ID]*pfSlot

	jobs chan container.ID
	sem  chan struct{} // bounds dispatched-but-unconsumed containers
	wg   sync.WaitGroup
	stop chan struct{}
}

type pfSlot struct {
	done       chan struct{}
	c          *container.Container
	err        error
	consumed   bool
	dispatched bool
}

// NewPrefetcher starts `threads` workers prefetching the containers of seq
// in first-need order. buffer bounds how many fetched-but-unconsumed
// containers may be held (it must be >= 1; it also bounds memory).
// threads <= 0 disables prefetching (Fetch degenerates to fetch).
func NewPrefetcher(fetch Fetcher, seq []Request, threads, buffer int) *Prefetcher {
	p := &Prefetcher{fetch: fetch, slots: make(map[container.ID]*pfSlot), stop: make(chan struct{})}
	if threads <= 0 {
		return p
	}
	if buffer < threads {
		buffer = threads
	}
	// Unique containers in order of first need.
	seen := make(map[container.ID]bool)
	var order []container.ID
	for i := range seq {
		id := seq[i].Container
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
	}
	for _, id := range order {
		p.slots[id] = &pfSlot{done: make(chan struct{})}
	}

	p.jobs = make(chan container.ID)
	p.sem = make(chan struct{}, buffer)
	for w := 0; w < threads; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.jobs)
		for _, id := range order {
			// Acquire the buffer slot in dispatch order so an early
			// container can never be starved of a slot by later ones.
			select {
			case p.sem <- struct{}{}:
			case <-p.stop:
				return
			}
			p.mu.Lock()
			s := p.slots[id]
			if s.consumed {
				// The consumer already fetched it directly; skip.
				p.mu.Unlock()
				<-p.sem
				continue
			}
			s.dispatched = true
			p.mu.Unlock()
			select {
			case p.jobs <- id:
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

func (p *Prefetcher) worker() {
	defer p.wg.Done()
	for id := range p.jobs {
		p.mu.Lock()
		s := p.slots[id]
		p.mu.Unlock()
		s.c, s.err = p.fetch(id)
		close(s.done)
	}
}

// Fetch returns the container: from its prefetch slot when the slot is
// dispatched or done, directly otherwise (rereads, or requests that
// outran the prefetch window).
func (p *Prefetcher) Fetch(id container.ID) (*container.Container, error) {
	p.mu.Lock()
	s := p.slots[id]
	if s == nil || s.consumed {
		p.mu.Unlock()
		return p.fetch(id)
	}
	s.consumed = true
	dispatched := s.dispatched
	p.mu.Unlock()
	if !dispatched {
		// Not in flight yet: fetch directly; the feeder will skip the
		// consumed slot without spending a buffer token.
		return p.fetch(id)
	}
	select {
	case <-s.done:
	case <-p.stop:
		// Shutdown race: the feeder marks a slot dispatched before handing
		// it to a worker, so Close can strand a dispatched slot whose done
		// channel will never close. Fall back to a direct fetch unless the
		// worker did complete it.
		select {
		case <-s.done:
		default:
			return p.fetch(id)
		}
	}
	<-p.sem // free the buffer slot
	return s.c, s.err
}

// Close stops the workers; safe to call multiple times.
func (p *Prefetcher) Close() {
	select {
	case <-p.stop:
		return
	default:
		close(p.stop)
	}
	p.wg.Wait()
}
