package cache

import (
	"fmt"
	"os"
	"path/filepath"

	"slimstore/internal/fingerprint"
)

// spillStore is the FV cache's Cache_d layer (paper §V-A): chunks demoted
// from memory park here until the restore position approaches them. With
// an empty dir it holds payloads in memory (the default for experiments,
// where virtual time charges the disk cost); with a directory it spills
// payloads to one file per chunk — the paper's actual L-node-local-disk
// deployment.
type spillStore struct {
	dir   string // "" = in-memory
	mem   map[fingerprint.FP][]byte
	sizes map[fingerprint.FP]int
	bytes int64
}

func newSpillStore(dir string) *spillStore {
	return &spillStore{
		dir:   dir,
		mem:   make(map[fingerprint.FP][]byte),
		sizes: make(map[fingerprint.FP]int),
	}
}

func (s *spillStore) path(fp fingerprint.FP) string {
	return filepath.Join(s.dir, fp.String()+".chunk")
}

// put parks a chunk. The caller has removed it from the memory layer.
func (s *spillStore) put(fp fingerprint.FP, data []byte) error {
	if _, dup := s.sizes[fp]; dup {
		return nil
	}
	if s.dir != "" {
		if err := os.WriteFile(s.path(fp), data, 0o600); err != nil {
			return fmt.Errorf("cache: spill %s: %w", fp.Short(), err)
		}
	} else {
		s.mem[fp] = data
	}
	s.sizes[fp] = len(data)
	s.bytes += int64(len(data))
	return nil
}

// has reports whether fp is parked here.
func (s *spillStore) has(fp fingerprint.FP) bool {
	_, ok := s.sizes[fp]
	return ok
}

// take retrieves and removes a parked chunk.
func (s *spillStore) take(fp fingerprint.FP) ([]byte, bool, error) {
	n, ok := s.sizes[fp]
	if !ok {
		return nil, false, nil
	}
	var data []byte
	if s.dir != "" {
		b, err := os.ReadFile(s.path(fp))
		if err != nil {
			return nil, false, fmt.Errorf("cache: read spill %s: %w", fp.Short(), err)
		}
		os.Remove(s.path(fp))
		data = b
	} else {
		data = s.mem[fp]
		delete(s.mem, fp)
	}
	delete(s.sizes, fp)
	s.bytes -= int64(n)
	return data, true, nil
}

// drop discards a parked chunk.
func (s *spillStore) drop(fp fingerprint.FP) {
	n, ok := s.sizes[fp]
	if !ok {
		return
	}
	if s.dir != "" {
		os.Remove(s.path(fp))
	} else {
		delete(s.mem, fp)
	}
	delete(s.sizes, fp)
	s.bytes -= int64(n)
}

// close removes every parked chunk (end of the restore job).
func (s *spillStore) close() {
	if s.dir != "" {
		for fp := range s.sizes {
			os.Remove(s.path(fp))
		}
	}
	s.mem = nil
	s.sizes = nil
	s.bytes = 0
}
