package cache

import (
	"sort"
	"time"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/simclock"
)

// This file is the ranged-read planner (DESIGN.md §10.3). After reverse
// deduplication and SCC, a container referenced by an old version often
// holds only a few chunks that version still needs; fetching the whole
// 4 MiB object to serve 32 KiB is read amplification the simclock cost
// model makes visible. Given the chunks a restore needs from a container
// and its metadata, Plan chooses between one full GET and k coalesced
// ranged GETs by comparing the modelled virtual-time cost of each.

// ReadPlan is the planner's verdict for one container.
type ReadPlan struct {
	// Full selects a whole-object read (when dense enough that span
	// requests would cost more than the saved bandwidth).
	Full bool
	// Spans are the coalesced ranges to fetch when !Full, in ascending
	// offset order, chunk indexes resolved exactly as Meta.Find would.
	Spans []container.Span
	// NeedBytes is the payload actually required (sum of needed chunk
	// sizes); SpanBytes includes the coalescing gaps fetched alongside.
	NeedBytes int64
	SpanBytes int64
	// FullCost and RangedCost are the modelled virtual times the choice
	// compared.
	FullCost   time.Duration
	RangedCost time.Duration
}

// coalesceGap returns the break-even gap in bytes: fetching g gap bytes
// costs g/bandwidth, splitting a span costs one request latency, so gaps
// up to latency×bandwidth are cheaper to read through than to split on.
func coalesceGap(costs simclock.Costs) int64 {
	return int64(costs.OSSRequestLatency.Seconds() * costs.OSSReadBandwidth)
}

// readCost models one OSS read session of k requests totalling n bytes.
func readCost(costs simclock.Costs, k int, n int64) time.Duration {
	d := time.Duration(k) * costs.OSSRequestLatency
	if costs.OSSReadBandwidth > 0 {
		d += time.Duration(float64(n) / costs.OSSReadBandwidth * float64(time.Second))
	}
	return d
}

// Plan decides how to read container m to serve the fingerprints in need.
// It resolves each needed fingerprint to the same record Meta.Find would
// return (the first, in chunk order), coalesces the resulting payload
// ranges when the gap between them is cheaper to read through than a new
// request (gap ≤ latency×bandwidth), and compares the modelled cost of
// the span reads against one full-object read. Fingerprints absent from m
// are ignored — the caller resolved the sequence under pins, so absence
// means the request is served by a different container.
//
// The output is deterministic: chunk order drives resolution and span
// order, so equal (meta, need) inputs always produce the same plan.
func Plan(m *container.Meta, need map[fingerprint.FP]bool, costs simclock.Costs) ReadPlan {
	resolved := make(map[fingerprint.FP]bool, len(need))
	var idxs []int
	for i := range m.Chunks {
		fp := m.Chunks[i].FP
		if need[fp] && !resolved[fp] {
			resolved[fp] = true
			idxs = append(idxs, i)
		}
	}
	var p ReadPlan
	fullBytes := int64(m.DataSize) + container.FooterSize
	p.FullCost = readCost(costs, 1, fullBytes)
	if len(idxs) == 0 {
		// Nothing needed here; degenerate full plan so callers that fetch
		// anyway still behave.
		p.Full = true
		p.RangedCost = p.FullCost
		return p
	}
	sort.Slice(idxs, func(a, b int) bool {
		ca, cb := &m.Chunks[idxs[a]], &m.Chunks[idxs[b]]
		if ca.Offset != cb.Offset {
			return ca.Offset < cb.Offset
		}
		return idxs[a] < idxs[b]
	})

	gap := coalesceGap(costs)
	var spans []container.Span
	for _, i := range idxs {
		cm := &m.Chunks[i]
		off, end := int64(cm.Offset), int64(cm.Offset)+int64(cm.Size)
		p.NeedBytes += int64(cm.Size)
		if n := len(spans); n > 0 {
			last := &spans[n-1]
			lastEnd := last.Off + last.Len
			if off <= lastEnd+gap {
				if end > lastEnd {
					last.Len = end - last.Off
				}
				last.Chunks = append(last.Chunks, i)
				continue
			}
		}
		spans = append(spans, container.Span{Off: off, Len: end - off, Chunks: []int{i}})
	}
	for i := range spans {
		p.SpanBytes += spans[i].Len
	}
	p.RangedCost = readCost(costs, len(spans), p.SpanBytes)
	// Ranged must beat full by a clear margin, not a hair: with the gap
	// threshold at the latency/bandwidth break-even, greedy coalescing
	// makes RangedCost ≤ FullCost almost always, but a full object is
	// admissible to the node-wide shared cache and reusable by every
	// concurrent job, while span reads serve only this need-set. The bias
	// keeps near-dense restores on the shareable path.
	if p.RangedCost < p.FullCost-p.FullCost/8 {
		p.Spans = spans
	} else {
		p.Full = true
	}
	return p
}
