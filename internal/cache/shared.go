package cache

import (
	"container/list"
	"sync"

	"slimstore/internal/container"
)

// Shared is the node-wide restore container cache with singleflight
// fetching (DESIGN.md §10). It sits UNDER the per-job cache policies and
// ABOVE container.Store: when many concurrent jobs restore overlapping
// versions, each job's policy still decides what to keep per job, but a
// container any job fetched recently is served from node memory, and
// concurrent fetches of the same container collapse into one OSS GET.
//
// Three properties the engine relies on:
//
//   - Charging: exactly one job — the one that wins the singleflight race
//     — pays the OSS simclock charge for a fetch; hits and riders record
//     stats only. Per-job virtual-time composition is preserved: every
//     charge on a job's account comes from that job's own calls.
//   - Admission: the cache is segmented into a probation segment (new
//     entries, at most a quarter of the budget) and a protected segment
//     (entries hit again after admission). A cold sweep by one job churns
//     probation only; it cannot evict another job's re-used working set.
//   - Reference counting: each restore job holds a session; the entries
//     the session touched most recently (a sliding window) carry a
//     reference and are never evicted while referenced — the containers a
//     job is actively assembling chunks from cannot be churned out by
//     other jobs. References decay as the session touches further
//     containers and are all dropped at Close. Eviction only reclaims
//     unreferenced entries; when referenced entries hold all the space,
//     admission is refused rather than the budget exceeded.
//
// Lock order: the internal mutex is a leaf strictly below ContainerLocks
// — jobs call into Shared while holding their restore pins, and Shared
// never acquires any other lock (the singleflight OSS fetch runs outside
// the mutex). Invalidation callbacks from container.Store likewise only
// take the leaf mutex.
type Shared struct {
	budget  int64 // total byte budget across both segments
	probCap int64 // probation segment budget (budget / 4)

	mu        sync.Mutex
	entries   map[container.ID]*sharedEntry
	probation *list.List // front = most recent; new entries land here
	protected *list.List // front = most recent; entries hit again
	probBytes int64
	protBytes int64
	inflight  map[container.ID]*sharedFlight
	stats     SharedStats
}

// sharedEntry is one cached container.
type sharedEntry struct {
	id    container.ID
	c     *container.Container
	bytes int64
	refs  int // sessions currently holding this entry
	prot  bool
	elem  *list.Element
}

// sharedFlight is one in-flight singleflight fetch.
type sharedFlight struct {
	done  chan struct{}
	c     *container.Container
	err   error
	stale bool // invalidated mid-flight: publish to waiters, do not admit
}

// SharedStats is a snapshot of the node-wide cache counters.
type SharedStats struct {
	Hits          int64 // fetches served from cached entries
	Misses        int64 // fetches that went to OSS (singleflight owners)
	InflightJoins int64 // fetches that rode another job's in-flight GET
	Admits        int64 // containers admitted to the cache
	Evictions     int64 // entries evicted for space
	Rejects       int64 // admissions refused (referenced entries hold the space)
	Invalidations int64 // entries dropped by store invalidation
	Bytes         int64 // resident bytes, both segments
	Entries       int64 // resident containers
}

// DefaultSharedBytes is the node-wide cache budget when the config leaves
// it zero: enough for a few dozen default-size containers without
// rivaling the per-job policy budgets.
const DefaultSharedBytes = 256 << 20

// minSharedBytes keeps degenerate budgets functional in tests.
const minSharedBytes = 64 << 10

// NewShared returns a shared cache with the given byte budget.
// budget <= 0 selects DefaultSharedBytes.
func NewShared(budget int64) *Shared {
	if budget <= 0 {
		budget = DefaultSharedBytes
	}
	if budget < minSharedBytes {
		budget = minSharedBytes
	}
	return &Shared{
		budget:    budget,
		probCap:   budget / 4,
		entries:   make(map[container.ID]*sharedEntry),
		probation: list.New(),
		protected: list.New(),
		inflight:  make(map[container.ID]*sharedFlight),
	}
}

// Stats returns a snapshot of the counters.
func (s *Shared) Stats() SharedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Bytes = s.probBytes + s.protBytes
	st.Entries = int64(len(s.entries))
	return st
}

// Invalidate drops id (container rewritten, compacted, or deleted).
// Containers already handed to jobs remain valid byte slices; only the
// cache forgets them. An in-flight fetch of id is poisoned: its waiters
// still receive the fetched value — they resolved it under their restore
// pins, so it is the version their sequence needs — but it is not
// admitted for later jobs.
func (s *Shared) Invalidate(id container.ID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.inflight[id]; ok {
		f.stale = true
	}
	e, ok := s.entries[id]
	if !ok {
		return
	}
	s.removeLocked(e)
	s.stats.Invalidations++
}

// removeLocked detaches an entry from its segment and the map.
func (s *Shared) removeLocked(e *sharedEntry) {
	if e.prot {
		s.protected.Remove(e.elem)
		s.protBytes -= e.bytes
	} else {
		s.probation.Remove(e.elem)
		s.probBytes -= e.bytes
	}
	delete(s.entries, e.id)
}

// FetchSource says how a session fetch was satisfied.
type FetchSource int

// Fetch outcomes.
const (
	SrcFetched FetchSource = iota // this job performed (and paid for) the OSS GET
	SrcHit                        // served from the node-wide cache
	SrcJoined                     // rode another job's in-flight GET
)

// sessionRefWindow is how many recently touched entries a session keeps
// referenced. It covers the containers a job's assembly pipeline (and its
// prefetch workers) are actively drawing chunks from; older references
// decay so one long job cannot pin its entire footprint and starve
// admission for everyone else.
const sessionRefWindow = 8

// SharedSession is one job's handle on the shared cache. It holds
// references on the entries the job touched most recently; all session
// state is guarded by the shared cache's own mutex, so one session may be
// used from many goroutines (the LAW prefetch workers).
type SharedSession struct {
	s    *Shared
	ring []*sharedEntry // last touches, each holding one reference; nil = touch with no entry
	pos  int
}

// NewSession opens a session. Callers must Close it when the job ends.
func (s *Shared) NewSession() *SharedSession {
	return &SharedSession{s: s}
}

// Close releases every reference the session holds. Safe to call twice.
func (ss *SharedSession) Close() {
	ss.s.mu.Lock()
	defer ss.s.mu.Unlock()
	for _, e := range ss.ring {
		if e != nil {
			e.refs--
		}
	}
	ss.ring, ss.pos = nil, 0
}

// touchLocked records one fetch-path touch, referencing e (may be nil for
// a touch that yielded no cache entry — the decay still advances, so
// rejected admissions eventually release the references blocking them).
// Decrementing a removed entry's count is harmless: eviction only ever
// inspects entries still resident in the segments.
func (ss *SharedSession) touchLocked(e *sharedEntry) {
	if e != nil {
		e.refs++
	}
	if len(ss.ring) < sessionRefWindow {
		ss.ring = append(ss.ring, e)
		return
	}
	old := ss.ring[ss.pos]
	ss.ring[ss.pos] = e
	ss.pos = (ss.pos + 1) % sessionRefWindow
	if old != nil {
		old.refs--
	}
}

// Get returns a cached container, or (nil, false). A hit promotes the
// entry to the protected segment and references it for this session.
func (ss *SharedSession) Get(id container.ID) (*container.Container, bool) {
	s := ss.s
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, false
	}
	s.stats.Hits++
	s.promoteLocked(e)
	ss.touchLocked(e)
	return e.c, true
}

// Fetch returns the container for id: from the cache, by joining an
// in-flight fetch from any session, or by running fetch (exactly one
// caller per container runs it at a time — that caller's job account
// carries the OSS charge). A successful owned fetch is admitted to the
// probation segment when unreferenced space allows.
func (ss *SharedSession) Fetch(id container.ID, fetch func() (*container.Container, error)) (*container.Container, FetchSource, error) {
	s := ss.s
	for {
		s.mu.Lock()
		if e, ok := s.entries[id]; ok {
			s.stats.Hits++
			s.promoteLocked(e)
			ss.touchLocked(e)
			s.mu.Unlock()
			return e.c, SrcHit, nil
		}
		if f, ok := s.inflight[id]; ok {
			s.mu.Unlock()
			<-f.done
			if f.err != nil {
				// The owner's error may be transient for us (its context,
				// its retry budget); retry the loop as a fresh owner.
				return ss.ownFetch(id, fetch)
			}
			s.mu.Lock()
			s.stats.InflightJoins++
			if e, ok := s.entries[id]; ok && e.c == f.c {
				ss.touchLocked(e)
			} else {
				ss.touchLocked(nil)
			}
			s.mu.Unlock()
			return f.c, SrcJoined, nil
		}
		s.mu.Unlock()
		return ss.ownFetch(id, fetch)
	}
}

// ownFetch performs the singleflight-owned fetch for id. Registration can
// lose a race with another would-be owner, in which case it joins.
func (ss *SharedSession) ownFetch(id container.ID, fetch func() (*container.Container, error)) (*container.Container, FetchSource, error) {
	s := ss.s
	s.mu.Lock()
	if e, ok := s.entries[id]; ok {
		s.stats.Hits++
		s.promoteLocked(e)
		ss.touchLocked(e)
		s.mu.Unlock()
		return e.c, SrcHit, nil
	}
	if f, ok := s.inflight[id]; ok {
		s.mu.Unlock()
		<-f.done
		if f.err != nil {
			return ss.ownFetch(id, fetch)
		}
		s.mu.Lock()
		s.stats.InflightJoins++
		if e, ok := s.entries[id]; ok && e.c == f.c {
			ss.touchLocked(e)
		} else {
			ss.touchLocked(nil)
		}
		s.mu.Unlock()
		return f.c, SrcJoined, nil
	}
	f := &sharedFlight{done: make(chan struct{})}
	s.inflight[id] = f
	s.stats.Misses++
	s.mu.Unlock()

	c, err := fetch() // outside the mutex: this is the OSS round trip
	s.mu.Lock()
	delete(s.inflight, id)
	f.c, f.err = c, err
	if err == nil && !f.stale {
		// Reference (or, on a refused admission, just advance the decay
		// window) regardless of the admission outcome.
		ss.touchLocked(s.admitLocked(id, c))
	}
	s.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, SrcFetched, err
	}
	return c, SrcFetched, nil
}

// promoteLocked moves a hit entry to the protected segment's front,
// demoting protected LRU entries to probation as needed to respect the
// protected budget.
func (s *Shared) promoteLocked(e *sharedEntry) {
	if e.prot {
		s.protected.MoveToFront(e.elem)
		return
	}
	s.probation.Remove(e.elem)
	s.probBytes -= e.bytes
	e.prot = true
	e.elem = s.protected.PushFront(e)
	s.protBytes += e.bytes

	protCap := s.budget - s.probCap
	for s.protBytes > protCap && s.protected.Len() > 1 {
		back := s.protected.Back()
		victim := back.Value.(*sharedEntry)
		if victim == e {
			break
		}
		s.protected.Remove(back)
		s.protBytes -= victim.bytes
		victim.prot = false
		victim.elem = s.probation.PushFront(victim)
		s.probBytes += victim.bytes
	}
	s.evictProbationLocked()
}

// admitLocked inserts a fetched container into probation, evicting
// unreferenced probation tail entries to make room. Returns nil (and
// counts a reject) when referenced entries hold all the space or the
// container alone exceeds the probation budget.
func (s *Shared) admitLocked(id container.ID, c *container.Container) *sharedEntry {
	bytes := int64(len(c.Data))
	if bytes > s.probCap {
		s.stats.Rejects++
		return nil
	}
	if e, ok := s.entries[id]; ok {
		// Another path admitted it while we fetched; keep the resident one.
		return e
	}
	e := &sharedEntry{id: id, c: c, bytes: bytes}
	e.elem = s.probation.PushFront(e)
	s.probBytes += bytes
	s.entries[id] = e
	e.refs++ // shield the newcomer from its own eviction pass
	fits := s.evictProbationLocked()
	e.refs--
	if !fits {
		// Could not get back under budget (everything else is referenced):
		// un-admit the newcomer rather than exceed the bound.
		s.removeLocked(e)
		s.stats.Rejects++
		return nil
	}
	s.stats.Admits++
	return e
}

// evictProbationLocked evicts unreferenced probation entries, oldest
// first, until the probation segment fits its budget. Reports whether the
// budget is respected afterwards.
func (s *Shared) evictProbationLocked() bool {
	for elem := s.probation.Back(); elem != nil && s.probBytes > s.probCap; {
		e := elem.Value.(*sharedEntry)
		prev := elem.Prev()
		if e.refs == 0 {
			s.removeLocked(e)
			s.stats.Evictions++
		}
		elem = prev
	}
	return s.probBytes <= s.probCap
}
