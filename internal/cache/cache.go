// Package cache implements the restore caches SLIMSTORE is evaluated
// against (paper §V-A, Fig 8):
//
//   - FV: SLIMSTORE's full-vision chunk cache — a counting bloom filter
//     holds the complete future reference counts of the restoring file, a
//     look-ahead window (LAW) marks chunks needed soon (S_I) versus later
//     (S_L) versus never again (S_U), and a two-layer memory/disk design
//     swaps far-future chunks to the L-node local disk instead of evicting
//     them. With sufficient total capacity every container is read from
//     OSS at most once.
//   - OPT: the LAW-based container cache used with HAR (Belady's policy
//     restricted to the window) — the paper's weaker baseline.
//   - ALACC: forward assembly area plus a chunk cache (FAST'18), the
//     paper's stronger baseline.
//   - LRU: a plain container LRU, used by the restic-style baseline.
//
// All policies implement Restorer over the same container Fetcher, so the
// benchmark harness swaps them freely and compares container reads per
// restored MB (read amplification → OSS bandwidth) under equal budgets.
package cache

import (
	"fmt"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
)

// Request is one chunk occurrence in the restore sequence, in logical
// (recipe) order.
type Request struct {
	FP        fingerprint.FP
	Container container.ID
	Size      uint32
}

// Fetcher reads a whole container from OSS (through a metered store, so
// I/O is charged to the job's account).
type Fetcher func(id container.ID) (*container.Container, error)

// Emit receives each restored chunk's payload in logical order.
type Emit func(data []byte) error

// Stats summarises one restore run.
type Stats struct {
	Requests       int
	LogicalBytes   int64 // restored output bytes
	ContainersRead int   // OSS container fetches (with rereads)
	Rereads        int   // fetches of a container already fetched before
	OSSBytes       int64 // container payload bytes fetched
	MemHits        int
	DiskHits       int   // chunks served from the disk layer (FV only)
	DiskSwaps      int   // chunks demoted to the disk layer (FV only)
	DiskHitBytes   int64 // bytes read back from the disk layer
	DiskSwapBytes  int64 // bytes written to the disk layer

	// Sequence-resolution costs (filled by the restore path, not the
	// policies): container-metadata reads issued while converting the
	// recipe into the request sequence, and how many of the per-record
	// lookups the per-pass memo answered without touching the store.
	ResolveMetaReads    int
	ResolveMetaMemoHits int

	// Node-level restore I/O (filled by the lnode fetch layer, not the
	// policies): fetches served by the shared node-wide cache, fetches
	// that rode another job's in-flight OSS GET, and ranged reads the
	// cost-model planner chose over full-object reads. RangedBytes is the
	// span bytes fetched where a full read would have cost OSSBytes-sized
	// objects; OSSBytes above counts only bytes this job actually fetched.
	SharedHits  int
	SharedJoins int
	RangedReads int   // containers fetched via span reads
	RangedSpans int   // total GetRange calls those reads issued
	RangedBytes int64 // total span bytes fetched
}

// ReadAmplification is containers read per 100 MB of restored data, the
// paper's Fig 8 metric.
func (s Stats) ReadAmplification() float64 {
	if s.LogicalBytes == 0 {
		return 0
	}
	return float64(s.ContainersRead) / (float64(s.LogicalBytes) / (100 << 20))
}

// Restorer executes a restore sequence under one cache policy.
type Restorer interface {
	// Name identifies the policy ("fv", "opt", "alacc", "lru").
	Name() string
	// Restore streams every request's data to emit, fetching containers
	// through fetch as needed.
	Restore(seq []Request, fetch Fetcher, emit Emit) (Stats, error)
}

// Config sizes a cache policy.
type Config struct {
	// MemBytes is the in-memory cache capacity.
	MemBytes int64
	// DiskBytes is the FV disk layer capacity (0 = disabled).
	DiskBytes int64
	// DiskDir, when set, spills the FV disk layer to files in this
	// directory (the paper's Cache_d on L-node local disk); empty keeps
	// demoted chunks in memory and only charges the virtual disk cost.
	DiskDir string
	// LAW is the look-ahead window length in chunks.
	LAW int
	// FAABytes is ALACC's forward assembly area size; defaults to half of
	// MemBytes when zero.
	FAABytes int64
}

func (c Config) withDefaults() Config {
	if c.MemBytes <= 0 {
		c.MemBytes = 64 << 20
	}
	if c.LAW <= 0 {
		c.LAW = 4096
	}
	if c.FAABytes <= 0 {
		c.FAABytes = c.MemBytes / 2
	}
	return c
}

// New constructs a policy by name.
func New(name string, cfg Config) (Restorer, error) {
	switch name {
	case "fv":
		return NewFV(cfg), nil
	case "opt":
		return NewOPT(cfg), nil
	case "alacc":
		return NewALACC(cfg), nil
	case "lru":
		return NewLRU(cfg), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %q", name)
	}
}

// countingFetcher wraps a Fetcher with the bookkeeping shared by every
// policy: container read counts, reread detection, and byte accounting.
type countingFetcher struct {
	fetch Fetcher
	seen  map[container.ID]bool
	stats *Stats
}

func newCountingFetcher(fetch Fetcher, stats *Stats) *countingFetcher {
	return &countingFetcher{fetch: fetch, seen: make(map[container.ID]bool), stats: stats}
}

func (f *countingFetcher) get(id container.ID) (*container.Container, error) {
	c, err := f.fetch(id)
	if err != nil {
		return nil, err
	}
	f.stats.ContainersRead++
	f.stats.OSSBytes += int64(len(c.Data))
	if f.seen[id] {
		f.stats.Rereads++
	}
	f.seen[id] = true
	return c, nil
}
