package cache

import (
	"slimstore/internal/container"
)

// OPT is the look-ahead-window container cache used by HAR (paper §II,
// "optimal restore cache"): Belady's optimal replacement restricted to the
// LAW. The victim is the cached container whose next use lies furthest in
// the window — or outside it entirely. Because the unit is a whole
// container, useless chunks occupy cache space, which is the weakness the
// paper's Fig 8 demonstrates.
type OPT struct {
	cfg Config
}

// NewOPT returns an OPT/LAW container cache policy.
func NewOPT(cfg Config) *OPT { return &OPT{cfg: cfg.withDefaults()} }

// Name implements Restorer.
func (o *OPT) Name() string { return "opt" }

// posQueue is a FIFO of upcoming positions (within the LAW) of one
// container.
type posQueue struct {
	q []int
}

func (p *posQueue) push(i int)  { p.q = append(p.q, i) }
func (p *posQueue) empty() bool { return len(p.q) == 0 }
func (p *posQueue) front() int  { return p.q[0] }
func (p *posQueue) popIf(i int) {
	if len(p.q) > 0 && p.q[0] == i {
		p.q = p.q[1:]
	}
}

// Restore implements Restorer.
func (o *OPT) Restore(seq []Request, fetch Fetcher, emit Emit) (Stats, error) {
	var stats Stats
	cf := newCountingFetcher(fetch, &stats)

	// next[id] holds the positions of id's chunks inside the current LAW.
	next := make(map[container.ID]*posQueue)
	enter := func(i int) {
		if i >= len(seq) {
			return
		}
		id := seq[i].Container
		pq := next[id]
		if pq == nil {
			pq = &posQueue{}
			next[id] = pq
		}
		pq.push(i)
	}
	// Prime the window [0, LAW).
	for i := 0; i < o.cfg.LAW && i < len(seq); i++ {
		enter(i)
	}

	cached := make(map[container.ID]*container.Container)
	var bytes int64

	evictOne := func() {
		// Victim: no use in LAW beats furthest next use; ties break on the
		// smaller ID for determinism.
		var victim container.ID
		victimNext := -1 // -1 = not chosen yet
		for id := range cached {
			pq := next[id]
			n := int(^uint(0) >> 1) // maxInt = no use in LAW
			if pq != nil && !pq.empty() {
				n = pq.front()
			}
			if victimNext == -1 || n > victimNext || (n == victimNext && id < victim) {
				victim = id
				victimNext = n
			}
		}
		bytes -= int64(len(cached[victim].Data))
		delete(cached, victim)
	}

	for i, req := range seq {
		stats.Requests++
		// Slide the LAW forward: position i+LAW-1 enters.
		if i > 0 {
			enter(i + o.cfg.LAW - 1)
		}

		c, ok := cached[req.Container]
		if ok {
			stats.MemHits++
		} else {
			var err error
			c, err = cf.get(req.Container)
			if err != nil {
				return stats, err
			}
			cached[req.Container] = c
			bytes += int64(len(c.Data))
			for bytes > o.cfg.MemBytes && len(cached) > 1 {
				evictOne()
			}
		}
		data, err := c.Get(req.FP)
		if err != nil {
			return stats, err
		}
		stats.LogicalBytes += int64(len(data))
		if err := emit(data); err != nil {
			return stats, err
		}
		// Position i leaves the window.
		if pq := next[req.Container]; pq != nil {
			pq.popIf(i)
			if pq.empty() {
				delete(next, req.Container)
			}
		}
	}
	return stats, nil
}
