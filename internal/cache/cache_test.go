package cache

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

// testRepo builds containers on a mem store and returns a fetcher plus a
// helper to look up chunk payloads.
type testRepo struct {
	cs     *container.Store
	chunks map[fingerprint.FP][]byte
	loc    map[fingerprint.FP]container.ID
	t      *testing.T
}

func newTestRepo(t *testing.T, capacity int) *testRepo {
	t.Helper()
	cs, err := container.NewStore(oss.NewMem(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return &testRepo{cs: cs, chunks: make(map[fingerprint.FP][]byte), loc: make(map[fingerprint.FP]container.ID), t: t}
}

// addContainer stores the given chunk payloads in one container.
func (r *testRepo) addContainer(payloads ...[]byte) container.ID {
	r.t.Helper()
	b := container.NewBuilder(r.cs)
	var id container.ID
	for _, p := range payloads {
		fp := fingerprint.OfBytes(p)
		var err error
		id, err = b.Add(fp, p)
		if err != nil {
			r.t.Fatal(err)
		}
		r.chunks[fp] = p
		r.loc[fp] = id
	}
	if err := b.Flush(); err != nil {
		r.t.Fatal(err)
	}
	return id
}

func (r *testRepo) fetcher() Fetcher {
	return func(id container.ID) (*container.Container, error) { return r.cs.Read(id) }
}

func (r *testRepo) request(p []byte) Request {
	fp := fingerprint.OfBytes(p)
	return Request{FP: fp, Container: r.loc[fp], Size: uint32(len(p))}
}

func payload(seed, n int) []byte {
	b := make([]byte, n)
	rnd := rand.New(rand.NewSource(int64(seed)))
	rnd.Read(b)
	return b
}

// fragmentedScenario builds a deliberately fragmented restore sequence:
// chunks scattered over many containers, with self-references (repeated
// chunks far apart) and large-span containers (chunks of one container
// needed far apart in the stream).
func fragmentedScenario(t *testing.T) (*testRepo, []Request, []byte) {
	r := newTestRepo(t, 64<<10)
	const nContainers = 20
	const perContainer = 8
	chunkBytes := make([][][]byte, nContainers)
	for c := 0; c < nContainers; c++ {
		var ps [][]byte
		for i := 0; i < perContainer; i++ {
			ps = append(ps, payload(c*100+i, 4096))
		}
		chunkBytes[c] = ps
		r.addContainer(ps...)
	}
	var seq []Request
	var want bytes.Buffer
	rnd := rand.New(rand.NewSource(42))
	add := func(p []byte) {
		seq = append(seq, r.request(p))
		want.Write(p)
	}
	// Interleave: mostly sequential within containers but with jumps,
	// self-references and large spans.
	for c := 0; c < nContainers; c++ {
		for i := 0; i < perContainer; i++ {
			add(chunkBytes[c][i])
			if rnd.Intn(5) == 0 {
				// Jump to a chunk from a far container (large span).
				fc := (c + 7 + rnd.Intn(11)) % nContainers
				add(chunkBytes[fc][rnd.Intn(perContainer)])
			}
			if rnd.Intn(9) == 0 && len(seq) > 10 {
				// Self-reference: repeat an earlier chunk.
				prev := seq[rnd.Intn(len(seq))]
				add(r.chunks[prev.FP])
			}
		}
	}
	return r, seq, want.Bytes()
}

func runPolicy(t *testing.T, p Restorer, seq []Request, fetch Fetcher) (Stats, []byte) {
	t.Helper()
	var out bytes.Buffer
	stats, err := p.Restore(seq, fetch, func(d []byte) error {
		out.Write(d)
		return nil
	})
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return stats, out.Bytes()
}

func TestAllPoliciesCorrect(t *testing.T) {
	repo, seq, want := fragmentedScenario(t)
	cfg := Config{MemBytes: 256 << 10, DiskBytes: 4 << 20, LAW: 32}
	for _, name := range []string{"fv", "opt", "alacc", "lru"} {
		p, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, out := runPolicy(t, p, seq, repo.fetcher())
		if !bytes.Equal(out, want) {
			t.Errorf("%s: output mismatch (%d vs %d bytes)", name, len(out), len(want))
		}
		if stats.ContainersRead == 0 || stats.LogicalBytes != int64(len(want)) {
			t.Errorf("%s: suspicious stats %+v", name, stats)
		}
	}
}

func TestNewUnknownPolicy(t *testing.T) {
	if _, err := New("nope", Config{}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFVReadsEachContainerOnce(t *testing.T) {
	repo, seq, _ := fragmentedScenario(t)
	// Ample capacity: the FV guarantee is exactly-once container reads.
	p := NewFV(Config{MemBytes: 64 << 20, DiskBytes: 256 << 20, LAW: 32})
	stats, _ := runPolicy(t, p, seq, repo.fetcher())
	if stats.Rereads != 0 {
		t.Fatalf("FV rereads = %d, want 0", stats.Rereads)
	}
	unique := map[container.ID]bool{}
	for _, r := range seq {
		unique[r.Container] = true
	}
	if stats.ContainersRead != len(unique) {
		t.Fatalf("FV read %d containers, want %d unique", stats.ContainersRead, len(unique))
	}
}

func TestFVTightMemoryUsesDiskLayer(t *testing.T) {
	repo, seq, want := fragmentedScenario(t)
	// Memory fits only a few chunks; disk absorbs the spill.
	p := NewFV(Config{MemBytes: 32 << 10, DiskBytes: 64 << 20, LAW: 16})
	stats, out := runPolicy(t, p, seq, repo.fetcher())
	if !bytes.Equal(out, want) {
		t.Fatal("output mismatch under tight memory")
	}
	if stats.DiskSwaps == 0 {
		t.Fatal("expected disk swaps under tight memory")
	}
	if stats.Rereads != 0 {
		t.Fatalf("rereads = %d despite sufficient disk layer", stats.Rereads)
	}
}

func TestFVBeatsOrMatchesOPTAndLRU(t *testing.T) {
	repo, seq, _ := fragmentedScenario(t)
	cfg := Config{MemBytes: 48 << 10, DiskBytes: 0, LAW: 24}
	fv, _ := runPolicy(t, NewFV(cfg), seq, repo.fetcher())
	opt, _ := runPolicy(t, NewOPT(cfg), seq, repo.fetcher())
	lru, _ := runPolicy(t, NewLRU(cfg), seq, repo.fetcher())
	if fv.ContainersRead > opt.ContainersRead {
		t.Errorf("FV read %d containers, OPT %d — FV should not lose", fv.ContainersRead, opt.ContainersRead)
	}
	if fv.ContainersRead > lru.ContainersRead {
		t.Errorf("FV read %d containers, LRU %d — FV should not lose", fv.ContainersRead, lru.ContainersRead)
	}
}

func TestSelfReferenceHandling(t *testing.T) {
	r := newTestRepo(t, 64<<10)
	a := payload(1, 4096)
	var fill [][]byte
	for i := 0; i < 7; i++ {
		fill = append(fill, payload(100+i, 4096))
	}
	r.addContainer(append([][]byte{a}, fill...)...)
	// Many full-size distractor containers between the two uses of chunk
	// a; an LRU holding ~3 containers must evict a's container.
	var distractors [][]byte
	for c := 0; c < 12; c++ {
		var ps [][]byte
		for i := 0; i < 8; i++ {
			ps = append(ps, payload(1000+c*10+i, 4096))
		}
		r.addContainer(ps...)
		distractors = append(distractors, ps[0])
	}
	var seq []Request
	seq = append(seq, r.request(a))
	for _, d := range distractors {
		seq = append(seq, r.request(d))
	}
	seq = append(seq, r.request(a)) // self-reference beyond any small LAW

	cfg := Config{MemBytes: 3 * 36 << 10, DiskBytes: 0, LAW: 3}
	fv, _ := runPolicy(t, NewFV(cfg), seq, r.fetcher())
	if fv.Rereads != 0 {
		t.Errorf("FV reread a self-referenced container: %+v", fv)
	}
	lru, _ := runPolicy(t, NewLRU(cfg), seq, r.fetcher())
	if lru.Rereads == 0 {
		t.Errorf("LRU unexpectedly held the self-referenced container: %+v", lru)
	}
}

func TestOPTEvictsOutsideLAWFirst(t *testing.T) {
	r := newTestRepo(t, 64<<10)
	// Three containers; cache holds two.
	p1, p2, p3 := payload(1, 4096), payload(2, 4096), payload(3, 4096)
	r.addContainer(p1)
	r.addContainer(p2)
	r.addContainer(p3)
	// Sequence: 1, 2, 3, 2 with LAW covering the whole tail: OPT must
	// evict container 1 (unused ahead), keeping 2 for the final hit.
	seq := []Request{r.request(p1), r.request(p2), r.request(p3), r.request(p2)}
	opt := NewOPT(Config{MemBytes: 2 * 5000, LAW: 10})
	stats, _ := runPolicy(t, opt, seq, r.fetcher())
	if stats.ContainersRead != 3 || stats.Rereads != 0 {
		t.Fatalf("OPT stats = %+v, want 3 reads 0 rereads", stats)
	}
}

func TestStatsReadAmplification(t *testing.T) {
	s := Stats{ContainersRead: 50, LogicalBytes: 200 << 20}
	if ra := s.ReadAmplification(); ra != 25 {
		t.Fatalf("ReadAmplification = %f, want 25", ra)
	}
	if (Stats{}).ReadAmplification() != 0 {
		t.Fatal("empty stats amplification should be 0")
	}
}

func TestPrefetcher(t *testing.T) {
	repo, seq, want := fragmentedScenario(t)
	for _, threads := range []int{0, 1, 2, 6} {
		pf := NewPrefetcher(repo.fetcher(), seq, threads, 8)
		p := NewFV(Config{MemBytes: 64 << 20, DiskBytes: 256 << 20, LAW: 32})
		stats, out := runPolicy(t, p, seq, pf.Fetch)
		pf.Close()
		if !bytes.Equal(out, want) {
			t.Fatalf("threads=%d: output mismatch", threads)
		}
		if stats.Rereads != 0 {
			t.Fatalf("threads=%d: rereads = %d", threads, stats.Rereads)
		}
	}
}

func TestPrefetcherEarlyClose(t *testing.T) {
	repo, seq, _ := fragmentedScenario(t)
	pf := NewPrefetcher(repo.fetcher(), seq, 4, 4)
	// Consume only the first container, then close; must not deadlock.
	if _, err := pf.Fetch(seq[0].Container); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	pf.Close() // idempotent
}

func TestALACCSpansOversizeChunk(t *testing.T) {
	r := newTestRepo(t, 1<<20)
	big := payload(1, 300<<10) // larger than the FAA
	small := payload(2, 4096)
	r.addContainer(big, small)
	seq := []Request{r.request(big), r.request(small)}
	p := NewALACC(Config{MemBytes: 256 << 10, FAABytes: 128 << 10, LAW: 4})
	var out bytes.Buffer
	stats, err := p.Restore(seq, r.fetcher(), func(d []byte) error { out.Write(d); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != len(big)+len(small) {
		t.Fatalf("restored %d bytes", out.Len())
	}
	if stats.LogicalBytes != int64(out.Len()) {
		t.Fatalf("stats = %+v", stats)
	}
}

func BenchmarkRestorePolicies(b *testing.B) {
	// Shared scenario across sub-benchmarks.
	tt := &testing.T{}
	repo, seq, _ := fragmentedScenario(tt)
	for _, name := range []string{"fv", "opt", "alacc", "lru"} {
		b.Run(name, func(b *testing.B) {
			p, err := New(name, Config{MemBytes: 256 << 10, DiskBytes: 4 << 20, LAW: 32})
			if err != nil {
				b.Fatal(err)
			}
			var total int64
			for i := 0; i < b.N; i++ {
				stats, err := p.Restore(seq, repo.fetcher(), func(d []byte) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				total += stats.LogicalBytes
			}
			b.SetBytes(total / int64(b.N))
		})
	}
}

func TestPrefetcherOutOfOrderDegradesGracefully(t *testing.T) {
	// The contract allows consumers to deviate from first-need order; the
	// prefetcher must never deadlock, falling back to direct fetches.
	repo, seq, _ := fragmentedScenario(t)
	pf := NewPrefetcher(repo.fetcher(), seq, 2, 2) // tiny buffer
	defer pf.Close()

	// Consume unique containers in REVERSE first-need order.
	seen := map[container.ID]bool{}
	var order []container.ID
	for _, r := range seq {
		if !seen[r.Container] {
			seen[r.Container] = true
			order = append(order, r.Container)
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		c, err := pf.Fetch(order[i])
		if err != nil {
			t.Fatal(err)
		}
		if c.Meta.ID != order[i] {
			t.Fatalf("fetched %v, want %v", c.Meta.ID, order[i])
		}
	}
}

func TestOPTAndALACCUnderExtremePressure(t *testing.T) {
	// A cache big enough for exactly one container: every policy must
	// still produce correct output, whatever the reread count.
	repo, seq, want := fragmentedScenario(t)
	for _, name := range []string{"opt", "alacc", "lru", "fv"} {
		p, err := New(name, Config{MemBytes: 40 << 10, FAABytes: 20 << 10, LAW: 8})
		if err != nil {
			t.Fatal(err)
		}
		_, out := runPolicy(t, p, seq, repo.fetcher())
		if !bytes.Equal(out, want) {
			t.Fatalf("%s: corrupt output under extreme memory pressure", name)
		}
	}
}

func TestEmptySequence(t *testing.T) {
	repo, _, _ := fragmentedScenario(t)
	for _, name := range []string{"fv", "opt", "alacc", "lru"} {
		p, _ := New(name, Config{})
		stats, err := p.Restore(nil, repo.fetcher(), func([]byte) error { return nil })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.Requests != 0 || stats.ContainersRead != 0 {
			t.Fatalf("%s: empty restore stats %+v", name, stats)
		}
	}
}

func TestEmitErrorPropagates(t *testing.T) {
	repo, seq, _ := fragmentedScenario(t)
	sentinel := fmt.Errorf("sink full")
	for _, name := range []string{"fv", "opt", "alacc", "lru"} {
		p, _ := New(name, Config{MemBytes: 1 << 20, LAW: 16})
		n := 0
		_, err := p.Restore(seq, repo.fetcher(), func([]byte) error {
			n++
			if n == 5 {
				return sentinel
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "sink full") {
			t.Fatalf("%s: emit error lost: %v", name, err)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MemBytes <= 0 || cfg.LAW <= 0 || cfg.FAABytes <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.FAABytes != cfg.MemBytes/2 {
		t.Fatalf("FAA default = %d, want half of %d", cfg.FAABytes, cfg.MemBytes)
	}
}

func TestFVDiskSpillToRealDirectory(t *testing.T) {
	repo, seq, want := fragmentedScenario(t)
	dir := t.TempDir()
	p := NewFV(Config{MemBytes: 32 << 10, DiskBytes: 64 << 20, DiskDir: dir, LAW: 16})
	stats, out := runPolicy(t, p, seq, repo.fetcher())
	if !bytes.Equal(out, want) {
		t.Fatal("output corrupt with on-disk spill")
	}
	if stats.DiskSwaps == 0 || stats.DiskHits == 0 {
		t.Fatalf("spill unused: %+v", stats)
	}
	if stats.Rereads != 0 {
		t.Fatalf("rereads with disk layer: %d", stats.Rereads)
	}
	// The spill directory is cleaned up after the restore.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files left behind", len(ents))
	}
}

func TestSpillStoreModes(t *testing.T) {
	for _, dir := range []string{"", t.TempDir()} {
		s := newSpillStore(dir)
		fp := fingerprint.OfBytes([]byte("x"))
		if err := s.put(fp, []byte("payload")); err != nil {
			t.Fatal(err)
		}
		if !s.has(fp) || s.bytes != 7 {
			t.Fatalf("dir=%q: state after put: has=%v bytes=%d", dir, s.has(fp), s.bytes)
		}
		// Duplicate put is a no-op.
		if err := s.put(fp, []byte("other")); err != nil {
			t.Fatal(err)
		}
		d, ok, err := s.take(fp)
		if err != nil || !ok || string(d) != "payload" {
			t.Fatalf("dir=%q: take = %q, %v, %v", dir, d, ok, err)
		}
		if s.has(fp) || s.bytes != 0 {
			t.Fatalf("dir=%q: state after take", dir)
		}
		if _, ok, _ := s.take(fp); ok {
			t.Fatalf("dir=%q: double take", dir)
		}
		s.put(fp, []byte("again"))
		s.drop(fp)
		if s.has(fp) {
			t.Fatalf("dir=%q: drop failed", dir)
		}
		s.put(fp, []byte("tail"))
		s.close()
	}
}

func TestFVCacheSmallerThanOneChunk(t *testing.T) {
	// Regression: with memory smaller than a single (super)chunk and no
	// disk layer, admitting a fetched container's other chunks must never
	// evict the chunk the current request came for.
	r := newTestRepo(t, 1<<20)
	big := payload(1, 300<<10) // one huge chunk (a superchunk)
	var small [][]byte
	for i := 0; i < 6; i++ {
		small = append(small, payload(10+i, 4<<10))
	}
	r.addContainer(append([][]byte{big}, small...)...)
	var seq []Request
	var want bytes.Buffer
	seq = append(seq, r.request(big))
	want.Write(big)
	for _, p := range small {
		seq = append(seq, r.request(p))
		want.Write(p)
	}
	// Repeat the big chunk at the end (it must be refetchable).
	seq = append(seq, r.request(big))
	want.Write(big)

	p := NewFV(Config{MemBytes: 16 << 10, DiskBytes: 0, LAW: 2})
	stats, out := runPolicy(t, p, seq, r.fetcher())
	if !bytes.Equal(out, want.Bytes()) {
		t.Fatal("output corrupt with cache smaller than one chunk")
	}
	if stats.LogicalBytes != int64(want.Len()) {
		t.Fatalf("stats: %+v", stats)
	}
}
