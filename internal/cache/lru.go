package cache

import (
	"container/list"

	"slimstore/internal/container"
)

// LRU is a container-granularity least-recently-used cache: the classic
// restore cache whose poor behaviour under fragmentation motivates the
// paper's FV design (§V-A).
type LRU struct {
	cfg Config
}

// NewLRU returns an LRU container cache policy.
func NewLRU(cfg Config) *LRU { return &LRU{cfg: cfg.withDefaults()} }

// Name implements Restorer.
func (l *LRU) Name() string { return "lru" }

// Restore implements Restorer.
func (l *LRU) Restore(seq []Request, fetch Fetcher, emit Emit) (Stats, error) {
	var stats Stats
	cf := newCountingFetcher(fetch, &stats)

	type slot struct {
		id   container.ID
		c    *container.Container
		elem *list.Element
	}
	cached := make(map[container.ID]*slot)
	order := list.New() // front = most recent
	var bytes int64

	for _, req := range seq {
		stats.Requests++
		s, ok := cached[req.Container]
		if ok {
			stats.MemHits++
			order.MoveToFront(s.elem)
		} else {
			c, err := cf.get(req.Container)
			if err != nil {
				return stats, err
			}
			s = &slot{id: req.Container, c: c}
			s.elem = order.PushFront(s)
			cached[req.Container] = s
			bytes += int64(len(c.Data))
			for bytes > l.cfg.MemBytes && order.Len() > 1 {
				back := order.Back()
				victim := back.Value.(*slot)
				order.Remove(back)
				delete(cached, victim.id)
				bytes -= int64(len(victim.c.Data))
			}
		}
		data, err := s.c.Get(req.FP)
		if err != nil {
			return stats, err
		}
		stats.LogicalBytes += int64(len(data))
		if err := emit(data); err != nil {
			return stats, err
		}
	}
	return stats, nil
}
