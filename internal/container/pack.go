package container

import "sync"

// PackPool is the pack stage of the backup pipeline: filled containers
// are handed to background workers that seal (checksum + encode) and
// upload them, while the dedup loop keeps cutting and deduplicating.
// This overlaps the two expensive tails of a backup — CRC32C/encoding CPU
// and OSS PUT latency — with the hot loop, the way the paper's multipart
// upload overlaps network with computation (§IV-A, Fig 2).
//
// Errors are sticky: the first failed write is remembered and returned by
// Close; later writes still drain (they may succeed — each container is
// an independent object) so the queue can never wedge.
type PackPool struct {
	jobs chan *Container
	wg   sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewPackPool starts `workers` sealers writing through store. workers < 1
// is treated as 1. The queue is bounded at 2×workers filled containers,
// which also bounds the pipeline's extra memory (capacity × depth).
func NewPackPool(store *Store, workers int) *PackPool {
	if workers < 1 {
		workers = 1
	}
	p := &PackPool{jobs: make(chan *Container, 2*workers)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for c := range p.jobs {
				if err := store.Write(c); err != nil {
					p.mu.Lock()
					if p.err == nil {
						p.err = err
					}
					p.mu.Unlock()
				}
			}
		}()
	}
	return p
}

// Write enqueues a filled container. The caller must not touch c again.
// Blocks when the queue is full (backpressure on the dedup loop).
func (p *PackPool) Write(c *Container) { p.jobs <- c }

// Close waits for every queued container to be written and returns the
// first write error. The pool is not reusable afterwards.
func (p *PackPool) Close() error {
	close(p.jobs)
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
