package container

import "sync"

// PackPool is the pack stage of the backup pipeline: filled containers
// are handed to background workers that seal (checksum + encode) and
// upload them, while the dedup loop keeps cutting and deduplicating.
// This overlaps the two expensive tails of a backup — CRC32C/encoding CPU
// and OSS PUT latency — with the hot loop, the way the paper's multipart
// upload overlaps network with computation (§IV-A, Fig 2).
//
// Backpressure is explicit and two-level: the job queue bounds the
// container count, and an optional byte budget bounds the payload bytes
// sitting sealed-or-sealing ahead of the durability barrier — so a fast
// dedup loop can never buffer unboundedly in front of slow uploads.
//
// Errors are sticky: the first failed write is remembered and returned by
// Close; later writes still drain (they may succeed — each container is
// an independent object) so the queue can never wedge. Written containers
// have their payload buffers released back to the store's pool.
type PackPool struct {
	jobs chan *Container
	wg   sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond
	inflight int64 // payload bytes queued or being written
	budget   int64 // 0 = no byte budget
	err      error
}

// NewPackPool starts `workers` sealers writing through store with no byte
// budget; the queue bound (2×workers containers) is the only backpressure,
// matching the pre-budget behaviour.
func NewPackPool(store *Store, workers int) *PackPool {
	return NewPackPoolBudget(store, workers, 0)
}

// NewPackPoolBudget starts `workers` sealers writing through store.
// workers < 1 is treated as 1. budget > 0 bounds the payload bytes
// admitted ahead of the workers: Write blocks while the budget is
// exhausted (a single container larger than the whole budget is still
// admitted alone, so progress is always possible).
func NewPackPoolBudget(store *Store, workers int, budget int64) *PackPool {
	if workers < 1 {
		workers = 1
	}
	p := &PackPool{jobs: make(chan *Container, 4*workers), budget: budget}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for c := range p.jobs {
				sz := int64(len(c.Data))
				err := store.Write(c)
				store.Release(c)
				p.mu.Lock()
				if err != nil && p.err == nil {
					p.err = err
				}
				p.inflight -= sz
				p.cond.Broadcast()
				p.mu.Unlock()
			}
		}()
	}
	return p
}

// Write enqueues a filled container. The caller must not touch c again —
// ownership (including the payload buffer, which is recycled after the
// durable write) passes to the pool. Blocks while the queue is full or
// the byte budget is exhausted (backpressure on the dedup loop).
func (p *PackPool) Write(c *Container) {
	sz := int64(len(c.Data))
	p.mu.Lock()
	for p.budget > 0 && p.inflight > 0 && p.inflight+sz > p.budget {
		p.cond.Wait()
	}
	p.inflight += sz
	p.mu.Unlock()
	p.jobs <- c
}

// Close waits for every queued container to be written and returns the
// first write error. The pool is not reusable afterwards.
func (p *PackPool) Close() error {
	close(p.jobs)
	p.wg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}
