package container

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

// Prefix is the OSS key namespace for containers.
const Prefix = "containers/"

func dataKey(id ID) string { return Prefix + id.String() + ".data" }
func metaKey(id ID) string { return Prefix + id.String() + ".meta" }

// Store reads and writes containers on OSS and allocates container IDs.
// It is safe for concurrent use by multiple jobs. Views created with View
// share the ID allocator and metadata cache while directing I/O through a
// different (typically per-job metered) OSS store.
type Store struct {
	oss    oss.Store
	shared *storeShared
}

// storeShared is the state common to all views of one container store.
type storeShared struct {
	capacity int
	nextID   atomic.Uint64

	mu        sync.Mutex
	metaCache map[ID]*Meta // small write-through cache of container metadata
	metaCap   int
}

// NewStore opens a container store over the given OSS store. capacity <= 0
// selects DefaultCapacity. The ID allocator resumes after the largest
// existing container.
func NewStore(s oss.Store, capacity int) (*Store, error) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	cs := &Store{oss: s, shared: &storeShared{capacity: capacity, metaCache: make(map[ID]*Meta), metaCap: 1024}}
	keys, err := s.List(Prefix)
	if err != nil {
		return nil, fmt.Errorf("container: scan existing: %w", err)
	}
	var max uint64
	for _, k := range keys {
		id, ok := parseKey(k)
		if ok && uint64(id) > max {
			max = uint64(id)
		}
	}
	cs.shared.nextID.Store(max)
	return cs, nil
}

// View returns a store sharing this store's ID allocator and metadata
// cache but performing I/O through o (e.g. a per-job metered wrapper).
func (s *Store) View(o oss.Store) *Store {
	return &Store{oss: o, shared: s.shared}
}

// parseKey extracts the container ID from an OSS key.
func parseKey(key string) (ID, bool) {
	name := strings.TrimPrefix(key, Prefix)
	if i := strings.IndexByte(name, '.'); i >= 0 {
		name = name[:i]
	}
	if !strings.HasPrefix(name, "C") {
		return Invalid, false
	}
	v, err := strconv.ParseUint(name[1:], 16, 64)
	if err != nil {
		return Invalid, false
	}
	return ID(v), true
}

// Capacity returns the payload capacity for new containers.
func (s *Store) Capacity() int { return s.shared.capacity }

// AllocateID returns a fresh container ID.
func (s *Store) AllocateID() ID { return ID(s.shared.nextID.Add(1)) }

// Write persists a container (data then metadata, so a metadata object
// never references missing data).
func (s *Store) Write(c *Container) error {
	if c.Meta.ID == Invalid {
		return fmt.Errorf("container: write with invalid ID")
	}
	if err := s.oss.Put(dataKey(c.Meta.ID), c.Data); err != nil {
		return fmt.Errorf("container %s: write data: %w", c.Meta.ID, err)
	}
	if err := s.oss.Put(metaKey(c.Meta.ID), EncodeMeta(&c.Meta)); err != nil {
		return fmt.Errorf("container %s: write meta: %w", c.Meta.ID, err)
	}
	s.cacheMeta(&c.Meta)
	return nil
}

// Read fetches a full container (metadata + payload).
func (s *Store) Read(id ID) (*Container, error) {
	m, err := s.ReadMeta(id)
	if err != nil {
		return nil, err
	}
	data, err := s.oss.Get(dataKey(id))
	if err != nil {
		return nil, fmt.Errorf("container %s: read data: %w", id, err)
	}
	return &Container{Meta: *m, Data: data}, nil
}

// ReadMeta fetches container metadata, through the cache.
func (s *Store) ReadMeta(id ID) (*Meta, error) {
	s.shared.mu.Lock()
	if m, ok := s.shared.metaCache[id]; ok {
		s.shared.mu.Unlock()
		return m, nil
	}
	s.shared.mu.Unlock()
	b, err := s.oss.Get(metaKey(id))
	if err != nil {
		return nil, fmt.Errorf("container %s: read meta: %w", id, err)
	}
	m, err := DecodeMeta(b)
	if err != nil {
		return nil, fmt.Errorf("container %s: %w", id, err)
	}
	s.cacheMeta(m)
	return m, nil
}

// WriteMeta rewrites only the metadata object (used by reverse dedup to
// mark chunks deleted without touching payload).
func (s *Store) WriteMeta(m *Meta) error {
	if err := s.oss.Put(metaKey(m.ID), EncodeMeta(m)); err != nil {
		return fmt.Errorf("container %s: write meta: %w", m.ID, err)
	}
	s.cacheMeta(m)
	return nil
}

// ReadChunk fetches a single chunk via a ranged read; cheaper than Read
// when only one chunk of a cold container is needed (old-version restore
// after reverse deduplication).
func (s *Store) ReadChunk(id ID, fp fingerprint.FP) ([]byte, error) {
	m, err := s.ReadMeta(id)
	if err != nil {
		return nil, err
	}
	cm := m.Find(fp)
	if cm == nil {
		return nil, fmt.Errorf("container %s: chunk %s not found", id, fp.Short())
	}
	data, err := s.oss.GetRange(dataKey(id), int64(cm.Offset), int64(cm.Size))
	if err != nil {
		return nil, fmt.Errorf("container %s: read chunk %s: %w", id, fp.Short(), err)
	}
	return data, nil
}

// Delete removes a container's data and metadata.
func (s *Store) Delete(id ID) error {
	if err := s.oss.Delete(dataKey(id)); err != nil {
		return fmt.Errorf("container %s: delete data: %w", id, err)
	}
	if err := s.oss.Delete(metaKey(id)); err != nil {
		return fmt.Errorf("container %s: delete meta: %w", id, err)
	}
	s.shared.mu.Lock()
	delete(s.shared.metaCache, id)
	s.shared.mu.Unlock()
	return nil
}

// List returns all container IDs in ascending order.
func (s *Store) List() ([]ID, error) {
	keys, err := s.oss.List(Prefix)
	if err != nil {
		return nil, fmt.Errorf("container: list: %w", err)
	}
	seen := make(map[ID]struct{}, len(keys)/2)
	var out []ID
	for _, k := range keys {
		if !strings.HasSuffix(k, ".meta") {
			continue
		}
		id, ok := parseKey(k)
		if !ok {
			continue
		}
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out, nil
}

// InvalidateMeta drops a cached metadata entry (e.g. after an external
// writer rewrote the container).
func (s *Store) InvalidateMeta(id ID) {
	s.shared.mu.Lock()
	delete(s.shared.metaCache, id)
	s.shared.mu.Unlock()
}

func (s *Store) cacheMeta(m *Meta) {
	sh := s.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.metaCache) >= sh.metaCap {
		// Random eviction of one entry keeps the cache bounded without an
		// LRU list; metadata is tiny and re-fetchable.
		for k := range sh.metaCache {
			delete(sh.metaCache, k)
			break
		}
	}
	cp := *m
	cp.Chunks = append([]ChunkMeta(nil), m.Chunks...)
	sh.metaCache[m.ID] = &cp
}

// ---------------------------------------------------------------------------

// Builder accumulates chunks into a container until it is full. Builders
// are not safe for concurrent use; each backup job owns one.
type Builder struct {
	store *Store
	cur   *Container
}

// NewBuilder returns a builder writing through the given store.
func NewBuilder(store *Store) *Builder { return &Builder{store: store} }

// Pending reports whether an unflushed container holds data.
func (b *Builder) Pending() bool { return b.cur != nil && len(b.cur.Data) > 0 }

// CurrentID returns the ID the next Add will write into, allocating a
// container if none is open.
func (b *Builder) CurrentID() ID {
	b.ensure()
	return b.cur.Meta.ID
}

func (b *Builder) ensure() {
	if b.cur == nil {
		b.cur = &Container{
			Meta: Meta{ID: b.store.AllocateID()},
			Data: make([]byte, 0, b.store.shared.capacity),
		}
	}
}

// Add appends a chunk, flushing first if it would overflow the capacity.
// It returns the container ID the chunk was stored in.
func (b *Builder) Add(fp fingerprint.FP, data []byte) (ID, error) {
	b.ensure()
	if len(b.cur.Data)+len(data) > b.store.shared.capacity && len(b.cur.Data) > 0 {
		if err := b.Flush(); err != nil {
			return Invalid, err
		}
		b.ensure()
	}
	b.cur.Meta.Chunks = append(b.cur.Meta.Chunks, ChunkMeta{
		FP:     fp,
		Offset: uint32(len(b.cur.Data)),
		Size:   uint32(len(data)),
	})
	b.cur.Data = append(b.cur.Data, data...)
	b.cur.Meta.DataSize = uint32(len(b.cur.Data))
	return b.cur.Meta.ID, nil
}

// Flush persists the open container, if any.
func (b *Builder) Flush() error {
	if b.cur == nil || len(b.cur.Meta.Chunks) == 0 {
		b.cur = nil
		return nil
	}
	if err := b.store.Write(b.cur); err != nil {
		return err
	}
	b.cur = nil
	return nil
}
