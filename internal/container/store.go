package container

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"slimstore/internal/ec"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

// Prefix is the OSS key namespace for containers.
const Prefix = "containers/"

// QuarantinePrefix is where Quarantine moves corrupt container objects:
// out of the live namespace (so scans and restores stop tripping over
// them) but preserved for forensics.
const QuarantinePrefix = "quarantine/"

func dataKey(id ID) string { return Prefix + id.String() + ".data" }
func metaKey(id ID) string { return Prefix + id.String() + ".meta" }

// DataKey and MetaKey expose the OSS keys of a container's two objects;
// the erasure-coding tier and the scrub repair pass address stripes by
// these keys.
func DataKey(id ID) string { return dataKey(id) }

// MetaKey is the metadata-object counterpart of DataKey.
func MetaKey(id ID) string { return metaKey(id) }

// Store reads and writes containers on OSS and allocates container IDs.
// It is safe for concurrent use by multiple jobs. Views created with View
// share the ID allocator and metadata cache while directing I/O through a
// different (typically per-job metered) OSS store.
type Store struct {
	oss    oss.Store
	shared *storeShared
}

// storeShared is the state common to all views of one container store.
type storeShared struct {
	capacity int
	nextID   atomic.Uint64

	mu        sync.Mutex
	metaCache map[ID]*Meta // small write-through cache of container metadata
	metaCap   int
	inval     []func(ID) // invalidation subscribers (shared restore cache)

	// bufPool recycles container payload buffers between builders and the
	// pack stage. Buffers are sized capacity+FooterSize so Write can seal
	// the data-object footer in place without the EncodeData copy.
	bufPool sync.Pool
}

// getBuf returns an empty payload buffer with room for the footer.
func (sh *storeShared) getBuf() []byte {
	if v := sh.bufPool.Get(); v != nil {
		return v.([]byte)[:0]
	}
	return make([]byte, 0, sh.capacity+FooterSize)
}

// putBuf recycles a payload buffer. Foreign buffers (a chunk larger than
// the capacity forced a reallocation, or the container was built outside
// this store's builder) are left to the garbage collector.
func (sh *storeShared) putBuf(b []byte) {
	if cap(b) != sh.capacity+FooterSize {
		return
	}
	sh.bufPool.Put(b[:0]) //nolint — []byte in a Pool boxes once per put; containers are MBs, the box is bytes
}

// Release returns a written container's payload buffer to the store's
// pool. Callers must not touch the container's Data afterwards; the
// pack stage calls this after the durable write, the synchronous builder
// path after Write returns. The OSS Put contract (oss.Store) guarantees
// no implementation retains the buffer.
func (s *Store) Release(c *Container) {
	if c == nil || c.Data == nil {
		return
	}
	s.shared.putBuf(c.Data)
	c.Data = nil
}

// OnInvalidate registers fn to run after any operation that changes or
// drops a container's objects (Write, WriteMeta, PutRaw, Quarantine,
// Delete, InvalidateMeta) — the hook the node-wide shared restore cache
// uses to drop stale entries. Callbacks run outside the store's internal
// lock and must not call back into the store. Register at open time,
// before the store sees concurrent use.
func (s *Store) OnInvalidate(fn func(ID)) {
	s.shared.mu.Lock()
	s.shared.inval = append(s.shared.inval, fn)
	s.shared.mu.Unlock()
}

// notifyInvalidate fans one container's change out to the subscribers,
// outside the store lock.
func (s *Store) notifyInvalidate(id ID) {
	s.shared.mu.Lock()
	fns := s.shared.inval
	s.shared.mu.Unlock()
	for _, fn := range fns {
		fn(id)
	}
}

// NewStore opens a container store over the given OSS store. capacity <= 0
// selects DefaultCapacity. The ID allocator resumes after the largest
// existing container.
func NewStore(s oss.Store, capacity int) (*Store, error) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	cs := &Store{oss: s, shared: &storeShared{capacity: capacity, metaCache: make(map[ID]*Meta), metaCap: 1024}}
	keys, err := s.List(Prefix)
	if err != nil {
		return nil, fmt.Errorf("container: scan existing: %w", err)
	}
	var max uint64
	for _, k := range keys {
		id, ok := parseKey(k)
		if ok && uint64(id) > max {
			max = uint64(id)
		}
	}
	cs.shared.nextID.Store(max)
	return cs, nil
}

// View returns a store sharing this store's ID allocator and metadata
// cache but performing I/O through o (e.g. a per-job metered wrapper).
func (s *Store) View(o oss.Store) *Store {
	return &Store{oss: o, shared: s.shared}
}

// parseKey extracts the container ID from an OSS key.
func parseKey(key string) (ID, bool) {
	name := strings.TrimPrefix(key, Prefix)
	if i := strings.IndexByte(name, '.'); i >= 0 {
		name = name[:i]
	}
	if !strings.HasPrefix(name, "C") {
		return Invalid, false
	}
	v, err := strconv.ParseUint(name[1:], 16, 64)
	if err != nil {
		return Invalid, false
	}
	return ID(v), true
}

// Capacity returns the payload capacity for new containers.
func (s *Store) Capacity() int { return s.shared.capacity }

// AllocateID returns a fresh container ID.
func (s *Store) AllocateID() ID { return ID(s.shared.nextID.Add(1)) }

// Seal finalises a container for writing: stamps the current format
// version, the payload size, and every chunk's checksum. Write calls it
// implicitly; the journaled-rewrite path calls it before encoding.
func (c *Container) Seal() error {
	c.Meta.Version = MetaV2
	c.Meta.DataSize = uint32(len(c.Data))
	for i := range c.Meta.Chunks {
		cm := &c.Meta.Chunks[i]
		data, err := c.ChunkData(cm)
		if err != nil {
			return fmt.Errorf("container %s: seal: %w", c.Meta.ID, err)
		}
		cm.Sum = ChecksumOf(data)
	}
	c.Meta.buildFindIndex()
	return nil
}

// Write persists a container in format v2 (data then metadata, so a
// metadata object never references missing data). Chunk checksums are
// recomputed from the payload, so rewriting a v1 container upgrades it.
// Write does not retain c or its payload: callers (the pack pool) hand
// the container straight back to Release, which recycles c.Data.
//
//slimlint:contract noretain c
func (s *Store) Write(c *Container) error {
	if c.Meta.ID == Invalid {
		return fmt.Errorf("container: write with invalid ID")
	}
	if err := c.Seal(); err != nil {
		return err
	}
	// Seal the data object in place when the payload buffer has footer
	// headroom (builder buffers always do): the footer is appended into
	// the same allocation and the payload view restored afterwards, so
	// the hot path writes containers with zero payload copies.
	payload := c.Data
	var enc []byte
	if cap(payload) >= len(payload)+FooterSize {
		enc = appendFooter(payload)
	} else {
		enc = EncodeData(payload)
	}
	if err := s.oss.Put(dataKey(c.Meta.ID), enc); err != nil {
		return fmt.Errorf("container %s: write data: %w", c.Meta.ID, err)
	}
	c.Data = payload
	if err := s.oss.Put(metaKey(c.Meta.ID), EncodeMeta(&c.Meta)); err != nil {
		return fmt.Errorf("container %s: write meta: %w", c.Meta.ID, err)
	}
	s.cacheMeta(&c.Meta)
	s.notifyInvalidate(c.Meta.ID)
	return nil
}

// Read fetches a full container (metadata + payload) and verifies every
// live chunk against its checksum. Corruption in live data surfaces as a
// *CorruptError (errors.Is ErrCorrupt); rot confined to deleted regions
// does not fail reads — the scrub pass detects and clears it.
func (s *Store) Read(id ID) (*Container, error) {
	c, _, err := s.ReadRaw(id)
	if err != nil {
		return nil, err
	}
	for i := range c.Meta.Chunks {
		cm := &c.Meta.Chunks[i]
		if cm.Deleted {
			continue
		}
		if verr := c.VerifyChunk(cm); verr != nil {
			return nil, fmt.Errorf("container %s: read data: %w", id, verr)
		}
	}
	return c, nil
}

// ReadRaw fetches a container without chunk verification — the scrub path,
// which wants the damaged payload to salvage intact chunks from. footerOK
// reports the data object's whole-payload checksum (always true for v1).
func (s *Store) ReadRaw(id ID) (c *Container, footerOK bool, err error) {
	m, err := s.ReadMeta(id)
	if err != nil {
		return nil, false, err
	}
	raw, err := s.oss.Get(dataKey(id))
	if err != nil {
		return nil, false, fmt.Errorf("container %s: read data: %w", id, err)
	}
	payload, footerOK := SplitData(m, raw)
	return &Container{Meta: *m, Data: payload}, footerOK, nil
}

// GetRawData fetches a container's encoded data object verbatim (footer
// included) — the journal replay path, which compares it against a
// journaled checksum without interpreting it.
func (s *Store) GetRawData(id ID) ([]byte, error) {
	return s.oss.Get(dataKey(id))
}

// PutRaw writes pre-encoded objects for a container — the crash-recovery
// path, which replays byte-exact journaled state. Either argument may be
// nil to leave that object untouched. The metadata cache entry is dropped
// so subsequent reads see the new state.
func (s *Store) PutRaw(id ID, encData, encMeta []byte) error {
	if encData != nil {
		if err := s.oss.Put(dataKey(id), encData); err != nil {
			return fmt.Errorf("container %s: put raw data: %w", id, err)
		}
	}
	if encMeta != nil {
		if err := s.oss.Put(metaKey(id), encMeta); err != nil {
			return fmt.Errorf("container %s: put raw meta: %w", id, err)
		}
	}
	s.shared.mu.Lock()
	delete(s.shared.metaCache, id)
	s.shared.mu.Unlock()
	s.notifyInvalidate(id)
	return nil
}

// ReadMeta fetches container metadata, through the cache.
func (s *Store) ReadMeta(id ID) (*Meta, error) {
	s.shared.mu.Lock()
	if m, ok := s.shared.metaCache[id]; ok {
		s.shared.mu.Unlock()
		return m, nil
	}
	s.shared.mu.Unlock()
	b, err := s.oss.Get(metaKey(id))
	if err != nil {
		return nil, fmt.Errorf("container %s: read meta: %w", id, err)
	}
	m, err := DecodeMeta(b)
	if err != nil {
		return nil, fmt.Errorf("container %s: %w", id, err)
	}
	s.cacheMeta(m)
	return m, nil
}

// WriteMeta rewrites only the metadata object (used by reverse dedup to
// mark chunks deleted without touching payload).
func (s *Store) WriteMeta(m *Meta) error {
	if err := s.oss.Put(metaKey(m.ID), EncodeMeta(m)); err != nil {
		return fmt.Errorf("container %s: write meta: %w", m.ID, err)
	}
	s.cacheMeta(m)
	s.notifyInvalidate(m.ID)
	return nil
}

// ReadChunk fetches a single chunk via a ranged read; cheaper than Read
// when only one chunk of a cold container is needed (old-version restore
// after reverse deduplication).
func (s *Store) ReadChunk(id ID, fp fingerprint.FP) ([]byte, error) {
	m, err := s.ReadMeta(id)
	if err != nil {
		return nil, err
	}
	cm := m.Find(fp)
	if cm == nil {
		return nil, fmt.Errorf("container %s: chunk %s not found", id, fp.Short())
	}
	data, err := s.oss.GetRange(dataKey(id), int64(cm.Offset), int64(cm.Size))
	if err != nil {
		return nil, fmt.Errorf("container %s: read chunk %s: %w", id, fp.Short(), err)
	}
	if m.Checksummed() {
		if int64(len(data)) != int64(cm.Size) {
			return nil, &CorruptError{Container: id, FP: fp,
				Detail: fmt.Sprintf("ranged read returned %d bytes, want %d", len(data), cm.Size)}
		}
		if got := ChecksumOf(data); got != cm.Sum {
			return nil, &CorruptError{Container: id, FP: fp,
				Detail: fmt.Sprintf("checksum %08x, want %08x", got, cm.Sum)}
		}
	}
	return data, nil
}

// Quarantine moves a container's objects under QuarantinePrefix and drops
// them from the live namespace. Missing objects are tolerated (a corrupt
// container may have lost either half), and so is an unreadable half —
// e.g. an erasure-coded stripe with more than M shards lost, which cannot
// be materialised for preservation; the live key is still dropped so the
// namespace heals. The payload, where readable, is preserved verbatim for
// forensics; nothing reads quarantined keys.
func (s *Store) Quarantine(id ID) error {
	for _, suffix := range []string{".data", ".meta"} {
		key := Prefix + id.String() + suffix
		raw, err := s.oss.Get(key)
		if err != nil {
			if errors.Is(err, oss.ErrNotFound) {
				continue
			}
			if errors.Is(err, ec.ErrInsufficient) {
				if err := s.oss.Delete(key); err != nil {
					return fmt.Errorf("container %s: quarantine delete: %w", id, err)
				}
				continue
			}
			return fmt.Errorf("container %s: quarantine read: %w", id, err)
		}
		if err := s.oss.Put(QuarantinePrefix+id.String()+suffix, raw); err != nil {
			return fmt.Errorf("container %s: quarantine write: %w", id, err)
		}
		if err := s.oss.Delete(key); err != nil {
			return fmt.Errorf("container %s: quarantine delete: %w", id, err)
		}
	}
	s.shared.mu.Lock()
	delete(s.shared.metaCache, id)
	s.shared.mu.Unlock()
	s.notifyInvalidate(id)
	return nil
}

// Delete removes a container's data and metadata.
func (s *Store) Delete(id ID) error {
	if err := s.oss.Delete(dataKey(id)); err != nil {
		return fmt.Errorf("container %s: delete data: %w", id, err)
	}
	if err := s.oss.Delete(metaKey(id)); err != nil {
		return fmt.Errorf("container %s: delete meta: %w", id, err)
	}
	s.shared.mu.Lock()
	delete(s.shared.metaCache, id)
	s.shared.mu.Unlock()
	s.notifyInvalidate(id)
	return nil
}

// List returns all container IDs in ascending order.
func (s *Store) List() ([]ID, error) {
	keys, err := s.oss.List(Prefix)
	if err != nil {
		return nil, fmt.Errorf("container: list: %w", err)
	}
	seen := make(map[ID]struct{}, len(keys)/2)
	var out []ID
	for _, k := range keys {
		if !strings.HasSuffix(k, ".meta") {
			continue
		}
		id, ok := parseKey(k)
		if !ok {
			continue
		}
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out, nil
}

// InvalidateMeta drops a cached metadata entry (e.g. after an external
// writer rewrote the container).
func (s *Store) InvalidateMeta(id ID) {
	s.shared.mu.Lock()
	delete(s.shared.metaCache, id)
	s.shared.mu.Unlock()
	s.notifyInvalidate(id)
}

func (s *Store) cacheMeta(m *Meta) {
	sh := s.shared
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.metaCache) >= sh.metaCap {
		// Random eviction of one entry keeps the cache bounded without an
		// LRU list; metadata is tiny and re-fetchable.
		for k := range sh.metaCache {
			delete(sh.metaCache, k)
			break
		}
	}
	cp := *m
	cp.Chunks = append([]ChunkMeta(nil), m.Chunks...)
	sh.metaCache[m.ID] = &cp
}

// ---------------------------------------------------------------------------

// Builder accumulates chunks into a container until it is full. It is
// safe for concurrent use: Add/Flush hold an internal mutex, and a filled
// container is sealed atomically — it is detached from the builder under
// the lock before any worker sees it, so no chunk can land in a container
// that is already being encoded. Each backup job typically owns one
// builder; with a sink (see NewBuilderAsync) filled containers are handed
// to a PackPool instead of being written inline.
type Builder struct {
	store *Store
	mu    sync.Mutex
	cur   *Container
	sink  func(*Container) error // nil writes synchronously through store
}

// NewBuilder returns a builder writing through the given store.
func NewBuilder(store *Store) *Builder { return &Builder{store: store} }

// NewBuilderAsync returns a builder that hands filled containers to pool
// instead of writing them inline. The caller must Close the pool (after a
// final Flush) to wait for outstanding writes and collect errors.
func NewBuilderAsync(store *Store, pool *PackPool) *Builder {
	return &Builder{store: store, sink: func(c *Container) error { pool.Write(c); return nil }}
}

// Pending reports whether an unflushed container holds data.
func (b *Builder) Pending() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cur != nil && len(b.cur.Data) > 0
}

// CurrentID returns the ID the next Add will write into, allocating a
// container if none is open.
func (b *Builder) CurrentID() ID {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure()
	return b.cur.Meta.ID
}

func (b *Builder) ensure() {
	if b.cur == nil {
		b.cur = &Container{
			Meta: Meta{ID: b.store.AllocateID()},
			Data: b.store.shared.getBuf(),
		}
	}
}

// Add appends a chunk, flushing first if it would overflow the capacity.
// It returns the container ID the chunk was stored in.
func (b *Builder) Add(fp fingerprint.FP, data []byte) (ID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ensure()
	if len(b.cur.Data)+len(data) > b.store.shared.capacity && len(b.cur.Data) > 0 {
		if err := b.flushLocked(); err != nil {
			return Invalid, err
		}
		b.ensure()
	}
	b.cur.Meta.Chunks = append(b.cur.Meta.Chunks, ChunkMeta{
		FP:     fp,
		Offset: uint32(len(b.cur.Data)),
		Size:   uint32(len(data)),
	})
	b.cur.Data = append(b.cur.Data, data...)
	b.cur.Meta.DataSize = uint32(len(b.cur.Data))
	return b.cur.Meta.ID, nil
}

// Flush persists (or hands to the sink) the open container, if any. With
// a sink, durability is only established once the pool is closed.
func (b *Builder) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

func (b *Builder) flushLocked() error {
	if b.cur == nil || len(b.cur.Meta.Chunks) == 0 {
		b.store.Release(b.cur)
		b.cur = nil
		return nil
	}
	c := b.cur
	b.cur = nil // detach before anything else can see or mutate it
	if b.sink != nil {
		return b.sink(c)
	}
	err := b.store.Write(c)
	b.store.Release(c)
	return err
}
