// Package container implements the container store, the basic storage and
// access unit of backup data on OSS (paper §III-B).
//
// Non-duplicate chunks are aggregated into fixed-capacity containers.
// Reading a whole container per request amortises OSS latency and exploits
// physical locality: chunks stored together were adjacent in some backup
// file, so one read serves many nearby chunk accesses.
//
// Each container persists as two OSS objects:
//
//	containers/<id>.data — concatenated chunk payloads
//	containers/<id>.meta — per-chunk records (fp, offset, size, deleted)
//
// Splitting metadata from data lets G-node's reverse deduplication mark
// chunks deleted by rewriting only the small metadata object (§VI-A); the
// data object is rewritten only when the stale proportion crosses the
// compaction threshold.
package container

import (
	"encoding/binary"
	"fmt"

	"slimstore/internal/fingerprint"
)

// ID identifies a container. IDs are unique per backup repository.
type ID uint64

// Invalid is the zero ID, never assigned to a real container.
const Invalid ID = 0

// String renders the ID as it appears in OSS keys.
func (id ID) String() string { return fmt.Sprintf("C%016x", uint64(id)) }

// DefaultCapacity is the default container payload capacity. 4 MiB is the
// common choice in deduplication systems (DDFS-lineage) and amortises OSS
// request latency well.
const DefaultCapacity = 4 << 20

// ChunkMeta describes one chunk stored in a container.
type ChunkMeta struct {
	FP      fingerprint.FP
	Offset  uint32
	Size    uint32
	Deleted bool
}

// Meta is a container's metadata: the chunk directory plus summary
// counters used by sparse-container detection and deferred compaction.
type Meta struct {
	ID       ID
	Chunks   []ChunkMeta
	DataSize uint32 // payload bytes including deleted chunks
}

// Find returns the metadata of the chunk with fingerprint fp, or nil.
func (m *Meta) Find(fp fingerprint.FP) *ChunkMeta {
	for i := range m.Chunks {
		if m.Chunks[i].FP == fp {
			return &m.Chunks[i]
		}
	}
	return nil
}

// LiveChunks counts non-deleted chunks.
func (m *Meta) LiveChunks() int {
	n := 0
	for i := range m.Chunks {
		if !m.Chunks[i].Deleted {
			n++
		}
	}
	return n
}

// LiveBytes sums non-deleted chunk sizes.
func (m *Meta) LiveBytes() int64 {
	var n int64
	for i := range m.Chunks {
		if !m.Chunks[i].Deleted {
			n += int64(m.Chunks[i].Size)
		}
	}
	return n
}

// StaleProportion is the fraction of chunks marked deleted (paper §III-B:
// "the proportion of stale chunks"). Used by G-node to decide when the data
// object is worth rewriting (§VI-A, e.g. 20%).
func (m *Meta) StaleProportion() float64 {
	if len(m.Chunks) == 0 {
		return 0
	}
	return float64(len(m.Chunks)-m.LiveChunks()) / float64(len(m.Chunks))
}

// Container is a fully materialised container: metadata plus payload.
type Container struct {
	Meta Meta
	Data []byte
}

// ChunkData returns the payload of the chunk described by cm. The slice
// aliases the container buffer.
func (c *Container) ChunkData(cm *ChunkMeta) ([]byte, error) {
	end := int64(cm.Offset) + int64(cm.Size)
	if end > int64(len(c.Data)) {
		return nil, fmt.Errorf("container %s: chunk %s range [%d,%d) exceeds data size %d",
			c.Meta.ID, cm.FP.Short(), cm.Offset, end, len(c.Data))
	}
	return c.Data[cm.Offset:end], nil
}

// Get returns the payload of the chunk with fingerprint fp.
func (c *Container) Get(fp fingerprint.FP) ([]byte, error) {
	cm := c.Meta.Find(fp)
	if cm == nil {
		return nil, fmt.Errorf("container %s: chunk %s not found", c.Meta.ID, fp.Short())
	}
	return c.ChunkData(cm)
}

// ---------------------------------------------------------------------------
// Serialization. Fixed-width little-endian encoding: simple, versioned, and
// fast to decode without reflection.

const metaMagic = uint32(0x534C4D43) // "SLMC"
const metaVersion = 1

// chunkMetaWire is the on-wire size of one ChunkMeta record.
const chunkMetaWire = fingerprint.Size + 4 + 4 + 1

// EncodeMeta serialises container metadata.
func EncodeMeta(m *Meta) []byte {
	buf := make([]byte, 0, 24+len(m.Chunks)*chunkMetaWire)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], metaMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], metaVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.ID))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(m.Chunks)))
	binary.LittleEndian.PutUint32(hdr[20:24], m.DataSize)
	buf = append(buf, hdr[:]...)
	var rec [chunkMetaWire]byte
	for i := range m.Chunks {
		cm := &m.Chunks[i]
		copy(rec[:fingerprint.Size], cm.FP[:])
		binary.LittleEndian.PutUint32(rec[fingerprint.Size:], cm.Offset)
		binary.LittleEndian.PutUint32(rec[fingerprint.Size+4:], cm.Size)
		if cm.Deleted {
			rec[fingerprint.Size+8] = 1
		} else {
			rec[fingerprint.Size+8] = 0
		}
		buf = append(buf, rec[:]...)
	}
	return buf
}

// DecodeMeta parses container metadata.
func DecodeMeta(b []byte) (*Meta, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("container: meta too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != metaMagic {
		return nil, fmt.Errorf("container: bad meta magic")
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != metaVersion {
		return nil, fmt.Errorf("container: unsupported meta version %d", v)
	}
	m := &Meta{
		ID:       ID(binary.LittleEndian.Uint64(b[8:16])),
		DataSize: binary.LittleEndian.Uint32(b[20:24]),
	}
	n := int(binary.LittleEndian.Uint32(b[16:20]))
	if len(b) != 24+n*chunkMetaWire {
		return nil, fmt.Errorf("container: meta size %d does not match %d chunks", len(b), n)
	}
	m.Chunks = make([]ChunkMeta, n)
	off := 24
	for i := 0; i < n; i++ {
		cm := &m.Chunks[i]
		copy(cm.FP[:], b[off:off+fingerprint.Size])
		cm.Offset = binary.LittleEndian.Uint32(b[off+fingerprint.Size:])
		cm.Size = binary.LittleEndian.Uint32(b[off+fingerprint.Size+4:])
		cm.Deleted = b[off+fingerprint.Size+8] == 1
		off += chunkMetaWire
	}
	return m, nil
}
