// Package container implements the container store, the basic storage and
// access unit of backup data on OSS (paper §III-B).
//
// Non-duplicate chunks are aggregated into fixed-capacity containers.
// Reading a whole container per request amortises OSS latency and exploits
// physical locality: chunks stored together were adjacent in some backup
// file, so one read serves many nearby chunk accesses.
//
// Each container persists as two OSS objects:
//
//	containers/<id>.data — concatenated chunk payloads
//	containers/<id>.meta — per-chunk records (fp, offset, size, deleted)
//
// Splitting metadata from data lets G-node's reverse deduplication mark
// chunks deleted by rewriting only the small metadata object (§VI-A); the
// data object is rewritten only when the stale proportion crosses the
// compaction threshold.
package container

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"slimstore/internal/fingerprint"
)

// ErrCorrupt marks integrity failures detected by checksum verification.
// Errors wrapping it carry the container (and, when known, the chunk) via
// CorruptError.
var ErrCorrupt = errors.New("container: corrupt")

// CorruptError identifies corrupt state down to the chunk.
type CorruptError struct {
	Container ID
	FP        fingerprint.FP // zero when the whole object is bad (meta, footer)
	Detail    string
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.FP.IsZero() {
		return fmt.Sprintf("container %s corrupt: %s", e.Container, e.Detail)
	}
	return fmt.Sprintf("container %s chunk %s corrupt: %s", e.Container, e.FP.Short(), e.Detail)
}

// Unwrap lets errors.Is(err, ErrCorrupt) match.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// castagnoli is the CRC32C polynomial table, the common choice for storage
// checksums (hardware-accelerated on modern CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumOf computes the CRC32C checksum used for chunk and footer sums.
func ChecksumOf(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ID identifies a container. IDs are unique per backup repository.
type ID uint64

// Invalid is the zero ID, never assigned to a real container.
const Invalid ID = 0

// String renders the ID as it appears in OSS keys.
func (id ID) String() string { return fmt.Sprintf("C%016x", uint64(id)) }

// DefaultCapacity is the default container payload capacity. 4 MiB is the
// common choice in deduplication systems (DDFS-lineage) and amortises OSS
// request latency well.
const DefaultCapacity = 4 << 20

// ChunkMeta describes one chunk stored in a container.
type ChunkMeta struct {
	FP      fingerprint.FP
	Offset  uint32
	Size    uint32
	Deleted bool
	Sum     uint32 // CRC32C of the chunk payload (format v2; 0 in v1 metas)
}

// Meta is a container's metadata: the chunk directory plus summary
// counters used by sparse-container detection and deferred compaction.
type Meta struct {
	ID       ID
	Version  uint32 // on-wire format version; 0 is treated as current
	Chunks   []ChunkMeta
	DataSize uint32 // payload bytes including deleted chunks

	// fpIdx is a permutation of chunk indexes sorted by (FP, index),
	// giving Find a binary search instead of a linear scan. It is built
	// once — DecodeMeta and Seal, both single-goroutine points after
	// which Chunks no longer gains or reorders records — and never
	// mutated, so Meta value copies share it safely. Deletion marks only
	// flip Chunks[i].Deleted in place, which the index is insensitive
	// to. nil falls back to the linear scan (hand-built metas, tiny
	// directories).
	fpIdx []int32
}

// findIndexMin is the chunk count at which building the Find index pays
// for itself; below it the linear scan wins on constant factors.
const findIndexMin = 16

// buildFindIndex (re)builds the sorted fingerprint permutation. Callers
// must not be sharing m with other goroutines yet.
func (m *Meta) buildFindIndex() {
	if len(m.Chunks) < findIndexMin {
		m.fpIdx = nil
		return
	}
	idx := make([]int32, len(m.Chunks))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := &m.Chunks[idx[a]], &m.Chunks[idx[b]]
		if c := bytes.Compare(ca.FP[:], cb.FP[:]); c != 0 {
			return c < 0
		}
		return idx[a] < idx[b] // stable on duplicates: Find returns the first
	})
	m.fpIdx = idx
}

// Checksummed reports whether the container carries per-chunk checksums
// and a data footer (format v2).
func (m *Meta) Checksummed() bool { return m.Version != MetaV1 }

// Find returns the metadata of the chunk with fingerprint fp, or nil.
// With duplicates the record with the lowest chunk index wins (matching
// the historical linear scan). It sits on the restore redirect path and
// inside the ranged-read planner, so decoded metas answer it via a
// binary search over the build-once fingerprint index.
func (m *Meta) Find(fp fingerprint.FP) *ChunkMeta {
	if m.fpIdx != nil {
		i := sort.Search(len(m.fpIdx), func(i int) bool {
			return bytes.Compare(m.Chunks[m.fpIdx[i]].FP[:], fp[:]) >= 0
		})
		if i < len(m.fpIdx) && m.Chunks[m.fpIdx[i]].FP == fp {
			return &m.Chunks[m.fpIdx[i]]
		}
		return nil
	}
	for i := range m.Chunks {
		if m.Chunks[i].FP == fp {
			return &m.Chunks[i]
		}
	}
	return nil
}

// LiveChunks counts non-deleted chunks.
func (m *Meta) LiveChunks() int {
	n := 0
	for i := range m.Chunks {
		if !m.Chunks[i].Deleted {
			n++
		}
	}
	return n
}

// LiveBytes sums non-deleted chunk sizes.
func (m *Meta) LiveBytes() int64 {
	var n int64
	for i := range m.Chunks {
		if !m.Chunks[i].Deleted {
			n += int64(m.Chunks[i].Size)
		}
	}
	return n
}

// StaleProportion is the fraction of chunks marked deleted (paper §III-B:
// "the proportion of stale chunks"). Used by G-node to decide when the data
// object is worth rewriting (§VI-A, e.g. 20%).
func (m *Meta) StaleProportion() float64 {
	if len(m.Chunks) == 0 {
		return 0
	}
	return float64(len(m.Chunks)-m.LiveChunks()) / float64(len(m.Chunks))
}

// Container is a fully materialised container: metadata plus payload.
type Container struct {
	Meta Meta
	Data []byte
}

// ChunkData returns the payload of the chunk described by cm. The slice
// aliases the container buffer.
func (c *Container) ChunkData(cm *ChunkMeta) ([]byte, error) {
	end := int64(cm.Offset) + int64(cm.Size)
	if end > int64(len(c.Data)) {
		return nil, fmt.Errorf("container %s: chunk %s range [%d,%d) exceeds data size %d",
			c.Meta.ID, cm.FP.Short(), cm.Offset, end, len(c.Data))
	}
	return c.Data[cm.Offset:end], nil
}

// Get returns the payload of the chunk with fingerprint fp.
func (c *Container) Get(fp fingerprint.FP) ([]byte, error) {
	cm := c.Meta.Find(fp)
	if cm == nil {
		return nil, fmt.Errorf("container %s: chunk %s not found", c.Meta.ID, fp.Short())
	}
	return c.ChunkData(cm)
}

// VerifyChunk checks one chunk's bounds and (for checksummed containers)
// its CRC against the payload. It returns a *CorruptError on mismatch.
func (c *Container) VerifyChunk(cm *ChunkMeta) error {
	data, err := c.ChunkData(cm)
	if err != nil {
		return &CorruptError{Container: c.Meta.ID, FP: cm.FP, Detail: err.Error()}
	}
	if !c.Meta.Checksummed() {
		return nil
	}
	if got := ChecksumOf(data); got != cm.Sum {
		return &CorruptError{Container: c.Meta.ID, FP: cm.FP,
			Detail: fmt.Sprintf("checksum %08x, want %08x", got, cm.Sum)}
	}
	return nil
}

// VerifyLive checks every non-deleted chunk and returns the fingerprints
// that fail verification (nil when the container is clean). Corruption
// confined to deleted regions is not reported here; ScrubContainer-level
// footer checks cover it.
func (c *Container) VerifyLive() []fingerprint.FP {
	var bad []fingerprint.FP
	for i := range c.Meta.Chunks {
		cm := &c.Meta.Chunks[i]
		if cm.Deleted {
			continue
		}
		if err := c.VerifyChunk(cm); err != nil {
			bad = append(bad, cm.FP)
		}
	}
	return bad
}

// ---------------------------------------------------------------------------
// Serialization. Fixed-width little-endian encoding: simple, versioned, and
// fast to decode without reflection.
//
// Format v1 carried no integrity metadata. Format v2 adds a CRC32C per
// chunk record, a CRC32C trailer over the whole metadata object, and an
// 8-byte footer (magic + payload CRC32C) on the data object. v1 containers
// remain readable; every rewrite upgrades them to v2.

const metaMagic = uint32(0x534C4D43) // "SLMC"

// Metadata format versions.
const (
	MetaV1 = 1
	MetaV2 = 2
)

// Data object footer (format v2): magic then CRC32C of the full payload.
const (
	footerMagic = uint32(0x534C4D46) // "SLMF"
	FooterSize  = 8
)

// chunkMetaWireV1/V2 are the on-wire sizes of one ChunkMeta record.
const (
	chunkMetaWireV1 = fingerprint.Size + 4 + 4 + 1
	chunkMetaWireV2 = chunkMetaWireV1 + 4
)

// EncodeMeta serialises container metadata. Version 0 encodes as the
// current format; MetaV1 preserves the legacy layout (so marking chunks
// deleted in an old container does not claim checksums it lacks).
func EncodeMeta(m *Meta) []byte {
	version := m.Version
	if version == 0 {
		version = MetaV2
	}
	wire := chunkMetaWireV2
	if version == MetaV1 {
		wire = chunkMetaWireV1
	}
	buf := make([]byte, 0, 24+len(m.Chunks)*wire+4)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], metaMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(m.ID))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(len(m.Chunks)))
	binary.LittleEndian.PutUint32(hdr[20:24], m.DataSize)
	buf = append(buf, hdr[:]...)
	var rec [chunkMetaWireV2]byte
	for i := range m.Chunks {
		cm := &m.Chunks[i]
		copy(rec[:fingerprint.Size], cm.FP[:])
		binary.LittleEndian.PutUint32(rec[fingerprint.Size:], cm.Offset)
		binary.LittleEndian.PutUint32(rec[fingerprint.Size+4:], cm.Size)
		if cm.Deleted {
			rec[fingerprint.Size+8] = 1
		} else {
			rec[fingerprint.Size+8] = 0
		}
		if version >= MetaV2 {
			binary.LittleEndian.PutUint32(rec[fingerprint.Size+9:], cm.Sum)
		}
		buf = append(buf, rec[:wire]...)
	}
	if version >= MetaV2 {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], ChecksumOf(buf))
		buf = append(buf, crc[:]...)
	}
	return buf
}

// DecodeMeta parses container metadata (either format version). A v2
// object failing its trailer checksum returns a *CorruptError.
func DecodeMeta(b []byte) (*Meta, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("container: meta too short (%d bytes)", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != metaMagic {
		return nil, fmt.Errorf("container: bad meta magic")
	}
	version := binary.LittleEndian.Uint32(b[4:8])
	if version != MetaV1 && version != MetaV2 {
		return nil, fmt.Errorf("container: unsupported meta version %d", version)
	}
	m := &Meta{
		ID:       ID(binary.LittleEndian.Uint64(b[8:16])),
		Version:  version,
		DataSize: binary.LittleEndian.Uint32(b[20:24]),
	}
	n := int(binary.LittleEndian.Uint32(b[16:20]))
	wire := chunkMetaWireV2
	if version == MetaV1 {
		wire = chunkMetaWireV1
	}
	want := 24 + n*wire
	if version >= MetaV2 {
		want += 4
	}
	if len(b) != want {
		return nil, fmt.Errorf("container: meta size %d does not match %d chunks (v%d)", len(b), n, version)
	}
	if version >= MetaV2 {
		stored := binary.LittleEndian.Uint32(b[len(b)-4:])
		if got := ChecksumOf(b[:len(b)-4]); got != stored {
			return nil, &CorruptError{Container: m.ID,
				Detail: fmt.Sprintf("meta checksum %08x, want %08x", got, stored)}
		}
	}
	m.Chunks = make([]ChunkMeta, n)
	off := 24
	for i := 0; i < n; i++ {
		cm := &m.Chunks[i]
		copy(cm.FP[:], b[off:off+fingerprint.Size])
		cm.Offset = binary.LittleEndian.Uint32(b[off+fingerprint.Size:])
		cm.Size = binary.LittleEndian.Uint32(b[off+fingerprint.Size+4:])
		cm.Deleted = b[off+fingerprint.Size+8] == 1
		if version >= MetaV2 {
			cm.Sum = binary.LittleEndian.Uint32(b[off+fingerprint.Size+9:])
		}
		off += wire
	}
	m.buildFindIndex()
	return m, nil
}

// EncodeData frames a payload as a v2 data object: payload plus footer.
func EncodeData(payload []byte) []byte {
	out := make([]byte, len(payload)+FooterSize)
	copy(out, payload)
	binary.LittleEndian.PutUint32(out[len(payload):], footerMagic)
	binary.LittleEndian.PutUint32(out[len(payload)+4:], ChecksumOf(payload))
	return out
}

// appendFooter seals a payload into a v2 data object in place. The caller
// guarantees cap(payload) >= len(payload)+FooterSize; the returned slice
// shares payload's backing array, extended over the footer bytes.
func appendFooter(payload []byte) []byte {
	n := len(payload)
	out := payload[:n+FooterSize]
	binary.LittleEndian.PutUint32(out[n:], footerMagic)
	binary.LittleEndian.PutUint32(out[n+4:], ChecksumOf(payload))
	return out
}

// SplitData separates a raw data object into payload and footer status.
// footerOK reports whether the footer magic and whole-payload CRC check
// out; false with a valid length means at-rest rot (possibly confined to
// deleted regions — per-chunk sums decide whether live data is affected).
// For v1 metas the raw object is the payload and footerOK is true.
func SplitData(m *Meta, raw []byte) (payload []byte, footerOK bool) {
	if !m.Checksummed() {
		return raw, true
	}
	if len(raw) != int(m.DataSize)+FooterSize {
		return raw, false
	}
	payload = raw[:m.DataSize]
	if binary.LittleEndian.Uint32(raw[m.DataSize:]) != footerMagic {
		return payload, false
	}
	stored := binary.LittleEndian.Uint32(raw[m.DataSize+4:])
	return payload, ChecksumOf(payload) == stored
}
