package container

import (
	"bytes"
	"errors"
	"testing"

	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

// buildSpanContainer writes one container of n chunks and returns the
// store, the ID, and the chunks in order.
func buildSpanContainer(t *testing.T, n, chunkBytes int) (*Store, ID, []fingerprint.FP, [][]byte) {
	t.Helper()
	cs, err := NewStore(oss.NewMem(), n*chunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	c := &Container{Meta: Meta{ID: cs.AllocateID()}}
	fps := make([]fingerprint.FP, n)
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		fp, data := chunkOf(int64(i+1), chunkBytes)
		fps[i], payloads[i] = fp, data
		c.Meta.Chunks = append(c.Meta.Chunks, ChunkMeta{FP: fp, Offset: uint32(i * chunkBytes), Size: uint32(chunkBytes)})
		c.Data = append(c.Data, data...)
	}
	if err := cs.Write(c); err != nil {
		t.Fatal(err)
	}
	return cs, c.Meta.ID, fps, payloads
}

func TestReadSpansReturnsCoveredChunks(t *testing.T) {
	const n, sz = 32, 1024
	cs, id, fps, payloads := buildSpanContainer(t, n, sz)

	// Two spans: chunks 3..5 and chunk 30.
	spans := []Span{
		{Off: 3 * sz, Len: 3 * sz, Chunks: []int{3, 4, 5}},
		{Off: 30 * sz, Len: sz, Chunks: []int{30}},
	}
	part, err := cs.ReadSpans(id, spans)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(part.Data), 4*sz; got != want {
		t.Fatalf("partial payload %d bytes, want %d", got, want)
	}
	for _, i := range []int{3, 4, 5, 30} {
		data, err := part.Get(fps[i])
		if err != nil {
			t.Fatalf("covered chunk %d: %v", i, err)
		}
		if !bytes.Equal(data, payloads[i]) {
			t.Fatalf("covered chunk %d: payload differs", i)
		}
	}
	// Uncovered chunks must fail loudly, not silently return wrong bytes.
	if _, err := part.Get(fps[0]); err == nil {
		t.Fatal("uncovered chunk resolved from a partial container")
	}
}

func TestReadSpansVerifiesChecksums(t *testing.T) {
	const n, sz = 8, 512
	cs, id, _, _ := buildSpanContainer(t, n, sz)

	// Rot a byte inside chunk 2's payload region on the raw object.
	raw, err := cs.GetRawData(id)
	if err != nil {
		t.Fatal(err)
	}
	raw[2*sz+7] ^= 0x40
	if err := cs.PutRaw(id, raw, nil); err != nil {
		t.Fatal(err)
	}

	if _, err := cs.ReadSpans(id, []Span{{Off: 2 * sz, Len: sz, Chunks: []int{2}}}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rot in a fetched span: got %v, want ErrCorrupt", err)
	}
	// Rot outside the fetched spans goes unread and undetected — the
	// whole point of ranged reads is not touching those bytes.
	if _, err := cs.ReadSpans(id, []Span{{Off: 0, Len: sz, Chunks: []int{0}}}); err != nil {
		t.Fatalf("span away from the rot must verify: %v", err)
	}
}

func TestReadSpansRejectsOutOfBounds(t *testing.T) {
	const n, sz = 4, 256
	cs, id, _, _ := buildSpanContainer(t, n, sz)
	cases := []Span{
		{Off: -1, Len: sz, Chunks: []int{0}},
		{Off: 0, Len: 0, Chunks: nil},
		{Off: int64(n*sz) - 10, Len: 20, Chunks: nil}, // runs past the payload into the footer
		{Off: 0, Len: sz, Chunks: []int{2}},           // chunk escapes its span
		{Off: 0, Len: sz, Chunks: []int{99}},          // bogus index
	}
	for i, sp := range cases {
		if _, err := cs.ReadSpans(id, []Span{sp}); err == nil {
			t.Errorf("case %d (%+v): accepted invalid span", i, sp)
		}
	}
}

func TestOnInvalidateFires(t *testing.T) {
	cs, id, _, _ := buildSpanContainer(t, 4, 128)
	var events []ID
	cs.OnInvalidate(func(id ID) { events = append(events, id) })

	m, err := cs.ReadMeta(id)
	if err != nil {
		t.Fatal(err)
	}
	cp := *m
	cp.Chunks = append([]ChunkMeta(nil), m.Chunks...)
	cp.Chunks[0].Deleted = true
	if err := cs.WriteMeta(&cp); err != nil {
		t.Fatal(err)
	}
	cs.InvalidateMeta(id)
	if err := cs.Delete(id); err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d invalidation events (%v), want 3 (WriteMeta, InvalidateMeta, Delete)", len(events), events)
	}
	for _, got := range events {
		if got != id {
			t.Fatalf("invalidation for %s, want %s", got, id)
		}
	}
}
