package container

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

// slowStore delays every data Put until released, so a test can hold the
// pack workers mid-write and observe queue/budget backpressure.
type slowStore struct {
	oss.Store
	mu      sync.Mutex
	gate    chan struct{}
	writing atomic.Int64
}

func (s *slowStore) Put(key string, data []byte) error {
	s.mu.Lock()
	gate := s.gate
	s.mu.Unlock()
	if gate != nil && bytes.HasSuffix([]byte(key), []byte(".data")) {
		s.writing.Add(1)
		<-gate
	}
	return s.Store.Put(key, data)
}

func fillContainer(t *testing.T, cs *Store, n int) *Container {
	t.Helper()
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	fp := fingerprint.Of(fingerprint.SHA1, payload)
	return &Container{
		Meta: Meta{
			ID:       cs.AllocateID(),
			DataSize: uint32(n),
			Chunks:   []ChunkMeta{{FP: fp, Offset: 0, Size: uint32(n)}},
		},
		Data: payload,
	}
}

// TestPackPoolBudgetBackpressure: with a byte budget, Write must block
// while the in-flight payload bytes would exceed it, and unblock as
// workers drain — and an oversized container must still be admitted when
// the pool is empty (no deadlock).
func TestPackPoolBudgetBackpressure(t *testing.T) {
	slow := &slowStore{Store: oss.NewMem(), gate: make(chan struct{})}
	cs, err := NewStore(slow, 64<<10)
	if err != nil {
		t.Fatal(err)
	}

	const payload = 16 << 10
	// Budget admits exactly two in-flight containers of this size.
	p := NewPackPoolBudget(cs, 1, 2*(payload+1024))
	p.Write(fillContainer(t, cs, payload))
	p.Write(fillContainer(t, cs, payload))

	third := make(chan struct{})
	go func() {
		p.Write(fillContainer(t, cs, payload)) // must block on the budget
		close(third)
	}()
	select {
	case <-third:
		t.Fatal("third Write admitted beyond the byte budget")
	default:
	}
	// Release the worker: each completed write frees budget for the next.
	close(slow.gate)
	slow.mu.Lock()
	slow.gate = nil
	slow.mu.Unlock()
	<-third
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Oversized container on an idle pool: admitted alone.
	p2 := NewPackPoolBudget(cs, 1, 1024)
	p2.Write(fillContainer(t, cs, payload))
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPackPoolWritesLand: everything queued before Close is durable after.
func TestPackPoolWritesLand(t *testing.T) {
	mem := oss.NewMem()
	cs, err := NewStore(mem, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPackPoolBudget(cs, 4, 48<<10)
	var ids []ID
	for i := 0; i < 16; i++ {
		c := fillContainer(t, cs, 8<<10)
		ids = append(ids, c.Meta.ID)
		p.Write(c)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		m, err := cs.ReadMeta(id)
		if err != nil {
			t.Fatalf("container %v not durable: %v", id, err)
		}
		if len(m.Chunks) != 1 {
			t.Fatalf("container %v: %d chunks, want 1", id, len(m.Chunks))
		}
	}
}
