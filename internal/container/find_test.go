package container

import (
	"fmt"
	"math/rand"
	"testing"

	"slimstore/internal/fingerprint"
)

// findLinear is the reference implementation the indexed Find must match.
func findLinear(m *Meta, fp fingerprint.FP) *ChunkMeta {
	for i := range m.Chunks {
		if m.Chunks[i].FP == fp {
			return &m.Chunks[i]
		}
	}
	return nil
}

// metaWithChunks builds a decoded meta with n random chunks (so the find
// index is present for n >= findIndexMin).
func metaWithChunks(t *testing.T, n int, seed int64) *Meta {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := &Meta{ID: 7}
	off := uint32(0)
	for i := 0; i < n; i++ {
		var fp fingerprint.FP
		rng.Read(fp[:])
		size := uint32(rng.Intn(900) + 100)
		m.Chunks = append(m.Chunks, ChunkMeta{FP: fp, Offset: off, Size: size, Deleted: i%5 == 0})
		off += size
	}
	m.DataSize = off
	got, err := DecodeMeta(EncodeMeta(m))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFindIndexMatchesLinearScan(t *testing.T) {
	for _, n := range []int{0, 1, findIndexMin - 1, findIndexMin, 100, 1000} {
		m := metaWithChunks(t, n, int64(n)+1)
		if n >= findIndexMin && m.fpIdx == nil {
			t.Fatalf("n=%d: decoded meta missing find index", n)
		}
		if n < findIndexMin && m.fpIdx != nil {
			t.Fatalf("n=%d: tiny meta built an index", n)
		}
		// Every present fingerprint resolves to the same record.
		for i := range m.Chunks {
			fp := m.Chunks[i].FP
			if got, want := m.Find(fp), findLinear(m, fp); got != want {
				t.Fatalf("n=%d chunk %d: Find returned %p, linear scan %p", n, i, got, want)
			}
		}
		// Absent fingerprints miss.
		var absent fingerprint.FP
		absent[0] = 0xFF
		if m.Find(absent) != findLinear(m, absent) {
			t.Fatalf("n=%d: absent fingerprint disagreement", n)
		}
	}
}

func TestFindIndexDuplicatesReturnFirstRecord(t *testing.T) {
	m := &Meta{ID: 3}
	fp, _ := chunkOf(99, 8)
	for i := 0; i < findIndexMin+8; i++ {
		cfp := fp
		if i%2 == 1 { // interleave distinct fps so the dup isn't trivial
			cfp, _ = chunkOf(int64(i), 8)
		}
		m.Chunks = append(m.Chunks, ChunkMeta{FP: cfp, Offset: uint32(i * 10), Size: 10})
	}
	m.DataSize = uint32(len(m.Chunks) * 10)
	got, err := DecodeMeta(EncodeMeta(m))
	if err != nil {
		t.Fatal(err)
	}
	if cm := got.Find(fp); cm == nil || cm.Offset != 0 {
		t.Fatalf("Find on duplicate fp returned %+v, want the first record (offset 0)", cm)
	}
}

// BenchmarkMetaFind pits the indexed Find against the linear scan on a
// full-container-sized directory (4 MiB / 4 KiB chunks = 1024 records),
// the shape the restore redirect path and the ranged-read planner probe.
func BenchmarkMetaFind(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(7))
	m := &Meta{ID: 7}
	fps := make([]fingerprint.FP, n)
	for i := 0; i < n; i++ {
		rng.Read(fps[i][:])
		m.Chunks = append(m.Chunks, ChunkMeta{FP: fps[i], Offset: uint32(i * 4096), Size: 4096})
	}
	m.DataSize = n * 4096
	dec, err := DecodeMeta(EncodeMeta(m))
	if err != nil {
		b.Fatal(err)
	}
	for _, bm := range []struct {
		name string
		meta *Meta
	}{
		{"indexed", dec},
		{"linear", m}, // hand-built meta: no index, legacy scan
	} {
		b.Run(fmt.Sprintf("%s/%dchunks", bm.name, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if bm.meta.Find(fps[i%n]) == nil {
					b.Fatal("present fingerprint missed")
				}
			}
		})
	}
}
