package container

import (
	"fmt"
)

// This file implements partial container reads: fetching only the byte
// spans of a data object that cover the chunks a restore actually needs,
// instead of the whole 4 MiB object. The paper motivates it (§IV, §VI):
// after reverse deduplication and SCC, old-version restores reference a
// handful of live chunks inside otherwise-stale containers, and reading
// the full object per container is pure read amplification. Which spans
// to read — and whether a full read is cheaper after all — is decided by
// the cost-model planner in internal/cache; this layer just executes a
// span list faithfully and verifies what it fetched.

// Span is one coalesced byte range of a container's data object. Chunks
// lists the indexes into Meta.Chunks whose payload [Offset, Offset+Size)
// lies entirely inside [Off, Off+Len), in ascending index order.
type Span struct {
	Off    int64
	Len    int64
	Chunks []int
}

// ReadSpans fetches only the given spans of a container's data object and
// returns a partial container holding exactly the covered chunks, with
// offsets remapped into the compact payload. Spans must be within the
// payload (never the v2 footer) and are fetched in slice order with one
// ranged OSS read each. For checksummed containers every covered chunk is
// verified against its CRC, mirroring Read's guarantee for the subset
// fetched; short ranged reads surface as *CorruptError.
//
// The returned container answers Get/ChunkData for covered chunks only —
// requests outside the span set fail, so callers must derive the span
// list from the same request sequence they will serve (see cache.Plan).
//
// The partial payload is assembled into a buffer from the store's pool
// (span totals never exceed the container capacity, so the standard
// payload size always fits): return it with Release when the restore job
// is done with the container. Partial containers are never entered into
// the node-wide shared cache, so their lifetime is the one job's.
func (s *Store) ReadSpans(id ID, spans []Span) (*Container, error) {
	m, err := s.ReadMeta(id)
	if err != nil {
		return nil, err
	}
	part := &Container{
		Meta: Meta{ID: m.ID, Version: m.Version},
		Data: s.shared.getBuf(),
	}
	// Error paths recycle the pooled buffer; part has not escaped yet.
	fail := func(err error) (*Container, error) {
		s.shared.putBuf(part.Data)
		return nil, err
	}
	for si := range spans {
		sp := &spans[si]
		if sp.Off < 0 || sp.Len <= 0 || sp.Off+sp.Len > int64(m.DataSize) {
			return fail(fmt.Errorf("container %s: span [%d,+%d) outside payload of %d bytes",
				id, sp.Off, sp.Len, m.DataSize))
		}
		data, err := s.oss.GetRange(dataKey(id), sp.Off, sp.Len)
		if err != nil {
			return fail(fmt.Errorf("container %s: read span [%d,+%d): %w", id, sp.Off, sp.Len, err))
		}
		if int64(len(data)) != sp.Len {
			return fail(&CorruptError{Container: id,
				Detail: fmt.Sprintf("ranged read [%d,+%d) returned %d bytes", sp.Off, sp.Len, len(data))})
		}
		base := int64(len(part.Data))
		part.Data = append(part.Data, data...)
		for _, ci := range sp.Chunks {
			if ci < 0 || ci >= len(m.Chunks) {
				return fail(fmt.Errorf("container %s: span chunk index %d out of %d", id, ci, len(m.Chunks)))
			}
			cm := m.Chunks[ci]
			if int64(cm.Offset) < sp.Off || int64(cm.Offset)+int64(cm.Size) > sp.Off+sp.Len {
				return fail(fmt.Errorf("container %s: chunk %s [%d,+%d) escapes span [%d,+%d)",
					id, cm.FP.Short(), cm.Offset, cm.Size, sp.Off, sp.Len))
			}
			cm.Offset = uint32(base + int64(cm.Offset) - sp.Off)
			part.Meta.Chunks = append(part.Meta.Chunks, cm)
		}
	}
	part.Meta.DataSize = uint32(len(part.Data))
	if m.Checksummed() {
		for i := range part.Meta.Chunks {
			cm := &part.Meta.Chunks[i]
			if verr := part.VerifyChunk(cm); verr != nil {
				return fail(fmt.Errorf("container %s: read span data: %w", id, verr))
			}
		}
	}
	part.Meta.buildFindIndex()
	return part, nil
}
