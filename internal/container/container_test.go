package container

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

func chunkOf(seed int64, n int) (fingerprint.FP, []byte) {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return fingerprint.OfBytes(b), b
}

func TestMetaRoundTrip(t *testing.T) {
	m := &Meta{ID: 42, Version: MetaV2, DataSize: 300}
	for i := 0; i < 10; i++ {
		fp, _ := chunkOf(int64(i), 8)
		m.Chunks = append(m.Chunks, ChunkMeta{FP: fp, Offset: uint32(i * 30), Size: 30, Deleted: i%3 == 0, Sum: uint32(i * 7)})
	}
	got, err := DecodeMeta(EncodeMeta(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestMetaV1RoundTrip(t *testing.T) {
	m := &Meta{ID: 9, Version: MetaV1, DataSize: 60}
	fp, _ := chunkOf(3, 8)
	m.Chunks = append(m.Chunks, ChunkMeta{FP: fp, Offset: 0, Size: 60})
	got, err := DecodeMeta(EncodeMeta(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("v1 round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
	if got.Checksummed() {
		t.Fatal("v1 meta must not claim checksums")
	}
}

func TestMetaTrailerDetectsCorruption(t *testing.T) {
	m := &Meta{ID: 5, DataSize: 30}
	fp, _ := chunkOf(1, 8)
	m.Chunks = append(m.Chunks, ChunkMeta{FP: fp, Size: 30, Sum: 123})
	b := EncodeMeta(m)
	b[30] ^= 0x01 // flip a record byte; the trailer CRC must catch it
	_, err := DecodeMeta(b)
	if err == nil {
		t.Fatal("corrupt meta accepted")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Container != 5 {
		t.Fatalf("CorruptError should identify container 5: %v", err)
	}
}

func TestDataFooterRoundTrip(t *testing.T) {
	payload := []byte("hello container payload")
	raw := EncodeData(payload)
	m := &Meta{ID: 1, Version: MetaV2, DataSize: uint32(len(payload))}
	got, ok := SplitData(m, raw)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("SplitData = %q, %v", got, ok)
	}
	raw[3] ^= 0xFF // payload rot → footer mismatch
	if _, ok := SplitData(m, raw); ok {
		t.Fatal("footer accepted corrupted payload")
	}
}

// Read must detect a flipped byte in live chunk data and identify the
// container and chunk in a typed error.
func TestReadDetectsCorruption(t *testing.T) {
	mem := oss.NewMem()
	faulty := oss.NewFaulty(mem)
	cs, _ := NewStore(faulty, DefaultCapacity)
	b := NewBuilder(cs)
	fp, data := chunkOf(1, 2000)
	id, _ := b.Add(fp, data)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	faulty.CorruptReads(Prefix + id.String() + ".data")
	cs2, _ := NewStore(faulty, DefaultCapacity) // cold meta cache
	_, err := cs2.Read(id)
	if err == nil {
		t.Fatal("corrupt read went undetected")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Container != id || ce.FP != fp {
		t.Fatalf("CorruptError should identify container %s chunk %s: %v", id, fp.Short(), err)
	}

	// ReadChunk (ranged) must catch it too.
	if _, err := cs2.ReadChunk(id, fp); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadChunk: want ErrCorrupt, got %v", err)
	}

	// Clean reads still succeed.
	faulty.Clear()
	c, err := cs2.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(fp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("clean read mismatch: %v", err)
	}
}

// Corruption confined to a deleted chunk's bytes must not fail reads of
// the remaining live chunks, but the footer must still expose the rot.
func TestDeadRegionCorruptionTolerated(t *testing.T) {
	mem := oss.NewMem()
	cs, _ := NewStore(mem, DefaultCapacity)
	b := NewBuilder(cs)
	fp1, d1 := chunkOf(1, 400)
	fp2, d2 := chunkOf(2, 400)
	id, _ := b.Add(fp1, d1)
	b.Add(fp2, d2)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	m, _ := cs.ReadMeta(id)
	m.Find(fp1).Deleted = true
	if err := cs.WriteMeta(m); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the deleted chunk's region, at rest.
	key := Prefix + id.String() + ".data"
	raw, _ := mem.Get(key)
	raw[10] ^= 0xFF
	mem.Put(key, raw)

	c, err := cs.Read(id)
	if err != nil {
		t.Fatalf("dead-region rot must not fail live reads: %v", err)
	}
	got, err := c.Get(fp2)
	if err != nil || !bytes.Equal(got, d2) {
		t.Fatalf("live chunk unreadable: %v", err)
	}
	if _, footerOK, _ := cs.ReadRaw(id); footerOK {
		t.Fatal("footer must expose dead-region rot")
	}
}

func TestV1ContainerStillReads(t *testing.T) {
	mem := oss.NewMem()
	// Hand-write a v1 container: bare payload, v1 meta, no checksums.
	fp, data := chunkOf(7, 512)
	id := ID(1)
	m := &Meta{ID: id, Version: MetaV1, DataSize: uint32(len(data)),
		Chunks: []ChunkMeta{{FP: fp, Offset: 0, Size: uint32(len(data))}}}
	mem.Put(Prefix+id.String()+".data", data)
	mem.Put(Prefix+id.String()+".meta", EncodeMeta(m))

	cs, err := NewStore(mem, DefaultCapacity)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cs.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(fp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("v1 read mismatch: %v", err)
	}
	if got, err := cs.ReadChunk(id, fp); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("v1 ranged read mismatch: %v", err)
	}
}

func TestQuarantine(t *testing.T) {
	mem := oss.NewMem()
	cs, _ := NewStore(mem, DefaultCapacity)
	b := NewBuilder(cs)
	fp, data := chunkOf(1, 100)
	id, _ := b.Add(fp, data)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cs.Quarantine(id); err != nil {
		t.Fatal(err)
	}
	ids, _ := cs.List()
	if len(ids) != 0 {
		t.Fatalf("quarantined container still listed: %v", ids)
	}
	qkeys, _ := mem.List(QuarantinePrefix)
	if len(qkeys) != 2 {
		t.Fatalf("quarantine keys = %v", qkeys)
	}
	if _, err := cs.Read(id); err == nil {
		t.Fatal("Read after quarantine should fail")
	}
}

func TestDecodeMetaErrors(t *testing.T) {
	if _, err := DecodeMeta([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
	good := EncodeMeta(&Meta{ID: 1})
	bad := append([]byte{}, good...)
	bad[0] ^= 0xFF
	if _, err := DecodeMeta(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	trunc := EncodeMeta(&Meta{ID: 1, Chunks: []ChunkMeta{{Size: 5}}})
	if _, err := DecodeMeta(trunc[:len(trunc)-3]); err == nil {
		t.Fatal("truncated records accepted")
	}
}

func TestMetaAccessors(t *testing.T) {
	m := &Meta{ID: 7}
	fps := make([]fingerprint.FP, 4)
	for i := range fps {
		fp, _ := chunkOf(int64(100+i), 16)
		fps[i] = fp
		m.Chunks = append(m.Chunks, ChunkMeta{FP: fp, Offset: uint32(i * 10), Size: 10, Deleted: i >= 3})
	}
	if m.LiveChunks() != 3 {
		t.Fatalf("LiveChunks = %d", m.LiveChunks())
	}
	if m.LiveBytes() != 30 {
		t.Fatalf("LiveBytes = %d", m.LiveBytes())
	}
	if sp := m.StaleProportion(); sp != 0.25 {
		t.Fatalf("StaleProportion = %f", sp)
	}
	if m.Find(fps[2]) == nil {
		t.Fatal("Find missed an existing chunk")
	}
	missing, _ := chunkOf(999, 16)
	if m.Find(missing) != nil {
		t.Fatal("Find returned a chunk for a missing fingerprint")
	}
	empty := &Meta{}
	if empty.StaleProportion() != 0 {
		t.Fatal("empty StaleProportion should be 0")
	}
}

func TestBuilderFillsAndRolls(t *testing.T) {
	mem := oss.NewMem()
	cs, err := NewStore(mem, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(cs)

	// 7 chunks of 300 bytes in a 1000-byte container → 3 per container.
	ids := make(map[ID]int)
	for i := 0; i < 7; i++ {
		fp, data := chunkOf(int64(i), 300)
		id, err := b.Add(fp, data)
		if err != nil {
			t.Fatal(err)
		}
		ids[id]++
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("chunks spread over %d containers, want 3", len(ids))
	}
	list, err := cs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("List = %v, want 3 containers", list)
	}

	// Every chunk retrievable, byte-exact.
	for i := 0; i < 7; i++ {
		fp, want := chunkOf(int64(i), 300)
		var found bool
		for id := range ids {
			c, err := cs.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			if got, err := c.Get(fp); err == nil {
				if !bytes.Equal(got, want) {
					t.Fatalf("chunk %d corrupted", i)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("chunk %d not found in any container", i)
		}
	}
}

func TestBuilderOversizeChunk(t *testing.T) {
	mem := oss.NewMem()
	cs, _ := NewStore(mem, 100)
	b := NewBuilder(cs)
	fp, data := chunkOf(1, 500) // larger than capacity: gets its own container
	if _, err := b.Add(fp, data); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	ids, _ := cs.List()
	if len(ids) != 1 {
		t.Fatalf("List = %v", ids)
	}
	c, err := cs.Read(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(fp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("oversize chunk not stored intact: %v", err)
	}
}

func TestReadChunkRange(t *testing.T) {
	mem := oss.NewMem()
	cs, _ := NewStore(mem, DefaultCapacity)
	b := NewBuilder(cs)
	var fps []fingerprint.FP
	var datas [][]byte
	var id ID
	for i := 0; i < 5; i++ {
		fp, data := chunkOf(int64(i), 1000+i)
		fps = append(fps, fp)
		datas = append(datas, data)
		id, _ = b.Add(fp, data)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, fp := range fps {
		got, err := cs.ReadChunk(id, fp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, datas[i]) {
			t.Fatalf("ReadChunk %d mismatch", i)
		}
	}
	missing, _ := chunkOf(99, 8)
	if _, err := cs.ReadChunk(id, missing); err == nil {
		t.Fatal("ReadChunk of missing fingerprint should fail")
	}
}

func TestWriteMetaMarkDeleted(t *testing.T) {
	mem := oss.NewMem()
	cs, _ := NewStore(mem, DefaultCapacity)
	b := NewBuilder(cs)
	fp, data := chunkOf(1, 100)
	fp2, data2 := chunkOf(2, 100)
	id, _ := b.Add(fp, data)
	b.Add(fp2, data2)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	m, err := cs.ReadMeta(id)
	if err != nil {
		t.Fatal(err)
	}
	m.Find(fp).Deleted = true
	if err := cs.WriteMeta(m); err != nil {
		t.Fatal(err)
	}

	// Fresh store (cold cache) sees the deletion.
	cs2, _ := NewStore(mem, DefaultCapacity)
	m2, err := cs2.ReadMeta(id)
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Find(fp).Deleted || m2.Find(fp2).Deleted {
		t.Fatal("deletion mark did not persist correctly")
	}
	if m2.StaleProportion() != 0.5 {
		t.Fatalf("StaleProportion = %f", m2.StaleProportion())
	}
}

func TestIDAllocationResumes(t *testing.T) {
	mem := oss.NewMem()
	cs, _ := NewStore(mem, DefaultCapacity)
	b := NewBuilder(cs)
	fp, data := chunkOf(1, 10)
	id1, _ := b.Add(fp, data)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	cs2, _ := NewStore(mem, DefaultCapacity)
	id2 := cs2.AllocateID()
	if id2 <= id1 {
		t.Fatalf("reopened store allocated %v, must exceed %v", id2, id1)
	}
}

func TestDelete(t *testing.T) {
	mem := oss.NewMem()
	cs, _ := NewStore(mem, DefaultCapacity)
	b := NewBuilder(cs)
	fp, data := chunkOf(1, 10)
	id, _ := b.Add(fp, data)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cs.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Read(id); err == nil {
		t.Fatal("Read after Delete should fail")
	}
	ids, _ := cs.List()
	if len(ids) != 0 {
		t.Fatalf("List after delete = %v", ids)
	}
}

func TestParseKey(t *testing.T) {
	id := ID(0xabc)
	for _, k := range []string{dataKey(id), metaKey(id)} {
		got, ok := parseKey(k)
		if !ok || got != id {
			t.Fatalf("parseKey(%q) = %v, %v", k, got, ok)
		}
	}
	for _, k := range []string{"containers/garbage", "containers/X123.meta", "other/C1.meta"} {
		if _, ok := parseKey(k); ok && k != "other/C1.meta" {
			t.Fatalf("parseKey(%q) unexpectedly ok", k)
		}
	}
}

// Property: any set of chunks written through a Builder is fully
// recoverable from the container store.
func TestQuickBuilderRecovery(t *testing.T) {
	f := func(sizes []uint16) bool {
		mem := oss.NewMem()
		cs, err := NewStore(mem, 4096)
		if err != nil {
			return false
		}
		b := NewBuilder(cs)
		type item struct {
			fp   fingerprint.FP
			data []byte
			id   ID
		}
		var items []item
		for i, sz := range sizes {
			n := int(sz)%2000 + 1
			data := make([]byte, n)
			for j := range data {
				data[j] = byte(i + j)
			}
			// Make chunks distinct.
			copy(data, fmt.Sprintf("%d:", i))
			fp := fingerprint.OfBytes(data)
			id, err := b.Add(fp, data)
			if err != nil {
				return false
			}
			items = append(items, item{fp, data, id})
		}
		if err := b.Flush(); err != nil {
			return false
		}
		for _, it := range items {
			got, err := cs.ReadChunk(it.id, it.fp)
			if err != nil || !bytes.Equal(got, it.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentViews(t *testing.T) {
	mem := oss.NewMem()
	cs, err := NewStore(mem, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Multiple per-job views share the ID allocator and write concurrently;
	// no ID may collide and every chunk must remain retrievable.
	const workers = 6
	const perWorker = 20
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			view := cs.View(mem)
			b := NewBuilder(view)
			for i := 0; i < perWorker; i++ {
				fp, data := chunkOf(int64(w*1000+i), 8<<10)
				if _, err := b.Add(fp, data); err != nil {
					errs <- err
					return
				}
			}
			errs <- b.Flush()
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	ids, err := cs.List()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[ID]bool{}
	var chunks int
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate container ID %v", id)
		}
		seen[id] = true
		m, err := cs.ReadMeta(id)
		if err != nil {
			t.Fatal(err)
		}
		chunks += len(m.Chunks)
	}
	if chunks != workers*perWorker {
		t.Fatalf("stored %d chunks, want %d", chunks, workers*perWorker)
	}
	// Spot-check payloads across views.
	for w := 0; w < workers; w++ {
		fp, want := chunkOf(int64(w*1000), 8<<10)
		found := false
		for _, id := range ids {
			if got, err := cs.ReadChunk(id, fp); err == nil && bytes.Equal(got, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("worker %d chunk missing", w)
		}
	}
}
