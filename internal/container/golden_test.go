package container

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"slimstore/internal/fingerprint"
)

var update = flag.Bool("update", false, "rewrite golden files with the current encoding")

// goldenContainer builds the reference container: a fixed ID, five chunks
// of awkward sizes (including a 1-byte chunk), and one deletion mark, all
// generated from a pinned seed so the byte stream is reproducible.
func goldenContainer() *Container {
	rng := rand.New(rand.NewSource(7))
	c := &Container{Meta: Meta{ID: 0x2a}}
	for i, n := range []int{512, 1, 4096, 33, 2048} {
		data := make([]byte, n)
		rng.Read(data)
		var fp fingerprint.FP
		rng.Read(fp[:])
		c.Meta.Chunks = append(c.Meta.Chunks, ChunkMeta{
			FP:     fp,
			Offset: uint32(len(c.Data)),
			Size:   uint32(n),
		})
		if i == 3 {
			c.Meta.Chunks[i].Deleted = true
		}
		c.Data = append(c.Data, data...)
	}
	return c
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestGoldenContainerV2 pins the container format v2 on-disk byte layout:
// the framed data object (payload + SLMF footer) and the metadata object
// (SLMC header, per-chunk CRC32C, meta trailer checksum) must match the
// committed fixtures bit for bit. If this fails because the format
// changed deliberately, bump the wire version and regenerate with
// `go test ./internal/container/ -run Golden -update` — never relayout
// silently: on-disk containers from older runs must stay readable.
func TestGoldenContainerV2(t *testing.T) {
	c := goldenContainer()
	if err := c.Seal(); err != nil {
		t.Fatal(err)
	}
	encData := EncodeData(c.Data)
	encMeta := EncodeMeta(&c.Meta)

	for _, g := range []struct {
		name string
		got  []byte
	}{
		{"container_v2.data", encData},
		{"container_v2.meta", encMeta},
	} {
		p := filepath.Join("testdata", "golden", g.name)
		if *update {
			if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("missing golden fixture %s (regenerate with -update): %v", p, err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s: encoding diverged from the pinned v2 layout: len %d want %d, first difference at byte %d",
				g.name, len(g.got), len(want), firstDiff(g.got, want))
		}
	}
	if *update {
		t.Log("golden fixtures rewritten")
		return
	}

	// The pinned bytes must also decode and verify: the fixtures double as
	// a compatibility corpus for future readers.
	m, err := DecodeMeta(encMeta)
	if err != nil {
		t.Fatalf("decode pinned meta: %v", err)
	}
	if m.Version != MetaV2 || m.ID != c.Meta.ID || len(m.Chunks) != len(c.Meta.Chunks) {
		t.Fatalf("pinned meta decoded to %+v", m)
	}
	payload, footerOK := SplitData(m, encData)
	if !footerOK {
		t.Fatal("pinned data object fails its footer check")
	}
	rc := &Container{Meta: *m, Data: payload}
	for i := range m.Chunks {
		cm := &m.Chunks[i]
		if cm.Deleted != (i == 3) {
			t.Errorf("chunk %d: deletion mark = %v", i, cm.Deleted)
		}
		if err := rc.VerifyChunk(cm); err != nil {
			t.Errorf("chunk %d: %v", i, err)
		}
	}
}
